// Quickstart: sample nodes from a simulated social network with
// WALK-ESTIMATE and estimate the average degree, comparing against the
// classical burn-in sampler at the same sample count.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	wnw "repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A scale-free network of 5000 users, hidden behind the restrictive
	// neighbors-only interface.
	g := wnw.NewBarabasiAlbert(5000, 5, rng)
	net := wnw.NewNetwork(g)
	fmt.Printf("network: %d nodes, %d edges, true AVG degree %.3f\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	const samples = 150
	start := 0

	// Classical approach: simple random walk, waiting for the Geweke
	// convergence monitor before taking each sample.
	cSRW := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	srwRes, err := wnw.ManyShortRuns(cSRW, wnw.SimpleRandomWalk(), start,
		samples, wnw.Geweke{Threshold: 0.1}, 2000, rng)
	if err != nil {
		log.Fatal(err)
	}
	srwEst, err := wnw.EstimateMean(cSRW, wnw.SimpleRandomWalk(), wnw.AttrDegree, srwRes.Nodes)
	if err != nil {
		log.Fatal(err)
	}

	// WALK-ESTIMATE: walk 2·D̄+1 steps, estimate the landing probability
	// backward, accept/reject to the same degree-proportional target.
	cWE := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	sampler, err := wnw.NewWalkEstimate(cWE, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       start,
		WalkLength:  2*g.EstimateDiameter(4, rng) + 1,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	weRes, err := sampler.SampleN(samples)
	if err != nil {
		log.Fatal(err)
	}
	weEst, err := wnw.EstimateMean(cWE, wnw.SimpleRandomWalk(), wnw.AttrDegree, weRes.Nodes)
	if err != nil {
		log.Fatal(err)
	}

	truth := g.AvgDegree()
	fmt.Printf("\n%-14s %10s %12s %10s\n", "sampler", "queries", "AVG-degree", "rel-error")
	fmt.Printf("%-14s %10d %12.3f %10.4f\n", "SRW+Geweke", cSRW.Queries(), srwEst, wnw.RelativeError(srwEst, truth))
	fmt.Printf("%-14s %10d %12.3f %10.4f\n", "WALK-ESTIMATE", cWE.Queries(), weEst, wnw.RelativeError(weEst, truth))
	fmt.Printf("\nWALK-ESTIMATE acceptance rate: %.3f\n", sampler.AcceptanceRate())
}
