// Access restrictions in the wild (paper Section 6.3.1): what happens to a
// crawler when the platform returns only k random neighbors per call
// (type 1), a fixed random k-subset (type 2), or the first l neighbors
// (type 3, Twitter's 5000 cap) — and how mark-recapture recovers true
// degrees, and the bidirectional edge check recovers a safely traversable
// subgraph.
//
// Run with: go run ./examples/restricted
package main

import (
	"fmt"
	"log"
	"math/rand"

	wnw "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := wnw.NewBarabasiAlbert(2000, 6, rng)
	hub := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	fmt.Printf("graph: %d nodes, %d edges; hub node %d has true degree %d\n\n",
		g.NumNodes(), g.NumEdges(), hub, g.Degree(hub))

	// Type 1: fresh random k per invocation. Degree is not directly
	// observable; Petersen mark-recapture estimates it from overlaps.
	net1 := wnw.NewNetwork(g, wnw.WithRestriction(wnw.RandomK{K: 40}))
	c1 := wnw.NewClient(net1, wnw.CostUniqueNodes, rng)
	visible := len(c1.Neighbors(hub))
	est, err := wnw.EstimateDegreeMarkRecapture(c1, hub, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("type 1 (RandomK 40): visible %d per call; mark-recapture degree estimate %.1f\n",
		visible, est)

	// Type 2: fixed random k-subset. Stable but permanently partial.
	net2 := wnw.NewNetwork(g, wnw.WithRestriction(wnw.FixedK{K: 40, Seed: 9}))
	c2 := wnw.NewClient(net2, wnw.CostUniqueNodes, rng)
	a := c2.Neighbors(hub)
	b := c2.Neighbors(hub)
	same := len(a) == len(b)
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	fmt.Printf("type 2 (FixedK 40): repeat calls identical: %v\n", same)

	// Type 3: truncation. The paper's bidirectional check keeps only edges
	// visible from both endpoints, shrinking the traversable graph.
	net3 := wnw.NewNetwork(g, wnw.WithRestriction(wnw.TruncateL{L: 50}))
	c3 := wnw.NewClient(net3, wnw.CostUniqueNodes, rng)
	kept, dropped := 0, 0
	for _, w := range g.Neighbors(hub) {
		if c3.EdgeVisible(hub, int(w)) {
			kept++
		} else {
			dropped++
		}
	}
	fmt.Printf("type 3 (TruncateL 50): hub edges traversable after bidirectional check: %d kept, %d dropped\n\n",
		kept, dropped)

	// Sampling still works under truncation: SRW and WE both operate on
	// the visible graph; their efficiency comparison is unchanged.
	c4 := wnw.NewClient(net3, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(c4, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       hub,
		WalkLength:  2*g.Diameter() + 1,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.SampleN(60)
	if err != nil {
		log.Fatal(err)
	}
	estDeg, err := wnw.EstimateMean(c4, wnw.SimpleRandomWalk(), wnw.AttrDegree, res.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WE under truncation: 60 samples, %d queries, visible-AVG-degree estimate %.2f\n",
		c4.Queries(), estDeg)
	fmt.Println("(the estimate targets the *visible* graph's average degree — the paper's")
	fmt.Println(" point is that restrictions affect SRW and WE alike, so WE's savings survive)")

	// Rate limits: simulate Twitter's 15 requests / 15 minutes.
	net5 := wnw.NewNetwork(g, wnw.WithRateLimit(15, 15*60*1e9))
	c5 := wnw.NewClient(net5, wnw.CostUniqueNodes, rng)
	for v := 0; v < 100; v++ {
		c5.Neighbors(v)
	}
	fmt.Printf("\nrate-limit simulation: 100 queries at 15/15min would stall a real crawler for %v\n",
		c5.Waited())
}
