// Path harvesting — the paper's Section 6.1 future-work extension: apply
// WALK-ESTIMATE's estimate-and-reject correction to every node along each
// forward walk instead of only the final one, amortizing the walk cost
// across several samples. This example compares plain WALK-ESTIMATE against
// the harvesting variant at equal sample counts.
//
// Run with: go run ./examples/harvest
package main

import (
	"fmt"
	"log"
	"math/rand"

	wnw "repro"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	g := wnw.NewBarabasiAlbert(8000, 5, rng)
	net := wnw.NewNetwork(g)
	truth := g.AvgDegree()
	fmt.Printf("network: %d nodes, %d edges, true AVG degree %.3f\n\n",
		g.NumNodes(), g.NumEdges(), truth)

	const samples = 200
	cfg := wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  2*g.EstimateDiameter(4, rng) + 1,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}

	// Plain WALK-ESTIMATE: one candidate per forward walk.
	cPlain := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	plain, err := wnw.NewWalkEstimate(cPlain, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	plainRes, err := plain.SampleN(samples)
	if err != nil {
		log.Fatal(err)
	}
	plainEst, err := wnw.EstimateMean(cPlain, cfg.Design, wnw.AttrDegree, plainRes.Nodes)
	if err != nil {
		log.Fatal(err)
	}

	// Harvesting: every step past the midpoint is a candidate.
	cHarv := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	harv, err := wnw.NewHarvestSampler(cHarv, cfg, 0, rng)
	if err != nil {
		log.Fatal(err)
	}
	harvRes, err := harv.SampleN(samples)
	if err != nil {
		log.Fatal(err)
	}
	harvEst, err := wnw.EstimateMean(cHarv, cfg.Design, wnw.AttrDegree, harvRes.Nodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %12s %12s %12s\n", "sampler", "queries", "walk-steps", "AVG-degree", "rel-error")
	fmt.Printf("%-12s %10d %12d %12.3f %12.4f\n", "WE",
		cPlain.Queries(), plain.TotalSteps(), plainEst, wnw.RelativeError(plainEst, truth))
	fmt.Printf("%-12s %10d %12d %12.3f %12.4f\n", "WE-Harvest",
		cHarv.Queries(), harv.TotalSteps(), harvEst, wnw.RelativeError(harvEst, truth))

	fmt.Printf("\nharvest acceptance rate %.3f (plain: %.3f)\n",
		harv.AcceptanceRate(), plain.AcceptanceRate())
	fmt.Println("harvested samples share forward paths, so they are mildly correlated —")
	fmt.Println("check the effective sample size before trusting tight error bars:")

	vals := make([]float64, harvRes.Len())
	for i, v := range harvRes.Nodes {
		vals[i] = float64(g.Degree(v))
	}
	ess, err := wnw.EffectiveSampleSize(vals, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal %d samples, effective %.0f\n", harvRes.Len(), ess)
}
