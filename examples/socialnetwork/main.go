// Social-network analytics through a restricted API: estimate several AVG
// aggregates over the Google Plus surrogate (the paper's Section 7 workload)
// with SRW, MHRW, and WALK-ESTIMATE over each, at a fixed query budget.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	wnw "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Google Plus surrogate at 1/5 scale: ~3300 users, avg degree ~110,
	// with the self-description word-count attribute.
	ds, err := wnw.GooglePlusDataset(0.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("dataset %s: %d nodes, %d edges, avg degree %.1f\n",
		ds.Name, g.NumNodes(), g.NumEdges(), g.AvgDegree())
	fmt.Printf("ground truth: AVG degree %.3f, AVG self-description words %.3f\n\n",
		ds.Truth[wnw.AttrDegree], ds.Truth[wnw.AttrSelfDesc])

	const samples = 120
	type row struct {
		name    string
		queries int64
		degErr  float64
		descErr float64
	}
	var rows []row

	run := func(name string, d wnw.Design, useWE bool) {
		c := wnw.NewClient(ds.Net, wnw.CostUniqueNodes, rng)
		var res wnw.SampleResult
		var err error
		if useWE {
			var s *wnw.WESampler
			s, err = wnw.NewWalkEstimate(c, wnw.WEConfig{
				Design:      d,
				Start:       ds.StartNode,
				WalkLength:  ds.WalkLength(),
				UseCrawl:    true,
				CrawlHops:   ds.CrawlHops,
				UseWeighted: true,
			}, rng)
			if err == nil {
				res, err = s.SampleN(samples)
			}
		} else {
			res, err = wnw.ManyShortRuns(c, d, ds.StartNode, samples,
				wnw.Geweke{Threshold: 0.1}, 2000, rng)
		}
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		degEst, err := wnw.EstimateMean(c, d, wnw.AttrDegree, res.Nodes)
		if err != nil {
			log.Fatal(err)
		}
		descEst, err := wnw.EstimateMean(c, d, wnw.AttrSelfDesc, res.Nodes)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			name:    name,
			queries: c.Queries(),
			degErr:  wnw.RelativeError(degEst, ds.Truth[wnw.AttrDegree]),
			descErr: wnw.RelativeError(descEst, ds.Truth[wnw.AttrSelfDesc]),
		})
	}

	run("SRW", wnw.SimpleRandomWalk(), false)
	run("WE(SRW)", wnw.SimpleRandomWalk(), true)
	run("MHRW", wnw.MetropolisHastings(), false)
	run("WE(MHRW)", wnw.MetropolisHastings(), true)

	fmt.Printf("%-10s %10s %16s %16s\n", "sampler", "queries", "degree-rel-err", "selfdesc-rel-err")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %16.4f %16.4f\n", r.name, r.queries, r.degErr, r.descErr)
	}
	fmt.Println("\nWALK-ESTIMATE reaches comparable or better error at lower query cost,")
	fmt.Println("which is the paper's Figure 6 in miniature.")
}
