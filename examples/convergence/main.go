// Convergence anatomy: why burn-in is expensive and what WALK-ESTIMATE does
// instead. This example computes, on a mid-sized scale-free graph, the exact
// burn-in length at several bias thresholds (via the full-topology oracle),
// the spectral gap, the length at which the Geweke heuristic actually stops,
// and the walk length + acceptance behaviour of WALK-ESTIMATE.
//
// Run with: go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math/rand"

	wnw "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := wnw.NewBarabasiAlbert(800, 4, rng)
	fmt.Printf("graph: %d nodes, %d edges, diameter %d\n\n", g.NumNodes(), g.NumEdges(), g.Diameter())

	// Oracle view: spectral gap and exact burn-in lengths of the lazy SRW.
	chain := wnw.Lazify(wnw.NewSRWMatrix(g), 0.01)
	pi, err := wnw.SRWStationary(g)
	if err != nil {
		log.Fatal(err)
	}
	gap, err := wnw.SpectralGap(chain, pi, 20000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectral gap (lazy SRW): %.5f\n", gap)

	th := wnw.Theorem1{Gamma: 1, Delta: 0.01, DMax: float64(g.MaxDegree()), Lambda: gap}
	if tOpt, err := th.TOpt(); err == nil {
		cRW, _ := th.RWCost()
		saving, _ := th.SavingBound()
		fmt.Printf("Theorem 1 (worst-case bounds): t_opt %.1f, plain-walk cost %.1f, guaranteed saving %.1f%%\n",
			tOpt, cRW, 100*saving)
	}

	// Geweke in practice: where does the heuristic stop?
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	res, err := wnw.ManyShortRuns(c, wnw.SimpleRandomWalk(), 0, 50, wnw.Geweke{Threshold: 0.1}, 5000, rng)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, s := range res.Steps {
		total += s
	}
	fmt.Printf("\nGeweke (Z<=0.1) stops after %.1f steps on average\n", float64(total)/float64(res.Len()))

	// WALK-ESTIMATE: a fixed short walk plus estimation instead of waiting.
	c2 := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	walkLen := 2*g.Diameter() + 1
	s, err := wnw.NewWalkEstimate(c2, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  walkLen,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	weRes, err := s.SampleN(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WALK-ESTIMATE walks exactly %d steps per candidate, acceptance %.3f\n",
		walkLen, s.AcceptanceRate())
	fmt.Printf("per-sample walk work: WE %.1f steps (incl. backward) vs Geweke %.1f\n",
		float64(s.TotalSteps())/float64(weRes.Len()), float64(total)/float64(res.Len()))
	fmt.Printf("query cost for 50 samples: WE %d vs Geweke %d\n", c2.Queries(), c.Queries())

	// The punchline of Section 4.1: the distance to stationarity collapses
	// in the first few steps, then crawls. Print the exact profile.
	fmt.Println("\nexact l-inf distance to stationarity (walk from node 0):")
	p := make([]float64, g.NumNodes())
	p[0] = 1
	for t := 1; t <= 40; t++ {
		p = chain.Evolve(p, 1)
		worst := 0.0
		for v := range p {
			if d := abs(p[v] - pi[v]); d > worst {
				worst = d
			}
		}
		if t <= 10 || t%10 == 0 {
			fmt.Printf("  t=%-3d  %.2e\n", t, worst)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
