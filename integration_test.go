package walknotwait_test

// End-to-end integration tests: the full analytics pipeline a downstream
// user would run — build a surrogate network, sample through the restricted
// interface with traditional and WALK-ESTIMATE samplers, estimate several
// aggregates, and validate the error/cost relationships the library
// promises.

import (
	"math"
	"math/rand"
	"testing"

	wnw "repro"
)

func TestIntegrationYelpPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	ds, err := wnw.YelpDataset(0.03, 17) // ~3600 users
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	const samples = 120

	// WALK-ESTIMATE over SRW.
	cWE := wnw.NewClient(ds.Net, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(cWE, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       ds.StartNode,
		WalkLength:  ds.WalkLength(),
		UseCrawl:    true,
		CrawlHops:   ds.CrawlHops,
		UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(samples)
	if err != nil {
		t.Fatal(err)
	}

	// Every aggregate the paper reports for Yelp, from one sample set.
	for _, attr := range []string{wnw.AttrDegree, wnw.AttrStars, wnw.AttrAvgPath, wnw.AttrClustering} {
		est, err := wnw.EstimateMean(cWE, wnw.SimpleRandomWalk(), attr, res.Nodes)
		if err != nil {
			t.Fatalf("%s: %v", attr, err)
		}
		truth := ds.Truth[attr]
		relErr := wnw.RelativeError(est, truth)
		if math.IsNaN(relErr) || relErr > 1.0 {
			t.Errorf("%s: estimate %v vs truth %v (rel err %v)", attr, est, truth, relErr)
		}
	}

	// Baseline at the same sample count for the cost comparison.
	rng2 := rand.New(rand.NewSource(19))
	cSRW := wnw.NewClient(ds.Net, wnw.CostUniqueNodes, rng2)
	srwRes, err := wnw.ManyShortRuns(cSRW, wnw.SimpleRandomWalk(), ds.StartNode,
		samples, wnw.Geweke{Threshold: 0.1}, 2000, rng2)
	if err != nil {
		t.Fatal(err)
	}
	srwDeg, err := wnw.EstimateMean(cSRW, wnw.SimpleRandomWalk(), wnw.AttrDegree, srwRes.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	weDeg, err := wnw.EstimateMean(cWE, wnw.SimpleRandomWalk(), wnw.AttrDegree, res.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Truth[wnw.AttrDegree]
	if wnw.RelativeError(weDeg, truth) > wnw.RelativeError(srwDeg, truth) {
		t.Errorf("WE degree error %v should beat SRW %v",
			wnw.RelativeError(weDeg, truth), wnw.RelativeError(srwDeg, truth))
	}
}

func TestIntegrationRestrictionInvariance(t *testing.T) {
	// The efficiency comparison survives neighbor-list truncation (§6.3.1):
	// WE still samples and still beats the baseline on error per query on
	// the *visible* graph.
	rng := rand.New(rand.NewSource(20))
	g := wnw.NewBarabasiAlbert(1500, 5, rng)
	net := wnw.NewNetwork(g, wnw.WithRestriction(wnw.TruncateL{L: 30}))

	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:     wnw.SimpleRandomWalk(),
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 50 {
		t.Fatalf("samples = %d", res.Len())
	}
	// Estimates target the visible graph; just require finiteness and a
	// plausible range (visible degree <= 30 by construction).
	est, err := wnw.EstimateMean(c, wnw.SimpleRandomWalk(), wnw.AttrDegree, res.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || est > 30 {
		t.Fatalf("visible AVG degree estimate %v outside (0,30]", est)
	}
}

func TestIntegrationSeedReproducibility(t *testing.T) {
	// Identical seeds must reproduce the full pipeline bit-for-bit.
	runOnce := func() ([]int, int64) {
		rng := rand.New(rand.NewSource(99))
		g := wnw.NewBarabasiAlbert(400, 4, rng)
		net := wnw.NewNetwork(g)
		c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
		s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
			Design:      wnw.SimpleRandomWalk(),
			Start:       0,
			WalkLength:  2*g.Diameter() + 1,
			UseCrawl:    true,
			CrawlHops:   2,
			UseWeighted: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.SampleN(30)
		if err != nil {
			t.Fatal(err)
		}
		return res.Nodes, c.Queries()
	}
	nodesA, costA := runOnce()
	nodesB, costB := runOnce()
	if costA != costB {
		t.Fatalf("costs differ: %d vs %d", costA, costB)
	}
	for i := range nodesA {
		if nodesA[i] != nodesB[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, nodesA[i], nodesB[i])
		}
	}
}
