package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/osn"
	"repro/internal/serve"
)

func testGraph() *graph.Graph {
	return gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
}

// testWorker is one in-process fleet worker: a full serve stack behind a
// real HTTP listener, killable mid-request.
type testWorker struct {
	mgr *serve.Manager
	wk  *Worker
	srv *httptest.Server
}

// kill simulates a crashed worker process: heartbeats stop, in-flight
// connections are severed, and new dials are refused. The manager keeps
// running (its goroutines belong to this test process), which only makes
// the test stricter — the fleet must not depend on it.
func (tw *testWorker) kill() {
	tw.wk.Close()
	tw.srv.CloseClientConnections()
	tw.srv.Listener.Close()
}

type testFleet struct {
	co    *Coordinator
	coSrv *httptest.Server
	wks   []*testWorker
}

func (tf *testFleet) close() {
	tf.co.Close()
	tf.coSrv.Close()
	for _, tw := range tf.wks {
		tw.wk.Close()
		tw.srv.CloseClientConnections()
		tw.srv.Close()
		tw.mgr.Close()
	}
}

// startFleet boots a coordinator and n workers over per-worker networks
// built by mkNet (typically sharing one underlying graph) and blocks until
// the fleet is complete and — for n > 1 — every worker has installed its
// cache partition.
func startFleet(t *testing.T, n int, mkNet func() *osn.Network, wcfg serve.Config, ccfg CoordinatorConfig) *testFleet {
	t.Helper()
	ccfg.Workers = n
	if ccfg.HeartbeatTimeout == 0 {
		ccfg.HeartbeatTimeout = 500 * time.Millisecond
	}
	co, err := NewCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	coSrv := httptest.NewServer(co.Handler())
	tf := &testFleet{co: co, coSrv: coSrv}
	for i := 0; i < n; i++ {
		mgr := serve.NewManager(serve.NewEngine(mkNet()), wcfg)
		var h atomic.Value
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		}))
		wk, err := NewWorker(mgr, WorkerConfig{
			Coordinator:    coSrv.URL,
			Advertise:      srv.URL,
			Name:           fmt.Sprintf("w%d", i),
			HeartbeatEvery: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Store(wk.Handler())
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		tf.wks = append(tf.wks, &testWorker{mgr: mgr, wk: wk, srv: srv})
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := co.WorkersLive() == n
		if n > 1 {
			for _, tw := range tf.wks {
				if tw.mgr.Engine().Cache().Partition() == nil {
					ready = false
				}
			}
		}
		if ready {
			return tf
		}
		if time.Now().After(deadline) {
			tf.close()
			t.Fatal("fleet did not become complete")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submit posts a job spec to the coordinator and returns its status.
func (tf *testFleet) submit(t *testing.T, spec serve.JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(tf.coSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b := readBody(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamRow is one relayed NDJSON line.
type streamRow struct {
	Done   bool   `json:"done"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Cached bool   `json:"cached"`
	I      *int   `json:"i"`
	Node   int    `json:"node"`
	Steps  int    `json:"steps"`
}

// readStream consumes a job's stream from the coordinator, invoking onRow
// after each sample row, and returns the rows and the terminal line.
func (tf *testFleet) readStream(t *testing.T, id string, onRow func(n int)) ([]streamRow, streamRow) {
	t.Helper()
	resp, err := http.Get(tf.coSrv.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	var rows []streamRow
	for {
		var row streamRow
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("stream died after %d rows: %v", len(rows), err)
		}
		if row.Done {
			return rows, row
		}
		rows = append(rows, row)
		if onRow != nil {
			onRow(len(rows))
		}
	}
}

// A 3-worker fleet must produce the exact sample sequence of a single
// process at fixed (seed, workers), and its fleet-wide unique-node charge
// (Σ per-worker owned-unique) must equal the single process's TotalQueries.
func TestFleetParityWithSingleProcess(t *testing.T) {
	g := testGraph()
	spec := serve.JobSpec{Type: serve.TypeSample, Count: 40, Seed: 7, Workers: 2}

	// Single-process reference.
	ref := serve.NewManager(serve.NewEngine(osn.NewNetwork(g)), serve.Config{Runners: 1, WorkerBudget: 4})
	job, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var refSt serve.JobStatus
	for deadline := time.Now().Add(30 * time.Second); ; {
		refSt = job.Status()
		if refSt.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reference job stuck: %+v", refSt)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ref.Close()
	if refSt.State != serve.JobDone || len(refSt.Result.Nodes) != 40 {
		t.Fatalf("reference job: %+v", refSt)
	}
	singleQueries := refSt.Result.FleetQueries

	tf := startFleet(t, 3, func() *osn.Network { return osn.NewNetwork(g) },
		serve.Config{Runners: 1, WorkerBudget: 4}, CoordinatorConfig{})
	defer tf.close()

	st := tf.submit(t, spec)
	if st.Worker < 0 || st.Worker > 2 {
		t.Fatalf("placement: %+v", st)
	}
	rows, term := tf.readStream(t, st.ID, nil)
	if term.State != string(serve.JobDone) {
		t.Fatalf("terminal: %+v", term)
	}
	if len(rows) != len(refSt.Result.Nodes) {
		t.Fatalf("row count: fleet %d single %d", len(rows), len(refSt.Result.Nodes))
	}
	for i, row := range rows {
		if row.I == nil || *row.I != i {
			t.Fatalf("row %d: bad index %+v", i, row)
		}
		if row.Node != refSt.Result.Nodes[i] {
			t.Fatalf("sample %d differs: fleet %d single %d", i, row.Node, refSt.Result.Nodes[i])
		}
	}

	sum := tf.co.Summary(true)
	if sum.FleetQueries != singleQueries {
		t.Fatalf("fleet charge: Σ owned-unique %d, single-process %d", sum.FleetQueries, singleQueries)
	}
	// The charge must be spread: with 64 shards mod 3 workers every worker
	// owns some, and a 40-sample walk touches far more than 3 shards.
	for _, ws := range sum.Workers {
		if ws.OwnedUnique <= 0 {
			t.Fatalf("worker %d charged nothing: %+v", ws.Index, sum.Workers)
		}
	}
}

// Killing the placed worker mid-stream must be invisible in the client's
// row sequence: the coordinator hands the job to another worker, the
// deterministic re-run replays, and index dedup splices the streams. Rows
// are compared on (i, node, steps) — cost depends on cache warmth.
func TestWorkerLossHandoffStreamIdentical(t *testing.T) {
	g := testGraph()
	spec := serve.JobSpec{Type: serve.TypeSample, Count: 30, Seed: 11, Workers: 2}
	mkNet := func() *osn.Network {
		return osn.NewNetworkOn(osn.NewRemoteSim(osn.NewMemBackend(g), time.Millisecond, 0, 8))
	}
	wcfg := serve.Config{Runners: 1, WorkerBudget: 4}

	// Reference: the same fleet shape, uninterrupted.
	refFleet := startFleet(t, 3, mkNet, wcfg, CoordinatorConfig{})
	refSt := refFleet.submit(t, spec)
	refRows, refTerm := refFleet.readStream(t, refSt.ID, nil)
	refFleet.close()
	if refTerm.State != string(serve.JobDone) || len(refRows) != 30 {
		t.Fatalf("reference run: %+v (%d rows)", refTerm, len(refRows))
	}

	tf := startFleet(t, 3, mkNet, wcfg, CoordinatorConfig{HeartbeatTimeout: 300 * time.Millisecond})
	defer tf.close()
	st := tf.submit(t, spec)
	killed := false
	rows, term := tf.readStream(t, st.ID, func(n int) {
		if n == 10 && !killed {
			killed = true
			tf.wks[st.Worker].kill()
		}
	})
	if !killed {
		t.Fatal("job finished before the kill point")
	}
	if term.State != string(serve.JobDone) {
		t.Fatalf("terminal after hand-off: %+v", term)
	}
	if len(rows) != len(refRows) {
		t.Fatalf("row count: killed run %d reference %d", len(rows), len(refRows))
	}
	for i := range rows {
		if *rows[i].I != *refRows[i].I || rows[i].Node != refRows[i].Node || rows[i].Steps != refRows[i].Steps {
			t.Fatalf("row %d differs after hand-off: got (%d,%d,%d) want (%d,%d,%d)",
				i, *rows[i].I, rows[i].Node, rows[i].Steps,
				*refRows[i].I, refRows[i].Node, refRows[i].Steps)
		}
	}

	// The hand-off must be visible in the meters and the job's attempts.
	if tf.co.handoffs.Load() < 1 {
		t.Fatal("no hand-off counted")
	}
	var got JobStatus
	resp, err := http.Get(tf.coSrv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 after a worker loss", got.Attempts)
	}
	if got.Worker == st.Worker {
		t.Fatalf("job still placed on the killed worker %d", st.Worker)
	}
}

// A worker-side queue_full shed must pass through the coordinator verbatim:
// same status, same typed reason, same Retry-After — and exactly once (no
// coordinator shed stacked on top).
func TestShedForwardedVerbatim(t *testing.T) {
	g := testGraph()
	mkNet := func() *osn.Network {
		return osn.NewNetworkOn(osn.NewRemoteSim(osn.NewMemBackend(g), 2*time.Millisecond, 0, 8))
	}
	tf := startFleet(t, 1, mkNet, serve.Config{Runners: 1, QueueDepth: 1, WorkerBudget: 2}, CoordinatorConfig{})
	defer tf.close()

	slow := serve.JobSpec{Type: serve.TypeSample, Count: 200, Seed: 3, Workers: 1}
	tf.submit(t, slow) // running
	tf.submit(t, slow) // queued, fills the depth-1 queue

	body, _ := json.Marshal(slow)
	resp, err := http.Post(tf.coSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %s", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want the worker's own hint \"1\"", ra)
	}
	var shed struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Error != "queue_full" || shed.RetryAfterMS != 1000 {
		t.Fatalf("shed body not forwarded verbatim: %+v", shed)
	}
	if tf.co.shedForwarded.Load() != 1 {
		t.Fatalf("shedForwarded = %d, want 1", tf.co.shedForwarded.Load())
	}
}

// With no live workers the coordinator sheds with its own typed reason.
func TestNoWorkersShed(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{Workers: 2, HeartbeatTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	// Not ready before any worker registers.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty fleet: %s", resp.Status)
	}

	body, _ := json.Marshal(serve.JobSpec{Type: serve.TypeSample, Count: 5, Seed: 1, Workers: 1})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %s", resp.Status)
	}
	var shed struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&shed)
	if shed.Error != ShedNoWorkers {
		t.Fatalf("shed reason %q, want %q", shed.Error, ShedNoWorkers)
	}
}

// A repeat submission through a 3-worker fleet must be answered by the
// coordinator's result cache: no worker dispatch, an identical replayed
// stream, frozen worker meters, and the hit visible in the cluster summary.
func TestFleetRepeatServedFromCoordinatorCache(t *testing.T) {
	g := testGraph()
	tf := startFleet(t, 3, func() *osn.Network { return osn.NewNetwork(g) },
		serve.Config{Runners: 1, WorkerBudget: 4}, CoordinatorConfig{})
	defer tf.close()

	spec := serve.JobSpec{Type: serve.TypeSample, Count: 30, Seed: 13, Workers: 2}
	st := tf.submit(t, spec)
	if st.Digest == "" {
		t.Fatal("accepted status carries no digest")
	}
	rowsA, termA := tf.readStream(t, st.ID, nil)
	if termA.State != string(serve.JobDone) || termA.Cached {
		t.Fatalf("live run terminal: %+v", termA)
	}

	// The cache entry is published before the terminal line reaches the
	// client, but the norm env arrives on a heartbeat — wait for adoption.
	deadline := time.Now().Add(10 * time.Second)
	for tf.co.normEnv.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never adopted a worker norm env")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tf.co.ResultCacheStats().Entries == 0 {
		t.Fatal("completed job not memoized coordinator-side")
	}

	before := make([]WorkerStats, len(tf.wks))
	for i, tw := range tf.wks {
		before[i] = tw.wk.Stats()
	}

	// Resubmit with equivalent-but-different spelling: the coordinator must
	// canonicalize fleet-side and answer without dispatching.
	st2 := tf.submit(t, serve.JobSpec{Type: serve.TypeSample, Design: "SRW",
		Count: 30, Seed: 13, Workers: 2, DeadlineMS: 60000})
	if st2.State != serve.JobDone {
		t.Fatalf("repeat not instantly terminal: %+v", st2)
	}
	if st2.Result == nil || !st2.Result.Cached || st2.Result.Queries != 0 {
		t.Fatalf("repeat result: %+v", st2.Result)
	}
	if st2.Digest != st.Digest {
		t.Fatalf("digest drifted: live %s repeat %s", st.Digest, st2.Digest)
	}
	if st2.Worker != -1 || st2.Attempts != 0 {
		t.Fatalf("cached repeat was placed on a worker: %+v", st2)
	}

	rowsB, termB := tf.readStream(t, st2.ID, nil)
	if termB.State != string(serve.JobDone) || !termB.Cached {
		t.Fatalf("cached terminal line: %+v", termB)
	}
	if len(rowsB) != len(rowsA) {
		t.Fatalf("row count: cached %d live %d", len(rowsB), len(rowsA))
	}
	for i := range rowsA {
		if *rowsB[i].I != *rowsA[i].I || rowsB[i].Node != rowsA[i].Node || rowsB[i].Steps != rowsA[i].Steps {
			t.Fatalf("row %d differs: cached (%d,%d,%d) live (%d,%d,%d)",
				i, *rowsB[i].I, rowsB[i].Node, rowsB[i].Steps,
				*rowsA[i].I, rowsA[i].Node, rowsA[i].Steps)
		}
	}

	// No worker saw the repeat: every meter a dispatched job would move —
	// samples produced, neighbor-cache calls, fleet charges — is frozen.
	for i, tw := range tf.wks {
		after := tw.wk.Stats()
		if after.Samples != before[i].Samples || after.Calls != before[i].Calls ||
			after.Queries != before[i].Queries || after.OwnedUnique != before[i].OwnedUnique {
			t.Fatalf("worker %d meters moved on a cached hit: before %+v after %+v", i, before[i], after)
		}
	}

	sum := tf.co.Summary(true)
	if sum.Cache.Hits < 1 || sum.CacheHits < 1 {
		t.Fatalf("summary does not show the hit: %+v", sum.Cache)
	}
	if sum.Cache.QueriesSaved <= 0 {
		t.Fatalf("queries_saved = %d, want > 0", sum.Cache.QueriesSaved)
	}
}
