package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// JobStatus is the coordinator's job snapshot: the single-daemon status plus
// fleet placement. The embedded fields marshal flat, so clients written for
// a plain weserve parse it unchanged.
type JobStatus struct {
	serve.JobStatus
	// Worker is the fleet index of the worker currently (or last) running
	// the job (-1 while awaiting placement).
	Worker int `json:"worker"`
	// Attempts counts dispatches: 1 for an undisturbed job, +1 per hand-off.
	Attempts int `json:"attempts"`
}

// cjob is one coordinator job: the client-facing replica of a job running on
// some worker. Its sample log is append-only and index-deduplicated, so a
// hand-off re-run (which replays the deterministic sequence from row 0)
// extends the log exactly where the lost worker stopped.
type cjob struct {
	co  *Coordinator
	id  string
	seq int64
	ctx context.Context // cancelled on job cancel or coordinator close

	mu        sync.Mutex
	cond      sync.Cond
	cancelFn  context.CancelFunc
	spec      serve.JobSpec // normalized by the first worker's admission
	digest    string        // canonical content address (worker- or coordinator-computed)
	state     serve.JobState
	errMsg    string
	reason    string
	samples   []serve.Sample
	result    *serve.JobResult
	worker    int // current placement (-1 none)
	attempts  int
	remoteID  string // job id on the placed worker
	durable   int    // journal progress high-water (suppresses re-appends)
	abandoned bool   // coordinator closed mid-job; streamers unblock
	cancelled bool   // client requested cancellation
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func (co *Coordinator) newCJob(id string, seq int64, spec serve.JobSpec) *cjob {
	ctx, cancel := context.WithCancel(context.Background())
	j := &cjob{
		co: co, id: id, seq: seq, ctx: ctx, cancelFn: cancel,
		spec: spec, state: serve.JobQueued, worker: -1,
		submitted: time.Now(),
	}
	j.cond.L = &j.mu
	return j
}

func (j *cjob) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// abandon unblocks streamers and stops the relay without journaling a
// terminal record — the accepted record stays, so a restarted coordinator
// re-dispatches the job (kill -9 takes this same path implicitly).
func (j *cjob) abandon() {
	j.cancelFn()
	j.mu.Lock()
	j.abandoned = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// publish appends rows whose index continues the log; replayed duplicates
// from a hand-off re-run are dropped. Returns the new log length.
func (j *cjob) publish(batch []serve.Sample) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	accepted := 0
	for _, s := range batch {
		if s.Index == len(j.samples) {
			j.samples = append(j.samples, s)
			accepted++
		}
	}
	if accepted > 0 {
		j.co.samples.Add(int64(accepted))
		j.cond.Broadcast()
	}
	return len(j.samples)
}

// finalize moves the job to a terminal state exactly once, updates the
// coordinator counters, and journals the terminal record (outside the
// job lock — journal rotation snapshots back through it).
func (j *cjob) finalize(state serve.JobState, errMsg, reason string, result *serve.JobResult) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.reason = reason
	j.result = result
	j.finished = time.Now()
	rec := j.recordLocked()
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancelFn()

	co := j.co
	co.inFlight.Add(-1)
	switch state {
	case serve.JobDone:
		co.jobsDone.Add(1)
	case serve.JobCancelled:
		co.jobsCancelled.Add(1)
	default:
		co.jobsFailed.Add(1)
	}
	if jl := co.journal(); jl != nil {
		jl.AppendTerminal(rec)
	}
}

// recordLocked snapshots the job as a journal record. mu held.
func (j *cjob) recordLocked() serve.JobRecord {
	rec := serve.JobRecord{
		ID: j.id, Seq: j.seq, Digest: j.digest, Spec: j.spec, State: j.state,
		Error: j.errMsg, Reason: j.reason, Durable: j.durable,
		Result:      j.result,
		SubmittedMS: j.submitted.UnixMilli(),
	}
	if !j.started.IsZero() {
		rec.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		rec.FinishedMS = j.finished.UnixMilli()
	}
	if j.state.Terminal() {
		rec.Rows = append([]serve.Sample(nil), j.samples...)
		rec.Durable = len(j.samples)
	}
	return rec
}

func (j *cjob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := serve.JobStatus{
		ID: j.id, State: j.state, Spec: j.spec,
		Error: j.errMsg, FailureReason: j.reason, Digest: j.digest,
		Samples: len(j.samples), Result: j.result,
	}
	switch {
	case !j.started.IsZero():
		st.QueueMS = float64(j.started.Sub(j.submitted)) / 1e6
	case j.state.Terminal():
		st.QueueMS = float64(j.finished.Sub(j.submitted)) / 1e6
	default:
		st.QueueMS = float64(time.Since(j.submitted)) / 1e6
	}
	switch {
	case j.started.IsZero():
	case j.finished.IsZero():
		st.RunMS = float64(time.Since(j.started)) / 1e6
	default:
		st.RunMS = float64(j.finished.Sub(j.started)) / 1e6
	}
	return JobStatus{JobStatus: st, Worker: j.worker, Attempts: j.attempts}
}

// waitSamples blocks until rows beyond from exist, the job is terminal (or
// abandoned), or ctx is done. Mirrors serve.Job's streaming contract.
func (j *cjob) waitSamples(ctx context.Context, from int) ([]serve.Sample, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.samples) <= from && !j.state.Terminal() && !j.abandoned && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.samples[from:], j.state.Terminal() || j.abandoned
}

// streamTo serves the job's NDJSON stream: every row (replaying from the
// start), then one terminal line — byte-compatible with a single daemon's
// /stream, whatever hand-offs happened underneath.
func (j *cjob) streamTo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	stop := context.AfterFunc(r.Context(), j.wake)
	defer stop()
	from := 0
	for {
		batch, terminal := j.waitSamples(r.Context(), from)
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				return
			}
		}
		from += len(batch)
		if fl != nil {
			fl.Flush()
		}
		if r.Context().Err() != nil {
			return
		}
		if terminal && len(batch) == 0 {
			st := j.status()
			line := map[string]any{
				"done":    true,
				"state":   st.State,
				"samples": st.Samples,
				"error":   st.Error,
			}
			if st.FailureReason != "" {
				line["failure_reason"] = st.FailureReason
			}
			if st.Result != nil && st.Result.Cached {
				line["cached"] = true
			}
			enc.Encode(line)
			if fl != nil {
				fl.Flush()
			}
			return
		}
	}
}

// forwarded is a worker response held for verbatim relay to the client.
type forwarded struct {
	code       int
	retryAfter string
	body       []byte
}

func (f *forwarded) write(w http.ResponseWriter) {
	if f.retryAfter != "" {
		w.Header().Set("Retry-After", f.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(f.code)
	w.Write(f.body)
}

// placement is a successful dispatch: where the job landed and the worker's
// accepted status (normalized spec + remote id).
type placement struct {
	idx    int
	gen    int64
	addr   string
	status serve.JobStatus
}

// dispatchOnce tries each live worker once (round-robin from the cursor).
// Outcomes: a placement; a response to relay verbatim (every worker shed →
// the last 503, or a 4xx rejection → immediately, since validation is
// deterministic across workers); or (nil, nil) — no live worker answered.
func (co *Coordinator) dispatchOnce(ctx context.Context, spec serve.JobSpec) (*placement, *forwarded) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, &forwarded{code: http.StatusBadRequest,
			body: []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))}
	}
	tried := make(map[int]bool)
	var lastShed *forwarded
	for {
		idx, addr, gen, ok := co.pickWorker(tried)
		if !ok {
			return nil, lastShed
		}
		tried[idx] = true
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, lastShed
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := co.hc.Do(req)
		if err != nil {
			co.markDead(idx, gen)
			continue
		}
		respBody := readBody(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var st serve.JobStatus
			if json.Unmarshal(respBody, &st) != nil || st.ID == "" {
				co.markDead(idx, gen)
				continue
			}
			return &placement{idx: idx, gen: gen, addr: addr, status: st}, nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Worker-side shed (queue_full / draining): hold it for verbatim
			// relay — the typed reason and Retry-After must reach the client
			// unchanged, with no coordinator shed layered on top.
			lastShed = &forwarded{code: resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"), body: respBody}
		default:
			return nil, &forwarded{code: resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"), body: respBody}
		}
	}
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec serve.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	co.mu.Lock()
	closed := co.closed
	co.mu.Unlock()
	if closed {
		co.jobsShed.Add(1)
		shedOwn(w, "draining")
		return
	}
	// Fleet-side result cache: normalize and digest the spec under the env
	// adopted from worker heartbeats, and answer a memoized digest without
	// dispatching to any worker — no fleet occupancy, no worker round trip,
	// and (like the serve-layer cache) no shed path can refuse it. A spec
	// the env rejects falls through: the worker's own validation produces
	// the client-facing error, keeping rejections identical either way.
	if co.results != nil {
		if env := co.normEnv.Load(); env != nil {
			if norm, err := serve.NormalizeSpec(spec, *env); err == nil {
				digest := serve.SpecDigest(*env, norm)
				if rows, cres, ok := co.results.Get(digest); ok {
					writeJSON(w, http.StatusAccepted, co.admitCached(norm, digest, rows, cres))
					return
				}
			}
		}
	}
	pl, fwd := co.dispatchOnce(r.Context(), spec)
	if pl == nil {
		if fwd != nil {
			if fwd.code == http.StatusServiceUnavailable {
				co.jobsShed.Add(1)
				co.shedForwarded.Add(1)
			}
			fwd.write(w)
			return
		}
		co.jobsShed.Add(1)
		shedOwn(w, ShedNoWorkers)
		return
	}

	co.mu.Lock()
	co.seq++
	id := fmt.Sprintf("job-%06d", co.seq)
	j := co.newCJob(id, co.seq, pl.status.Spec)
	j.digest = pl.status.Digest
	j.worker = pl.idx
	j.remoteID = pl.status.ID
	j.attempts = 1
	j.started = time.Now()
	co.jobs[id] = j
	co.order = append(co.order, id)
	co.mu.Unlock()

	co.jobsSubmitted.Add(1)
	co.inFlight.Add(1)
	if jl := co.journal(); jl != nil {
		j.mu.Lock()
		rec := j.recordLocked()
		j.mu.Unlock()
		jl.AppendAccepted(rec)
	}
	co.wg.Add(1)
	go co.relay(j, pl)
	writeJSON(w, http.StatusAccepted, j.status())
}

// admitCached registers a repeat submission as an instantly-terminal
// coordinator job served from the result cache: the original run's rows
// verbatim, a fresh summary charging zero queries, and no worker placement
// (Worker stays -1, Attempts 0 — the fleet never saw it). The terminal
// record is journaled (terminal records are self-contained at replay), so
// the hit survives coordinator restarts like any relayed completion.
func (co *Coordinator) admitCached(spec serve.JobSpec, digest string, rows []serve.Sample, cres *serve.JobResult) JobStatus {
	fleet := co.FleetQueries()
	now := time.Now()
	co.mu.Lock()
	co.seq++
	id := fmt.Sprintf("job-%06d", co.seq)
	j := co.newCJob(id, co.seq, spec)
	j.digest = digest
	j.state = serve.JobDone
	j.samples = rows
	j.durable = len(rows)
	j.result = &serve.JobResult{
		Samples:        cres.Samples,
		Queries:        0,
		FleetQueries:   fleet,
		AcceptanceRate: cres.AcceptanceRate,
		Estimate:       cres.Estimate,
		Nodes:          cres.Nodes,
		Cached:         true,
	}
	j.started = now
	j.finished = now
	co.jobs[id] = j
	co.order = append(co.order, id)
	co.mu.Unlock()
	co.jobsSubmitted.Add(1)
	co.jobsDone.Add(1)
	if jl := co.journal(); jl != nil {
		j.mu.Lock()
		rec := j.recordLocked()
		j.mu.Unlock()
		jl.AppendTerminal(rec)
	}
	return j.status()
}

// cancelJob cancels a coordinator job: forward the DELETE to the placed
// worker (the relay then observes the cancelled terminal) and finalize
// directly when the job has no placement to forward to.
func (co *Coordinator) cancelJob(j *cjob) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cancelled = true
	addr, remoteID := "", j.remoteID
	if j.worker >= 0 {
		co.mu.Lock()
		if j.worker < len(co.workers) {
			addr = co.workers[j.worker].addr
		}
		co.mu.Unlock()
	}
	j.mu.Unlock()
	if addr != "" && remoteID != "" {
		req, err := http.NewRequest(http.MethodDelete, addr+"/v1/jobs/"+remoteID, nil)
		if err == nil {
			if resp, err := co.hc.Do(req); err == nil {
				resp.Body.Close()
				return // relay observes the terminal state and finalizes
			}
		}
	}
	j.finalize(serve.JobCancelled, "cancelled by client", "", nil)
}

// streamLine is one decoded NDJSON line from a worker stream: either a
// sample row or the terminal marker.
type streamLine struct {
	Done  bool `json:"done"`
	Index *int `json:"i"`
	Node  int  `json:"node"`
	Steps int  `json:"steps"`
	Cost  int64 `json:"cost"`
}

// relay follows the job's sample stream on its placed worker, republishing
// rows to coordinator streamers and journaling progress. When the stream
// dies before a terminal line — worker crash, network loss, or a worker
// restart that forgot the job — it hands the job off: re-dispatch the
// normalized spec to another live worker and keep relaying; the re-run's
// replayed prefix is absorbed by index dedup. Attempts are capped; past the
// cap the job fails with reason "worker_lost".
func (co *Coordinator) relay(j *cjob, pl *placement) {
	defer co.wg.Done()
	for {
		ok := co.relayOnce(j, pl)
		if ok {
			return
		}
		if j.ctx.Err() != nil {
			// Cancelled or coordinator closing: the worker may still hold the
			// job; finalize only on explicit cancel (abandon leaves the
			// journal non-terminal for restart re-dispatch).
			j.mu.Lock()
			cancelled := j.cancelled
			j.mu.Unlock()
			if cancelled {
				j.finalize(serve.JobCancelled, "cancelled by client", "", nil)
			}
			return
		}
		co.markDead(pl.idx, pl.gen)
		j.mu.Lock()
		j.attempts++
		attempts := j.attempts
		j.mu.Unlock()
		if attempts > co.cfg.MaxAttempts {
			j.finalize(serve.JobFailed,
				fmt.Sprintf("lost %d workers running this job", attempts-1),
				ReasonWorkerLost, nil)
			return
		}
		co.handoffs.Add(1)
		next := co.redispatch(j)
		if next == nil {
			return // redispatch finalized the job (or the job was abandoned)
		}
		pl = next
	}
}

// relayOnce streams the job once from its current placement. It returns
// true when the job reached a terminal state (job finalized), false when
// the stream died first (caller hands off).
func (co *Coordinator) relayOnce(j *cjob, pl *placement) bool {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet,
		pl.addr+"/v1/jobs/"+pl.status.ID+"/stream", nil)
	if err != nil {
		return false
	}
	resp, err := co.sc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	jl := co.journal()
	dec := json.NewDecoder(resp.Body)
	for {
		var line streamLine
		if err := dec.Decode(&line); err != nil {
			return false // stream died before the terminal line
		}
		if line.Done {
			return co.finishFromWorker(j, pl)
		}
		if line.Index == nil {
			continue
		}
		n := j.publish([]serve.Sample{{
			Index: *line.Index, Node: line.Node, Steps: line.Steps, Cost: line.Cost,
		}})
		if jl != nil {
			j.mu.Lock()
			advanced := n > j.durable
			if advanced {
				j.durable = n
			}
			j.mu.Unlock()
			if advanced {
				jl.AppendProgress(j.id, n)
			}
		}
	}
}

// finishFromWorker pulls the terminal status (with its result summary) from
// the worker and finalizes the coordinator job. A worker that claims done on
// the stream but cannot produce a terminal status is treated as lost.
func (co *Coordinator) finishFromWorker(j *cjob, pl *placement) bool {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet,
		pl.addr+"/v1/jobs/"+pl.status.ID, nil)
	if err != nil {
		return false
	}
	resp, err := co.hc.Do(req)
	if err != nil {
		return false
	}
	body := readBody(resp.Body)
	resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &st) != nil || !st.State.Terminal() {
		return false
	}
	if st.State == serve.JobDone && st.Digest != "" && co.results != nil {
		// Memoize the clean completion under the worker's digest. The row
		// log is complete (the terminal line follows every relayed row) and
		// append-only, so sharing it with the cache is safe; Put itself
		// drops partial results.
		j.mu.Lock()
		j.digest = st.Digest
		rows := j.samples
		j.mu.Unlock()
		co.results.Put(st.Digest, rows, st.Result)
	}
	j.finalize(st.State, st.Error, st.FailureReason, st.Result)
	return true
}

// redispatch places the job on another live worker after a loss, retrying
// through sheds and worker gaps for up to redispatchWindow. A 4xx relay is
// impossible here (the spec was already accepted once), so a forwarded
// rejection fails the job.
const redispatchWindow = 30 * time.Second

func (co *Coordinator) redispatch(j *cjob) *placement {
	j.mu.Lock()
	spec := j.spec
	j.mu.Unlock()
	deadline := time.Now().Add(redispatchWindow)
	for {
		if j.ctx.Err() != nil {
			j.mu.Lock()
			cancelled := j.cancelled
			j.mu.Unlock()
			if cancelled {
				j.finalize(serve.JobCancelled, "cancelled by client", "", nil)
			}
			return nil
		}
		pl, fwd := co.dispatchOnce(j.ctx, spec)
		if pl != nil {
			j.mu.Lock()
			j.worker = pl.idx
			j.remoteID = pl.status.ID
			j.mu.Unlock()
			if jl := co.journal(); jl != nil {
				// Re-append accepted: replay keeps the latest spec for the id
				// (renormalization is idempotent, so this is a no-op refresh).
				j.mu.Lock()
				rec := j.recordLocked()
				j.mu.Unlock()
				jl.AppendAccepted(rec)
			}
			return pl
		}
		if fwd != nil && fwd.code != http.StatusServiceUnavailable {
			j.finalize(serve.JobFailed,
				fmt.Sprintf("re-dispatch rejected: %s", string(fwd.body)),
				ReasonWorkerLost, nil)
			return nil
		}
		if time.Now().After(deadline) {
			j.finalize(serve.JobFailed,
				fmt.Sprintf("no worker accepted the job within %s of losing its worker", redispatchWindow),
				ReasonWorkerLost, nil)
			return nil
		}
		select {
		case <-j.ctx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// recoverFromJournal folds the replayed journal into the job table:
// terminal records rehydrate (status + full row log, zero re-execution);
// incomplete records re-enter the dispatch path once workers join, their
// already-durable rows suppressed from re-journaling by the durable
// high-water mark. Called from NewCoordinator before the HTTP surface is up.
func (co *Coordinator) recoverFromJournal(jl *serve.Journal) {
	recs, seq := jl.Recovered()
	co.mu.Lock()
	if seq > co.seq {
		co.seq = seq
	}
	var resume []*cjob
	for i := range recs {
		rec := recs[i]
		j := co.newCJob(rec.ID, rec.Seq, rec.Spec)
		if rec.SubmittedMS > 0 {
			j.submitted = time.UnixMilli(rec.SubmittedMS)
		}
		if rec.StartedMS > 0 {
			j.started = time.UnixMilli(rec.StartedMS)
		}
		if rec.Seq > co.seq {
			co.seq = rec.Seq
		}
		if rec.State.Terminal() {
			j.state = rec.State
			j.errMsg = rec.Error
			j.reason = rec.Reason
			j.digest = rec.Digest
			j.result = rec.Result
			j.samples = rec.Rows
			j.durable = len(rec.Rows)
			if rec.FinishedMS > 0 {
				j.finished = time.UnixMilli(rec.FinishedMS)
			}
			// Re-seed the coordinator cache from rehydrated clean
			// completions, so repeats keep hitting fleet-side across
			// restarts (Put drops partial results itself).
			if rec.State == serve.JobDone && rec.Digest != "" && co.results != nil {
				co.results.Put(rec.Digest, rec.Rows, rec.Result)
			}
		} else {
			j.durable = rec.Durable
			resume = append(resume, j)
		}
		co.jobs[rec.ID] = j
		co.order = append(co.order, rec.ID)
	}
	co.mu.Unlock()
	for _, j := range resume {
		co.jobsSubmitted.Add(1)
		co.inFlight.Add(1)
		co.wg.Add(1)
		go func(j *cjob) {
			defer co.wg.Done()
			pl := co.redispatch(j)
			if pl == nil {
				return
			}
			j.mu.Lock()
			if j.attempts == 0 {
				j.attempts = 1
			}
			if j.started.IsZero() {
				j.started = time.Now()
			}
			j.mu.Unlock()
			co.wg.Add(1)
			co.relay(j, pl)
		}(j)
	}
}

// snapshotRecords supplies the journal's rotation snapshot: every job's
// durable state, in submission order, plus the id-sequence high water.
func (co *Coordinator) snapshotRecords() ([]serve.JobRecord, int64) {
	co.mu.Lock()
	jobs := make([]*cjob, 0, len(co.order))
	for _, id := range co.order {
		jobs = append(jobs, co.jobs[id])
	}
	seq := co.seq
	co.mu.Unlock()
	out := make([]serve.JobRecord, len(jobs))
	for i, j := range jobs {
		j.mu.Lock()
		out[i] = j.recordLocked()
		j.mu.Unlock()
	}
	return out, seq
}
