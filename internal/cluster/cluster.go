// Package cluster scales the resident sampling service from one daemon to a
// coordinator/worker fleet while keeping the paper's cost accounting exact.
//
// Roles:
//
//   - A Worker is a full serve stack (Engine + Manager + HTTP surface) that
//     additionally owns a slice of the fleet's neighbor-cache shards: cache
//     shard s (s = v & 63, the same sharding osn.SharedCache uses) belongs
//     to worker s mod N. Workers register with the coordinator, heartbeat
//     their meters, and answer shard-owner lookups for each other over
//     POST /cluster/v1/resolve — so any worker can resolve any frontier,
//     paying one RPC instead of one backend fetch when the owner already
//     holds the node.
//   - The Coordinator admits jobs over the same HTTP surface weserve
//     exposes (POST /v1/jobs, NDJSON /stream, DELETE, /metrics, /readyz),
//     places each job on a live worker, relays its sample stream to the
//     client, and aggregates fleet meters. On worker loss it re-dispatches
//     the job's normalized spec to another worker and suppresses the rows
//     already delivered — the deterministic re-run (PR 7's resume contract)
//     makes the client-visible stream bit-identical to an uninterrupted
//     run.
//
// Charging: each worker's SharedCache counts OwnedUnique — distinct owned
// nodes first-accessed anywhere in the fleet (owners arbitrate first-access
// for their shards). The coordinator's fleet_queries is the sum of
// OwnedUnique over all workers (dead workers contribute their last reported
// count), which equals the single-process TotalQueries for the same jobs at
// fixed (seed, workers) — see internal/osn/partition.go for the argument.
//
// The wire protocol is deliberately small and JSON-over-HTTP (matching the
// rest of the service): register, heartbeat, resolve, stats. Heartbeats
// piggyback worker meters so a coordinator /metrics scrape never blocks on
// the fleet.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/serve"
)

// Protocol paths mounted by Worker.Handler and Coordinator.Handler.
const (
	PathRegister  = "/cluster/v1/register"
	PathHeartbeat = "/cluster/v1/heartbeat"
	PathResolve   = "/cluster/v1/resolve"
	PathStats     = "/cluster/v1/stats"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Addr is the worker's reachable base URL (http://host:port).
	Addr string `json:"addr"`
	// Name is an optional operator label.
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its fleet slot.
type RegisterResponse struct {
	// Index is the worker's position in [0, Workers): it owns cache shard s
	// iff s mod Workers == Index.
	Index int `json:"index"`
	// Workers is the fleet size the coordinator was configured for.
	Workers int `json:"workers"`
	// Peers maps fleet index to worker base URL ("" when unregistered).
	Peers []string `json:"peers"`
	// Complete reports whether every fleet slot is registered and alive.
	Complete bool `json:"complete"`
}

// WorkerStats is a worker's meter snapshot, piggybacked on heartbeats and
// served at /cluster/v1/stats.
type WorkerStats struct {
	Name            string `json:"name,omitempty"`
	Samples         int64  `json:"samples"`
	InFlight        int64  `json:"inflight"`
	Queries         int64  `json:"queries"`
	Calls           int64  `json:"calls"`
	UniqueNodes     int64  `json:"unique_nodes"`
	OwnedUnique     int64  `json:"owned_unique"`
	RemoteFallbacks int64  `json:"remote_fallbacks"`
	// Partitioned reports that the worker has installed the fleet cache
	// partition (trivially true for a one-worker fleet). The coordinator's
	// /readyz waits for every worker's flag: jobs run before a partition is
	// installed would charge their unique nodes locally AND at the owner,
	// breaking exact fleet-wide accounting.
	Partitioned bool `json:"partitioned"`
	// Result-cache meters (the worker's own serve-layer job result cache).
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheBytes     int64 `json:"cache_bytes"`
	// Norm is the worker's spec-normalization environment. The coordinator
	// adopts it to canonicalize and digest incoming specs fleet-side, so
	// repeat submissions are answered without dispatching to any worker.
	// Env drift between coordinator and worker can only cause cache misses,
	// never false hits: entries are stored under worker-computed digests.
	Norm *serve.NormEnv `json:"norm,omitempty"`
}

// HeartbeatRequest refreshes a worker's liveness and meters.
type HeartbeatRequest struct {
	Index int         `json:"index"`
	Addr  string      `json:"addr"`
	Stats WorkerStats `json:"stats"`
}

// HeartbeatResponse carries the current fleet view back to the worker.
type HeartbeatResponse struct {
	Peers    []string `json:"peers"`
	Complete bool     `json:"complete"`
}

// ResolveRequest asks a shard owner to resolve neighbor lists for ids it
// owns (lookup-or-fetch + store + fleet-first test-and-set).
type ResolveRequest struct {
	IDs []int32 `json:"ids"`
}

// ResolveResponse carries the owner's answers: Lists[i] is the neighbor
// list of IDs[i], First[i] its fleet-first verdict (the requester charges
// iff First[i]).
type ResolveResponse struct {
	Lists [][]int32 `json:"lists"`
	First []bool    `json:"first"`
}

// postJSON posts v and decodes the response into out (when non-nil),
// requiring status code want.
func postJSON(hc *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s returned %s", url, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
