package cluster

import (
	"fmt"
	"io"
	"time"
)

// WriteProm writes the coordinator's metric set in Prometheus text
// exposition format: fleet-level job counters (same metric names a single
// weserve daemon exposes, so dashboards point at either), the exact
// fleet-wide charge meter, and per-worker gauges labeled by fleet index.
// Worker meters come from the last heartbeat (or stats scrape) — a scrape
// never blocks on the fleet.
func (co *Coordinator) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("walknotwait_jobs_submitted_total", "Jobs admitted and placed on a worker.", co.jobsSubmitted.Load())
	counter("walknotwait_jobs_shed_total", "Submissions turned away with 503 (fleet overloaded, draining, or no workers).", co.jobsShed.Load())
	fmt.Fprintf(w, "# HELP walknotwait_jobs_finished_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE walknotwait_jobs_finished_total counter\n")
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"done\"} %d\n", co.jobsDone.Load())
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"failed\"} %d\n", co.jobsFailed.Load())
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"cancelled\"} %d\n", co.jobsCancelled.Load())
	gauge("walknotwait_jobs_inflight", "Jobs currently relaying from workers.", float64(co.inFlight.Load()))

	samples := co.samples.Load()
	up := time.Since(co.start).Seconds()
	counter("walknotwait_samples_total", "Sample rows relayed to clients across all jobs.", samples)
	rate := 0.0
	if up > 0 {
		rate = float64(samples) / up
	}
	gauge("walknotwait_samples_per_second", "Relayed samples per second of uptime.", rate)
	gauge("walknotwait_uptime_seconds", "Coordinator uptime.", up)

	counter("walknotwait_cluster_handoffs_total", "Jobs re-dispatched after losing their worker.", co.handoffs.Load())
	counter("walknotwait_cluster_shed_forwarded_total", "Worker-side 503 sheds relayed verbatim to clients.", co.shedForwarded.Load())

	rcs := co.ResultCacheStats()
	counter("walknotwait_jobs_cache_hits_total", "Repeat submissions answered from the coordinator's result cache (no worker dispatch).", rcs.Hits)
	counter("walknotwait_jobs_cache_misses_total", "Submissions that missed the coordinator's result cache and were dispatched.", rcs.Misses)
	counter("walknotwait_jobs_cache_evictions_total", "Cached job results evicted by the coordinator's LRU byte budget.", rcs.Evictions)
	gauge("walknotwait_jobs_cache_bytes", "Bytes held by the coordinator's job result cache.", float64(rcs.Bytes))
	gauge("walknotwait_jobs_cache_entries", "Job results currently cached coordinator-side.", float64(rcs.Entries))
	counter("walknotwait_queries_saved_total", "Query charges avoided by coordinator result-cache hits (the original runs' costs).", rcs.QueriesSaved)

	sum := co.Summary(false)
	counter("walknotwait_queries_charged_total", "Fleet-wide query cost: sum of per-worker owned-unique meters (the paper's cost axis).", sum.FleetQueries)
	gauge("walknotwait_cluster_workers_live", "Fleet slots currently heartbeating.", float64(sum.WorkersLive))
	gauge("walknotwait_cluster_workers_expected", "Configured fleet size.", float64(sum.WorkersTotal))

	perWorker := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	perWorker("walknotwait_cluster_worker_up", "1 while the worker's heartbeats are fresh.")
	for _, ws := range sum.Workers {
		v := 0
		if ws.Up {
			v = 1
		}
		fmt.Fprintf(w, "walknotwait_cluster_worker_up{worker=\"%d\"} %d\n", ws.Index, v)
	}
	perWorker("walknotwait_cluster_worker_samples", "Samples produced by the worker since its start.")
	for _, ws := range sum.Workers {
		fmt.Fprintf(w, "walknotwait_cluster_worker_samples{worker=\"%d\"} %d\n", ws.Index, ws.Stats.Samples)
	}
	perWorker("walknotwait_cluster_worker_inflight", "Jobs currently running on the worker.")
	for _, ws := range sum.Workers {
		fmt.Fprintf(w, "walknotwait_cluster_worker_inflight{worker=\"%d\"} %d\n", ws.Index, ws.Stats.InFlight)
	}
	perWorker("walknotwait_cluster_worker_owned_unique", "Distinct partition-owned nodes first accessed through the worker (last reported value survives death).")
	for _, ws := range sum.Workers {
		fmt.Fprintf(w, "walknotwait_cluster_worker_owned_unique{worker=\"%d\"} %d\n", ws.Index, ws.OwnedUnique)
	}
	perWorker("walknotwait_cluster_worker_remote_fallbacks", "Non-owned lookups the worker served locally because the shard owner was unreachable.")
	for _, ws := range sum.Workers {
		fmt.Fprintf(w, "walknotwait_cluster_worker_remote_fallbacks{worker=\"%d\"} %d\n", ws.Index, ws.Stats.RemoteFallbacks)
	}
}
