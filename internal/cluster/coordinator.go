package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// CoordinatorConfig configures the fleet frontend. Zero fields select
// defaults.
type CoordinatorConfig struct {
	// Workers is the expected fleet size (required, >= 1). The coordinator
	// assigns indices 0..Workers-1 and reports ready only when every slot
	// is registered and alive.
	Workers int
	// HeartbeatTimeout is how stale a worker's last heartbeat may be before
	// it is considered dead (default 2s).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds how many workers one job may be dispatched to
	// before it fails with reason "worker_lost" (default 5).
	MaxAttempts int
	// Journal, when non-nil, makes job hand-off durable: accepted specs,
	// relay progress, and terminal records are journaled in the serve
	// frame format, and incomplete jobs are re-dispatched at boot. The
	// coordinator takes ownership and closes it on Close.
	Journal *serve.Journal
	// DispatchTimeout bounds one submit/status call to a worker (default
	// 10s). Streams are not bounded by it.
	DispatchTimeout time.Duration
	// CacheBytes bounds the coordinator-side job result cache: completed
	// jobs are memoized by the digest their worker reported, and repeat
	// submissions are answered without dispatching to any worker. Zero
	// selects serve.DefaultCacheBytes; negative disables it.
	CacheBytes int64
}

func (c CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if c.Workers < 1 {
		return c, errors.New("cluster: coordinator needs a fleet size >= 1")
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = 10 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = serve.DefaultCacheBytes
	}
	return c, nil
}

// workerSlot is the coordinator's view of one fleet index.
type workerSlot struct {
	addr     string
	name     string
	lastSeen time.Time
	stats    WorkerStats
	// lastOwned survives death: a dead worker's owned-unique charges stay
	// in the fleet aggregate (its queried bitset was the authority while it
	// lived).
	lastOwned int64
	// generation increments on (re-)registration, so a replacement worker
	// taking over a dead slot invalidates relays pinned to the old one.
	generation int64
}

// Typed shed reasons the coordinator adds on top of the worker's own
// (queue_full, draining — which are forwarded verbatim).
const (
	// ShedNoWorkers is returned when no live worker can take a job.
	ShedNoWorkers = "no_workers"
)

// ReasonWorkerLost marks a job that exhausted its dispatch attempts.
const ReasonWorkerLost = "worker_lost"

// Coordinator is the fleet frontend: worker registry and liveness, job
// placement, stream relay with hand-off, and aggregated meters, served over
// the same HTTP surface as a single weserve daemon.
type Coordinator struct {
	cfg   CoordinatorConfig
	hc    *http.Client // dispatch/status calls (bounded)
	sc    *http.Client // stream relays (unbounded)
	start time.Time

	mu      sync.Mutex
	workers []workerSlot
	rr      int // round-robin placement cursor
	jobs    map[string]*cjob
	order   []string
	seq     int64
	closed  bool

	jl atomic.Pointer[serve.Journal]

	// results memoizes completed fleet jobs by their worker-reported spec
	// digest (nil when disabled); normEnv is the normalization environment
	// adopted from worker heartbeats, needed to compute lookup digests
	// coordinator-side. Until the first heartbeat arrives, submissions
	// dispatch normally (a startup window of misses, never a wrong hit).
	results *serve.ResultCache
	normEnv atomic.Pointer[serve.NormEnv]

	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsShed      atomic.Int64
	shedForwarded atomic.Int64
	handoffs      atomic.Int64
	samples       atomic.Int64
	inFlight      atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator builds the fleet frontend and starts its liveness loop.
// With a journal attached, terminal jobs rehydrate and incomplete jobs are
// re-dispatched (suppressing already-durable rows) once workers join.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:     cfg,
		hc:      &http.Client{Timeout: cfg.DispatchTimeout},
		sc:      &http.Client{},
		start:   time.Now(),
		workers: make([]workerSlot, cfg.Workers),
		jobs:    make(map[string]*cjob),
		stop:    make(chan struct{}),
	}
	if cfg.CacheBytes > 0 {
		co.results = serve.NewResultCache(cfg.CacheBytes)
	}
	if cfg.Journal != nil {
		co.jl.Store(cfg.Journal)
		co.recoverFromJournal(cfg.Journal)
		cfg.Journal.SetSnapshot(co.snapshotRecords)
	}
	co.wg.Add(1)
	go co.livenessLoop()
	return co, nil
}

// Close stops placement (later submissions shed with "draining"), cancels
// relays, and closes the journal. Worker processes are not touched.
func (co *Coordinator) Close() {
	co.mu.Lock()
	already := co.closed
	co.closed = true
	jobs := make([]*cjob, 0, len(co.jobs))
	for _, j := range co.jobs {
		jobs = append(jobs, j)
	}
	co.mu.Unlock()
	if already {
		co.wg.Wait()
		return
	}
	co.stopOnce.Do(func() { close(co.stop) })
	for _, j := range jobs {
		j.abandon()
	}
	co.wg.Wait()
	if jl := co.jl.Swap(nil); jl != nil {
		jl.Close()
	}
}

func (co *Coordinator) journal() *serve.Journal { return co.jl.Load() }

// livenessLoop ages out workers whose heartbeats stopped.
func (co *Coordinator) livenessLoop() {
	defer co.wg.Done()
	period := co.cfg.HeartbeatTimeout / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			// Liveness is computed from lastSeen at read time; the ticker
			// only bounds how long a dead worker can pin its slot before a
			// replacement may re-register into it (nothing to do here —
			// register() checks staleness itself). Kept as a goroutine so a
			// future epoch/rebalance step has a home.
		}
	}
}

func (co *Coordinator) alive(s *workerSlot, now time.Time) bool {
	return s.addr != "" && now.Sub(s.lastSeen) <= co.cfg.HeartbeatTimeout
}

// register assigns the worker a fleet index: a slot it already holds (same
// addr), else the first empty slot, else the first dead slot (replacement).
func (co *Coordinator) register(req RegisterRequest) (RegisterResponse, error) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	idx := -1
	for i := range co.workers {
		if co.workers[i].addr == req.Addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		for i := range co.workers {
			if co.workers[i].addr == "" {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		for i := range co.workers {
			if !co.alive(&co.workers[i], now) {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return RegisterResponse{}, fmt.Errorf("fleet full: %d live workers", len(co.workers))
	}
	s := &co.workers[idx]
	s.addr = req.Addr
	s.name = req.Name
	s.lastSeen = now
	s.generation++
	return RegisterResponse{
		Index:    idx,
		Workers:  len(co.workers),
		Peers:    co.peersLocked(),
		Complete: co.completeLocked(now),
	}, nil
}

func (co *Coordinator) peersLocked() []string {
	peers := make([]string, len(co.workers))
	for i := range co.workers {
		peers[i] = co.workers[i].addr
	}
	return peers
}

func (co *Coordinator) completeLocked(now time.Time) bool {
	for i := range co.workers {
		if !co.alive(&co.workers[i], now) {
			return false
		}
	}
	return true
}

// partitionedLocked reports whether every live worker has confirmed (via
// heartbeat) that its cache partition is installed. Jobs placed earlier
// would charge unique nodes both locally and at their shard owner, so
// /readyz holds until this is true.
func (co *Coordinator) partitionedLocked() bool {
	for i := range co.workers {
		if !co.workers[i].stats.Partitioned {
			return false
		}
	}
	return true
}

func (co *Coordinator) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	if req.Index < 0 || req.Index >= len(co.workers) {
		return HeartbeatResponse{}, fmt.Errorf("unknown worker index %d", req.Index)
	}
	s := &co.workers[req.Index]
	if s.addr != req.Addr {
		// Slot was re-assigned (the worker was declared dead and replaced);
		// the stale worker must re-register.
		return HeartbeatResponse{}, fmt.Errorf("index %d now belongs to %s", req.Index, s.addr)
	}
	s.lastSeen = now
	s.stats = req.Stats
	s.lastOwned = req.Stats.OwnedUnique
	if req.Stats.Norm != nil {
		co.normEnv.Store(req.Stats.Norm)
	}
	return HeartbeatResponse{Peers: co.peersLocked(), Complete: co.completeLocked(now)}, nil
}

// markDead immediately ages a worker out (dispatch or relay saw its
// connection die) so placement skips it without waiting a full timeout.
func (co *Coordinator) markDead(idx int, generation int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if idx < 0 || idx >= len(co.workers) {
		return
	}
	if co.workers[idx].generation == generation {
		co.workers[idx].lastSeen = time.Time{}
	}
}

// pickWorker returns the next live worker in round-robin order, skipping
// indices in `not` (already tried for this job). ok is false when no live
// worker remains.
func (co *Coordinator) pickWorker(not map[int]bool) (idx int, addr string, generation int64, ok bool) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	n := len(co.workers)
	for off := 0; off < n; off++ {
		i := (co.rr + off) % n
		if not[i] || !co.alive(&co.workers[i], now) {
			continue
		}
		co.rr = (i + 1) % n
		return i, co.workers[i].addr, co.workers[i].generation, true
	}
	return 0, "", 0, false
}

// FleetQueries returns the fleet-wide unique-node charge: the sum of every
// worker's owned-unique meter, dead workers contributing their last
// reported value.
func (co *Coordinator) FleetQueries() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	var total int64
	for i := range co.workers {
		total += co.workers[i].lastOwned
	}
	return total
}

// WorkersLive returns how many fleet slots are currently alive.
func (co *Coordinator) WorkersLive() int {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	n := 0
	for i := range co.workers {
		if co.alive(&co.workers[i], now) {
			n++
		}
	}
	return n
}

// refreshStats synchronously scrapes every live worker's /cluster/v1/stats,
// so fleet summaries taken right after a job completes see its final
// meters instead of waiting a heartbeat period.
func (co *Coordinator) refreshStats() {
	now := time.Now()
	co.mu.Lock()
	type target struct {
		idx  int
		addr string
		gen  int64
	}
	targets := make([]target, 0, len(co.workers))
	for i := range co.workers {
		if co.alive(&co.workers[i], now) {
			targets = append(targets, target{i, co.workers[i].addr, co.workers[i].generation})
		}
	}
	co.mu.Unlock()
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t target) {
			defer wg.Done()
			resp, err := co.hc.Get(t.addr + PathStats)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var st WorkerStats
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
				return
			}
			co.mu.Lock()
			if co.workers[t.idx].generation == t.gen {
				co.workers[t.idx].stats = st
				co.workers[t.idx].lastOwned = st.OwnedUnique
				co.workers[t.idx].lastSeen = time.Now()
			}
			co.mu.Unlock()
			if st.Norm != nil {
				co.normEnv.Store(st.Norm)
			}
		}(t)
	}
	wg.Wait()
}

// WorkerSummary is one fleet slot in the /v1/cluster summary.
type WorkerSummary struct {
	Index int         `json:"index"`
	Addr  string      `json:"addr,omitempty"`
	Name  string      `json:"name,omitempty"`
	Up    bool        `json:"up"`
	Stats WorkerStats `json:"stats"`
	// OwnedUnique repeats the worker's owned-unique meter at top level
	// (last reported value for dead workers) — the fleet_queries addend.
	OwnedUnique int64 `json:"owned_unique"`
}

// ClusterSummary is the /v1/cluster response.
type ClusterSummary struct {
	Workers      []WorkerSummary `json:"workers"`
	WorkersLive  int             `json:"workers_live"`
	WorkersTotal int             `json:"workers_total"`
	// FleetQueries is Σ owned-unique over all slots: the exact fleet-wide
	// unique-node charge (== single-process TotalQueries for the same jobs
	// at fixed seed/workers).
	FleetQueries int64 `json:"fleet_queries"`
	Handoffs     int64 `json:"handoffs"`
	// Cache is the coordinator-side result cache snapshot; CacheHits and
	// CacheMisses aggregate result-cache traffic fleet-wide (coordinator
	// lookups plus every worker's own cache, last reported values).
	Cache       serve.ResultCacheStats `json:"jobs_cache"`
	CacheHits   int64                  `json:"cache_hits"`
	CacheMisses int64                  `json:"cache_misses"`
}

// Summary snapshots the fleet, optionally refreshing worker stats first.
func (co *Coordinator) Summary(refresh bool) ClusterSummary {
	if refresh {
		co.refreshStats()
	}
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	out := ClusterSummary{
		Workers:      make([]WorkerSummary, len(co.workers)),
		WorkersTotal: len(co.workers),
		Handoffs:     co.handoffs.Load(),
		Cache:        co.ResultCacheStats(),
	}
	out.CacheHits = out.Cache.Hits
	out.CacheMisses = out.Cache.Misses
	for i := range co.workers {
		s := &co.workers[i]
		up := co.alive(s, now)
		out.Workers[i] = WorkerSummary{
			Index: i, Addr: s.addr, Name: s.name, Up: up,
			Stats: s.stats, OwnedUnique: s.lastOwned,
		}
		if up {
			out.WorkersLive++
		}
		out.FleetQueries += s.lastOwned
		out.CacheHits += s.stats.CacheHits
		out.CacheMisses += s.stats.CacheMisses
	}
	return out
}

// ResultCacheStats returns the coordinator-side result cache snapshot
// (Enabled false, all zeros, when disabled).
func (co *Coordinator) ResultCacheStats() serve.ResultCacheStats {
	if co.results == nil {
		return serve.ResultCacheStats{}
	}
	return co.results.Stats()
}

// Handler returns the coordinator's HTTP surface: the weserve-compatible
// job API (submissions fan out to workers, streams relay back), the fleet
// endpoints, and aggregated health/metrics.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if r.Method != http.MethodPost || json.NewDecoder(r.Body).Decode(&req) != nil || req.Addr == "" {
			httpError(w, http.StatusBadRequest, "POST a register request with addr")
			return
		}
		resp, err := co.register(req)
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if r.Method != http.MethodPost || json.NewDecoder(r.Body).Decode(&req) != nil {
			httpError(w, http.StatusBadRequest, "POST a heartbeat")
			return
		}
		resp, err := co.heartbeat(req)
		if err != nil {
			httpError(w, http.StatusGone, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	live := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":            true,
			"role":          "coordinator",
			"uptime_s":      time.Since(co.start).Seconds(),
			"workers_live":  co.WorkersLive(),
			"workers_total": co.cfg.Workers,
			"jobs_inflight": co.inFlight.Load(),
			"samples":       co.samples.Load(),
		})
	}
	mux.HandleFunc("/healthz", live)
	mux.HandleFunc("/livez", live)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		co.mu.Lock()
		draining := co.closed
		complete := co.completeLocked(time.Now())
		partitioned := co.partitionedLocked()
		co.mu.Unlock()
		code := http.StatusOK
		if draining || !complete || !partitioned {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{
			"ready":         code == http.StatusOK,
			"draining":      draining,
			"partitioned":   partitioned,
			"workers_live":  co.WorkersLive(),
			"workers_total": co.cfg.Workers,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		co.WriteProm(w)
	})
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.Summary(r.URL.Query().Get("refresh") != "0"))
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			co.handleSubmit(w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"jobs": co.List()})
		default:
			httpError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
		}
	})
	mux.HandleFunc("/v1/jobs/", co.handleJob)
	return mux
}

// shed writes the coordinator's own typed 503 (reason it generated itself —
// worker sheds are forwarded verbatim by handleSubmit instead).
func shedOwn(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":          reason,
		"retry_after_ms": int64(1000),
	})
}

// forwardResponse relays a worker's HTTP response unchanged: status code,
// Retry-After hint, and body — so a worker's typed queue_full 503 reaches
// the client exactly as the worker wrote it (no double-shedding).
func forwardResponse(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// List returns snapshots of all coordinator jobs in submission order.
func (co *Coordinator) List() []JobStatus {
	co.mu.Lock()
	jobs := make([]*cjob, 0, len(co.order))
	for _, id := range co.order {
		jobs = append(jobs, co.jobs[id])
	}
	co.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// getJob returns the coordinator job with the given id.
func (co *Coordinator) getJob(id string) (*cjob, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	return j, ok
}

func (co *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id, stream := trimID(r.URL.Path)
	j, ok := co.getJob(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	switch {
	case stream && r.Method == http.MethodGet:
		j.streamTo(w, r)
	case r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.status())
	case r.Method == http.MethodDelete:
		co.cancelJob(j)
		writeJSON(w, http.StatusOK, j.status())
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET for status/stream or DELETE to cancel")
	}
}

// trimID extracts the job id and stream flag from a /v1/jobs/ subpath.
func trimID(path string) (string, bool) {
	rest := path
	for len(rest) > 0 && rest[0] == '/' {
		rest = rest[1:]
	}
	const prefix = "v1/jobs/"
	if len(rest) >= len(prefix) && rest[:len(prefix)] == prefix {
		rest = rest[len(prefix):]
	}
	for len(rest) > 0 && rest[len(rest)-1] == '/' {
		rest = rest[:len(rest)-1]
	}
	if len(rest) > len("/stream") && rest[len(rest)-len("/stream"):] == "/stream" {
		return rest[:len(rest)-len("/stream")], true
	}
	return rest, false
}

// readBody reads at most 1 MiB of a response body (worker error bodies are
// tiny; the bound keeps a confused worker from ballooning the relay).
func readBody(r io.Reader) []byte {
	b, _ := io.ReadAll(io.LimitReader(r, 1<<20))
	return b
}
