package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/osn"
	"repro/internal/serve"
)

// WorkerConfig configures a fleet worker. Zero durations select defaults.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Advertise is this worker's externally reachable base URL (required) —
	// what peers dial for shard resolution and the coordinator dials for
	// job dispatch.
	Advertise string
	// Name is an optional operator label surfaced in fleet stats.
	Name string
	// HeartbeatEvery is the heartbeat period (default 300ms — liveness is
	// the hand-off trigger, so the period stays well under the
	// coordinator's timeout).
	HeartbeatEvery time.Duration
	// ResolveTimeout bounds one shard-owner RPC (default 5s). On expiry the
	// client falls back to its local backend (see osn.SharedCache
	// RemoteFallbacks).
	ResolveTimeout time.Duration
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Coordinator == "" {
		return c, errors.New("cluster: worker needs a coordinator URL")
	}
	if c.Advertise == "" {
		return c, errors.New("cluster: worker needs an advertise URL")
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 300 * time.Millisecond
	}
	if c.ResolveTimeout <= 0 {
		c.ResolveTimeout = 5 * time.Second
	}
	return c, nil
}

// Worker joins a serve.Manager to a sampling fleet: it registers with the
// coordinator, heartbeats its meters, answers shard-owner lookups for its
// slice of the neighbor cache, and — once every fleet slot is registered —
// installs the cache partition so its own jobs resolve non-owned misses
// through their owners. The full single-daemon HTTP surface stays mounted,
// so a worker is also directly usable as a plain weserve.
type Worker struct {
	mgr *serve.Manager
	cfg WorkerConfig
	hc  *http.Client

	mu        sync.Mutex
	index     int
	fleet     int
	peers     []string
	complete  bool
	installed bool
	joined    bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWorker wraps an existing manager as a fleet worker. Call Start to
// register and begin heartbeating; mount Handler as the HTTP surface.
func NewWorker(mgr *serve.Manager, cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Worker{
		mgr:  mgr,
		cfg:  cfg,
		hc:   &http.Client{Timeout: cfg.ResolveTimeout},
		stop: make(chan struct{}),
	}, nil
}

// Manager returns the wrapped serve manager.
func (w *Worker) Manager() *serve.Manager { return w.mgr }

// Index returns the worker's assigned fleet index (-1 before registration).
func (w *Worker) Index() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.joined {
		return -1
	}
	return w.index
}

// Handler returns the worker's HTTP surface: the full single-daemon serve
// API plus the cluster endpoints (shard resolution and stats).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathResolve, w.handleResolve)
	mux.HandleFunc(PathStats, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, w.Stats())
	})
	mux.Handle("/", serve.Handler(w.mgr))
	return mux
}

// Stats snapshots the worker's meters for heartbeats and fleet scrapes.
func (w *Worker) Stats() WorkerStats {
	cs := w.mgr.Engine().CacheStats()
	met := w.mgr.Metrics()
	w.mu.Lock()
	// A one-worker fleet needs no partition: local charging is already exact.
	partitioned := w.installed || (w.joined && w.complete && w.fleet <= 1)
	w.mu.Unlock()
	rcs := w.mgr.ResultCacheStats()
	env := w.mgr.NormEnv()
	return WorkerStats{
		Name:            w.cfg.Name,
		Samples:         met.Samples(),
		InFlight:        met.InFlight(),
		Queries:         cs.Queries,
		Calls:           cs.Calls,
		UniqueNodes:     cs.UniqueNodes,
		OwnedUnique:     cs.OwnedUnique,
		RemoteFallbacks: cs.RemoteFallbacks,
		Partitioned:     partitioned,
		CacheHits:       rcs.Hits,
		CacheMisses:     rcs.Misses,
		CacheEvictions:  rcs.Evictions,
		CacheBytes:      rcs.Bytes,
		Norm:            &env,
	}
}

// Start registers with the coordinator (retrying until it answers) and
// starts the heartbeat loop. It returns once registration succeeded.
func (w *Worker) Start() error {
	var reg RegisterResponse
	req := RegisterRequest{Addr: w.cfg.Advertise, Name: w.cfg.Name}
	for attempt := 0; ; attempt++ {
		err := postJSON(w.hc, w.cfg.Coordinator+PathRegister, req, &reg)
		if err == nil {
			break
		}
		if attempt >= 100 {
			return fmt.Errorf("cluster: registration with %s failed: %w", w.cfg.Coordinator, err)
		}
		select {
		case <-w.stop:
			return errors.New("cluster: worker stopped before registration")
		case <-time.After(100 * time.Millisecond):
		}
	}
	w.mu.Lock()
	w.joined = true
	w.index = reg.Index
	w.fleet = reg.Workers
	w.peers = reg.Peers
	w.complete = reg.Complete
	w.mu.Unlock()
	w.maybeInstallPartition()
	w.wg.Add(1)
	go w.heartbeatLoop()
	return nil
}

// Close stops the heartbeat loop. The wrapped manager is not closed — the
// caller owns its lifecycle (and its graceful drain).
func (w *Worker) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.wg.Wait()
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	// First beat immediately: if registration already completed the fleet,
	// this announces the installed partition without waiting a period.
	w.beat()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		w.beat()
	}
}

// beat sends one heartbeat and folds the coordinator's fleet view back in.
// If that view completes the fleet, the partition is installed and a second
// beat announces it right away — the coordinator holds /readyz until every
// worker reports Partitioned, so the announcement is on the ready path.
func (w *Worker) beat() {
	w.mu.Lock()
	idx := w.index
	w.mu.Unlock()
	req := HeartbeatRequest{Index: idx, Addr: w.cfg.Advertise, Stats: w.Stats()}
	var hb HeartbeatResponse
	if err := postJSON(w.hc, w.cfg.Coordinator+PathHeartbeat, req, &hb); err != nil {
		return // coordinator away; keep trying, jobs keep running
	}
	w.mu.Lock()
	w.peers = hb.Peers
	w.complete = hb.Complete
	w.mu.Unlock()
	if w.maybeInstallPartition() {
		w.beat() // recurses at most once: installed is now true
	}
}

// maybeInstallPartition installs the cache partition once the fleet is
// complete, reporting whether this call did the install. Install-once: the
// partition (index, size) is fixed for the worker's lifetime; only the peer
// table keeps refreshing.
func (w *Worker) maybeInstallPartition() bool {
	w.mu.Lock()
	ready := w.joined && w.complete && !w.installed
	idx, fleet := w.index, w.fleet
	if ready {
		w.installed = true
	}
	w.mu.Unlock()
	if !ready || fleet <= 1 {
		return false
	}
	w.mgr.Engine().Cache().SetPartition(&osn.Partition{Index: idx, Workers: fleet, Resolver: w})
	return true
}

// peerAddr returns the current base URL of fleet index i ("" if unknown).
func (w *Worker) peerAddr(i int) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if i < 0 || i >= len(w.peers) {
		return ""
	}
	return w.peers[i]
}

// ResolveShards implements osn.ShardResolver: ids are grouped by shard
// owner and resolved with one concurrent RPC per owner. An unreachable or
// unknown owner fails the whole batch — the client then serves it from the
// local backend (fallback), so a dying peer degrades charging accuracy,
// never availability.
func (w *Worker) ResolveShards(ctx context.Context, ids []int32, lists [][]int32, first []bool) error {
	w.mu.Lock()
	fleet := w.fleet
	self := w.index
	w.mu.Unlock()
	if fleet <= 1 {
		return errors.New("cluster: no fleet to resolve through")
	}
	p := osn.Partition{Index: self, Workers: fleet}
	// Group positions by owner.
	groups := make(map[int][]int, fleet)
	for i, v := range ids {
		groups[p.OwnerOf(v)] = append(groups[p.OwnerOf(v)], i)
	}
	rctx, cancel := context.WithTimeout(ctx, w.cfg.ResolveTimeout)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	for owner, pos := range groups {
		addr := w.peerAddr(owner)
		if addr == "" {
			return fmt.Errorf("cluster: owner %d unknown", owner)
		}
		wg.Add(1)
		go func(addr string, pos []int) {
			defer wg.Done()
			req := ResolveRequest{IDs: make([]int32, len(pos))}
			for j, i := range pos {
				req.IDs[j] = ids[i]
			}
			var resp ResolveResponse
			err := w.resolveCall(rctx, addr, req, &resp)
			if err == nil && (len(resp.Lists) != len(pos) || len(resp.First) != len(pos)) {
				err = fmt.Errorf("cluster: owner at %s answered %d/%d of %d ids",
					addr, len(resp.Lists), len(resp.First), len(pos))
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			for j, i := range pos {
				lists[i] = resp.Lists[j]
				first[i] = resp.First[j]
			}
		}(addr, pos)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// resolveCall is one owner RPC under ctx.
func (w *Worker) resolveCall(ctx context.Context, addr string, reqBody ResolveRequest, out *ResolveResponse) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+PathResolve, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: resolve at %s returned %s", addr, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// handleResolve is the owner side of the shard-resolution RPC: serve ids
// this worker owns from the engine cache, fetching misses from the backend
// in one batched call, and hand back the fleet-first verdicts.
func (w *Worker) handleResolve(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(rw, http.StatusMethodNotAllowed, "POST a resolve request")
		return
	}
	var req ResolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(rw, http.StatusBadRequest, "bad resolve request: "+err.Error())
		return
	}
	eng := w.mgr.Engine()
	resp := ResolveResponse{
		Lists: make([][]int32, len(req.IDs)),
		First: make([]bool, len(req.IDs)),
	}
	be := eng.Network().Backend()
	err := eng.Cache().ResolveOwned(req.IDs, resp.Lists, resp.First, func(miss []int32, out [][]int32) error {
		be.NeighborsBatch(miss, out)
		return nil
	})
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	// Empty lists must round-trip as [] (JSON null decodes to nil fine, but
	// keep the wire shape unambiguous for non-Go clients).
	for i, l := range resp.Lists {
		if l == nil {
			resp.Lists[i] = []int32{}
		}
	}
	writeJSON(rw, http.StatusOK, resp)
}
