package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 0-2, 2-3
func testGraph(t *testing.T) *Graph {
	t.Helper()
	return FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
}

func TestBuilderBasics(t *testing.T) {
	g := testGraph(t)
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestBuilderDedupeAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse orientation
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop, dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (dedupe/self-loop)", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0", g.Degree(2))
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(2)
	assertPanics(t, "out of range", func() { b.AddEdge(0, 2) })
	b.Build()
	assertPanics(t, "double build", func() { b.Build() })
	assertPanics(t, "negative n", func() { NewBuilder(-1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestHasEdge(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true}, {3, 2, true},
		{0, 3, false}, {1, 3, false}, {0, 0, false},
		{-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero Graph not empty: %v", g.String())
	}
	if g.MaxDegree() != 0 || g.MinDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("zero Graph degree stats should be 0")
	}
	b := NewBuilder(0)
	g2 := b.Build()
	if g2.NumNodes() != 0 {
		t.Fatal("built empty graph should have 0 nodes")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := testGraph(t)
	deg := g.Degrees()
	sum := 0
	for _, d := range deg {
		sum += d
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("handshake lemma violated: sum(deg)=%d, 2m=%d", sum, 2*g.NumEdges())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d, want 1", g.MinDegree())
	}
	if got, want := g.AvgDegree(), 2.0; got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
}

func TestSubgraph(t *testing.T) {
	g := testGraph(t)
	sub, ids := g.Subgraph([]int{2, 0, 1, 0}) // duplicate 0 collapsed
	if sub.NumNodes() != 3 {
		t.Fatalf("Subgraph nodes = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 { // the triangle
		t.Fatalf("Subgraph edges = %d, want 3", sub.NumEdges())
	}
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 0 || ids[2] != 1 {
		t.Fatalf("Subgraph mapping = %v", ids)
	}
}

// randomGraph builds a pseudo-random graph from a seed for property tests.
func randomGraph(seed int64, maxN int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	b := NewBuilder(n)
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestPropertyCSRInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed, 60)
		// Handshake lemma.
		sum := 0
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			nbr := g.Neighbors(v)
			for i, w := range nbr {
				// sorted, no dupes
				if i > 0 && nbr[i-1] >= w {
					return false
				}
				// no self loops
				if int(w) == v {
					return false
				}
				// symmetry
				if !g.HasEdge(int(w), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubgraphPreservesEdges(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed, 40)
		rng := rand.New(rand.NewSource(seed + 1))
		var nodes []int
		for v := 0; v < g.NumNodes(); v++ {
			if rng.Intn(2) == 0 {
				nodes = append(nodes, v)
			}
		}
		sub, ids := g.Subgraph(nodes)
		for u := 0; u < sub.NumNodes(); u++ {
			for _, w := range sub.Neighbors(u) {
				if !g.HasEdge(ids[u], ids[w]) {
					return false
				}
			}
		}
		// Every original edge between kept nodes must survive.
		inv := make(map[int]int)
		for newID, oldID := range ids {
			inv[oldID] = newID
		}
		for _, oldU := range ids {
			for _, w := range g.Neighbors(oldU) {
				if newW, ok := inv[int(w)]; ok {
					if !sub.HasEdge(inv[oldU], newW) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
