//go:build !unix

package graph

import "os"

// mapFile reads the named file into the heap on platforms without a mmap
// fast path; OpenCSR then behaves exactly like LoadCSR.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmapFile([]byte) error { return nil }
