package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"unsafe"
)

// Binary CSR serialization. The format is designed so that a graph file can
// be memory-mapped and used *in place*: after the fixed header come the raw
// CSR arrays (offsets, adjacency) and optional per-node float64 attribute
// tables, each section aligned so a mapped byte range can be reinterpreted
// as a typed slice with no decode pass and no heap copy. A million-node
// graph therefore opens in O(1) and pages in only the neighborhoods a crawl
// actually touches.
//
// Layout (all integers little-endian):
//
//	 0  magic    [8]byte "WNWCSR1\n"
//	 8  bom      uint32  0x01020304 (byte-order mark for the mmap fast path)
//	12  reserved uint32  0
//	16  n        uint64  number of nodes
//	24  adjLen   uint64  len(adj) = 2·|E|
//	32  attrs    uint64  number of attribute tables
//	40  attrOff  uint64  byte offset of the attribute section (0 if none)
//	48  offsets  (n+1)·int32
//	    adj      adjLen·int32
//	    pad      to an 8-byte boundary
//	    per attribute, sorted by name:
//	      nameLen uint32, name bytes, pad to 8, values n·float64
const (
	csrMagic      = "WNWCSR1\n"
	csrHeaderSize = 48
	csrBOM        = 0x01020304
)

// WriteCSR writes the graph (plus optional per-node attribute tables, which
// must each have exactly NumNodes values) in the binary CSR format.
// Attribute tables are written in sorted name order so output is
// deterministic.
func WriteCSR(w io.Writer, g *Graph, attrs map[string][]float64) error {
	n := g.NumNodes()
	names := make([]string, 0, len(attrs))
	for name, vals := range attrs {
		if len(vals) != n {
			return fmt.Errorf("graph: attribute %q has %d values for %d nodes", name, len(vals), n)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [csrHeaderSize]byte
	copy(hdr[:8], csrMagic)
	binary.LittleEndian.PutUint32(hdr[8:], csrBOM)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(g.adj)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(names)))
	arraysEnd := uint64(csrHeaderSize) + 4*uint64(n+1) + 4*uint64(len(g.adj))
	attrOff := uint64(0)
	if len(names) > 0 {
		attrOff = pad8(arraysEnd)
	}
	binary.LittleEndian.PutUint64(hdr[40:], attrOff)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	var scratch [8]byte
	writeInt32s := func(xs []int32) error {
		for _, x := range xs {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(x))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
		}
		return nil
	}
	if len(g.offsets) == 0 {
		// Zero-value graph: materialize the single offsets entry.
		if err := writeInt32s([]int32{0}); err != nil {
			return err
		}
	} else if err := writeInt32s(g.offsets); err != nil {
		return err
	}
	if err := writeInt32s(g.adj); err != nil {
		return err
	}
	if len(names) > 0 {
		if err := writePad(bw, int(attrOff-arraysEnd)); err != nil {
			return err
		}
		for _, name := range names {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(name)))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
			if _, err := bw.WriteString(name); err != nil {
				return err
			}
			if err := writePad(bw, int(pad8(uint64(4+len(name)))-uint64(4+len(name)))); err != nil {
				return err
			}
			for _, v := range attrs[name] {
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
				if _, err := bw.Write(scratch[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func pad8(off uint64) uint64 { return (off + 7) &^ 7 }

func writePad(w io.Writer, k int) error {
	var zero [8]byte
	_, err := w.Write(zero[:k])
	return err
}

// SaveCSR writes the graph to the named file in binary CSR format, creating
// or truncating it.
func SaveCSR(path string, g *Graph, attrs map[string][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSR(f, g, attrs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// IsCSRFile reports whether the named file starts with the binary CSR magic.
// It is how the CLIs tell a binary graph from a plain-text edge list.
func IsCSRFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return string(m[:]) == csrMagic
}

// MappedCSR is a graph opened from a binary CSR file. When the platform
// supports memory mapping, the CSR arrays and attribute tables are views
// straight into the mapped file — no edge is ever copied to the heap and
// only touched pages are resident; otherwise the file is decoded into
// memory with identical semantics. Close releases the mapping.
//
// A MappedCSR is immutable after Open and safe for concurrent readers.
type MappedCSR struct {
	data      []byte // mapped (or heap-read) file contents; nil after Close
	mapped    bool
	view      Graph
	attrs     map[string][]float64
	attrNames []string
}

// OpenCSR opens a binary CSR file, memory-mapping it when possible.
func OpenCSR(path string) (*MappedCSR, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := parseCSR(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	m.mapped = mapped
	return m, nil
}

// LoadCSR reads a binary CSR file fully into memory and returns a regular
// heap-backed Graph plus its attribute tables. Use OpenCSR to avoid the
// copy.
func LoadCSR(path string) (*Graph, map[string][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, err := parseCSR(data)
	if err != nil {
		return nil, nil, err
	}
	return &m.view, m.attrs, nil
}

func parseCSR(data []byte) (*MappedCSR, error) {
	if len(data) < csrHeaderSize || string(data[:8]) != csrMagic {
		return nil, fmt.Errorf("graph: not a binary CSR file")
	}
	if binary.LittleEndian.Uint32(data[8:]) != csrBOM {
		return nil, fmt.Errorf("graph: binary CSR byte-order mark mismatch")
	}
	n := binary.LittleEndian.Uint64(data[16:])
	adjLen := binary.LittleEndian.Uint64(data[24:])
	attrCount := binary.LittleEndian.Uint64(data[32:])
	attrOff := binary.LittleEndian.Uint64(data[40:])
	// Overflow-safe size validation: each array individually must fit in
	// the file before the combined end offset is computed, so a crafted
	// header cannot wrap the arithmetic and pass the bounds check.
	size := uint64(len(data))
	if n >= size/4 || adjLen > size/4 || adjLen > uint64(1)<<31-1 {
		return nil, fmt.Errorf("graph: binary CSR header inconsistent with file size (n=%d adj=%d, %d bytes)", n, adjLen, size)
	}
	arraysEnd := uint64(csrHeaderSize) + 4*(n+1) + 4*adjLen
	if size < arraysEnd {
		return nil, fmt.Errorf("graph: binary CSR truncated (have %d bytes, CSR arrays need %d)", len(data), arraysEnd)
	}
	if !hostLittleEndian() {
		return nil, fmt.Errorf("graph: binary CSR requires a little-endian host")
	}
	m := &MappedCSR{data: data}
	offsets := int32View(data[csrHeaderSize : csrHeaderSize+4*(n+1)])
	adj := int32View(data[csrHeaderSize+4*(n+1) : arraysEnd])
	if uint64(len(offsets)) != n+1 || offsets[0] != 0 || uint64(offsets[n]) != adjLen {
		return nil, fmt.Errorf("graph: binary CSR offsets inconsistent with adjacency length")
	}
	// Monotonicity guarantees every Neighbors slice is in range; this scan
	// touches only the offsets section (the adjacency stays un-paged —
	// neighbor *values* are trusted, like every other graph source here).
	for i := uint64(0); i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("graph: binary CSR offsets not monotone at node %d", i)
		}
	}
	m.view = Graph{offsets: offsets, adj: adj}
	if attrCount > 0 {
		// Same overflow discipline as the arrays: every offset is kept
		// within [0, size] before any arithmetic that could wrap, so a
		// crafted attrOff/nameLen errors out instead of panicking.
		if attrOff < arraysEnd || attrOff > size {
			return nil, fmt.Errorf("graph: binary CSR attribute offset %d outside file", attrOff)
		}
		m.attrs = make(map[string][]float64, attrCount)
		pos := attrOff
		for i := uint64(0); i < attrCount; i++ {
			if size-pos < 4 {
				return nil, fmt.Errorf("graph: binary CSR attribute section truncated")
			}
			nameLen := uint64(binary.LittleEndian.Uint32(data[pos:]))
			if size-(pos+4) < nameLen {
				return nil, fmt.Errorf("graph: binary CSR attribute name truncated")
			}
			name := string(data[pos+4 : pos+4+nameLen])
			valsOff := pos + pad8(4+nameLen)
			if valsOff > size || size-valsOff < 8*n {
				return nil, fmt.Errorf("graph: binary CSR attribute %q values truncated", name)
			}
			valsEnd := valsOff + 8*n
			m.attrs[name] = float64View(data[valsOff:valsEnd])
			m.attrNames = append(m.attrNames, name)
			pos = valsEnd
		}
	}
	return m, nil
}

func hostLittleEndian() bool {
	x := uint32(csrBOM)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}

func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func float64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Graph returns the CSR topology as a *Graph whose storage aliases the
// mapped file — all Graph methods work without copying any edge to the
// heap. The graph must not be used after Close.
func (m *MappedCSR) Graph() *Graph { return &m.view }

// NumNodes returns |V|.
func (m *MappedCSR) NumNodes() int { return m.view.NumNodes() }

// NumEdges returns |E|.
func (m *MappedCSR) NumEdges() int { return m.view.NumEdges() }

// Neighbors returns the sorted neighbor list of v, aliasing the mapped file.
func (m *MappedCSR) Neighbors(v int) []int32 { return m.view.Neighbors(v) }

// Degree returns d(v).
func (m *MappedCSR) Degree(v int) int { return m.view.Degree(v) }

// Attr returns the stored attribute table for name, or nil if absent. The
// slice aliases the mapped file and must not be modified.
func (m *MappedCSR) Attr(name string) []float64 { return m.attrs[name] }

// AttrNames lists the stored attribute tables in file (sorted-name) order.
func (m *MappedCSR) AttrNames() []string { return m.attrNames }

// Mapped reports whether the file is memory-mapped (false on platforms
// without mmap support, where the file was read to the heap instead).
func (m *MappedCSR) Mapped() bool { return m.mapped }

// Close releases the mapping. Neighbor lists and attribute slices obtained
// earlier must not be used afterwards.
func (m *MappedCSR) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	m.view = Graph{}
	m.attrs = nil
	if m.mapped {
		return unmapFile(data)
	}
	return nil
}
