package graph

import (
	"math/rand"
	"testing"
)

// randomEdges returns m random (possibly duplicate, possibly self-loop)
// edge pairs over n nodes — the raw input shape Builder.Build must digest.
func randomEdges(n, m int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int, m)
	for i := range edges {
		edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return edges
}

// BenchmarkBuilderBuild measures the O(V+E) counting-sort CSR construction.
// scripts/bench_kernels.sh tracks it so graph-build time stays linear as
// the synthetic graphs grow toward the million-node scale.
func BenchmarkBuilderBuild(b *testing.B) {
	const n, m = 100000, 500000
	edges := randomEdges(n, m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		for _, e := range edges {
			bld.AddEdge(e[0], e[1])
		}
		if g := bld.Build(); g.NumNodes() != n {
			b.Fatal("bad build")
		}
	}
}

// TestBuildCountingSortMatchesSpec cross-checks the counting-sort build
// against the CSR invariants on adversarial inputs: duplicates in both
// orientations, self-loops, isolated nodes, and unsorted insertion order.
func TestBuildCountingSortMatchesSpec(t *testing.T) {
	const n = 300
	edges := randomEdges(n, 2000, 7)
	b := NewBuilder(n)
	want := make(map[[2]int]bool)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[1], e[0]) // duplicate in the other orientation
		if e[0] != e[1] {
			u, v := e[0], e[1]
			if u > v {
				u, v = v, u
			}
			want[[2]int{u, v}] = true
		}
	}
	g := b.Build()
	if g.NumEdges() != len(want) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(want))
	}
	for v := 0; v < n; v++ {
		nbr := g.Neighbors(v)
		for i := range nbr {
			if int(nbr[i]) == v {
				t.Fatalf("self-loop survived at %d", v)
			}
			if i > 0 && nbr[i-1] >= nbr[i] {
				t.Fatalf("Neighbors(%d) not strictly sorted: %v", v, nbr)
			}
			a, c := v, int(nbr[i])
			if a > c {
				a, c = c, a
			}
			if !want[[2]int{a, c}] {
				t.Fatalf("unexpected edge {%d,%d}", v, nbr[i])
			}
		}
	}
}
