package graph

import "math/rand"

// Unreachable is the distance value reported by BFS for nodes not reachable
// from the source.
const Unreachable = int32(-1)

// BFS computes single-source shortest-path (hop) distances from src.
// Unreachable nodes get distance Unreachable.
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	g.BFSInto(src, dist, nil)
	return dist
}

// BFSInto runs BFS from src using caller-provided scratch storage: dist must
// have length NumNodes() and be pre-filled with Unreachable; queue may be nil
// or a reusable buffer. It returns the (reused) queue holding the visit order
// and the eccentricity of src within its component.
//
// This allocation-free form is the hot path for exact diameter computation
// and average-shortest-path sampling.
func (g *Graph) BFSInto(src int, dist []int32, queue []int32) (order []int32, ecc int32) {
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return queue, ecc
}

// Eccentricity returns the maximum BFS distance from v to any reachable node.
func (g *Graph) Eccentricity(v int) int {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	_, ecc := g.BFSInto(v, dist, nil)
	return int(ecc)
}

// Diameter computes the exact diameter (longest shortest path) of the graph
// by running BFS from every node: O(|V|·(|V|+|E|)). Intended for the paper's
// small theoretical-model graphs. Returns 0 for graphs with < 2 nodes.
// Unreachable pairs are ignored (the diameter of the components is returned).
func (g *Graph) Diameter() int {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var diam int32
	for v := 0; v < n; v++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		var ecc int32
		queue, ecc = g.BFSInto(v, dist, queue)
		if ecc > diam {
			diam = ecc
		}
	}
	return int(diam)
}

// EstimateDiameter returns a lower bound on the diameter via the double-sweep
// heuristic repeated `sweeps` times from random starts. For real-world social
// graphs this is typically exact or within 1; it is the practical estimator
// behind the paper's D̄(G) upper-bound guidance (D̄ = estimate + slack).
func (g *Graph) EstimateDiameter(sweeps int, rng *rand.Rand) int {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	best := int32(0)
	for s := 0; s < sweeps; s++ {
		v := rng.Intn(n)
		// Sweep 1: find the farthest node from a random start.
		for i := range dist {
			dist[i] = Unreachable
		}
		var order []int32
		order, _ = g.BFSInto(v, dist, queue)
		far := order[len(order)-1]
		// Sweep 2: eccentricity of that far node lower-bounds the diameter.
		for i := range dist {
			dist[i] = Unreachable
		}
		var ecc int32
		queue, ecc = g.BFSInto(int(far), dist, order)
		if ecc > best {
			best = ecc
		}
	}
	return int(best)
}

// ConnectedComponents labels every node with a component id in
// [0, numComponents) and returns the labels plus component sizes.
func (g *Graph) ConnectedComponents() (labels []int32, sizes []int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		id := int32(len(sizes))
		labels[v] = id
		queue = queue[:0]
		queue = append(queue, int32(v))
		count := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			count++
			for _, w := range g.Neighbors(int(u)) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, count)
	}
	return labels, sizes
}

// IsConnected reports whether the graph is connected (vacuously true for
// graphs with < 2 nodes).
func (g *Graph) IsConnected() bool {
	_, sizes := g.ConnectedComponents()
	return len(sizes) <= 1
}

// LargestComponent extracts the induced subgraph of the largest connected
// component, mirroring the paper's Yelp preprocessing ("largest connected
// component of the user-user graph"). It returns the subgraph and the
// newID -> oldID mapping.
func (g *Graph) LargestComponent() (*Graph, []int) {
	labels, sizes := g.ConnectedComponents()
	if len(sizes) <= 1 {
		ids := make([]int, g.NumNodes())
		for i := range ids {
			ids[i] = i
		}
		return g, ids
	}
	best := 0
	for id, sz := range sizes {
		if sz > sizes[best] {
			best = id
		}
	}
	nodes := make([]int, 0, sizes[best])
	for v, id := range labels {
		if id == int32(best) {
			nodes = append(nodes, v)
		}
	}
	return g.Subgraph(nodes)
}
