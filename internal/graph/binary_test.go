package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func csrTestGraph(t *testing.T) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(200)
	for i := 0; i < 600; i++ {
		b.AddEdge(rng.Intn(200), rng.Intn(200))
	}
	return b.Build()
}

func graphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: got n=%d m=%d, want n=%d m=%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := 0; v < want.NumNodes(); v++ {
		w, g := want.Neighbors(v), got.Neighbors(v)
		if len(w) != len(g) {
			t.Fatalf("node %d: degree %d != %d", v, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d neighbor %d: %d != %d", v, i, g[i], w[i])
			}
		}
	}
}

func TestCSRRoundTripLoad(t *testing.T) {
	g := csrTestGraph(t)
	attrs := map[string][]float64{
		"rating": make([]float64, g.NumNodes()),
		"age":    make([]float64, g.NumNodes()),
	}
	for v := range attrs["rating"] {
		attrs["rating"][v] = float64(v) * 0.5
		attrs["age"][v] = float64(v%37) + 0.25
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := SaveCSR(path, g, attrs); err != nil {
		t.Fatal(err)
	}
	if !IsCSRFile(path) {
		t.Error("IsCSRFile should recognize its own output")
	}
	got, gotAttrs, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
	for name, want := range attrs {
		vals, ok := gotAttrs[name]
		if !ok {
			t.Fatalf("attribute %q lost in round trip", name)
		}
		for v := range want {
			if vals[v] != want[v] {
				t.Fatalf("attr %q node %d: %v != %v", name, v, vals[v], want[v])
			}
		}
	}
}

func TestCSRRoundTripOpen(t *testing.T) {
	g := csrTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := SaveCSR(path, g, map[string][]float64{"x": make([]float64, g.NumNodes())}); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	graphsEqual(t, g, m.Graph())
	if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() {
		t.Fatalf("mapped shape n=%d m=%d", m.NumNodes(), m.NumEdges())
	}
	if got := m.AttrNames(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("AttrNames = %v", got)
	}
	if m.Attr("x") == nil || m.Attr("missing") != nil {
		t.Error("Attr lookup wrong")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestCSRMappedOnUnix(t *testing.T) {
	g := csrTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := SaveCSR(path, g, nil); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// On the linux CI/dev machines this must be a true mapping — the whole
	// point of the disk backend is edges staying off the heap.
	if !m.Mapped() {
		t.Skip("platform without mmap support (heap fallback in use)")
	}
}

func TestCSREmptyAndZeroEdgeGraphs(t *testing.T) {
	for _, g := range []*Graph{NewBuilder(0).Build(), NewBuilder(5).Build()} {
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g, nil); err != nil {
			t.Fatal(err)
		}
		m, err := parseCSR(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if m.NumNodes() != g.NumNodes() || m.NumEdges() != 0 {
			t.Fatalf("round trip: n=%d m=%d", m.NumNodes(), m.NumEdges())
		}
	}
}

func TestCSRErrors(t *testing.T) {
	dir := t.TempDir()
	edgeList := filepath.Join(dir, "g.txt")
	if err := SaveEdgeList(edgeList, csrTestGraph(t)); err != nil {
		t.Fatal(err)
	}
	if IsCSRFile(edgeList) {
		t.Error("edge list misdetected as CSR")
	}
	if _, err := OpenCSR(edgeList); err == nil {
		t.Error("OpenCSR of an edge list should fail")
	}
	if _, _, err := LoadCSR(filepath.Join(dir, "missing.csr")); err == nil {
		t.Error("LoadCSR of missing file should fail")
	}
	// Truncated file: valid header, cut-off arrays.
	full := filepath.Join(dir, "g.csr")
	if err := SaveCSR(full, csrTestGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.csr")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSR(trunc); err == nil {
		t.Error("OpenCSR of truncated file should fail")
	}
	// Attribute length validation on write.
	if err := WriteCSR(&bytes.Buffer{}, csrTestGraph(t), map[string][]float64{"bad": {1, 2}}); err == nil {
		t.Error("WriteCSR with short attribute table should fail")
	}
}

func TestCSRRejectsCraftedHeaders(t *testing.T) {
	g := csrTestGraph(t)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), buf.Bytes()...)
		mutate(b)
		_, err := parseCSR(b)
		return err
	}
	// Node count that wraps the size arithmetic.
	if err := corrupt(func(b []byte) {
		for i := 16; i < 24; i++ {
			b[i] = 0xff
		}
	}); err == nil {
		t.Error("huge n accepted")
	}
	// Adjacency length beyond the file.
	if err := corrupt(func(b []byte) {
		b[24], b[25], b[26], b[27] = 0xff, 0xff, 0xff, 0x7f
	}); err == nil {
		t.Error("huge adjLen accepted")
	}
	// Non-monotone offsets.
	if err := corrupt(func(b []byte) {
		b[csrHeaderSize+4] = 0xff
		b[csrHeaderSize+7] = 0x7f
	}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	// Attribute offset that wraps the arithmetic (attrCount=1, attrOff=2^64-2).
	if err := corrupt(func(b []byte) {
		b[32] = 1
		for i := 40; i < 48; i++ {
			b[i] = 0xff
		}
		b[40] = 0xfe
	}); err == nil {
		t.Error("wrapping attrOff accepted")
	}
}
