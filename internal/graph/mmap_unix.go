//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mapFile maps the named file read-only. The bool result reports whether the
// bytes are an actual memory mapping (and must go through unmapFile).
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support: fall back to a heap read.
		heap, rerr := os.ReadFile(path)
		return heap, false, rerr
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
