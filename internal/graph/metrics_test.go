package graph

import (
	"math"
	"math/rand"
	"testing"
)

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestLocalClustering(t *testing.T) {
	// Triangle with pendant (node 3 attached to 2).
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cases := []struct {
		v    int
		want float64
	}{
		{0, 1.0},       // both neighbors (1,2) connected
		{1, 1.0},       // both neighbors (0,2) connected
		{2, 1.0 / 3.0}, // neighbors {0,1,3}: only (0,1) connected of 3 pairs
		{3, 0},         // degree 1
	}
	for _, c := range cases {
		if got := g.LocalClustering(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LocalClustering(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestAvgClusteringComplete(t *testing.T) {
	g := completeGraph(6)
	if got := g.AvgClustering(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("complete graph AvgClustering = %v, want 1", got)
	}
	if got := cycleGraph(10).AvgClustering(); got != 0 {
		t.Errorf("cycle AvgClustering = %v, want 0", got)
	}
}

func TestAvgClusteringSampledConverges(t *testing.T) {
	g := completeGraph(8)
	rng := rand.New(rand.NewSource(1))
	if got := g.AvgClusteringSampled(100, rng); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("sampled clustering on complete graph = %v, want 1", got)
	}
}

func TestAvgShortestPath(t *testing.T) {
	// Path 0-1-2: pairs (ordered) distances: 0-1:1,0-2:2,1-0:1,1-2:1,2-0:2,2-1:1 => 8/6
	g := pathGraph(3)
	want := 8.0 / 6.0
	if got := g.AvgShortestPath(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgShortestPath = %v, want %v", got, want)
	}
	// Complete graph: every pair at distance 1.
	if got := completeGraph(5).AvgShortestPath(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("complete AvgShortestPath = %v, want 1", got)
	}
}

func TestAvgShortestPathSampled(t *testing.T) {
	g := completeGraph(6)
	rng := rand.New(rand.NewSource(2))
	if got := g.AvgShortestPathSampled(10, rng); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("sampled ASP on complete graph = %v, want 1", got)
	}
	// Degenerate inputs.
	if got := pathGraph(1).AvgShortestPathSampled(5, rng); got != 0 {
		t.Errorf("single-node ASP = %v, want 0", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	h := g.DegreeHistogram()
	// degrees: 2,2,3,1 -> counts: [0,1,2,1]
	want := []int{0, 1, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram len = %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}
