package graph

import "math/rand"

// LocalClustering returns the local clustering coefficient of v: the fraction
// of pairs of v's neighbors that are themselves connected. Nodes with degree
// < 2 have coefficient 0 by convention (matching NetworkX, which the paper's
// evaluation used).
func (g *Graph) LocalClustering(v int) float64 {
	nbr := g.Neighbors(v)
	d := len(nbr)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(int(nbr[i]), int(nbr[j])) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AvgClustering computes the exact average local clustering coefficient over
// all nodes. O(sum over v of d(v)^2 * log d); fine for the paper's graph
// sizes but consider AvgClusteringSampled for very dense graphs.
func (g *Graph) AvgClustering() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for v := 0; v < n; v++ {
		sum += g.LocalClustering(v)
	}
	return sum / float64(n)
}

// AvgClusteringSampled estimates the average local clustering coefficient
// from `samples` uniformly random nodes.
func (g *Graph) AvgClusteringSampled(samples int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 || samples <= 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += g.LocalClustering(rng.Intn(n))
	}
	return sum / float64(samples)
}

// AvgShortestPath computes the exact mean shortest-path length over all
// connected ordered pairs, via all-pairs BFS. O(|V|·(|V|+|E|)); use
// AvgShortestPathSampled for large graphs.
func (g *Graph) AvgShortestPath() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var total float64
	var pairs int64
	for v := 0; v < n; v++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		var order []int32
		order, _ = g.BFSInto(v, dist, queue)
		queue = order
		for _, u := range order {
			if int(u) != v {
				total += float64(dist[u])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// AvgShortestPathSampled estimates the mean shortest-path length by running
// BFS from `sources` uniformly random source nodes and averaging distances to
// all reachable nodes.
func (g *Graph) AvgShortestPathSampled(sources int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n < 2 || sources <= 0 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var total float64
	var pairs int64
	for s := 0; s < sources; s++ {
		v := rng.Intn(n)
		for i := range dist {
			dist[i] = Unreachable
		}
		var order []int32
		order, _ = g.BFSInto(v, dist, queue)
		queue = order
		for _, u := range order {
			if int(u) != v {
				total += float64(dist[u])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d, for
// d in [0, MaxDegree()].
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}
