package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: got n=%d m=%d, want n=%d m=%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g2.HasEdge(u, int(v)) {
				t.Fatalf("edge (%d,%d) lost in round trip", u, v)
			}
		}
	}
}

func TestReadEdgeListHeaderSizesIsolatedNodes(t *testing.T) {
	// Node 9 exists only via the header.
	in := "# nodes 10 edges 1\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",    // too few fields
		"a b\n",  // non-numeric
		"0 x\n",  // non-numeric second
		"-1 2\n", // negative id
		"1 -2\n", // negative id
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q): expected error", in)
		}
	}
}

func TestReadEdgeListSkipsBlanksAndComments(t *testing.T) {
	in := "\n# comment\n  \n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := cycleGraph(7)
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 7 || g2.NumEdges() != 7 {
		t.Fatalf("loaded n=%d m=%d, want 7/7", g2.NumNodes(), g2.NumEdges())
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("LoadEdgeList on missing file: expected error")
	}
}
