package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain-text edge-list format compatible
// with SNAP dumps: a header comment with node/edge counts, then one "u v"
// pair per line with u < v (each undirected edge once).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format written by WriteEdgeList. Lines
// starting with '#' are comments; a "# nodes N ..." header, if present,
// pre-sizes the node set. Node ids must be non-negative; the node count is
// max(headerN, maxID+1).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	headerN := 0
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			for i := 0; i+1 < len(fields); i++ {
				if fields[i] == "nodes" {
					if n, err := strconv.Atoi(fields[i+1]); err == nil && n > headerN {
						headerN = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative node id", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, edge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := maxID + 1
	if headerN > n {
		n = headerN
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build(), nil
}

// SaveEdgeList writes the graph to the named file, creating or truncating it.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEdgeList reads a graph from the named edge-list file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
