// Package graph provides the undirected-graph substrate used throughout the
// walknotwait library: a compact CSR (compressed sparse row) representation,
// traversal primitives, topology metrics, and an edge-list text format.
//
// The graph model follows Section 2.1 of the paper: simple undirected graphs
// G<V,E> without self-loops or parallel edges. Nodes are dense integer ids in
// [0, NumNodes()).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form. The zero value
// is an empty graph with no nodes. Use a Builder to construct one.
//
// Adjacency lists are sorted ascending, contain no self-loops and no
// duplicates, and are symmetric: v appears in Neighbors(u) iff u appears in
// Neighbors(v).
type Graph struct {
	offsets []int32 // len NumNodes()+1; offsets[v]..offsets[v+1] index adj
	adj     []int32 // concatenated sorted neighbor lists; len 2*NumEdges()
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns d(v) = |N(v)|.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u,v} exists. Runs in
// O(log d(u)) via binary search on the sorted adjacency of u.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.NumNodes() || v >= g.NumNodes() {
		return false
	}
	nbr := g.Neighbors(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= int32(v) })
	return i < len(nbr) && nbr[i] == int32(v)
}

// Degrees returns a fresh slice of all node degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.NumNodes())
	for v := range d {
		d[v] = g.Degree(v)
	}
	return d
}

// MaxDegree returns the maximum node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum node degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// AvgDegree returns the average node degree 2|E|/|V|, or 0 for an empty
// graph. This is the ground-truth value for the paper's AVG-degree aggregate.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// String returns a short human-readable summary, e.g. "graph{n=31 m=84}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// Builder accumulates edges and produces an immutable Graph. Self-loops are
// dropped and duplicate edges collapsed at Build time, so callers may add the
// same edge in both orientations freely.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	built bool
}

// NewBuilder returns a Builder for a graph on n nodes (ids 0..n-1).
// It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBuilder with negative n=%d", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. It panics on out-of-range ids.
// Self-loops (u == v) are silently ignored.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Build finalizes the graph. The builder must not be reused afterwards.
//
// Edge tuples are ordered with a two-pass counting sort (stable by v, then
// by u), so the whole build is O(V+E) — no comparison sort, no closures —
// and million-node preferential-attachment graphs construct in seconds.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Builder.Build called twice")
	}
	b.built = true

	// LSD counting sort of the edge indices: stable pass on the minor key v,
	// then a stable pass on the major key u, yields (u,v) lexicographic
	// order. One shared count/position buffer serves both passes.
	m := len(b.us)
	byV := make([]int32, m)
	idx := make([]int32, m)
	pos := make([]int32, b.n+1)
	for _, v := range b.vs {
		pos[v]++
	}
	for v, acc := 0, int32(0); v < b.n; v++ {
		pos[v], acc = acc, acc+pos[v]
	}
	for i := 0; i < m; i++ {
		v := b.vs[i]
		byV[pos[v]] = int32(i)
		pos[v]++
	}
	for i := range pos {
		pos[i] = 0
	}
	for _, u := range b.us {
		pos[u]++
	}
	for u, acc := 0, int32(0); u < b.n; u++ {
		pos[u], acc = acc, acc+pos[u]
	}
	for _, i := range byV {
		u := b.us[i]
		idx[pos[u]] = i
		pos[u]++
	}

	// Dedupe adjacent equal tuples and count degrees.
	deg := make([]int32, b.n)
	var prevU, prevV int32 = -1, -1
	kept := 0
	for _, i := range idx {
		u, v := b.us[i], b.vs[i]
		if u == prevU && v == prevV {
			continue // duplicate
		}
		prevU, prevV = u, v
		idx[kept] = i
		kept++
		deg[u]++
		deg[v]++
	}
	idx = idx[:kept]

	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, i := range idx {
		u, v := b.us[i], b.vs[i]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Each node's final list is the concatenation of its smaller neighbors
	// (appended while scanning edges (u,x) with u < x, in increasing u) and
	// its larger neighbors (edges (x,v), in increasing v) — i.e. two sorted
	// runs split by the node's own id, which is already globally sorted. An
	// insertion pass costs O(list) on sorted input and repairs any residue.
	g := &Graph{offsets: offsets, adj: adj}
	for v := 0; v < b.n; v++ {
		insertionSort(adj[offsets[v]:offsets[v+1]])
	}
	return g
}

// insertionSort sorts a small or nearly-sorted int32 slice in place; on
// already-sorted input it is a single comparison per element.
func insertionSort(xs []int32) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// FromEdges is a convenience constructor: it builds a graph on n nodes from
// the given undirected edge pairs.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on the given nodes together with the
// mapping newID -> oldID. Nodes must be valid ids; duplicates are collapsed.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	keep := make([]int, 0, len(nodes))
	oldToNew := make(map[int]int, len(nodes))
	for _, v := range nodes {
		if _, dup := oldToNew[v]; dup {
			continue
		}
		oldToNew[v] = len(keep)
		keep = append(keep, v)
	}
	b := NewBuilder(len(keep))
	for newU, oldU := range keep {
		for _, w := range g.Neighbors(oldU) {
			if newW, ok := oldToNew[int(w)]; ok && newU < newW {
				b.AddEdge(newU, newW)
			}
		}
	}
	return b.Build(), keep
}
