package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path graph 0-1-2-3-4
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != int32(v) {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1) // 2, 3 isolated from 0
	b.AddEdge(2, 3)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("components should be unreachable: %v", dist)
	}
}

func TestDiameterModels(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", pathGraph(5), 4},
		{"cycle10", cycleGraph(10), 5},
		{"cycle11", cycleGraph(11), 5},
		{"single", pathGraph(1), 0},
		{"pair", pathGraph(2), 1},
	}
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("%s: Diameter = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(5)
	if got := g.Eccentricity(2); got != 2 {
		t.Errorf("Eccentricity(2) = %d, want 2", got)
	}
	if got := g.Eccentricity(0); got != 4 {
		t.Errorf("Eccentricity(0) = %d, want 4", got)
	}
}

func TestEstimateDiameterLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, 50)
		est := g.EstimateDiameter(4, rng)
		exact := g.Diameter()
		if est > exact {
			t.Fatalf("seed %d: estimate %d exceeds exact %d", seed, est, exact)
		}
	}
	// On a path the double sweep is exact.
	g := pathGraph(30)
	if est := g.EstimateDiameter(2, rng); est != 29 {
		t.Errorf("path estimate = %d, want 29", est)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build() // node 5 isolated
	labels, sizes := g.ConnectedComponents()
	if len(sizes) != 3 {
		t.Fatalf("components = %d, want 3 (sizes %v)", len(sizes), sizes)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("5 should be its own component")
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	if !cycleGraph(4).IsConnected() {
		t.Error("cycle should be connected")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4) // smaller component
	g := b.Build()
	sub, ids := g.LargestComponent()
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("largest component n=%d m=%d, want 3/3", sub.NumNodes(), sub.NumEdges())
	}
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("largest component ids = %v", ids)
	}

	// Already-connected graph returns identity mapping.
	g2 := cycleGraph(5)
	sub2, ids2 := g2.LargestComponent()
	if sub2 != g2 {
		t.Error("connected graph should be returned as-is")
	}
	for i, id := range ids2 {
		if i != id {
			t.Fatalf("identity mapping broken at %d -> %d", i, id)
		}
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// For every edge (u,w): |dist[u]-dist[w]| <= 1 in a BFS tree.
	prop := func(seed int64) bool {
		g := randomGraph(seed, 50)
		dist := g.BFS(0)
		for u := 0; u < g.NumNodes(); u++ {
			for _, w := range g.Neighbors(u) {
				du, dw := dist[u], dist[w]
				if (du == Unreachable) != (dw == Unreachable) {
					return false
				}
				if du != Unreachable && (du-dw > 1 || dw-du > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
