package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestLInfAndTV(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.25, 0.25, 0.5}
	linf, err := LInf(p, q)
	if err != nil || math.Abs(linf-0.5) > 1e-12 {
		t.Fatalf("LInf = %v, %v", linf, err)
	}
	tv, err := TotalVariation(p, q)
	if err != nil || math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("TV = %v, %v", tv, err)
	}
	if _, err := LInf(p, q[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := TotalVariation(p, q[:2]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	got, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("KL = %v, want %v", got, want)
	}
	// Identity.
	if d, _ := KL(p, p); d != 0 {
		t.Fatalf("KL(p,p) = %v", d)
	}
	// Zero q with positive p -> +Inf.
	if d, _ := KL([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Fatalf("KL with zero support = %v, want +Inf", d)
	}
	// Zero p entries contribute nothing.
	if d, _ := KL([]float64{0, 1}, []float64{0.5, 0.5}); math.Abs(d-math.Log(2)) > 1e-12 {
		t.Fatalf("KL = %v", d)
	}
	if _, err := KL([]float64{-0.5, 1.5}, p); err == nil {
		t.Error("negative probability should error")
	}
	if _, err := KL(p, q[:1]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestKLSmoothed(t *testing.T) {
	p := []float64{0.7, 0.3}
	q := []float64{1, 0} // unsmoothed KL(p,q) infinite
	d, err := KLSmoothed(p, q, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 1) || math.IsNaN(d) {
		t.Fatalf("smoothed KL = %v", d)
	}
	if _, err := KLSmoothed(p, q, 0); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := KLSmoothed(p, q[:1], 0.1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestEmpirical(t *testing.T) {
	p, err := Empirical([]int{0, 1, 1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0, 0.25}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("Empirical = %v", p)
		}
	}
	if _, err := Empirical(nil, 4); err == nil {
		t.Error("no samples should error")
	}
	if _, err := Empirical([]int{5}, 4); err == nil {
		t.Error("out-of-range sample should error")
	}
	if _, err := Empirical([]int{0}, 0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestDegreeDescOrderAndReorder(t *testing.T) {
	g := gen.Star(4) // degrees: 3,1,1,1
	order := DegreeDescOrder(g)
	if order[0] != 0 {
		t.Fatalf("hub should come first: %v", order)
	}
	if order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("ties should be by id: %v", order)
	}
	p := []float64{0.7, 0.1, 0.1, 0.1}
	r, err := Reorder(p, order)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 0.7 {
		t.Fatalf("Reorder = %v", r)
	}
	if _, err := Reorder(p, order[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Reorder(p, []int{9, 0, 1, 2}); err == nil {
		t.Error("bad index should error")
	}
}

func TestCDF(t *testing.T) {
	c := CDF([]float64{0.25, 0.25, 0.5})
	if math.Abs(c[2]-1) > 1e-12 || math.Abs(c[0]-0.25) > 1e-12 {
		t.Fatalf("CDF = %v", c)
	}
}

func TestNormalize(t *testing.T) {
	p, err := Normalize([]float64{2, 6})
	if err != nil || math.Abs(p[0]-0.25) > 1e-12 {
		t.Fatalf("Normalize = %v, %v", p, err)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("zero vector should error")
	}
	if _, err := Normalize([]float64{-1, 2}); err == nil {
		t.Error("negative weight should error")
	}
}

func fold(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(math.Abs(x), 1000) + 1e-3
}

func TestPropertyDistanceAxioms(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		// Build two distributions from the raw data.
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			// Fold arbitrary floats (possibly ±Inf/huge) into (0, 1001].
			a[i] = fold(raw[i])
			b[i] = fold(raw[n+i])
		}
		var err error
		if a, err = Normalize(a); err != nil {
			return true
		}
		if b, err = Normalize(b); err != nil {
			return true
		}
		linf, _ := LInf(a, b)
		linfRev, _ := LInf(b, a)
		tv, _ := TotalVariation(a, b)
		kl, _ := KL(a, b)
		// Symmetry of LInf/TV; non-negativity of all; TV >= LInf/2;
		// KL >= TV² · 2 (Pinsker, in the direction KL >= 2·TV²).
		if linf != linfRev || linf < 0 || tv < 0 || kl < -1e-12 {
			return false
		}
		if tv < linf/2-1e-12 {
			return false
		}
		if kl < 2*tv*tv-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
