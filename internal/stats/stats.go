// Package stats provides the distribution-distance measures and empirical
// distribution machinery behind the paper's exact-bias experiments
// (Table 1 and Figure 12): ℓ∞/variation distance, KL divergence, empirical
// sampling distributions (PDF/CDF over nodes ordered by descending degree),
// and histogram utilities.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// LInf returns the ℓ∞ (maximum absolute difference) distance between two
// distributions of equal length — the paper's "variation distance" vector
// norm.
func LInf(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	worst := 0.0
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// TotalVariation returns (1/2)·Σ|p_i − q_i|.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// KL returns the Kullback–Leibler divergence D(p‖q) = Σ p_i·log(p_i/q_i),
// in nats. Terms with p_i = 0 contribute 0. If some p_i > 0 has q_i = 0 the
// divergence is +Inf; use KLSmoothed when q is an empirical distribution
// that may have unvisited nodes.
func KL(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if p[i] < 0 || q[i] < 0 {
			return 0, fmt.Errorf("stats: negative probability at %d", i)
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		sum += p[i] * math.Log(p[i]/q[i])
	}
	return sum, nil
}

// KLSmoothed computes D(p‖q̃) where q̃ mixes q with the uniform
// distribution: q̃ = (1−eps)·q + eps/n. This keeps the divergence finite for
// empirical q with zero-count cells (additive smoothing).
func KLSmoothed(p, q []float64, eps float64) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("stats: smoothing eps %v outside (0,1)", eps)
	}
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	n := float64(len(p))
	qs := make([]float64, len(q))
	for i := range q {
		qs[i] = (1-eps)*q[i] + eps/n
	}
	return KL(p, qs)
}

// Empirical converts a multiset of sampled node ids into an empirical
// probability distribution over n nodes. Ids outside [0,n) are rejected.
func Empirical(samples []int, n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("stats: need positive n")
	}
	if len(samples) == 0 {
		return nil, errors.New("stats: no samples")
	}
	p := make([]float64, n)
	w := 1 / float64(len(samples))
	for _, v := range samples {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("stats: sample id %d outside [0,%d)", v, n)
		}
		p[v] += w
	}
	return p, nil
}

// DegreeDescOrder returns node ids sorted by descending degree (ties by
// ascending id) — the x-axis ordering of Figure 12.
func DegreeDescOrder(g *graph.Graph) []int {
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// Reorder returns p permuted so that out[i] = p[order[i]].
func Reorder(p []float64, order []int) ([]float64, error) {
	if len(p) != len(order) {
		return nil, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(order))
	}
	out := make([]float64, len(p))
	for i, idx := range order {
		if idx < 0 || idx >= len(p) {
			return nil, fmt.Errorf("stats: order index %d out of range", idx)
		}
		out[i] = p[idx]
	}
	return out, nil
}

// CDF returns the cumulative sums of p (the Figure 12(b) curve).
func CDF(p []float64) []float64 {
	out := make([]float64, len(p))
	acc := 0.0
	for i, v := range p {
		acc += v
		out[i] = acc
	}
	return out
}

// Normalize scales a non-negative vector to sum to 1. It errors on an
// all-zero or negative vector.
func Normalize(w []float64) ([]float64, error) {
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("stats: negative weight at %d", i)
		}
		sum += v
	}
	if sum == 0 {
		return nil, errors.New("stats: cannot normalize zero vector")
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v / sum
	}
	return out, nil
}
