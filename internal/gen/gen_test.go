package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCycle(t *testing.T) {
	g := Cycle(31)
	if g.NumNodes() != 31 || g.NumEdges() != 31 {
		t.Fatalf("Cycle(31): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if d := g.Diameter(); d != 15 {
		t.Errorf("Cycle(31) diameter = %d, want 15 (paper: floor(31/2))", d)
	}
	for v := 0; v < 31; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(10)
	if p.NumEdges() != 9 || p.Diameter() != 9 {
		t.Errorf("Path(10): m=%d diam=%d", p.NumEdges(), p.Diameter())
	}
	s := Star(10)
	if s.NumEdges() != 9 || s.Degree(0) != 9 || s.Diameter() != 2 {
		t.Errorf("Star(10): m=%d hub=%d diam=%d", s.NumEdges(), s.Degree(0), s.Diameter())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(8)
	if g.NumEdges() != 28 || g.Diameter() != 1 {
		t.Errorf("Complete(8): m=%d diam=%d", g.NumEdges(), g.Diameter())
	}
}

func TestHypercube(t *testing.T) {
	// Paper: 2^k nodes, k·2^(k-1) edges, diameter k.
	for k := 1; k <= 6; k++ {
		g := Hypercube(k)
		if g.NumNodes() != 1<<k {
			t.Fatalf("Hypercube(%d) nodes = %d", k, g.NumNodes())
		}
		if g.NumEdges() != k*(1<<(k-1)) {
			t.Fatalf("Hypercube(%d) edges = %d, want %d", k, g.NumEdges(), k*(1<<(k-1)))
		}
		if d := g.Diameter(); d != k {
			t.Fatalf("Hypercube(%d) diameter = %d, want %d", k, d, k)
		}
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(31)
	if g.NumNodes() != 31 {
		t.Fatalf("Barbell(31) nodes = %d", g.NumNodes())
	}
	// Two K15 cliques (2·105 edges) + 2 bridge edges.
	if g.NumEdges() != 212 {
		t.Errorf("Barbell(31) edges = %d, want 212", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("barbell must be connected")
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("Barbell diameter = %d, want 4 (paper says 3; see gen doc)", d)
	}
	center := 30
	if g.Degree(center) != 2 {
		t.Errorf("center degree = %d, want 2", g.Degree(center))
	}
}

func TestBalancedBinaryTree(t *testing.T) {
	// Height 4 => 31 nodes, diameter 8 (paper: 2h).
	g := BalancedBinaryTree(4)
	if g.NumNodes() != 31 || g.NumEdges() != 30 {
		t.Fatalf("tree n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if d := g.Diameter(); d != 8 {
		t.Errorf("tree diameter = %d, want 8", d)
	}
	if g2 := BinaryTreeN(31); g2.NumNodes() != 31 || g2.Diameter() != 8 {
		t.Errorf("BinaryTreeN(31) should equal balanced tree of height 4")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// edges: 3*3 horizontal + 2*4 vertical = 17
	if g.NumEdges() != 17 {
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	if d := g.Diameter(); d != 5 {
		t.Errorf("grid diameter = %d, want 5", d)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m := 1000, 7
	g := BarabasiAlbert(n, m, rng)
	if g.NumNodes() != n {
		t.Fatalf("BA nodes = %d", g.NumNodes())
	}
	// Paper's exact-bias graph: 1000 nodes, 6951 edges = m(n-m).
	if g.NumEdges() != m*(n-m) {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), m*(n-m))
	}
	if !g.IsConnected() {
		t.Error("BA graph must be connected")
	}
	if g.MinDegree() < m {
		t.Errorf("BA min degree = %d, want >= %d", g.MinDegree(), m)
	}
	// Scale-free: the max degree should far exceed the average.
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Errorf("BA max degree %d suspiciously small vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertDeterminism(t *testing.T) {
	g1 := BarabasiAlbert(200, 3, rand.New(rand.NewSource(7)))
	g2 := BarabasiAlbert(200, 3, rand.New(rand.NewSource(7)))
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for v := 0; v < 200; v++ {
		if g1.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestHolmeKim(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m := 2000, 4
	plain := HolmeKim(n, m, 0, rng)
	cluster := HolmeKim(n, m, 0.8, rng)
	if plain.NumEdges() != m*(n-m) || cluster.NumEdges() > m*(n-m) {
		t.Fatalf("edge counts: plain=%d cluster=%d budget=%d",
			plain.NumEdges(), cluster.NumEdges(), m*(n-m))
	}
	if !cluster.IsConnected() {
		t.Fatal("Holme-Kim graph must be connected")
	}
	ccPlain := plain.AvgClusteringSampled(400, rng)
	ccTriad := cluster.AvgClusteringSampled(400, rng)
	if ccTriad < 3*ccPlain || ccTriad < 0.1 {
		t.Fatalf("triad formation should raise clustering: %v vs %v", ccTriad, ccPlain)
	}
	for _, f := range []func(){
		func() { HolmeKim(3, 3, 0.5, rng) },
		func() { HolmeKim(10, 2, 1.5, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyiGNM(50, 100, rng)
	if g.NumNodes() != 50 || g.NumEdges() != 100 {
		t.Fatalf("GNM: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	gp := ErdosRenyiGNP(100, 0.1, rng)
	m := gp.NumEdges()
	// E[m] = 495; allow wide slack.
	if m < 300 || m > 700 {
		t.Errorf("GNP edges = %d, outside plausible range", m)
	}
	if g0 := ErdosRenyiGNP(10, 0, rng); g0.NumEdges() != 0 {
		t.Error("GNP p=0 must be empty")
	}
	if g1 := ErdosRenyiGNP(10, 1, rng); g1.NumEdges() != 45 {
		t.Error("GNP p=1 must be complete")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomRegular(50, 4, rng)
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"cycle small", func() { Cycle(2) }},
		{"path zero", func() { Path(0) }},
		{"complete zero", func() { Complete(0) }},
		{"star zero", func() { Star(0) }},
		{"hypercube zero", func() { Hypercube(0) }},
		{"barbell even", func() { Barbell(8) }},
		{"barbell small", func() { Barbell(5) }},
		{"tree negative", func() { BalancedBinaryTree(-1) }},
		{"ba m>=n", func() { BarabasiAlbert(3, 3, rand.New(rand.NewSource(1))) }},
		{"gnm too many", func() { ErdosRenyiGNM(3, 10, rand.New(rand.NewSource(1))) }},
		{"regular odd", func() { RandomRegular(5, 3, rand.New(rand.NewSource(1))) }},
		{"grid zero", func() { Grid2D(0, 5) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestModelInstantiate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range AllModels() {
		g, n := m.Instantiate(31, rng)
		if g.NumNodes() != n {
			t.Errorf("%v: reported n=%d, actual %d", m, n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("%v: instantiated graph not connected", m)
		}
		if m == ModelHypercube && n != 32 {
			t.Errorf("hypercube at 31 should instantiate 32 nodes, got %d", n)
		}
		if m != ModelHypercube && n != 31 {
			t.Errorf("%v at 31 should instantiate 31 nodes, got %d", m, n)
		}
	}
	if s := ModelBarbell.String(); s != "Barbell" {
		t.Errorf("Model string = %q", s)
	}
	if s := Model(99).String(); s != "Model(99)" {
		t.Errorf("unknown model string = %q", s)
	}
}

func TestPropertyModelsConnected(t *testing.T) {
	prop := func(seed int64, sizeRaw uint8) bool {
		n := 8 + int(sizeRaw)%120
		rng := rand.New(rand.NewSource(seed))
		for _, m := range AllModels() {
			g, _ := m.Instantiate(n, rng)
			if !g.IsConnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
