// Package gen provides deterministic generators for every graph model the
// paper evaluates on — Barabási–Albert scale-free networks, cycles,
// hypercubes, barbells, balanced binary trees — plus auxiliary models
// (complete, path, star, grid, Erdős–Rényi, random regular) used by tests and
// extension experiments.
//
// All random generators take an explicit RNG so experiments are reproducible
// bit-for-bit under a fixed seed. The preferential-attachment generators
// accept any fastrand.RNG — pass the classic *rand.Rand for the frozen seed
// fixtures, or a *fastrand.Rand to generate million-node graphs in seconds
// (the hot loops are map-free either way: flat repeated-endpoint urns and
// small slice-membership scans).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/fastrand"
	"repro/internal/graph"
)

// Cycle returns the cycle graph C_n (diameter floor(n/2)). It panics if
// n < 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: Cycle(%d): need n >= 3", n))
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Path returns the path graph P_n. It panics if n < 1.
func Path(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: Path(%d): need n >= 1", n))
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n. It panics if n < 1.
func Complete(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: Complete(%d): need n >= 1", n))
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star returns the star graph on n nodes: node 0 is the hub.
func Star(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: Star(%d): need n >= 1", n))
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Hypercube returns the k-dimensional hypercube Q_k: 2^k nodes, k·2^(k-1)
// edges, diameter k. Nodes i and j are adjacent iff their binary
// representations differ in exactly one bit. It panics if k < 1 or k > 30.
func Hypercube(k int) *graph.Graph {
	if k < 1 || k > 30 {
		panic(fmt.Sprintf("gen: Hypercube(%d): need 1 <= k <= 30", k))
	}
	n := 1 << k
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < k; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// Barbell returns the paper's barbell graph on n nodes (n odd, n >= 7): two
// complete graphs of size (n-1)/2 joined through a central node that has one
// edge into each half. The central node is id n-1; the halves are
// [0,(n-1)/2) and [(n-1)/2, n-1).
//
// Note: the paper states the diameter is 3; with single attachment edges the
// hop diameter is 4 (clique node -> attach -> center -> attach -> clique
// node). The behaviour the paper relies on — tiny diameter plus an extreme
// bottleneck at the center — is preserved.
func Barbell(n int) *graph.Graph {
	if n < 7 || n%2 == 0 {
		panic(fmt.Sprintf("gen: Barbell(%d): need odd n >= 7", n))
	}
	half := (n - 1) / 2
	center := n - 1
	b := graph.NewBuilder(n)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			b.AddEdge(i, j)           // left clique
			b.AddEdge(half+i, half+j) // right clique
		}
	}
	b.AddEdge(center, 0)    // one edge into the left half
	b.AddEdge(center, half) // one edge into the right half
	return b.Build()
}

// BalancedBinaryTree returns the complete balanced binary tree of the given
// height h: 2^(h+1)-1 nodes, diameter 2h. Node 0 is the root; node v has
// children 2v+1 and 2v+2. It panics if h < 0 or h > 29.
func BalancedBinaryTree(h int) *graph.Graph {
	if h < 0 || h > 29 {
		panic(fmt.Sprintf("gen: BalancedBinaryTree(%d): need 0 <= h <= 29", h))
	}
	n := (1 << (h + 1)) - 1
	return binaryTreeN(n)
}

// BinaryTreeN returns a binary tree on exactly n nodes, filled in level
// order (the first n nodes of the infinite complete binary tree). For
// n = 2^(h+1)-1 this is the balanced tree of height h. It panics if n < 1.
func BinaryTreeN(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: BinaryTreeN(%d): need n >= 1", n))
	}
	return binaryTreeN(n)
}

func binaryTreeN(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.Build()
}

// Grid2D returns the rows×cols grid graph with 4-neighbor connectivity.
func Grid2D(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("gen: Grid2D(%d,%d): need positive dims", rows, cols))
	}
	id := func(r, c int) int { return r*cols + c }
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a Barabási–Albert preferential-attachment scale-free
// graph: n nodes, each new node attaching m edges to existing nodes chosen
// proportionally to degree (via the repeated-endpoints urn, as in NetworkX,
// which the paper used). The first new node connects to the m seed nodes
// directly, so |E| = m·(n-m). It panics unless 1 <= m < n.
//
// The generator draws the same stream for the same RNG as it always has
// (frozen-seed fixtures stay valid); duplicate-target detection is a scan
// of the m-element target slice rather than a per-node map, so the hot loop
// allocates nothing and million-node graphs generate in seconds with a
// *fastrand.Rand.
func BarabasiAlbert(n, m int, rng fastrand.RNG) *graph.Graph {
	if m < 1 || m >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert(n=%d, m=%d): need 1 <= m < n", n, m))
	}
	b := graph.NewBuilder(n)
	// Urn of edge endpoints: choosing uniformly from it is preferential
	// attachment. Seeded with the first star so every node has degree >= 1.
	urn := make([]int32, 0, 2*m*(n-m))
	targets := make([]int32, 0, m)
	for i := 0; i < m; i++ {
		targets = append(targets, int32(i))
	}
	for v := m; v < n; v++ {
		for _, t := range targets {
			b.AddEdge(v, int(t))
			urn = append(urn, int32(v), t)
		}
		// Pick m distinct targets for the next node.
		targets = targets[:0]
		for len(targets) < m {
			t := urn[rng.Intn(len(urn))]
			if int(t) == v+1 || containsInt32(targets, t) {
				continue
			}
			targets = append(targets, t)
		}
	}
	return b.Build()
}

// containsInt32 reports membership in a small slice — the m-element target
// sets of the preferential-attachment generators, where a linear scan beats
// any map.
func containsInt32(xs []int32, x int32) bool {
	for _, e := range xs {
		if e == x {
			return true
		}
	}
	return false
}

// HolmeKim returns a scale-free graph with tunable clustering (Holme–Kim
// model): preferential attachment as in Barabási–Albert, but after each
// preferential edge, with probability pt the next edge is a triad-formation
// step to a random neighbor of the previous target, closing a triangle.
// pt = 0 degenerates to plain BA. Used for the Yelp/Twitter surrogates whose
// real counterparts have high local clustering.
//
// Like BarabasiAlbert, the draw stream is unchanged for a given RNG; the
// per-node chosen-target map became a slice scan, so the generator performs
// no per-node allocation beyond the running adjacency itself.
func HolmeKim(n, m int, pt float64, rng fastrand.RNG) *graph.Graph {
	if m < 1 || m >= n {
		panic(fmt.Sprintf("gen: HolmeKim(n=%d, m=%d): need 1 <= m < n", n, m))
	}
	if pt < 0 || pt > 1 {
		panic(fmt.Sprintf("gen: HolmeKim pt=%v outside [0,1]", pt))
	}
	b := graph.NewBuilder(n)
	urn := make([]int32, 0, 2*m*(n-m))
	adj := make([][]int32, n) // running adjacency for triad steps
	link := func(v, t int) {
		b.AddEdge(v, t)
		urn = append(urn, int32(v), int32(t))
		adj[v] = append(adj[v], int32(t))
		adj[t] = append(adj[t], int32(v))
	}
	targets := make([]int32, 0, m)
	for i := 0; i < m; i++ {
		targets = append(targets, int32(i))
	}
	for v := m; v < n; v++ {
		for _, t := range targets {
			link(v, int(t))
		}
		// Choose the next node's targets.
		targets = targets[:0]
		next := int32(v + 1)
		prev := int32(-1)
		for len(targets) < m {
			var t int32
			if prev >= 0 && rng.Float64() < pt {
				// Triad formation: a random neighbor of the previous
				// target. Bounded retries keep the generator deterministic
				// and fast; on failure fall back to preferential attachment.
				t = -1
				for try := 0; try < 4; try++ {
					cand := adj[prev][rng.Intn(len(adj[prev]))]
					if cand != next && !containsInt32(targets, cand) {
						t = cand
						break
					}
				}
				if t < 0 {
					prev = -1
					continue
				}
			} else {
				t = urn[rng.Intn(len(urn))]
				if t == next || containsInt32(targets, t) {
					continue
				}
			}
			targets = append(targets, t)
			prev = t
		}
	}
	return b.Build()
}

// ErdosRenyiGNP returns a G(n,p) random graph: each of the n(n-1)/2 possible
// edges present independently with probability p.
func ErdosRenyiGNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	if n < 1 || p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: ErdosRenyiGNP(%d,%v): invalid arguments", n, p))
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// ErdosRenyiGNM returns a G(n,m) random graph with exactly m distinct edges
// chosen uniformly among all pairs. It panics if m exceeds n(n-1)/2.
func ErdosRenyiGNM(n, m int, rng *rand.Rand) *graph.Graph {
	maxM := n * (n - 1) / 2
	if n < 1 || m < 0 || m > maxM {
		panic(fmt.Sprintf("gen: ErdosRenyiGNM(%d,%d): need 0 <= m <= %d", n, m, maxM))
	}
	b := graph.NewBuilder(n)
	type pair struct{ u, v int }
	seen := make(map[pair]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// configuration (pairing) model with restarts on collisions. n·d must be
// even and d < n. Expected restarts are O(e^(d²)) — intended for small d.
func RandomRegular(n, d int, rng *rand.Rand) *graph.Graph {
	if d < 1 || d >= n || (n*d)%2 != 0 {
		panic(fmt.Sprintf("gen: RandomRegular(%d,%d): need 1 <= d < n and n·d even", n, d))
	}
	stubs := make([]int32, n*d)
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			panic("gen: RandomRegular: too many restarts; d too large for pairing model")
		}
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		type pair struct{ u, v int32 }
		seen := make(map[pair]bool, n*d/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			p := pair{u, v}
			if seen[p] {
				ok = false
				break
			}
			seen[p] = true
		}
		if !ok {
			continue
		}
		b := graph.NewBuilder(n)
		for i := 0; i < len(stubs); i += 2 {
			b.AddEdge(int(stubs[i]), int(stubs[i+1]))
		}
		return b.Build()
	}
}

// Model identifies one of the paper's five theoretical graph families used in
// the IDEAL-WALK case studies (Figures 2 and 3).
type Model int

const (
	ModelBarbell Model = iota
	ModelCycle
	ModelHypercube
	ModelTree
	ModelBarabasi
)

var modelNames = [...]string{"Barbell", "Cycle", "Hypercube", "Tree", "Barabasi"}

// String returns the model name as printed in the paper's figure legends.
func (m Model) String() string {
	if m < 0 || int(m) >= len(modelNames) {
		return fmt.Sprintf("Model(%d)", int(m))
	}
	return modelNames[m]
}

// AllModels lists the five case-study families in the paper's legend order.
func AllModels() []Model {
	return []Model{ModelBarbell, ModelCycle, ModelHypercube, ModelTree, ModelBarabasi}
}

// Instantiate builds the model at (approximately) the requested node count,
// mirroring the paper's case-study setup: Barbell rounds down to the nearest
// odd size >= 7, Hypercube rounds to the nearest power of two (the paper uses
// 32 when others use 31), Tree fills level order exactly, Cycle needs n >= 3,
// and Barabási–Albert uses m = 3 attachments (the paper's setting).
// It returns the graph and the node count actually used.
func (m Model) Instantiate(n int, rng *rand.Rand) (*graph.Graph, int) {
	switch m {
	case ModelBarbell:
		if n < 7 {
			n = 7
		}
		if n%2 == 0 {
			n--
		}
		return Barbell(n), n
	case ModelCycle:
		if n < 3 {
			n = 3
		}
		return Cycle(n), n
	case ModelHypercube:
		k := 1
		for (1<<(k+1))-(1<<k)/2 <= n && k < 20 { // nearest power of two
			if 1<<(k+1) > n && (1<<(k+1))-n >= n-(1<<k) {
				break
			}
			k++
		}
		return Hypercube(k), 1 << k
	case ModelTree:
		if n < 1 {
			n = 1
		}
		return BinaryTreeN(n), n
	case ModelBarabasi:
		m0 := 3
		if n <= m0 {
			n = m0 + 1
		}
		return BarabasiAlbert(n, m0, rng), n
	default:
		panic(fmt.Sprintf("gen: unknown model %d", int(m)))
	}
}
