// Package osn simulates the restrictive web interface of an online social
// network, which is the access model the whole paper builds on (Section 2.1):
// a third party can only issue local-neighborhood queries — give a node,
// receive its neighbor list — and pays a query cost for each node accessed.
//
// The package separates the hidden ground truth (Network: full topology plus
// per-node attributes) from the metered third-party view (Client: cached
// neighbor queries, query-cost accounting, simulated rate limiting, and the
// neighbor-list access restrictions of Section 6.3.1).
package osn

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/fastrand"
	"repro/internal/graph"
)

// Network is the server side of the simulated social network: the complete
// topology (served through a pluggable Backend — in-memory, disk-backed
// CSR, or simulated remote API) and node attributes, which samplers must
// not touch directly. Construct with NewNetwork or NewNetworkOn; access
// through a Client.
type Network struct {
	be Backend
	// truth is the innermost backend (RemoteSim wrappers unwrapped) used by
	// evaluation-only reads like TrueMean, which must pay neither simulated
	// latency nor round-trip accounting.
	truth       Backend
	g           *graph.Graph // ground-truth view for evaluation; nil when the backend has none
	attrs       map[string][]float64
	attrFns     map[string]func(int) float64
	attrMu      sync.Mutex // guards attrCache and meanCache (clients may share a Network across goroutines)
	attrCache   map[string]map[int]float64
	meanCache   map[string]float64
	restriction Restriction
	rateLimit   *RateLimit
	// concBatch records whether any backend layer answers batch requests
	// over concurrent connections (RemoteSim's fanout), i.e. whether
	// batch-shaped access patterns actually save wall-clock.
	concBatch bool
}

// Option configures a Network.
type Option func(*Network)

// WithAttribute attaches a numeric per-node attribute (e.g. star rating,
// self-description word count). values must have length NumNodes().
func WithAttribute(name string, values []float64) Option {
	return func(n *Network) { n.attrs[name] = values }
}

// WithAttrFunc attaches a lazily-computed per-node attribute (e.g. local
// clustering coefficient or mean shortest-path length, which are too
// expensive to precompute for every node of a large graph). Values are
// memoized per node. TrueMean is unavailable for function attributes — the
// dataset layer records ground truth for those separately.
func WithAttrFunc(name string, fn func(node int) float64) Option {
	return func(n *Network) { n.attrFns[name] = fn }
}

// WithRestriction installs a neighbor-list access restriction (§6.3.1).
func WithRestriction(r Restriction) Option {
	return func(n *Network) { n.restriction = r }
}

// WithRateLimit installs a simulated query rate limit (e.g. Twitter's 15
// requests per 15 minutes).
func WithRateLimit(perWindow int, window time.Duration) Option {
	return func(n *Network) { n.rateLimit = &RateLimit{PerWindow: perWindow, Window: window} }
}

// NewNetwork wraps an in-memory graph as a simulated online social network.
// The behavior is bit-for-bit that of the pre-backend implementation: it is
// exactly NewNetworkOn(NewMemBackend(g), opts...).
func NewNetwork(g *graph.Graph, opts ...Option) *Network {
	return NewNetworkOn(NewMemBackend(g), opts...)
}

// NewNetworkOn wraps any access backend — in-memory, memory-mapped CSR, or
// simulated remote API — as a simulated online social network.
func NewNetworkOn(be Backend, opts ...Option) *Network {
	truth := be
	concBatch := false
	for {
		if cb, ok := truth.(interface{ ConcurrentBatch() bool }); ok && cb.ConcurrentBatch() {
			concBatch = true
		}
		u, ok := truth.(interface{ Inner() Backend })
		if !ok {
			break
		}
		truth = u.Inner()
	}
	n := &Network{
		be:        be,
		truth:     truth,
		concBatch: concBatch,
		attrs:     make(map[string][]float64),
		attrFns:   make(map[string]func(int) float64),
		attrCache: make(map[string]map[int]float64),
		meanCache: make(map[string]float64),
	}
	if gv, ok := be.(GraphViewer); ok {
		n.g = gv.GraphView()
	}
	for _, o := range opts {
		o(n)
	}
	for name, vals := range n.attrs {
		if len(vals) != be.NumNodes() {
			panic(fmt.Sprintf("osn: attribute %q has %d values for %d nodes", name, len(vals), be.NumNodes()))
		}
	}
	return n
}

// Graph exposes the underlying ground-truth topology for *evaluation only*
// (computing exact aggregates to measure estimator error). Samplers must use
// a Client. It is nil for backends without an addressable topology view
// (e.g. a RemoteSim over an opaque service).
func (n *Network) Graph() *graph.Graph { return n.g }

// Backend exposes the access backend the network serves topology from, for
// construction-time plumbing (wrapping, diagnostics). Samplers must use a
// Client.
func (n *Network) Backend() Backend { return n.be }

// NumNodes returns the hidden |V| (evaluation only).
func (n *Network) NumNodes() int { return n.be.NumNodes() }

// TrueMean returns the exact population mean of an attribute, or of degree
// when name is "degree" and the attribute table has no explicit entry.
// This is the ground truth for the paper's relative-error measure.
// The sum is memoized per attribute — the eval layer calls TrueMean per
// figure point, and attribute tables are immutable once attached.
func (n *Network) TrueMean(name string) (float64, error) {
	n.attrMu.Lock()
	mean, hit := n.meanCache[name]
	n.attrMu.Unlock()
	if hit {
		return mean, nil
	}
	vals, ok := n.attrs[name]
	if !ok {
		// Evaluation-only reads go through the innermost backend: a
		// RemoteSim must charge samplers for access, never the ground-truth
		// bookkeeping (its latency and round-trip meters would otherwise be
		// corrupted by every figure point).
		if _, isBackend := probeAttr(n.truth, name); isBackend {
			// Backend-stored table (e.g. embedded in a CSR file): sum once
			// and memoize like any other attribute.
			sum := 0.0
			for v := 0; v < n.truth.NumNodes(); v++ {
				val, _ := n.truth.Attr(name, v)
				sum += val
			}
			mean = sum / float64(n.truth.NumNodes())
			n.attrMu.Lock()
			n.meanCache[name] = mean
			n.attrMu.Unlock()
			return mean, nil
		}
		if name == AttrDegree {
			if n.truth.NumNodes() == 0 {
				return 0, nil // match graph.AvgDegree's empty-graph contract
			}
			return 2 * float64(n.truth.NumEdges()) / float64(n.truth.NumNodes()), nil
		}
		return 0, fmt.Errorf("osn: unknown attribute %q", name)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(len(vals))
	n.attrMu.Lock()
	n.meanCache[name] = mean
	n.attrMu.Unlock()
	return mean, nil
}

// probeAttr reports whether the backend stores a table under name (safe on
// empty graphs, where no per-node probe is possible).
func probeAttr(be Backend, name string) (float64, bool) {
	if be.NumNodes() == 0 {
		return 0, false
	}
	return be.Attr(name, 0)
}

// AttrNames lists the attributes attached to the network (table, function,
// and backend-stored attributes alike), in unspecified order.
func (n *Network) AttrNames() []string {
	names := make([]string, 0, len(n.attrs)+len(n.attrFns))
	for name := range n.attrs {
		names = append(names, name)
	}
	for name := range n.attrFns {
		names = append(names, name)
	}
	for _, name := range n.be.AttrNames() {
		if _, dup := n.attrs[name]; dup {
			continue
		}
		if _, dup := n.attrFns[name]; dup {
			continue
		}
		names = append(names, name)
	}
	return names
}

// attrValue resolves an attribute for one node, consulting the attached
// table first, then the memoized function attributes, then the backend's
// stored tables. Safe for concurrent use.
func (n *Network) attrValue(name string, v int) (float64, bool) {
	if vals, ok := n.attrs[name]; ok {
		return vals[v], true
	}
	fn, ok := n.attrFns[name]
	if !ok {
		return n.be.Attr(name, v)
	}
	n.attrMu.Lock()
	cache := n.attrCache[name]
	if cache == nil {
		cache = make(map[int]float64)
		n.attrCache[name] = cache
	}
	val, hit := cache[v]
	n.attrMu.Unlock()
	if hit {
		return val, true
	}
	val = fn(v)
	n.attrMu.Lock()
	cache[v] = val
	n.attrMu.Unlock()
	return val, true
}

// AttrDegree is the pseudo-attribute name for node degree; every network
// supports it implicitly.
const AttrDegree = "degree"

// RateLimit describes a query budget per time window.
type RateLimit struct {
	PerWindow int
	Window    time.Duration
}

// CostMode selects how a Client charges queries.
type CostMode int

const (
	// CostUniqueNodes charges one query per distinct node whose neighbor list
	// is requested (repeat lookups hit the cache). This is the paper's
	// "number of nodes it has to access" and the default.
	CostUniqueNodes CostMode = iota
	// CostPerCall charges every call, as when the platform forbids caching
	// or the crawler is stateless.
	CostPerCall
)

// l1Page geometry: 256 ids per page — the page header (presence and
// queried bitsets) is two cache lines and the neighbor-list headers are
// 6 KiB, so a client's L1 memory is bounded by the id ranges its walks
// actually touch (one page per 256-id range visited) plus an 8-byte
// directory pointer per 256 ids, instead of 24 bytes per graph node.
const (
	l1Shift = 8
	l1Size  = 1 << l1Shift
	l1Mask  = l1Size - 1
	l1Words = l1Size / 64
)

// l1Page holds one 256-id range of the client-private L1: the presence
// bitset gating the cached neighbor-list headers.
type l1Page struct {
	present [l1Words]uint64
	nbrs    [l1Size][]int32
}

// acctPage holds one 256-id range of the per-client unique-node accounting
// bitset (private clients only — under a SharedCache the shared accounting
// is authoritative). It is a separate, two-cache-line page so
// accounting-only touches (attribute reads, uncacheable views) never pay
// for an l1Page's 6 KiB of neighbor-list headers.
type acctPage struct {
	queried [l1Words]uint64
}

// Client is a metered third-party view of a Network. A Client is not safe
// for concurrent use — each goroutine must own its own — but Clients forked
// from one another (Fork, NewClientShared) may run concurrently: they
// coordinate through a SharedCache, so distinct workers stop paying for
// duplicate cache fills while each keeps its own cost meter.
//
// Node ids are dense in [0, NumNodes()), so the client's L1 cache and its
// unique-node accounting are paged slices over the id space: a directory of
// fixed-size pages allocated on first touch, making the warm Neighbors path
// one directory index, one bit test and one array load with no hashing,
// branching on the meter, or allocation — while a client on a multi-million
// node graph costs kilobytes of directory, not O(24n) bytes of headers.
type Client struct {
	net  *Network
	rng  fastrand.RNG
	mode CostMode
	// l1 is the client-private paged L1 neighbor cache directory; pages are
	// allocated the first time an id in their range is cached. With a
	// shared cache attached the L1 memoizes shared lookups so the hot read
	// path stays lock-free after warm-up; the cached slices alias the
	// shared entries.
	l1 []*l1Page
	// acct is the paged unique-node accounting directory; nil when shared
	// is set (the shared cache's accounting is then authoritative).
	acct     []*acctPage
	nQueried int
	// shared, when non-nil, is the cross-client neighbor cache and global
	// unique-node accounting this client participates in.
	shared   *SharedCache
	queries  int64
	calls    int64
	waited   time.Duration
	inWindow int
	// cacheable is the precomputed condition under which neighbor lists may
	// be cached: no restriction, or a deterministic one (type 2/3).
	cacheable bool
	// fastPath records that the network has no restriction and no rate
	// limit: misses cache the ground-truth list as-is (no restriction
	// branch) and the meter needs no rate-limit branch.
	fastPath bool
	// fb is the backend's fallible access surface, when it has one
	// (FaultSim, ResilientBackend): cold fetches then go through it under
	// ctx, so a backend failure is reported — never cached, never charged —
	// instead of silently degraded. nil for infallible backends, leaving
	// the classic path untouched.
	fb FallibleBackend
	// ctx is the context fallible fetches run under (BindContext); defaults
	// to context.Background(). Warm-path reads never consult it.
	ctx context.Context
	// lastErr is the first backend failure this client observed (Err).
	lastErr     error
	failedFetch int64
	// Reusable scratch buffers for the batched access path (NeighborsBatch,
	// Prefetch), so steady-state batches allocate nothing on the client.
	batchPos    []int32     // positions in vs still unresolved after the L1 pass
	batchIDs    []int32     // deduplicated miss ids
	batchLists  [][]int32   // lists aligned with batchIDs
	batchFirst  []bool      // found/first-access flags aligned with batchIDs
	batchFailed []bool      // per-element failure flags for the fallible batch path
	groups      shardGroups // shard bucketing scratch for the shared-cache batch ops
	prefetchBuf [][]int32   // Prefetch's throwaway out buffer
	// Partitioned-fleet scratch (cluster mode only; see partition.go).
	remoteIDs   []int32   // non-owned miss ids routed to shard owners
	remoteLists [][]int32 // owner-resolved lists aligned with remoteIDs
	remoteFirst []bool    // owner fleet-first verdicts aligned with remoteIDs
	remoteSeen  []bool    // throwaway first flags for absorbing owner fills
}

func newClient(net *Network, mode CostMode, rng fastrand.RNG, sc *SharedCache) *Client {
	n := net.be.NumNodes()
	fb, _ := net.be.(FallibleBackend)
	c := &Client{
		net:       net,
		rng:       rng,
		mode:      mode,
		l1:        make([]*l1Page, (n+l1Mask)>>l1Shift),
		shared:    sc,
		fb:        fb,
		ctx:       context.Background(),
		cacheable: net.restriction == nil || net.restriction.Deterministic(),
		fastPath:  net.restriction == nil && net.rateLimit == nil,
	}
	if sc == nil {
		c.acct = make([]*acctPage, (n+l1Mask)>>l1Shift)
	}
	return c
}

// NewClient creates a client with its own cache and cost counters. rng
// drives restriction sampling (type-1 restrictions return fresh random
// subsets per call) and must not be nil when restrictions are installed.
func NewClient(net *Network, mode CostMode, rng fastrand.RNG) *Client {
	return newClient(net, mode, rng, nil)
}

// NewClientShared creates a client attached to a shared neighbor cache.
// All clients attached to the same SharedCache collectively charge each
// unique node once (CostUniqueNodes) and share cache fills; each client
// still meters the charges it incurred itself. sc must not be nil.
func NewClientShared(net *Network, mode CostMode, rng fastrand.RNG, sc *SharedCache) *Client {
	return newClient(net, mode, rng, sc)
}

// Fork returns a sibling client over the same network that shares this
// client's neighbor cache and unique-node accounting, for use by another
// goroutine. If the client is not yet attached to a SharedCache, its private
// cache and accounting are promoted into a fresh one first (so nothing
// already paid for is charged again); the promotion must happen before any
// concurrent use. rng drives the sibling's restriction sampling.
func (c *Client) Fork(rng fastrand.RNG) *Client {
	if c.shared == nil {
		sc := NewSharedCache()
		for pi, pg := range c.l1 {
			if pg == nil {
				continue
			}
			base := pi << l1Shift
			for w, word := range pg.present {
				for word != 0 {
					o := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					sc.store(int32(base+o), pg.nbrs[o])
				}
			}
		}
		for pi, pg := range c.acct {
			if pg == nil {
				continue
			}
			base := pi << l1Shift
			for w, word := range pg.queried {
				for word != 0 {
					o := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					sc.markQueried(int32(base + o))
				}
			}
		}
		sc.queries.Store(c.queries)
		sc.calls.Store(c.calls)
		c.shared = sc
		c.acct = nil
	}
	nc := NewClientShared(c.net, c.mode, rng, c.shared)
	nc.ctx = c.ctx // workers inherit the job's deadline and failure-cancel hook
	return nc
}

// Shared returns the client's shared cache, or nil for a private client.
func (c *Client) Shared() *SharedCache { return c.shared }

// BindContext binds the context the client's fallible backend accesses run
// under: per-job deadlines cut resilience-layer waits short, and a
// WithFailureCancel hook in ctx turns an exhausted retry policy into prompt
// job cancellation with the typed error as the cause. A nil ctx restores
// context.Background(). No-op wiring for infallible backends; the warm read
// path never consults the context either way.
func (c *Client) BindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
}

// Err returns the first backend failure this client observed (after the
// resilience layer, if any, gave up), or nil. Failed accesses are never
// cached or charged; samplers see them as empty neighbor lists while the
// typed error cancels the bound context's job.
func (c *Client) Err() error { return c.lastErr }

// FailedFetches returns how many cold fetches failed (post-retry).
func (c *Client) FailedFetches() int64 { return c.failedFetch }

// noteFetchError records a failed cold fetch.
func (c *Client) noteFetchError(err error) {
	c.failedFetch++
	if c.lastErr == nil {
		c.lastErr = err
	}
}

// Mode returns the client's cost-charging mode.
func (c *Client) Mode() CostMode { return c.mode }

// SymmetricView reports whether neighbor lists are served unrestricted, in
// which case the view inherits the graph's edge symmetry: v ∈ N(u) iff
// u ∈ N(v). Transition designs use this to take degree-only probability
// fast paths along edges already known to exist.
func (c *Client) SymmetricView() bool { return c.net.restriction == nil }

// StableView reports whether repeated Neighbors calls for the same node are
// guaranteed to return the same list: true for unrestricted views and
// deterministic (type-2) restrictions, false under re-randomizing (type-1)
// restrictions. Callers that memoize per-node derived state (e.g. the WS-BW
// step-distribution cache) must check it — under an unstable view a cached
// list may no longer describe the candidates a fresh call would return.
func (c *Client) StableView() bool { return c.cacheable }

// ConcurrentBatch reports whether some layer of the backend stack answers
// batch requests over concurrent connections (a RemoteSim anywhere in the
// wrapper chain), so batching many accesses into one request saves
// wall-clock. Local backends (mem, disk CSR) answer batches as plain
// loops; callers that restructure work into batch shape purely for round
// trips should skip the restructuring when this is false.
func (c *Client) ConcurrentBatch() bool { return c.net.concBatch }

// Neighbors issues the local-neighborhood query for v and returns its
// (possibly restricted) neighbor list. The result must not be modified.
// The warm path — v already cached — is a page-directory index, a bit test
// and an array load.
func (c *Client) Neighbors(v int) []int32 {
	if pg := c.l1[uint(v)>>l1Shift]; pg != nil {
		o := uint(v) & l1Mask
		if pg.present[o>>6]&(1<<(o&63)) != 0 {
			return pg.nbrs[o]
		}
	}
	return c.neighborsMiss(v)
}

// l1Lookup is the warm-path probe as a helper for the batched access layer:
// the cached list of v and whether it is present.
func (c *Client) l1Lookup(v int32) ([]int32, bool) {
	if pg := c.l1[uint32(v)>>l1Shift]; pg != nil {
		o := uint32(v) & l1Mask
		if pg.present[o>>6]&(1<<(o&63)) != 0 {
			return pg.nbrs[o], true
		}
	}
	return nil, false
}

// l1Page returns the page covering v, allocating it on first touch.
func (c *Client) l1page(v int) *l1Page {
	pi := uint(v) >> l1Shift
	pg := c.l1[pi]
	if pg == nil {
		pg = new(l1Page)
		c.l1[pi] = pg
	}
	return pg
}

// neighborsMiss is the cold path of Neighbors: consult the shared cache,
// fall through to the network, apply any restriction, cache, and charge.
func (c *Client) neighborsMiss(v int) []int32 {
	vv := int32(v)
	if c.cacheable && c.shared != nil {
		if nbr, ok := c.shared.lookup(vv); ok {
			c.setL1(v, nbr) // already paid for globally
			return nbr
		}
		// Fleet-partitioned cache: a miss on a shard another worker owns is
		// resolved through the owner (one atomic load on the cold path; the
		// warm path above is untouched). Unrestricted views only.
		if p := c.shared.part.Load(); p != nil && p.Resolver != nil && c.fastPath && !p.Owns(vv) {
			return c.neighborsRemote(vv, p)
		}
	}
	var nbr []int32
	if c.fb != nil {
		var err error
		nbr, err = c.fb.NeighborsCtx(c.ctx, v)
		if err != nil {
			// A failed fetch is never cached (a degraded answer must not
			// poison the L1 or a daemon's shared cache) and never charged
			// (the crawler got nothing for it). The walk kernel sees an
			// empty list — a stranded node — while the typed error cancels
			// the bound job context, so the run fails promptly above.
			c.noteFetchError(err)
			return nil
		}
	} else {
		nbr = c.net.be.Neighbors(v)
	}
	if c.fastPath {
		// Unrestricted view: the ground-truth list is the answer and is
		// always cacheable.
		if c.shared != nil {
			nbr = c.shared.store(vv, nbr) // concurrent fill: keep the winner
		}
		c.setL1(v, nbr)
		c.charge(vv)
		return nbr
	}
	if c.net.restriction != nil {
		nbr = c.net.restriction.Apply(nbr, v, c.rng)
	}
	if c.cacheable {
		if c.shared != nil {
			nbr = c.shared.store(vv, nbr)
		}
		c.setL1(v, nbr)
	}
	c.charge(vv)
	return nbr
}

func (c *Client) setL1(v int, nbr []int32) {
	pg := c.l1page(v)
	o := uint(v) & l1Mask
	pg.nbrs[o] = nbr
	pg.present[o>>6] |= 1 << (o & 63)
}

// Degree returns the number of neighbors visible through the interface
// (which under truncation restrictions may be less than the true degree).
func (c *Client) Degree(v int) int { return len(c.Neighbors(v)) }

// Attr returns the named attribute of v, or the visible degree for
// AttrDegree. Accessing an attribute of a node not yet queried counts as a
// node access (you must fetch the profile page).
func (c *Client) Attr(name string, v int) (float64, error) {
	if name == AttrDegree {
		if _, ok := c.net.attrs[AttrDegree]; !ok {
			return float64(c.Degree(v)), nil
		}
	}
	val, ok := c.net.attrValue(name, v)
	if !ok {
		return 0, fmt.Errorf("osn: unknown attribute %q", name)
	}
	if !c.wasQueried(int32(v)) {
		c.charge(int32(v))
	}
	return val, nil
}

// EdgeVisible performs the paper's bidirectional check (§6.3.1): the edge
// {u,v} is traversable only if v ∈ N(u) and u ∈ N(v) under the restricted
// interface. Both lookups are charged normally.
func (c *Client) EdgeVisible(u, v int) bool {
	return contains(c.Neighbors(u), int32(v)) && contains(c.Neighbors(v), int32(u))
}

func contains(xs []int32, x int32) bool {
	for _, e := range xs {
		if e == x {
			return true
		}
	}
	return false
}

func (c *Client) charge(v int32) {
	c.calls++
	if c.shared != nil {
		c.shared.calls.Add(1)
	}
	first := c.markQueried(v)
	if first || c.mode == CostPerCall {
		c.queries++
		if c.shared != nil {
			c.shared.queries.Add(1)
		}
	}
	if c.fastPath {
		return // precomputed: no rate limit installed
	}
	if rl := c.net.rateLimit; rl != nil && rl.PerWindow > 0 {
		c.inWindow++
		if c.inWindow > rl.PerWindow {
			c.waited += rl.Window
			c.inWindow = 1
		}
	}
}

// markQueried records the access of v and reports whether it was the first —
// per client normally, across all attached clients under a shared cache.
func (c *Client) markQueried(v int32) bool {
	if c.shared != nil {
		return c.shared.markQueried(v)
	}
	pi := uint32(v) >> l1Shift
	pg := c.acct[pi]
	if pg == nil {
		pg = new(acctPage)
		c.acct[pi] = pg
	}
	o := uint32(v) & l1Mask
	w, bit := o>>6, uint64(1)<<(o&63)
	if pg.queried[w]&bit != 0 {
		return false
	}
	pg.queried[w] |= bit
	c.nQueried++
	return true
}

// wasQueried reports whether v has been accessed — by this client, or by any
// client of the shared cache when one is attached.
func (c *Client) wasQueried(v int32) bool {
	if c.shared != nil {
		return c.shared.wasQueried(v)
	}
	pg := c.acct[uint32(v)>>l1Shift]
	if pg == nil {
		return false
	}
	o := uint32(v) & l1Mask
	return pg.queried[o>>6]&(1<<(o&63)) != 0
}

// Queries returns the query cost this client incurred itself under its
// CostMode. Under a shared cache a node first touched by a sibling costs this
// client nothing; use TotalQueries for the fleet-wide cost.
func (c *Client) Queries() int64 { return c.queries }

// TotalQueries returns the total query cost of the crawl this client is part
// of: the shared cache's global meter when one is attached, the client's own
// meter otherwise. This is the x-axis quantity of the paper's cost figures
// for both single-threaded and parallel runs.
func (c *Client) TotalQueries() int64 {
	if c.shared != nil {
		return c.shared.Queries()
	}
	return c.queries
}

// Calls returns the total number of interface calls, cached or not.
func (c *Client) Calls() int64 { return c.calls }

// Waited returns the total simulated rate-limit wait time.
func (c *Client) Waited() time.Duration { return c.waited }

// ResetCost zeroes this client's own query and call counters (the cache is
// kept; use a fresh Client to drop it). It does not touch an attached
// SharedCache's fleet-wide meters — those aggregate every attached client,
// so reset them via SharedCache.ResetCost when a measurement phase ends.
func (c *Client) ResetCost() {
	c.queries = 0
	c.calls = 0
	c.waited = 0
	c.inWindow = 0
}

// KnownNodes returns the ids of all nodes whose neighbor lists have been
// requested so far (the crawler's frontier knowledge), sorted ascending.
// Under a shared cache this is the combined knowledge of all attached
// clients.
func (c *Client) KnownNodes() []int {
	if c.shared != nil {
		return c.shared.KnownNodes()
	}
	out := make([]int, 0, c.nQueried)
	for pi, pg := range c.acct {
		if pg == nil {
			continue
		}
		base := pi << l1Shift
		for w, word := range pg.queried {
			for word != 0 {
				out = append(out, base+w<<6+bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
	}
	return out
}
