package osn

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheShards is the number of independently-locked shards of a SharedCache.
// Neighbor lookups on a social graph concentrate on hub nodes; sharding by
// node id keeps concurrent fills of distinct hubs from serializing on one
// lock. 64 shards is far beyond any worker count we run.
//
// Must stay a power of two: node v lives in shard v&(cacheShards-1) at
// within-shard index v>>shardShift, so consecutive ids stripe across shards
// while each shard's backing slices stay dense.
const (
	cacheShards = 64
	shardShift  = 6 // log2(cacheShards)
)

// SharedCache is a concurrency-safe neighbor cache plus unique-node
// accounting that several Clients can attach to (one per worker goroutine).
// Workers crawling the same network through a shared cache stop paying for
// duplicate cache fills: each distinct node is fetched from the network —
// and, in CostUniqueNodes mode, charged — exactly once across all attached
// clients, while every client keeps its own cost meter for the charges it
// incurred itself.
//
// Like the Client L1, each shard is slice-backed over the dense node-id
// space — a slice-of-slices plus presence and queried bitsets, grown on
// demand — so shared lookups cost a lock, a bit test and an array index
// rather than a map probe.
//
// The cache stores post-restriction neighbor lists, so it is only consulted
// when the installed Restriction (if any) is deterministic — exactly the
// condition under which a single-threaded Client caches.
type SharedCache struct {
	shards  [cacheShards]cacheShard
	queries atomic.Int64
	calls   atomic.Int64
	uniq    atomic.Int64 // distinct nodes accessed, for lock-free Stats
	// owned counts distinct nodes first-accessed here whose cache shard this
	// worker owns under the installed partition (all of them when part is
	// nil). Summing owned across a fleet gives the exact distinct-node total
	// regardless of which workers touched which nodes (see partition.go).
	owned atomic.Int64
	// part is the fleet partition, consulted only on the cold miss path.
	part atomic.Pointer[Partition]
	// remoteFallbacks counts non-owned ids served by local fetch because
	// their shard owner was unreachable.
	remoteFallbacks atomic.Int64
}

type cacheShard struct {
	mu      sync.RWMutex
	nbr     [][]int32 // nbr[idx] valid iff bit idx of present is set
	present []uint64
	queried []uint64
}

// NewSharedCache returns an empty shared neighbor cache. Shard storage grows
// on demand with the node ids actually touched.
func NewSharedCache() *SharedCache {
	return &SharedCache{}
}

func (sc *SharedCache) shard(v int32) (*cacheShard, uint32) {
	return &sc.shards[uint32(v)&(cacheShards-1)], uint32(v) >> shardShift
}

// grow extends the shard's dense stores to cover within-shard index idx.
// Caller must hold the write lock.
func (sh *cacheShard) grow(idx uint32) {
	need := int(idx) + 1
	if need <= len(sh.nbr) {
		return
	}
	size := 2 * len(sh.nbr)
	if size < need {
		size = need
	}
	grown := make([][]int32, size)
	copy(grown, sh.nbr)
	sh.nbr = grown
	words := (size + 63) / 64
	if words > len(sh.present) {
		p := make([]uint64, words)
		copy(p, sh.present)
		sh.present = p
		q := make([]uint64, words)
		copy(q, sh.queried)
		sh.queried = q
	}
}

// lookup returns the cached neighbor list of v, if present.
func (sc *SharedCache) lookup(v int32) ([]int32, bool) {
	sh, idx := sc.shard(v)
	var nbr []int32
	ok := false
	sh.mu.RLock()
	if w := idx >> 6; int(w) < len(sh.present) && sh.present[w]&(1<<(idx&63)) != 0 {
		nbr = sh.nbr[idx]
		ok = true
	}
	sh.mu.RUnlock()
	return nbr, ok
}

// store inserts the neighbor list of v and returns the winning entry: if a
// concurrent client stored v first, its list is returned so all clients
// share one slice.
func (sc *SharedCache) store(v int32, nbr []int32) []int32 {
	sh, idx := sc.shard(v)
	sh.mu.Lock()
	if w := idx >> 6; int(w) < len(sh.present) && sh.present[w]&(1<<(idx&63)) != 0 {
		prev := sh.nbr[idx]
		sh.mu.Unlock()
		return prev
	}
	sh.grow(idx)
	sh.nbr[idx] = nbr
	sh.present[idx>>6] |= 1 << (idx & 63)
	sh.mu.Unlock()
	return nbr
}

// shardGroups is reusable scratch that buckets a batch's positions by shard
// with a two-pass counting sort, so each batch operation takes every
// touched shard's lock exactly once and allocates nothing in steady state.
// Each Client owns one (clients are single-goroutine).
type shardGroups struct {
	start [cacheShards + 1]int32
	order []int32 // positions into ids, grouped by shard
}

func (sg *shardGroups) build(ids []int32) {
	var count [cacheShards]int32
	for _, v := range ids {
		count[uint32(v)&(cacheShards-1)]++
	}
	acc := int32(0)
	for s := 0; s < cacheShards; s++ {
		sg.start[s] = acc
		acc += count[s]
	}
	sg.start[cacheShards] = acc
	if cap(sg.order) < len(ids) {
		sg.order = make([]int32, len(ids), 2*len(ids))
	}
	sg.order = sg.order[:len(ids)]
	pos := sg.start
	for i, v := range ids {
		s := uint32(v) & (cacheShards - 1)
		sg.order[pos[s]] = int32(i)
		pos[s]++
	}
}

func (sg *shardGroups) group(s int) []int32 { return sg.order[sg.start[s]:sg.start[s+1]] }

// lookupBatch fills out[i] and sets found[i] for every cached ids[i],
// taking each touched shard's read lock once for the whole batch instead of
// once per node. Slots of missing ids are left with found[i] = false.
func (sc *SharedCache) lookupBatch(ids []int32, out [][]int32, found []bool, sg *shardGroups) {
	sg.build(ids)
	for s := 0; s < cacheShards; s++ {
		g := sg.group(s)
		if len(g) == 0 {
			continue
		}
		sh := &sc.shards[s]
		sh.mu.RLock()
		for _, i := range g {
			idx := uint32(ids[i]) >> shardShift
			if w := idx >> 6; int(w) < len(sh.present) && sh.present[w]&(1<<(idx&63)) != 0 {
				out[i] = sh.nbr[idx]
				found[i] = true
			} else {
				out[i] = nil
				found[i] = false
			}
		}
		sh.mu.RUnlock()
	}
}

// fillBatch publishes a batch of backend-fetched neighbor lists and records
// their accesses in one write-lock pass per touched shard: store (entries a
// concurrent client stored first win — lists[i] is replaced by the existing
// entry so all clients share one slice per node, the same contract as
// store) fused with the first-access test-and-set (first[i] set iff this
// was the first access fleet-wide). Because both updates for all ids in a
// shard happen under one lock acquisition, two clients racing the same
// frontier partition the first flags exactly — each node is "first" for
// precisely one of them, so the fleet meter is charged once per unique
// node.
func (sc *SharedCache) fillBatch(ids []int32, lists [][]int32, first []bool, sg *shardGroups) {
	p := sc.part.Load()
	sg.build(ids)
	for s := 0; s < cacheShards; s++ {
		g := sg.group(s)
		if len(g) == 0 {
			continue
		}
		sh := &sc.shards[s]
		sh.mu.Lock()
		for _, i := range g {
			idx := uint32(ids[i]) >> shardShift
			sh.grow(idx)
			w, bit := idx>>6, uint64(1)<<(idx&63)
			if sh.present[w]&bit != 0 {
				lists[i] = sh.nbr[idx]
			} else {
				sh.nbr[idx] = lists[i]
				sh.present[w] |= bit
			}
			if sh.queried[w]&bit != 0 {
				first[i] = false
			} else {
				sh.queried[w] |= bit
				sc.uniq.Add(1)
				if sc.ownsLocal(p, ids[i]) {
					sc.owned.Add(1)
				}
				first[i] = true
			}
		}
		sh.mu.Unlock()
	}
}

// markQueried records that v has been accessed and reports whether this was
// the first access across all attached clients.
func (sc *SharedCache) markQueried(v int32) bool {
	sh, idx := sc.shard(v)
	w, bit := idx>>6, uint64(1)<<(idx&63)
	sh.mu.Lock()
	if int(w) < len(sh.queried) && sh.queried[w]&bit != 0 {
		sh.mu.Unlock()
		return false
	}
	sh.grow(idx)
	sh.queried[w] |= bit
	sh.mu.Unlock()
	sc.uniq.Add(1)
	if sc.ownsLocal(sc.part.Load(), v) {
		sc.owned.Add(1)
	}
	return true
}

// wasQueried reports whether any attached client has accessed v.
func (sc *SharedCache) wasQueried(v int32) bool {
	sh, idx := sc.shard(v)
	w, bit := idx>>6, uint64(1)<<(idx&63)
	sh.mu.RLock()
	q := int(w) < len(sh.queried) && sh.queried[w]&bit != 0
	sh.mu.RUnlock()
	return q
}

// Queries returns the total query cost accumulated across all attached
// clients. In CostUniqueNodes mode this equals the number of distinct nodes
// accessed (each unique node is charged exactly once, to the client that
// touched it first).
func (sc *SharedCache) Queries() int64 { return sc.queries.Load() }

// Calls returns the total number of interface calls across all attached
// clients, cached or not.
func (sc *SharedCache) Calls() int64 { return sc.calls.Load() }

// ResetCost zeroes the fleet-wide query and call meters (the cache and the
// unique-node set are kept, mirroring Client.ResetCost). Per-client meters
// are not touched; reset those individually if a phase boundary needs them
// at zero too. Not atomic with respect to in-flight charges — call it
// between phases, when no attached client is active.
func (sc *SharedCache) ResetCost() {
	sc.queries.Store(0)
	sc.calls.Store(0)
}

// UniqueNodes returns the number of distinct nodes accessed so far across
// all attached clients.
func (sc *SharedCache) UniqueNodes() int { return int(sc.uniq.Load()) }

// CacheStats is a point-in-time snapshot of a SharedCache's fleet-wide
// meters, cheap enough to read on every scrape of a metrics endpoint: three
// atomic loads, no shard locks.
type CacheStats struct {
	// Queries is the fleet-wide query cost (the paper's cost axis).
	Queries int64
	// Calls is the total number of interface calls, cached or not.
	Calls int64
	// UniqueNodes is the number of distinct nodes accessed.
	UniqueNodes int64
	// OwnedUnique is the number of distinct partition-owned nodes
	// first-accessed here (== UniqueNodes without a partition). Summed
	// across a fleet it is the exact distinct-node total.
	OwnedUnique int64
	// RemoteFallbacks counts non-owned ids served by local fetch because
	// their shard owner was unreachable (fleet meter approximate if > 0).
	RemoteFallbacks int64
}

// HitRatio returns the fraction of interface calls served without charging a
// new unique node — the cache hit ratio a long-lived service reports. Zero
// before any call.
func (s CacheStats) HitRatio() float64 {
	if s.Calls == 0 {
		return 0
	}
	return 1 - float64(s.Queries)/float64(s.Calls)
}

// Stats returns an atomic snapshot of the fleet-wide meters. The three
// counters are loaded independently (not one consistent cut), which is fine
// for monitoring; phase-accurate accounting should quiesce clients first.
func (sc *SharedCache) Stats() CacheStats {
	return CacheStats{
		Queries:         sc.queries.Load(),
		Calls:           sc.calls.Load(),
		UniqueNodes:     sc.uniq.Load(),
		OwnedUnique:     sc.owned.Load(),
		RemoteFallbacks: sc.remoteFallbacks.Load(),
	}
}

// KnownNodes returns the sorted ids of all nodes accessed so far across all
// attached clients (the crawler fleet's combined frontier knowledge).
func (sc *SharedCache) KnownNodes() []int {
	var out []int
	for s := range sc.shards {
		sh := &sc.shards[s]
		sh.mu.RLock()
		for w, word := range sh.queried {
			for word != 0 {
				idx := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				out = append(out, idx<<shardShift|s)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Ints(out)
	return out
}
