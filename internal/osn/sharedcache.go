package osn

import (
	"sort"
	"sync"
	"sync/atomic"
)

// cacheShards is the number of independently-locked shards of a SharedCache.
// Neighbor lookups on a social graph concentrate on hub nodes; sharding by
// node id keeps concurrent fills of distinct hubs from serializing on one
// lock. 64 shards is far beyond any worker count we run.
const cacheShards = 64

// SharedCache is a concurrency-safe neighbor cache plus unique-node
// accounting that several Clients can attach to (one per worker goroutine).
// Workers crawling the same network through a shared cache stop paying for
// duplicate cache fills: each distinct node is fetched from the network —
// and, in CostUniqueNodes mode, charged — exactly once across all attached
// clients, while every client keeps its own cost meter for the charges it
// incurred itself.
//
// The cache stores post-restriction neighbor lists, so it is only consulted
// when the installed Restriction (if any) is deterministic — exactly the
// condition under which a single-threaded Client caches.
type SharedCache struct {
	shards  [cacheShards]cacheShard
	queries atomic.Int64
	calls   atomic.Int64
}

type cacheShard struct {
	mu      sync.RWMutex
	nbr     map[int32][]int32
	queried map[int32]bool
}

// NewSharedCache returns an empty shared neighbor cache.
func NewSharedCache() *SharedCache {
	sc := &SharedCache{}
	for i := range sc.shards {
		sc.shards[i].nbr = make(map[int32][]int32)
		sc.shards[i].queried = make(map[int32]bool)
	}
	return sc
}

func (sc *SharedCache) shard(v int32) *cacheShard {
	return &sc.shards[uint32(v)%cacheShards]
}

// lookup returns the cached neighbor list of v, if present.
func (sc *SharedCache) lookup(v int32) ([]int32, bool) {
	sh := sc.shard(v)
	sh.mu.RLock()
	nbr, ok := sh.nbr[v]
	sh.mu.RUnlock()
	return nbr, ok
}

// store inserts the neighbor list of v and returns the winning entry: if a
// concurrent client stored v first, its list is returned so all clients
// share one slice.
func (sc *SharedCache) store(v int32, nbr []int32) []int32 {
	sh := sc.shard(v)
	sh.mu.Lock()
	if prev, ok := sh.nbr[v]; ok {
		sh.mu.Unlock()
		return prev
	}
	sh.nbr[v] = nbr
	sh.mu.Unlock()
	return nbr
}

// markQueried records that v has been accessed and reports whether this was
// the first access across all attached clients.
func (sc *SharedCache) markQueried(v int32) bool {
	sh := sc.shard(v)
	sh.mu.Lock()
	first := !sh.queried[v]
	if first {
		sh.queried[v] = true
	}
	sh.mu.Unlock()
	return first
}

// wasQueried reports whether any attached client has accessed v.
func (sc *SharedCache) wasQueried(v int32) bool {
	sh := sc.shard(v)
	sh.mu.RLock()
	q := sh.queried[v]
	sh.mu.RUnlock()
	return q
}

// Queries returns the total query cost accumulated across all attached
// clients. In CostUniqueNodes mode this equals the number of distinct nodes
// accessed (each unique node is charged exactly once, to the client that
// touched it first).
func (sc *SharedCache) Queries() int64 { return sc.queries.Load() }

// Calls returns the total number of interface calls across all attached
// clients, cached or not.
func (sc *SharedCache) Calls() int64 { return sc.calls.Load() }

// ResetCost zeroes the fleet-wide query and call meters (the cache and the
// unique-node set are kept, mirroring Client.ResetCost). Per-client meters
// are not touched; reset those individually if a phase boundary needs them
// at zero too. Not atomic with respect to in-flight charges — call it
// between phases, when no attached client is active.
func (sc *SharedCache) ResetCost() {
	sc.queries.Store(0)
	sc.calls.Store(0)
}

// UniqueNodes returns the number of distinct nodes accessed so far across
// all attached clients.
func (sc *SharedCache) UniqueNodes() int {
	total := 0
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.RLock()
		total += len(sh.queried)
		sh.mu.RUnlock()
	}
	return total
}

// KnownNodes returns the sorted ids of all nodes accessed so far across all
// attached clients (the crawler fleet's combined frontier knowledge).
func (sc *SharedCache) KnownNodes() []int {
	var out []int
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.RLock()
		for v := range sh.queried {
			out = append(out, int(v))
		}
		sh.mu.RUnlock()
	}
	sort.Ints(out)
	return out
}
