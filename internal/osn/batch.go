package osn

import "slices"

// This file is the batched access path: Client.NeighborsBatch resolves a
// whole frontier of nodes in one pass per layer — one L1 scan, one shared-
// cache lock acquisition per shard (instead of a lock pair per miss), one
// backend NeighborsBatch call (one simulated round trip instead of k), and
// one batched charge. Results, caching, and metering are exactly what the
// per-node path would produce for the same frontier; only lock traffic and
// backend round trips are amortized.

// NeighborsBatch fills out[i] with the (possibly restricted) neighbor list
// of vs[i]; len(out) must equal len(vs). Cache misses are resolved in one
// batched pass as described above. The returned lists must not be modified.
//
// Under a non-deterministic (type-1) restriction nothing may be cached and
// every call must re-randomize, so the batch degenerates to per-node calls.
func (c *Client) NeighborsBatch(vs []int32, out [][]int32) {
	if len(vs) != len(out) {
		panic("osn: NeighborsBatch length mismatch")
	}
	if !c.cacheable {
		for i, v := range vs {
			out[i] = c.Neighbors(int(v))
		}
		return
	}

	// Pass 1: serve L1 hits; collect the positions still unresolved.
	pos := c.batchPos[:0]
	for i, v := range vs {
		if nbr, ok := c.l1Lookup(v); ok {
			out[i] = nbr
		} else {
			pos = append(pos, int32(i))
		}
	}
	c.batchPos = pos
	if len(pos) == 0 {
		return
	}

	// Deduplicate the missing ids (duplicate occurrences must behave like
	// the per-node path: first resolves, the rest are warm hits).
	ids := c.batchIDs[:0]
	for _, i := range pos {
		ids = append(ids, vs[i])
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	c.batchIDs = ids

	if cap(c.batchLists) < len(ids) {
		c.batchLists = make([][]int32, len(ids), 2*len(ids))
	}
	lists := c.batchLists[:len(ids)]
	if cap(c.batchFirst) < len(ids) {
		c.batchFirst = make([]bool, len(ids), 2*len(ids))
	}
	found := c.batchFirst[:len(ids)]

	// Pass 2: shared-cache batched lookup — one read lock per shard. Hits
	// are already paid for globally; install them in the L1 uncharged.
	fetch := ids
	if c.shared != nil {
		k := 0
		c.shared.lookupBatch(ids, lists, found, &c.groups)
		for i, v := range ids {
			if found[i] {
				c.setL1(int(v), lists[i])
			} else {
				ids[k] = v
				k++
			}
		}
		fetch = ids[:k]
		// Fleet-partitioned cache: route non-owned misses through their
		// shard owners (absorbed + charged with the owners' fleet-first
		// verdicts); only locally-owned ids continue to the backend pass.
		if len(fetch) > 0 && c.fastPath {
			if p := c.shared.part.Load(); p != nil && p.Resolver != nil {
				fetch = c.resolvePartitioned(p, fetch)
			}
		}
	}

	// Pass 3: one backend round trip for the remaining misses, restriction
	// applied per node (deterministic restrictions only — checked above;
	// they consume no RNG, so batch order cannot perturb any stream).
	if len(fetch) > 0 {
		fetched := lists[:len(fetch)]
		if c.fb != nil {
			if cap(c.batchFailed) < len(fetch) {
				c.batchFailed = make([]bool, len(fetch), 2*len(fetch))
			}
			bf := c.batchFailed[:len(fetch)]
			if err := c.fb.NeighborsBatchCtx(c.ctx, fetch, fetched, bf); err != nil {
				c.noteFetchError(err)
				// Compact to the elements that succeeded: failures are
				// neither cached nor charged, and resolve to nil in the
				// final pass below.
				k := 0
				for i := range fetch {
					if !bf[i] {
						fetch[k], fetched[k] = fetch[i], fetched[i]
						k++
					}
				}
				fetch, fetched = fetch[:k], fetched[:k]
				if len(fetch) == 0 {
					for _, i := range pos {
						out[i], _ = c.l1Lookup(vs[i])
					}
					return
				}
			}
		} else {
			c.net.be.NeighborsBatch(fetch, fetched)
		}
		if !c.fastPath && c.net.restriction != nil {
			for i, v := range fetch {
				fetched[i] = c.net.restriction.Apply(fetched[i], int(v), c.rng)
			}
		}
		// Pass 4: publish to the shared cache and test-and-set the
		// first-access flags in one fused write-lock pass per shard
		// (concurrent fillers' winning entries are kept), install in L1,
		// and apply one batched charge.
		first := found[:len(fetch)]
		if c.shared != nil {
			c.shared.fillBatch(fetch, fetched, first, &c.groups)
		} else {
			for i, v := range fetch {
				first[i] = c.markQueried(v)
			}
		}
		for i, v := range fetch {
			c.setL1(int(v), fetched[i])
		}
		c.chargeBatch(len(fetch), first)
	}

	// Final pass: every miss position is now warm in the L1.
	for _, i := range pos {
		out[i], _ = c.l1Lookup(vs[i])
	}
}

// Prefetch warms the client's cache hierarchy for vs in one batched pass;
// under a shared cache the fill (and its unique-node charges) is visible to
// all attached clients, so a fleet's frontier costs one locked pass per
// shard and one backend round trip instead of a lock pair and a round trip
// per node. Nodes already cached cost nothing. Under a non-deterministic
// (type-1) restriction nothing may be cached, so Prefetch is a no-op —
// calling it never changes any restriction RNG stream or cost meter.
func (c *Client) Prefetch(vs []int32) {
	if len(vs) == 0 || !c.cacheable {
		return
	}
	// NeighborsBatch needs an out buffer; batchLists is scratch inside it,
	// so Prefetch keeps a dedicated spill of its own.
	out := prefetchOut(&c.prefetchBuf, len(vs))
	c.NeighborsBatch(vs, out)
}

// LookaheadNeighbors warms the L1 for the forward-walk frontier of u: the
// nodes a walk standing at u may step to next. It pulls the subset of u's
// neighbors that the fleet has *already fetched and paid for* (present in
// the shared cache) into this client's L1 in one batched read-locked pass
// per shard — so the subsequent step's Neighbors call is a lock-free L1 hit
// instead of a shared-cache lock pair. It never contacts the backend, never
// charges a query, and consumes no RNG, so it is cost-neutral on the
// paper's query axis and invisible to every determinism contract.
//
// Reading u's own list is the one access it shares with the step that
// follows (which would issue it anyway), so that too adds no charge. It
// returns the number of entries pulled into the L1; it is a free no-op for
// private clients and under non-deterministic (type-1) restrictions, where
// nothing may be cached.
func (c *Client) LookaheadNeighbors(u int) int {
	if c.shared == nil || !c.cacheable {
		return 0
	}
	return c.PrefetchCached(c.Neighbors(u))
}

// PrefetchCached pulls the already-cached (fleet-paid) entries among vs into
// the client's L1 in one batched shared-cache read pass. Unlike Prefetch it
// never falls through to the backend and never charges: nodes absent from
// the shared cache are simply skipped. Returns the number of entries
// installed. No-op for private clients and under type-1 restrictions.
func (c *Client) PrefetchCached(vs []int32) int {
	if c.shared == nil || !c.cacheable || len(vs) == 0 {
		return 0
	}
	// L1 pass: only ids this client does not already hold need a lookup.
	ids := c.batchIDs[:0]
	for _, v := range vs {
		if _, ok := c.l1Lookup(v); !ok {
			ids = append(ids, v)
		}
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	c.batchIDs = ids
	if len(ids) == 0 {
		return 0
	}
	if cap(c.batchLists) < len(ids) {
		c.batchLists = make([][]int32, len(ids), 2*len(ids))
	}
	lists := c.batchLists[:len(ids)]
	if cap(c.batchFirst) < len(ids) {
		c.batchFirst = make([]bool, len(ids), 2*len(ids))
	}
	found := c.batchFirst[:len(ids)]
	c.shared.lookupBatch(ids, lists, found, &c.groups)
	n := 0
	for i, v := range ids {
		if found[i] {
			c.setL1(int(v), lists[i])
			n++
		}
	}
	return n
}

// chargeBatch is the batched form of charge for k nodes fetched from the
// backend, whose first-access flags (resolved by the fused fillBatch
// test-and-set, or locally for a private client) are in first[:k]: the
// fleet meter is charged exactly once per unique node under
// CostUniqueNodes — even when sibling clients race the same frontier.
func (c *Client) chargeBatch(k int, first []bool) {
	kk := int64(k)
	c.calls += kk
	if c.shared != nil {
		c.shared.calls.Add(kk)
	}
	var charged int64
	if c.mode == CostPerCall {
		charged = kk
	} else {
		for _, f := range first[:k] {
			if f {
				charged++
			}
		}
	}
	c.queries += charged
	if c.shared != nil {
		c.shared.queries.Add(charged)
	}
	if c.fastPath {
		return // precomputed: no rate limit installed
	}
	if rl := c.net.rateLimit; rl != nil && rl.PerWindow > 0 {
		for i := 0; i < k; i++ {
			c.inWindow++
			if c.inWindow > rl.PerWindow {
				c.waited += rl.Window
				c.inWindow = 1
			}
		}
	}
}

// prefetchOut returns a length-n slice backed by *buf, growing it on demand.
func prefetchOut(buf *[][]int32, n int) [][]int32 {
	if cap(*buf) < n {
		*buf = make([][]int32, n, 2*n)
	}
	return (*buf)[:n]
}
