package osn

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
)

// fastPolicy keeps resilience-test wall-clock negligible.
func fastPolicy() ResilientPolicy {
	return ResilientPolicy{
		MaxRetries:      6,
		BaseBackoff:     10 * time.Microsecond,
		MaxBackoff:      100 * time.Microsecond,
		BreakerCooldown: 5 * time.Millisecond,
	}
}

// TestResilientAbsorbsTransientFaults is the PR's core contract at the
// client level: under a seeded transient-fault schedule fully absorbed by
// retries, every access answers ground truth and every meter matches the
// fault-free run exactly — retries are invisible above the resilience layer.
func TestResilientAbsorbsTransientFaults(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))

	// Reference run: plain mem backend.
	ref := NewClient(NewNetwork(g), CostUniqueNodes, rand.New(rand.NewSource(1)))

	// Faulty run: 20% transient + 5% rate-limit faults under the retry layer.
	fs, err := NewFaultSim(NewMemBackend(g), FaultConfig{
		Seed:          11,
		TransientRate: 0.2,
		RateLimitRate: 0.05,
		RetryAfter:    50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := NewResilientBackend(fs, fastPolicy())
	c := NewClient(NewNetworkOn(res), CostUniqueNodes, rand.New(rand.NewSource(1)))

	// A deterministic access mix: walks of single lookups plus batches.
	walk := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		v := walk.Intn(g.NumNodes())
		a, b := ref.Neighbors(v), c.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d neighbors", v, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d neighbor %d differs", v, j)
			}
		}
	}
	vs := make([]int32, 64)
	for i := range vs {
		vs[i] = int32(walk.Intn(g.NumNodes()))
	}
	outA := make([][]int32, len(vs))
	outB := make([][]int32, len(vs))
	ref.NeighborsBatch(vs, outA)
	c.NeighborsBatch(vs, outB)
	for i := range vs {
		if len(outA[i]) != len(outB[i]) {
			t.Fatalf("batch element %d: %d vs %d neighbors", i, len(outB[i]), len(outA[i]))
		}
	}

	if c.Queries() != ref.Queries() || c.Calls() != ref.Calls() {
		t.Fatalf("meters diverged: queries %d/%d calls %d/%d (retries must not double-charge)",
			c.Queries(), ref.Queries(), c.Calls(), ref.Calls())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("client observed a failure: %v", err)
	}
	if c.FailedFetches() != 0 {
		t.Fatalf("%d failed fetches, want 0 (all faults absorbed)", c.FailedFetches())
	}
	st := res.Stats()
	if st.Absorbed == 0 || st.Retries == 0 {
		t.Fatalf("no retries recorded (absorbed=%d retries=%d) — schedule drifted?", st.Absorbed, st.Retries)
	}
	if st.Failures != 0 {
		t.Fatalf("%d give-ups under an absorbable schedule", st.Failures)
	}
	if fs.Stats().Total() == 0 {
		t.Fatal("injector recorded no faults")
	}
}

// TestResilientGiveUpCancelsWithTypedError: under a full outage the retry
// policy exhausts, the access surfaces as a typed BackendUnavailableError,
// the failure-cancel hook fires with that cause, and nothing is cached or
// charged for the failed access.
func TestResilientGiveUpCancelsWithTypedError(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, rand.New(rand.NewSource(1)))
	fs, err := NewFaultSim(NewMemBackend(g), FaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs.StartOutage()
	pol := fastPolicy()
	pol.MaxRetries = 2
	res := NewResilientBackend(fs, pol)
	c := NewClient(NewNetworkOn(res), CostUniqueNodes, rand.New(rand.NewSource(1)))

	ctx, cancel := context.WithCancelCause(context.Background())
	c.BindContext(WithFailureCancel(ctx, cancel))

	if nbr := c.Neighbors(5); nbr != nil {
		t.Fatalf("failed access returned a list: %v", nbr)
	}
	var bu *BackendUnavailableError
	if err := c.Err(); !errors.As(err, &bu) {
		t.Fatalf("client error %v, want BackendUnavailableError", err)
	}
	if bu.Reason != "retries_exhausted" {
		t.Fatalf("reason %q, want retries_exhausted", bu.Reason)
	}
	if bu.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", bu.Attempts)
	}
	var fe *FaultError
	if !errors.As(bu, &fe) || fe.Kind != FaultOutage {
		t.Fatalf("underlying cause %v, want an outage FaultError", bu.Last)
	}
	if ctx.Err() == nil {
		t.Fatal("failure-cancel hook did not cancel the context")
	}
	if cause := context.Cause(ctx); !errors.As(cause, &bu) {
		t.Fatalf("context cause %v, want the typed error", cause)
	}
	if c.Queries() != 0 || c.Calls() != 0 {
		t.Fatalf("failed access charged: queries=%d calls=%d", c.Queries(), c.Calls())
	}

	// After the outage ends and the breaker recovers, the same node resolves
	// and is charged exactly once — the failure left no cache poison behind.
	fs.EndOutage()
	time.Sleep(2 * pol.BreakerCooldown)
	c2 := NewClient(NewNetworkOn(res), CostUniqueNodes, rand.New(rand.NewSource(1)))
	if nbr := c2.Neighbors(5); len(nbr) == 0 {
		t.Fatal("post-outage access still failing")
	}
	if c2.Queries() != 1 {
		t.Fatalf("post-outage access charged %d, want 1", c2.Queries())
	}
}

// TestResilientBreakerLifecycle: consecutive failures open the breaker,
// open-state calls fail fast without touching the backend, and after the
// cooldown a half-open probe success closes it again.
func TestResilientBreakerLifecycle(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, rand.New(rand.NewSource(1)))
	fs, err := NewFaultSim(NewMemBackend(g), FaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pol := fastPolicy()
	pol.MaxRetries = 1
	pol.BreakerThreshold = 2
	res := NewResilientBackend(fs, pol)
	ctx := context.Background()

	fs.StartOutage()
	if _, err := res.NeighborsCtx(ctx, 0); err == nil {
		t.Fatal("outage call succeeded")
	}
	if st := res.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker %v after %d consecutive failures, want open", st, pol.BreakerThreshold)
	}
	// A call against the open breaker: the open-state attempt is rejected at
	// the gate (backend untouched); after the cooldown the single half-open
	// probe goes through, fails against the ongoing outage, and reopens the
	// breaker — so of the call's 2 attempts at most 1 reaches the backend.
	attemptsWhenOpen := fs.Stats().Attempts
	_, gerr := res.NeighborsCtx(ctx, 1)
	var bu *BackendUnavailableError
	if !errors.As(gerr, &bu) {
		t.Fatalf("open-breaker call: %v, want a typed give-up", gerr)
	}
	if through := fs.Stats().Attempts - attemptsWhenOpen; through > 1 {
		t.Fatalf("open breaker let %d attempts through, want <= 1 (the probe)", through)
	}
	if st := res.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker %v after a failed probe, want reopened", st)
	}
	if res.Stats().BreakerOpens < 2 {
		t.Fatalf("breaker-opens = %d, want >= 2 (initial open + reopen after failed probe)", res.Stats().BreakerOpens)
	}

	fs.EndOutage()
	time.Sleep(pol.BreakerCooldown + time.Millisecond)
	if nbr, err := res.NeighborsCtx(ctx, 2); err != nil || len(nbr) == 0 {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := res.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %v after a successful probe, want closed", st)
	}
}

// TestResilientRetryBudgetExhaustion: when the shared token pool runs dry,
// the layer gives up with the retry_budget_exhausted reason instead of
// hammering the backend.
func TestResilientRetryBudgetExhaustion(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, rand.New(rand.NewSource(1)))
	fs, err := NewFaultSim(NewMemBackend(g), FaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs.StartOutage()
	pol := fastPolicy()
	pol.RetryBudget = 0.5 // half a token: the first retry is already denied
	res := NewResilientBackend(fs, pol)
	_, gerr := res.NeighborsCtx(context.Background(), 0)
	var bu *BackendUnavailableError
	if !errors.As(gerr, &bu) || bu.Reason != "retry_budget_exhausted" {
		t.Fatalf("got %v, want retry_budget_exhausted give-up", gerr)
	}
}

// TestResilientBudgetSustainsAbsorbableRate: the budget must never drain
// under a sustained absorbable fault rate, even over wide batches — spend
// is one token per retry round trip (never per element, which could make
// a single wide batch unaffordable) and refunds are per resolved element.
// (Regression: spend used to be per pending element and refunds per call,
// so a long crawl at 5% faults over large prefetch batches exhausted the
// pool and every later access gave up with retry_budget_exhausted.)
func TestResilientBudgetSustainsAbsorbableRate(t *testing.T) {
	inner := faultGraphBackend(t)
	fs, err := NewFaultSim(inner, FaultConfig{Seed: 11, TransientRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pol := fastPolicy()
	// Tiny pool: per-element spend couldn't even afford one round's ~10
	// pending elements, and per-call refunds would drain it regardless;
	// per-round spend with per-element refunds keeps it full.
	pol.RetryBudget = 8
	res := NewResilientBackend(fs, pol)
	ctx := context.Background()

	vs := make([]int32, 200)
	out := make([][]int32, len(vs))
	failed := make([]bool, len(vs))
	for round := 0; round < 50; round++ {
		for i := range vs {
			vs[i] = int32((round*7 + i) % inner.NumNodes())
		}
		if berr := res.NeighborsBatchCtx(ctx, vs, out, failed); berr != nil {
			t.Fatalf("round %d: %v", round, berr)
		}
	}
	st := res.Stats()
	if st.Failures != 0 {
		t.Fatalf("%d give-ups at an absorbable rate", st.Failures)
	}
	if st.BudgetRemaining < pol.RetryBudget/2 {
		t.Fatalf("budget drained to %.2f of %.0f under a sustained absorbable rate",
			st.BudgetRemaining, pol.RetryBudget)
	}
}

// flakyOnce is a FallibleBackend stub whose node-v accesses fail exactly
// once with a rate-limit hint, then succeed.
type flakyOnce struct {
	MemBackend
	hint   time.Duration
	failed map[int]bool
}

func (f *flakyOnce) NeighborsCtx(_ context.Context, v int) ([]int32, error) {
	if !f.failed[v] {
		f.failed[v] = true
		return nil, &FaultError{Kind: FaultRateLimit, Node: int32(v), RetryAfter: f.hint}
	}
	return f.MemBackend.Neighbors(v), nil
}

func (f *flakyOnce) NeighborsBatchCtx(_ context.Context, vs []int32, out [][]int32, failed []bool) error {
	var first error
	for i, v := range vs {
		nbr, err := f.NeighborsCtx(nil, int(v))
		out[i], failed[i] = nbr, err != nil
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f *flakyOnce) DegreeCtx(_ context.Context, v int) (int, error) {
	return f.MemBackend.Degree(v), nil
}

func (f *flakyOnce) AttrCtx(_ context.Context, name string, v int) (float64, bool, error) {
	val, ok := f.MemBackend.Attr(name, v)
	return val, ok, nil
}

// TestResilientHonorsRetryAfter: a rate-limit fault's retry-after hint
// stretches the backoff — the retry does not fire before the hint elapses.
func TestResilientHonorsRetryAfter(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, rand.New(rand.NewSource(1)))
	const hint = 25 * time.Millisecond
	fb := &flakyOnce{MemBackend: NewMemBackend(g), hint: hint, failed: map[int]bool{}}
	res := NewResilientBackend(fb, fastPolicy())

	began := time.Now()
	nbr, err := res.NeighborsCtx(context.Background(), 3)
	if err != nil || len(nbr) == 0 {
		t.Fatalf("retry did not recover: %v", err)
	}
	if el := time.Since(began); el < hint {
		t.Fatalf("retry fired after %v, before the %v retry-after hint", el, hint)
	}
	if res.Stats().Absorbed != 1 {
		t.Fatalf("absorbed = %d, want 1", res.Stats().Absorbed)
	}
}

// TestResilientBatchPartialRetry: in a batch where only some elements fault,
// retries re-issue just the failed subset and the final batch is complete
// and correct.
func TestResilientBatchPartialRetry(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, rand.New(rand.NewSource(1)))
	mem := NewMemBackend(g)
	fb := &flakyOnce{MemBackend: mem, failed: map[int]bool{}}
	// Pre-mark even nodes as already failed: they succeed on first issue,
	// odd nodes fault once and resolve on the retry round.
	for v := 0; v < g.NumNodes(); v += 2 {
		fb.failed[v] = true
	}
	res := NewResilientBackend(fb, fastPolicy())

	vs := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	out := make([][]int32, len(vs))
	failed := make([]bool, len(vs))
	if err := res.NeighborsBatchCtx(context.Background(), vs, out, failed); err != nil {
		t.Fatalf("batch did not recover: %v", err)
	}
	for i, v := range vs {
		if failed[i] {
			t.Fatalf("element %d still failed", i)
		}
		want := mem.Neighbors(int(v))
		if len(out[i]) != len(want) {
			t.Fatalf("element %d: %d neighbors, want %d", i, len(out[i]), len(want))
		}
	}
	if res.Stats().Absorbed != 1 {
		t.Fatalf("absorbed = %d, want 1 batch-level absorption", res.Stats().Absorbed)
	}
}
