package osn

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Backend is the ground-truth access layer a Network serves topology and
// stored attributes from. The paper's premise is that each access costs real
// wall-clock latency, so the access path is pluggable: an in-memory graph
// for unit-level work, a memory-mapped binary CSR for graphs too large to
// hold on the heap, and a simulated remote API that charges latency per
// round trip. Backends are immutable after construction and safe for
// concurrent readers; all restriction, caching, and cost accounting stays in
// the Network/Client layer above.
//
// NeighborsBatch is the batched counterpart of Neighbors: it resolves many
// nodes in what a remote platform would serve as one multi-get round trip,
// which is what turns the sampler's "queries saved" into wall-clock saved.
type Backend interface {
	// NumNodes returns |V|; node ids are dense in [0, NumNodes()).
	NumNodes() int
	// NumEdges returns |E|.
	NumEdges() int
	// Degree returns |N(v)| in the ground truth.
	Degree(v int) int
	// Neighbors returns the sorted ground-truth neighbor list of v. The
	// result aliases backend storage and must not be modified.
	Neighbors(v int) []int32
	// NeighborsBatch fills out[i] with the neighbor list of vs[i];
	// len(out) must equal len(vs).
	NeighborsBatch(vs []int32, out [][]int32)
	// Attr returns the backend-stored attribute value of v, if the backend
	// carries a table under that name (disk CSR files can embed per-node
	// float64 tables). Network-attached attributes take precedence.
	Attr(name string, v int) (float64, bool)
	// AttrNames lists the backend-stored attribute tables.
	AttrNames() []string
}

// GraphViewer is implemented by backends whose full topology is addressable
// as a *graph.Graph (the in-memory and mmap-CSR backends). The evaluation
// layer uses it to compute exact ground-truth aggregates; samplers must not.
type GraphViewer interface {
	GraphView() *graph.Graph
}

// MemBackend serves a heap-resident CSR graph: the seed behavior of the
// package, bit-for-bit. Zero per-call cost beyond the array indexing.
// Optional attribute tables (e.g. decoded from a CSR file) make it
// observationally identical to a DiskBackend over the same file.
type MemBackend struct {
	g         *graph.Graph
	attrs     map[string][]float64
	attrNames []string
}

// NewMemBackend wraps an in-memory graph as a Backend.
func NewMemBackend(g *graph.Graph) MemBackend { return MemBackend{g: g} }

// NewMemBackendWithAttrs wraps an in-memory graph plus per-node attribute
// tables (each of length NumNodes) as a Backend — the heap-decoded
// counterpart of a DiskBackend over a CSR file with embedded attributes.
// Attribute names are served in sorted order, matching the CSR file layout.
func NewMemBackendWithAttrs(g *graph.Graph, attrs map[string][]float64) MemBackend {
	names := make([]string, 0, len(attrs))
	for name, vals := range attrs {
		if len(vals) != g.NumNodes() {
			panic(fmt.Sprintf("osn: attribute %q has %d values for %d nodes", name, len(vals), g.NumNodes()))
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return MemBackend{g: g, attrs: attrs, attrNames: names}
}

// NumNodes implements Backend.
func (b MemBackend) NumNodes() int { return b.g.NumNodes() }

// NumEdges implements Backend.
func (b MemBackend) NumEdges() int { return b.g.NumEdges() }

// Degree implements Backend.
func (b MemBackend) Degree(v int) int { return b.g.Degree(v) }

// Neighbors implements Backend.
func (b MemBackend) Neighbors(v int) []int32 { return b.g.Neighbors(v) }

// NeighborsBatch implements Backend.
func (b MemBackend) NeighborsBatch(vs []int32, out [][]int32) {
	for i, v := range vs {
		out[i] = b.g.Neighbors(int(v))
	}
}

// Attr implements Backend, serving any attached attribute tables.
func (b MemBackend) Attr(name string, v int) (float64, bool) {
	vals, ok := b.attrs[name]
	if !ok {
		return 0, false
	}
	return vals[v], true
}

// AttrNames implements Backend.
func (b MemBackend) AttrNames() []string { return b.attrNames }

// GraphView implements GraphViewer.
func (b MemBackend) GraphView() *graph.Graph { return b.g }

// DiskBackend serves a binary CSR file opened with graph.OpenCSR: neighbor
// lists are slices into the memory-mapped file, so a million-node graph
// opens in O(1), samples without holding its edges on the heap, and pages
// in only the neighborhoods a crawl actually touches. Attribute tables
// embedded in the file are served through Attr.
type DiskBackend struct {
	m *graph.MappedCSR
}

// NewDiskBackend wraps an opened CSR mapping as a Backend. The caller
// retains ownership of m (and must keep it open while the backend is used).
func NewDiskBackend(m *graph.MappedCSR) DiskBackend { return DiskBackend{m: m} }

// OpenDiskBackend opens the named binary CSR file as a backend. Close the
// returned mapping when done.
func OpenDiskBackend(path string) (DiskBackend, *graph.MappedCSR, error) {
	m, err := graph.OpenCSR(path)
	if err != nil {
		return DiskBackend{}, nil, err
	}
	return DiskBackend{m: m}, m, nil
}

// NumNodes implements Backend.
func (b DiskBackend) NumNodes() int { return b.m.NumNodes() }

// NumEdges implements Backend.
func (b DiskBackend) NumEdges() int { return b.m.NumEdges() }

// Degree implements Backend.
func (b DiskBackend) Degree(v int) int { return b.m.Degree(v) }

// Neighbors implements Backend.
func (b DiskBackend) Neighbors(v int) []int32 { return b.m.Neighbors(v) }

// NeighborsBatch implements Backend.
func (b DiskBackend) NeighborsBatch(vs []int32, out [][]int32) {
	for i, v := range vs {
		out[i] = b.m.Neighbors(int(v))
	}
}

// Attr implements Backend, serving tables embedded in the CSR file.
func (b DiskBackend) Attr(name string, v int) (float64, bool) {
	vals := b.m.Attr(name)
	if vals == nil {
		return 0, false
	}
	return vals[v], true
}

// AttrNames implements Backend.
func (b DiskBackend) AttrNames() []string { return b.m.AttrNames() }

// GraphView implements GraphViewer: the returned graph aliases the mapping.
func (b DiskBackend) GraphView() *graph.Graph { return b.m.Graph() }

// RemoteSim wraps a Backend and simulates the wide-area access cost of a
// real OSN API: every round trip sleeps Latency plus a deterministic jitter
// in [-Jitter, +Jitter], and batch requests are answered over Fanout
// concurrent connections — a k-node batch costs ~ceil(k/Fanout) round trips
// of wall-clock instead of k. This makes the paper's query-count savings
// directly measurable as wall-clock savings.
//
// Jitter is derived from an atomic call counter through a splitmix64
// finalizer, so it needs no locking and no shared RNG; it perturbs timing
// only, never data, so the determinism contract of the samplers is
// unaffected.
type RemoteSim struct {
	inner   Backend
	latency time.Duration
	jitter  time.Duration
	fanout  int
	seq     atomic.Uint64 // jitter stream position
	rtts    atomic.Int64  // round trips slept (batch = one per element, overlapped)
	slept   atomic.Int64  // total simulated latency charged, in nanoseconds
}

// DefaultFanout is the simulated connection-pool width used when
// NewRemoteSim is given fanout <= 0.
const DefaultFanout = 16

// NewRemoteSim wraps inner with simulated per-round-trip latency. jitter
// must be <= latency (it is clamped); fanout <= 0 selects DefaultFanout.
func NewRemoteSim(inner Backend, latency, jitter time.Duration, fanout int) *RemoteSim {
	if jitter > latency {
		jitter = latency
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	return &RemoteSim{inner: inner, latency: latency, jitter: jitter, fanout: fanout}
}

// RoundTrips returns the number of simulated remote calls so far (each
// batch element counts as one call; batch calls overlap in wall-clock).
func (r *RemoteSim) RoundTrips() int64 { return r.rtts.Load() }

// SimulatedWait returns the total simulated latency charged so far, summed
// over every round trip (batch calls overlap in wall-clock, but each still
// charges its own latency here — this is the serial access cost the paper's
// query counts translate to). Because each round trip's jitter is a pure
// function of its position in the atomic jitter stream, the total is a
// deterministic function of the round-trip count alone, independent of
// goroutine scheduling.
func (r *RemoteSim) SimulatedWait() time.Duration {
	return time.Duration(r.slept.Load())
}

func (r *RemoteSim) sleep() {
	r.rtts.Add(1)
	d := r.latency
	if r.jitter > 0 {
		z := r.seq.Add(1) * 0x9E3779B97F4A7C15
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		// Uniform in [-jitter, +jitter].
		d += time.Duration(int64(z%uint64(2*r.jitter+1)) - int64(r.jitter))
	}
	if d > 0 {
		r.slept.Add(int64(d))
		time.Sleep(d)
	}
}

// NumNodes implements Backend (metadata is assumed locally known; no
// round trip).
func (r *RemoteSim) NumNodes() int { return r.inner.NumNodes() }

// NumEdges implements Backend.
func (r *RemoteSim) NumEdges() int { return r.inner.NumEdges() }

// Degree implements Backend; like a profile fetch it costs one round trip.
func (r *RemoteSim) Degree(v int) int {
	r.sleep()
	return r.inner.Degree(v)
}

// Neighbors implements Backend: one round trip per call.
func (r *RemoteSim) Neighbors(v int) []int32 {
	r.sleep()
	return r.inner.Neighbors(v)
}

// NeighborsBatch implements Backend: the batch is answered over fanout
// concurrent simulated connections, so its wall-clock cost is
// ~ceil(len(vs)/fanout) round trips. Results land in out by index, so the
// response is deterministic regardless of connection scheduling.
func (r *RemoteSim) NeighborsBatch(vs []int32, out [][]int32) {
	if len(vs) <= 1 || r.fanout == 1 {
		for i, v := range vs {
			out[i] = r.Neighbors(int(v))
		}
		return
	}
	workers := r.fanout
	if workers > len(vs) {
		workers = len(vs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(vs) {
					return
				}
				r.sleep()
				out[i] = r.inner.Neighbors(int(vs[i]))
			}
		}()
	}
	wg.Wait()
}

// Attr implements Backend: one round trip, like a profile-page fetch.
func (r *RemoteSim) Attr(name string, v int) (float64, bool) {
	r.sleep()
	return r.inner.Attr(name, v)
}

// AttrNames implements Backend.
func (r *RemoteSim) AttrNames() []string { return r.inner.AttrNames() }

// Inner returns the wrapped backend (for evaluation-layer access to the
// ground truth; samplers must not use it).
func (r *RemoteSim) Inner() Backend { return r.inner }

// ConcurrentBatch reports that batch requests overlap their round trips
// (Fanout simulated connections), so a k-node batch costs ~ceil(k/Fanout)
// round trips of wall-clock instead of k. Callers use this capability to
// decide whether batching accesses buys wall-clock — for a local backend a
// batch is just a loop, and batch-shaped execution is pure overhead.
func (r *RemoteSim) ConcurrentBatch() bool { return true }

// GraphView implements GraphViewer when the wrapped backend does.
func (r *RemoteSim) GraphView() *graph.Graph {
	if gv, ok := r.inner.(GraphViewer); ok {
		return gv.GraphView()
	}
	return nil
}
