package osn

import (
	"fmt"
	"math/rand"

	"repro/internal/fastrand"
)

// Restriction models the neighbor-list access restrictions of §6.3.1:
//
//	type (1) — each invocation returns k neighbors chosen fresh at random;
//	type (2) — each invocation returns the same fixed random k neighbors;
//	type (3) — each invocation returns at most the first l neighbors
//	           (Twitter's 5000-follower page is the motivating case).
//
// Apply must not modify full; it may return full itself when no trimming is
// needed. Deterministic reports whether repeated calls for the same node
// yield identical results (and may therefore be cached by the Client).
type Restriction interface {
	Apply(full []int32, node int, rng fastrand.RNG) []int32
	Deterministic() bool
}

// RandomK is restriction type (1): a fresh uniformly random subset of k
// neighbors per invocation.
type RandomK struct{ K int }

// Apply implements Restriction.
func (r RandomK) Apply(full []int32, _ int, rng fastrand.RNG) []int32 {
	if len(full) <= r.K {
		return full
	}
	out := make([]int32, r.K)
	// Floyd's algorithm for a uniform k-subset.
	seen := make(map[int32]bool, r.K)
	idx := 0
	for j := len(full) - r.K; j < len(full); j++ {
		t := int32(rng.Intn(j + 1))
		if seen[t] {
			t = int32(j)
		}
		seen[t] = true
		out[idx] = full[t]
		idx++
	}
	return out
}

// Deterministic implements Restriction.
func (r RandomK) Deterministic() bool { return false }

// FixedK is restriction type (2): the platform pins a random k-subset per
// node (stable across invocations). The subset is derived from Seed and the
// node id, so all clients of the same network see the same view.
type FixedK struct {
	K    int
	Seed int64
}

// Apply implements Restriction.
func (r FixedK) Apply(full []int32, node int, _ fastrand.RNG) []int32 {
	if len(full) <= r.K {
		return full
	}
	mix := int64(uint64(node+1) * 0x9E3779B97F4A7C15)
	local := rand.New(rand.NewSource(r.Seed ^ mix))
	perm := local.Perm(len(full))
	out := make([]int32, r.K)
	for i := 0; i < r.K; i++ {
		out[i] = full[perm[i]]
	}
	return out
}

// Deterministic implements Restriction.
func (r FixedK) Deterministic() bool { return true }

// TruncateL is restriction type (3): at most the first l entries of the
// neighbor list are visible.
type TruncateL struct{ L int }

// Apply implements Restriction.
func (r TruncateL) Apply(full []int32, _ int, _ fastrand.RNG) []int32 {
	if len(full) <= r.L {
		return full
	}
	return full[:r.L]
}

// Deterministic implements Restriction.
func (r TruncateL) Deterministic() bool { return true }

// EstimateDegreeMarkRecapture estimates the true degree of node v under a
// type-1 (RandomK) restriction using the Petersen mark-recapture estimator
// the paper points to (§6.3.1, [20,34]): two independent invocations return
// samples S1, S2 of size k; with overlap o, the degree estimate is
// |S1|·|S2|/o. rounds > 1 averages over repeated pairs for stability.
// It returns an error if every pair had an empty overlap (degree >> k).
func EstimateDegreeMarkRecapture(c *Client, v, rounds int) (float64, error) {
	if rounds < 1 {
		rounds = 1
	}
	est := 0.0
	valid := 0
	for i := 0; i < rounds; i++ {
		s1 := append([]int32(nil), c.Neighbors(v)...)
		s2 := c.Neighbors(v)
		mark := make(map[int32]bool, len(s1))
		for _, x := range s1 {
			mark[x] = true
		}
		overlap := 0
		for _, x := range s2 {
			if mark[x] {
				overlap++
			}
		}
		if overlap == 0 {
			continue
		}
		est += float64(len(s1)) * float64(len(s2)) / float64(overlap)
		valid++
	}
	if valid == 0 {
		return 0, fmt.Errorf("osn: mark-recapture saw no overlap for node %d after %d rounds", v, rounds)
	}
	return est / float64(valid), nil
}
