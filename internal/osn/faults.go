package osn

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fastrand"
	"repro/internal/graph"
)

// This file is the failure half of the access model: a deterministic fault
// injector (FaultSim) that makes a backend fail the way a real OSN platform
// does — transient 5xx, timeouts, rate-limit rejections with a retry-after
// hint, full outages — plus the fallible access interface (FallibleBackend)
// the resilience middleware and the metered Client speak underneath the
// infallible Backend surface. Kernels and walk.View never see any of this:
// faults are either absorbed below the Client by a ResilientBackend, or
// surface as a typed error that cancels the job context.

// FaultKind classifies an injected (or observed) backend fault.
type FaultKind uint8

// The fault taxonomy, modeled on real platform APIs.
const (
	// FaultTransient is a retryable server-side error (a 5xx): the request
	// failed but an immediate retry may succeed.
	FaultTransient FaultKind = iota
	// FaultTimeout is a request that timed out in flight; the caller paid
	// the wait and got nothing.
	FaultTimeout
	// FaultRateLimit is a quota rejection (a 429) carrying a retry-after
	// hint the caller is expected to honor.
	FaultRateLimit
	// FaultOutage is a request rejected during a full-outage window; retries
	// within the window cannot succeed.
	FaultOutage
	numFaultKinds
)

// String returns the metric-label spelling of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultTimeout:
		return "timeout"
	case FaultRateLimit:
		return "rate_limit"
	case FaultOutage:
		return "outage"
	}
	return "unknown"
}

// FaultError is one injected backend failure.
type FaultError struct {
	Kind FaultKind
	Node int32 // the node the failed request was for (-1 when not node-scoped)
	// RetryAfter is the platform's back-off hint (rate-limit faults).
	RetryAfter time.Duration
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("osn: %s fault on node %d (retry after %v)", e.Kind, e.Node, e.RetryAfter)
	}
	return fmt.Sprintf("osn: %s fault on node %d", e.Kind, e.Node)
}

// BackendUnavailableError is the typed give-up error of the resilience
// layer: the retry policy was exhausted (or the circuit breaker refused the
// call) and the access could not be completed. It cancels the owning job
// context when one is attached (WithFailureCancel), which is how a fault
// below the infallible Client surface still fails the job above it.
type BackendUnavailableError struct {
	// Reason is the machine-readable cause: "retries_exhausted",
	// "retry_budget_exhausted", or "breaker_open".
	Reason string
	// Attempts is how many times the call was tried before giving up.
	Attempts int
	// Last is the final underlying fault.
	Last error
}

// Error implements error.
func (e *BackendUnavailableError) Error() string {
	if e.Last != nil {
		return fmt.Sprintf("osn: backend unavailable (%s after %d attempts): %v", e.Reason, e.Attempts, e.Last)
	}
	return fmt.Sprintf("osn: backend unavailable (%s after %d attempts)", e.Reason, e.Attempts)
}

// Unwrap exposes the underlying fault to errors.Is/As.
func (e *BackendUnavailableError) Unwrap() error { return e.Last }

// FallibleBackend is the error-aware access surface underneath the
// infallible Backend interface. Backends that can actually fail (FaultSim,
// ResilientBackend, a future live HTTP backend) implement it alongside
// Backend; the Client type-asserts for it at construction and, when present,
// routes every cold fetch through it so a failure is never cached, never
// charged, and is reported instead of silently degraded. The context carries
// the per-job deadline (waits in the resilience layer select on it) and
// optionally a failure-cancel hook (WithFailureCancel).
//
// NeighborsBatchCtx fills out[i] and failed[i] for every element of vs
// (len(out) == len(failed) == len(vs)): failed[i] reports that vs[i] could
// not be resolved, and the returned error is the representative failure
// (nil when every element succeeded). Successful elements of a partially
// failed batch are still valid.
type FallibleBackend interface {
	NeighborsCtx(ctx context.Context, v int) ([]int32, error)
	NeighborsBatchCtx(ctx context.Context, vs []int32, out [][]int32, failed []bool) error
	DegreeCtx(ctx context.Context, v int) (int, error)
	AttrCtx(ctx context.Context, name string, v int) (float64, bool, error)
}

// failureCancelKey carries a context.CancelCauseFunc through a job context.
type failureCancelKey struct{}

// WithFailureCancel attaches a cancel-cause hook to ctx. When a
// ResilientBackend below the Client gives up on an access issued under this
// context, it cancels the hook with the typed BackendUnavailableError —
// which the core samplers' context checks then carry out of the run, so a
// failure below the infallible kernel surface still fails the job promptly
// and with its cause intact.
func WithFailureCancel(ctx context.Context, cancel context.CancelCauseFunc) context.Context {
	return context.WithValue(ctx, failureCancelKey{}, cancel)
}

// failureCancel extracts the hook installed by WithFailureCancel, or nil.
func failureCancel(ctx context.Context) context.CancelCauseFunc {
	c, _ := ctx.Value(failureCancelKey{}).(context.CancelCauseFunc)
	return c
}

// SeqWindow is a half-open interval [From, Until) over the fault sequence
// counter: attempts whose sequence number falls inside it are rejected as
// outage faults. Sequence-space windows make outage chaos tests exactly
// reproducible, independent of wall-clock.
type SeqWindow struct {
	From  uint64 `json:"from"`
	Until uint64 `json:"until"`
}

// FaultConfig parameterizes a FaultSim. Rates are per-round-trip
// probabilities in [0, 1]; their sum must be <= 1. All zero rates and no
// windows means the sim is a transparent pass-through.
type FaultConfig struct {
	// Seed drives the fault schedule. The schedule is a pure function of
	// (Seed, attempt sequence number) through internal/fastrand, so a fixed
	// seed and call sequence reproduce the identical fault sequence.
	Seed int64
	// TransientRate, TimeoutRate, RateLimitRate are the per-attempt
	// probabilities of each retryable fault kind.
	TransientRate float64
	TimeoutRate   float64
	RateLimitRate float64
	// RetryAfter is the hint attached to rate-limit faults (default 1ms).
	RetryAfter time.Duration
	// TimeoutWait is the wall-clock a timed-out request burns before
	// failing (default 0: timeouts are instant, only their error differs).
	TimeoutWait time.Duration
	// Outages are deterministic full-outage windows over the attempt
	// sequence counter.
	Outages []SeqWindow
	// OutageStart/OutageDur, when OutageDur > 0, define one wall-clock
	// outage window [OutageStart, OutageStart+OutageDur) measured from
	// FaultSim construction — the CLI-friendly form.
	OutageStart time.Duration
	OutageDur   time.Duration
}

func (c FaultConfig) validate() error {
	for _, r := range []float64{c.TransientRate, c.TimeoutRate, c.RateLimitRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("osn: fault rate %v out of [0,1]", r)
		}
	}
	if sum := c.TransientRate + c.TimeoutRate + c.RateLimitRate; sum > 1 {
		return fmt.Errorf("osn: fault rates sum to %v > 1", sum)
	}
	return nil
}

// FaultStats is an atomic snapshot of a FaultSim's meters.
type FaultStats struct {
	// Attempts is the number of round trips the schedule was consulted for.
	Attempts int64
	// Injected counts injected faults by kind, indexed by FaultKind.
	Injected [numFaultKinds]int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	t := int64(0)
	for _, v := range s.Injected {
		t += v
	}
	return t
}

// FaultSim wraps a Backend with a deterministic, seeded fault schedule: each
// round trip consults a pure function of (seed, attempt sequence number) and
// either passes through to the inner backend or fails with a FaultError.
// It implements both the infallible Backend interface (a fault degrades to
// an empty answer — safe for every kernel, but only reached when no
// resilience layer sits above) and FallibleBackend (faults surface as typed
// errors for the resilience middleware to absorb or report).
//
// Determinism: the schedule depends only on the seed and the attempt
// counter, so a single-threaded call sequence — including the batched path,
// whose per-element decisions are made sequentially on the caller goroutine
// before the surviving subset is delegated to the inner backend's fanout —
// reproduces bit-identically under a fixed seed. Concurrent callers
// interleave their counter draws nondeterministically (like any shared
// platform), but data is never perturbed: a request either fails cleanly or
// returns ground truth.
type FaultSim struct {
	inner Backend
	cfg   FaultConfig
	t0    time.Time     // construction time, anchor of the timed outage window
	seq   atomic.Uint64 // attempt sequence counter, the schedule's x-axis
	// manual is the test-controlled outage toggle (StartOutage/EndOutage).
	manual   atomic.Bool
	injected [numFaultKinds]atomic.Int64
}

// NewFaultSim wraps inner with the given fault schedule. Invalid rates
// (outside [0,1] or summing past 1) return an error.
func NewFaultSim(inner Backend, cfg FaultConfig) (*FaultSim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Millisecond
	}
	return &FaultSim{inner: inner, cfg: cfg, t0: time.Now()}, nil
}

// Inner returns the wrapped backend (evaluation-layer unwrapping).
func (f *FaultSim) Inner() Backend { return f.inner }

// Config returns the fault schedule parameters.
func (f *FaultSim) Config() FaultConfig { return f.cfg }

// Stats returns an atomic snapshot of the injection meters.
func (f *FaultSim) Stats() FaultStats {
	st := FaultStats{Attempts: int64(f.seq.Load())}
	for i := range f.injected {
		st.Injected[i] = f.injected[i].Load()
	}
	return st
}

// StartOutage begins a manual full outage: every attempt fails with
// FaultOutage until EndOutage. Test and operational control surface; the
// deterministic schedule is untouched (the counter keeps advancing).
func (f *FaultSim) StartOutage() { f.manual.Store(true) }

// EndOutage ends a manual outage.
func (f *FaultSim) EndOutage() { f.manual.Store(false) }

// InOutage reports whether a manual or configured outage window is active
// at the current sequence position / wall-clock.
func (f *FaultSim) InOutage() bool {
	return f.outageAt(f.seq.Load())
}

func (f *FaultSim) outageAt(s uint64) bool {
	if f.manual.Load() {
		return true
	}
	for _, w := range f.cfg.Outages {
		if s >= w.From && s < w.Until {
			return true
		}
	}
	if f.cfg.OutageDur > 0 {
		el := time.Since(f.t0)
		if el >= f.cfg.OutageStart && el < f.cfg.OutageStart+f.cfg.OutageDur {
			return true
		}
	}
	return false
}

// decide consumes one position of the fault schedule and returns the fault
// injected there, or nil for a clean pass-through.
func (f *FaultSim) decide(v int32) *FaultError {
	s := f.seq.Add(1) - 1
	if f.outageAt(s) {
		f.injected[FaultOutage].Add(1)
		return &FaultError{Kind: FaultOutage, Node: v}
	}
	tr, to, rl := f.cfg.TransientRate, f.cfg.TimeoutRate, f.cfg.RateLimitRate
	if tr+to+rl == 0 {
		return nil
	}
	// One uniform draw per attempt, a pure function of (seed, position):
	// bit-reproducible under a fixed seed regardless of which node or batch
	// the attempt belongs to.
	u := float64(uint64(fastrand.Mix(f.cfg.Seed, int64(s), 0x7fa))>>11) * (1.0 / (1 << 53))
	switch {
	case u < tr:
		f.injected[FaultTransient].Add(1)
		return &FaultError{Kind: FaultTransient, Node: v}
	case u < tr+to:
		f.injected[FaultTimeout].Add(1)
		if f.cfg.TimeoutWait > 0 {
			time.Sleep(f.cfg.TimeoutWait)
		}
		return &FaultError{Kind: FaultTimeout, Node: v}
	case u < tr+to+rl:
		f.injected[FaultRateLimit].Add(1)
		return &FaultError{Kind: FaultRateLimit, Node: v, RetryAfter: f.cfg.RetryAfter}
	}
	return nil
}

// NeighborsCtx implements FallibleBackend.
func (f *FaultSim) NeighborsCtx(_ context.Context, v int) ([]int32, error) {
	if fe := f.decide(int32(v)); fe != nil {
		return nil, fe
	}
	return f.inner.Neighbors(v), nil
}

// DegreeCtx implements FallibleBackend.
func (f *FaultSim) DegreeCtx(_ context.Context, v int) (int, error) {
	if fe := f.decide(int32(v)); fe != nil {
		return 0, fe
	}
	return f.inner.Degree(v), nil
}

// AttrCtx implements FallibleBackend.
func (f *FaultSim) AttrCtx(_ context.Context, name string, v int) (float64, bool, error) {
	if fe := f.decide(int32(v)); fe != nil {
		return 0, false, fe
	}
	val, ok := f.inner.Attr(name, v)
	return val, ok, nil
}

// NeighborsBatchCtx implements FallibleBackend: per-element fault decisions
// are made sequentially on the caller goroutine (keeping the schedule
// reproducible even when the inner backend answers over concurrent fanout
// connections), then the surviving subset is delegated to the inner
// backend's batched path in one call. The fault-free case passes vs/out
// through untouched and allocates nothing.
func (f *FaultSim) NeighborsBatchCtx(_ context.Context, vs []int32, out [][]int32, failed []bool) error {
	var firstErr error
	nfail := 0
	for i, v := range vs {
		if fe := f.decide(v); fe != nil {
			failed[i] = true
			out[i] = nil
			nfail++
			if firstErr == nil {
				firstErr = fe
			}
		} else {
			failed[i] = false
		}
	}
	if nfail == 0 {
		f.inner.NeighborsBatch(vs, out)
		return nil
	}
	if nfail < len(vs) {
		subVs := make([]int32, 0, len(vs)-nfail)
		for i, v := range vs {
			if !failed[i] {
				subVs = append(subVs, v)
			}
		}
		subOut := make([][]int32, len(subVs))
		f.inner.NeighborsBatch(subVs, subOut)
		k := 0
		for i := range vs {
			if !failed[i] {
				out[i] = subOut[k]
				k++
			}
		}
	}
	return firstErr
}

// NumNodes implements Backend (metadata is locally known; never faulted).
func (f *FaultSim) NumNodes() int { return f.inner.NumNodes() }

// NumEdges implements Backend.
func (f *FaultSim) NumEdges() int { return f.inner.NumEdges() }

// Degree implements Backend; a fault degrades to 0.
func (f *FaultSim) Degree(v int) int {
	d, err := f.DegreeCtx(context.Background(), v)
	if err != nil {
		return 0
	}
	return d
}

// Neighbors implements Backend; a fault degrades to an empty list (safe for
// every kernel: designs treat it as a stranded node).
func (f *FaultSim) Neighbors(v int) []int32 {
	nbr, err := f.NeighborsCtx(context.Background(), v)
	if err != nil {
		return nil
	}
	return nbr
}

// NeighborsBatch implements Backend; faulted elements degrade to nil.
func (f *FaultSim) NeighborsBatch(vs []int32, out [][]int32) {
	failed := make([]bool, len(vs))
	f.NeighborsBatchCtx(context.Background(), vs, out, failed)
}

// Attr implements Backend; a fault degrades to absent.
func (f *FaultSim) Attr(name string, v int) (float64, bool) {
	val, ok, err := f.AttrCtx(context.Background(), name, v)
	if err != nil {
		return 0, false
	}
	return val, ok
}

// AttrNames implements Backend.
func (f *FaultSim) AttrNames() []string { return f.inner.AttrNames() }

// GraphView implements GraphViewer when the wrapped backend does.
func (f *FaultSim) GraphView() *graph.Graph {
	if gv, ok := f.inner.(GraphViewer); ok {
		return gv.GraphView()
	}
	return nil
}
