package osn

// Tests for the paged client L1: footprint bounded by visited mass on a
// multi-million-node backend, and paged bookkeeping (presence, queried,
// KnownNodes) agreeing with the metered semantics across page boundaries.

import (
	"math/rand"
	"runtime"
	"testing"
)

// stubBackend is a minimal Backend over a huge synthetic id space: every
// node has the same tiny neighbor list, so client-side memory is the only
// thing a test over it can measure.
type stubBackend struct {
	n    int
	list []int32
}

func (s stubBackend) NumNodes() int           { return s.n }
func (s stubBackend) NumEdges() int           { return s.n }
func (s stubBackend) Degree(v int) int        { return len(s.list) }
func (s stubBackend) Neighbors(v int) []int32 { return s.list }
func (s stubBackend) NeighborsBatch(vs []int32, out [][]int32) {
	for i := range vs {
		out[i] = s.list
	}
}
func (s stubBackend) Attr(name string, v int) (float64, bool) { return 0, false }
func (s stubBackend) AttrNames() []string                     { return nil }

// TestClientSparseFootprint is the paged-L1 memory regression: a client
// over a 5M-node backend that touches a few hundred scattered nodes must
// cost kilobytes of directory plus the touched pages — not the O(24n)
// bytes per client of the dense header layout (~120 MB here).
func TestClientSparseFootprint(t *testing.T) {
	net := NewNetworkOn(stubBackend{n: 5_000_000, list: []int32{1, 2, 3}})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(1)))
	for v := 0; v < 5_000_000; v += 25_000 { // 200 scattered nodes
		c.Neighbors(v)
	}
	runtime.ReadMemStats(&after)
	grew := after.TotalAlloc - before.TotalAlloc
	// Directory: 5M/256 pointers ≈ 156 KB. 200 pages ≈ 1.25 MB. Dense
	// headers would be ~120 MB; budget 4 MB keeps 30× slack below that
	// while catching any return to O(n) headers.
	const budget = 4 << 20
	if grew > budget {
		t.Fatalf("sparse client footprint %d B, want <= %d B (visited-mass bound)", grew, budget)
	}
	if got := c.Queries(); got != 200 {
		t.Fatalf("queries = %d, want 200", got)
	}
	t.Logf("sparse 5M-node client: %d B total", grew)
}

// TestAccountingOnlyFootprint pins the accounting-page split: charges that
// never cache a neighbor list (the Attr path on a private client) must
// allocate only the two-cache-line acctPages, never 6 KiB l1Pages of
// neighbor headers.
func TestAccountingOnlyFootprint(t *testing.T) {
	net := NewNetworkOn(stubBackend{n: 5_000_000, list: []int32{1}},
		WithAttribute("score", make([]float64, 5_000_000)))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(1)))
	for v := 0; v < 5_000_000; v += 25_000 { // 200 scattered accounting-only touches
		if _, err := c.Attr("score", v); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	grew := after.TotalAlloc - before.TotalAlloc
	// Two directories ≈ 312 KB, 200 acctPages ≈ 13 KB. l1Pages here would
	// add ~1.25 MB; the budget catches any return to header-sized pages on
	// the accounting path.
	const budget = 600 << 10
	if grew > budget {
		t.Fatalf("accounting-only footprint %d B, want <= %d B (acctPage split)", grew, budget)
	}
	if got := c.Queries(); got != 200 {
		t.Fatalf("queries = %d, want 200", got)
	}
	t.Logf("accounting-only 5M-node client: %d B total", grew)
}

// TestPagedL1Bookkeeping exercises presence and queried bits across page
// boundaries for private and shared clients: repeat lookups stay free
// under CostUniqueNodes, KnownNodes reports exactly the touched ids, and
// Fork promotes every cached page into the shared cache.
func TestPagedL1Bookkeeping(t *testing.T) {
	net := NewNetworkOn(stubBackend{n: 4 * l1Size, list: []int32{0}})
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(2)))
	touched := []int{0, 1, l1Size - 1, l1Size, l1Size + 1, 3*l1Size - 1, 4*l1Size - 1}
	for _, v := range touched {
		c.Neighbors(v)
		c.Neighbors(v) // warm repeat must not re-charge
	}
	if got, want := c.Queries(), int64(len(touched)); got != want {
		t.Fatalf("queries = %d, want %d", got, want)
	}
	known := c.KnownNodes()
	if len(known) != len(touched) {
		t.Fatalf("KnownNodes = %v, want %v", known, touched)
	}
	for i, v := range touched {
		if known[i] != v {
			t.Fatalf("KnownNodes[%d] = %d, want %d", i, known[i], v)
		}
	}

	// Fork: promoted shared cache must already hold everything paid for.
	sib := c.Fork(rand.New(rand.NewSource(3)))
	for _, v := range touched {
		sib.Neighbors(v)
	}
	if got := sib.Queries(); got != 0 {
		t.Fatalf("sibling re-charged %d promoted nodes", got)
	}
	if got, want := c.TotalQueries(), int64(len(touched)); got != want {
		t.Fatalf("fleet queries = %d, want %d", got, want)
	}
	sharedKnown := c.KnownNodes()
	if len(sharedKnown) != len(touched) {
		t.Fatalf("shared KnownNodes = %v, want %v", sharedKnown, touched)
	}
}

// TestPagedL1BatchMatchesPerNode checks the batched path over page
// boundaries: NeighborsBatch on a mix of warm, shared-warm, and cold ids
// returns exactly what per-node calls do and charges identically.
func TestPagedL1BatchMatchesPerNode(t *testing.T) {
	net := NewNetworkOn(stubBackend{n: 4 * l1Size, list: []int32{5, 6}})
	a := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(4)))
	b := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(4)))

	ids := []int32{0, int32(l1Size - 1), int32(l1Size), 7, 7, int32(2 * l1Size), 0}
	out := make([][]int32, len(ids))
	a.NeighborsBatch(ids, out)
	for i, v := range ids {
		want := b.Neighbors(int(v))
		if len(out[i]) != len(want) {
			t.Fatalf("batch[%d] (node %d) = %v, per-node %v", i, v, out[i], want)
		}
	}
	if a.Queries() != b.Queries() {
		t.Fatalf("batch charged %d, per-node %d", a.Queries(), b.Queries())
	}
}

// BenchmarkClientSparseL1Footprint records bytes/op for constructing a
// client over a 5M-node backend and touching 200 scattered nodes — the
// paged-L1 footprint figure BENCH_kernels.json tracks for the
// visited-mass memory contract (dense headers would be ~120 MB/op).
func BenchmarkClientSparseL1Footprint(b *testing.B) {
	net := NewNetworkOn(stubBackend{n: 5_000_000, list: []int32{1, 2, 3}})
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewClient(net, CostUniqueNodes, rng)
		for v := 0; v < 5_000_000; v += 25_000 {
			c.Neighbors(v)
		}
	}
}
