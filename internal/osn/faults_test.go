package osn

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
)

// faultNet returns a BA graph network over a plain mem backend.
func faultGraphBackend(t *testing.T) MemBackend {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	return NewMemBackend(g)
}

// TestFaultSimZeroRatePassThrough: with all rates zero and no windows the
// injector is transparent — every access returns ground truth, no faults
// are counted, and the infallible surface matches the inner backend exactly.
func TestFaultSimZeroRatePassThrough(t *testing.T) {
	inner := faultGraphBackend(t)
	fs, err := NewFaultSim(inner, FaultConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for v := 0; v < inner.NumNodes(); v++ {
		got, err := fs.NeighborsCtx(ctx, v)
		if err != nil {
			t.Fatalf("node %d: unexpected fault: %v", v, err)
		}
		want := inner.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d neighbor %d: %d != %d", v, i, got[i], want[i])
			}
		}
	}
	if n := fs.Stats().Total(); n != 0 {
		t.Fatalf("zero-rate sim injected %d faults", n)
	}
}

// TestFaultScheduleDeterministic: the fault schedule is a pure function of
// (seed, attempt sequence) — two sims with the same seed produce the
// bit-identical fault/pass sequence for the same call sequence, and a
// different seed produces a different one.
func TestFaultScheduleDeterministic(t *testing.T) {
	inner := faultGraphBackend(t)
	mk := func(seed int64) *FaultSim {
		fs, err := NewFaultSim(inner, FaultConfig{
			Seed:          seed,
			TransientRate: 0.2,
			TimeoutRate:   0.1,
			RateLimitRate: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	trace := func(fs *FaultSim) []int {
		ctx := context.Background()
		out := make([]int, 0, 600)
		for i := 0; i < 600; i++ {
			_, err := fs.NeighborsCtx(ctx, i%inner.NumNodes())
			var fe *FaultError
			switch {
			case err == nil:
				out = append(out, -1)
			case errors.As(err, &fe):
				out = append(out, int(fe.Kind))
			default:
				t.Fatalf("attempt %d: unexpected error type %T", i, err)
			}
		}
		return out
	}
	a, b, c := trace(mk(123)), trace(mk(123)), trace(mk(124))
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %d != %d", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 600-attempt schedule")
	}
	st := mk(123).Stats()
	if st.Attempts != 0 {
		t.Fatalf("fresh sim has %d attempts", st.Attempts)
	}
}

// TestFaultScheduleBatchMatchesSingle: the batched path consumes the same
// schedule positions as the equivalent single-call sequence — per-element
// decisions are made sequentially on the caller goroutine, so batching
// (including the inner backend's concurrent fanout) cannot perturb the
// schedule.
func TestFaultScheduleBatchMatchesSingle(t *testing.T) {
	inner := faultGraphBackend(t)
	cfg := FaultConfig{Seed: 9, TransientRate: 0.3}
	mk := func() *FaultSim {
		fs, err := NewFaultSim(inner, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	ctx := context.Background()
	vs := []int32{0, 5, 10, 15, 20, 25, 30, 35}

	single := mk()
	wantFail := make([]bool, len(vs))
	for i, v := range vs {
		_, err := single.NeighborsCtx(ctx, int(v))
		wantFail[i] = err != nil
	}

	batched := mk()
	out := make([][]int32, len(vs))
	failed := make([]bool, len(vs))
	err := batched.NeighborsBatchCtx(ctx, vs, out, failed)
	anyFail := false
	for i := range vs {
		if failed[i] != wantFail[i] {
			t.Fatalf("element %d: batched failed=%v, single-call failed=%v", i, failed[i], wantFail[i])
		}
		anyFail = anyFail || failed[i]
		if failed[i] && out[i] != nil {
			t.Fatalf("element %d failed but has a list", i)
		}
		if !failed[i] {
			want := inner.Neighbors(int(vs[i]))
			if len(out[i]) != len(want) {
				t.Fatalf("element %d: %d neighbors, want %d", i, len(out[i]), len(want))
			}
		}
	}
	if anyFail && err == nil {
		t.Fatal("batch had failed elements but returned nil error")
	}
	if !anyFail && err != nil {
		t.Fatalf("batch had no failed elements but returned %v", err)
	}
	if !anyFail {
		t.Fatal("want at least one fault in this fixed-seed batch (schedule drifted?)")
	}
}

// TestFaultSimOutageWindows: sequence-space outage windows reject exactly
// the attempts inside [From, Until), and the manual toggle overrides
// everything until EndOutage.
func TestFaultSimOutageWindows(t *testing.T) {
	inner := faultGraphBackend(t)
	fs, err := NewFaultSim(inner, FaultConfig{
		Seed:    1,
		Outages: []SeqWindow{{From: 3, Until: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		_, err := fs.NeighborsCtx(ctx, 0)
		inWindow := i >= 3 && i < 6
		if inWindow && err == nil {
			t.Fatalf("attempt %d inside the outage window succeeded", i)
		}
		if !inWindow && err != nil {
			t.Fatalf("attempt %d outside the outage window failed: %v", i, err)
		}
		var fe *FaultError
		if err != nil && (!errors.As(err, &fe) || fe.Kind != FaultOutage) {
			t.Fatalf("attempt %d: want an outage fault, got %v", i, err)
		}
	}

	fs.StartOutage()
	if !fs.InOutage() {
		t.Fatal("InOutage false after StartOutage")
	}
	if _, err := fs.NeighborsCtx(ctx, 0); err == nil {
		t.Fatal("manual outage did not reject")
	}
	fs.EndOutage()
	if _, err := fs.NeighborsCtx(ctx, 0); err != nil {
		t.Fatalf("after EndOutage: %v", err)
	}
	if got := fs.Stats().Injected[FaultOutage]; got != 4 {
		t.Fatalf("outage faults = %d, want 4 (3 windowed + 1 manual)", got)
	}
}

// TestFaultConfigValidation rejects out-of-range rates.
func TestFaultConfigValidation(t *testing.T) {
	inner := faultGraphBackend(t)
	for _, cfg := range []FaultConfig{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{TransientRate: 0.5, TimeoutRate: 0.4, RateLimitRate: 0.2}, // sum > 1
	} {
		if _, err := NewFaultSim(inner, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestFaultSimInfallibleDegrade: through the infallible Backend surface a
// fault degrades to an empty answer instead of panicking — the safety net
// when no resilience layer is stacked above.
func TestFaultSimInfallibleDegrade(t *testing.T) {
	inner := faultGraphBackend(t)
	fs, err := NewFaultSim(inner, FaultConfig{Seed: 3, Outages: []SeqWindow{{From: 0, Until: 1 << 62}}})
	if err != nil {
		t.Fatal(err)
	}
	if nbr := fs.Neighbors(0); nbr != nil {
		t.Fatalf("faulted Neighbors returned %v", nbr)
	}
	if d := fs.Degree(0); d != 0 {
		t.Fatalf("faulted Degree returned %d", d)
	}
	if _, ok := fs.Attr("stars", 0); ok {
		t.Fatal("faulted Attr returned present")
	}
	if fs.NumNodes() != inner.NumNodes() {
		t.Fatal("metadata must never fault")
	}
}

// TestFaultRateLimitRetryAfter: rate-limit faults carry the configured
// retry-after hint.
func TestFaultRateLimitRetryAfter(t *testing.T) {
	inner := faultGraphBackend(t)
	fs, err := NewFaultSim(inner, FaultConfig{
		Seed:          5,
		RateLimitRate: 1,
		RetryAfter:    3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := fs.NeighborsCtx(context.Background(), 0)
	var fe *FaultError
	if !errors.As(cerr, &fe) || fe.Kind != FaultRateLimit || fe.RetryAfter != 3*time.Millisecond {
		t.Fatalf("want a rate-limit fault with retry-after 3ms, got %v", cerr)
	}
}
