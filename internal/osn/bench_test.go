package osn

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// benchNet returns a mid-size preferential-attachment network, the scale at
// which hub-node neighbor lookups dominate sampling cost.
func benchNet(tb testing.TB) *Network {
	tb.Helper()
	g := gen.BarabasiAlbert(20000, 5, rand.New(rand.NewSource(2)))
	return NewNetwork(g)
}

// BenchmarkNeighborsHot measures the warm-cache Neighbors path — the single
// hottest operation of the whole sampler (one call per walk step, forward
// and backward). It must report 0 allocs/op: the dense L1 is a bit test plus
// an array index.
func BenchmarkNeighborsHot(b *testing.B) {
	net := benchNet(b)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	const span = 1024
	for v := 0; v < span; v++ {
		c.Neighbors(v) // warm
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(c.Neighbors(i & (span - 1)))
	}
	_ = sink
}

// BenchmarkNeighborsHotShared is the same warm path for a client attached to
// a SharedCache whose L1 already memoized the entries — the state estimation
// workers run in after their first pass over a region.
func BenchmarkNeighborsHotShared(b *testing.B) {
	net := benchNet(b)
	base := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	c := base.Fork(rand.New(rand.NewSource(4)))
	const span = 1024
	for v := 0; v < span; v++ {
		c.Neighbors(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(c.Neighbors(i & (span - 1)))
	}
	_ = sink
}

// BenchmarkNeighborsSharedMiss measures an L1 miss that hits the shared
// cache (lock + bit test + index) — the cost a worker pays the first time it
// touches a node a sibling already fetched. Each op uses a fresh client so
// every lookup misses L1.
func BenchmarkNeighborsSharedMiss(b *testing.B) {
	net := benchNet(b)
	base := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	sc := base.Fork(rand.New(rand.NewSource(4))).Shared()
	warm := NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(5)), sc)
	const span = 1024
	for v := 0; v < span; v++ {
		warm.Neighbors(v)
	}
	c := NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(6)), sc)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		if i&(span-1) == 0 {
			// Clear the L1 presence bitsets (white-box: same package) so
			// every lookup misses L1 and hits the shared cache, at bounded
			// memory for any b.N.
			for _, pg := range c.l1 {
				if pg != nil {
					pg.present = [l1Words]uint64{}
				}
			}
		}
		sink += len(c.Neighbors(i & (span - 1)))
	}
	_ = sink
}

// TestNeighborsWarmAllocs is the allocation-regression guard for the warm
// read path, private and shared: zero allocations, with and without the L1
// memoization layer in front.
func TestNeighborsWarmAllocs(t *testing.T) {
	net := benchNet(t)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	c.Neighbors(7)
	if avg := testing.AllocsPerRun(1000, func() { c.Neighbors(7) }); avg != 0 {
		t.Errorf("warm private Neighbors allocates %v/op, want 0", avg)
	}

	fork := c.Fork(rand.New(rand.NewSource(4)))
	fork.Neighbors(7) // L1 fill from shared
	if avg := testing.AllocsPerRun(1000, func() { fork.Neighbors(7) }); avg != 0 {
		t.Errorf("warm shared Neighbors allocates %v/op, want 0", avg)
	}

	// L1 misses that hit the shared cache must not allocate either.
	miss := NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(5)), c.Shared())
	if avg := testing.AllocsPerRun(1000, func() { miss.Neighbors(7) }); avg > 0 {
		// The very first run fills miss's L1; AllocsPerRun's warm-up run
		// absorbs it, so steady state must be zero.
		t.Errorf("shared-hit Neighbors allocates %v/op, want 0", avg)
	}
}

// TestKnownNodesBitsets checks the bitset-backed accounting agrees between
// private and promoted clients, including sortedness.
func TestKnownNodesBitsets(t *testing.T) {
	net := benchNet(t)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	for _, v := range []int{99, 3, 70, 3, 65, 64, 63} {
		c.Neighbors(v)
	}
	want := []int{3, 63, 64, 65, 70, 99}
	got := c.KnownNodes()
	if len(got) != len(want) {
		t.Fatalf("KnownNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KnownNodes = %v, want %v", got, want)
		}
	}
	if q := c.Queries(); q != int64(len(want)) {
		t.Errorf("Queries = %d, want %d", q, len(want))
	}

	fork := c.Fork(rand.New(rand.NewSource(4)))
	fork.Neighbors(1000)
	got = c.KnownNodes() // shared view now
	if len(got) != len(want)+1 || got[len(got)-1] != 1000 {
		t.Errorf("promoted KnownNodes = %v, want %v + [1000]", got, want)
	}
	if n := c.Shared().UniqueNodes(); n != len(want)+1 {
		t.Errorf("UniqueNodes = %d, want %d", n, len(want)+1)
	}
}
