package osn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// ResilientPolicy parameterizes a ResilientBackend. Zero fields select the
// documented defaults.
type ResilientPolicy struct {
	// MaxRetries is how many times one access is retried after its first
	// failure (default 6).
	MaxRetries int
	// BaseBackoff is the first retry's backoff; it doubles per retry up to
	// MaxBackoff, plus a deterministic jitter in [0, d/2] (defaults 500µs
	// and 100ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudget is the per-backend pool of retry tokens: every retry
	// round trip (across all callers; a batched subset retry is one round
	// trip, whatever its width) spends one, and every successfully
	// resolved element refunds BudgetRefund, capped at RetryBudget.
	// Against a dead backend nothing resolves, so the pool drains and the
	// fleet stops retrying long before each caller's MaxRetries would —
	// the classic retry-budget guard against retry storms (default 512) —
	// while under any absorbable fault rate resolved elements keep the
	// pool topped up indefinitely.
	RetryBudget float64
	// BudgetRefund is the fraction of a token each successfully resolved
	// element returns to the budget (default 0.1).
	BudgetRefund float64
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 8).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// half-open probe through (default 250ms).
	BreakerCooldown time.Duration
	// RateLimit, when > 0, paces outgoing requests to this many per second
	// (a client-side token bucket with RateBurst burst capacity), on top of
	// honoring the platform's retry-after hints.
	RateLimit float64
	// RateBurst is the token-bucket burst size (default 16).
	RateBurst int
}

func (p ResilientPolicy) withDefaults() ResilientPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 6
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.RetryBudget <= 0 {
		p.RetryBudget = 512
	}
	if p.BudgetRefund <= 0 {
		p.BudgetRefund = 0.1
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 8
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 250 * time.Millisecond
	}
	if p.RateBurst <= 0 {
		p.RateBurst = 16
	}
	return p
}

// BreakerState is the circuit breaker's state.
type BreakerState int32

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the metric-label spelling of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ResilientStats is an atomic snapshot of a ResilientBackend's meters.
type ResilientStats struct {
	// Retries is the total number of retry attempts issued.
	Retries int64
	// Absorbed is the number of calls that ultimately succeeded after at
	// least one retry — faults the layer hid from everything above it.
	Absorbed int64
	// Failures is the number of calls given up on (typed errors surfaced).
	Failures int64
	// BreakerOpens is how many times the circuit breaker tripped open.
	BreakerOpens int64
	// Breaker is the breaker's current state.
	Breaker BreakerState
	// BudgetRemaining is the retry-token pool's current level.
	BudgetRemaining float64
}

// breakerOpenError is the retryable gate rejection while the breaker is
// open (or a half-open probe is already in flight): the call did not reach
// the backend; wait suggests when the next probe slot opens.
type breakerOpenError struct{ wait time.Duration }

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("osn: circuit breaker open (retry in %v)", e.wait)
}

// errRetryBudget marks a retry denied because the shared token pool ran dry.
var errRetryBudget = errors.New("osn: retry budget exhausted")

// ResilientBackend decorates a fallible backend with the resilience loop a
// production crawler runs: capped exponential backoff with deterministic
// jitter, a shared per-backend retry budget, client-side request pacing plus
// retry-after honoring, and a circuit breaker (closed / open / half-open
// with single-probe recovery). All waits are context-aware, so a per-job
// deadline cuts them short.
//
// The layer sits below osn.Client: retries are invisible above it — they
// consume no sampling RNG and cause no double charging, because the Client
// only caches and charges an access after it has succeeded, exactly once.
// When the policy is exhausted the call fails with a typed
// BackendUnavailableError; if the access context carries a
// WithFailureCancel hook, the error also cancels the owning job context, so
// the sampler's existing cancellation path fails the job promptly.
//
// Like the backends it wraps, a ResilientBackend is safe for concurrent
// callers; the breaker, budget, and throttle are deliberately shared — they
// model the one platform connection the whole process has.
type ResilientBackend struct {
	be  Backend
	fb  FallibleBackend // inner's fallible surface; nil for infallible backends
	pol ResilientPolicy

	// jseq drives the deterministic backoff jitter (a splitmix64 finalizer
	// over an atomic counter — never the sampling RNG).
	jseq atomic.Uint64
	// tokens is the retry budget in milli-tokens.
	tokens    atomic.Int64
	maxTokens int64
	// throttleUntil (unixnano) is the fleet-wide pause published by
	// rate-limit retry-after hints.
	throttleUntil atomic.Int64
	// nextFree (unixnano) is the client-side pacing bucket's next free slot.
	nextFree atomic.Int64

	retries      atomic.Int64
	absorbed     atomic.Int64
	failures     atomic.Int64
	breakerOpens atomic.Int64

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool
}

// NewResilientBackend wraps inner with the given policy. Wrapping an
// infallible backend is a transparent pass-through.
func NewResilientBackend(inner Backend, pol ResilientPolicy) *ResilientBackend {
	pol = pol.withDefaults()
	fb, _ := inner.(FallibleBackend)
	r := &ResilientBackend{be: inner, fb: fb, pol: pol,
		maxTokens: int64(pol.RetryBudget * 1000)}
	r.tokens.Store(r.maxTokens)
	return r
}

// Inner returns the wrapped backend (evaluation-layer unwrapping).
func (r *ResilientBackend) Inner() Backend { return r.be }

// Policy returns the effective (defaulted) policy.
func (r *ResilientBackend) Policy() ResilientPolicy { return r.pol }

// Stats returns an atomic snapshot of the resilience meters.
func (r *ResilientBackend) Stats() ResilientStats {
	r.mu.Lock()
	state := r.state
	r.mu.Unlock()
	return ResilientStats{
		Retries:         r.retries.Load(),
		Absorbed:        r.absorbed.Load(),
		Failures:        r.failures.Load(),
		BreakerOpens:    r.breakerOpens.Load(),
		Breaker:         state,
		BudgetRemaining: float64(r.tokens.Load()) / 1000,
	}
}

// BreakerState returns the breaker's current state (transitions out of open
// happen lazily, on the next gated call after the cooldown).
func (r *ResilientBackend) BreakerState() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// jitter returns d plus a deterministic jitter in [0, d/2], drawn from the
// layer's own atomic splitmix64 stream.
func (r *ResilientBackend) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	z := r.jseq.Add(1) * 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return d + time.Duration(z%uint64(d/2+1))
}

// sleepCtx sleeps d or until ctx is done, returning the context's cause in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// gate runs the pre-attempt checks: context, fleet throttle, circuit
// breaker, and client-side pacing. probe reports that this attempt is the
// breaker's half-open probe. A *breakerOpenError return is retryable (the
// backend was not contacted); a context cause is not.
func (r *ResilientBackend) gate(ctx context.Context) (probe bool, err error) {
	if ctx.Err() != nil {
		return false, context.Cause(ctx)
	}
	if tu := r.throttleUntil.Load(); tu > 0 {
		if d := time.Until(time.Unix(0, tu)); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return false, err
			}
		}
	}
	r.mu.Lock()
	switch r.state {
	case BreakerClosed:
	case BreakerOpen:
		if wait := time.Until(r.openedAt.Add(r.pol.BreakerCooldown)); wait > 0 {
			r.mu.Unlock()
			return false, &breakerOpenError{wait: wait}
		}
		r.state = BreakerHalfOpen
		r.probing = true
		probe = true
	default: // half-open
		if r.probing {
			r.mu.Unlock()
			return false, &breakerOpenError{wait: r.pol.BreakerCooldown}
		}
		r.probing = true
		probe = true
	}
	r.mu.Unlock()
	if err := r.pace(ctx); err != nil {
		if probe {
			r.mu.Lock()
			r.probing = false
			r.mu.Unlock()
		}
		return false, err
	}
	return probe, nil
}

// pace enforces the client-side request rate (token bucket over an atomic
// next-free-slot timestamp). No-op when RateLimit is unset.
func (r *ResilientBackend) pace(ctx context.Context) error {
	if r.pol.RateLimit <= 0 {
		return nil
	}
	interval := time.Duration(float64(time.Second) / r.pol.RateLimit)
	burst := time.Duration(r.pol.RateBurst) * interval
	for {
		now := time.Now()
		cur := r.nextFree.Load()
		slot := time.Unix(0, cur)
		if earliest := now.Add(-burst); slot.Before(earliest) {
			slot = earliest
		}
		if r.nextFree.CompareAndSwap(cur, slot.Add(interval).UnixNano()) {
			return sleepCtx(ctx, time.Until(slot))
		}
	}
}

// noteResult feeds one backend attempt's outcome to the breaker and the
// retry budget.
func (r *ResilientBackend) noteResult(success, probe bool) {
	r.noteBreaker(success, probe)
	if success {
		r.refundN(1)
	}
}

// noteBreaker feeds one backend attempt's outcome to the breaker alone —
// batch rounds refund per resolved element instead of per call.
func (r *ResilientBackend) noteBreaker(success, probe bool) {
	r.mu.Lock()
	if probe {
		r.probing = false
	}
	if success {
		r.consecFails = 0
		r.state = BreakerClosed
	} else {
		r.consecFails++
		switch r.state {
		case BreakerHalfOpen:
			if probe {
				r.state = BreakerOpen
				r.openedAt = time.Now()
				r.breakerOpens.Add(1)
			}
		case BreakerClosed:
			if r.consecFails >= r.pol.BreakerThreshold {
				r.state = BreakerOpen
				r.openedAt = time.Now()
				r.breakerOpens.Add(1)
			}
		}
	}
	r.mu.Unlock()
}

// takeTokens spends n retry tokens, reporting whether the budget allowed it.
func (r *ResilientBackend) takeTokens(n int) bool {
	need := int64(n) * 1000
	for {
		cur := r.tokens.Load()
		if cur < need {
			return false
		}
		if r.tokens.CompareAndSwap(cur, cur-need) {
			return true
		}
	}
}

// refundN returns n resolved elements' worth of budget, capped at the
// pool size. Refunds are per element while spend is per retry round trip:
// useful work earns credit in proportion to what actually resolved, so
// absorbable fault rates sustain the pool, while a dead backend (nothing
// resolves, rounds keep spending) still drains it.
func (r *ResilientBackend) refundN(n int) {
	add := int64(n) * int64(r.pol.BudgetRefund*1000)
	for {
		cur := r.tokens.Load()
		if cur >= r.maxTokens {
			return
		}
		next := cur + add
		if next > r.maxTokens {
			next = r.maxTokens
		}
		if r.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// waitRetry sleeps before retry number attempt+1: capped exponential
// backoff with deterministic jitter, stretched to any retry-after hint or
// breaker cooldown carried by cause (rate-limit hints are also published
// fleet-wide). Context-aware.
func (r *ResilientBackend) waitRetry(ctx context.Context, attempt int, cause error) error {
	d := r.pol.BaseBackoff
	for i := 0; i < attempt && d < r.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	d = r.jitter(d)
	var fe *FaultError
	if errors.As(cause, &fe) && fe.RetryAfter > 0 {
		if fe.RetryAfter > d {
			d = fe.RetryAfter
		}
		until := time.Now().Add(fe.RetryAfter).UnixNano()
		for {
			cur := r.throttleUntil.Load()
			if cur >= until || r.throttleUntil.CompareAndSwap(cur, until) {
				break
			}
		}
	}
	var bo *breakerOpenError
	if errors.As(cause, &bo) && bo.wait > d {
		d = bo.wait
	}
	return sleepCtx(ctx, d)
}

// fail finalizes a given-up call: it classifies the reason, fires the
// context's failure-cancel hook (so the owning job fails with the typed
// error), and returns the error. A context that was already done is not a
// backend failure — its own cause propagates uncounted.
func (r *ResilientBackend) fail(ctx context.Context, attempts int, cause, last error) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	reason := "retries_exhausted"
	underlying := cause
	var bo *breakerOpenError
	switch {
	case errors.Is(cause, errRetryBudget):
		reason = "retry_budget_exhausted"
		underlying = last
	case errors.As(cause, &bo):
		reason = "breaker_open"
		underlying = last
	}
	be := &BackendUnavailableError{Reason: reason, Attempts: attempts, Last: underlying}
	r.failures.Add(1)
	if cancel := failureCancel(ctx); cancel != nil {
		cancel(be)
	}
	return be
}

// do runs one access through the retry loop. call performs the access and
// reports its error; it runs at most 1+MaxRetries times.
func (r *ResilientBackend) do(ctx context.Context, call func() error) error {
	var last error
	for attempt := 0; ; attempt++ {
		probe, gerr := r.gate(ctx)
		var err error
		if gerr != nil {
			var bo *breakerOpenError
			if !errors.As(gerr, &bo) {
				return r.fail(ctx, attempt, gerr, last)
			}
			err = gerr // retryable: the breaker refused, backend untouched
		} else {
			err = call()
			r.noteResult(err == nil, probe)
			if err == nil {
				if attempt > 0 {
					r.absorbed.Add(1)
				}
				return nil
			}
			last = err
		}
		if attempt >= r.pol.MaxRetries {
			return r.fail(ctx, attempt+1, err, last)
		}
		if !r.takeTokens(1) {
			return r.fail(ctx, attempt+1, errRetryBudget, last)
		}
		r.retries.Add(1)
		if werr := r.waitRetry(ctx, attempt, err); werr != nil {
			return r.fail(ctx, attempt+1, werr, last)
		}
	}
}

// NeighborsCtx implements FallibleBackend.
func (r *ResilientBackend) NeighborsCtx(ctx context.Context, v int) ([]int32, error) {
	if r.fb == nil {
		return r.be.Neighbors(v), nil
	}
	var nbr []int32
	err := r.do(ctx, func() error {
		var e error
		nbr, e = r.fb.NeighborsCtx(ctx, v)
		return e
	})
	if err != nil {
		return nil, err
	}
	return nbr, nil
}

// DegreeCtx implements FallibleBackend.
func (r *ResilientBackend) DegreeCtx(ctx context.Context, v int) (int, error) {
	if r.fb == nil {
		return r.be.Degree(v), nil
	}
	var d int
	err := r.do(ctx, func() error {
		var e error
		d, e = r.fb.DegreeCtx(ctx, v)
		return e
	})
	if err != nil {
		return 0, err
	}
	return d, nil
}

// AttrCtx implements FallibleBackend.
func (r *ResilientBackend) AttrCtx(ctx context.Context, name string, v int) (float64, bool, error) {
	if r.fb == nil {
		val, ok := r.be.Attr(name, v)
		return val, ok, nil
	}
	var val float64
	var ok bool
	err := r.do(ctx, func() error {
		var e error
		val, ok, e = r.fb.AttrCtx(ctx, name, v)
		return e
	})
	if err != nil {
		return 0, false, err
	}
	return val, ok, nil
}

// NeighborsBatchCtx implements FallibleBackend: the whole batch is issued,
// then only the failed subset is retried per round — so a transient fault
// on one element never re-fetches (or re-waits for) the others. Rounds
// share the single-call loop's backoff, budget, and breaker bookkeeping;
// elements still failed when the policy is exhausted stay marked in failed
// and the typed give-up error is returned.
func (r *ResilientBackend) NeighborsBatchCtx(ctx context.Context, vs []int32, out [][]int32, failed []bool) error {
	if r.fb == nil {
		r.be.NeighborsBatch(vs, out)
		for i := range failed {
			failed[i] = false
		}
		return nil
	}
	var last error
	first := true
	prevPending := len(vs)
	for attempt := 0; ; attempt++ {
		probe, gerr := r.gate(ctx)
		var err error
		issued := false
		if gerr != nil {
			var bo *breakerOpenError
			if !errors.As(gerr, &bo) {
				if first {
					markAllFailed(out, failed)
				}
				return r.fail(ctx, attempt, gerr, last)
			}
			err = gerr
			if first {
				markAllFailed(out, failed)
			}
		} else {
			if first {
				err = r.fb.NeighborsBatchCtx(ctx, vs, out, failed)
			} else {
				err = r.retryFailed(ctx, vs, out, failed)
			}
			first = false
			issued = true
			r.noteBreaker(err == nil, probe)
			if err == nil {
				r.refundN(prevPending)
				if attempt > 0 {
					r.absorbed.Add(1)
				}
				return nil
			}
			last = err
		}
		pending := 0
		for _, f := range failed {
			if f {
				pending++
			}
		}
		// Refund per element resolved this round, even when the round as a
		// whole still has failures — resolved elements are useful work.
		if issued && prevPending > pending {
			r.refundN(prevPending - pending)
		}
		prevPending = pending
		if pending == 0 {
			return nil
		}
		if attempt >= r.pol.MaxRetries {
			return r.fail(ctx, attempt+1, err, last)
		}
		// One token per retry round trip, not per element: the pressure a
		// retry puts on the backend is one request regardless of subset
		// width, and a budget charged per element could never afford a
		// retry for a batch wider than the whole pool.
		if !r.takeTokens(1) {
			return r.fail(ctx, attempt+1, errRetryBudget, last)
		}
		r.retries.Add(int64(pending))
		if werr := r.waitRetry(ctx, attempt, err); werr != nil {
			return r.fail(ctx, attempt+1, werr, last)
		}
	}
}

// retryFailed re-issues the failed subset of a batch and scatters any
// newly resolved elements back in place.
func (r *ResilientBackend) retryFailed(ctx context.Context, vs []int32, out [][]int32, failed []bool) error {
	idx := make([]int, 0, len(vs))
	for i, f := range failed {
		if f {
			idx = append(idx, i)
		}
	}
	subVs := make([]int32, len(idx))
	for j, i := range idx {
		subVs[j] = vs[i]
	}
	subOut := make([][]int32, len(idx))
	subFailed := make([]bool, len(idx))
	err := r.fb.NeighborsBatchCtx(ctx, subVs, subOut, subFailed)
	for j, i := range idx {
		if !subFailed[j] {
			out[i] = subOut[j]
			failed[i] = false
		}
	}
	return err
}

func markAllFailed(out [][]int32, failed []bool) {
	for i := range failed {
		failed[i] = true
		out[i] = nil
	}
}

// NumNodes implements Backend (metadata is locally known; never gated).
func (r *ResilientBackend) NumNodes() int { return r.be.NumNodes() }

// NumEdges implements Backend.
func (r *ResilientBackend) NumEdges() int { return r.be.NumEdges() }

// Degree implements Backend; an unabsorbed failure degrades to 0.
func (r *ResilientBackend) Degree(v int) int {
	d, err := r.DegreeCtx(context.Background(), v)
	if err != nil {
		return 0
	}
	return d
}

// Neighbors implements Backend; an unabsorbed failure degrades to an empty
// list (kernels treat the node as stranded). Callers that need the typed
// error use the FallibleBackend surface — the metered Client does so
// automatically when bound to a context.
func (r *ResilientBackend) Neighbors(v int) []int32 {
	nbr, err := r.NeighborsCtx(context.Background(), v)
	if err != nil {
		return nil
	}
	return nbr
}

// NeighborsBatch implements Backend; failed elements degrade to nil.
func (r *ResilientBackend) NeighborsBatch(vs []int32, out [][]int32) {
	failed := make([]bool, len(vs))
	r.NeighborsBatchCtx(context.Background(), vs, out, failed)
}

// Attr implements Backend; an unabsorbed failure degrades to absent.
func (r *ResilientBackend) Attr(name string, v int) (float64, bool) {
	val, ok, err := r.AttrCtx(context.Background(), name, v)
	if err != nil {
		return 0, false
	}
	return val, ok
}

// AttrNames implements Backend.
func (r *ResilientBackend) AttrNames() []string { return r.be.AttrNames() }

// GraphView implements GraphViewer when the wrapped backend does.
func (r *ResilientBackend) GraphView() *graph.Graph {
	if gv, ok := r.be.(GraphViewer); ok {
		return gv.GraphView()
	}
	return nil
}
