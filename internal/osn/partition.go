package osn

// This file is the cluster seam of the shared cache: a Partition splits the
// cache's 64 shards across N fleet workers (shard s belongs to worker
// s mod N — the same v&63 sharding SharedCache already uses), and a
// ShardResolver carries non-owned lookups to the shard owner. Everything
// here is cold-path only: the partition is consulted after an L1 miss and a
// shared-cache miss, behind a single atomic pointer load, so the zero-alloc
// warm-path contracts are untouched and a single-process cache (no partition
// installed) behaves exactly as before.
//
// Charging contract. Each worker's cache keeps two unique-node meters:
//
//   - uniq/queries: every distinct node this worker touched (local view);
//   - owned: distinct *owned* nodes first-accessed here — the owner's
//     queried bitset is the fleet-wide authority for its shards, so
//     Σ OwnedUnique over workers == |distinct nodes accessed fleet-wide|
//     == the single-process TotalQueries at the same (seed, workers).
//
// A requester resolving a remote id charges its own queries meter with the
// owner's fleet-first verdict (first[i] from the RPC), so Σ Queries over
// workers equals the same total: each fleet-first access is charged at
// exactly one requester and counted at exactly one owner.
//
// Partition resolution requires an unrestricted, unlimited view (the serve
// stack's shape): owners serve raw backend lists, so restrictions or rate
// limits on the requester would not survive the hop. Clients only take the
// remote branch on the fastPath.

import "context"

// ShardResolver resolves neighbor lists for node ids owned by other fleet
// workers, typically over an RPC to each shard owner. On success lists[i]
// holds the neighbor list of ids[i] and first[i] reports whether this access
// was the first fleet-wide (the owner's test-and-set verdict, which the
// requester must use for charging). ids may span several owners; the
// resolver is responsible for grouping. An error means the batch could not
// be resolved (owners unreachable); the caller falls back to its local
// backend so walks keep moving.
type ShardResolver interface {
	ResolveShards(ctx context.Context, ids []int32, lists [][]int32, first []bool) error
}

// Partition describes this worker's slice of a fleet-partitioned shared
// cache: cache shard s (s = v & 63) is owned by worker s mod Workers.
type Partition struct {
	// Index is this worker's position in [0, Workers).
	Index int
	// Workers is the fleet size.
	Workers int
	// Resolver carries non-owned lookups to their shard owners. A nil
	// Resolver disables remote resolution (ownership still gates the
	// owned-unique meter).
	Resolver ShardResolver
}

// OwnerOf returns the fleet index owning node v's cache shard.
func (p *Partition) OwnerOf(v int32) int {
	return int(uint32(v)&(cacheShards-1)) % p.Workers
}

// Owns reports whether this worker owns node v's cache shard.
func (p *Partition) Owns(v int32) bool { return p.OwnerOf(v) == p.Index }

// SetPartition installs (or, with nil, removes) the fleet partition. The
// swap is atomic and may happen while clients are running: the partition is
// consulted only on the cold miss path, and ownership changes only move
// where future first-accesses are counted. Install it before serving
// traffic when exact fleet charging is required.
func (sc *SharedCache) SetPartition(p *Partition) { sc.part.Store(p) }

// Partition returns the installed fleet partition, or nil.
func (sc *SharedCache) Partition() *Partition { return sc.part.Load() }

// OwnedUnique returns the number of distinct nodes first-accessed through
// this cache that its partition owns. Without a partition every node is
// owned, so this equals UniqueNodes. Summed across a fleet, OwnedUnique is
// the exact distinct-node total — the paper's query cost — regardless of
// which workers touched which nodes.
func (sc *SharedCache) OwnedUnique() int64 { return sc.owned.Load() }

// RemoteFallbacks returns how many non-owned ids were served by a local
// backend fetch because their shard owner was unreachable. Non-zero values
// mean the fleet meter is approximate until the fleet heals (the fallback
// charges locally; the dead owner's bitset is the lost authority).
func (sc *SharedCache) RemoteFallbacks() int64 { return sc.remoteFallbacks.Load() }

// ownsLocal reports whether first-marking v here should count toward the
// owned-unique meter: always without a partition, owner-only with one.
func (sc *SharedCache) ownsLocal(p *Partition, v int32) bool {
	return p == nil || p.Owns(v)
}

// ResolveOwned answers a shard-owner lookup for ids this cache's worker
// owns: each id is served from the cache or — for the misses — fetched in
// one batched fetch call, stored (concurrent winners kept), and test-and-set
// against the owner's queried bitset, which is the fleet authority for these
// shards. lists[i] and first[i] are filled for every ids[i]; first[i] is the
// fleet-first verdict the requester charges with. Safe for concurrent use;
// racing resolves of the same id hand first=true to exactly one caller.
func (sc *SharedCache) ResolveOwned(ids []int32, lists [][]int32, first []bool, fetch func(miss []int32, out [][]int32) error) error {
	if len(ids) == 0 {
		return nil
	}
	var sg shardGroups
	found := make([]bool, len(ids))
	sc.lookupBatch(ids, lists, found, &sg)
	nmiss := 0
	for _, ok := range found {
		if !ok {
			nmiss++
		}
	}
	if nmiss > 0 {
		missIDs := make([]int32, 0, nmiss)
		missPos := make([]int, 0, nmiss)
		for i, ok := range found {
			if !ok {
				missIDs = append(missIDs, ids[i])
				missPos = append(missPos, i)
			}
		}
		missLists := make([][]int32, len(missIDs))
		if err := fetch(missIDs, missLists); err != nil {
			return err
		}
		for j, v := range missIDs {
			lists[missPos[j]] = sc.store(v, missLists[j])
		}
	}
	for i, v := range ids {
		first[i] = sc.markQueried(v)
	}
	return nil
}

// neighborsRemote resolves a single non-owned miss through the shard owner:
// the returned list is absorbed into the local cache and L1 (uncharged
// against the owned meter — the owner counted it), and the owner's
// fleet-first verdict drives this client's charge.
func (c *Client) neighborsRemote(v int32, p *Partition) []int32 {
	ids := [1]int32{v}
	var lists [1][]int32
	var first [1]bool
	if err := p.Resolver.ResolveShards(c.ctx, ids[:], lists[:], first[:]); err != nil {
		c.shared.remoteFallbacks.Add(1)
		return c.neighborsFallback(v)
	}
	nbr := c.shared.store(v, lists[0])
	c.shared.markQueried(v) // local dedup bookkeeping; ownership gates the owned meter
	c.setL1(int(v), nbr)
	c.chargeBatch(1, first[:])
	return nbr
}

// neighborsFallback is the owner-unreachable path: fetch v from the local
// backend and absorb it as if owned, so the walk completes. The charge uses
// the local first-mark — approximate fleet-wide, exact again once owners are
// back (documented on RemoteFallbacks).
func (c *Client) neighborsFallback(v int32) []int32 {
	var nbr []int32
	if c.fb != nil {
		var err error
		nbr, err = c.fb.NeighborsCtx(c.ctx, int(v))
		if err != nil {
			c.noteFetchError(err)
			return nil
		}
	} else {
		nbr = c.net.be.Neighbors(int(v))
	}
	nbr = c.shared.store(v, nbr)
	c.setL1(int(v), nbr)
	c.charge(v)
	return nbr
}

// resolvePartitioned splits a deduplicated miss batch into locally-owned ids
// — returned for the caller's usual backend pass — and remote ids, which are
// resolved through their shard owners in one ShardResolver call, absorbed
// into the local cache and L1, and charged with the owners' fleet-first
// verdicts. On resolver error the remote ids are handed back for local
// fetching (fallback), keeping the batch complete.
func (c *Client) resolvePartitioned(p *Partition, fetch []int32) []int32 {
	k := 0
	remote := c.remoteIDs[:0]
	for _, v := range fetch {
		if p.Owns(v) {
			fetch[k] = v
			k++
		} else {
			remote = append(remote, v)
		}
	}
	c.remoteIDs = remote
	if len(remote) == 0 {
		return fetch[:k]
	}
	if cap(c.remoteLists) < len(remote) {
		c.remoteLists = make([][]int32, len(remote), 2*len(remote))
	}
	lists := c.remoteLists[:len(remote)]
	if cap(c.remoteFirst) < len(remote) {
		c.remoteFirst = make([]bool, len(remote), 2*len(remote))
	}
	first := c.remoteFirst[:len(remote)]
	if err := p.Resolver.ResolveShards(c.ctx, remote, lists, first); err != nil {
		c.shared.remoteFallbacks.Add(int64(len(remote)))
		return append(fetch[:k], remote...)
	}
	if cap(c.remoteSeen) < len(remote) {
		c.remoteSeen = make([]bool, len(remote), 2*len(remote))
	}
	seen := c.remoteSeen[:len(remote)]
	c.shared.fillBatch(remote, lists, seen, &c.groups)
	for i, v := range remote {
		c.setL1(int(v), lists[i])
	}
	c.chargeBatch(len(remote), first)
	return fetch[:k]
}
