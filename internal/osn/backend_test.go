package osn

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fastrand"
	"repro/internal/graph"
)

func backendTestGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	// A spanning path so no node is stranded.
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

func diskBackendFor(t *testing.T, g *graph.Graph) DiskBackend {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.SaveCSR(path, g, map[string][]float64{"attr": make([]float64, g.NumNodes())}); err != nil {
		t.Fatal(err)
	}
	be, m, err := OpenDiskBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return be
}

// All three backends must serve identical topology.
func TestBackendsEquivalent(t *testing.T) {
	g := backendTestGraph(3, 120, 400)
	mem := NewMemBackend(g)
	disk := diskBackendFor(t, g)
	sim := NewRemoteSim(NewMemBackend(g), 0, 0, 4)
	for _, tc := range []struct {
		name string
		be   Backend
	}{{"disk", disk}, {"sim", sim}} {
		if tc.be.NumNodes() != mem.NumNodes() || tc.be.NumEdges() != mem.NumEdges() {
			t.Fatalf("%s: shape n=%d m=%d", tc.name, tc.be.NumNodes(), tc.be.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			want := mem.Neighbors(v)
			got := tc.be.Neighbors(v)
			if len(got) != len(want) || tc.be.Degree(v) != len(want) {
				t.Fatalf("%s: node %d degree", tc.name, v)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: node %d neighbor %d", tc.name, v, i)
				}
			}
		}
		// Batch answers must match per-node answers, including duplicates.
		vs := []int32{5, 0, 5, 119, 40}
		out := make([][]int32, len(vs))
		tc.be.NeighborsBatch(vs, out)
		for i, v := range vs {
			want := mem.Neighbors(int(v))
			if len(out[i]) != len(want) {
				t.Fatalf("%s: batch[%d]", tc.name, i)
			}
			for j := range want {
				if out[i][j] != want[j] {
					t.Fatalf("%s: batch[%d][%d]", tc.name, i, j)
				}
			}
		}
	}
	if _, ok := disk.Attr("attr", 0); !ok {
		t.Error("disk backend lost embedded attribute")
	}
	if _, ok := disk.Attr("none", 0); ok {
		t.Error("disk backend invented an attribute")
	}
}

// A network over a disk backend must behave exactly like one over the
// in-memory backend, and serve CSR-embedded attributes.
func TestNetworkOnDiskBackend(t *testing.T) {
	g := backendTestGraph(4, 80, 200)
	path := filepath.Join(t.TempDir(), "g.csr")
	attr := make([]float64, g.NumNodes())
	for v := range attr {
		attr[v] = float64(v) + 0.5
	}
	if err := graph.SaveCSR(path, g, map[string][]float64{"stars": attr}); err != nil {
		t.Fatal(err)
	}
	be, m, err := OpenDiskBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	net := NewNetworkOn(be)
	if net.Graph() == nil {
		t.Fatal("disk-backed network should expose a ground-truth view")
	}
	if net.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
	mean, err := net.TrueMean("stars")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range attr {
		want += v
	}
	want /= float64(len(attr))
	if mean != want {
		t.Fatalf("TrueMean(stars) = %v, want %v", mean, want)
	}
	if dm, err := net.TrueMean(AttrDegree); err != nil || dm != g.AvgDegree() {
		t.Fatalf("TrueMean(degree) = %v, %v", dm, err)
	}
	found := false
	for _, name := range net.AttrNames() {
		if name == "stars" {
			found = true
		}
	}
	if !found {
		t.Errorf("AttrNames missing backend attribute: %v", net.AttrNames())
	}
	c := NewClient(net, CostUniqueNodes, fastrand.New(1))
	if v, err := c.Attr("stars", 3); err != nil || v != attr[3] {
		t.Fatalf("Attr(stars, 3) = %v, %v", v, err)
	}
}

// NeighborsBatch must be observationally identical to per-node Neighbors:
// same lists, same query cost, same call count, same known-node set — for
// any (graph, restriction, shared/private, mode, frontier) combination.
func TestNeighborsBatchEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, useShared, perCall bool, restr uint8) bool {
		n := 60 + int(uint(seed)%40)
		g := backendTestGraph(seed, n, 3*n)
		var opts []Option
		switch restr % 3 {
		case 1:
			opts = append(opts, WithRestriction(FixedK{K: 3, Seed: seed}))
		case 2:
			opts = append(opts, WithRestriction(TruncateL{L: 4}))
		}
		mode := CostUniqueNodes
		if perCall {
			mode = CostPerCall
		}
		newPair := func() (*Client, *Client) {
			netA := NewNetworkOn(NewMemBackend(g), opts...)
			netB := NewNetworkOn(NewMemBackend(g), opts...)
			var a, b *Client
			if useShared {
				a = NewClientShared(netA, mode, fastrand.New(seed), NewSharedCache())
				b = NewClientShared(netB, mode, fastrand.New(seed), NewSharedCache())
			} else {
				a = NewClient(netA, mode, fastrand.New(seed))
				b = NewClient(netB, mode, fastrand.New(seed))
			}
			return a, b
		}
		a, b := newPair()
		frontRng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for round := 0; round < 4; round++ {
			k := 1 + frontRng.Intn(25)
			vs := make([]int32, k)
			for i := range vs {
				vs[i] = int32(frontRng.Intn(n))
			}
			out := make([][]int32, k)
			a.NeighborsBatch(vs, out)
			for i, v := range vs {
				want := b.Neighbors(int(v))
				if len(out[i]) != len(want) {
					return false
				}
				for j := range want {
					if out[i][j] != want[j] {
						return false
					}
				}
			}
		}
		if a.Queries() != b.Queries() || a.Calls() != b.Calls() {
			t.Logf("meters diverge: batch q=%d c=%d, per-node q=%d c=%d",
				a.Queries(), a.Calls(), b.Queries(), b.Calls())
			return false
		}
		ka, kb := a.KnownNodes(), b.KnownNodes()
		if len(ka) != len(kb) {
			return false
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// Under a type-1 (per-call random) restriction nothing may be cached:
// NeighborsBatch must fall back to per-node semantics and Prefetch must be
// a free no-op (no charges, no RNG consumption).
func TestBatchUnderRandomKRestriction(t *testing.T) {
	g := backendTestGraph(11, 50, 150)
	net := NewNetworkOn(NewMemBackend(g), WithRestriction(RandomK{K: 2}))
	c := NewClient(net, CostUniqueNodes, fastrand.New(5))
	c.Prefetch([]int32{1, 2, 3})
	if c.Calls() != 0 || c.Queries() != 0 {
		t.Fatalf("Prefetch under RandomK charged: calls=%d queries=%d", c.Calls(), c.Queries())
	}
	vs := []int32{4, 5, 4}
	out := make([][]int32, len(vs))
	c.NeighborsBatch(vs, out)
	if c.Calls() != 3 {
		t.Fatalf("RandomK batch calls = %d, want 3 (per-call fallback)", c.Calls())
	}
	for i, v := range vs {
		if want := g.Degree(int(v)); len(out[i]) > 2 || (want >= 2 && len(out[i]) != 2) {
			t.Fatalf("restricted list %d has %d entries", i, len(out[i]))
		}
	}
}

// Regression test (ISSUE 3 satellite): when two workers race the same
// frontier through batched prefetch, the fleet meter must charge each
// unique node exactly once under CostUniqueNodes. Run under -race in CI.
func TestBatchedPrefetchChargesOncePerUniqueNode(t *testing.T) {
	g := backendTestGraph(21, 400, 1200)
	net := NewNetworkOn(NewMemBackend(g))
	sc := NewSharedCache()
	const workers = 4
	frontier := make([]int32, 0, 200)
	for v := 0; v < 200; v++ {
		frontier = append(frontier, int32(v))
	}
	var wg sync.WaitGroup
	clients := make([]*Client, workers)
	for w := 0; w < workers; w++ {
		clients[w] = NewClientShared(net, CostUniqueNodes, fastrand.New(int64(w)), sc)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(c *Client, off int) {
			defer wg.Done()
			// Same frontier, rotated so workers collide at different nodes
			// at different times.
			vs := make([]int32, len(frontier))
			for i := range frontier {
				vs[i] = frontier[(i+off*13)%len(frontier)]
			}
			c.Prefetch(vs[:len(vs)/2])
			c.Prefetch(vs) // second wave overlaps the first
		}(clients[w], w)
	}
	wg.Wait()
	if got := sc.Queries(); got != int64(len(frontier)) {
		t.Fatalf("fleet queries = %d, want %d (one per unique frontier node)", got, len(frontier))
	}
	if got := sc.UniqueNodes(); got != len(frontier) {
		t.Fatalf("unique nodes = %d, want %d", got, len(frontier))
	}
	var sum int64
	for _, c := range clients {
		sum += c.Queries()
	}
	if sum != int64(len(frontier)) {
		t.Fatalf("per-client meters sum to %d, want %d", sum, len(frontier))
	}
}

// The simulated remote backend must answer batches concurrently: a k-node
// batch at latency L should take ~ceil(k/fanout)·L, far less than k·L.
func TestRemoteSimBatchConcurrency(t *testing.T) {
	g := backendTestGraph(31, 64, 200)
	const latency = 10 * time.Millisecond
	sim := NewRemoteSim(NewMemBackend(g), latency, 0, 32)
	vs := make([]int32, 32)
	for i := range vs {
		vs[i] = int32(i)
	}
	out := make([][]int32, len(vs))
	start := time.Now()
	sim.NeighborsBatch(vs, out)
	batchTime := time.Since(start)
	if sim.RoundTrips() != int64(len(vs)) {
		t.Fatalf("round trips = %d, want %d", sim.RoundTrips(), len(vs))
	}
	// 32 nodes over 32 connections ≈ 1 RTT; allow generous scheduling slack
	// but require clearly better than half the serial cost.
	if serial := time.Duration(len(vs)) * latency; batchTime > serial/2 {
		t.Fatalf("batch took %v, not concurrent (serial would be %v)", batchTime, serial)
	}
	for i, v := range vs {
		if len(out[i]) != g.Degree(int(v)) {
			t.Fatalf("batch result %d wrong", i)
		}
	}
}

// Deterministic jitter must stay within ±Jitter around Latency and never
// perturb data.
func TestRemoteSimJitterBounds(t *testing.T) {
	g := backendTestGraph(41, 10, 20)
	sim := NewRemoteSim(NewMemBackend(g), 2*time.Millisecond, time.Millisecond, 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		nbr := sim.Neighbors(i)
		d := time.Since(start)
		if d < time.Millisecond {
			t.Fatalf("call %d slept only %v, want >= latency-jitter", i, d)
		}
		want := g.Neighbors(i)
		if len(nbr) != len(want) {
			t.Fatalf("jitter perturbed data at node %d", i)
		}
	}
}

// Evaluation-only ground-truth reads must bypass RemoteSim entirely: no
// simulated sleeps, no round-trip accounting.
func TestTrueMeanBypassesRemoteSim(t *testing.T) {
	g := backendTestGraph(51, 200, 600)
	sim := NewRemoteSim(diskBackendFor(t, g), time.Hour, 0, 1)
	net := NewNetworkOn(sim)
	done := make(chan error, 1)
	go func() {
		if _, err := net.TrueMean("attr"); err != nil {
			done <- err
			return
		}
		_, err := net.TrueMean(AttrDegree)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("TrueMean slept on the simulated backend")
	}
	if sim.RoundTrips() != 0 {
		t.Fatalf("TrueMean charged %d simulated round trips", sim.RoundTrips())
	}
}

// A mem backend decoded from a CSR file (attrs included) must present the
// same network as the disk backend over that file.
func TestMemBackendWithAttrsMatchesDisk(t *testing.T) {
	g := backendTestGraph(61, 90, 250)
	attr := make([]float64, g.NumNodes())
	for v := range attr {
		attr[v] = float64(v) * 1.5
	}
	tables := map[string][]float64{"score": attr}
	mem := NewMemBackendWithAttrs(g, tables)
	netM := NewNetworkOn(mem)
	mMean, err := netM.TrueMean("score")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.SaveCSR(path, g, tables); err != nil {
		t.Fatal(err)
	}
	disk, mapped, err := OpenDiskBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	dMean, err := NewNetworkOn(disk).TrueMean("score")
	if err != nil {
		t.Fatal(err)
	}
	if mMean != dMean {
		t.Fatalf("TrueMean(score): mem %v != disk %v", mMean, dMean)
	}
	if got := mem.AttrNames(); len(got) != 1 || got[0] != "score" {
		t.Fatalf("AttrNames = %v", got)
	}
	if v, ok := mem.Attr("score", 4); !ok || v != attr[4] {
		t.Fatalf("Attr(score,4) = %v,%v", v, ok)
	}
}
