package osn

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fastrand"
)

// loopResolver routes non-owned ids to the owner worker's cache in-process:
// the same grouping + ResolveOwned flow the cluster RPC performs, minus HTTP.
type loopResolver struct {
	caches []*SharedCache
	be     Backend
	fail   bool
}

func (r *loopResolver) ResolveShards(_ context.Context, ids []int32, lists [][]int32, first []bool) error {
	if r.fail {
		return errors.New("owners unreachable")
	}
	for i, v := range ids {
		owner := r.caches[0].Partition().OwnerOf(v)
		one := lists[i : i+1]
		f := first[i : i+1]
		err := r.caches[owner].ResolveOwned(ids[i:i+1], one, f, func(miss []int32, out [][]int32) error {
			r.be.NeighborsBatch(miss, out)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// partitionedFleet builds w workers over one backend: each has its own
// SharedCache with a Partition and a loop resolver to the others.
func partitionedFleet(be Backend, w int) ([]*Network, []*SharedCache, *loopResolver) {
	caches := make([]*SharedCache, w)
	nets := make([]*Network, w)
	res := &loopResolver{caches: caches, be: be}
	for i := 0; i < w; i++ {
		caches[i] = NewSharedCache()
		caches[i].SetPartition(&Partition{Index: i, Workers: w, Resolver: res})
		nets[i] = NewNetworkOn(be)
	}
	return nets, caches, res
}

func TestPartitionOwnershipDisjointAndTotal(t *testing.T) {
	const w = 3
	parts := make([]*Partition, w)
	for i := range parts {
		parts[i] = &Partition{Index: i, Workers: w}
	}
	for v := int32(0); v < 1000; v++ {
		owners := 0
		for i, p := range parts {
			if p.OwnerOf(v) != parts[0].OwnerOf(v) {
				t.Fatalf("workers disagree on owner of %d", v)
			}
			if p.Owns(v) {
				owners++
				if p.OwnerOf(v) != i {
					t.Fatalf("worker %d owns %d but OwnerOf says %d", i, v, p.OwnerOf(v))
				}
			}
		}
		if owners != 1 {
			t.Fatalf("node %d has %d owners, want exactly 1", v, owners)
		}
	}
	// Same-shard ids share an owner (the partition is by cache shard).
	p := parts[1]
	if p.OwnerOf(5) != p.OwnerOf(5+cacheShards) || p.OwnerOf(5) != p.OwnerOf(5+7*cacheShards) {
		t.Fatal("ids in one cache shard must share an owner")
	}
}

// A partitioned fleet must serve the same neighbor lists as a single shared
// cache, and the summed owned-unique meters (and summed requester charges)
// must equal the single-process unique-node total exactly.
func TestPartitionedFleetChargeParity(t *testing.T) {
	g := backendTestGraph(11, 300, 900)
	be := NewMemBackend(g)

	// Reference: one shared cache, one client, touch a fixed workload.
	refNet := NewNetworkOn(be)
	refCache := NewSharedCache()
	ref := NewClientShared(refNet, CostUniqueNodes, fastrand.New(1), refCache)

	const w = 3
	nets, caches, _ := partitionedFleet(be, w)
	clients := make([]*Client, w)
	for i := range clients {
		clients[i] = NewClientShared(nets[i], CostUniqueNodes, fastrand.New(1), caches[i])
	}

	// Overlapping per-worker workloads: every worker walks a stride of the
	// id space plus a common hub set, mixing owned and remote misses and
	// repeat (warm) accesses.
	hub := []int{0, 1, 2, 63, 64, 65, 128, 299}
	for i, c := range clients {
		for v := i; v < 300; v += 2 { // strides overlap across workers
			got := c.Neighbors(v)
			want := ref.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("worker %d: node %d list length %d != %d", i, v, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("worker %d: node %d neighbor %d differs", i, v, j)
				}
			}
		}
		for _, v := range hub {
			c.Neighbors(v)
			ref.Neighbors(v)
		}
	}

	var owned, queries int64
	for i, sc := range caches {
		owned += sc.OwnedUnique()
		queries += sc.Queries()
		if sc.RemoteFallbacks() != 0 {
			t.Fatalf("worker %d took %d fallbacks with live owners", i, sc.RemoteFallbacks())
		}
	}
	want := refCache.Queries()
	if owned != want {
		t.Fatalf("fleet owned-unique %d != single-process queries %d", owned, want)
	}
	if queries != want {
		t.Fatalf("fleet summed requester charges %d != single-process queries %d", queries, want)
	}
	if int64(refCache.UniqueNodes()) != want {
		t.Fatalf("reference invariant broke: uniq %d != queries %d", refCache.UniqueNodes(), want)
	}
}

// The batched access path must split owned and remote misses and produce the
// same lists and total charges as the reference, including duplicates.
func TestPartitionedBatchMatchesReference(t *testing.T) {
	g := backendTestGraph(12, 200, 600)
	be := NewMemBackend(g)

	refNet := NewNetworkOn(be)
	refCache := NewSharedCache()
	ref := NewClientShared(refNet, CostUniqueNodes, fastrand.New(1), refCache)

	const w = 3
	nets, caches, _ := partitionedFleet(be, w)
	c := NewClientShared(nets[0], CostUniqueNodes, fastrand.New(1), caches[0])

	vs := []int32{5, 70, 5, 199, 0, 64, 128, 64, 17, 100}
	out := make([][]int32, len(vs))
	refOut := make([][]int32, len(vs))
	c.NeighborsBatch(vs, out)
	ref.NeighborsBatch(vs, refOut)
	for i := range vs {
		if len(out[i]) != len(refOut[i]) {
			t.Fatalf("batch[%d]: length %d != %d", i, len(out[i]), len(refOut[i]))
		}
		for j := range refOut[i] {
			if out[i][j] != refOut[i][j] {
				t.Fatalf("batch[%d][%d] differs", i, j)
			}
		}
	}
	if c.Queries() != ref.Queries() {
		t.Fatalf("batch charges %d != reference %d", c.Queries(), ref.Queries())
	}
	// Owner-side meters: every unique id is owned by exactly one cache.
	var owned int64
	for _, sc := range caches {
		owned += sc.OwnedUnique()
	}
	if owned != ref.Queries() {
		t.Fatalf("fleet owned-unique %d != reference charges %d", owned, ref.Queries())
	}
	// A second identical batch must be fully warm: no new charges anywhere.
	c.NeighborsBatch(vs, out)
	if got := c.Queries(); got != ref.Queries() {
		t.Fatalf("warm batch charged: %d != %d", got, ref.Queries())
	}
}

// When owners are unreachable the client falls back to its local backend:
// lists stay correct, walks keep moving, and the fallback meter records the
// approximation.
func TestPartitionFallbackOnResolverError(t *testing.T) {
	g := backendTestGraph(13, 120, 300)
	be := NewMemBackend(g)
	nets, caches, res := partitionedFleet(be, 3)
	c := NewClientShared(nets[0], CostUniqueNodes, fastrand.New(1), caches[0])
	res.fail = true

	mem := NewMemBackend(g)
	for v := 0; v < 50; v++ {
		got := c.Neighbors(v)
		want := mem.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("fallback list for %d has length %d, want %d", v, len(got), len(want))
		}
	}
	if caches[0].RemoteFallbacks() == 0 {
		t.Fatal("no fallbacks recorded despite failing resolver")
	}
	// Batched path falls back too.
	vs := []int32{50, 51, 52, 53, 54, 55}
	out := make([][]int32, len(vs))
	c.NeighborsBatch(vs, out)
	for i, v := range vs {
		if len(out[i]) != len(mem.Neighbors(int(v))) {
			t.Fatalf("fallback batch list for %d wrong", v)
		}
	}
	// Fallback charges are local-first: still one charge per unique node on
	// this worker.
	if c.Queries() != 56 {
		t.Fatalf("fallback charged %d, want 56 (one per unique node)", c.Queries())
	}
}
