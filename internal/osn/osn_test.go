package osn

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	stars := []float64{1, 2, 3, 4}
	return NewNetwork(g, WithAttribute("stars", stars))
}

func TestClientQueryAccounting(t *testing.T) {
	net := testNetwork(t)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(1)))
	if len(c.Neighbors(0)) != 2 {
		t.Fatal("node 0 should have 2 neighbors")
	}
	if c.Queries() != 1 || c.Calls() != 1 {
		t.Fatalf("queries=%d calls=%d, want 1/1", c.Queries(), c.Calls())
	}
	c.Neighbors(0) // cached
	if c.Queries() != 1 {
		t.Fatalf("cached repeat charged: %d", c.Queries())
	}
	if c.Calls() != 1 {
		t.Fatalf("cached repeat should not count as a call either: %d", c.Calls())
	}
	c.Neighbors(2)
	if c.Queries() != 2 {
		t.Fatalf("queries=%d, want 2", c.Queries())
	}
	if got := c.Degree(2); got != 3 {
		t.Fatalf("Degree(2) = %d", got)
	}
}

func TestClientPerCallMode(t *testing.T) {
	net := testNetwork(t)
	// Under a non-deterministic restriction nothing is cached, so per-call
	// accounting counts every invocation.
	g := net.Graph()
	net2 := NewNetwork(g, WithRestriction(RandomK{K: 1}))
	c := NewClient(net2, CostPerCall, rand.New(rand.NewSource(1)))
	c.Neighbors(2)
	c.Neighbors(2)
	c.Neighbors(2)
	if c.Queries() != 3 || c.Calls() != 3 {
		t.Fatalf("per-call queries=%d calls=%d, want 3/3", c.Queries(), c.Calls())
	}
}

func TestAttr(t *testing.T) {
	net := testNetwork(t)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(1)))
	v, err := c.Attr("stars", 3)
	if err != nil || v != 4 {
		t.Fatalf("Attr(stars,3) = %v, %v", v, err)
	}
	// Accessing the attribute of an unseen node is a node access.
	if c.Queries() != 1 {
		t.Fatalf("attr access should charge: %d", c.Queries())
	}
	// Degree pseudo-attribute.
	d, err := c.Attr(AttrDegree, 2)
	if err != nil || d != 3 {
		t.Fatalf("Attr(degree,2) = %v, %v", d, err)
	}
	if _, err := c.Attr("nope", 0); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestTrueMean(t *testing.T) {
	net := testNetwork(t)
	m, err := net.TrueMean("stars")
	if err != nil || math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("TrueMean(stars) = %v, %v", m, err)
	}
	d, err := net.TrueMean(AttrDegree)
	if err != nil || math.Abs(d-2.0) > 1e-12 {
		t.Fatalf("TrueMean(degree) = %v, %v", d, err)
	}
	if _, err := net.TrueMean("nope"); err == nil {
		t.Fatal("unknown attribute should error")
	}
	if names := net.AttrNames(); len(names) != 1 || names[0] != "stars" {
		t.Fatalf("AttrNames = %v", names)
	}
}

func TestAttributeLengthPanics(t *testing.T) {
	g := gen.Cycle(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad attribute length")
		}
	}()
	NewNetwork(g, WithAttribute("x", []float64{1, 2}))
}

func TestRandomKRestriction(t *testing.T) {
	g := gen.Star(20) // hub has 19 neighbors
	net := NewNetwork(g, WithRestriction(RandomK{K: 5}))
	rng := rand.New(rand.NewSource(2))
	c := NewClient(net, CostUniqueNodes, rng)
	s1 := append([]int32(nil), c.Neighbors(0)...)
	if len(s1) != 5 {
		t.Fatalf("RandomK returned %d", len(s1))
	}
	// Leaves have 1 neighbor <= K: returned in full.
	if len(c.Neighbors(1)) != 1 {
		t.Fatal("small lists must pass through")
	}
	// Unique-node accounting still counts the hub once even though calls
	// are not cached.
	c.Neighbors(0)
	c.Neighbors(0)
	if c.Queries() != 2 { // hub + leaf
		t.Fatalf("unique queries = %d, want 2", c.Queries())
	}
	if c.Calls() != 4 {
		t.Fatalf("calls = %d, want 4", c.Calls())
	}
	// Over many invocations we should see (almost) all 19 distinct leaves.
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		for _, w := range c.Neighbors(0) {
			seen[w] = true
		}
	}
	if len(seen) < 15 {
		t.Fatalf("RandomK diversity too low: %d distinct", len(seen))
	}
}

func TestFixedKRestrictionStable(t *testing.T) {
	g := gen.Star(20)
	net := NewNetwork(g, WithRestriction(FixedK{K: 5, Seed: 99}))
	c1 := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	c2 := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(4)))
	a := c1.Neighbors(0)
	b := c2.Neighbors(0)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("FixedK sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FixedK must be identical across clients")
		}
	}
	// Cached on repeat: only one charge.
	c1.Neighbors(0)
	if c1.Queries() != 1 {
		t.Fatalf("FixedK should cache: %d", c1.Queries())
	}
}

func TestTruncateLRestriction(t *testing.T) {
	g := gen.Star(20)
	net := NewNetwork(g, WithRestriction(TruncateL{L: 3}))
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(5)))
	nbr := c.Neighbors(0)
	if len(nbr) != 3 {
		t.Fatalf("TruncateL returned %d", len(nbr))
	}
	full := g.Neighbors(0)
	for i := range nbr {
		if nbr[i] != full[i] {
			t.Fatal("TruncateL must return a prefix")
		}
	}
}

func TestEdgeVisibleBidirectionalCheck(t *testing.T) {
	// Star hub truncated to 2 neighbors: edges to trimmed leaves are
	// invisible even though the leaf still lists the hub.
	g := gen.Star(10)
	net := NewNetwork(g, WithRestriction(TruncateL{L: 2}))
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(6)))
	visible := c.Neighbors(0)
	if !c.EdgeVisible(0, int(visible[0])) {
		t.Fatal("listed edge should be visible")
	}
	if c.EdgeVisible(0, 9) {
		t.Fatal("trimmed edge should be invisible")
	}
	// Unrestricted network: all edges visible both ways.
	net2 := NewNetwork(g)
	c2 := NewClient(net2, CostUniqueNodes, rand.New(rand.NewSource(7)))
	if !c2.EdgeVisible(0, 9) || c2.EdgeVisible(1, 2) {
		t.Fatal("unrestricted visibility wrong")
	}
}

func TestRateLimitSimulation(t *testing.T) {
	g := gen.Complete(30)
	net := NewNetwork(g, WithRateLimit(10, 15*time.Minute))
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(8)))
	for v := 0; v < 25; v++ {
		c.Neighbors(v)
	}
	// 25 queries at 10/window: waits after the 11th and 21st.
	if got, want := c.Waited(), 30*time.Minute; got != want {
		t.Fatalf("Waited = %v, want %v", got, want)
	}
}

func TestResetCostAndKnownNodes(t *testing.T) {
	net := testNetwork(t)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(9)))
	c.Neighbors(0)
	c.Neighbors(2)
	if len(c.KnownNodes()) != 2 {
		t.Fatalf("KnownNodes = %v", c.KnownNodes())
	}
	c.ResetCost()
	if c.Queries() != 0 || c.Calls() != 0 || c.Waited() != 0 {
		t.Fatal("ResetCost did not zero counters")
	}
	// Cache survives reset: re-querying 0 is free.
	c.Neighbors(0)
	if c.Queries() != 0 {
		t.Fatal("cache should survive ResetCost")
	}
}

func TestMarkRecapture(t *testing.T) {
	g := gen.Star(101) // hub degree 100
	net := NewNetwork(g, WithRestriction(RandomK{K: 30}))
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(10)))
	est, err := EstimateDegreeMarkRecapture(c, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if est < 70 || est > 130 {
		t.Fatalf("mark-recapture degree = %v, want ~100", est)
	}
	// Tiny overlap case: k=1 out of 100 rarely overlaps, may error — both
	// outcomes acceptable, but no panic.
	net2 := NewNetwork(g, WithRestriction(RandomK{K: 1}))
	c2 := NewClient(net2, CostUniqueNodes, rand.New(rand.NewSource(11)))
	if est2, err2 := EstimateDegreeMarkRecapture(c2, 0, 3); err2 == nil && est2 <= 0 {
		t.Fatal("nonsensical estimate")
	}
}
