package osn

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestSharedCacheUniqueCharging drives N concurrent clients over heavily
// overlapping node sets and checks the CostUniqueNodes contract: each unique
// node is charged exactly once across the fleet, the shared meter equals the
// sum of the per-client meters, and every client still gets correct data.
// Run under -race this also exercises the shard locking.
func TestSharedCacheUniqueCharging(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, rand.New(rand.NewSource(1)))
	net := NewNetwork(g)
	sc := NewSharedCache()

	const workers = 8
	clients := make([]*Client, workers)
	for w := range clients {
		clients[w] = NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(int64(w))), sc)
	}

	// Every worker queries the same shared block [0,100) plus a disjoint
	// private block of 25 nodes, twice each (the repeat must be free).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			for rep := 0; rep < 2; rep++ {
				for v := 0; v < 100; v++ {
					if len(c.Neighbors(v)) != g.Degree(v) {
						t.Errorf("worker %d: wrong neighbor list for %d", w, v)
						return
					}
				}
				for v := 100 + 25*w; v < 100+25*(w+1); v++ {
					c.Neighbors(v)
				}
			}
		}(w)
	}
	wg.Wait()

	unique := int64(100 + 25*workers)
	if sc.Queries() != unique {
		t.Errorf("shared queries = %d, want %d (each unique node charged exactly once)", sc.Queries(), unique)
	}
	if got := int64(sc.UniqueNodes()); got != unique {
		t.Errorf("unique nodes = %d, want %d", got, unique)
	}
	var sum int64
	for _, c := range clients {
		sum += c.Queries()
		if c.TotalQueries() != sc.Queries() {
			t.Errorf("TotalQueries = %d, want shared %d", c.TotalQueries(), sc.Queries())
		}
	}
	if sum != unique {
		t.Errorf("sum of per-client meters = %d, want %d", sum, unique)
	}
	if len(sc.KnownNodes()) != int(unique) {
		t.Errorf("known nodes = %d, want %d", len(sc.KnownNodes()), unique)
	}
}

// TestForkPromotesPrivateCache checks that forking a private client moves its
// cache and accounting into the shared cache: nothing already paid for is
// charged again, by the parent or by the fork.
func TestForkPromotesPrivateCache(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, rand.New(rand.NewSource(2)))
	net := NewNetwork(g)
	c := NewClient(net, CostUniqueNodes, rand.New(rand.NewSource(3)))
	for v := 0; v < 50; v++ {
		c.Neighbors(v)
	}
	if c.Queries() != 50 {
		t.Fatalf("pre-fork queries = %d, want 50", c.Queries())
	}

	child := c.Fork(rand.New(rand.NewSource(4)))
	sc := c.Shared()
	if sc == nil || child.Shared() != sc {
		t.Fatal("fork must attach parent and child to one shared cache")
	}
	if sc.Queries() != 50 {
		t.Fatalf("promotion lost accounting: shared queries = %d, want 50", sc.Queries())
	}
	for v := 0; v < 50; v++ {
		child.Neighbors(v) // all cache hits, free
	}
	if child.Queries() != 0 {
		t.Errorf("child re-charged promoted nodes: %d", child.Queries())
	}
	c.Neighbors(50)
	child.Neighbors(50) // first touched by parent: free for the child
	if got := sc.Queries(); got != 51 {
		t.Errorf("shared queries = %d, want 51", got)
	}
	if c.TotalQueries() != 51 || child.TotalQueries() != 51 {
		t.Errorf("TotalQueries parent/child = %d/%d, want 51/51", c.TotalQueries(), child.TotalQueries())
	}

	// Phase boundary: resetting the fleet meter starts the next phase's
	// TotalQueries from zero, charging only nodes not yet known.
	sc.ResetCost()
	if c.TotalQueries() != 0 {
		t.Errorf("after SharedCache.ResetCost: TotalQueries = %d, want 0", c.TotalQueries())
	}
	child.Neighbors(50) // known node: free
	child.Neighbors(60) // fresh node: one query
	if got := sc.Queries(); got != 1 {
		t.Errorf("post-reset phase cost = %d, want 1", got)
	}
}

// TestSharedCacheAttrCharging checks the profile-fetch accounting path under
// a shared cache: an attribute of a node any sibling has already queried is
// free; a fresh node costs one query.
func TestSharedCacheAttrCharging(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, rand.New(rand.NewSource(5)))
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(i)
	}
	net := NewNetwork(g, WithAttribute("stars", vals))
	sc := NewSharedCache()
	a := NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(6)), sc)
	b := NewClientShared(net, CostUniqueNodes, rand.New(rand.NewSource(7)), sc)

	a.Neighbors(3)
	if v, err := b.Attr("stars", 3); err != nil || v != 3 {
		t.Fatalf("Attr = %v, %v", v, err)
	}
	if sc.Queries() != 1 {
		t.Errorf("attr of already-queried node charged: %d", sc.Queries())
	}
	if _, err := b.Attr("stars", 7); err != nil {
		t.Fatal(err)
	}
	if sc.Queries() != 2 || b.Queries() != 1 {
		t.Errorf("fresh attr fetch: shared=%d client=%d, want 2/1", sc.Queries(), b.Queries())
	}
}
