package walk

import (
	"fmt"
	"repro/internal/fastrand"
	"sync"

	"repro/internal/osn"
)

// ParallelResult aggregates a parallel sampling run: the union of all
// workers' samples and the total query cost across workers.
type ParallelResult struct {
	// Nodes holds all samples, grouped by worker in worker order (the
	// order within a worker is its sampling order).
	Nodes []int
	// PerWorker holds each worker's own result.
	PerWorker []Result
	// TotalQueries sums the workers' query costs. Workers do not share
	// caches — each models an independent crawler (IP/API account), as in
	// the parallel-crawling setups the paper cites.
	TotalQueries int64
}

// ParallelShortRuns runs the many-short-runs sampler on `workers` goroutines,
// each with its own metered client and its own starting node
// (starts[w % len(starts)] — the paper's "multiple starting points in
// practice"). Each worker draws countPer samples. Deterministic per seed.
func ParallelShortRuns(net *osn.Network, d Design, starts []int, countPer int, m Monitor, maxSteps, workers int, seed int64) (ParallelResult, error) {
	if workers < 1 {
		return ParallelResult{}, fmt.Errorf("walk: need >= 1 worker, got %d", workers)
	}
	if len(starts) == 0 {
		return ParallelResult{}, fmt.Errorf("walk: need at least one start node")
	}
	results := make([]Result, workers)
	errs := make([]error, workers)
	clients := make([]*osn.Client, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := fastrand.New(seed + int64(w)*0x9E3779B9 + 1)
			c := osn.NewClient(net, osn.CostUniqueNodes, rng)
			clients[w] = c
			results[w], errs[w] = ManyShortRuns(c, d, starts[w%len(starts)], countPer, m, maxSteps, rng)
		}(w)
	}
	wg.Wait()
	out := ParallelResult{PerWorker: results}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return out, fmt.Errorf("walk: worker %d: %w", w, errs[w])
		}
		out.Nodes = append(out.Nodes, results[w].Nodes...)
		out.TotalQueries += clients[w].Queries()
	}
	return out, nil
}
