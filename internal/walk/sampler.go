package walk

import (
	"fmt"
	"repro/internal/fastrand"

	"repro/internal/osn"
)

// Result is the output of a sampling run. Nodes[i] is the i-th sample;
// Steps[i] the number of walk steps spent on it; CostAfter[i] the client's
// cumulative query cost right after it was taken (the x-axis of the paper's
// error-vs-query-cost figures).
type Result struct {
	Nodes     []int
	Steps     []int
	CostAfter []int64
}

// Len returns the number of samples drawn.
func (r Result) Len() int { return len(r.Nodes) }

// Monitor decides, from the trace of a node attribute along the walk,
// whether the walk has burned in. Geweke implements it; FixedBurnIn gives
// the conservative fixed-length alternative.
type Monitor interface {
	Converged(trace []float64) bool
}

// FixedBurnIn declares convergence after exactly N steps.
type FixedBurnIn struct{ N int }

// Converged implements Monitor.
func (f FixedBurnIn) Converged(trace []float64) bool {
	return len(trace) > f.N // trace includes the start node
}

// ManyShortRuns implements the paper's default sampling scheme (§6.1): for
// each of count samples, walk from start until the monitor declares burn-in
// (the trace fed to the monitor is the visible-degree sequence, the paper's
// typical choice of θ), then take the final node. maxSteps caps each walk
// against monitors that never fire; a capped walk still yields its final
// node, mirroring practice under a finite budget.
func ManyShortRuns(c *osn.Client, d Design, start, count int, m Monitor, maxSteps int, rng fastrand.RNG) (Result, error) {
	if count < 0 {
		return Result{}, fmt.Errorf("walk: negative sample count %d", count)
	}
	if maxSteps < 1 {
		return Result{}, fmt.Errorf("walk: maxSteps must be positive, got %d", maxSteps)
	}
	res := Result{
		Nodes:     make([]int, 0, count),
		Steps:     make([]int, 0, count),
		CostAfter: make([]int64, 0, count),
	}
	trace := make([]float64, 0, 256)
	for s := 0; s < count; s++ {
		u := start
		trace = trace[:0]
		trace = append(trace, float64(c.Degree(u)))
		steps := 0
		for !m.Converged(trace) && steps < maxSteps {
			u = d.Step(c, u, rng)
			trace = append(trace, float64(c.Degree(u)))
			steps++
		}
		res.Nodes = append(res.Nodes, u)
		res.Steps = append(res.Steps, steps)
		res.CostAfter = append(res.CostAfter, c.TotalQueries())
	}
	return res, nil
}

// OneLongRun implements the alternative scheme of §6.1: one walk that burns
// in once (burnIn steps) and then collects every thin-th visited node until
// count samples are gathered. thin = 1 takes every node. The samples are
// correlated; pair with agg.EffectiveSampleSize to account for it.
func OneLongRun(c *osn.Client, d Design, start, burnIn, count, thin int, rng fastrand.RNG) (Result, error) {
	if count < 0 {
		return Result{}, fmt.Errorf("walk: negative sample count %d", count)
	}
	if burnIn < 0 {
		return Result{}, fmt.Errorf("walk: negative burn-in %d", burnIn)
	}
	if thin < 1 {
		return Result{}, fmt.Errorf("walk: thin must be >= 1, got %d", thin)
	}
	res := Result{
		Nodes:     make([]int, 0, count),
		Steps:     make([]int, 0, count),
		CostAfter: make([]int64, 0, count),
	}
	u := start
	for i := 0; i < burnIn; i++ {
		u = d.Step(c, u, rng)
	}
	steps := burnIn
	for len(res.Nodes) < count {
		for i := 0; i < thin; i++ {
			u = d.Step(c, u, rng)
			steps++
		}
		res.Nodes = append(res.Nodes, u)
		res.Steps = append(res.Steps, steps)
		res.CostAfter = append(res.CostAfter, c.TotalQueries())
	}
	return res, nil
}
