package walk

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/osn"
)

// The forward-walk lookahead prefetch must be invisible on every observable
// axis: identical node sequence (it consumes no RNG) and identical query
// and call meters (it never issues a new charged access), whatever the
// shared-cache warmth.
func TestPathLookaheadCostNeutral(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, rand.New(rand.NewSource(42)))
	const start, steps, seed = 0, 200, 9

	// manualPath replicates Path's stepping loop without the lookahead.
	manualPath := func(c *osn.Client, d Design, rng *rand.Rand) []int {
		path := make([]int, 0, steps+1)
		u := start
		path = append(path, u)
		for i := 0; i < steps; i++ {
			u = d.Step(c, u, rng)
			path = append(path, u)
		}
		return path
	}

	for _, warm := range []string{"cold", "half", "full"} {
		for _, d := range []Design{SRW{}, MHRW{}} {
			// Two identical networks over the same graph, so each side has
			// its own cache hierarchy in an identical state.
			mkClient := func() *osn.Client {
				net := osn.NewNetwork(g)
				c := osn.NewClientShared(net, osn.CostUniqueNodes,
					rand.New(rand.NewSource(1)), osn.NewSharedCache())
				var ids []int32
				switch warm {
				case "half":
					for v := 0; v < g.NumNodes()/2; v++ {
						ids = append(ids, int32(v))
					}
				case "full":
					for v := 0; v < g.NumNodes(); v++ {
						ids = append(ids, int32(v))
					}
				}
				if ids != nil {
					// Warm through a sibling so the walking client's L1
					// starts empty and the lookahead has real work to do.
					c.Fork(rand.New(rand.NewSource(2))).Prefetch(ids)
				}
				return c
			}

			cA := mkClient()
			got := Path(cA, d, start, steps, rand.New(rand.NewSource(seed)))
			cB := mkClient()
			want := manualPath(cB, d, rand.New(rand.NewSource(seed)))

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: step %d = %d, want %d (lookahead perturbed the walk)",
						warm, d.Name(), i, got[i], want[i])
				}
			}
			if got, want := cA.TotalQueries(), cB.TotalQueries(); got != want {
				t.Fatalf("%s/%s: lookahead changed query cost: %d vs %d",
					warm, d.Name(), got, want)
			}
			if got, want := cA.Calls(), cB.Calls(); got != want {
				t.Fatalf("%s/%s: lookahead changed call count: %d vs %d",
					warm, d.Name(), got, want)
			}
		}
	}
}

// On a warmed shared cache the lookahead must actually pull entries into
// the L1 (otherwise it is dead code), and PrefetchCached must never charge.
func TestPrefetchCachedPullsWithoutCharging(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rand.New(rand.NewSource(7)))
	net := osn.NewNetwork(g)
	sc := osn.NewSharedCache()
	warmer := osn.NewClientShared(net, osn.CostUniqueNodes, rand.New(rand.NewSource(1)), sc)
	all := make([]int32, g.NumNodes())
	for v := range all {
		all[v] = int32(v)
	}
	warmer.Prefetch(all)

	c := osn.NewClientShared(net, osn.CostUniqueNodes, rand.New(rand.NewSource(2)), sc)
	q0, calls0 := c.Queries(), c.Calls()
	if n := c.PrefetchCached(all[:50]); n != 50 {
		t.Fatalf("PrefetchCached pulled %d of 50 warm entries", n)
	}
	if n := c.PrefetchCached(all[:50]); n != 0 {
		t.Fatalf("second PrefetchCached pulled %d, want 0 (already in L1)", n)
	}
	if c.Queries() != q0 || c.Calls() != calls0 {
		t.Fatalf("PrefetchCached touched the meters: queries %d->%d calls %d->%d",
			q0, c.Queries(), calls0, c.Calls())
	}
	// And via the walk-facing capability: standing at node 0, the whole
	// neighbor frontier is warm, so the lookahead installs the rest.
	if n := c.LookaheadNeighbors(0); n != len(warmer.Neighbors(0)) {
		// Node 0's own list was already pulled above; its neighbors beyond
		// the first 50 ids may or may not be — just require no charge and
		// a sane count.
		if c.Queries() != q0 {
			t.Fatalf("LookaheadNeighbors charged: %d -> %d", q0, c.Queries())
		}
	}
}
