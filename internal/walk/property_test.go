package walk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestPropertyDesignRowsStochastic checks, through the restricted client
// interface, that each design's outgoing transition probabilities sum to 1
// from every node of random graphs.
func TestPropertyDesignRowsStochastic(t *testing.T) {
	prop := func(seed int64, useMHRW bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := gen.ErdosRenyiGNP(n, 0.3, rng)
		c := client(g, seed+1)
		var d Design = SRW{}
		if useMHRW {
			d = MHRW{}
		}
		for u := 0; u < n; u++ {
			sum := d.Prob(c, u, u)
			for _, w := range g.Neighbors(u) {
				sum += d.Prob(c, u, int(w))
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStepSupportsProb verifies every realized step has positive
// transition probability under the design.
func TestPropertyStepSupportsProb(t *testing.T) {
	prop := func(seed int64, useMHRW bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := gen.BarabasiAlbert(n, 2, rng)
		c := client(g, seed+2)
		var d Design = SRW{}
		if useMHRW {
			d = MHRW{}
		}
		u := rng.Intn(n)
		for i := 0; i < 60; i++ {
			v := d.Step(c, u, rng)
			if d.Prob(c, u, v) <= 0 {
				return false
			}
			u = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGewekeScaleInvariance: the Geweke Z statistic is invariant
// under affine transformations of the trace (location shifts cancel in the
// mean difference; scale cancels in the variance normalizer).
func TestPropertyGewekeScaleInvariance(t *testing.T) {
	prop := func(seed int64, scaleRaw, shiftRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + math.Mod(math.Abs(scaleRaw), 10)
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(scale) || math.IsNaN(shift) {
			return true
		}
		trace := make([]float64, 120)
		for i := range trace {
			trace[i] = rng.NormFloat64() + float64(i)*0.01
		}
		scaled := make([]float64, len(trace))
		for i, v := range trace {
			scaled[i] = scale*v + shift
		}
		g := Geweke{}
		z1, z2 := g.Z(trace), g.Z(scaled)
		if math.IsInf(z1, 1) || math.IsInf(z2, 1) {
			return z1 == z2
		}
		return math.Abs(z1-z2) <= 1e-9*(1+math.Abs(z1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
