package walk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestNBWalkerNeverBacktracks(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	g := gen.BarabasiAlbert(100, 3, rng) // min degree 3: backtracking never forced
	c := client(g, 101)
	w := NewNBWalker(0)
	prev, cur := -1, 0
	for i := 0; i < 2000; i++ {
		next := w.Step(c, rng)
		if !g.HasEdge(cur, next) {
			t.Fatalf("NBRW stepped along non-edge %d-%d", cur, next)
		}
		if next == prev {
			t.Fatalf("NBRW backtracked %d -> %d -> %d with degree %d", prev, cur, next, g.Degree(cur))
		}
		prev, cur = cur, next
	}
}

func TestNBWalkerBacktracksOnlyAtLeaves(t *testing.T) {
	// Path graph: interior nodes have degree 2 so the walk sweeps to an end,
	// then must backtrack at the leaf.
	rng := rand.New(rand.NewSource(102))
	g := gen.Path(5)
	c := client(g, 103)
	w := NewNBWalker(0)
	seq := []int{w.Node()}
	for i := 0; i < 8; i++ {
		seq = append(seq, w.Step(c, rng))
	}
	// From 0 the walk must go 0,1,2,3,4 then bounce 3,2,1,0 deterministically.
	want := []int{0, 1, 2, 3, 4, 3, 2, 1, 0}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("NBRW on path: got %v, want %v", seq, want)
		}
	}
}

func TestNBWalkerStranded(t *testing.T) {
	b := gen.Path(1) // single node, no neighbors
	c := client(b, 104)
	w := NewNBWalker(0)
	if got := w.Step(c, rand.New(rand.NewSource(1))); got != 0 {
		t.Fatalf("stranded walker moved to %d", got)
	}
}

func TestNBRWStationaryIsDegreeProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	g := gen.BarabasiAlbert(30, 2, rng)
	c := client(g, 106)
	pi, _ := linalg.SRWStationary(g)
	counts := make([]int, g.NumNodes())
	const walks = 8000
	for i := 0; i < walks; i++ {
		path := NBPath(c, 0, 45, rng)
		counts[path[len(path)-1]]++
	}
	for v, got := range counts {
		want := pi[v] * walks
		if want < 40 {
			continue
		}
		if float64(got) < 0.5*want || float64(got) > 1.9*want {
			t.Errorf("node %d sampled %d, degree-proportional expectation %.0f", v, got, want)
		}
	}
}

func TestNBRWMixesFasterThanSRW(t *testing.T) {
	// Empirical end-node distribution after few steps: NBRW should be
	// closer to stationary than SRW (total variation), its headline
	// property.
	rng := rand.New(rand.NewSource(107))
	g := gen.BarabasiAlbert(60, 3, rng)
	c := client(g, 108)
	pi, _ := linalg.SRWStationary(g)
	const steps, walks = 5, 30000
	tv := func(nb bool) float64 {
		counts := make([]float64, g.NumNodes())
		for i := 0; i < walks; i++ {
			var end int
			if nb {
				p := NBPath(c, 0, steps, rng)
				end = p[len(p)-1]
			} else {
				p := Path(c, SRW{}, 0, steps, rng)
				end = p[len(p)-1]
			}
			counts[end]++
		}
		d := 0.0
		for v := range counts {
			d += math.Abs(counts[v]/walks - pi[v])
		}
		return d / 2
	}
	srwTV := tv(false)
	nbTV := tv(true)
	if nbTV >= srwTV {
		t.Fatalf("NBRW TV %v should beat SRW TV %v at %d steps", nbTV, srwTV, steps)
	}
}

func TestNBManyShortRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	g := gen.BarabasiAlbert(80, 3, rng)
	c := client(g, 110)
	res, err := NBManyShortRuns(c, 0, 12, Geweke{}, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 12 {
		t.Fatalf("samples = %d", res.Len())
	}
	for i := 1; i < res.Len(); i++ {
		if res.CostAfter[i] < res.CostAfter[i-1] {
			t.Fatal("cost must be non-decreasing")
		}
	}
	if _, err := NBManyShortRuns(c, 0, -1, Geweke{}, 10, rng); err == nil {
		t.Error("negative count should error")
	}
	if _, err := NBManyShortRuns(c, 0, 1, Geweke{}, 0, rng); err == nil {
		t.Error("zero maxSteps should error")
	}
}
