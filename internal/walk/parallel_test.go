package walk

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/osn"
)

func TestParallelShortRuns(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, newRng(80))
	net := osn.NewNetwork(g)
	res, err := ParallelShortRuns(net, SRW{}, []int{0, 5, 9}, 8, Geweke{}, 500, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 32 {
		t.Fatalf("total samples = %d, want 32", len(res.Nodes))
	}
	if len(res.PerWorker) != 4 {
		t.Fatalf("workers = %d", len(res.PerWorker))
	}
	for w, r := range res.PerWorker {
		if r.Len() != 8 {
			t.Fatalf("worker %d samples = %d", w, r.Len())
		}
	}
	if res.TotalQueries <= 0 {
		t.Fatal("queries should be charged")
	}
	for _, v := range res.Nodes {
		if v < 0 || v >= g.NumNodes() {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestParallelShortRunsDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, newRng(81))
	net := osn.NewNetwork(g)
	a, err := ParallelShortRuns(net, SRW{}, []int{0}, 5, FixedBurnIn{N: 10}, 100, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelShortRuns(net, SRW{}, []int{0}, 5, FixedBurnIn{N: 10}, 100, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a.PerWorker {
		for i := range a.PerWorker[w].Nodes {
			if a.PerWorker[w].Nodes[i] != b.PerWorker[w].Nodes[i] {
				t.Fatal("same seed must reproduce per-worker samples")
			}
		}
	}
}

func TestParallelShortRunsErrors(t *testing.T) {
	g := gen.Cycle(5)
	net := osn.NewNetwork(g)
	if _, err := ParallelShortRuns(net, SRW{}, []int{0}, 1, Geweke{}, 10, 0, 1); err == nil {
		t.Error("zero workers should error")
	}
	if _, err := ParallelShortRuns(net, SRW{}, nil, 1, Geweke{}, 10, 1, 1); err == nil {
		t.Error("no starts should error")
	}
	// Worker error propagates (invalid maxSteps).
	if _, err := ParallelShortRuns(net, SRW{}, []int{0}, 1, Geweke{}, 0, 2, 1); err == nil {
		t.Error("worker error should propagate")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
