package walk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/osn"
)

func client(g *graph.Graph, seed int64) *osn.Client {
	net := osn.NewNetwork(g)
	return osn.NewClient(net, osn.CostUniqueNodes, rand.New(rand.NewSource(seed)))
}

func TestSRWStepStaysOnGraph(t *testing.T) {
	g := gen.Cycle(10)
	c := client(g, 1)
	rng := rand.New(rand.NewSource(2))
	u := 0
	for i := 0; i < 100; i++ {
		v := SRW{}.Step(c, u, rng)
		if !g.HasEdge(u, v) {
			t.Fatalf("SRW stepped along non-edge %d-%d", u, v)
		}
		u = v
	}
}

func TestSRWProbMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(40, 3, rng)
	c := client(g, 4)
	m := linalg.NewSRW(g)
	for u := 0; u < g.NumNodes(); u += 7 {
		for v := 0; v < g.NumNodes(); v += 5 {
			want := m.Prob(u, v)
			got := SRW{}.Prob(c, u, v)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("SRW Prob(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestMHRWProbMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.BarabasiAlbert(40, 3, rng)
	c := client(g, 6)
	m := linalg.NewMHRW(g)
	for u := 0; u < g.NumNodes(); u += 3 {
		for v := 0; v < g.NumNodes(); v += 4 {
			want := m.Prob(u, v)
			got := MHRW{}.Prob(c, u, v)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("MHRW Prob(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
		// Self-loop row entries.
		want := m.Prob(u, u)
		got := MHRW{}.Prob(c, u, u)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("MHRW Prob(%d,%d) = %v, want %v", u, u, got, want)
		}
	}
}

// Empirical one-step distribution of Step must match Prob.
func TestStepMatchesProbEmpirically(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	for _, d := range []Design{SRW{}, MHRW{}} {
		c := client(g, 7)
		rng := rand.New(rand.NewSource(8))
		const trials = 200000
		counts := make(map[int]int)
		for i := 0; i < trials; i++ {
			counts[d.Step(c, 2, rng)]++
		}
		for v := 0; v < 4; v++ {
			want := d.Prob(c, 2, v)
			got := float64(counts[v]) / trials
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%s: empirical p(2->%d) = %v, want %v", d.Name(), v, got, want)
			}
		}
	}
}

func TestMHRWConvergesToUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.BarabasiAlbert(30, 2, rng)
	c := client(g, 10)
	counts := make([]int, g.NumNodes())
	const walks = 6000
	for i := 0; i < walks; i++ {
		path := Path(c, MHRW{}, 0, 60, rng)
		counts[path[len(path)-1]]++
	}
	// Every node should appear with roughly uniform frequency.
	want := float64(walks) / float64(g.NumNodes())
	for v, got := range counts {
		if float64(got) < 0.3*want || float64(got) > 2.5*want {
			t.Errorf("node %d sampled %d times, uniform expectation %.0f", v, got, want)
		}
	}
}

func TestSRWConvergesToDegreeProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.BarabasiAlbert(30, 2, rng)
	c := client(g, 12)
	pi, _ := linalg.SRWStationary(g)
	counts := make([]int, g.NumNodes())
	const walks = 8000
	for i := 0; i < walks; i++ {
		path := Path(c, SRW{}, 0, 61, rng) // odd length washes out parity
		counts[path[len(path)-1]]++
	}
	for v, got := range counts {
		want := pi[v] * walks
		if want < 30 {
			continue // too rare for a tight check
		}
		if float64(got) < 0.5*want || float64(got) > 1.8*want {
			t.Errorf("node %d sampled %d, stationary expectation %.0f", v, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SRW", "srw", "MHRW", "mhrw"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should error")
	}
	if (SRW{}).SelfLoops() || !(MHRW{}).SelfLoops() {
		t.Error("SelfLoops flags wrong")
	}
}

func TestTargetWeights(t *testing.T) {
	g := gen.Star(5)
	c := client(g, 13)
	if w := (SRW{}).TargetWeight(c, 0); w != 4 {
		t.Errorf("SRW hub weight = %v, want 4", w)
	}
	if w := (MHRW{}).TargetWeight(c, 0); w != 1 {
		t.Errorf("MHRW weight = %v, want 1", w)
	}
}

func TestGewekeZ(t *testing.T) {
	g := Geweke{}
	// Too short.
	if !math.IsInf(g.Z([]float64{1, 2, 3}), 1) {
		t.Error("short trace should give +Inf")
	}
	// Identical constant windows converge.
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 5
	}
	if z := g.Z(flat); z != 0 {
		t.Errorf("flat trace Z = %v, want 0", z)
	}
	if !g.Converged(flat) {
		t.Error("flat trace should converge")
	}
	// Strong trend: early window differs from late window.
	trend := make([]float64, 100)
	for i := range trend {
		trend[i] = float64(i)
	}
	if g.Converged(trend) {
		t.Errorf("trending trace should not converge (Z=%v)", g.Z(trend))
	}
	// Standardized variant is stricter (larger Z) on noisy-but-drifting data.
	noisy := make([]float64, 200)
	rng := rand.New(rand.NewSource(14))
	for i := range noisy {
		noisy[i] = rng.NormFloat64() + float64(i)*0.01
	}
	plain := Geweke{}.Z(noisy)
	std := Geweke{Standardized: true}.Z(noisy)
	if std <= plain {
		t.Errorf("standardized Z (%v) should exceed plain Z (%v)", std, plain)
	}
}

func TestGewekeMinSteps(t *testing.T) {
	g := Geweke{MinSteps: 50}
	flat := make([]float64, 30)
	if g.Converged(flat) {
		t.Error("MinSteps must gate convergence")
	}
}

func TestManyShortRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := gen.BarabasiAlbert(50, 3, rng)
	c := client(g, 16)
	res, err := ManyShortRuns(c, SRW{}, 0, 10, Geweke{}, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("samples = %d, want 10", res.Len())
	}
	for i, v := range res.Nodes {
		if v < 0 || v >= g.NumNodes() {
			t.Fatalf("sample %d out of range: %d", i, v)
		}
		if res.Steps[i] < 1 || res.Steps[i] > 500 {
			t.Fatalf("steps[%d] = %d", i, res.Steps[i])
		}
	}
	// Cost checkpoints are non-decreasing.
	for i := 1; i < res.Len(); i++ {
		if res.CostAfter[i] < res.CostAfter[i-1] {
			t.Fatal("cost checkpoints must be non-decreasing")
		}
	}
}

func TestManyShortRunsFixedBurnIn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.Cycle(20)
	c := client(g, 18)
	res, err := ManyShortRuns(c, SRW{}, 0, 5, FixedBurnIn{N: 7}, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Steps {
		if s != 7 {
			t.Fatalf("sample %d used %d steps, want exactly 7", i, s)
		}
	}
}

func TestManyShortRunsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := gen.Cycle(5)
	c := client(g, 20)
	if _, err := ManyShortRuns(c, SRW{}, 0, -1, Geweke{}, 10, rng); err == nil {
		t.Error("negative count should error")
	}
	if _, err := ManyShortRuns(c, SRW{}, 0, 1, Geweke{}, 0, rng); err == nil {
		t.Error("zero maxSteps should error")
	}
}

func TestOneLongRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.BarabasiAlbert(50, 3, rng)
	c := client(g, 22)
	res, err := OneLongRun(c, SRW{}, 0, 20, 15, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 15 {
		t.Fatalf("samples = %d", res.Len())
	}
	// Steps advance by exactly thin per sample after burn-in.
	for i, s := range res.Steps {
		want := 20 + 3*(i+1)
		if s != want {
			t.Fatalf("steps[%d] = %d, want %d", i, s, want)
		}
	}
	// One long run reuses the walk: its total step count is far below
	// many-short-runs at the same sample count with the same burn-in.
	if res.Steps[len(res.Steps)-1] >= 15*20 {
		t.Error("one long run should amortize burn-in")
	}
}

func TestOneLongRunErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.Cycle(5)
	c := client(g, 24)
	if _, err := OneLongRun(c, SRW{}, 0, -1, 5, 1, rng); err == nil {
		t.Error("negative burn-in should error")
	}
	if _, err := OneLongRun(c, SRW{}, 0, 1, -5, 1, rng); err == nil {
		t.Error("negative count should error")
	}
	if _, err := OneLongRun(c, SRW{}, 0, 1, 5, 0, rng); err == nil {
		t.Error("zero thin should error")
	}
}

func TestPathLengthAndStart(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := gen.Cycle(9)
	c := client(g, 26)
	p := Path(c, SRW{}, 4, 12, rng)
	if len(p) != 13 || p[0] != 4 {
		t.Fatalf("path len=%d start=%d", len(p), p[0])
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path hop %d-%d not an edge", p[i-1], p[i])
		}
	}
}
