package walk

import (
	"fmt"
	"repro/internal/fastrand"

	"repro/internal/osn"
)

// NBWalker is the non-backtracking random walk of Lee, Xu and Eun
// (SIGMETRICS 2012), the related-work baseline the paper cites ([24]):
// from the current node, step to a uniformly random neighbor *other than the
// one just came from* (falling back to backtracking only at degree-1 nodes).
// The chain lives on directed edges, but its node-occupancy marginal is the
// same degree-proportional distribution as SRW, with faster mixing and lower
// asymptotic estimator variance.
//
// Because the state is an edge rather than a node, the backward
// probability-estimator of WALK-ESTIMATE does not directly apply; NBRW is
// provided as a baseline sampler (and as a better input for one-long-run
// style usage), not as a WE input design.
type NBWalker struct {
	cur  int
	prev int // -1 before the first step
}

// NewNBWalker starts a non-backtracking walk at the given node.
func NewNBWalker(start int) *NBWalker {
	return &NBWalker{cur: start, prev: -1}
}

// Node returns the walker's current node.
func (w *NBWalker) Node() int { return w.cur }

// Step advances one non-backtracking step and returns the new node.
func (w *NBWalker) Step(c *osn.Client, rng fastrand.RNG) int {
	nbr := c.Neighbors(w.cur)
	switch len(nbr) {
	case 0:
		return w.cur // stranded; stay
	case 1:
		w.prev, w.cur = w.cur, int(nbr[0]) // must backtrack at leaves
		return w.cur
	}
	// Uniform over neighbors excluding prev (if present among them).
	for {
		next := int(nbr[rng.Intn(len(nbr))])
		if next != w.prev {
			w.prev, w.cur = w.cur, next
			return w.cur
		}
	}
}

// NBPath performs a fixed-length non-backtracking walk and returns the
// visited nodes (path[0] = start).
func NBPath(c *osn.Client, start, steps int, rng fastrand.RNG) []int {
	w := NewNBWalker(start)
	path := make([]int, steps+1)
	path[0] = start
	for i := 1; i <= steps; i++ {
		path[i] = w.Step(c, rng)
	}
	return path
}

// NBManyShortRuns is ManyShortRuns with the non-backtracking walk: one walk
// per sample, each run until the monitor declares burn-in on the visible-
// degree trace.
func NBManyShortRuns(c *osn.Client, start, count int, m Monitor, maxSteps int, rng fastrand.RNG) (Result, error) {
	if count < 0 {
		return Result{}, fmt.Errorf("walk: negative sample count %d", count)
	}
	if maxSteps < 1 {
		return Result{}, fmt.Errorf("walk: maxSteps must be positive, got %d", maxSteps)
	}
	res := Result{
		Nodes:     make([]int, 0, count),
		Steps:     make([]int, 0, count),
		CostAfter: make([]int64, 0, count),
	}
	trace := make([]float64, 0, 256)
	for s := 0; s < count; s++ {
		w := NewNBWalker(start)
		trace = trace[:0]
		trace = append(trace, float64(c.Degree(start)))
		steps := 0
		for !m.Converged(trace) && steps < maxSteps {
			u := w.Step(c, rng)
			trace = append(trace, float64(c.Degree(u)))
			steps++
		}
		res.Nodes = append(res.Nodes, w.Node())
		res.Steps = append(res.Steps, steps)
		res.CostAfter = append(res.CostAfter, c.TotalQueries())
	}
	return res, nil
}
