package walk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/osn"
)

func TestGelmanRubinIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	chains := make([][]float64, 4)
	for i := range chains {
		chains[i] = make([]float64, 500)
		for j := range chains[i] {
			chains[i][j] = rng.NormFloat64()
		}
	}
	r, err := GelmanRubin(chains)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 || r > 1.1 {
		t.Fatalf("R̂ = %v for iid chains, want ≈1", r)
	}
}

func TestGelmanRubinDivergentChains(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	chains := make([][]float64, 3)
	for i := range chains {
		chains[i] = make([]float64, 200)
		for j := range chains[i] {
			chains[i][j] = rng.NormFloat64() + float64(i)*50 // far-apart means
		}
	}
	r, err := GelmanRubin(chains)
	if err != nil {
		t.Fatal(err)
	}
	if r < 5 {
		t.Fatalf("R̂ = %v for divergent chains, want >> 1", r)
	}
}

func TestGelmanRubinEdgeCases(t *testing.T) {
	if _, err := GelmanRubin([][]float64{{1, 2}}); err == nil {
		t.Error("single chain should error")
	}
	if _, err := GelmanRubin([][]float64{{1}, {2}}); err == nil {
		t.Error("length-1 chains should error")
	}
	if _, err := GelmanRubin([][]float64{{1, 2, 3}, {1, 2}}); err == nil {
		t.Error("ragged chains should error")
	}
	// Constant identical chains converge trivially.
	r, err := GelmanRubin([][]float64{{5, 5, 5}, {5, 5, 5}})
	if err != nil || r != 1 {
		t.Fatalf("constant chains R̂ = %v, %v", r, err)
	}
	// Constant chains at different levels can never mix.
	r, err = GelmanRubin([][]float64{{1, 1, 1}, {2, 2, 2}})
	if err != nil || !math.IsInf(r, 1) {
		t.Fatalf("split constant chains R̂ = %v, %v", r, err)
	}
}

func TestGelmanRubinMonitorOnWalks(t *testing.T) {
	// Parallel SRW chains from different starts on a well-connected graph
	// should satisfy R̂ after enough steps.
	rng := rand.New(rand.NewSource(92))
	g := gen.BarabasiAlbert(200, 4, rng)
	net := osn.NewNetwork(g)
	const m, steps = 4, 400
	chains := make([][]float64, m)
	for i := 0; i < m; i++ {
		c := osn.NewClient(net, osn.CostUniqueNodes, rng)
		path := Path(c, SRW{}, i*37%g.NumNodes(), steps, rng)
		trace := make([]float64, len(path))
		for j, v := range path {
			trace[j] = float64(g.Degree(v))
		}
		chains[i] = trace
	}
	mon := GelmanRubinMonitor{}
	if !mon.Converged(chains) {
		r, _ := GelmanRubin(chains)
		t.Fatalf("long parallel chains should converge (R̂ = %v)", r)
	}
	// Short chains gated by MinSteps.
	short := [][]float64{{1, 2}, {1, 2}}
	if (GelmanRubinMonitor{MinSteps: 10}).Converged(short) {
		t.Error("MinSteps must gate")
	}
	// Error inputs report not-converged rather than panicking.
	if (GelmanRubinMonitor{MinSteps: 1}).Converged([][]float64{{1, 2, 3}}) {
		t.Error("single chain cannot converge")
	}
}
