package walk

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// GelmanRubin computes the potential scale reduction factor R̂ of Gelman and
// Rubin — the multi-chain convergence diagnostic the paper lists alongside
// Geweke (Section 8, [11]). Given m >= 2 chains of equal length n holding an
// attribute trace each (e.g. degrees along parallel walks from different
// starts), it returns
//
//	R̂ = sqrt( ((n−1)/n · W + B/n) / W )
//
// with W the mean within-chain variance and B/n the between-chain variance
// of the chain means. Values near 1 indicate the chains have mixed into the
// same distribution; the conventional threshold is R̂ < 1.1.
func GelmanRubin(chains [][]float64) (float64, error) {
	m := len(chains)
	if m < 2 {
		return 0, fmt.Errorf("walk: Gelman-Rubin needs >= 2 chains, got %d", m)
	}
	n := len(chains[0])
	if n < 2 {
		return 0, fmt.Errorf("walk: Gelman-Rubin needs chains of length >= 2, got %d", n)
	}
	for i, c := range chains {
		if len(c) != n {
			return 0, fmt.Errorf("walk: chain %d has length %d, want %d", i, len(c), n)
		}
	}
	var within mathx.Moments // of per-chain variances (we need the mean)
	var means mathx.Moments  // of per-chain means (we need the variance)
	for _, c := range chains {
		var mo mathx.Moments
		for _, v := range c {
			mo.Add(v)
		}
		within.Add(mo.Variance())
		means.Add(mo.Mean())
	}
	w := within.Mean()
	b := float64(n) * means.Variance()
	if w == 0 {
		if b == 0 {
			return 1, nil // all chains constant and identical
		}
		return math.Inf(1), nil // constant chains at different values
	}
	varPlus := (float64(n-1)/float64(n))*w + b/float64(n)
	return math.Sqrt(varPlus / w), nil
}

// GelmanRubinMonitor adapts R̂ to the multi-chain stopping problem: feed it
// the growing traces of parallel walks and it reports convergence once
// R̂ <= Threshold (default 1.1) with at least MinSteps (default 20) per
// chain.
type GelmanRubinMonitor struct {
	Threshold float64
	MinSteps  int
}

// Converged reports whether the chains satisfy the R̂ criterion.
func (g GelmanRubinMonitor) Converged(chains [][]float64) bool {
	min := g.MinSteps
	if min <= 0 {
		min = 20
	}
	for _, c := range chains {
		if len(c) < min {
			return false
		}
	}
	thr := g.Threshold
	if thr <= 0 {
		thr = 1.1
	}
	r, err := GelmanRubin(chains)
	if err != nil {
		return false
	}
	return r <= thr
}
