// Package walk implements the traditional random-walk machinery of Section 2:
// transition designs (Simple Random Walk, Metropolis–Hastings Random Walk),
// stepping over the restricted osn interface, the Geweke convergence monitor,
// and the classic samplers WALK-ESTIMATE is benchmarked against — many short
// runs with burn-in, and the one-long-run scheme of Section 6.1.
package walk

import (
	"fmt"

	"repro/internal/fastrand"
)

// View is the neighbor-access surface a transition design needs: on the
// sampling paths it is the metered *osn.Client (so query accounting stays
// faithful), while tests and offline tooling may drive a design directly
// over a raw osn.Backend or any other adjacency source.
type View interface {
	// Neighbors returns the visible neighbor list of v (not to be modified).
	Neighbors(v int) []int32
	// Degree returns |Neighbors(v)|.
	Degree(v int) int
}

// Design is an MCMC transition design driven purely through the restricted
// local-neighborhood interface. Implementations must only learn about the
// graph via the provided View so query accounting stays faithful when the
// view is a metered client.
type Design interface {
	// Name identifies the design in logs and experiment output.
	Name() string

	// Step samples the next node of the walk from u. It may stay at u
	// (self-loop) where the design prescribes so.
	Step(c View, u int, rng fastrand.RNG) int

	// Prob returns the transition probability p(u→v) computed from local
	// information (degrees of u and v at most). v may equal u, in which
	// case the self-loop probability is returned — note that for MHRW this
	// requires querying all neighbors of u.
	Prob(c View, u, v int) float64

	// SelfLoops reports whether the design can remain in place, i.e.
	// whether u itself must be considered a predecessor candidate by the
	// backward estimator.
	SelfLoops() bool

	// TargetWeight returns the unnormalized stationary density q(v) the
	// design converges to: d(v) for SRW, 1 for MHRW. Rejection sampling
	// only needs ratios, so no normalization constant is required.
	TargetWeight(c View, v int) float64
}

// SRW is the Simple Random Walk of Definition 1: from u, move to a uniformly
// random neighbor. Its stationary distribution is proportional to degree.
type SRW struct{}

// Name implements Design.
func (SRW) Name() string { return "SRW" }

// Step implements Design. A node with no visible neighbors (possible under
// §6.3.1 restrictions) keeps the walk in place.
func (SRW) Step(c View, u int, rng fastrand.RNG) int {
	nbr := c.Neighbors(u)
	if len(nbr) == 0 {
		return u
	}
	return int(nbr[rng.Intn(len(nbr))])
}

// Prob implements Design.
func (SRW) Prob(c View, u, v int) float64 {
	nbr := c.Neighbors(u)
	if len(nbr) == 0 {
		if u == v {
			return 1
		}
		return 0
	}
	if u == v {
		return 0
	}
	for _, w := range nbr {
		if int(w) == v {
			return 1 / float64(len(nbr))
		}
	}
	return 0
}

// SelfLoops implements Design: SRW never stays (except at stranded nodes).
func (SRW) SelfLoops() bool { return false }

// TargetWeight implements Design: SRW's stationary distribution is
// proportional to degree.
func (SRW) TargetWeight(c View, v int) float64 {
	return float64(c.Degree(v))
}

// MHRW is the Metropolis–Hastings Random Walk of Definition 2 with uniform
// target distribution: propose a uniform neighbor v, accept with probability
// min{1, |N(u)|/|N(v)|}, otherwise stay.
type MHRW struct{}

// Name implements Design.
func (MHRW) Name() string { return "MHRW" }

// Step implements Design.
func (MHRW) Step(c View, u int, rng fastrand.RNG) int {
	nbr := c.Neighbors(u)
	if len(nbr) == 0 {
		return u
	}
	v := int(nbr[rng.Intn(len(nbr))])
	du, dv := len(nbr), c.Degree(v)
	if dv == 0 {
		return u
	}
	if du >= dv || rng.Float64()*float64(dv) < float64(du) {
		return v
	}
	return u
}

// Prob implements Design. The self-loop probability p(u→u) requires the
// degree of every neighbor of u; the client charges those queries, exactly
// as a real crawler would pay them.
func (MHRW) Prob(c View, u, v int) float64 {
	nbr := c.Neighbors(u)
	if len(nbr) == 0 {
		if u == v {
			return 1
		}
		return 0
	}
	du := float64(len(nbr))
	if u == v {
		stay := 1.0
		for _, w := range nbr {
			dw := float64(c.Degree(int(w)))
			if dw == 0 {
				continue
			}
			stay -= minf(1/du, 1/dw)
		}
		if stay < 0 {
			return 0
		}
		return stay
	}
	for _, w := range nbr {
		if int(w) == v {
			dv := float64(c.Degree(v))
			if dv == 0 {
				return 0
			}
			return minf(1/du, 1/dv)
		}
	}
	return 0
}

// SelfLoops implements Design.
func (MHRW) SelfLoops() bool { return true }

// TargetWeight implements Design: MHRW targets the uniform distribution.
func (MHRW) TargetWeight(View, int) float64 { return 1 }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ByName returns the design with the given name ("SRW" or "MHRW").
func ByName(name string) (Design, error) {
	switch name {
	case "SRW", "srw":
		return SRW{}, nil
	case "MHRW", "mhrw":
		return MHRW{}, nil
	}
	return nil, fmt.Errorf("walk: unknown design %q", name)
}

// EdgeProbKind classifies designs whose along-edge transition probability
// p(u→v) is a pure function of the endpoint degrees. The backward estimator
// computes p(w→node) once per backward step; for SRW and MHRW it already
// holds both neighbor lists (node's from the candidate scan, w's because the
// next step needs it), so when the client's view is symmetric
// (osn.Client.SymmetricView — edge existence is then implied by how the
// candidate was drawn) the probability follows from the two cached degrees
// with no extra Neighbors call, membership scan, or interface dispatch.
type EdgeProbKind uint8

const (
	// EdgeProbNone means the design has no degree-only closed form; use
	// Design.Prob.
	EdgeProbNone EdgeProbKind = iota
	// EdgeProbSRW: p(u→v) = 1/d(u) along any edge {u,v}.
	EdgeProbSRW
	// EdgeProbMHRW: p(u→v) = min(1/d(u), 1/d(v)) along any edge {u,v},
	// u ≠ v (the self-loop probability still needs the full Prob).
	EdgeProbMHRW
)

// EdgeProbKindOf returns the degree-only fast-path classification of d.
func EdgeProbKindOf(d Design) EdgeProbKind {
	switch d.(type) {
	case SRW:
		return EdgeProbSRW
	case MHRW:
		return EdgeProbMHRW
	}
	return EdgeProbNone
}

// Prob returns p(u→v) for an existing edge {u,v}, u ≠ v, given the visible
// degrees du = |N(u)| > 0 and dv = |N(v)| > 0. Results are bit-identical to
// the corresponding Design.Prob membership-scan path. Must not be called on
// EdgeProbNone.
func (k EdgeProbKind) Prob(du, dv int) float64 {
	if k == EdgeProbSRW {
		return 1 / float64(du)
	}
	return minf(1/float64(du), 1/float64(dv))
}

// ProbsInto is the batched form of Prob for the vectorized step kernel: it
// fills out[i] = Prob(du[i], dv[i]) for a dense vector of edge-degree pairs
// in one branch-hoisted pass (the kind test runs once, not per edge). Same
// preconditions as Prob — existing edges, positive visible degrees, not
// EdgeProbNone — and bit-identical results. No-op on empty input, so callers
// may pass the gathered fast-path lanes unconditionally.
func (k EdgeProbKind) ProbsInto(du, dv []int32, out []float64) {
	if k == EdgeProbSRW {
		for i, d := range du {
			out[i] = 1 / float64(d)
		}
		return
	}
	for i, d := range du {
		out[i] = minf(1/float64(d), 1/float64(dv[i]))
	}
}

// Path performs a fixed-length walk and returns the visited nodes
// (path[0] = start, len = steps+1).
func Path(c View, d Design, start, steps int, rng fastrand.RNG) []int {
	return PathInto(nil, c, d, start, steps, rng)
}

// PathInto is Path writing into buf (grown when too small), so a sampler
// that records one path after another — the WALK-ESTIMATE forward stage
// runs millions of them — reuses a single buffer instead of allocating
// per walk. The returned slice aliases buf's backing array and is valid
// until the next PathInto call with the same buffer. Identical walk, RNG
// stream, and meter behavior to Path.
func PathInto(buf []int, c View, d Design, start, steps int, rng fastrand.RNG) []int {
	if cap(buf) < steps+1 {
		buf = make([]int, steps+1)
	}
	path := buf[:steps+1]
	path[0] = start
	u := start
	// Lookahead prefetch for the sequential forward walk: before stepping
	// from u, pull the already-paid-for entries among u's neighbors — the
	// only nodes this step can move to — from the shared cache into the
	// client's L1 in one batched pass. LookaheadNeighbors never issues new
	// charged queries and consumes no RNG (it is a no-op for private clients
	// and under type-1 restrictions), so paths, meters, and every
	// determinism contract are unchanged; only per-step lock traffic is
	// amortized once a fleet or a long-lived service has warmed the cache.
	la, _ := c.(lookaheadView)
	for i := 1; i <= steps; i++ {
		if la != nil {
			la.LookaheadNeighbors(u)
		}
		u = d.Step(c, u, rng)
		path[i] = u
	}
	return path
}

// lookaheadView is the optional cost-free prefetch capability of a View
// (implemented by *osn.Client): batch-install the cached entries among u's
// neighbors into the caller's L1 without charging anything.
type lookaheadView interface {
	LookaheadNeighbors(u int) int
}
