package walk

import (
	"math"

	"repro/internal/mathx"
)

// Geweke is the convergence monitor of Section 2.2.3: over the trace of a
// node attribute (typically degree) along the walk, it compares Window A
// (the first 10% of steps) against Window B (the last 50%) with
//
//	Z = |mean_A − mean_B| / sqrt(S_A + S_B)
//
// and declares burn-in once Z <= Threshold. The paper's defaults are
// Threshold = 0.1 (with 0.01 as the strict variant).
//
// Note on S_A, S_B: the paper's Equation (4) uses the window variances
// directly. Standardized selects the textbook Geweke variant that divides
// each variance by its window length (making Z an asymptotic N(0,1)
// statistic); it is stricter and is used in sensitivity experiments.
type Geweke struct {
	// Threshold is the Z value at or below which the walk is declared
	// converged. Zero means the paper default of 0.1.
	Threshold float64
	// MinSteps is the minimum trace length before the monitor may fire.
	// Zero means the default of 20.
	MinSteps int
	// Standardized divides window variances by window lengths (see above).
	Standardized bool
}

// threshold returns the effective threshold.
func (g Geweke) threshold() float64 {
	if g.Threshold <= 0 {
		return 0.1
	}
	return g.Threshold
}

func (g Geweke) minSteps() int {
	if g.MinSteps <= 0 {
		return 20
	}
	return g.MinSteps
}

// Z computes the Geweke statistic for the trace, or +Inf when the trace is
// too short or degenerate.
func (g Geweke) Z(trace []float64) float64 {
	n := len(trace)
	if n < 10 {
		return math.Inf(1)
	}
	aLen := n / 10
	if aLen < 2 {
		aLen = 2
	}
	bLen := n / 2
	if bLen < 2 {
		bLen = 2
	}
	var a, b mathx.Moments
	for _, v := range trace[:aLen] {
		a.Add(v)
	}
	for _, v := range trace[n-bLen:] {
		b.Add(v)
	}
	va, vb := a.Variance(), b.Variance()
	if g.Standardized {
		va /= float64(aLen)
		vb /= float64(bLen)
	}
	denom := math.Sqrt(va + vb)
	if denom == 0 {
		// Constant windows: converged iff the means agree.
		if a.Mean() == b.Mean() {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a.Mean()-b.Mean()) / denom
}

// Converged reports whether the trace satisfies the Geweke criterion.
func (g Geweke) Converged(trace []float64) bool {
	if len(trace) < g.minSteps() {
		return false
	}
	return g.Z(trace) <= g.threshold()
}
