// Package linalg implements the Markov-chain linear algebra behind the
// paper's analysis: sparse row-stochastic transition matrices for the walk
// designs (Definitions 1 and 2), exact sampling-distribution evolution
// p_{t} = p_{t-1}·T, stationary distributions, the relative point-wise
// distance Δ(t) (Definition 3), burn-in computation, and the spectral gap
// λ = 1 − s₂ via deflated power iteration on the symmetrized chain.
//
// Everything here has full knowledge of the graph topology; it exists to
// provide ground truth ("oracles") for the IDEAL-WALK analysis and for
// validating the query-limited samplers, exactly as the paper's theoretical
// sections do.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Matrix is a sparse row-stochastic transition matrix in CSR form. Rows
// correspond to the current node, columns to the next node, so distribution
// evolution is the left product p·T.
type Matrix struct {
	n      int
	rowPtr []int32
	colIdx []int32
	vals   []float64
}

// NumNodes returns the number of states (graph nodes).
func (m *Matrix) NumNodes() int { return m.n }

// NNZ returns the number of stored (non-zero) transition entries.
func (m *Matrix) NNZ() int { return len(m.vals) }

// Row returns the column indices and values of row u. The slices alias
// internal storage and must not be modified.
func (m *Matrix) Row(u int) ([]int32, []float64) {
	lo, hi := m.rowPtr[u], m.rowPtr[u+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// Prob returns T(u,v), the probability of transiting from u to v.
func (m *Matrix) Prob(u, v int) float64 {
	cols, vals := m.Row(u)
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(v) })
	if i < len(cols) && cols[i] == int32(v) {
		return vals[i]
	}
	return 0
}

// CheckRowStochastic verifies every row sums to 1 within tol and has
// non-negative entries. Used by tests and defensive callers.
func (m *Matrix) CheckRowStochastic(tol float64) error {
	for u := 0; u < m.n; u++ {
		_, vals := m.Row(u)
		sum := 0.0
		for _, v := range vals {
			if v < 0 {
				return fmt.Errorf("linalg: negative entry in row %d", u)
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("linalg: row %d sums to %v", u, sum)
		}
	}
	return nil
}

// NewSRW builds the Simple Random Walk transition matrix (Definition 1):
// T(u,v) = 1/|N(u)| for v in N(u). Isolated nodes get a self-loop of 1 so the
// matrix stays stochastic.
func NewSRW(g *graph.Graph) *Matrix {
	n := g.NumNodes()
	m := &Matrix{n: n, rowPtr: make([]int32, n+1)}
	nnz := 0
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		if d == 0 {
			nnz++
		} else {
			nnz += d
		}
		m.rowPtr[u+1] = int32(nnz)
	}
	m.colIdx = make([]int32, nnz)
	m.vals = make([]float64, nnz)
	for u := 0; u < n; u++ {
		at := m.rowPtr[u]
		nbr := g.Neighbors(u)
		if len(nbr) == 0 {
			m.colIdx[at] = int32(u)
			m.vals[at] = 1
			continue
		}
		p := 1 / float64(len(nbr))
		for i, w := range nbr {
			m.colIdx[at+int32(i)] = w
			m.vals[at+int32(i)] = p
		}
	}
	return m
}

// NewMHRW builds the Metropolis–Hastings Random Walk transition matrix with
// uniform target distribution (Definition 2):
//
//	T(u,v) = (1/|N(u)|)·min{1, |N(u)|/|N(v)|}  for v in N(u)
//	T(u,u) = 1 − Σ_w T(u,w)
//
// Self-loop entries are stored explicitly (they matter for the backward
// estimator). Isolated nodes get a self-loop of 1.
func NewMHRW(g *graph.Graph) *Matrix {
	n := g.NumNodes()
	m := &Matrix{n: n, rowPtr: make([]int32, n+1)}
	nnz := 0
	for u := 0; u < n; u++ {
		nnz += g.Degree(u) + 1 // always room for the self-loop
		m.rowPtr[u+1] = int32(nnz)
	}
	m.colIdx = make([]int32, 0, nnz)
	m.vals = make([]float64, 0, nnz)
	rowPtr := make([]int32, n+1)
	for u := 0; u < n; u++ {
		rowPtr[u] = int32(len(m.vals))
		nbr := g.Neighbors(u)
		if len(nbr) == 0 {
			m.colIdx = append(m.colIdx, int32(u))
			m.vals = append(m.vals, 1)
			continue
		}
		du := float64(len(nbr))
		stay := 1.0
		// Neighbors are sorted; emit them in order, inserting the self-loop
		// at its sorted position (value patched once `stay` is final).
		selfAt := -1
		for _, w := range nbr {
			if selfAt < 0 && int32(u) < w {
				selfAt = len(m.vals)
				m.colIdx = append(m.colIdx, int32(u))
				m.vals = append(m.vals, 0)
			}
			p := math.Min(1/du, 1/float64(g.Degree(int(w))))
			stay -= p
			m.colIdx = append(m.colIdx, w)
			m.vals = append(m.vals, p)
		}
		if selfAt < 0 {
			selfAt = len(m.vals)
			m.colIdx = append(m.colIdx, int32(u))
			m.vals = append(m.vals, 0)
		}
		if stay < 0 {
			stay = 0 // numeric guard
		}
		m.vals[selfAt] = stay
	}
	rowPtr[n] = int32(len(m.vals))
	m.rowPtr = rowPtr
	return m
}

// NewLazy builds the lazy variant of SRW: with probability alpha the walk
// stays; otherwise it moves as SRW. alpha in (0,1) guarantees aperiodicity
// (footnote 1 of the paper assumes such nonzero self-transition).
func NewLazy(g *graph.Graph, alpha float64) *Matrix {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("linalg: NewLazy alpha=%v outside (0,1)", alpha))
	}
	n := g.NumNodes()
	m := &Matrix{n: n}
	rowPtr := make([]int32, n+1)
	for u := 0; u < n; u++ {
		rowPtr[u] = int32(len(m.vals))
		nbr := g.Neighbors(u)
		if len(nbr) == 0 {
			m.colIdx = append(m.colIdx, int32(u))
			m.vals = append(m.vals, 1)
			continue
		}
		p := (1 - alpha) / float64(len(nbr))
		selfEmitted := false
		for _, w := range nbr {
			if !selfEmitted && int32(u) < w {
				m.colIdx = append(m.colIdx, int32(u))
				m.vals = append(m.vals, alpha)
				selfEmitted = true
			}
			m.colIdx = append(m.colIdx, w)
			m.vals = append(m.vals, p)
		}
		if !selfEmitted {
			m.colIdx = append(m.colIdx, int32(u))
			m.vals = append(m.vals, alpha)
		}
	}
	rowPtr[n] = int32(len(m.vals))
	m.rowPtr = rowPtr
	return m
}

// Lazify returns the lazy version of any transition matrix:
// T' = α·I + (1−α)·T. Lazification preserves the stationary distribution and
// guarantees aperiodicity (the paper's footnote 1 assumes exactly this), at
// the cost of scaling the spectral gap by (1−α).
func Lazify(m *Matrix, alpha float64) *Matrix {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("linalg: Lazify alpha=%v outside (0,1)", alpha))
	}
	n := m.n
	out := &Matrix{n: n}
	rowPtr := make([]int32, n+1)
	for u := 0; u < n; u++ {
		rowPtr[u] = int32(len(out.vals))
		cols, vals := m.Row(u)
		selfDone := false
		for i, w := range cols {
			if !selfDone && w >= int32(u) {
				if w == int32(u) {
					out.colIdx = append(out.colIdx, w)
					out.vals = append(out.vals, alpha+(1-alpha)*vals[i])
					selfDone = true
					continue
				}
				out.colIdx = append(out.colIdx, int32(u))
				out.vals = append(out.vals, alpha)
				selfDone = true
			}
			out.colIdx = append(out.colIdx, w)
			out.vals = append(out.vals, (1-alpha)*vals[i])
		}
		if !selfDone {
			out.colIdx = append(out.colIdx, int32(u))
			out.vals = append(out.vals, alpha)
		}
	}
	rowPtr[n] = int32(len(out.vals))
	out.rowPtr = rowPtr
	return out
}

// EvolveInto computes dst = src·T (one step of distribution evolution).
// dst and src must have length NumNodes() and must not alias.
func (m *Matrix) EvolveInto(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for u := 0; u < m.n; u++ {
		pu := src[u]
		if pu == 0 {
			continue
		}
		lo, hi := m.rowPtr[u], m.rowPtr[u+1]
		for k := lo; k < hi; k++ {
			dst[m.colIdx[k]] += pu * m.vals[k]
		}
	}
}

// Evolve returns src·T^steps without modifying src.
func (m *Matrix) Evolve(src []float64, steps int) []float64 {
	cur := make([]float64, m.n)
	copy(cur, src)
	if steps <= 0 {
		return cur
	}
	next := make([]float64, m.n)
	for s := 0; s < steps; s++ {
		m.EvolveInto(next, cur)
		cur, next = next, cur
	}
	return cur
}

// DistFrom returns p_t, the exact step-t sampling distribution of a walk
// started at node start (p_0 = indicator of start). This is the oracle
// UNBIASED-ESTIMATE is validated against.
func (m *Matrix) DistFrom(start, t int) []float64 {
	p0 := make([]float64, m.n)
	p0[start] = 1
	return m.Evolve(p0, t)
}

// SRWStationary returns the SRW stationary distribution π(v) = d(v)/(2|E|).
// It errors if the graph has no edges.
func SRWStationary(g *graph.Graph) ([]float64, error) {
	if g.NumEdges() == 0 {
		return nil, errors.New("linalg: SRW stationary undefined for edgeless graph")
	}
	pi := make([]float64, g.NumNodes())
	z := 2 * float64(g.NumEdges())
	for v := range pi {
		pi[v] = float64(g.Degree(v)) / z
	}
	return pi, nil
}

// UniformStationary returns the uniform distribution over n nodes (the MHRW
// target).
func UniformStationary(n int) []float64 {
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	return pi
}
