package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// RelPointwiseDistFrom returns max_v |p_t(v) − π(v)|/π(v) for a walk started
// at node start — the single-row version of the paper's relative point-wise
// distance Δ(t) (Definition 3). π entries must be positive.
func (m *Matrix) RelPointwiseDistFrom(pi []float64, start, t int) float64 {
	p := m.DistFrom(start, t)
	worst := 0.0
	for v, pv := range p {
		d := math.Abs(pv-pi[v]) / pi[v]
		if d > worst {
			worst = d
		}
	}
	return worst
}

// RelPointwiseDist returns the paper's Δ(t): the maximum over all start
// nodes u and targets v of |T^t(u,v) − π(v)|/π(v). Cost is n distribution
// evolutions of t steps each — intended for the small case-study graphs.
func (m *Matrix) RelPointwiseDist(pi []float64, t int) float64 {
	worst := 0.0
	for u := 0; u < m.n; u++ {
		if d := m.RelPointwiseDistFrom(pi, u, t); d > worst {
			worst = d
		}
	}
	return worst
}

// BurnIn returns the smallest t <= tmax with Δ(t) <= eps (Definition 3's
// burn-in period), or tmax+1 if the chain has not mixed by tmax. It evolves
// all n rows simultaneously, O(tmax·n·nnz) total.
func (m *Matrix) BurnIn(pi []float64, eps float64, tmax int) int {
	n := m.n
	rows := make([][]float64, n)
	next := make([][]float64, n)
	for u := 0; u < n; u++ {
		rows[u] = make([]float64, n)
		rows[u][u] = 1
		next[u] = make([]float64, n)
	}
	for t := 1; t <= tmax; t++ {
		worst := 0.0
		for u := 0; u < n; u++ {
			m.EvolveInto(next[u], rows[u])
			rows[u], next[u] = next[u], rows[u]
			for v, pv := range rows[u] {
				if d := math.Abs(pv-pi[v]) / pi[v]; d > worst {
					worst = d
				}
			}
		}
		if worst <= eps {
			return t
		}
	}
	return tmax + 1
}

// MinMax returns the smallest and largest entries of a distribution
// (Figure 1's "Min Prob"/"Max Prob" series).
func MinMax(p []float64) (min, max float64) {
	if len(p) == 0 {
		return 0, 0
	}
	min, max = p[0], p[0]
	for _, v := range p[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// SpectralGap computes λ = 1 − s₂ where s₂ is the second-largest (algebraic)
// eigenvalue of the transition matrix, assuming the chain is reversible with
// respect to the stationary distribution pi (true for SRW and MHRW). It
// power-iterates the similarity-symmetrized half-shifted operator
// B = (S+I)/2, S = D_π^{1/2} T D_π^{−1/2}, after deflating the known top
// eigenvector √π, so the dominant remaining eigenvalue is (1+s₂)/2.
//
// iters bounds the power iterations (1000 is plenty for the case-study
// graphs); the result is deterministic given rng.
func (m *Matrix) SpectralGap(pi []float64, iters int, rng *rand.Rand) (float64, error) {
	n := m.n
	if n < 2 {
		return 0, fmt.Errorf("linalg: spectral gap needs >= 2 states, have %d", n)
	}
	if len(pi) != n {
		return 0, fmt.Errorf("linalg: pi length %d != n %d", len(pi), n)
	}
	sqrtPi := make([]float64, n)
	for i, p := range pi {
		if p <= 0 {
			return 0, fmt.Errorf("linalg: pi[%d] = %v must be positive", i, p)
		}
		sqrtPi[i] = math.Sqrt(p)
	}
	// v1 = √π normalized (||√π||² = Σπ = 1 already).
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	tmp := make([]float64, n)

	deflate := func(v []float64) {
		dot := 0.0
		for i := range v {
			dot += v[i] * sqrtPi[i]
		}
		for i := range v {
			v[i] -= dot * sqrtPi[i]
		}
	}
	normalize := func(v []float64) float64 {
		ss := 0.0
		for _, e := range v {
			ss += e * e
		}
		nrm := math.Sqrt(ss)
		if nrm > 0 {
			for i := range v {
				v[i] /= nrm
			}
		}
		return nrm
	}
	// applyB computes y = B·x with B = (S+I)/2 and
	// S x = D^{1/2} T^T D^{-1/2} x ... for symmetric S we may apply via the
	// left product: (x·S)_j = Σ_i x_i S_ij with S_ij = √π_i T_ij / √π_j.
	applyB := func(dst, src []float64) {
		for i := range tmp {
			tmp[i] = src[i] * sqrtPi[i]
		}
		m.EvolveInto(dst, tmp) // dst_j = Σ_i src_i √π_i T_ij
		for j := range dst {
			dst[j] = 0.5 * (dst[j]/sqrtPi[j] + src[j])
		}
	}

	deflate(x)
	if normalize(x) == 0 {
		return 0, fmt.Errorf("linalg: degenerate starting vector")
	}
	prev := 0.0
	for it := 0; it < iters; it++ {
		applyB(y, x)
		deflate(y)
		nrm := normalize(y)
		x, y = y, x
		if nrm == 0 {
			// T restricted to the complement is nilpotent-like; s2 ~ -1.
			return 2, nil
		}
		if it > 10 && math.Abs(nrm-prev) < 1e-13 {
			prev = nrm
			break
		}
		prev = nrm
	}
	s2 := 2*prev - 1 // eigenvalue of B is (1+s2)/2
	return 1 - s2, nil
}
