package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSRWMatrixSmall(t *testing.T) {
	// Triangle with pendant: 0-1, 1-2, 0-2, 2-3.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	m := NewSRW(g)
	if err := m.CheckRowStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	if got := m.Prob(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("T(0,1) = %v, want 0.5", got)
	}
	if got := m.Prob(2, 3); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("T(2,3) = %v, want 1/3", got)
	}
	if got := m.Prob(3, 2); got != 1 {
		t.Errorf("T(3,2) = %v, want 1", got)
	}
	if got := m.Prob(0, 3); got != 0 {
		t.Errorf("T(0,3) = %v, want 0", got)
	}
	if got := m.Prob(0, 0); got != 0 {
		t.Errorf("SRW has no self-loops: T(0,0) = %v", got)
	}
}

func TestMHRWMatrixSmall(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	m := NewMHRW(g)
	if err := m.CheckRowStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	// Node 2 (deg 3) -> node 3 (deg 1): (1/3)·min(1, 3/1) = 1/3.
	if got := m.Prob(2, 3); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("T(2,3) = %v, want 1/3", got)
	}
	// Node 3 (deg 1) -> node 2 (deg 3): 1·min(1, 1/3) = 1/3; stay 2/3.
	if got := m.Prob(3, 2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("T(3,2) = %v, want 1/3", got)
	}
	if got := m.Prob(3, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("T(3,3) = %v, want 2/3", got)
	}
	// Node 0 (deg 2) -> 1 (deg 2): 1/2; -> 2 (deg 3): (1/2)·(2/3) = 1/3;
	// stay = 1 - 1/2 - 1/3 = 1/6.
	if got := m.Prob(0, 2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("T(0,2) = %v, want 1/3", got)
	}
	if got := m.Prob(0, 0); math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("T(0,0) = %v, want 1/6", got)
	}
}

func TestMHRWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbert(60, 3, rng)
	m := NewMHRW(g)
	for u := 0; u < g.NumNodes(); u++ {
		cols, vals := m.Row(u)
		for i, w := range cols {
			if int(w) == u {
				continue
			}
			back := m.Prob(int(w), u)
			if math.Abs(vals[i]-back) > 1e-12 {
				t.Fatalf("MHRW asymmetric: T(%d,%d)=%v, T(%d,%d)=%v", u, w, vals[i], w, u, back)
			}
		}
	}
}

func TestIsolatedNodeSelfLoop(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // node 2 isolated
	g := b.Build()
	for _, m := range []*Matrix{NewSRW(g), NewMHRW(g), NewLazy(g, 0.5)} {
		if err := m.CheckRowStochastic(1e-12); err != nil {
			t.Fatal(err)
		}
		if got := m.Prob(2, 2); got != 1 {
			t.Errorf("isolated self-loop = %v, want 1", got)
		}
	}
}

func TestLazyMatrix(t *testing.T) {
	g := gen.Cycle(6)
	m := NewLazy(g, 0.3)
	if err := m.CheckRowStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	if got := m.Prob(0, 0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("lazy self = %v, want 0.3", got)
	}
	if got := m.Prob(0, 1); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("lazy step = %v, want 0.35", got)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLazy(%v) should panic", bad)
				}
			}()
			NewLazy(g, bad)
		}()
	}
}

func TestLazify(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	m := Lazify(NewMHRW(g), 0.25)
	if err := m.CheckRowStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	base := NewMHRW(g)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			want := 0.75 * base.Prob(u, v)
			if u == v {
				want += 0.25
			}
			if math.Abs(m.Prob(u, v)-want) > 1e-12 {
				t.Fatalf("Lazify T(%d,%d) = %v, want %v", u, v, m.Prob(u, v), want)
			}
		}
	}
	// Stationary preserved.
	pi := UniformStationary(4)
	next := m.Evolve(pi, 1)
	for v := range pi {
		if math.Abs(next[v]-pi[v]) > 1e-12 {
			t.Fatalf("Lazify broke stationarity at %d", v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Lazify(1) should panic")
			}
		}()
		Lazify(base, 1)
	}()
}

func TestPropertyRowStochastic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := gen.ErdosRenyiGNP(n, 0.2, rng)
		for _, m := range []*Matrix{NewSRW(g), NewMHRW(g), NewLazy(g, 0.5)} {
			if m.CheckRowStochastic(1e-9) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryFixedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbert(80, 3, rng)

	srw := NewSRW(g)
	pi, err := SRWStationary(g)
	if err != nil {
		t.Fatal(err)
	}
	next := srw.Evolve(pi, 1)
	for v := range pi {
		if math.Abs(next[v]-pi[v]) > 1e-12 {
			t.Fatalf("SRW stationary not fixed at %d: %v vs %v", v, next[v], pi[v])
		}
	}

	mhrw := NewMHRW(g)
	u := UniformStationary(g.NumNodes())
	next = mhrw.Evolve(u, 1)
	for v := range u {
		if math.Abs(next[v]-u[v]) > 1e-12 {
			t.Fatalf("MHRW uniform not fixed at %d: %v vs %v", v, next[v], u[v])
		}
	}
}

func TestSRWStationaryEdgeless(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if _, err := SRWStationary(g); err == nil {
		t.Fatal("expected error for edgeless graph")
	}
}

func TestDistFromSumsToOneAndConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(50, 3, rng)
	m := NewLazy(g, 0.2) // lazy to kill periodicity
	pi, _ := SRWStationary(g)
	p := m.DistFrom(0, 200)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("p_200 sums to %v", sum)
	}
	for v := range p {
		if math.Abs(p[v]-pi[v]) > 1e-6 {
			t.Fatalf("p_200[%d] = %v, stationary %v", v, p[v], pi[v])
		}
	}
}

func TestEvolveZeroSteps(t *testing.T) {
	g := gen.Cycle(5)
	m := NewSRW(g)
	p := m.DistFrom(2, 0)
	if p[2] != 1 {
		t.Fatalf("p_0 should be the start indicator, got %v", p)
	}
}

func TestRelPointwiseDistanceDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.BarabasiAlbert(31, 3, rng)
	m := NewLazy(g, 0.1)
	pi, _ := SRWStationary(g)
	d5 := m.RelPointwiseDist(pi, 5)
	d50 := m.RelPointwiseDist(pi, 50)
	if d50 >= d5 {
		t.Fatalf("Δ(50)=%v should be < Δ(5)=%v", d50, d5)
	}
	if d50 < 0 {
		t.Fatal("distance must be non-negative")
	}
}

func TestBurnIn(t *testing.T) {
	g := gen.Complete(6)
	m := NewMHRW(g)
	pi := UniformStationary(6)
	// K6 MHRW: T = (J-I)/5, so Δ(t) = 5^{-(t-1)} exactly:
	// Δ(1)=1, Δ(2)=0.2, Δ(3)=0.04.
	if b := m.BurnIn(pi, 0.3, 10); b != 2 {
		t.Fatalf("complete-graph burn-in(0.3) = %d, want 2", b)
	}
	if b := m.BurnIn(pi, 0.05, 10); b != 3 {
		t.Fatalf("complete-graph burn-in(0.05) = %d, want 3", b)
	}
	// A long path mixes slowly: must exceed a small tmax.
	gp := gen.Path(30)
	mp := NewLazy(gp, 0.5)
	piP, _ := SRWStationary(gp)
	if b := mp.BurnIn(piP, 0.01, 20); b != 21 {
		t.Fatalf("path burn-in should exceed tmax: got %d", b)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{0.2, 0.1, 0.7})
	if min != 0.1 || max != 0.7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("MinMax(nil) should be 0,0")
	}
}

func TestSpectralGapKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.Graph
		want float64 // 1 - s2 with s2 the second-largest algebraic eigenvalue
	}{
		// K_n SRW eigenvalues: 1 and -1/(n-1) -> gap = 1 + 1/(n-1).
		{"complete6", gen.Complete(6), 1 + 1.0/5.0},
		// C_n SRW eigenvalues: cos(2πk/n) -> gap = 1 - cos(2π/n).
		{"cycle8", gen.Cycle(8), 1 - math.Cos(2*math.Pi/8)},
		{"cycle12", gen.Cycle(12), 1 - math.Cos(2*math.Pi/12)},
		// Q_k SRW eigenvalues: 1-2i/k -> gap = 2/k.
		{"hypercube3", gen.Hypercube(3), 2.0 / 3.0},
		{"hypercube4", gen.Hypercube(4), 2.0 / 4.0},
	}
	for _, c := range cases {
		m := NewSRW(c.g)
		pi, err := SRWStationary(c.g)
		if err != nil {
			t.Fatal(err)
		}
		gap, err := m.SpectralGap(pi, 20000, rng)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(gap-c.want) > 1e-6 {
			t.Errorf("%s: gap = %v, want %v", c.name, gap, c.want)
		}
	}
}

func TestSpectralGapLazyShift(t *testing.T) {
	// Lazy walk eigenvalues are alpha + (1-alpha)·s, so
	// gap_lazy = (1-alpha)·gap_srw.
	rng := rand.New(rand.NewSource(6))
	g := gen.Cycle(10)
	pi, _ := SRWStationary(g)
	srwGap, err := NewSRW(g).SpectralGap(pi, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	lazyGap, err := NewLazy(g, 0.5).SpectralGap(pi, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lazyGap-0.5*srwGap) > 1e-6 {
		t.Errorf("lazy gap = %v, want %v", lazyGap, 0.5*srwGap)
	}
}

func TestSpectralGapErrors(t *testing.T) {
	g := gen.Cycle(4)
	m := NewSRW(g)
	rng := rand.New(rand.NewSource(7))
	if _, err := m.SpectralGap([]float64{0.5}, 100, rng); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := m.SpectralGap([]float64{0.5, 0.5, 0, 0}, 100, rng); err == nil {
		t.Error("zero pi entry should error")
	}
	single := NewSRW(graph.NewBuilder(1).Build())
	if _, err := single.SpectralGap([]float64{1}, 100, rng); err == nil {
		t.Error("single state should error")
	}
}
