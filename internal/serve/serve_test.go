package serve

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fastrand"
	"repro/internal/gen"
	"repro/internal/osn"
	"repro/internal/walk"
)

func testNetwork(t *testing.T) *osn.Network {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	return osn.NewNetwork(g)
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := j.Status()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish: %+v", j.ID(), j.Status())
	return JobStatus{}
}

// Two identical submissions must return identical sample sequences — the
// second rides the warm cache and the memoized crawl table, which may only
// change costs, never data.
func TestJobDeterminismWarmVsCold(t *testing.T) {
	eng := NewEngine(testNetwork(t))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 4})
	defer m.Close()

	spec := JobSpec{Type: TypeSample, Count: 20, Seed: 5, Workers: 2}
	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stA := waitJob(t, a)
	if stA.State != JobDone {
		t.Fatalf("cold job: %+v", stA)
	}
	b, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stB := waitJob(t, b)
	if stB.State != JobDone {
		t.Fatalf("warm job: %+v", stB)
	}
	if len(stA.Result.Nodes) != 20 || len(stB.Result.Nodes) != 20 {
		t.Fatalf("sample counts: cold %d warm %d", len(stA.Result.Nodes), len(stB.Result.Nodes))
	}
	for i := range stA.Result.Nodes {
		if stA.Result.Nodes[i] != stB.Result.Nodes[i] {
			t.Fatalf("sample %d differs: cold %d warm %d", i, stA.Result.Nodes[i], stB.Result.Nodes[i])
		}
	}
	// The warm job replays the cold job's RNG streams exactly, so it touches
	// exactly the nodes the cold job already paid for: zero new charges.
	if stB.Result.Queries >= stA.Result.Queries {
		t.Fatalf("warm job not cheaper: cold %d warm %d", stA.Result.Queries, stB.Result.Queries)
	}
	if stB.Result.Queries != 0 {
		t.Fatalf("warm replay charged %d new nodes, want 0", stB.Result.Queries)
	}
}

// A service job with workers=1 must be bit-identical to driving the core
// sampler directly with the same parameters: crawl-table injection and the
// shared cache are invisible to the sample sequence.
func TestJobMatchesDirectSampler(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	net := osn.NewNetwork(g)
	eng := NewEngine(net)
	m := NewManager(eng, Config{Runners: 1})
	defer m.Close()

	const seed, count = 9, 15
	job, err := m.Submit(JobSpec{Count: count, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != JobDone {
		t.Fatalf("job: %+v", st)
	}

	// Direct run over a fresh network with the same graph and the engine's
	// normalized parameters.
	net2 := osn.NewNetwork(g)
	rng := fastrand.New(seed)
	c := osn.NewClient(net2, osn.CostUniqueNodes, rng)
	d, _ := walk.ByName("srw")
	s, err := core.NewSampler(c, core.Config{
		Design:      d,
		Start:       *job.Spec().Start,
		WalkLength:  job.Spec().WalkLength,
		UseCrawl:    true,
		CrawlHops:   job.Spec().CrawlHops,
		UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(count)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Nodes {
		if res.Nodes[i] != st.Result.Nodes[i] {
			t.Fatalf("sample %d differs: direct %d service %d", i, res.Nodes[i], st.Result.Nodes[i])
		}
	}
}

// Cancelling a running job must flip it to cancelled and stop fleet-meter
// growth within one batch.
func TestCancelStopsCharging(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, rand.New(rand.NewSource(7)))
	// Simulated remote latency slows the job enough to cancel it mid-run.
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 500*time.Microsecond, 0, 8)
	eng := NewEngine(osn.NewNetworkOn(sim))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 4})
	defer m.Close()

	job, err := m.Submit(JobSpec{Count: 100000, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Let it produce at least one sample so cancellation lands mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for job.Status().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if job.Status().Samples == 0 {
		t.Fatal("job produced no samples before deadline")
	}
	m.Cancel(job.ID())
	st := waitJob(t, job)
	if st.State != JobCancelled {
		t.Fatalf("state %s, want cancelled (err %q)", st.State, st.Error)
	}
	// The fleet meter must be quiet once the job has settled.
	q0 := eng.CacheStats().Queries
	time.Sleep(100 * time.Millisecond)
	if q1 := eng.CacheStats().Queries; q1 != q0 {
		t.Fatalf("queries still growing after cancel: %d -> %d", q0, q1)
	}
}

// Admission control: with the runner pinned on a long job, the bounded queue
// accepts exactly QueueDepth more submissions and sheds the rest.
func TestAdmissionControl(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, rand.New(rand.NewSource(7)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), time.Millisecond, 0, 8)
	eng := NewEngine(osn.NewNetworkOn(sim))
	m := NewManager(eng, Config{Runners: 1, QueueDepth: 2, WorkerBudget: 2})
	defer m.Close()

	blocker, err := m.Submit(JobSpec{Count: 1000000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the runner has popped the blocker, so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for blocker.Status().State == JobQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if blocker.Status().State != JobRunning {
		t.Fatalf("blocker state %s", blocker.Status().State)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(JobSpec{Count: 1, Seed: int64(10 + i)}); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(JobSpec{Count: 1, Seed: 99}); err != ErrQueueFull {
		t.Fatalf("overflow submit: err %v, want ErrQueueFull", err)
	}
	m.Cancel(blocker.ID())
}

// Worker counts are clamped to the per-job budget at admission, and the
// normalized spec (the determinism contract) reflects the clamp.
func TestWorkerClamp(t *testing.T) {
	eng := NewEngine(testNetwork(t))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 4, MaxWorkersPerJob: 3})
	defer m.Close()
	job, err := m.Submit(JobSpec{Count: 5, Seed: 2, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Spec().Workers; got != 3 {
		t.Fatalf("normalized workers %d, want 3", got)
	}
	if st := waitJob(t, job); st.State != JobDone {
		t.Fatalf("job: %+v", st)
	}
}

// estimate-mean jobs attach the design-appropriate mean estimate.
func TestEstimateMeanJob(t *testing.T) {
	net := testNetwork(t)
	eng := NewEngine(net)
	m := NewManager(eng, Config{Runners: 1})
	defer m.Close()
	job, err := m.Submit(JobSpec{Type: TypeEstimateMean, Count: 50, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != JobDone || st.Result.Estimate == nil {
		t.Fatalf("job: %+v", st)
	}
	truth, err := net.TrueMean(osn.AttrDegree)
	if err != nil {
		t.Fatal(err)
	}
	got := *st.Result.Estimate
	if got <= 0 || got > 10*truth {
		t.Fatalf("estimate %v wildly off truth %v", got, truth)
	}
}

// walk-path jobs stream every visited node and respect cancellation.
func TestWalkPathJob(t *testing.T) {
	eng := NewEngine(testNetwork(t))
	m := NewManager(eng, Config{Runners: 1})
	defer m.Close()
	job, err := m.Submit(JobSpec{Type: TypeWalkPath, Count: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != JobDone || st.Samples != 25 {
		t.Fatalf("job: %+v", st)
	}
}

// TestRetentionEviction checks the terminal-job TTL: after a sweep past
// the retention window, finished job records are gone from Get/List and
// counted in the eviction meter, while fresher records survive. Queued or
// running work is never the sweeper's business — only terminal states
// match.
func TestRetentionEviction(t *testing.T) {
	eng := NewEngine(testNetwork(t))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 2,
		Retention: time.Hour, SweepInterval: time.Hour})
	defer m.Close()

	j1, err := m.Submit(JobSpec{Count: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	j2, err := m.Submit(JobSpec{Count: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)

	if got := m.RetainedJobs(); got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	// Sweep "now": nothing is older than an hour yet.
	if n := m.Sweep(time.Now()); n != 0 {
		t.Fatalf("premature sweep evicted %d jobs", n)
	}
	// Sweep from two hours in the future: both terminal records expire.
	if n := m.Sweep(time.Now().Add(2 * time.Hour)); n != 2 {
		t.Fatalf("sweep evicted %d jobs, want 2", n)
	}
	if _, ok := m.Get(j1.ID()); ok {
		t.Fatalf("evicted job %s still resolvable", j1.ID())
	}
	if got := m.RetainedJobs(); got != 0 {
		t.Fatalf("retained after sweep = %d, want 0", got)
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("List after sweep has %d entries, want 0", got)
	}
	if got := m.met.jobsEvicted.Load(); got != 2 {
		t.Fatalf("eviction meter = %d, want 2", got)
	}

	// New submissions after a sweep get fresh ids and full lifecycle.
	j3, err := m.Submit(JobSpec{Count: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j3)
	if st.State != JobDone {
		t.Fatalf("post-sweep job ended %q: %s", st.State, st.Error)
	}
	if got := m.RetainedJobs(); got != 1 {
		t.Fatalf("retained after new job = %d, want 1", got)
	}
}

// TestRetentionDisabled checks that a negative retention turns the
// sweeper off entirely: Sweep never evicts.
func TestRetentionDisabled(t *testing.T) {
	eng := NewEngine(testNetwork(t))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 2, Retention: -1})
	defer m.Close()
	j, err := m.Submit(JobSpec{Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if n := m.Sweep(time.Now().Add(1000 * time.Hour)); n != 0 {
		t.Fatalf("disabled retention evicted %d jobs", n)
	}
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("job record lost despite disabled retention")
	}
}
