package serve

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// cacheManager builds a manager with a 1-runner config on the standard test
// network, mirroring the idiom of the determinism tests so cache behavior is
// observed against the exact same workload shape.
func cacheManager(t *testing.T, cfg Config) (*Engine, *Manager) {
	t.Helper()
	eng := NewEngine(testNetwork(t))
	if cfg.Runners == 0 {
		cfg.Runners = 1
	}
	if cfg.WorkerBudget == 0 {
		cfg.WorkerBudget = 4
	}
	m := NewManager(eng, cfg)
	t.Cleanup(m.Close)
	return eng, m
}

// Equivalent submissions — defaults elided vs spelled out, design case
// aliases, workers over-asked and clamped, start elided vs explicitly the
// default — must normalize onto one canonical spec and share one digest.
func TestSpecDigestEquivalentVariants(t *testing.T) {
	_, m := cacheManager(t, Config{})
	env := m.NormEnv()
	if env.GraphID == "" {
		t.Fatal("engine produced an empty graph id")
	}

	start := env.DefaultStart
	variants := map[string]JobSpec{
		"elided defaults": {},
		"explicit defaults": {Type: TypeSample, Design: "srw", Count: 10,
			Seed: 1, Workers: 1, Start: &start,
			WalkLength: env.DefaultWalkLen, CrawlHops: 2, Attr: "degree"},
		"design case alias": {Design: "SRW"},
		"deadline elided vs set": {DeadlineMS: 120000},
	}
	var want string
	for name, spec := range variants {
		norm, err := NormalizeSpec(spec, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := SpecDigest(env, norm)
		if want == "" {
			want = d
			continue
		}
		if d != want {
			t.Fatalf("%s: digest %s, want %s (spec %+v, norm %+v)", name, d, want, spec, norm)
		}
	}

	// Workers above the per-job clamp digest identically to asking for the
	// clamp exactly.
	clamped, err := NormalizeSpec(JobSpec{Workers: 999}, env)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NormalizeSpec(JobSpec{Workers: env.MaxWorkersPerJob}, env)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Workers != env.MaxWorkersPerJob {
		t.Fatalf("workers not clamped: %d", clamped.Workers)
	}
	if a, b := SpecDigest(env, clamped), SpecDigest(env, exact); a != b {
		t.Fatalf("clamped digest %s != exact digest %s", a, b)
	}
}

// Specs differing in any result-determining field must never share a digest,
// and the same spec on a different graph must not either.
func TestSpecDigestNoCollisions(t *testing.T) {
	_, m := cacheManager(t, Config{})
	env := m.NormEnv()

	otherStart := (env.DefaultStart + 1) % env.NumNodes
	est := JobSpec{Type: TypeEstimateMean}
	specs := []JobSpec{
		{},
		{Count: 11},
		{Seed: 2},
		{Workers: 2},
		{Start: &otherStart},
		{WalkLength: env.DefaultWalkLen + 1},
		{CrawlHops: 3},
		{NoCrawl: true},
		{NoWeighted: true},
		{Design: "mhrw"},
		est,
		{Type: TypeEstimateMean, Attr: "id"},
		{Type: TypeWalkPath},
	}
	seen := map[string]JobSpec{}
	for _, spec := range specs {
		norm, err := NormalizeSpec(spec, env)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		d := SpecDigest(env, norm)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision %s: %+v and %+v", d, prev, spec)
		}
		seen[d] = spec
	}

	// Same spec, different graph fingerprint: never interchangeable.
	envB := env
	envB.GraphID = env.GraphID + "x"
	norm, err := NormalizeSpec(JobSpec{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if SpecDigest(env, norm) == SpecDigest(envB, norm) {
		t.Fatal("digest ignores the graph id")
	}
}

// A repeat submission must be served from the result cache: terminal on
// admission, byte-identical rows, a result marked Cached with zero query
// charges, and — the point of the layer — zero new walk steps anywhere in
// the engine: the fleet charge meter, the neighbor-cache call counter, and
// the samples-produced meter all stay frozen.
func TestRepeatSubmissionServedFromCache(t *testing.T) {
	eng, m := cacheManager(t, Config{})
	spec := JobSpec{Type: TypeSample, Count: 25, Seed: 7, Workers: 2}

	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stA := waitJob(t, a)
	if stA.State != JobDone {
		t.Fatalf("live job: %+v", stA)
	}
	if stA.Digest == "" {
		t.Fatal("live job has no digest")
	}
	if stA.Result.Cached {
		t.Fatal("first run claims to be cached")
	}
	rowsA, _ := a.waitSamples(context.Background(), 0)

	statsBefore := eng.CacheStats()
	samplesBefore := m.met.samples.Load()

	b, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stB := b.Status()
	if stB.State != JobDone {
		t.Fatalf("cached admission not immediately terminal: %+v", stB)
	}
	if stB.Digest != stA.Digest {
		t.Fatalf("digest changed across submissions: %s vs %s", stB.Digest, stA.Digest)
	}
	if stB.Result == nil || !stB.Result.Cached {
		t.Fatalf("repeat not served from cache: %+v", stB.Result)
	}
	if stB.Result.Queries != 0 {
		t.Fatalf("cached hit charged %d queries, want 0", stB.Result.Queries)
	}
	rowsB, terminal := b.waitSamples(context.Background(), 0)
	if !terminal {
		t.Fatal("cached job not terminal for streamers")
	}
	sameRows(t, rowsB, rowsA, "cached replayed stream")
	if len(stB.Result.Nodes) != len(stA.Result.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(stB.Result.Nodes), len(stA.Result.Nodes))
	}
	for i := range stA.Result.Nodes {
		if stB.Result.Nodes[i] != stA.Result.Nodes[i] {
			t.Fatalf("node %d differs: %d vs %d", i, stB.Result.Nodes[i], stA.Result.Nodes[i])
		}
	}

	statsAfter := eng.CacheStats()
	if statsAfter.Queries != statsBefore.Queries {
		t.Fatalf("fleet meter moved on a cached hit: %d -> %d", statsBefore.Queries, statsAfter.Queries)
	}
	if statsAfter.Calls != statsBefore.Calls {
		t.Fatalf("neighbor-cache calls on a cached hit: %d -> %d", statsBefore.Calls, statsAfter.Calls)
	}
	if got := m.met.samples.Load(); got != samplesBefore {
		t.Fatalf("samples meter moved on a cached hit: %d -> %d", samplesBefore, got)
	}

	rcs := m.ResultCacheStats()
	if !rcs.Enabled || rcs.Hits != 1 || rcs.Misses != 1 {
		t.Fatalf("cache stats: %+v, want 1 hit / 1 miss", rcs)
	}
	if rcs.QueriesSaved != stA.Result.Queries {
		t.Fatalf("queries_saved = %d, want the original run's charge %d", rcs.QueriesSaved, stA.Result.Queries)
	}
}

// Equivalent-but-differently-spelled submissions hit the same cache entry.
func TestRepeatSubmissionVariantSpelling(t *testing.T) {
	_, m := cacheManager(t, Config{})
	a, err := m.Submit(JobSpec{Design: "srw", Count: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, a)

	b, err := m.Submit(JobSpec{Design: "SRW", Count: 15, Seed: 3, Workers: 1, DeadlineMS: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Status(); st.Result == nil || !st.Result.Cached {
		t.Fatalf("variant spelling missed the cache: %+v", st)
	}
}

// CacheBytes < 0 disables the layer: repeats run live.
func TestResultCacheDisabled(t *testing.T) {
	_, m := cacheManager(t, Config{CacheBytes: -1})
	if rcs := m.ResultCacheStats(); rcs.Enabled {
		t.Fatalf("cache reports enabled: %+v", rcs)
	}
	spec := JobSpec{Count: 5, Seed: 9}
	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, a)
	b, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, b); st.Result.Cached {
		t.Fatal("disabled cache still served a hit")
	}
}

// A cached repeat must be admitted even while the bounded queue is full —
// hits occupy no queue slot, no runner, and no worker budget, so load
// shedding never applies to them.
func TestCachedHitShedImmune(t *testing.T) {
	_, m := cacheManager(t, Config{QueueDepth: 1, Runners: 1, WorkerBudget: 1})

	warm := JobSpec{Count: 8, Seed: 11}
	a, err := m.Submit(warm)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, a); st.State != JobDone {
		t.Fatalf("warm job: %+v", st)
	}

	// Occupy the only runner with a long job, then fill the queue slot.
	long1, err := m.Submit(JobSpec{Count: 5_000_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for long1.Status().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}
	long2, err := m.Submit(JobSpec{Count: 5_000_000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel(long2.ID())
	defer m.Cancel(long1.ID())

	if _, err := m.Submit(JobSpec{Count: 9, Seed: 23}); err != ErrQueueFull {
		t.Fatalf("fresh spec under overload: err = %v, want ErrQueueFull", err)
	}
	hit, err := m.Submit(warm)
	if err != nil {
		t.Fatalf("cached repeat shed under overload: %v", err)
	}
	if st := hit.Status(); st.State != JobDone || st.Result == nil || !st.Result.Cached {
		t.Fatalf("overload repeat not a cache hit: %+v", st)
	}
}

// The LRU byte budget evicts least-recently-used entries, never the one just
// promoted by a Get.
func TestResultCacheLRUEviction(t *testing.T) {
	row := func(n int) []Sample {
		rows := make([]Sample, n)
		for i := range rows {
			rows[i] = Sample{Index: i, Node: i, Steps: 1}
		}
		return rows
	}
	res := &JobResult{Samples: 10, Queries: 5}
	// Each 10-row entry costs 256 + 400 = 656 bytes; budget fits two.
	rc := NewResultCache(1400)
	rc.Put("a", row(10), res)
	rc.Put("b", row(10), res)
	if _, _, ok := rc.Get("a"); !ok { // promote a: b is now LRU
		t.Fatal("entry a missing before eviction")
	}
	rc.Put("c", row(10), res)
	if _, _, ok := rc.Get("b"); ok {
		t.Fatal("LRU entry b survived over budget")
	}
	if _, _, ok := rc.Get("a"); !ok {
		t.Fatal("promoted entry a was evicted")
	}
	if _, _, ok := rc.Get("c"); !ok {
		t.Fatal("newest entry c was evicted")
	}
	st := rc.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.Bytes > 1400 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}

	// Partial results and entries larger than the whole budget are refused.
	rc.Put("partial", row(1), &JobResult{Partial: true})
	rc.Put("huge", row(100), res)
	if _, _, ok := rc.Get("partial"); ok {
		t.Fatal("partial result was cached")
	}
	if _, _, ok := rc.Get("huge"); ok {
		t.Fatal("oversize entry was cached")
	}
}

// Cached results survive restart: terminal records rehydrated from the
// journal re-seed the result cache, so a repeat submitted to the restarted
// daemon is a hit with zero charges on the brand-new engine.
func TestResultCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := NewEngine(testNetwork(t))
	m1 := NewManager(eng1, Config{Runners: 1, WorkerBudget: 4, Journal: jl})
	spec := JobSpec{Count: 12, Seed: 17, Workers: 2}
	a, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stA := waitJob(t, a)
	if stA.State != JobDone {
		t.Fatalf("pre-restart job: %+v", stA)
	}
	rowsA, _ := a.waitSamples(context.Background(), 0)
	m1.Close()

	jl2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(testNetwork(t)) // fresh engine: empty neighbor cache, zeroed meters
	m2 := NewManager(eng2, Config{Runners: 1, WorkerBudget: 4, Journal: jl2})
	defer m2.Close()

	before := eng2.CacheStats()
	b, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if st.State != JobDone || st.Result == nil || !st.Result.Cached {
		t.Fatalf("post-restart repeat not a cache hit: %+v", st)
	}
	if st.Digest != stA.Digest {
		t.Fatalf("digest drifted across restart: %s vs %s", st.Digest, stA.Digest)
	}
	rowsB, _ := b.waitSamples(context.Background(), 0)
	sameRows(t, rowsB, rowsA, "post-restart cached stream")
	after := eng2.CacheStats()
	if after.Queries != before.Queries || after.Calls != before.Calls {
		t.Fatalf("restarted engine paid for a cached hit: %+v -> %+v", before, after)
	}
	if rcs := m2.ResultCacheStats(); rcs.Hits != 1 {
		t.Fatalf("post-restart cache stats: %+v", rcs)
	}
}

// The cached-hit journal record is itself replayable: a hit admitted on one
// incarnation rehydrates as a retained done job on the next.
func TestCachedHitRecordRehydrates(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4, Journal: jl})
	spec := JobSpec{Count: 6, Seed: 31}
	a, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, a)
	hit, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	hitID := hit.ID()
	m1.Close()

	jl2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4, Journal: jl2})
	defer m2.Close()
	j, ok := m2.Get(hitID)
	if !ok {
		t.Fatalf("cached-hit job %s not rehydrated", hitID)
	}
	st := j.Status()
	if st.State != JobDone || st.Result == nil || !st.Result.Cached {
		t.Fatalf("rehydrated cached hit: %+v", st)
	}
	if st.Digest == "" {
		t.Fatal("rehydrated cached hit lost its digest")
	}
}

// Digest must also be stable under concurrent repeat submissions: every
// concurrent repeat after the first completed run is a hit and all of them
// replay identical rows.
func TestConcurrentRepeatsAllHit(t *testing.T) {
	_, m := cacheManager(t, Config{})
	spec := JobSpec{Count: 10, Seed: 41}
	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, a)
	rowsA, _ := a.waitSamples(context.Background(), 0)

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			j, err := m.Submit(spec)
			if err != nil {
				errs <- err
				return
			}
			st := j.Status()
			if st.State != JobDone || st.Result == nil || !st.Result.Cached {
				errs <- fmt.Errorf("concurrent repeat not a hit: %+v", st)
				return
			}
			rows, _ := j.waitSamples(context.Background(), 0)
			if len(rows) != len(rowsA) {
				errs <- fmt.Errorf("row count %d, want %d", len(rows), len(rowsA))
				return
			}
			for k := range rows {
				if rows[k] != rowsA[k] {
					errs <- fmt.Errorf("row %d differs", k)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if rcs := m.ResultCacheStats(); rcs.Hits != n {
		t.Fatalf("hits = %d, want %d", rcs.Hits, n)
	}
}
