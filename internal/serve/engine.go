// Package serve turns the one-shot WALK-ESTIMATE machinery into a resident
// sampling service: a daemon loads a graph once (through any osn.Backend —
// in-memory, memory-mapped disk CSR, or simulated remote API), keeps one
// long-lived shared neighbor cache and reusable crawl tables hot across all
// requests, and answers sampling jobs submitted over HTTP.
//
// The package splits into three layers:
//
//   - Engine: the shared, job-independent state — the network, the fleet-wide
//     osn.SharedCache every job's clients attach to, and a memo of crawl
//     tables keyed by (design, start, hops). This is what makes the service
//     worth running: the first job pays the cache warm-up and the crawl, and
//     every later job rides on it.
//   - Manager: job lifecycle — admission control (a bounded queue), a fixed
//     set of runner goroutines, a global estimation-worker budget that
//     per-job worker counts are carved from, cancellation, and metrics.
//   - HTTP layer (http.go): POST /v1/jobs, GET /v1/jobs/{id} (+ NDJSON
//     streaming of accepted samples as they are produced), DELETE for
//     cancellation, /healthz, and a Prometheus-text /metrics endpoint.
//
// Determinism contract: a job's sample sequence is a deterministic function
// of its normalized spec — (type, design, seed, workers, walk length, crawl
// parameters, heuristics) — and of nothing else. Cache warmth, crawl-table
// reuse, and concurrent traffic change only query charges and wall-clock,
// never the data any request observes, because the shared cache stores
// ground-truth (or deterministically restricted) neighbor lists and crawl
// tables are pure functions of the graph. Two identical submissions
// therefore return identical sample sequences, warm or cold. Cancellation
// voids only the cancelled job: it errors out, and completed jobs never
// observe a cancelled context (see core.SampleNParallelCtx).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/fastrand"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Engine is the job-independent shared state of a sampling service: the
// network, the long-lived shared neighbor cache all job clients attach to,
// and the crawl-table memo. Safe for concurrent use.
type Engine struct {
	net   *osn.Network
	cache *osn.SharedCache
	mode  osn.CostMode
	sim   *osn.RemoteSim // non-nil when the backend simulates remote latency
	// res and faults are discovered by walking the backend chain: the
	// resilience middleware (breaker state, retry meters for /metrics and
	// readiness) and the fault injector (fault meters, outage control).
	res    *osn.ResilientBackend
	faults *osn.FaultSim
	// pages is the shared WS-BW history page pool: each job's sampler
	// allocates its hit-counter pages from it and releases them when the
	// job finishes, so a long-lived daemon's per-job history churn is
	// bounded by the pages a job actually dirties (its visited mass), not
	// by regrowing counters from zero per job.
	pages *core.PagePool

	// defaultStart is the max-degree node (the paper's usual seed choice),
	// -1 when the backend exposes no ground-truth view to compute it from.
	defaultStart int
	// defaultWalkLen is the paper's 2·D̄+1 with D̄ estimated once at load.
	defaultWalkLen int
	// graphID fingerprints the loaded graph (|V|, |E|, a strided degree
	// probe); the result cache scopes its digests with it so results from
	// different graphs can never be confused.
	graphID string

	mu     sync.Mutex
	crawls map[crawlKey]*core.CrawlTable
}

type crawlKey struct {
	design string
	start  int
	hops   int
}

// NewEngine wraps a loaded network as service state. The graph scan for the
// default start node and the diameter estimate happen once, here, against
// the ground-truth view (never through the metered or simulated path).
func NewEngine(net *osn.Network) *Engine {
	e := &Engine{
		net:            net,
		cache:          osn.NewSharedCache(),
		mode:           osn.CostUniqueNodes,
		pages:          core.NewPagePool(),
		defaultStart:   -1,
		defaultWalkLen: 15, // the paper's Google Plus setting, as a fallback
		crawls:         make(map[crawlKey]*core.CrawlTable),
	}
	// Walk the wrapper chain (ResilientBackend over FaultSim over RemoteSim
	// over mem/disk, any subset present) so each layer's meters are
	// addressable regardless of stacking order.
	for be := net.Backend(); be != nil; {
		switch t := be.(type) {
		case *osn.RemoteSim:
			e.sim = t
		case *osn.ResilientBackend:
			e.res = t
		case *osn.FaultSim:
			e.faults = t
		}
		u, ok := be.(interface{ Inner() osn.Backend })
		if !ok {
			break
		}
		be = u.Inner()
	}
	if g := net.Graph(); g != nil && g.NumNodes() > 0 {
		best := 0
		for v := 1; v < g.NumNodes(); v++ {
			if g.Degree(v) > g.Degree(best) {
				best = v
			}
		}
		e.defaultStart = best
		// Fixed internal seed: the default walk length must be one stable
		// number per loaded graph, or the determinism contract would leak
		// daemon state into job specs.
		e.defaultWalkLen = 2*g.EstimateDiameter(4, rand.New(rand.NewSource(1))) + 1
	}
	e.graphID = fingerprintGraph(net)
	return e
}

// fingerprintGraph derives a stable graph id from the loaded network: |V|,
// |E|, and (when a ground-truth view exists) up to 64 strided degree probes.
// Deterministic per graph, computed once at load against the raw view —
// never through the metered or simulated path.
func fingerprintGraph(net *osn.Network) string {
	h := sha256.New()
	fmt.Fprintf(h, "v=%d|e=%d", net.NumNodes(), net.Backend().NumEdges())
	if g := net.Graph(); g != nil && g.NumNodes() > 0 {
		n := g.NumNodes()
		stride := n/64 + 1
		for v := 0; v < n; v += stride {
			fmt.Fprintf(h, "|%d:%d", v, g.Degree(v))
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// GraphID returns the engine's graph fingerprint (the result-cache scope).
func (e *Engine) GraphID() string { return e.graphID }

// Network returns the served network.
func (e *Engine) Network() *osn.Network { return e.net }

// NumNodes returns the loaded graph's |V|.
func (e *Engine) NumNodes() int { return e.net.NumNodes() }

// Sim returns the RemoteSim backend when the service fronts one, else nil
// (used by /metrics to surface round-trip meters).
func (e *Engine) Sim() *osn.RemoteSim { return e.sim }

// Resilient returns the resilience middleware when the backend chain has
// one, else nil (breaker state for /readyz, retry meters for /metrics).
func (e *Engine) Resilient() *osn.ResilientBackend { return e.res }

// Faults returns the fault injector when the backend chain has one, else
// nil (fault meters for /metrics; outage control in chaos tests).
func (e *Engine) Faults() *osn.FaultSim { return e.faults }

// CacheStats returns the fleet-wide cache meters as an atomic snapshot.
func (e *Engine) CacheStats() osn.CacheStats { return e.cache.Stats() }

// Cache returns the engine's long-lived shared neighbor cache, for fleet
// wiring (partition installation, owner-side shard resolution). Job code
// should keep going through NewClient.
func (e *Engine) Cache() *osn.SharedCache { return e.cache }

// PagePool returns the engine's shared history page pool.
func (e *Engine) PagePool() *core.PagePool { return e.pages }

// NewClient returns a metered client attached to the service's shared cache;
// each job (and each of its forked estimation workers) charges the fleet
// meter once per unique node, and cache fills persist across jobs.
func (e *Engine) NewClient(rng fastrand.RNG) *osn.Client {
	return osn.NewClientShared(e.net, e.mode, rng, e.cache)
}

// NewClientCtx is NewClient with the job context bound: fallible backend
// accesses run under ctx, so per-job deadlines cut resilience waits short
// and retry-policy exhaustion cancels the job with its typed cause.
func (e *Engine) NewClientCtx(ctx context.Context, rng fastrand.RNG) *osn.Client {
	c := e.NewClient(rng)
	c.BindContext(ctx)
	return c
}

// crawlTable returns the memoized crawl table for (design, start, hops),
// building it through c on first use. The table is a deterministic function
// of the graph and the key, so reuse is invisible to job sample sequences;
// only the build's query charges are saved. If two jobs race the same key
// both build (charging the shared meter once per unique node regardless)
// and the first store wins. A build degraded by a backend failure (failed
// fetches shrink the crawled ball) is never memoized — the partial table
// must not poison later jobs' determinism — and fails with the typed cause.
func (e *Engine) crawlTable(ctx context.Context, c *osn.Client, d walk.Design, start, hops int) (*core.CrawlTable, error) {
	key := crawlKey{design: d.Name(), start: start, hops: hops}
	e.mu.Lock()
	ct, ok := e.crawls[key]
	e.mu.Unlock()
	if ok {
		return ct, nil
	}
	ct, err := core.BuildCrawlTable(c, d, start, hops)
	if err != nil {
		return nil, err
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	e.mu.Lock()
	if prev, ok := e.crawls[key]; ok {
		ct = prev
	} else {
		e.crawls[key] = ct
	}
	e.mu.Unlock()
	return ct, nil
}
