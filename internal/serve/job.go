package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/fastrand"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Job types accepted by the service.
const (
	// TypeSample draws Count nodes from the design's target distribution
	// with WALK-ESTIMATE.
	TypeSample = "sample"
	// TypeEstimateMean is TypeSample followed by the design-appropriate
	// population-mean estimator over the Attr attribute.
	TypeEstimateMean = "estimate-mean"
	// TypeWalkPath runs one plain forward walk of Count steps and streams
	// the visited nodes (a raw-walk debugging and warm-up primitive).
	TypeWalkPath = "walk-path"
)

// JobSpec is the client-supplied description of a sampling job. The zero
// value of every field selects a documented default; Submit normalizes the
// spec (fills defaults, clamps Workers to the manager's per-job budget) and
// the normalized spec is what the job's determinism contract is stated
// over: two jobs with equal normalized specs produce identical sample
// sequences, regardless of cache warmth or concurrent traffic.
type JobSpec struct {
	Type    string `json:"type,omitempty"`    // sample (default) | estimate-mean | walk-path
	Design  string `json:"design,omitempty"`  // srw (default) | mhrw
	Count   int    `json:"count,omitempty"`   // samples to draw / steps to walk; default 10
	Seed    int64  `json:"seed,omitempty"`    // RNG seed; default 1
	Workers int    `json:"workers,omitempty"` // estimation workers; default 1, clamped per job

	// Start is the walk's starting node; nil selects the engine default
	// (the max-degree node).
	Start *int `json:"start,omitempty"`
	// WalkLength is WE's t; 0 selects the engine default (2·D̄+1).
	WalkLength int `json:"walklen,omitempty"`
	// CrawlHops is the initial-crawl radius h; 0 means 2.
	CrawlHops int `json:"hops,omitempty"`
	// NoCrawl and NoWeighted disable the paper's two variance-reduction
	// heuristics, which the service enables by default.
	NoCrawl    bool `json:"no_crawl,omitempty"`
	NoWeighted bool `json:"no_weighted,omitempty"`
	// BackwardReps and VarianceBudget parameterize the backward estimator
	// (0 = core defaults).
	BackwardReps   int `json:"backward_reps,omitempty"`
	VarianceBudget int `json:"variance_budget,omitempty"`
	// Attr is the attribute estimate-mean aggregates; default "degree".
	Attr string `json:"attr,omitempty"`
	// DeadlineMS, when > 0, bounds the job's run phase: the run context
	// gets this deadline, backend resilience waits are cut short by it, and
	// an overrun fails the job with reason "deadline_exceeded" — samples
	// streamed before the deadline remain valid and delivered.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Sample is one streamed output row: an accepted sample (or, for walk-path
// jobs, a visited node), its walk steps, and the fleet-wide query cost right
// after it was produced.
type Sample struct {
	Index int   `json:"i"`
	Node  int   `json:"node"`
	Steps int   `json:"steps"`
	Cost  int64 `json:"cost"`
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Typed failure reasons attached to failed jobs (JobStatus.FailureReason).
const (
	// ReasonBackendUnavailable marks a job failed because the access layer
	// exhausted its retry policy (or the circuit breaker refused service).
	ReasonBackendUnavailable = "backend_unavailable"
	// ReasonDeadlineExceeded marks a job that overran its deadline_ms.
	ReasonDeadlineExceeded = "deadline_exceeded"
)

// JobResult is the summary attached to a finished job.
type JobResult struct {
	Samples int `json:"samples"`
	// Partial marks the result of a failed job: everything recorded here
	// (and every streamed sample) was produced — and remains valid — before
	// the failure; only the remainder is missing.
	Partial bool `json:"partial,omitempty"`
	// Queries is the fleet meter's growth over this job's run: the unique
	// nodes the job actually had to pay for. Under a warm cache this
	// shrinks toward zero — the amortization the service exists for. (With
	// jobs running concurrently the delta includes their interleaved
	// charges; it is exact when the job ran alone.)
	Queries int64 `json:"queries"`
	// FleetQueries is the service-wide unique-node cost after the job.
	FleetQueries int64 `json:"fleet_queries"`
	// AcceptanceRate is WE's accepted/attempted candidates (sample jobs).
	AcceptanceRate float64 `json:"acceptance_rate,omitempty"`
	// Estimate is the population-mean estimate (estimate-mean jobs).
	Estimate *float64 `json:"estimate,omitempty"`
	// Nodes is the accepted sample sequence, in order.
	Nodes []int `json:"nodes,omitempty"`
	// Cached marks a job served from the result cache: the rows and summary
	// were replayed from an earlier completed run of the same digest, with
	// zero new walk steps and zero new query charges (Queries is 0).
	Cached bool `json:"cached,omitempty"`
}

// JobStatus is the JSON snapshot served for GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	Error string   `json:"error,omitempty"`
	// FailureReason is the typed cause of a failed job:
	// "backend_unavailable" or "deadline_exceeded" (empty otherwise).
	FailureReason string `json:"failure_reason,omitempty"`
	// Digest is the job's canonical content address — SpecDigest over
	// (graph id, normalized spec) — so clients can correlate repeat
	// submissions with the cached result they will hit.
	Digest  string     `json:"digest,omitempty"`
	Samples int        `json:"samples"`
	QueueMS float64    `json:"queue_ms"`
	RunMS   float64    `json:"run_ms"`
	Result  *JobResult `json:"result,omitempty"`
}

// Job is one submitted sampling job. All mutable state is guarded by mu;
// samples is append-only, published under mu with cond broadcast so any
// number of streamers can follow along.
type Job struct {
	id     string
	seq    int64  // numeric id suffix, persisted for id continuity across restarts
	digest string // canonical content address (SpecDigest of the normalized spec)
	spec   JobSpec
	ctx    context.Context
	cancel context.CancelCauseFunc

	// recovered marks a job re-admitted from the journal at boot for a
	// deterministic re-run; durable is the count of samples already in the
	// journal (the resume path suppresses re-appends below it). journaled,
	// when non-nil, is closed once the accepted record is durable — every
	// later append for the job waits on it, so the journal's per-job record
	// order is admission, progress, terminal even across goroutines.
	recovered bool
	durable   atomic.Int64
	journaled chan struct{}

	mu        sync.Mutex
	cond      sync.Cond
	state     JobState
	errMsg    string
	reason    string // typed failure reason (failed jobs)
	samples   []Sample
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{id: id, spec: spec, ctx: ctx, cancel: cancel,
		state: JobQueued, submitted: now}
	j.cond.L = &j.mu
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Digest returns the job's canonical content address (the result-cache key).
func (j *Job) Digest() string { return j.digest }

// Spec returns the normalized spec the job runs under.
func (j *Job) Spec() JobSpec { return j.spec }

// Cancel requests cancellation: a queued job is finalized immediately, a
// running job's context is cancelled and its workers abandon in-flight work
// within one batch (see core.SampleNParallelCtx). It reports whether this
// call finalized a still-queued job (so the caller can account it — runner
// bookkeeping never sees such a job).
func (j *Job) Cancel() bool {
	j.cancel(nil) // cause defaults to context.Canceled
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobCancelled
	j.errMsg = context.Canceled.Error()
	j.finished = time.Now()
	j.cond.Broadcast()
	return true
}

// expired reports whether the job is terminal and finished before cutoff
// (the retention sweeper's eviction test).
func (j *Job) expired(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(cutoff)
}

// Status returns a point-in-time snapshot of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		Spec:          j.spec,
		Error:         j.errMsg,
		FailureReason: j.reason,
		Digest:        j.digest,
		Samples:       len(j.samples),
		Result:        j.result,
	}
	if !j.started.IsZero() {
		st.QueueMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	} else if !j.finished.IsZero() {
		st.QueueMS = float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond)
	}
	return st
}

// publish appends one sample and wakes all streamers.
func (j *Job) publish(s Sample) {
	j.mu.Lock()
	j.samples = append(j.samples, s)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// wake re-evaluates every streamer's wait condition (used when a streaming
// client disconnects, so its goroutine can notice and leave).
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// waitSamples blocks until samples beyond from exist, the job is terminal,
// or ctx is cancelled; it returns the new samples (safe to read unlocked —
// the slice is append-only) and whether the job is terminal.
func (j *Job) waitSamples(ctx context.Context, from int) ([]Sample, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for from >= len(j.samples) && !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.samples[from:], j.state.Terminal()
}

// ErrQueueFull is returned by Submit when admission control rejects a job
// because the bounded queue is at capacity.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after the manager has been closed.
var ErrClosed = errors.New("serve: manager closed")

// Config bounds the service's concurrency. Zero fields select defaults.
type Config struct {
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// Submissions beyond it fail fast with ErrQueueFull — the service
	// sheds load instead of building an unbounded backlog.
	QueueDepth int
	// Runners is the number of jobs run concurrently (default 2).
	Runners int
	// WorkerBudget is the global pool of estimation-worker slots carved up
	// among running jobs (default 4·Runners). A job holds exactly its
	// normalized Workers slots for its whole run — never a dynamic share,
	// which would break per-(seed, workers) determinism.
	WorkerBudget int
	// MaxWorkersPerJob clamps a spec's Workers (default WorkerBudget).
	MaxWorkersPerJob int
	// Retention is how long a terminal job's record (status, result, and
	// streamed samples) stays queryable after the job finishes; a
	// background sweeper evicts older records so the jobs map of a daemon
	// serving millions of requests stays bounded by the active window
	// instead of growing forever. Zero selects the default (15 minutes);
	// negative disables eviction. Running and queued jobs are never
	// evicted.
	Retention time.Duration
	// SweepInterval is how often the sweeper scans for expired records.
	// Zero selects the default: Retention/10, clamped to [1s, 1m].
	SweepInterval time.Duration
	// Journal, when non-nil, attaches the durability layer: job admissions,
	// durable-sample progress, and terminal statuses are journaled, and the
	// journal's replayed state is recovered at construction — terminal jobs
	// rehydrate into the retained table, incomplete jobs resume via a
	// deterministic re-run. Open it with OpenJournal; the manager takes
	// ownership and closes it on Close.
	Journal *Journal
	// CacheBytes bounds the content-addressed job result cache (see
	// cache.go): completed jobs are memoized by spec digest and repeat
	// submissions are served from the retained record with zero new walk
	// steps or charges. Zero selects DefaultCacheBytes (64 MiB); negative
	// disables the cache.
	CacheBytes int64
	// Logf, when non-nil, receives one line per job admission (id + digest,
	// and whether it was served from the result cache). weserve wires it to
	// its process log.
	Logf func(format string, args ...any)
}

// DefaultRetention is the terminal-job record retention used when
// Config.Retention is zero.
const DefaultRetention = 15 * time.Minute

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 4 * c.Runners
	}
	if c.MaxWorkersPerJob <= 0 || c.MaxWorkersPerJob > c.WorkerBudget {
		c.MaxWorkersPerJob = c.WorkerBudget
	}
	if c.Retention == 0 {
		c.Retention = DefaultRetention
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.Retention / 10
		if c.SweepInterval < time.Second {
			c.SweepInterval = time.Second
		}
		if c.SweepInterval > time.Minute {
			c.SweepInterval = time.Minute
		}
	}
	return c
}

// Manager owns job admission, scheduling, and bookkeeping for one Engine.
type Manager struct {
	eng *Engine
	cfg Config
	met *Metrics
	env NormEnv

	// results memoizes completed jobs by spec digest (nil when disabled).
	// Admission consults it before the bounded queue, so hits bypass
	// admission control entirely — a repeat submission is served even while
	// the queue is shedding fresh work.
	results *ResultCache

	queue chan *Job

	mu     sync.Mutex
	cond   sync.Cond // worker-slot availability
	free   int       // estimation-worker slots currently free
	jobs   map[string]*Job
	order  []string // submission order, for List
	seq    int64
	closed bool

	stopSweep chan struct{} // closed by Close to stop the retention sweeper

	// Durability state (see recover.go). jl is atomic so a crash-simulating
	// test can detach it mid-flight; Close swaps it out before closing.
	jl             atomic.Pointer[Journal]
	recWG          sync.WaitGroup // boot-recovery enqueue goroutine
	recovering     atomic.Bool
	recoverPending atomic.Int64 // resumed jobs not yet terminal
	recoverStart   time.Time
	recoveryDur    atomic.Int64 // ns, set when recovery completes

	wg sync.WaitGroup
}

// NewManager starts cfg.Runners runner goroutines over the engine.
func NewManager(eng *Engine, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		eng:       eng,
		cfg:       cfg,
		met:       NewMetrics(),
		queue:     make(chan *Job, cfg.QueueDepth),
		free:      cfg.WorkerBudget,
		jobs:      make(map[string]*Job),
		stopSweep: make(chan struct{}),
	}
	m.cond.L = &m.mu
	m.env = NormEnv{
		GraphID:          eng.GraphID(),
		NumNodes:         eng.NumNodes(),
		DefaultStart:     eng.defaultStart,
		DefaultWalkLen:   eng.defaultWalkLen,
		MaxWorkersPerJob: cfg.MaxWorkersPerJob,
	}
	if cfg.CacheBytes > 0 {
		m.results = NewResultCache(cfg.CacheBytes)
	}
	m.recoverStart = time.Now()
	if cfg.Journal != nil {
		m.jl.Store(cfg.Journal)
		m.recoverFromJournal(cfg.Journal)
		cfg.Journal.SetSnapshot(m.snapshotRecords)
	}
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	if cfg.Retention > 0 {
		m.wg.Add(1)
		go m.sweeper()
	}
	return m
}

// sweeper periodically evicts terminal job records older than the
// configured retention.
func (m *Manager) sweeper() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case now := <-t.C:
			m.Sweep(now)
		}
	}
}

// Sweep evicts every terminal job that finished more than the configured
// retention before now, freeing its record (status, result, samples) for
// garbage collection, and returns how many it evicted. Queued and running
// jobs are untouched — eviction is purely a bookkeeping bound, it never
// affects job execution. Exposed so tests (and operators embedding the
// manager) can force a sweep; the background sweeper calls it on its
// interval.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.Retention <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.Retention)
	m.mu.Lock()
	var evictedIDs []string
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j != nil && j.expired(cutoff) {
			delete(m.jobs, id)
			evictedIDs = append(evictedIDs, id)
			continue
		}
		kept = append(kept, id)
	}
	// Re-slice so the order slice's tail does not pin evicted id strings.
	for i := len(kept); i < len(m.order); i++ {
		m.order[i] = ""
	}
	m.order = kept
	m.mu.Unlock()
	if len(evictedIDs) > 0 {
		m.met.jobsEvicted.Add(int64(len(evictedIDs)))
		// Journal outside m.mu: swept records must not resurrect at boot.
		m.journalEvicted(evictedIDs)
	}
	return len(evictedIDs)
}

// Metrics returns the manager's metric registry (for the /metrics endpoint).
func (m *Manager) Metrics() *Metrics { return m.met }

// Engine returns the engine the manager schedules over.
func (m *Manager) Engine() *Engine { return m.eng }

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// normalize fills spec defaults and validates against the manager's
// environment; the result is the contract the job's determinism is stated
// over (see NormalizeSpec).
func (m *Manager) normalize(spec JobSpec) (JobSpec, error) {
	return NormalizeSpec(spec, m.env)
}

// NormEnv returns the normalization environment this manager admits specs
// under. The cluster coordinator mirrors it fleet-side so coordinator and
// worker compute identical digests.
func (m *Manager) NormEnv() NormEnv { return m.env }

// ResultCacheStats returns a snapshot of the job result cache's meters
// (Enabled false, all zeros, when the cache is disabled).
func (m *Manager) ResultCacheStats() ResultCacheStats {
	if m.results == nil {
		return ResultCacheStats{}
	}
	return m.results.Stats()
}

// Draining reports whether Close has begun: the manager no longer accepts
// jobs and is cancelling in-flight work. Surfaced by /readyz.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Submit normalizes and enqueues a job. Admission consults the result cache
// first: a digest already memoized is served as an instantly-terminal job —
// zero walk steps, zero charges, no queue slot, no estimation workers — so
// repeat submissions are immune to overload shedding. Otherwise it fails
// fast with ErrQueueFull when the bounded queue is at capacity (admission
// control), never blocking the caller.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	spec, err := m.normalize(spec)
	if err != nil {
		m.met.jobsRejected.Add(1)
		return nil, err
	}
	digest := SpecDigest(m.env, spec)
	if m.results != nil {
		if rows, cres, ok := m.results.Get(digest); ok {
			return m.admitCached(spec, digest, rows, cres)
		}
	}
	// The closed check, the non-blocking enqueue, and the registration form
	// one critical section: Close sets closed under the same lock before it
	// ever closes the channel (so this send cannot race a closed queue),
	// and a job is registered if and only if its enqueue succeeded (so a
	// rejected submission can never corrupt the registry under concurrent
	// submitters).
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.met.jobsShed.Add(1)
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	job := newJob(id, spec, time.Now())
	job.seq = m.seq
	job.digest = digest
	if m.journal() != nil {
		job.journaled = make(chan struct{})
	}
	select {
	case m.queue <- job:
		m.jobs[id] = job
		m.order = append(m.order, id)
		m.mu.Unlock()
		// The accepted record is appended outside m.mu (the journal may
		// rotate, and rotation snapshots through m.mu); the runner and any
		// canceller wait on job.journaled, so admission is always the
		// job's first durable record.
		if job.journaled != nil {
			m.journalAccepted(job)
			close(job.journaled)
		}
		m.met.jobsSubmitted.Add(1)
		if m.cfg.Logf != nil {
			m.cfg.Logf("job %s accepted digest=%s", id, digest)
		}
		return job, nil
	default:
		m.mu.Unlock()
		m.met.jobsRejected.Add(1)
		m.met.jobsShed.Add(1)
		return nil, ErrQueueFull
	}
}

// admitCached serves a repeat submission from the result cache: the job is
// registered already terminal, its rows the original run's rows verbatim
// (identical i/node/steps/cost sequence) and its result a fresh summary
// charging zero queries. It never touches the bounded queue or the worker
// budget — the only admission gate that still applies is Close.
func (m *Manager) admitCached(spec JobSpec, digest string, rows []Sample, cres *JobResult) (*Job, error) {
	now := time.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.met.jobsShed.Add(1)
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	job := newJob(id, spec, now)
	job.seq = m.seq
	job.digest = digest
	if m.journal() != nil {
		job.journaled = make(chan struct{})
	}
	job.state = JobDone
	job.started = now
	job.finished = now
	job.samples = rows
	job.result = &JobResult{
		Samples:        cres.Samples,
		Queries:        0,
		FleetQueries:   m.eng.CacheStats().Queries,
		AcceptanceRate: cres.AcceptanceRate,
		Estimate:       cres.Estimate,
		Nodes:          cres.Nodes,
		Cached:         true,
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.mu.Unlock()
	if job.journaled != nil {
		m.journalAccepted(job)
		close(job.journaled)
	}
	m.met.jobsSubmitted.Add(1)
	m.met.jobsDone.Add(1)
	// The hit is journaled as a self-contained terminal record, so it
	// survives restart exactly like a live run's record.
	m.journalTerminal(job)
	if m.cfg.Logf != nil {
		m.cfg.Logf("job %s served from result cache digest=%s", id, digest)
	}
	return job, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns snapshots of all known jobs in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// RetainedJobs returns the number of job records currently held — queued,
// running, and terminal records the retention sweeper has not yet evicted.
func (m *Manager) RetainedJobs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Cancel cancels the job with the given id; it reports whether the id was
// known.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	if j.Cancel() {
		// Queued jobs never reach the runner's finish path; finalize their
		// terminal bookkeeping (journal record, recovery debt) here.
		m.met.jobsCancelled.Add(1)
		m.noteTerminal(j)
	}
	return true
}

// Close stops accepting jobs, cancels everything in flight, and waits for
// the runners to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.stopSweep)
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	// The boot-recovery enqueuer must stop before the queue closes.
	m.recWG.Wait()
	for _, j := range jobs {
		if j.Cancel() {
			m.met.jobsCancelled.Add(1)
			m.noteTerminal(j)
		}
	}
	close(m.queue)
	m.wg.Wait()
	// Every terminal record is appended by now; a graceful drain leaves the
	// journal flushed and fsynced, so the next boot recovers exactly the
	// drained state.
	if jl := m.jl.Swap(nil); jl != nil {
		jl.Close()
	}
}

// acquire blocks until n estimation-worker slots are free and takes them.
// n is clamped to WorkerBudget at normalization, so acquisition always
// eventually succeeds.
func (m *Manager) acquire(n int) {
	m.mu.Lock()
	for m.free < n {
		m.cond.Wait()
	}
	m.free -= n
	m.mu.Unlock()
}

func (m *Manager) release(n int) {
	m.mu.Lock()
	m.free += n
	m.cond.Broadcast()
	m.mu.Unlock()
}

// runner is one of cfg.Runners job loops: pop, carve workers from the global
// budget, run, release.
func (m *Manager) runner() {
	defer m.wg.Done()
	for job := range m.queue {
		// A journaled job must not run (and so must not append progress)
		// before its accepted record is durable.
		job.waitJournaled()
		job.mu.Lock()
		if job.state != JobQueued { // cancelled while queued
			job.mu.Unlock()
			continue
		}
		job.state = JobRunning
		job.started = time.Now()
		job.mu.Unlock()

		m.met.queueWait.Observe(job.started.Sub(job.submitted))
		workers := job.spec.Workers
		m.acquire(workers)
		m.met.jobsInFlight.Add(1)
		result, err := m.run(job)
		m.met.jobsInFlight.Add(-1)
		m.release(workers)
		m.finish(job, result, err)
	}
}

// finish finalizes a job's state, result, and metrics. On failure the typed
// cause is classified into JobStatus.FailureReason and any partial result
// (samples produced before the failure) is preserved with Partial set.
func (m *Manager) finish(job *Job, result *JobResult, err error) {
	job.mu.Lock()
	job.finished = time.Now()
	var bu *osn.BackendUnavailableError
	switch {
	case err == nil:
		job.state = JobDone
		job.result = result
		m.met.jobsDone.Add(1)
	case errors.Is(err, context.Canceled) && !errors.As(err, &bu):
		job.state = JobCancelled
		job.errMsg = err.Error()
		m.met.jobsCancelled.Add(1)
	default:
		job.state = JobFailed
		job.errMsg = err.Error()
		switch {
		case errors.As(err, &bu):
			job.reason = ReasonBackendUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			job.reason = ReasonDeadlineExceeded
		}
		if result != nil {
			result.Partial = true
			job.result = result
		}
		m.met.jobsFailed.Add(1)
	}
	run := job.finished.Sub(job.started)
	job.cond.Broadcast()
	job.mu.Unlock()
	if err == nil && m.results != nil && job.digest != "" {
		// Memoize the clean completion (Put drops partial results itself).
		// The samples slice is terminal and append-only — safe to share
		// with the cache and every future hit.
		m.results.Put(job.digest, job.samples, result)
	}
	m.met.runDur.Observe(run)
	m.noteTerminal(job)
}

// run executes one job on the calling runner goroutine. On failure it
// returns the samples produced so far as a partial result alongside the
// error, so degradation is graceful: a backend outage or deadline overrun
// voids only the remainder of the job, never the work already streamed.
func (m *Manager) run(job *Job) (*JobResult, error) {
	spec := job.spec
	d, err := walk.ByName(spec.Design)
	if err != nil {
		return nil, err
	}
	// The run context layers, derived from the job's cancellable context:
	// an optional per-job deadline, and the failure-cancel hook that lets
	// the resilience middleware cancel this job with a typed
	// BackendUnavailableError when its retry policy gives up. Both causes
	// surface through context.Cause and are classified by finish.
	runCtx := job.ctx
	if spec.DeadlineMS > 0 {
		var cancelDL context.CancelFunc
		runCtx, cancelDL = context.WithTimeout(runCtx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancelDL()
	}
	runCtx = osn.WithFailureCancel(runCtx, job.cancel)
	rng := fastrand.New(spec.Seed)
	c := m.eng.NewClientCtx(runCtx, rng)
	fleetBefore := c.TotalQueries()

	onSample := func(ev core.SampleEvent) {
		job.publish(Sample{Index: ev.Index, Node: ev.Node,
			Steps: ev.Steps, Cost: ev.CostAfter})
		m.met.samples.Add(1)
		// Durability high-water mark. On a resumed job the re-run's first k
		// samples fall inside the already-durable prefix and append nothing.
		m.journalProgress(job, ev.Index+1)
	}

	switch spec.Type {
	case TypeWalkPath:
		// One plain forward walk, streamed node by node, with a
		// cancellation check per step.
		u := *spec.Start
		for i := 1; i <= spec.Count; i++ {
			if runCtx.Err() != nil {
				return &JobResult{
					Samples:      i - 1,
					Queries:      c.TotalQueries() - fleetBefore,
					FleetQueries: c.TotalQueries(),
				}, context.Cause(runCtx)
			}
			u = d.Step(c, u, rng)
			s := Sample{Index: i - 1, Node: u, Steps: i, Cost: c.TotalQueries()}
			job.publish(s)
			m.met.samples.Add(1)
			m.journalProgress(job, i)
		}
		return &JobResult{
			Samples:      spec.Count,
			Queries:      c.TotalQueries() - fleetBefore,
			FleetQueries: c.TotalQueries(),
		}, nil

	case TypeSample, TypeEstimateMean:
		cfg := core.Config{
			Design:         d,
			Start:          *spec.Start,
			WalkLength:     spec.WalkLength,
			UseWeighted:    !spec.NoWeighted,
			BackwardReps:   spec.BackwardReps,
			VarianceBudget: spec.VarianceBudget,
			// Allocate WS-BW history pages from the engine's shared pool
			// and release them when this job is done (the deferred
			// ReleasePages below), so per-job history churn is bounded by
			// the job's visited mass instead of regrown from zero.
			Pages: m.eng.pages,
		}
		if !spec.NoCrawl {
			// Reuse (or build-and-memoize) the crawl table instead of
			// letting the sampler crawl per job.
			ct, err := m.eng.crawlTable(runCtx, c, d, *spec.Start, spec.CrawlHops)
			if err != nil {
				return nil, primaryCause(runCtx, err)
			}
			cfg.Crawl = ct
		}
		s, err := core.NewSampler(c, cfg, rng)
		if err != nil {
			return nil, err
		}
		// Safe on every path out of run: SampleN*Ctx quiesce their workers
		// before returning, so nothing can still read the pages.
		defer s.ReleasePages()
		s.OnSample = onSample
		var res walk.Result
		if spec.Workers > 1 {
			res, err = s.SampleNParallelCtx(runCtx, spec.Count, spec.Workers)
		} else {
			res, err = s.SampleNCtx(runCtx, spec.Count)
		}
		out := &JobResult{
			Samples:        res.Len(),
			Queries:        c.TotalQueries() - fleetBefore,
			FleetQueries:   c.TotalQueries(),
			AcceptanceRate: s.AcceptanceRate(),
			Nodes:          res.Nodes,
		}
		if err != nil {
			// The samplers return the in-order prefix drawn before the
			// error; keep it as the partial result.
			return out, primaryCause(runCtx, err)
		}
		if spec.Type == TypeEstimateMean {
			if runCtx.Err() != nil {
				return out, context.Cause(runCtx)
			}
			est, err := agg.EstimateMean(c, d, spec.Attr, res.Nodes)
			if err != nil {
				return out, primaryCause(runCtx, err)
			}
			out.Estimate = &est
			out.Queries = c.TotalQueries() - fleetBefore
			out.FleetQueries = c.TotalQueries()
		}
		return out, nil
	}
	return nil, fmt.Errorf("serve: unknown job type %q", spec.Type)
}

// primaryCause resolves which error really failed the run: when the run
// context was cancelled, its cause (the typed backend failure, the deadline,
// or the user's cancel) is the primary failure and err is downstream fallout
// — a backend giving up mid-access degrades that access to an empty answer,
// and whatever the sampler tripped over next (an impossible walk state, a
// missing attribute) is a symptom, not the cause.
func primaryCause(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
	}
	return err
}

// trimID strips an optional "/stream" suffix and leading/trailing slashes
// from a /v1/jobs/ subpath, returning (id, stream).
func trimID(rest string) (string, bool) {
	rest = strings.Trim(rest, "/")
	if s, ok := strings.CutSuffix(rest, "/stream"); ok {
		return s, true
	}
	return rest, false
}
