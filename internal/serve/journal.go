package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The job journal is the service's durability layer: an append-only,
// checksummed, segment-rotated log of job lifecycle events. It records the
// minimum the per-job determinism contract needs for recovery — the accepted
// normalized spec, the count of samples durably emitted, and the terminal
// status (with its sample rows) — never walk state: a crashed job is resumed
// by re-running its deterministic pipeline, not by restoring walkers.
//
// On-disk format: each segment (seg-NNNNNN.wal) is a sequence of frames
//
//	[4B little-endian payload length][4B CRC32-IEEE of payload][payload]
//
// where the payload is one JSON journalRecord. Replay verifies every frame's
// checksum and stops at the first torn or corrupt frame — everything before
// it is trusted, everything after it is not (counted in Stats().Corrupt).
//
// Compaction keeps replay bounded: whenever a segment fills past
// SegmentBytes, the journal starts a new segment whose first record is a
// snapshot of every retained job's durable state (provided by the manager),
// fsyncs it, and deletes the older segments. Opening a journal performs the
// same snapshot+delete with the replayed state, so a journal directory
// always holds the segments since the last snapshot and nothing else.

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy string

// Fsync policies, in decreasing durability and increasing throughput:
// FsyncAlways syncs after every append (a crash loses nothing that was
// acknowledged); FsyncInterval flushes every append to the OS and syncs on a
// timer (a process crash loses nothing, a power loss loses at most one
// interval); FsyncOff flushes to the OS only (power loss can lose anything
// the kernel had not written back). All policies sync on Close, so a
// graceful drain is always fully durable.
const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncOff      FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a policy string ("" selects FsyncInterval).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncInterval, nil
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("serve: unknown fsync policy %q (want always, interval, or off)", s)
}

// JournalConfig configures a job journal. Zero fields select defaults.
type JournalConfig struct {
	// Dir is the journal directory (required). Created if missing.
	Dir string
	// Fsync is the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval timer period (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes is the rotation threshold: when the live segment grows
	// past it, the journal snapshots and compacts (default 8 MiB).
	SegmentBytes int64
}

func (c JournalConfig) withDefaults() (JournalConfig, error) {
	if c.Dir == "" {
		return c, errors.New("serve: journal needs a directory")
	}
	p, err := ParseFsyncPolicy(string(c.Fsync))
	if err != nil {
		return c, err
	}
	c.Fsync = p
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	return c, nil
}

// JobRecord is a job's durable state as the journal sees it: the accepted
// normalized spec plus either a progress high-water mark (incomplete jobs)
// or the terminal status with its sample rows (finished jobs). It is what
// replay hands back to the manager for rehydration and resume.
type JobRecord struct {
	ID  string `json:"id"`
	Seq int64  `json:"seq,omitempty"`
	// Digest is the job's canonical content address (SpecDigest over the
	// normalized spec): the durable identity of the job's *result*. At boot
	// it re-seeds the result cache from rehydrated terminal records without
	// re-deriving the normalization environment.
	Digest string  `json:"digest,omitempty"`
	Spec   JobSpec `json:"spec"`
	// State is a terminal state for finished jobs; anything else marks the
	// job incomplete (replay resumes it regardless of whether it was queued
	// or mid-run at the crash — the deterministic re-run covers both).
	State  JobState `json:"state"`
	Error  string   `json:"error,omitempty"`
	Reason string   `json:"reason,omitempty"`
	// Durable is the count of samples recorded as durably emitted. On
	// resume the re-run suppresses journal appends for the first Durable
	// samples — they are already on disk.
	Durable int        `json:"durable,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
	// Rows are the full streamed sample rows of a terminal job, so a
	// rehydrated record replays its NDJSON stream bit-identically with zero
	// new walk steps.
	Rows        []Sample `json:"rows,omitempty"`
	SubmittedMS int64    `json:"submitted_ms,omitempty"`
	StartedMS   int64    `json:"started_ms,omitempty"`
	FinishedMS  int64    `json:"finished_ms,omitempty"`
}

// Journal record types.
const (
	recAccepted = "accepted" // job admitted: id, seq, normalized spec
	recProgress = "progress" // durable-sample high-water mark: id, n
	recTerminal = "terminal" // terminal status: full JobRecord
	recEvicted  = "evicted"  // retention sweeper dropped a terminal record
	recSnapshot = "snapshot" // full state; starts every segment
)

// journalRecord is the JSON payload of one journal frame.
type journalRecord struct {
	T    string      `json:"t"`
	Job  *JobRecord  `json:"job,omitempty"`  // accepted, terminal
	ID   string      `json:"id,omitempty"`   // progress, evicted
	N    int         `json:"n,omitempty"`    // progress: durable count
	Jobs []JobRecord `json:"jobs,omitempty"` // snapshot
	Seq  int64       `json:"seq,omitempty"`  // snapshot: id-sequence high water
}

// JournalStats is an atomic snapshot of the journal's meters.
type JournalStats struct {
	Appends    int64 // records appended this process
	Bytes      int64 // bytes appended this process
	Fsyncs     int64 // explicit syncs performed
	Rotations  int64 // segment rotations (each one a compaction)
	AppendErrs int64 // appends dropped by I/O errors or a closed journal
	Replayed   int64 // records replayed at open
	Corrupt    int64 // torn/corrupt frames found at open (replay stops there)
	Segments   int   // segments currently on disk
}

// errJournalClosed is returned by appends after Close.
var errJournalClosed = errors.New("serve: journal closed")

// maxFrame bounds a frame payload; longer lengths mark a corrupt frame.
const maxFrame = 64 << 20

// Journal is an append-only, checksummed, segment-rotated job journal.
// Appends are safe for concurrent use. Callers must never append while
// holding manager or job locks: rotation calls back into the manager's
// snapshot function, which takes them.
type Journal struct {
	cfg JournalConfig

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	size   int64
	segIdx int
	segs   []string // live segment paths, oldest first
	dirty  bool
	closed bool
	// snapshotFn supplies the retained-job state written at rotation; nil
	// (before the manager attaches) defers compaction to the next rotation.
	snapshotFn func() ([]JobRecord, int64)

	// Replayed state, consumed once by the manager at construction.
	recovered    []JobRecord
	recoveredSeq int64

	appends    atomic.Int64
	bytes      atomic.Int64
	fsyncs     atomic.Int64
	rotations  atomic.Int64
	appendErrs atomic.Int64
	replayed   atomic.Int64
	corrupt    atomic.Int64
	fsyncDur   *Histogram

	stopSync chan struct{}
	syncWG   sync.WaitGroup
}

// OpenJournal opens (or creates) the journal in cfg.Dir, replays every
// segment in order — stopping at the first torn or corrupt frame — and
// compacts: the recovered state is snapshotted into a fresh segment and the
// replayed segments are deleted. The recovered jobs are available through
// Recovered until a manager consumes them.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	jl := &Journal{
		cfg: cfg,
		// fsync latency buckets: 50µs .. 1s, the span from NVMe to a
		// contended spinning disk.
		fsyncDur: NewHistogram(0.00005, 0.0001, 0.00025, 0.0005, 0.001,
			0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1),
		stopSync: make(chan struct{}),
	}

	old, maxIdx, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	st := newReplayState()
	for _, seg := range old {
		n, corrupt, err := replaySegment(seg, st)
		jl.replayed.Add(n)
		if err != nil {
			return nil, err
		}
		if corrupt {
			// Nothing after a bad frame is trusted — including later
			// segments, which may depend on records we just lost.
			jl.corrupt.Add(1)
			break
		}
	}
	jl.recovered, jl.recoveredSeq = st.records(), st.seq

	// Boot compaction: snapshot the recovered state into a new segment,
	// make it durable, then drop the replayed segments.
	jl.segIdx = maxIdx + 1
	if err := jl.openSegmentLocked(); err != nil {
		return nil, err
	}
	if err := jl.writeSnapshotLocked(jl.recovered, jl.recoveredSeq); err != nil {
		jl.f.Close()
		return nil, err
	}
	for _, seg := range old {
		os.Remove(seg)
	}
	syncDir(cfg.Dir)

	if cfg.Fsync == FsyncInterval {
		jl.syncWG.Add(1)
		go jl.syncLoop()
	}
	return jl, nil
}

// Dir returns the journal directory.
func (jl *Journal) Dir() string { return jl.cfg.Dir }

// Recovered returns the replayed job state and the id-sequence high water.
// The slice is owned by the caller (the manager consumes it at boot).
func (jl *Journal) Recovered() ([]JobRecord, int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	recs, seq := jl.recovered, jl.recoveredSeq
	jl.recovered = nil
	return recs, seq
}

// SetSnapshot attaches the live-state source used to compact at rotation.
func (jl *Journal) SetSnapshot(fn func() ([]JobRecord, int64)) {
	jl.mu.Lock()
	jl.snapshotFn = fn
	jl.mu.Unlock()
}

// Stats returns an atomic snapshot of the journal meters.
func (jl *Journal) Stats() JournalStats {
	jl.mu.Lock()
	segs := len(jl.segs)
	jl.mu.Unlock()
	return JournalStats{
		Appends:    jl.appends.Load(),
		Bytes:      jl.bytes.Load(),
		Fsyncs:     jl.fsyncs.Load(),
		Rotations:  jl.rotations.Load(),
		AppendErrs: jl.appendErrs.Load(),
		Replayed:   jl.replayed.Load(),
		Corrupt:    jl.corrupt.Load(),
		Segments:   segs,
	}
}

// append writes one record, applies the fsync policy, and rotates the
// segment when it has grown past the threshold.
func (jl *Journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		jl.appendErrs.Add(1)
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		jl.appendErrs.Add(1)
		return errJournalClosed
	}
	n, err := writeFrame(jl.w, payload)
	if err != nil {
		jl.appendErrs.Add(1)
		return err
	}
	jl.size += int64(n)
	jl.dirty = true
	jl.appends.Add(1)
	jl.bytes.Add(int64(n))
	// Flush to the OS on every append regardless of policy: a kill -9 then
	// loses nothing (the kernel still has the write); only the fsync —
	// power-loss durability — is policy-gated.
	if err := jl.w.Flush(); err != nil {
		jl.appendErrs.Add(1)
		return err
	}
	if jl.cfg.Fsync == FsyncAlways {
		if err := jl.syncLocked(); err != nil {
			jl.appendErrs.Add(1)
			return err
		}
	}
	if jl.size >= jl.cfg.SegmentBytes {
		jl.rotateLocked()
	}
	return nil
}

// AppendAccepted durably records an admitted job's normalized spec. A later
// accepted record for the same id replaces the stored spec at replay, so a
// coordinator re-dispatching a job may re-append after renormalization.
// Exported for fleet coordinators that journal through the same frame
// format the in-process Manager uses.
func (jl *Journal) AppendAccepted(rec JobRecord) error {
	return jl.append(journalRecord{T: recAccepted, Job: &rec})
}

// AppendProgress durably records a job's durable-sample high-water mark.
func (jl *Journal) AppendProgress(id string, n int) error {
	return jl.append(journalRecord{T: recProgress, ID: id, N: n})
}

// AppendTerminal durably records a job's terminal status (full record).
func (jl *Journal) AppendTerminal(rec JobRecord) error {
	return jl.append(journalRecord{T: recTerminal, Job: &rec})
}

// AppendEvicted durably records that a terminal job record was dropped.
func (jl *Journal) AppendEvicted(id string) error {
	return jl.append(journalRecord{T: recEvicted, ID: id})
}

// Sync forces buffered appends to stable storage (a no-op when clean).
func (jl *Journal) Sync() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed || !jl.dirty {
		return nil
	}
	if err := jl.w.Flush(); err != nil {
		return err
	}
	return jl.syncLocked()
}

// Close flushes, fsyncs (whatever the policy — a graceful drain is always
// fully durable), and closes the journal. Later appends fail.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	if jl.closed {
		jl.mu.Unlock()
		return nil
	}
	jl.closed = true
	close(jl.stopSync)
	err := jl.w.Flush()
	if serr := jl.f.Sync(); err == nil {
		err = serr
	}
	if cerr := jl.f.Close(); err == nil {
		err = cerr
	}
	jl.mu.Unlock()
	jl.syncWG.Wait()
	return err
}

// syncLocked fsyncs the live segment, observing the latency. mu held.
func (jl *Journal) syncLocked() error {
	t0 := time.Now()
	if err := jl.f.Sync(); err != nil {
		return err
	}
	jl.fsyncDur.Observe(time.Since(t0))
	jl.fsyncs.Add(1)
	jl.dirty = false
	return nil
}

// syncLoop is the FsyncInterval timer goroutine.
func (jl *Journal) syncLoop() {
	defer jl.syncWG.Done()
	t := time.NewTicker(jl.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-jl.stopSync:
			return
		case <-t.C:
			jl.Sync()
		}
	}
}

// rotateLocked starts a new segment headed by a state snapshot and deletes
// the older segments. Compaction is skipped (plain rotation) until a
// snapshot source is attached. Failures leave the current segment in place —
// rotation is an optimization, never a correctness requirement. mu held.
func (jl *Journal) rotateLocked() {
	if jl.snapshotFn == nil {
		return
	}
	snap, seq := jl.snapshotFn()
	jl.w.Flush()
	jl.f.Sync()
	old, oldFile := jl.segs, jl.f
	jl.segIdx++
	if err := jl.openSegmentLocked(); err != nil {
		jl.segIdx--
		jl.segs, jl.f = old, oldFile
		jl.appendErrs.Add(1)
		return
	}
	if err := jl.writeSnapshotLocked(snap, seq); err != nil {
		jl.appendErrs.Add(1)
		return
	}
	oldFile.Close()
	// The snapshot is durable; the history it summarizes can go.
	for _, seg := range old {
		os.Remove(seg)
	}
	syncDir(jl.cfg.Dir)
	jl.rotations.Add(1)
}

// openSegmentLocked creates segment segIdx and points the writer at it.
func (jl *Journal) openSegmentLocked() error {
	path := filepath.Join(jl.cfg.Dir, fmt.Sprintf("seg-%06d.wal", jl.segIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	jl.f = f
	jl.w = bufio.NewWriter(f)
	jl.size = 0
	jl.segs = []string{path}
	return nil
}

// writeSnapshotLocked writes and fsyncs a snapshot record — the head of
// every segment must be durable before older segments may be deleted.
func (jl *Journal) writeSnapshotLocked(jobs []JobRecord, seq int64) error {
	payload, err := json.Marshal(journalRecord{T: recSnapshot, Jobs: jobs, Seq: seq})
	if err != nil {
		return err
	}
	n, err := writeFrame(jl.w, payload)
	if err != nil {
		return err
	}
	jl.size += int64(n)
	jl.bytes.Add(int64(n))
	if err := jl.w.Flush(); err != nil {
		return err
	}
	return jl.syncLocked()
}

// writeFrame writes one length+CRC framed payload.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return len(hdr) + len(payload), nil
}

// replayState folds journal records into per-job durable state.
type replayState struct {
	jobs  map[string]*JobRecord
	order []string
	seq   int64
}

func newReplayState() *replayState {
	return &replayState{jobs: make(map[string]*JobRecord)}
}

func (st *replayState) apply(rec journalRecord) {
	switch rec.T {
	case recSnapshot:
		st.jobs = make(map[string]*JobRecord, len(rec.Jobs))
		st.order = st.order[:0]
		for i := range rec.Jobs {
			r := rec.Jobs[i]
			st.jobs[r.ID] = &r
			st.order = append(st.order, r.ID)
			if r.Seq > st.seq {
				st.seq = r.Seq
			}
		}
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
	case recAccepted:
		if rec.Job == nil {
			return
		}
		r := *rec.Job
		if _, ok := st.jobs[r.ID]; !ok {
			st.order = append(st.order, r.ID)
		}
		st.jobs[r.ID] = &r
		if r.Seq > st.seq {
			st.seq = r.Seq
		}
	case recProgress:
		if j, ok := st.jobs[rec.ID]; ok && rec.N > j.Durable {
			j.Durable = rec.N
		}
	case recTerminal:
		if rec.Job == nil {
			return
		}
		j, ok := st.jobs[rec.Job.ID]
		if !ok {
			// Terminal for a job whose accepted record was lost to
			// corruption: keep it anyway — a terminal record is
			// self-contained.
			r := *rec.Job
			st.jobs[r.ID] = &r
			st.order = append(st.order, r.ID)
			return
		}
		*j = *rec.Job
	case recEvicted:
		if _, ok := st.jobs[rec.ID]; ok {
			delete(st.jobs, rec.ID)
			for i, id := range st.order {
				if id == rec.ID {
					st.order = append(st.order[:i], st.order[i+1:]...)
					break
				}
			}
		}
	}
}

// records returns the folded state in submission order.
func (st *replayState) records() []JobRecord {
	out := make([]JobRecord, 0, len(st.jobs))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// replaySegment reads one segment into st. It returns the number of records
// applied and whether it stopped at a torn or corrupt frame (expected at the
// tail after a crash; never an error).
func replaySegment(path string, st *replayState) (int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var applied int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF at a frame boundary ends the segment; a partial
			// header is a torn tail.
			return applied, !errors.Is(err, io.EOF), nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			return applied, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return applied, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return applied, true, nil
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return applied, true, nil
		}
		st.apply(rec)
		applied++
	}
}

// listSegments returns the segment paths in index order and the max index.
func listSegments(dir string) ([]string, int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	type seg struct {
		idx  int
		path string
	}
	var segs []seg
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &idx); err == nil {
			segs = append(segs, seg{idx, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	paths := make([]string, len(segs))
	maxIdx := 0
	for i, s := range segs {
		paths[i] = s.path
		if s.idx > maxIdx {
			maxIdx = s.idx
		}
	}
	return paths, maxIdx, nil
}

// syncDir fsyncs a directory so segment creates/deletes are durable.
// Best-effort: not every platform supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
