package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/osn"
)

// Histogram is a fixed-bucket latency histogram in the Prometheus
// exposition shape (cumulative le buckets, sum, count). Observations and
// scrapes are lock-free: per-bucket atomic counters plus an atomic
// nanosecond sum.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending; +Inf implicit
	counts []atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (in seconds). An implicit +Inf bucket is appended.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// defaultBuckets spans 1 ms .. 30 s, wide enough for queue waits and runs
// over simulated remote backends alike.
func defaultBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNs.Add(int64(d))
}

// writeProm emits the histogram in Prometheus text exposition format under
// the given metric name, with one constant label pair.
func (h *Histogram) writeProm(w io.Writer, name, labelKey, labelVal string) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, labelVal, le, cum)
	}
	fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, labelKey, labelVal,
		formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, labelVal, h.total.Load())
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Metrics is the service's metric registry. All counters are atomic; the
// cache/meter counters surfaced from internal/osn are read as atomic
// snapshots at scrape time, so a scrape never takes a shard lock.
type Metrics struct {
	start time.Time

	jobsSubmitted  atomic.Int64
	jobsRejected   atomic.Int64
	jobsShed       atomic.Int64 // 503'd at admission: queue full or draining
	jobsDone       atomic.Int64
	jobsFailed     atomic.Int64
	jobsCancelled  atomic.Int64
	jobsEvicted    atomic.Int64
	jobsInFlight   atomic.Int64
	jobsResumed    atomic.Int64 // incomplete journal records re-run at boot
	jobsRehydrated atomic.Int64 // terminal journal records restored at boot
	samples        atomic.Int64

	queueWait *Histogram
	runDur    *Histogram
}

// NewMetrics returns a zeroed registry with the default latency buckets.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		queueWait: NewHistogram(defaultBuckets()...),
		runDur:    NewHistogram(defaultBuckets()...),
	}
}

// Samples returns the number of samples produced since start.
func (m *Metrics) Samples() int64 { return m.samples.Load() }

// InFlight returns the number of jobs currently running.
func (m *Metrics) InFlight() int64 { return m.jobsInFlight.Load() }

// Uptime returns the time since the registry was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// WriteProm writes the full metric set in Prometheus text exposition format:
// job counters (including retention evictions), sample throughput, the
// engine's cache meters (atomic snapshots from internal/osn),
// simulated-backend meters when present, and the per-stage latency
// histograms. retained is the current job-record count (the quantity the
// retention sweeper bounds).
func (m *Metrics) WriteProm(w io.Writer, eng *Engine, retained int) {
	up := m.Uptime().Seconds()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("walknotwait_jobs_submitted_total", "Jobs admitted to the queue.", m.jobsSubmitted.Load())
	counter("walknotwait_jobs_rejected_total", "Jobs refused by admission control or validation.", m.jobsRejected.Load())
	counter("walknotwait_jobs_shed_total", "Submissions turned away with 503 (queue full or draining).", m.jobsShed.Load())
	fmt.Fprintf(w, "# HELP walknotwait_jobs_finished_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE walknotwait_jobs_finished_total counter\n")
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "walknotwait_jobs_finished_total{state=\"cancelled\"} %d\n", m.jobsCancelled.Load())
	gauge("walknotwait_jobs_inflight", "Jobs currently running.", float64(m.jobsInFlight.Load()))
	counter("walknotwait_jobs_evicted_total", "Terminal job records evicted by the retention sweeper.", m.jobsEvicted.Load())
	gauge("walknotwait_jobs_retained", "Job records currently held (queued, running, and retained terminal).", float64(retained))

	samples := m.samples.Load()
	counter("walknotwait_samples_total", "Accepted samples produced across all jobs.", samples)
	rate := 0.0
	if up > 0 {
		rate = float64(samples) / up
	}
	gauge("walknotwait_samples_per_second", "Accepted samples per second of uptime.", rate)
	gauge("walknotwait_uptime_seconds", "Daemon uptime.", up)

	cs := eng.CacheStats()
	counter("walknotwait_queries_charged_total", "Fleet-wide query cost (the paper's cost axis).", cs.Queries)
	counter("walknotwait_cache_calls_total", "Interface calls, cached or not.", cs.Calls)
	gauge("walknotwait_cache_unique_nodes", "Distinct nodes fetched into the shared cache.", float64(cs.UniqueNodes))
	gauge("walknotwait_cache_hit_ratio", "Fraction of interface calls served without a new charge.", cs.HitRatio())
	gauge("walknotwait_cache_owned_unique_nodes", "Distinct partition-owned nodes first-accessed here (== unique nodes unpartitioned).", float64(cs.OwnedUnique))
	counter("walknotwait_cache_remote_fallbacks_total", "Non-owned lookups served locally because the shard owner was unreachable.", cs.RemoteFallbacks)

	if sim := eng.Sim(); sim != nil {
		counter("walknotwait_backend_round_trips_total", "Simulated remote round trips.", sim.RoundTrips())
		gauge("walknotwait_backend_simulated_wait_seconds_total", "Total simulated latency charged.", sim.SimulatedWait().Seconds())
	}

	if res := eng.Resilient(); res != nil {
		rs := res.Stats()
		counter("walknotwait_backend_retries_total", "Backend accesses retried by the resilience middleware.", rs.Retries)
		counter("walknotwait_backend_retries_absorbed_total", "Backend accesses that succeeded after at least one retry.", rs.Absorbed)
		counter("walknotwait_backend_failures_total", "Backend accesses given up on after exhausting the retry policy.", rs.Failures)
		counter("walknotwait_backend_breaker_opens_total", "Circuit breaker transitions to open.", rs.BreakerOpens)
		gauge("walknotwait_backend_breaker_state", "Circuit breaker state (0=closed, 1=open, 2=half-open).", float64(rs.Breaker))
		gauge("walknotwait_backend_retry_budget", "Retry-budget tokens remaining.", rs.BudgetRemaining)
	}

	if fs := eng.Faults(); fs != nil {
		st := fs.Stats()
		counter("walknotwait_backend_attempts_total", "Round trips seen by the fault injector.", st.Attempts)
		fmt.Fprintf(w, "# HELP walknotwait_backend_faults_total Faults injected, by kind.\n")
		fmt.Fprintf(w, "# TYPE walknotwait_backend_faults_total counter\n")
		for k, n := range st.Injected {
			fmt.Fprintf(w, "walknotwait_backend_faults_total{kind=%q} %d\n", osn.FaultKind(k).String(), n)
		}
	}

	fmt.Fprintf(w, "# HELP walknotwait_stage_seconds Per-stage job latency.\n")
	fmt.Fprintf(w, "# TYPE walknotwait_stage_seconds histogram\n")
	m.queueWait.writeProm(w, "walknotwait_stage_seconds", "stage", "queue")
	m.runDur.writeProm(w, "walknotwait_stage_seconds", "stage", "run")
}

// WriteProm writes the manager's full metric set: the registry's job and
// engine meters plus, when the durability layer is attached, the journal
// and boot-recovery sections.
func (m *Manager) WriteProm(w io.Writer) {
	m.met.WriteProm(w, m.eng, m.RetainedJobs())

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	// Result-cache meters. Emitted (as zeros) even with the cache disabled,
	// so dashboards keep a stable series set.
	rcs := m.ResultCacheStats()
	counter("walknotwait_jobs_cache_hits_total", "Repeat submissions served from the job result cache (zero walk steps, zero charges).", rcs.Hits)
	counter("walknotwait_jobs_cache_misses_total", "Submissions that missed the job result cache and ran live.", rcs.Misses)
	counter("walknotwait_jobs_cache_evictions_total", "Cached job results evicted by the LRU byte budget.", rcs.Evictions)
	gauge("walknotwait_jobs_cache_bytes", "Bytes held by the job result cache.", float64(rcs.Bytes))
	gauge("walknotwait_jobs_cache_entries", "Job results currently cached.", float64(rcs.Entries))
	counter("walknotwait_queries_saved_total", "Query charges avoided by result-cache hits (the original runs' costs).", rcs.QueriesSaved)

	fmt.Fprintf(w, "# HELP walknotwait_jobs_recovered_total Jobs recovered from the journal at boot, by mode.\n")
	fmt.Fprintf(w, "# TYPE walknotwait_jobs_recovered_total counter\n")
	fmt.Fprintf(w, "walknotwait_jobs_recovered_total{mode=\"resumed\"} %d\n", m.met.jobsResumed.Load())
	fmt.Fprintf(w, "walknotwait_jobs_recovered_total{mode=\"rehydrated\"} %d\n", m.met.jobsRehydrated.Load())
	recovering := 0.0
	if m.Recovering() {
		recovering = 1
	}
	gauge("walknotwait_recovering", "1 while resumed jobs are still replaying toward their pre-crash state.", recovering)
	gauge("walknotwait_recovery_seconds", "Boot recovery duration (elapsed so far while recovering).",
		m.RecoveryDuration().Seconds())

	jl := m.journal()
	if jl == nil {
		return
	}
	st := jl.Stats()
	counter("walknotwait_journal_appends_total", "Records appended to the job journal.", st.Appends)
	counter("walknotwait_journal_bytes_total", "Bytes appended to the job journal.", st.Bytes)
	counter("walknotwait_journal_fsyncs_total", "Journal fsyncs performed.", st.Fsyncs)
	counter("walknotwait_journal_rotations_total", "Journal segment rotations (each one a snapshot+compaction).", st.Rotations)
	counter("walknotwait_journal_append_errors_total", "Journal appends dropped by I/O errors or a closed journal.", st.AppendErrs)
	counter("walknotwait_journal_replay_corrupt_total", "Torn or corrupt frames found at replay (replay stops there).", st.Corrupt)
	gauge("walknotwait_journal_segments", "Journal segments currently on disk.", float64(st.Segments))
	fmt.Fprintf(w, "# HELP walknotwait_journal_fsync_seconds Journal fsync latency.\n")
	fmt.Fprintf(w, "# TYPE walknotwait_journal_fsync_seconds histogram\n")
	jl.fsyncDur.writeProm(w, "walknotwait_journal_fsync_seconds", "policy", string(jl.cfg.Fsync))
}
