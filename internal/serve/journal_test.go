package serve

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// journalDir opens a journal in a fresh temp dir with the given config
// overrides applied on top of test-friendly defaults.
func openTestJournal(t *testing.T, cfg JournalConfig) *Journal {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	jl, err := OpenJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

func jobRec(id string, seq int64, count int) JobRecord {
	return JobRecord{
		ID:          id,
		Seq:         seq,
		Spec:        JobSpec{Type: TypeSample, Count: count, Seed: seq, Workers: 1},
		State:       JobQueued,
		SubmittedMS: 1000 + seq,
	}
}

// Records appended before a clean close replay back exactly: accepted specs,
// progress high-water marks, and terminal statuses fold into per-job state.
func TestJournalAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})

	a := jobRec("job-000001", 1, 20)
	b := jobRec("job-000002", 2, 30)
	for _, rec := range []journalRecord{
		{T: recAccepted, Job: &a},
		{T: recProgress, ID: a.ID, N: 5},
		{T: recAccepted, Job: &b},
		{T: recProgress, ID: a.ID, N: 12},
		{T: recProgress, ID: a.ID, N: 9}, // stale mark must not regress the high water
		{T: recTerminal, Job: &JobRecord{
			ID: b.ID, Seq: 2, Spec: b.Spec, State: JobDone,
			Result: &JobResult{Samples: 30}, Durable: 30,
			Rows:        []Sample{{Index: 0, Node: 7, Steps: 3, Cost: 11}},
			SubmittedMS: 1002, StartedMS: 1003, FinishedMS: 1004,
		}},
	} {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	defer re.Close()
	recs, seq := re.Recovered()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2: %+v", len(recs), recs)
	}
	if seq != 2 {
		t.Fatalf("recovered seq %d, want 2", seq)
	}
	ra, rb := recs[0], recs[1]
	if ra.ID != a.ID || ra.State.Terminal() || ra.Durable != 12 {
		t.Fatalf("job a folded wrong: %+v", ra)
	}
	if ra.Spec != a.Spec {
		t.Fatalf("job a spec mangled: %+v != %+v", ra.Spec, a.Spec)
	}
	if rb.ID != b.ID || rb.State != JobDone || rb.Result == nil || rb.Result.Samples != 30 {
		t.Fatalf("job b folded wrong: %+v", rb)
	}
	if len(rb.Rows) != 1 || rb.Rows[0].Node != 7 || rb.Rows[0].Cost != 11 {
		t.Fatalf("job b rows mangled: %+v", rb.Rows)
	}
	if st := re.Stats(); st.Replayed == 0 || st.Corrupt != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// liveSegment returns the single segment file the journal keeps after a
// clean close + compaction.
func liveSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments(%s): %v (%d found)", dir, err, len(segs))
	}
	return segs[len(segs)-1]
}

// A torn tail — the partial frame a crash leaves mid-write — ends replay at
// the last whole frame; everything before it is trusted.
func TestJournalTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	a := jobRec("job-000001", 1, 20)
	if err := jl.append(journalRecord{T: recAccepted, Job: &a}); err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRecord{T: recProgress, ID: a.ID, N: 7}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial header, as if the process died mid-append.
	f, err := os.OpenFile(liveSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	re := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	defer re.Close()
	recs, _ := re.Recovered()
	if len(recs) != 1 || recs[0].Durable != 7 {
		t.Fatalf("recovered %+v, want the one pre-tear job at durable=7", recs)
	}
	if st := re.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", st.Corrupt)
	}
}

// A checksum mismatch mid-segment stops replay there: the frames before the
// corruption survive, the frames after it are dropped (they may depend on
// the corrupted one).
func TestJournalChecksumCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	a := jobRec("job-000001", 1, 20)
	for _, rec := range []journalRecord{
		{T: recAccepted, Job: &a},
		{T: recProgress, ID: a.ID, N: 4},
		{T: recProgress, ID: a.ID, N: 9},
	} {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the third frame (snapshot, accepted, N=4,
	// then N=9): walk the frame headers to find its offset.
	seg := liveSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for skip := 0; skip < 3; skip++ { // skip snapshot + accepted + first progress
		n := binary.LittleEndian.Uint32(buf[off : off+4])
		off += 8 + int(n)
	}
	buf[off+8] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	defer re.Close()
	recs, _ := re.Recovered()
	if len(recs) != 1 || recs[0].Durable != 4 {
		t.Fatalf("recovered %+v, want durable=4 (the pre-corruption mark)", recs)
	}
	if st := re.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", st.Corrupt)
	}
}

// Rotation keeps the directory bounded: with a tiny segment threshold and a
// snapshot source attached, many appends trigger compactions and the journal
// still replays to the snapshot state.
func TestJournalRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 2048})
	a := jobRec("job-000001", 1, 20)
	var hi int
	jl.SetSnapshot(func() ([]JobRecord, int64) {
		rec := a
		rec.Durable = hi
		return []JobRecord{rec}, 1
	})
	if err := jl.append(journalRecord{T: recAccepted, Job: &a}); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 400; n++ {
		hi = n
		if err := jl.append(journalRecord{T: recProgress, ID: a.ID, N: n}); err != nil {
			t.Fatal(err)
		}
	}
	st := jl.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after 400 appends at 2KiB segments: %+v", st)
	}
	if st.Segments != 1 {
		t.Fatalf("segments on disk %d, want 1 (compaction deletes history)", st.Segments)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir holds %d files, want 1", len(ents))
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	defer re.Close()
	recs, seq := re.Recovered()
	if len(recs) != 1 || recs[0].Durable != 400 || seq != 1 {
		t.Fatalf("post-rotation replay: %+v seq=%d, want durable=400 seq=1", recs, seq)
	}
}

// All three fsync policies accept appends and replay identically; the
// interval policy's timer goroutine syncs without racing Close.
func TestJournalFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: pol, FsyncEvery: time.Millisecond})
			a := jobRec("job-000001", 1, 10)
			if err := jl.append(journalRecord{T: recAccepted, Job: &a}); err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= 50; n++ {
				if err := jl.append(journalRecord{T: recProgress, ID: a.ID, N: n}); err != nil {
					t.Fatal(err)
				}
			}
			if pol == FsyncInterval {
				time.Sleep(5 * time.Millisecond) // let the timer observe a sync
			}
			if err := jl.Close(); err != nil {
				t.Fatal(err)
			}
			st := jl.Stats()
			if pol == FsyncAlways && st.Fsyncs < 51 {
				t.Fatalf("always policy synced %d times for 51 appends", st.Fsyncs)
			}
			re := openTestJournal(t, JournalConfig{Dir: dir, Fsync: pol})
			defer re.Close()
			recs, _ := re.Recovered()
			if len(recs) != 1 || recs[0].Durable != 50 {
				t.Fatalf("replay under %s: %+v", pol, recs)
			}
		})
	}

	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
	if p, err := ParseFsyncPolicy(""); err != nil || p != FsyncInterval {
		t.Fatalf("empty policy: %v %v", p, err)
	}
}

// Appends after Close fail loudly and are counted, never silently dropped.
func TestJournalClosedAppendErrors(t *testing.T) {
	jl := openTestJournal(t, JournalConfig{Fsync: FsyncOff})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	a := jobRec("job-000001", 1, 10)
	if err := jl.append(journalRecord{T: recAccepted, Job: &a}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if st := jl.Stats(); st.AppendErrs != 1 {
		t.Fatalf("append errors %d, want 1", st.AppendErrs)
	}
}

// Segment filenames parse and sort numerically, not lexically.
func TestJournalListSegments(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"seg-000010.wal", "seg-000002.wal", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, n), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, maxIdx, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "seg-000002.wal"), filepath.Join(dir, "seg-000010.wal")}
	if fmt.Sprint(segs) != fmt.Sprint(want) || maxIdx != 10 {
		t.Fatalf("segs %v maxIdx %d, want %v 10", segs, maxIdx, want)
	}
}
