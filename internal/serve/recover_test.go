package serve

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/osn"
)

// allRows returns a terminal job's full client-visible sample stream.
func allRows(t *testing.T, j *Job) []Sample {
	t.Helper()
	rows, terminal := j.waitSamples(context.Background(), 0)
	if !terminal {
		t.Fatalf("job %s not terminal", j.ID())
	}
	return rows
}

func sameRows(t *testing.T, got, want []Sample, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs: got %+v want %+v", what, i, got[i], want[i])
		}
	}
}

// crash detaches the manager's journal mid-flight — from the journal's point
// of view the process died at that instant (no terminal records, no graceful
// sync) — and returns after releasing the journal's file handle. Appends
// flush to the OS on every write, so nothing buffered is lost, exactly like
// a kill -9.
func crash(t *testing.T, m *Manager) {
	t.Helper()
	jl := m.jl.Swap(nil)
	if jl == nil {
		t.Fatal("manager had no journal to crash")
	}
	jl.Close()
	m.Close()
}

// Terminal jobs rehydrate from the journal with their identical id, result,
// and sample rows, servable with zero new walk steps and zero new query
// charges.
func TestRecoverRehydratesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	m := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4, Journal: jl})

	specs := []JobSpec{
		{Type: TypeSample, Count: 15, Seed: 5, Workers: 2},
		{Type: TypeWalkPath, Count: 10, Seed: 9},
	}
	var ids []string
	var wantRows [][]Sample
	var wantSt []JobStatus
	for _, spec := range specs {
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j)
		if st.State != JobDone {
			t.Fatalf("job %s: %+v", j.ID(), st)
		}
		ids = append(ids, j.ID())
		wantRows = append(wantRows, allRows(t, j))
		wantSt = append(wantSt, st)
	}
	m.Close() // graceful: terminal records flushed and fsynced

	eng := NewEngine(testNetwork(t))
	re := NewManager(eng, Config{Runners: 1, WorkerBudget: 4,
		Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	defer re.Close()
	resumed, rehydrated := re.RecoveredCounts()
	if resumed != 0 || rehydrated != 2 {
		t.Fatalf("recovered (resumed=%d, rehydrated=%d), want (0, 2)", resumed, rehydrated)
	}
	if re.Recovering() {
		t.Fatal("rehydration-only boot reports recovering")
	}
	for i, id := range ids {
		j, ok := re.Get(id)
		if !ok {
			t.Fatalf("rehydrated job %s not servable", id)
		}
		st := j.Status()
		if st.State != JobDone || st.Samples != wantSt[i].Samples {
			t.Fatalf("rehydrated %s status: %+v, want %+v", id, st, wantSt[i])
		}
		if st.Result == nil || st.Result.Samples != wantSt[i].Result.Samples ||
			st.Result.Queries != wantSt[i].Result.Queries ||
			st.Result.FleetQueries != wantSt[i].Result.FleetQueries ||
			len(st.Result.Nodes) != len(wantSt[i].Result.Nodes) {
			t.Fatalf("rehydrated %s result: %+v, want %+v", id, st.Result, wantSt[i].Result)
		}
		sameRows(t, allRows(t, j), wantRows[i], "rehydrated stream "+id)
	}
	// Serving rehydrated jobs walks nothing: the new engine is never touched.
	if q := eng.CacheStats().Queries; q != 0 {
		t.Fatalf("rehydrated serving charged %d queries, want 0", q)
	}
	// Id continuity: a new submission must not collide with recovered ids.
	j, err := re.Submit(JobSpec{Count: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if j.ID() == id {
			t.Fatalf("new job reused recovered id %s", id)
		}
	}
}

// The resume property: kill the journal mid-stream, reboot, and the resumed
// job's full client-visible stream — indexes, nodes, steps, and costs — is
// bit-identical to an uninterrupted run on a cold engine.
func TestResumeStreamBitIdentical(t *testing.T) {
	spec := JobSpec{Type: TypeSample, Count: 40, Seed: 5, Workers: 2}

	// Reference: uninterrupted run, cold engine, no journal.
	ref := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4})
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, rj); st.State != JobDone {
		t.Fatalf("reference: %+v", st)
	}
	want := allRows(t, rj)
	ref.Close()

	// Crashed run: journal the first samples, then die mid-stream. The slow
	// simulated backend guarantees the crash lands strictly mid-job.
	dir := t.TempDir()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 200*time.Microsecond, 0, 8)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)),
		Config{Runners: 1, WorkerBudget: 4,
			Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.durable.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	k := j.durable.Load()
	if k < 5 || k >= int64(spec.Count) {
		t.Fatalf("crash point k=%d not strictly mid-stream", k)
	}
	crash(t, m)

	// Reboot on a fresh cold engine: the job resumes by deterministic re-run.
	re := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4,
		Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	defer re.Close()
	resumed, rehydrated := re.RecoveredCounts()
	if resumed != 1 || rehydrated != 0 {
		t.Fatalf("recovered (resumed=%d, rehydrated=%d), want (1, 0)", resumed, rehydrated)
	}
	jr, ok := re.Get(j.ID())
	if !ok {
		t.Fatalf("resumed job %s not registered", j.ID())
	}
	st := waitJob(t, jr)
	if st.State != JobDone {
		t.Fatalf("resumed job: %+v", st)
	}
	sameRows(t, allRows(t, jr), want, "resumed stream")
	if re.Recovering() {
		t.Fatal("still recovering after the resumed job finished")
	}
	if re.RecoveryDuration() <= 0 {
		t.Fatal("recovery duration not recorded")
	}

	// The journal converged: a third boot rehydrates the job as terminal with
	// the full rows and nothing left to resume.
	re.Close()
	jl3 := openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})
	recs, _ := jl3.Recovered()
	jl3.Close()
	if len(recs) != 1 || recs[0].State != JobDone || len(recs[0].Rows) != spec.Count {
		t.Fatalf("converged journal: %d recs, state %v, %d rows",
			len(recs), recs[0].State, len(recs[0].Rows))
	}
}

// A graceful drain (SIGTERM path: Manager.Close) journals a terminal record
// for every known job — exactly one each, none lost — so the next boot
// recovers precisely the drained state with nothing to resume.
func TestGracefulDrainRecoversExactly(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(400, 3, rand.New(rand.NewSource(7)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), time.Millisecond, 0, 8)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)),
		Config{Runners: 1, QueueDepth: 8, WorkerBudget: 2,
			Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncInterval})})

	// One fast job that finishes, one long runner, and queued jobs behind it:
	// the drain hits every lifecycle stage at once.
	fast, err := m.Submit(JobSpec{Count: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, fast); st.State != JobDone {
		t.Fatalf("fast job: %+v", st)
	}
	long, err := m.Submit(JobSpec{Count: 1000000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for long.Status().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var queued []*Job
	for i := 0; i < 3; i++ {
		q, err := m.Submit(JobSpec{Count: 5, Seed: int64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, q)
	}
	ids := []string{fast.ID(), long.ID()}
	for _, q := range queued {
		ids = append(ids, q.ID())
	}
	m.Close() // the SIGTERM path: cancel, drain, flush, fsync

	re := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4,
		Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	defer re.Close()
	resumed, rehydrated := re.RecoveredCounts()
	if resumed != 0 {
		t.Fatalf("graceful drain left %d jobs to resume, want 0", resumed)
	}
	if rehydrated != int64(len(ids)) {
		t.Fatalf("rehydrated %d jobs, want %d", rehydrated, len(ids))
	}
	if got := len(re.List()); got != len(ids) {
		t.Fatalf("recovered %d records for %d jobs (duplicates or losses)", got, len(ids))
	}
	for _, id := range ids {
		j, ok := re.Get(id)
		if !ok {
			t.Fatalf("drained job %s lost", id)
		}
		if st := j.Status(); !st.State.Terminal() {
			t.Fatalf("drained job %s recovered non-terminal: %+v", id, st)
		}
	}
	if jf, _ := re.Get(fast.ID()); jf != nil {
		if st := jf.Status(); st.State != JobDone || st.Samples != 2 {
			t.Fatalf("fast job lost its completion: %+v", st)
		}
	}
}

// While resumed jobs are still replaying, the daemon reports recovering:
// /readyz answers 503 with "recovering": true, flipping back once the last
// resumed job lands.
func TestRecoveringReadiness(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 500*time.Microsecond, 0, 8)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)),
		Config{Runners: 1, WorkerBudget: 4,
			Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	j, err := m.Submit(JobSpec{Type: TypeSample, Count: 200, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.durable.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	crash(t, m)

	sim2 := osn.NewRemoteSim(osn.NewMemBackend(g), 500*time.Microsecond, 0, 8)
	re := NewManager(NewEngine(osn.NewNetworkOn(sim2)),
		Config{Runners: 1, WorkerBudget: 4,
			Journal: openTestJournal(t, JournalConfig{Dir: dir, Fsync: FsyncOff})})
	defer re.Close()
	srv := httptest.NewServer(Handler(re))
	defer srv.Close()

	if !re.Recovering() {
		t.Fatal("manager not recovering right after boot with a resumed job")
	}
	var body struct {
		Ready      bool `json:"ready"`
		Recovering bool `json:"recovering"`
	}
	if code := getJSON(t, srv.URL+"/readyz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery: %d, want 503", code)
	}
	if body.Ready || !body.Recovering {
		t.Fatalf("/readyz body during recovery: %+v", body)
	}

	jr, _ := re.Get(j.ID())
	if st := waitJob(t, jr); st.State != JobDone {
		t.Fatalf("resumed job: %+v", st)
	}
	if re.Recovering() {
		t.Fatal("recovering stuck after the resumed job finished")
	}
	if code := getJSON(t, srv.URL+"/readyz", &body); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", code)
	}
	if !body.Ready || body.Recovering {
		t.Fatalf("/readyz body after recovery: %+v", body)
	}
}
