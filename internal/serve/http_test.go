package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/osn"
)

func testServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	eng := NewEngine(osn.NewNetwork(g))
	m := NewManager(eng, Config{Runners: 2, WorkerBudget: 4})
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() { srv.Close(); m.Close() })
	return srv, m
}

func postJob(t *testing.T, srv *httptest.Server, spec string) JobStatus {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad status JSON %q: %v", body, err)
	}
	return st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

// Submit over HTTP, stream the accepted samples as NDJSON, and check the
// final status: the stream replays the full sequence plus a terminal line.
func TestHTTPSubmitAndStream(t *testing.T) {
	srv, _ := testServer(t)
	st := postJob(t, srv, `{"count": 12, "seed": 3, "workers": 2}`)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var nodes []int
	var final map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("bad terminal line %s: %v", line, err)
			}
			continue
		}
		var s Sample
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("bad sample line %s: %v", line, err)
		}
		nodes = append(nodes, s.Node)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 12 {
		t.Fatalf("streamed %d samples, want 12", len(nodes))
	}
	if final == nil || final["state"] != string(JobDone) {
		t.Fatalf("terminal line: %v", final)
	}

	// Status must agree with the stream — and a second stream of the
	// finished job replays the identical sequence.
	var got JobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &got); code != http.StatusOK {
		t.Fatalf("GET status: %d", code)
	}
	if got.State != JobDone || len(got.Result.Nodes) != 12 {
		t.Fatalf("status: %+v", got)
	}
	for i, v := range got.Result.Nodes {
		if nodes[i] != v {
			t.Fatalf("stream[%d]=%d but result[%d]=%d", i, nodes[i], i, v)
		}
	}
}

// Identical specs through the HTTP API yield identical sequences (the
// end-to-end form of the determinism acceptance criterion).
func TestHTTPDeterminism(t *testing.T) {
	srv, _ := testServer(t)
	spec := `{"count": 10, "seed": 21, "workers": 3}`
	var seqs [2][]int
	for k := 0; k < 2; k++ {
		st := postJob(t, srv, spec)
		deadline := time.Now().Add(30 * time.Second)
		var got JobStatus
		for time.Now().Before(deadline) {
			getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &got)
			if got.State.Terminal() {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if got.State != JobDone {
			t.Fatalf("run %d: %+v", k, got)
		}
		seqs[k] = got.Result.Nodes
	}
	if fmt.Sprint(seqs[0]) != fmt.Sprint(seqs[1]) {
		t.Fatalf("sequences differ:\n%v\n%v", seqs[0], seqs[1])
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	srv, _ := testServer(t)
	st := postJob(t, srv, `{"count": 5, "seed": 2}`)
	deadline := time.Now().Add(30 * time.Second)
	var got JobStatus
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &got)
		if got.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	var hz map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz["ok"] != true || hz["graph_nodes"].(float64) != 300 {
		t.Fatalf("healthz: %v", hz)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"walknotwait_jobs_submitted_total 1",
		"walknotwait_samples_total 5",
		"walknotwait_queries_charged_total",
		"walknotwait_cache_hit_ratio",
		`walknotwait_stage_seconds_bucket{stage="run",le="+Inf"}`,
		`walknotwait_jobs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	srv, m := testServer(t)

	// Unknown job.
	if code := getJSON(t, srv.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
	// Bad spec.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type": "bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}

	// DELETE cancels.
	st := postJob(t, srv, `{"count": 100000, "seed": 8}`)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	job, _ := m.Get(st.ID)
	final := waitJob(t, job)
	if final.State != JobCancelled {
		t.Fatalf("state after DELETE: %s", final.State)
	}
}

// Overload shedding over HTTP: a full queue answers a typed 503 — machine-
// readable reason, Retry-After header, retry_after_ms body — and the shed
// counter moves; draining answers the same shape with its own reason.
func TestHTTPQueueFullSheds503(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, rand.New(rand.NewSource(7)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), time.Millisecond, 0, 8)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)),
		Config{Runners: 1, QueueDepth: 1, WorkerBudget: 2})
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() { srv.Close(); m.Close() })

	// Pin the runner on a long job, then fill the queue.
	blocker := postJob(t, srv, `{"count": 1000000, "seed": 1}`)
	bj, _ := m.Get(blocker.ID)
	deadline := time.Now().Add(10 * time.Second)
	for bj.Status().State == JobQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	postJob(t, srv, `{"count": 1, "seed": 2}`)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"count": 1, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	var shed struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("shed body %q: %v", body, err)
	}
	if shed.Error != "queue_full" || shed.RetryAfterMS != 1000 {
		t.Fatalf("shed body %+v, want {queue_full 1000}", shed)
	}

	var buf bytes.Buffer
	m.WriteProm(&buf)
	if !strings.Contains(buf.String(), "walknotwait_jobs_shed_total 1") {
		t.Fatalf("shed counter missing or wrong:\n%s", grepLine(buf.String(), "jobs_shed"))
	}

	m.Cancel(blocker.ID)
	m.Close() // draining: same typed shape, different reason
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"count": 1, "seed": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &shed); err != nil || shed.Error != "draining" {
		t.Fatalf("draining body %q (%v), want error=draining", body, err)
	}
}

// grepLine returns the lines of s containing sub (test-failure context).
func grepLine(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
