package serve

import (
	"time"
)

// Manager-side durability: journaling job lifecycle events and recovering
// them at boot.
//
// Recovery splits by terminal-ness. Terminal records are *rehydrated*:
// re-registered in the retained-job table with their full status, result,
// and sample rows, so GETs and stream replays serve them with zero new walk
// steps and zero new query charges. Incomplete records are *resumed*: the
// job is re-admitted with its recovered durable-sample count k and re-runs
// its deterministic pipeline from scratch — the per-(spec, seed, workers)
// determinism contract guarantees the re-run regenerates the identical
// sample sequence, so the client-visible stream of a crashed-and-restarted
// job is bit-identical to an uninterrupted run. The first k samples are
// re-published to the in-memory stream (clients replay from index 0) but
// suppressed from the journal: they are already durable.
//
// Lock discipline: every journal append happens OUTSIDE m.mu and job.mu.
// Rotation (inside the journal lock) calls back into snapshotRecords, which
// takes both — appending under either would deadlock.

// journal returns the attached journal, nil when durability is off (or the
// manager has shut down).
func (m *Manager) journal() *Journal { return m.jl.Load() }

// Recovering reports whether boot recovery is still in progress: resumed
// jobs exist that have not yet reached a terminal state. Surfaced by
// /readyz as "recovering" (503) so orchestrators route traffic elsewhere
// until the daemon has caught back up to its pre-crash state.
func (m *Manager) Recovering() bool { return m.recovering.Load() }

// RecoveryDuration returns how long boot recovery took — from manager
// construction until the last resumed job went terminal — or the elapsed
// time so far while recovery is still running. Zero without a journal.
func (m *Manager) RecoveryDuration() time.Duration {
	if m.recovering.Load() {
		return time.Since(m.recoverStart)
	}
	return time.Duration(m.recoveryDur.Load())
}

// RecoveredCounts reports how many jobs boot recovery restored, split by
// mode: resumed (incomplete records re-running deterministically) and
// rehydrated (terminal records servable with zero new work).
func (m *Manager) RecoveredCounts() (resumed, rehydrated int64) {
	return m.met.jobsResumed.Load(), m.met.jobsRehydrated.Load()
}

// recoverFromJournal registers the journal's replayed jobs: terminal records
// rehydrate into the retained table, incomplete ones re-queue for a
// deterministic re-run. Called from NewManager before the runners start, so
// every recovered id is resolvable before the first request lands.
func (m *Manager) recoverFromJournal(jl *Journal) {
	recs, seq := jl.Recovered()
	var resume []*Job
	m.mu.Lock()
	if seq > m.seq {
		m.seq = seq
	}
	for _, rec := range recs {
		if _, ok := m.jobs[rec.ID]; ok {
			continue
		}
		job := m.jobFromRecord(rec)
		m.jobs[rec.ID] = job
		m.order = append(m.order, rec.ID)
		if rec.State.Terminal() {
			m.met.jobsRehydrated.Add(1)
			// Re-seed the result cache: a rehydrated clean completion is as
			// good an answer as a freshly computed one, so repeats keep
			// hitting across restarts. (Put itself drops partial results.)
			if m.results != nil && job.digest != "" && rec.State == JobDone {
				m.results.Put(job.digest, rec.Rows, rec.Result)
			}
		} else {
			m.met.jobsResumed.Add(1)
			resume = append(resume, job)
		}
	}
	m.mu.Unlock()
	if len(resume) == 0 {
		m.recoveryDur.Store(int64(time.Since(m.recoverStart)))
		return
	}
	m.recovering.Store(true)
	m.recoverPending.Store(int64(len(resume)))
	// Enqueue asynchronously: the resumed backlog may exceed the queue
	// depth, and blocking NewManager on runner drain would deadlock boot.
	m.recWG.Add(1)
	go func() {
		defer m.recWG.Done()
		for _, j := range resume {
			select {
			case m.queue <- j:
			case <-m.stopSweep:
				// Shutdown mid-recovery: Close cancels the registered
				// jobs; their cancelled terminals are journaled there.
				return
			}
		}
	}()
}

// jobFromRecord rebuilds a Job from its durable record.
func (m *Manager) jobFromRecord(rec JobRecord) *Job {
	spec := rec.Spec
	if spec.Workers > m.cfg.MaxWorkersPerJob {
		// A shrunken worker budget cannot honor the recorded parallelism;
		// clamp rather than deadlock on acquisition. The resumed stream is
		// then the deterministic stream of the clamped spec — keep the
		// budget stable across restarts when bit-identity matters.
		spec.Workers = m.cfg.MaxWorkersPerJob
	}
	j := newJob(rec.ID, spec, msToTime(rec.SubmittedMS))
	j.seq = rec.Seq
	j.digest = rec.Digest
	if j.digest == "" || spec.Workers != rec.Spec.Workers {
		// Pre-digest journals, or a clamp that changed the spec the job will
		// actually run under: the recorded spec is already normalized, so
		// the digest is recomputable against the current environment.
		j.digest = SpecDigest(m.env, spec)
	}
	if !rec.State.Terminal() {
		j.recovered = true
		j.durable.Store(int64(rec.Durable))
		return j
	}
	j.state = rec.State
	j.errMsg = rec.Error
	j.reason = rec.Reason
	j.result = rec.Result
	j.samples = rec.Rows
	j.started = msToTime(rec.StartedMS)
	j.finished = msToTime(rec.FinishedMS)
	if j.finished.IsZero() {
		// Old records always carry a finish time; guard anyway so the
		// retention sweeper's terminal test never sees a zero time.
		j.finished = time.Now()
	}
	return j
}

// noteTerminal runs once per job terminal transition (from finish and from
// the queued-cancel finalizers): it journals the terminal record and, for
// resumed jobs, retires one unit of recovery debt — when the last resumed
// job lands, recovery is complete and /readyz goes ready.
func (m *Manager) noteTerminal(j *Job) {
	if j.recovered {
		if m.recoverPending.Add(-1) == 0 {
			m.recoveryDur.Store(int64(time.Since(m.recoverStart)))
			m.recovering.Store(false)
		}
	}
	m.journalTerminal(j)
}

// journalAccepted makes a fresh job's admission durable. Submit closes
// j.journaled afterwards; the runner and every other append for the job
// wait on it, so no progress or terminal record can precede acceptance.
func (m *Manager) journalAccepted(j *Job) {
	jl := m.journal()
	if jl == nil {
		return
	}
	rec := j.record()
	jl.append(journalRecord{T: recAccepted, Job: &rec})
}

// journalProgress advances the job's durable-sample high-water mark to n.
// Appends are suppressed while n is within the already-durable prefix — the
// resume path's "first k samples" and any replayed publish cost nothing.
func (m *Manager) journalProgress(j *Job, n int) {
	jl := m.journal()
	if jl == nil {
		return
	}
	if int64(n) <= j.durable.Load() {
		return
	}
	j.waitJournaled()
	if jl.append(journalRecord{T: recProgress, ID: j.id, N: n}) == nil {
		j.durable.Store(int64(n))
	}
}

// journalTerminal makes a job's terminal status durable, sample rows and
// all.
func (m *Manager) journalTerminal(j *Job) {
	jl := m.journal()
	if jl == nil {
		return
	}
	j.waitJournaled()
	rec := j.record()
	jl.append(journalRecord{T: recTerminal, Job: &rec})
}

// journalEvicted records retention evictions so swept terminal jobs do not
// resurrect at the next boot.
func (m *Manager) journalEvicted(ids []string) {
	jl := m.journal()
	if jl == nil {
		return
	}
	for _, id := range ids {
		jl.append(journalRecord{T: recEvicted, ID: id})
	}
}

// snapshotRecords is the journal's compaction source: the durable state of
// every retained job, plus the id-sequence high water. Called with the
// journal lock held — it must never append.
func (m *Manager) snapshotRecords() ([]JobRecord, int64) {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	seq := m.seq
	m.mu.Unlock()
	recs := make([]JobRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = j.record()
	}
	return recs, seq
}

// record snapshots the job's durable state. Terminal jobs carry their full
// status and sample rows; incomplete jobs carry the normalized spec and the
// durable-sample high-water mark (their samples are regenerable).
func (j *Job) record() JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := JobRecord{
		ID:          j.id,
		Seq:         j.seq,
		Digest:      j.digest,
		Spec:        j.spec,
		State:       j.state,
		SubmittedMS: timeToMS(j.submitted),
	}
	if !j.state.Terminal() {
		rec.State = JobQueued
		rec.Durable = int(j.durable.Load())
		return rec
	}
	rec.Error = j.errMsg
	rec.Reason = j.reason
	rec.Result = j.result
	rec.Rows = j.samples
	rec.Durable = len(j.samples)
	rec.StartedMS = timeToMS(j.started)
	rec.FinishedMS = timeToMS(j.finished)
	return rec
}

// waitJournaled blocks until the job's accepted record is durable (no-op
// for recovered jobs and journal-less managers).
func (j *Job) waitJournaled() {
	if j.journaled != nil {
		<-j.journaled
	}
}

func timeToMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

func msToTime(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}
