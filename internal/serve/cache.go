package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/walk"
)

// Result-cache layer: content-addressed memoization of completed jobs, one
// level above the neighbor cache. Per-job determinism is a tested contract —
// a job's sample sequence is a pure function of (graph, normalized spec) —
// so a completed job's retained record IS the answer to every future
// submission of the same spec. The cache exploits that: admission consults
// it before the bounded queue, and a hit is served with zero walk steps,
// zero query charges, and zero estimation-worker occupancy.
//
// The key is SpecDigest over (graph id, normalized spec): NormalizeSpec
// collapses trivially-equivalent submissions (defaults elided vs explicit,
// workers over-asked and clamped, design case aliases) onto one canonical
// spec, so they share a digest and hit the same entry.

// NormEnv is the engine- and manager-derived context spec normalization
// closes over: everything that turns a client-supplied spec into the
// canonical spec the determinism contract (and the result-cache digest) is
// stated over. Two daemons with equal NormEnv normalize identically — the
// cluster coordinator learns a worker's env from its stats and runs the
// same normalization fleet-side.
type NormEnv struct {
	// GraphID fingerprints the loaded graph; digests over different graphs
	// never collide.
	GraphID string `json:"graph_id"`
	// NumNodes bounds start-node validation.
	NumNodes int `json:"num_nodes"`
	// DefaultStart is the engine's max-degree node (-1 when the backend has
	// no ground-truth view to pick one from).
	DefaultStart int `json:"default_start"`
	// DefaultWalkLen is the engine's 2·D̄+1 default.
	DefaultWalkLen int `json:"default_walklen"`
	// MaxWorkersPerJob is the manager's per-job worker clamp.
	MaxWorkersPerJob int `json:"max_workers_per_job"`
}

// NormalizeSpec fills spec defaults, validates, and canonicalizes: the
// result is the contract a job's determinism is stated over, and the input
// to SpecDigest. Equivalent submissions — defaults elided vs spelled out,
// Workers above the clamp, design name case aliases — normalize to one
// canonical spec. DeadlineMS is validated but deliberately NOT part of the
// result identity: it bounds how long a run may take, never what a
// completed run produces.
func NormalizeSpec(spec JobSpec, env NormEnv) (JobSpec, error) {
	if spec.Type == "" {
		spec.Type = TypeSample
	}
	switch spec.Type {
	case TypeSample, TypeEstimateMean, TypeWalkPath:
	default:
		return spec, fmt.Errorf("serve: unknown job type %q", spec.Type)
	}
	if spec.Design == "" {
		spec.Design = "srw"
	}
	if _, err := walk.ByName(spec.Design); err != nil {
		return spec, err
	}
	spec.Design = strings.ToLower(spec.Design)
	if spec.Count < 0 {
		return spec, fmt.Errorf("serve: negative count %d", spec.Count)
	}
	if spec.Count == 0 {
		spec.Count = 10
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Workers <= 0 {
		spec.Workers = 1
	}
	if spec.Workers > env.MaxWorkersPerJob {
		spec.Workers = env.MaxWorkersPerJob
	}
	if spec.Start == nil {
		if env.DefaultStart < 0 {
			return spec, errors.New("serve: spec needs a start node (backend has no ground-truth view to pick one from)")
		}
		v := env.DefaultStart
		spec.Start = &v
	} else if *spec.Start < 0 || *spec.Start >= env.NumNodes {
		return spec, fmt.Errorf("serve: start node %d out of range [0, %d)", *spec.Start, env.NumNodes)
	}
	if spec.WalkLength <= 0 {
		spec.WalkLength = env.DefaultWalkLen
	}
	if spec.CrawlHops <= 0 {
		spec.CrawlHops = 2
	}
	if spec.Attr == "" {
		spec.Attr = "degree"
	}
	if spec.DeadlineMS < 0 {
		return spec, fmt.Errorf("serve: negative deadline_ms %d", spec.DeadlineMS)
	}
	return spec, nil
}

// SpecDigest content-addresses a normalized spec on a graph: a canonical
// serialization of every result-determining field (fixed order, explicit
// values) hashed with SHA-256, truncated to 128 bits. Specs that normalize
// equal share a digest; specs differing in any result-determining field do
// not. Call it on NormalizeSpec output — digesting a raw spec would keep
// elided defaults and explicit ones apart.
func SpecDigest(env NormEnv, spec JobSpec) string {
	start := -1
	if spec.Start != nil {
		start = *spec.Start
	}
	h := sha256.New()
	fmt.Fprintf(h,
		"g=%s|type=%s|design=%s|count=%d|seed=%d|workers=%d|start=%d|walklen=%d|hops=%d|nocrawl=%t|noweighted=%t|breps=%d|vbudget=%d|attr=%s",
		env.GraphID, spec.Type, strings.ToLower(spec.Design), spec.Count,
		spec.Seed, spec.Workers, start, spec.WalkLength, spec.CrawlHops,
		spec.NoCrawl, spec.NoWeighted, spec.BackwardReps, spec.VarianceBudget,
		spec.Attr)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// DefaultCacheBytes is the result-cache budget used when Config.CacheBytes
// is zero. 64 MiB holds on the order of a million cached sample rows —
// plenty for a zipfian working set while staying a rounding error next to
// the graph itself.
const DefaultCacheBytes = 64 << 20

// ResultCacheStats is an atomic snapshot of the result cache's meters.
type ResultCacheStats struct {
	Enabled   bool  `json:"enabled"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	// QueriesSaved accumulates, per hit, the original run's query charge —
	// the cost a cold fleet would have paid to recompute the answer.
	QueriesSaved int64 `json:"queries_saved"`
}

// ResultCache is a byte-bounded LRU of completed job results keyed by
// SpecDigest. Entries hold the job's full streamed rows and result summary,
// so a hit replays the NDJSON stream byte-for-byte. Only clean completions
// are stored (never partial results — a deadline-truncated run is not THE
// answer for its spec). Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	saved     atomic.Int64
}

type cacheEntry struct {
	digest string
	rows   []Sample
	result JobResult
	size   int64
}

// NewResultCache returns an LRU result cache bounded to maxBytes
// (DefaultCacheBytes when maxBytes <= 0).
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &ResultCache{
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// entrySize approximates an entry's resident footprint: the rows slice, the
// result's node sequence, and fixed per-entry overhead (map slot, list
// element, digest string, result struct).
func entrySize(rows []Sample, result *JobResult) int64 {
	size := int64(256) + 40*int64(len(rows))
	if result != nil {
		size += 8 * int64(len(result.Nodes))
	}
	return size
}

// Get looks up a digest, promoting a hit to most-recently-used. It returns
// the stored rows (append-only, safe to share) and a copy of the stored
// result, and accounts the hit's saved charges (the original run's query
// cost). A miss is counted too: hits/(hits+misses) is the submission hit
// rate.
func (rc *ResultCache) Get(digest string) ([]Sample, *JobResult, bool) {
	rc.mu.Lock()
	el, ok := rc.entries[digest]
	if !ok {
		rc.mu.Unlock()
		rc.misses.Add(1)
		return nil, nil, false
	}
	rc.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	res := e.result // copy; callers rewrite per-hit fields
	rows := e.rows
	rc.mu.Unlock()
	rc.hits.Add(1)
	rc.saved.Add(res.Queries)
	return rows, &res, true
}

// Put stores a completed job's rows and result under its digest, evicting
// least-recently-used entries until the byte budget holds. An entry larger
// than the whole budget is not stored (it would evict everything for one
// answer). Re-putting an existing digest refreshes recency and keeps the
// original entry — both were produced by the same deterministic function,
// so they are interchangeable.
func (rc *ResultCache) Put(digest string, rows []Sample, result *JobResult) {
	if result == nil || result.Partial {
		return
	}
	size := entrySize(rows, result)
	if size > rc.max {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[digest]; ok {
		rc.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{digest: digest, rows: rows, result: *result, size: size}
	rc.entries[digest] = rc.lru.PushFront(e)
	rc.bytes += size
	for rc.bytes > rc.max {
		back := rc.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		rc.lru.Remove(back)
		delete(rc.entries, old.digest)
		rc.bytes -= old.size
		rc.evictions.Add(1)
	}
}

// Len returns the number of cached results.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}

// Stats returns a point-in-time snapshot of the cache meters.
func (rc *ResultCache) Stats() ResultCacheStats {
	rc.mu.Lock()
	entries, bytes := len(rc.entries), rc.bytes
	rc.mu.Unlock()
	return ResultCacheStats{
		Enabled:      true,
		Hits:         rc.hits.Load(),
		Misses:       rc.misses.Load(),
		Evictions:    rc.evictions.Load(),
		Entries:      entries,
		Bytes:        bytes,
		MaxBytes:     rc.max,
		QueriesSaved: rc.saved.Load(),
	}
}
