package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/osn"
)

// Chaos property tests for the fault-injected service path: the engine over
// a ResilientBackend(FaultSim(mem)) chain must (a) reproduce the fault-free
// engine's sample sequences bit-identically when every fault is absorbed by
// retries, (b) fail typed and keep partial progress when the backend goes
// down mid-job, and (c) recover — breaker half-open to closed, readiness
// back to 200 — once the outage ends.

// chaosPolicy keeps retries near-instant so chaos tests stay fast.
func chaosPolicy() osn.ResilientPolicy {
	return osn.ResilientPolicy{
		MaxRetries:      6,
		BaseBackoff:     10 * time.Microsecond,
		MaxBackoff:      100 * time.Microsecond,
		BreakerCooldown: 10 * time.Millisecond,
	}
}

// chaosNetwork builds the same graph as testNetwork but served through a
// seeded fault injector under the resilience middleware.
func chaosNetwork(t *testing.T, cfg osn.FaultConfig, pol osn.ResilientPolicy) (*osn.Network, *osn.FaultSim, *osn.ResilientBackend) {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	fs, err := osn.NewFaultSim(osn.NewMemBackend(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := osn.NewResilientBackend(fs, pol)
	return osn.NewNetworkOn(res), fs, res
}

func runSpec(t *testing.T, m *Manager, spec JobSpec) JobStatus {
	t.Helper()
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return waitJob(t, j)
}

// TestChaosFaultFreeBitIdentical: a zero-rate injector plus the resilience
// layer is a transparent stack — job results are bit-identical to the plain
// mem engine, with the identical query charges.
func TestChaosFaultFreeBitIdentical(t *testing.T) {
	ref := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4})
	defer ref.Close()
	net, fs, _ := chaosNetwork(t, osn.FaultConfig{Seed: 1}, chaosPolicy())
	chaos := NewManager(NewEngine(net), Config{Runners: 1, WorkerBudget: 4})
	defer chaos.Close()

	for _, spec := range []JobSpec{
		{Type: TypeSample, Count: 20, Seed: 5, Workers: 2},
		{Type: TypeSample, Count: 15, Seed: 9},
		{Type: TypeEstimateMean, Count: 10, Seed: 3},
	} {
		a, b := runSpec(t, ref, spec), runSpec(t, chaos, spec)
		if a.State != JobDone || b.State != JobDone {
			t.Fatalf("spec %+v: states %v / %v", spec, a.State, b.State)
		}
		if len(a.Result.Nodes) != len(b.Result.Nodes) {
			t.Fatalf("spec %+v: %d vs %d samples", spec, len(b.Result.Nodes), len(a.Result.Nodes))
		}
		for i := range a.Result.Nodes {
			if a.Result.Nodes[i] != b.Result.Nodes[i] {
				t.Fatalf("spec %+v sample %d: %d != %d", spec, i, b.Result.Nodes[i], a.Result.Nodes[i])
			}
		}
		if a.Result.Queries != b.Result.Queries {
			t.Fatalf("spec %+v: charges %d vs %d", spec, b.Result.Queries, a.Result.Queries)
		}
		if a.Result.Estimate != nil && *a.Result.Estimate != *b.Result.Estimate {
			t.Fatalf("spec %+v: estimates differ", spec)
		}
	}
	if fs.Stats().Total() != 0 {
		t.Fatal("zero-rate injector injected faults")
	}
}

// TestChaosAbsorbedFaultsBitIdentical is the PR's acceptance criterion: at a
// transient fault rate fully absorbed by retries, the job's sample sequence
// and its unique-node charges are bit-identical to the fault-free run —
// retries consume no sampling RNG and never double-charge the meter.
func TestChaosAbsorbedFaultsBitIdentical(t *testing.T) {
	for _, rate := range []float64{0.01, 0.05} {
		// Fresh reference per rate: both engines must start cold, or cache
		// warmth would skew the charge comparison.
		ref := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4})
		net, fs, res := chaosNetwork(t, osn.FaultConfig{
			Seed:          77,
			TransientRate: rate,
			RateLimitRate: rate / 10,
			RetryAfter:    20 * time.Microsecond,
		}, chaosPolicy())
		chaos := NewManager(NewEngine(net), Config{Runners: 1, WorkerBudget: 4})

		for _, spec := range []JobSpec{
			{Type: TypeSample, Count: 20, Seed: 5, Workers: 2}, // parallel path, batched fanout
			{Type: TypeSample, Count: 15, Seed: 9},             // sequential path
		} {
			a, b := runSpec(t, ref, spec), runSpec(t, chaos, spec)
			if a.State != JobDone || b.State != JobDone {
				t.Fatalf("rate %v spec %+v: states %v / %v (error %q)", rate, spec, a.State, b.State, b.Error)
			}
			for i := range a.Result.Nodes {
				if a.Result.Nodes[i] != b.Result.Nodes[i] {
					t.Fatalf("rate %v spec %+v sample %d: %d != %d", rate, spec, i, b.Result.Nodes[i], a.Result.Nodes[i])
				}
			}
			if a.Result.Queries != b.Result.Queries {
				t.Fatalf("rate %v spec %+v: charges %d vs %d (retry double-charge?)", rate, spec, b.Result.Queries, a.Result.Queries)
			}
		}
		if fs.Stats().Total() == 0 {
			t.Fatalf("rate %v: no faults injected — the test exercised nothing", rate)
		}
		if st := res.Stats(); st.Absorbed == 0 || st.Failures != 0 {
			t.Fatalf("rate %v: absorbed=%d failures=%d, want all faults absorbed", rate, st.Absorbed, st.Failures)
		}
		chaos.Close()
		ref.Close()
	}
}

// TestChaosMidJobOutage: a full outage mid-job fails the job with the typed
// backend_unavailable reason, keeps the samples produced before the failure
// as a partial result, charges nothing after the cancellation, and the
// daemon recovers once the outage ends.
func TestChaosMidJobOutage(t *testing.T) {
	pol := chaosPolicy()
	pol.MaxRetries = 2
	// Simulated remote latency under the injector: without it a mem-backed
	// job caches the whole 300-node graph in microseconds and finishes
	// before the outage can land mid-run.
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), time.Millisecond, 0, 4)
	fs, err := osn.NewFaultSim(sim, osn.FaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := osn.NewResilientBackend(fs, pol)
	eng := NewEngine(osn.NewNetworkOn(res))
	m := NewManager(eng, Config{Runners: 1, WorkerBudget: 4})
	defer m.Close()

	// The outage job: a large count over fresh seeds, with the backend cut
	// mid-run. NoCrawl makes every access go through the live backend.
	spec := JobSpec{Type: TypeSample, Count: 500, Seed: 1234, Workers: 2, NoCrawl: true}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the backend once the job has streamed some samples.
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().Samples < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if j.Status().Samples < 5 {
		t.Fatalf("job produced only %d samples before the cut", j.Status().Samples)
	}
	fs.StartOutage()
	st := waitJob(t, j)
	fleetAfterFail := eng.CacheStats().Queries

	if st.State != JobFailed {
		t.Fatalf("state %v, want failed (status %+v)", st.State, st)
	}
	if st.FailureReason != ReasonBackendUnavailable {
		t.Fatalf("failure reason %q, want %q (error %q)", st.FailureReason, ReasonBackendUnavailable, st.Error)
	}
	if !strings.Contains(st.Error, "backend unavailable") {
		t.Fatalf("error %q does not carry the typed cause", st.Error)
	}
	// Partial progress: the streamed samples and the partial result survive.
	if st.Samples == 0 {
		t.Fatal("pre-failure samples were discarded")
	}
	if st.Result == nil || !st.Result.Partial {
		t.Fatalf("partial result missing: %+v", st.Result)
	}
	if st.Result.Samples != len(st.Result.Nodes) || st.Result.Samples >= spec.Count {
		t.Fatalf("partial result has %d samples (nodes %d) of %d requested", st.Result.Samples, len(st.Result.Nodes), spec.Count)
	}

	// Zero charges after cancellation: the fleet meter must not move while
	// the backend stays down and no job runs.
	time.Sleep(10 * time.Millisecond)
	if after := eng.CacheStats().Queries; after != fleetAfterFail {
		t.Fatalf("fleet meter moved %d -> %d after the failed job", fleetAfterFail, after)
	}

	// Recovery: outage ends, breaker half-open probe succeeds, jobs run again.
	fs.EndOutage()
	time.Sleep(2 * pol.BreakerCooldown)
	if st := runSpec(t, m, JobSpec{Type: TypeSample, Count: 5, Seed: 3}); st.State != JobDone {
		t.Fatalf("post-outage job: %+v", st)
	}
	if bs := res.BreakerState(); bs != osn.BreakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", bs)
	}
}

// TestChaosDeadlineExceeded: deadline_ms bounds the run phase; an overrun
// fails the job with the deadline_exceeded reason and keeps partial samples.
func TestChaosDeadlineExceeded(t *testing.T) {
	// A slow backend (simulated latency) makes the deadline bite reliably.
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 2*time.Millisecond, 0, 4)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)), Config{Runners: 1, WorkerBudget: 4})
	defer m.Close()

	st := runSpec(t, m, JobSpec{Type: TypeSample, Count: 500, Seed: 1, NoCrawl: true, DeadlineMS: 50})
	if st.State != JobFailed {
		t.Fatalf("state %v, want failed (%+v)", st.State, st)
	}
	if st.FailureReason != ReasonDeadlineExceeded {
		t.Fatalf("failure reason %q, want %q (error %q)", st.FailureReason, ReasonDeadlineExceeded, st.Error)
	}
	if st.Result == nil || !st.Result.Partial {
		t.Fatalf("deadline overrun lost its partial result: %+v", st.Result)
	}
}

// TestChaosSpecValidation: negative deadlines are rejected at admission.
func TestChaosSpecValidation(t *testing.T) {
	m := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1})
	defer m.Close()
	if _, err := m.Submit(JobSpec{DeadlineMS: -1}); err == nil {
		t.Fatal("negative deadline_ms accepted")
	}
}

// TestChaosReadiness: /readyz tracks the breaker — 200 while closed, 503
// while an outage holds it open, 200 again after recovery — and /livez
// stays 200 throughout. Draining flips readiness permanently.
func TestChaosReadiness(t *testing.T) {
	pol := chaosPolicy()
	pol.MaxRetries = 1
	pol.BreakerThreshold = 2
	pol.BreakerCooldown = 50 * time.Millisecond
	net, fs, res := chaosNetwork(t, osn.FaultConfig{Seed: 1}, pol)
	m := NewManager(NewEngine(net), Config{Runners: 1, WorkerBudget: 4})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("initial readiness: %d %v", code, body)
	}
	if code, _ := get("/livez"); code != http.StatusOK {
		t.Fatalf("initial liveness: %d", code)
	}

	// Trip the breaker with a failing job under a manual outage.
	fs.StartOutage()
	st := runSpec(t, m, JobSpec{Type: TypeSample, Count: 10, Seed: 1, NoCrawl: true})
	if st.State != JobFailed {
		t.Fatalf("outage job: %+v", st)
	}
	if bs := res.BreakerState(); bs != osn.BreakerOpen {
		t.Fatalf("breaker %v after outage job, want open", bs)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["breaker"] != "open" {
		t.Fatalf("open-breaker readiness: %d %v", code, body)
	}
	if code, _ := get("/livez"); code != http.StatusOK {
		t.Fatalf("liveness during outage: %d", code)
	}
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("metrics during outage: %d", code)
	}

	// Recovery: outage ends, a successful probe closes the breaker.
	fs.EndOutage()
	time.Sleep(pol.BreakerCooldown + 5*time.Millisecond)
	if st := runSpec(t, m, JobSpec{Type: TypeSample, Count: 3, Seed: 2}); st.State != JobDone {
		t.Fatalf("recovery job: %+v", st)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("post-recovery readiness: %d %v", code, body)
	}

	// Draining: Close flips readiness to 503 while liveness stays 200.
	m.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("draining readiness: %d %v", code, body)
	}
	if code, _ := get("/livez"); code != http.StatusOK {
		t.Fatalf("liveness while draining: %d", code)
	}
}

// TestChaosStreamCarriesFailureReason: the NDJSON terminal line of a failed
// job carries the typed failure_reason.
func TestChaosStreamCarriesFailureReason(t *testing.T) {
	pol := chaosPolicy()
	pol.MaxRetries = 1
	net, fs, _ := chaosNetwork(t, osn.FaultConfig{Seed: 1}, pol)
	m := NewManager(NewEngine(net), Config{Runners: 1, WorkerBudget: 4})
	defer m.Close()
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	fs.StartOutage()
	j, err := m.Submit(JobSpec{Type: TypeSample, Count: 5, Seed: 1, NoCrawl: true})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last map[string]any
	for dec.More() {
		last = nil
		if err := dec.Decode(&last); err != nil {
			break
		}
	}
	if last == nil || last["done"] != true {
		t.Fatalf("no terminal line: %v", last)
	}
	if last["failure_reason"] != ReasonBackendUnavailable {
		t.Fatalf("terminal line %v lacks failure_reason=%s", last, ReasonBackendUnavailable)
	}
}
