package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/osn"
)

// Handler returns the service's HTTP API over the manager:
//
//	POST   /v1/jobs            submit a JobSpec, returns the job status (202)
//	GET    /v1/jobs            list all jobs
//	GET    /v1/jobs/{id}        job status (result attached once done)
//	GET    /v1/jobs/{id}/stream NDJSON: accepted samples as they are
//	                            produced, then one terminal status line
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + engine summary (alias of /livez)
//	GET    /livez               liveness: 200 while the process serves HTTP
//	GET    /readyz              readiness: 503 while draining or while the
//	                            backend circuit breaker is open
//	GET    /metrics             Prometheus text exposition
//
// Liveness and readiness are split so orchestrators can tell "restart me"
// from "stop routing to me": a draining daemon and one whose resilience
// middleware has opened the breaker (backend outage) are alive but not
// ready — they finish or fail in-flight work and recover without a restart.
//
// Routing is hand-rolled on path prefixes so it behaves identically across
// Go versions (no dependence on 1.22 ServeMux patterns).
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	live := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":            true,
			"uptime_s":      m.met.Uptime().Seconds(),
			"graph_nodes":   m.eng.NumNodes(),
			"graph_id":      m.eng.GraphID(),
			"jobs_inflight": m.met.jobsInFlight.Load(),
			"samples":       m.met.Samples(),
			"jobs_cache":    m.ResultCacheStats(),
		})
	}
	mux.HandleFunc("/healthz", live)
	mux.HandleFunc("/livez", live)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		draining := m.Draining()
		recovering := m.Recovering()
		breaker := ""
		breakerOpen := false
		if res := m.eng.Resilient(); res != nil {
			st := res.BreakerState()
			breaker = st.String()
			breakerOpen = st == osn.BreakerOpen
		}
		code := http.StatusOK
		if draining || breakerOpen || recovering {
			code = http.StatusServiceUnavailable
		}
		body := map[string]any{
			"ready":      code == http.StatusOK,
			"draining":   draining,
			"recovering": recovering,
		}
		if breaker != "" {
			body["breaker"] = breaker
		}
		writeJSON(w, code, body)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.WriteProm(w)
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			submit(m, w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
		default:
			httpError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
		}
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id, stream := trimID(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"))
		job, ok := m.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		switch {
		case stream && r.Method == http.MethodGet:
			streamJob(w, r, job)
		case r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, job.Status())
		case r.Method == http.MethodDelete:
			m.Cancel(id)
			writeJSON(w, http.StatusOK, job.Status())
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET for status/stream or DELETE to cancel")
		}
	})
	return mux
}

func submit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	job, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		shed(w, "queue_full")
	case errors.Is(err, ErrClosed):
		shed(w, "draining")
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

// shedRetryAfter is the backoff hint attached to load-shedding 503s. One
// second clears a full queue at any realistic drain rate without turning
// well-behaved clients into a thundering herd.
const shedRetryAfter = time.Second

// shed answers an overloaded (or draining) submission: a typed 503 with a
// machine-readable retry hint in both the Retry-After header (whole
// seconds) and the JSON body (milliseconds, for sub-second policies).
func shed(w http.ResponseWriter, reason string) {
	secs := int(shedRetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":          reason,
		"retry_after_ms": shedRetryAfter.Milliseconds(),
	})
}

// streamJob serves NDJSON: one line per accepted sample, as it is produced,
// and one final terminal-status line. Streaming attaches at any time — lines
// already produced are replayed first, so a replay of a finished job is the
// full sequence.
func streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must wake the cond-wait below, or the handler
	// goroutine would linger until the job's next publish.
	stop := context.AfterFunc(r.Context(), job.wake)
	defer stop()

	from := 0
	for {
		batch, terminal := job.waitSamples(r.Context(), from)
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				return
			}
		}
		from += len(batch)
		if fl != nil {
			fl.Flush()
		}
		if r.Context().Err() != nil {
			return
		}
		if terminal && len(batch) == 0 {
			st := job.Status()
			line := map[string]any{
				"done":    true,
				"state":   st.State,
				"samples": st.Samples,
				"error":   st.Error,
			}
			if st.FailureReason != "" {
				line["failure_reason"] = st.FailureReason
			}
			if st.Result != nil && st.Result.Cached {
				line["cached"] = true
			}
			enc.Encode(line)
			if fl != nil {
				fl.Flush()
			}
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
