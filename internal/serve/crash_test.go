package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/osn"
)

// Kill-9 integration tests: a real daemon subprocess (this test binary
// re-exec'd into helperProcess) serving the journal-backed manager over
// HTTP, killed without warning mid-stream, restarted on the same journal
// directory, and checked against an uninterrupted in-process reference run.

// TestHelperProcess is not a test: it is the daemon subprocess. It builds
// the same graph as testNetwork behind a slow simulated backend (so jobs
// are killable mid-stream), opens the journal directory from the
// environment, serves the HTTP API on an ephemeral port written to the
// addr file, and runs until SIGTERM (graceful drain) or SIGKILL.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("WNW_SERVE_HELPER") != "1" {
		t.Skip("helper process, not a test")
	}
	dir := os.Getenv("WNW_JOURNAL_DIR")
	addrFile := os.Getenv("WNW_ADDR_FILE")
	if dir == "" || addrFile == "" {
		t.Fatal("helper needs WNW_JOURNAL_DIR and WNW_ADDR_FILE")
	}
	jl, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncInterval, FsyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(42)))
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 500*time.Microsecond, 0, 8)
	m := NewManager(NewEngine(osn.NewNetworkOn(sim)),
		Config{Runners: 1, WorkerBudget: 4, Journal: jl})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Write-then-rename so the parent never reads a half-written address.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}

	srv := &http.Server{Handler: Handler(m)}
	go srv.Serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	// SIGTERM: graceful drain — cancel in-flight jobs, journal their
	// terminals, flush and fsync. SIGKILL never reaches here.
	m.Close()
	srv.Close()
}

// helperCmd spawns this test binary as the daemon subprocess and waits for
// its HTTP address.
func helperCmd(t *testing.T, dir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess$")
	cmd.Env = append(os.Environ(),
		"WNW_SERVE_HELPER=1",
		"WNW_JOURNAL_DIR="+dir,
		"WNW_ADDR_FILE="+addrFile,
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, "http://" + string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("helper never published its address; output:\n%s", out.String())
	return nil, ""
}

// streamRows GETs a job's NDJSON stream and returns its sample rows.
func streamRows(t *testing.T, base, id string) []Sample {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []Sample
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			var term struct {
				Done bool `json:"done"`
			}
			if json.Unmarshal(line, &term) == nil && term.Done {
				break
			}
		}
		var s Sample
		if err := json.Unmarshal(line, &s); err == nil {
			rows = append(rows, s)
		}
	}
	return rows
}

func postSpec(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func jobSamples(base, id string) (int, string) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return -1, ""
	}
	defer resp.Body.Close()
	var st JobStatus
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return -1, ""
	}
	return st.Samples, string(st.State)
}

// Kill -9 mid-stream, restart on the same journal, and the resumed job's
// full client-visible stream is bit-identical to an uninterrupted run.
func TestCrashKill9ResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	spec := JobSpec{Type: TypeSample, Count: 60, Seed: 5, Workers: 2}

	// Uninterrupted reference on a cold in-process engine. The subprocess
	// serves the same graph (same generator seed); the simulated latency
	// wrapper changes timing only, never data or charges.
	ref := NewManager(NewEngine(testNetwork(t)), Config{Runners: 1, WorkerBudget: 4})
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, rj); st.State != JobDone {
		t.Fatalf("reference: %+v", st)
	}
	want := allRows(t, rj)
	ref.Close()

	cmd, base := helperCmd(t, dir, addrFile)
	id := postSpec(t, base, spec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, _ := jobSamples(base, id)
		if n >= 10 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("job never reached the kill point (samples=%d)", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n, state := jobSamples(base, id); state != string(JobRunning) || n >= spec.Count {
		t.Fatalf("kill point not mid-stream: state=%s samples=%d", state, n)
	}
	cmd.Process.Kill() // SIGKILL: no drain, no terminal records
	cmd.Wait()

	cmd2, base2 := helperCmd(t, dir, addrFile)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	deadline = time.Now().Add(60 * time.Second)
	for {
		_, state := jobSamples(base2, id)
		if state == string(JobDone) {
			break
		}
		if JobState(state).Terminal() {
			t.Fatalf("resumed job ended %s", state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished (state=%s)", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := streamRows(t, base2, id)
	sameRows(t, got, want, "post-crash resumed stream")

	// Recovery metrics: the restart counted one resumed job, journal appends
	// flowed, and the recovery duration was recorded.
	metrics := scrapeMetrics(t, base2)
	if v := metricValue(metrics, `walknotwait_jobs_recovered_total{mode="resumed"}`); v != 1 {
		t.Fatalf("jobs_recovered_total{resumed} = %v, want 1", v)
	}
	if v := metricValue(metrics, "walknotwait_journal_appends_total"); v <= 0 {
		t.Fatalf("journal_appends_total = %v, want > 0", v)
	}
	if !strings.Contains(metrics, "walknotwait_recovery_seconds") {
		t.Fatal("recovery_seconds missing from /metrics")
	}
}

// SIGTERM drains gracefully: in-flight jobs are cancelled and journaled, the
// journal is flushed and fsynced, and the next boot recovers exactly the
// drained state — every job terminal, exactly once, nothing to resume.
func TestCrashSigtermGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd, base := helperCmd(t, dir, addrFile)

	fastID := postSpec(t, base, JobSpec{Type: TypeSample, Count: 3, Seed: 11})
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, state := jobSamples(base, fastID)
		if state == string(JobDone) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("fast job never finished (state=%s)", state)
		}
		time.Sleep(2 * time.Millisecond)
	}
	longID := postSpec(t, base, JobSpec{Type: TypeSample, Count: 1000000, Seed: 1})
	for {
		n, _ := jobSamples(base, longID)
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("long job never produced a sample")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper did not exit cleanly on SIGTERM: %v", err)
	}

	jl, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	recs, _ := jl.Recovered()
	if len(recs) != 2 {
		t.Fatalf("drained journal holds %d records, want 2: %+v", len(recs), recs)
	}
	byID := map[string]JobRecord{}
	for _, r := range recs {
		if _, dup := byID[r.ID]; dup {
			t.Fatalf("duplicate terminal record for %s", r.ID)
		}
		byID[r.ID] = r
	}
	if r := byID[fastID]; r.State != JobDone || len(r.Rows) != 3 {
		t.Fatalf("fast job drained wrong: state=%s rows=%d", r.State, len(r.Rows))
	}
	if r := byID[longID]; r.State != JobCancelled {
		t.Fatalf("long job drained wrong: state=%s, want cancelled", r.State)
	}
	if len(byID[longID].Rows) == 0 {
		t.Fatal("cancelled job lost its partial samples")
	}
}

// scrapeMetrics fetches /metrics as text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// metricValue extracts a metric line's value (-1 when absent).
func metricValue(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
		}
	}
	return -1
}
