package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},              // W(e) = 1
		{2 * math.E * math.E, 2}, // W(2e^2) = 2
		{-OneOverE, -1},
		{1, 0.5671432904097838}, // omega constant
		{-0.2, -0.25917110181907377},
	}
	for _, c := range cases {
		got := LambertW0(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LambertW0(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLambertWm1KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{-OneOverE, -1},
		{-2 * math.Exp(-2), -2}, // W-1(-2e^-2) = -2
		{-5 * math.Exp(-5), -5},
	}
	for _, c := range cases {
		got := LambertWm1(c.x)
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("LambertWm1(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLambertWDomains(t *testing.T) {
	if !math.IsNaN(LambertW0(-1)) {
		t.Error("W0(-1) should be NaN")
	}
	if !math.IsNaN(LambertWm1(0.5)) {
		t.Error("W-1(0.5) should be NaN")
	}
	if !math.IsNaN(LambertWm1(0)) {
		t.Error("W-1(0) should be NaN")
	}
	if !math.IsNaN(LambertW0(math.NaN())) {
		t.Error("W0(NaN) should be NaN")
	}
}

func TestPropertyLambertWInverse(t *testing.T) {
	// W0: for any w >= -1, LambertW0(w e^w) == w.
	prop0 := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 20) - 1 // w in [-1, 19)
		x := w * math.Exp(w)
		got := LambertW0(x)
		return math.Abs(got-w) <= 1e-9*(1+math.Abs(w))
	}
	if err := quick.Check(prop0, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// W-1: for any w <= -1, LambertWm1(w e^w) == w.
	prop1 := func(raw float64) bool {
		w := -1 - math.Mod(math.Abs(raw), 30) // w in (-31, -1]
		x := w * math.Exp(w)
		if x >= 0 { // extreme underflow; skip
			return true
		}
		got := LambertWm1(x)
		return math.Abs(got-w) <= 1e-8*(1+math.Abs(w))
	}
	if err := quick.Check(prop1, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	// 1 + 1e-16 added 1e5 times loses precision with naive summation.
	k.Add(1)
	for i := 0; i < 100000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-11
	if math.Abs(k.Sum()-want) > 1e-18 {
		t.Errorf("KahanSum = %.20f, want %.20f", k.Sum(), want)
	}
}

func TestMoments(t *testing.T) {
	var m Moments
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m.Mean())
	}
	if math.Abs(m.PopVariance()-4) > 1e-12 {
		t.Errorf("PopVariance = %v, want 4", m.PopVariance())
	}
	if math.Abs(m.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", m.Variance(), 32.0/7.0)
	}
	if math.Abs(m.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", m.StdDev())
	}
	var empty Moments
	if empty.Mean() != 0 || empty.Variance() != 0 || empty.PopVariance() != 0 {
		t.Error("empty moments should be 0")
	}
}

func TestMeanHarmonicMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	// Harmonic mean of {1,2,4}: 3/(1+0.5+0.25) = 12/7.
	if got := HarmonicMean([]float64{1, 2, 4}); math.Abs(got-12.0/7.0) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want %v", got, 12.0/7.0)
	}
	if !math.IsNaN(HarmonicMean([]float64{1, 0})) {
		t.Error("HarmonicMean with zero should be NaN")
	}
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Error("HarmonicMean(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("q1 = %v", got)
	}
	// median of sorted [1 1 2 3 4 5 6 9] = (3+4)/2
	if got := Quantile(xs, 0.5); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("median = %v, want 3.5", got)
	}
	// Input must not be modified.
	if xs[0] != 3 {
		t.Error("Quantile modified its input")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
	// 10th percentile of 0..10 = 1.0 under type-7.
	seq := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := QuantileSorted(seq, 0.1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("p10 = %v, want 1", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { QuantileSorted(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}
