// Package mathx provides the numeric kernels the walknotwait library needs
// beyond the standard math package: the Lambert W function (both real
// branches, used by the paper's Theorem 1 closed form for the optimal walk
// length), compensated summation, streaming moment accumulators, and
// quantiles.
package mathx

import (
	"fmt"
	"math"
	"sort"
)

// OneOverE is 1/e, the left endpoint -1/e of Lambert W's real domain negated.
const OneOverE = 1.0 / math.E

// LambertW0 evaluates the principal branch W0 of the Lambert W function,
// the solution w >= -1 of w·e^w = x, for x >= -1/e. It returns NaN outside
// the domain. Accuracy is ~1e-14 via Halley iteration.
func LambertW0(x float64) float64 {
	switch {
	case math.IsNaN(x), x < -OneOverE-1e-15:
		return math.NaN()
	case x <= -OneOverE:
		return -1
	case x == 0:
		return 0
	}
	// Initial guess.
	var w float64
	switch {
	case x < -0.25:
		// Series around the branch point x = -1/e.
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < 1:
		w = x * (1 - x + 1.5*x*x) // Taylor at 0
	default:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}
	return halley(x, w)
}

// LambertWm1 evaluates the secondary real branch W−1, the solution w <= -1 of
// w·e^w = x, defined for x in [-1/e, 0). It returns NaN outside the domain.
func LambertWm1(x float64) float64 {
	switch {
	case math.IsNaN(x), x < -OneOverE-1e-15, x >= 0:
		return math.NaN()
	case x <= -OneOverE:
		return -1
	}
	// Initial guess.
	var w float64
	if x < -0.25 {
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 - p - p*p/3 - 11.0/72.0*p*p*p
	} else {
		// For x -> 0-, W-1(x) ~ ln(-x) - ln(-ln(-x)).
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	}
	return halley(x, w)
}

// halley refines w toward the root of w·e^w - x with Halley's method.
func halley(x, w float64) float64 {
	for i := 0; i < 60; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			return w
		}
		wp1 := w + 1
		denom := ew*wp1 - (w+2)*f/(2*wp1)
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-14*(1+math.Abs(w)) {
			return w
		}
	}
	return w
}

// KahanSum accumulates float64 values with Kahan–Babuška compensated
// summation. The zero value is ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Moments accumulates streaming mean and variance via Welford's algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates an observation.
func (m *Moments) Add(v float64) {
	m.n++
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 with no observations).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// PopVariance returns the population variance (0 for n < 1).
func (m *Moments) PopVariance() float64 {
	if m.n < 1 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum() / float64(len(xs))
}

// HarmonicMean returns len(xs) / sum(1/x). All entries must be positive;
// it returns NaN for empty input or non-positive entries.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var k KahanSum
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		k.Add(1 / x)
	}
	return float64(len(xs)) / k.Sum()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (numpy's default / Hyndman-Fan
// type 7). The input is not modified. It panics for empty input or q outside
// [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("mathx: Quantile q=%v outside [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for already-sorted input, without copying.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("mathx: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("mathx: QuantileSorted q=%v outside [0,1]", q))
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
