package core

import "repro/internal/fastrand"

// This file is the WS-BW step-distribution cache. The tempered transition
// mix backStep samples for a (node, step) pair starts from an O(deg) gather
// of the history row restricted to the candidate list, recomputed on every
// visit — yet backward walks revisit the same hub rows constantly (hubs
// carry most of the probability mass forward walks deposit, and the
// tempered mix steers backward walks straight into them).
//
// What is cached is the *gather*, not a frozen sampling structure: the
// sparse restriction of the row to the candidate list — ascending candidate
// indices with nonzero hit counts, plus their sum z. That choice follows
// from how the row actually evolves: every recorded forward walk deposits
// exactly one hit per step, and degree-biased walks land in hub
// neighborhoods almost every attempt, so hub entries are perturbed between
// most visits. A frozen CDF (or alias table) cannot absorb a perturbation
// incrementally — one hit changes z and with it every smoothed term — so it
// would be re-derived at O(deg) on nearly every revisit, which is the cost
// of the scalar step it was meant to replace. The sparse restriction,
// by contrast, absorbs a perturbation in O(log deg): walk j changed the
// (node, step) distribution iff path_j[step-1] is one of node's candidates —
// and then by exactly one hit increment at that candidate, applied by a
// binary search and bump against the recent-walk ring (History.ring).
// Selection then runs the same sparse scan the scalar path uses
// (selectSparse), so a served step skips only the row gather — the dominant
// cost — and stays bit-identical by construction.
//
// Entries do freeze a CDF, but lazily: only when a revisit arrives *clean*
// (the entry is already reconciled to the current walk count — repeated
// backward reps between recorded walks, or workers estimating against a
// frozen COW snapshot). Then the exact prefix sums are derived once and
// subsequent clean serves are one binary search, with the chosen index and
// pick probability still bit-identical to the scalar scan (cum holds the
// scalar loop's exact partial sums). Any reconcile invalidates the CDF and
// sampling falls back to the sparse scan; the derive cost is only ever paid
// against serves it can amortize.
//
// Gate. The cache serves only frozen Snapshot views (History.Frozen): the
// parallel pipeline's workers, and any caller estimating against a held-
// still view. Against the live history the sequential sampler perturbs, it
// is not consulted at all — measured there, hub revisits are spread across
// ~4k (node, step) keys while the recent-walk ring holds 32 paths, so most
// entries age out before their next visit and the cache builds two entries
// for every step it serves; the plain filtered gather wins outright. On a
// frozen view the same working set is revisited at a single walk count, so
// entries amortize across the whole generation and reconcile (below) only
// runs once per snapshot refresh.
//
// Validity. An entry is stamped with the history's (lineage, walks). Equal
// stamps mean bit-identical counters (snapshots share their source's
// lineage; Release starts a new one). Entries whose walk gap exceeds the
// ring's reach, whose lineage moved, or whose candidate count drifted are
// rebuilt from the scalar gather on the next visit, reusing their arrays.
//
// Memory. Entries are proportional to their nonzero restriction (plus the
// lazy cum, total slots capped via totalSlots with whole-cache epoch clears
// — cheaper than LRU bookkeeping on the hot path). After warm-up on a
// frozen history the cache neither allocates nor rebuilds, preserving the
// zero-alloc contracts on backStep and EstimateOnce.
type stepCache struct {
	m          map[uint64]*stepEntry
	totalSlots int
	stats      StepCacheStats
}

// stepEntry caches the sparse row restriction of one (node, step) pair:
// idx holds the ascending candidate indices with nonzero history hits, cnt
// their counts, z the total hit mass. cum/base/scale are the lazily frozen
// CDF, valid only while cumWalks == walks.
type stepEntry struct {
	lineage uint64 // history content line the entry was built against
	walks   int    // walk count the entry is reconciled through
	deg     int32  // len(nbr) at build time (guards candidate drift)
	sorted  bool   // nbr was ascending at build time (enables reconcile)

	z   int64   // Σ cnt, the row mass over the candidate list
	idx []int32 // ascending candidate indices with nonzero hits
	cnt []int32 // hit counts, parallel to idx

	// Lazily derived exact prefix sums (the scalar scan's partial sums),
	// valid while cumWalks == walks; cumWalks == -1 means never derived.
	base, scale float64
	cum         []float64
	cumWalks    int
}

// StepCacheStats counts step-distribution cache outcomes. Hits served a
// backward step from a cached restriction (skipping the row gather);
// Revalidated hits additionally reconciled the entry across newly recorded
// walks via the ring; Misses ran the scalar gather (first sightings and
// stale rebuilds); Builds stored a restriction; Epochs counts whole-cache
// clears at the slot cap.
type StepCacheStats struct {
	Hits        int64
	Revalidated int64
	Misses      int64
	Builds      int64
	Epochs      int64
}

// HitRate returns Hits / (Hits + Misses), 0 before any lookup.
func (s StepCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const (
	// stepCacheMinDeg gates caching to hub candidate sets: below it the
	// scalar scan is already a few cache lines and the map traffic would not
	// pay for itself.
	stepCacheMinDeg = 64
	// stepCacheMaxStep bounds the step component of the packed map key.
	// Walk lengths are ~2·diameter+1, far below it.
	stepCacheMaxStep = 256
	// stepCacheMaxSlots caps Σ len(entry.idx) at build time. Hitting the cap
	// clears the cache (a rare epoch event on realistic graphs — the working
	// set is hubs × steps) rather than tracking LRU.
	stepCacheMaxSlots = 1 << 21
)

func stepCacheKey(node, step int) uint64 {
	return uint64(node)<<8 | uint64(step)
}

// cacheStep serves one gated backward step from the cache if it holds a
// valid (reconcilable) entry for (node, step). On a hit it consumes exactly
// the randomness the scalar path would — one Intn when the restriction is
// empty, one Float64 otherwise — and returns done = true with the chosen
// candidate index and its pick probability, bit-identical to the scalar
// scan. Returns done = false (caller gathers and stores) for absent, stale,
// or ring-exceeded entries.
func (e *Estimator) cacheStep(node, step int, nbr []int32, total int, rng fastrand.RNG) (chosen int, pick float64, done bool) {
	if e.cache == nil {
		e.cache = &stepCache{m: make(map[uint64]*stepEntry)}
	}
	sc := e.cache
	h := e.Hist
	ent := sc.m[stepCacheKey(node, step)]
	if ent == nil || ent.lineage != h.lineage || int(ent.deg) != len(nbr) {
		return 0, 0, false
	}
	clean := ent.walks == h.walks
	if !clean {
		if !ent.sorted || h.walks < ent.walks || h.walks-ent.walks > histRingSize {
			return 0, 0, false
		}
		// The guard above bounds the gap to the ring capacity, so every path
		// in [ent.walks, h.walks) is still resident (nil only defensively).
		for j := ent.walks; j < h.walks; j++ {
			p := h.ringPath(j)
			if p == nil {
				return 0, 0, false
			}
			if step-1 >= len(p) {
				continue // that walk recorded nothing at this row
			}
			w := p[step-1]
			if e.selfLoops && w == node {
				ent.bump(int32(total - 1)) // self-loop slot is last
			} else if k, ok := indexSorted(nbr, int32(w)); ok {
				ent.bump(int32(k))
			}
		}
		ent.walks = h.walks
		sc.stats.Revalidated++
	}
	sc.stats.Hits++
	if ent.z == 0 {
		i := rng.Intn(total)
		return i, 1 / float64(total), true
	}
	if ent.cumWalks != ent.walks {
		if !clean {
			// Perturbed since the last visit: sample straight from the
			// sparse restriction; freezing prefix sums here could be wasted
			// by the next recorded walk.
			chosen, pick = selectSparse(ent.idx, ent.cnt, ent.z, total, e.eps, rng)
			return chosen, pick, true
		}
		// Second visit at this walk count: the history is holding still
		// (repeated reps, or a frozen snapshot), so freeze the CDF once and
		// serve every further clean visit with a binary search.
		ent.derive(total, e.eps)
	}
	chosen, pick = ent.selectCDF(total, rng)
	return chosen, pick, true
}

// cacheStore records the scalar gather for a gated (node, step) so the next
// visit is served from the cache: hits is the dense gather the scalar path
// just produced (z its sum, an exact small-integer fp value), compressed
// here into the entry's sparse restriction; a nil hits with z == 0 records
// the certainly-empty restriction the filter prescan proved without
// gathering. The entry reuses the arrays of any stale predecessor. Never
// consumes randomness — the caller's scalar selection does.
func (e *Estimator) cacheStore(node, step int, nbr []int32, total int, hits []float64, z float64) {
	sc := e.cache
	sc.stats.Misses++
	key := stepCacheKey(node, step)
	h := e.Hist
	ent := sc.m[key]
	if ent == nil {
		if sc.totalSlots+total > stepCacheMaxSlots {
			clear(sc.m)
			sc.totalSlots = 0
			sc.stats.Epochs++
		}
		ent = &stepEntry{}
		sc.m[key] = ent
		sc.totalSlots += total
	}
	ent.lineage = h.lineage
	ent.walks = h.walks
	ent.deg = int32(len(nbr))
	ent.sorted = sortedAsc(nbr)
	ent.z = int64(z)
	ent.idx = ent.idx[:0]
	ent.cnt = ent.cnt[:0]
	for i, hv := range hits {
		if hv != 0 {
			ent.idx = append(ent.idx, int32(i))
			ent.cnt = append(ent.cnt, int32(hv))
		}
	}
	ent.cumWalks = -1
	sc.stats.Builds++
}

// bump applies one hit increment at candidate index i, inserting it into
// the sparse restriction if it was zero (counts only ever grow, so entries
// never shrink).
func (ent *stepEntry) bump(i int32) {
	ent.z++
	k, ok := indexSorted(ent.idx, i)
	if ok {
		ent.cnt[k]++
		return
	}
	ent.idx = append(ent.idx, 0)
	copy(ent.idx[k+1:], ent.idx[k:])
	ent.idx[k] = i
	ent.cnt = append(ent.cnt, 0)
	copy(ent.cnt[k+1:], ent.cnt[k:])
	ent.cnt[k] = 1
}

// indexSorted finds v in the ascending list (binary search), returning its
// index, or the insertion point and false.
func indexSorted(list []int32, v int32) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == v
}

// sortedAsc reports whether the list is ascending (duplicates allowed; the
// one-pass check is folded into the O(deg) entry build).
func sortedAsc(list []int32) bool {
	for i := 1; i < len(list); i++ {
		if list[i-1] > list[i] {
			return false
		}
	}
	return true
}

// selectSparse draws a candidate index from the tempered WS-BW mix given
// the sparse row restriction — idx ascending candidate indices with counts
// cnt, z > 0 their total — consuming one Float64. It is the scalar
// selection kernel: bit-identical to an add-and-compare scan over the dense
// hits vector, because every term is the same fp expression in the same
// order (a zero-hit term is base + scale·(0+1) = base + scale exactly, so
// zero runs between sparse entries add a precomputed constant) and the
// early break is at the same index.
func selectSparse(idx, cnt []int32, z int64, total int, eps float64, rng fastrand.RNG) (chosen int, pick float64) {
	zf := float64(z)
	uniform := 1 / float64(total)
	smoothZ := zf + float64(total) // Laplace: +1 per candidate
	beta := (1 - eps) * zf / smoothZ
	base := (1 - beta) * uniform
	scale := beta / smoothZ
	t0 := base + scale // zero-hit term: base + scale·(0+1)
	r := rng.Float64()
	acc := 0.0
	i := 0
	for k := 0; k <= len(idx); k++ {
		lim := total
		if k < len(idx) {
			lim = int(idx[k])
		}
		for ; i < lim; i++ { // zero-hit run
			acc += t0
			if r < acc {
				return i, t0
			}
		}
		if k == len(idx) {
			break
		}
		term := base + scale*(float64(cnt[k])+1)
		acc += term
		if r < acc {
			return i, term
		}
		i++
	}
	// fp rounding left r ≥ the final acc: scalar default, last slot.
	chosen = total - 1
	var h float64
	if n := len(idx); n > 0 && int(idx[n-1]) == total-1 {
		h = float64(cnt[n-1])
	}
	return chosen, base + scale*(h+1)
}

// derive freezes the exact prefix sums of the tempered mix — the scalar
// scan's partial sums, term for term — so clean revisits select with one
// binary search. Called only with z > 0.
func (ent *stepEntry) derive(total int, eps float64) {
	zf := float64(ent.z)
	uniform := 1 / float64(total)
	smoothZ := zf + float64(total)
	beta := (1 - eps) * zf / smoothZ
	ent.base = (1 - beta) * uniform
	ent.scale = beta / smoothZ
	if cap(ent.cum) < total {
		ent.cum = make([]float64, total)
	}
	cum := ent.cum[:total]
	t0 := ent.base + ent.scale
	acc := 0.0
	sp := 0
	for i := 0; i < total; i++ {
		term := t0
		if sp < len(ent.idx) && int(ent.idx[sp]) == i {
			term = ent.base + ent.scale*(float64(ent.cnt[sp])+1)
			sp++
		}
		acc += term
		cum[i] = acc
	}
	ent.cum = cum
	ent.cumWalks = ent.walks
}

// selectCDF draws from the frozen prefix sums: the smallest i with
// r < cum[i] — the index the scalar add-and-compare loop stops at — with
// the pick recomputed from the same base + scale·(hits+1) term, so chosen
// and pick are bit-identical to the scalar scan. Consumes one Float64.
func (ent *stepEntry) selectCDF(total int, rng fastrand.RNG) (chosen int, pick float64) {
	r := rng.Float64()
	cum := ent.cum[:total]
	lo, hi := 0, total
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r < cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == total {
		lo = total - 1 // scalar default when fp rounding leaves r ≥ acc
	}
	term := ent.base + ent.scale // zero-hit term
	if k, ok := indexSorted(ent.idx, int32(lo)); ok {
		term = ent.base + ent.scale*(float64(ent.cnt[k])+1)
	}
	return lo, term
}
