package core

// History accumulates, per (node, step) pair, how many of the forward walks
// performed so far visited that node at that step. It feeds the weighted
// sampling heuristic of Section 5.3 (WS-BW, Algorithm 2): backward steps are
// biased toward neighbors that forward walks actually reach, because those
// carry most of the probability mass being estimated.
//
// Counters are stored as step-indexed dense slices (counts[step][node]) that
// grow on demand, so the WS-BW inner loop — one Hits lookup per predecessor
// candidate per backward step — is two array indexings instead of a map hash.
// The tradeoff: each step row grows to the maximum node id visited at that
// step, so memory (and Snapshot cost) is O(maxVisitedId · walkLength) —
// about 4 MB for a 50k-node graph at walk length 15 — rather than the
// O(walks · walkLength) of the map it replaced. At the multi-million-node
// scale a sparse row representation would be worth revisiting.
type History struct {
	counts [][]int32 // counts[step][node]; short rows mean zero hits beyond
	walks  int
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{}
}

// RecordWalk registers a forward walk path (path[i] = node visited at step i).
func (h *History) RecordWalk(path []int) {
	for len(h.counts) < len(path) {
		h.counts = append(h.counts, nil)
	}
	for step, node := range path {
		row := h.counts[step]
		if node >= len(row) {
			grown := make([]int32, node+1+node/2) // slack to amortize regrowth
			copy(grown, row)
			row = grown
			h.counts[step] = row
		}
		row[node]++
	}
	h.walks++
}

// Hits returns n_{node,step}: how many recorded walks visited node at step.
func (h *History) Hits(node, step int) int {
	if step < 0 || step >= len(h.counts) {
		return 0
	}
	row := h.counts[step]
	if node < 0 || node >= len(row) {
		return 0
	}
	return int(row[node])
}

// Walks returns n_hw, the number of recorded forward walks.
func (h *History) Walks() int { return h.walks }

// Snapshot returns an immutable deep copy of the history. The parallel
// sampling pipeline hands snapshots to its estimation workers so WS-BW reads
// never race the recorder: the recorder keeps mutating the live history
// while workers read the frozen copy, with no locks on either side.
func (h *History) Snapshot() *History {
	s := &History{walks: h.walks}
	if len(h.counts) > 0 {
		s.counts = make([][]int32, len(h.counts))
		for i, row := range h.counts {
			s.counts[i] = append([]int32(nil), row...)
		}
	}
	return s
}
