package core

// History accumulates, per (node, step) pair, how many of the forward walks
// performed so far visited that node at that step. It feeds the weighted
// sampling heuristic of Section 5.3 (WS-BW, Algorithm 2): backward steps are
// biased toward neighbors that forward walks actually reach, because those
// carry most of the probability mass being estimated.
//
// Counters are stored as step-indexed dense slices (counts[step][node]) that
// grow on demand. The WS-BW inner loop asks for the whole per-step row once
// (Row) and indexes it directly per predecessor candidate — one bounds check
// and one array load, no map hash and no per-candidate method call. The
// tradeoff: each step row grows to the maximum node id visited at that
// step, so memory (and Snapshot cost) is O(maxVisitedId · walkLength) —
// about 4 MB for a 50k-node graph at walk length 15 — rather than the
// O(walks · walkLength) of the map it replaced. At the multi-million-node
// scale a sparse row representation would be worth revisiting.
type History struct {
	counts [][]int32 // counts[step][node]; short rows mean zero hits beyond
	// nz[step] is the nonzero bitset of counts[step]: bit v is set iff
	// counts[step][v] > 0. Hit rows are long (max visited id) but extremely
	// sparse (at most one nonzero per recorded walk), so the candidate scan
	// tests the 64×-denser, cache-resident bitset first and touches the
	// counter row only for the few candidates that actually have hits.
	nz    [][]uint64
	walks int
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{}
}

// RecordWalk registers a forward walk path (path[i] = node visited at step i).
func (h *History) RecordWalk(path []int) {
	for len(h.counts) < len(path) {
		h.counts = append(h.counts, nil)
		h.nz = append(h.nz, nil)
	}
	for step, node := range path {
		row := h.counts[step]
		if node >= len(row) {
			grown := make([]int32, node+1+node/2) // slack to amortize regrowth
			copy(grown, row)
			row = grown
			h.counts[step] = row
			words := make([]uint64, (len(row)+63)/64)
			copy(words, h.nz[step])
			h.nz[step] = words
		}
		row[node]++
		h.nz[step][uint(node)>>6] |= 1 << (uint(node) & 63)
	}
	h.walks++
}

// Row returns the dense hit-counter row for one step: Row(step)[v] is the
// number of recorded walks that visited v at that step. Nodes at or beyond
// len(Row(step)) have zero hits; out-of-range steps yield an empty row. The
// returned slice aliases live counters and must not be modified; against a
// Snapshot it is immutable. Row never allocates.
func (h *History) Row(step int) []int32 {
	if step < 0 || step >= len(h.counts) {
		return nil
	}
	return h.counts[step]
}

// RowBits returns the nonzero bitset of Row(step): bit v is set iff
// Row(step)[v] > 0. A set bit guarantees v < len(Row(step)), so callers may
// index the row unconditionally after testing the bit. Like Row it aliases
// live state, must not be modified, and never allocates.
func (h *History) RowBits(step int) []uint64 {
	if step < 0 || step >= len(h.nz) {
		return nil
	}
	return h.nz[step]
}

// Hits returns n_{node,step}: how many recorded walks visited node at step.
func (h *History) Hits(node, step int) int {
	if step < 0 || step >= len(h.counts) {
		return 0
	}
	row := h.counts[step]
	if node < 0 || node >= len(row) {
		return 0
	}
	return int(row[node])
}

// Walks returns n_hw, the number of recorded forward walks.
func (h *History) Walks() int { return h.walks }

// Snapshot returns an immutable deep copy of the history. The parallel
// sampling pipeline hands snapshots to its estimation workers so WS-BW reads
// never race the recorder: the recorder keeps mutating the live history
// while workers read the frozen copy, with no locks on either side.
func (h *History) Snapshot() *History {
	s := &History{walks: h.walks}
	if len(h.counts) > 0 {
		s.counts = make([][]int32, len(h.counts))
		for i, row := range h.counts {
			s.counts[i] = append([]int32(nil), row...)
		}
		s.nz = make([][]uint64, len(h.nz))
		for i, words := range h.nz {
			s.nz[i] = append([]uint64(nil), words...)
		}
	}
	return s
}
