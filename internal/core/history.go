package core

import (
	"sync"
	"sync/atomic"
)

// History accumulates, per (node, step) pair, how many of the forward walks
// performed so far visited that node at that step. It feeds the weighted
// sampling heuristic of Section 5.3 (WS-BW, Algorithm 2): backward steps are
// biased toward neighbors that forward walks actually reach, because those
// carry most of the probability mass being estimated.
//
// Counters are stored in fixed-size pages of histPageSize node ids, indexed
// by a per-step page directory (pages[step][node>>histPageShift]) that grows
// on demand. A page is allocated — from a PagePool, so a long-lived service
// recycles them across jobs — the first time a walk visits its id range at
// that step, so per-walk memory is bounded by the visited mass (plus one
// directory pointer per histPageSize ids up to the maximum visited id),
// never by the graph's id space: on a multi-million-node graph a walk that
// touches 10k nodes holds KBs of directory and a few MB of pages instead of
// the O(maxId · walkLength) counters of the dense layout this replaces.
//
// Snapshot is copy-on-write: it copies only the page directories and shares
// the pages themselves (refcounted), so snapshot cost is bounded the same
// way. The recorder clones a shared page the next time it writes into it,
// so snapshots are immutable without locks on either side.
//
// Each page carries a nonzero bitset over its counters. Hit pages are
// extremely sparse (at most one nonzero per recorded walk), so the WS-BW
// candidate scan tests the 64×-denser, cache-resident bitset word first and
// touches the wide counter array only for the few candidates that actually
// have hits.
type History struct {
	pages [][]*histPage // pages[step][node>>histPageShift]
	walks int
	pool  *PagePool

	// frozen marks an immutable Snapshot view. The step-distribution cache
	// (stepcache.go) serves only frozen views: against a live, per-walk-
	// perturbed history the cache structurally cannot amortize (every hub
	// revisit arrives dirty), while against a snapshot entries stay clean for
	// the whole generation and the lazily frozen CDF turns O(deg) gathers
	// into O(log deg) selections.
	frozen bool

	// lineage identifies the content line this history belongs to: assigned
	// from a process-wide counter at construction, shared by every Snapshot
	// (same recorded walks, same counters), and re-assigned by Release
	// (content resets to empty). Together with the walk count it gives the
	// step-distribution cache in backward.go a cheap validity key: two
	// histories with equal (lineage, walks) hold bit-identical counters.
	lineage uint64

	// ring holds copies of the most recently recorded walk paths, indexed by
	// walk number modulo histRingSize: after RecordWalk has run w times,
	// ring[j%histRingSize] is walk j's path for every j in [w-histRingSize, w).
	// It lets the step-distribution cache revalidate an entry built at an
	// older walk count precisely — a (node, step) distribution changed only
	// if some newer walk visited one of node's candidates at step-1 — instead
	// of discarding on every recorded walk. Snapshots copy the array of
	// headers; the stored paths themselves are immutable (RecordWalk stores a
	// fresh copy, never rewrites one in place), so snapshot readers never race
	// the recorder.
	ring [histRingSize][]int

	// arena backs the ring's path copies: an append-only block the recorder
	// fills left to right, replaced (never rewritten) when full, so handed-
	// out ring slices stay immutable without a per-walk allocation.
	arena []int

	// ringing is set by the first Snapshot: ring maintenance starts only once
	// a frozen view exists that could ever reconcile against it, so histories
	// that are never snapshotted pay nothing per walk.
	ringing bool
}

// histRingSize bounds how far back the recent-walk ring reaches. The
// sequential sampler records one walk per rejection attempt and revisits hub
// entries every attempt, so a handful of slots suffice there; 32 also covers
// short snapshot refresh gaps in the parallel pipeline.
const histRingSize = 32

// histLineage feeds History.lineage; 0 is reserved as "no lineage".
var histLineage atomic.Uint64

// Page geometry: 4096 ids per page — 16 KiB of counters plus a 512 B
// nonzero bitset, a few cache pages. Small enough that sparse visits waste
// little, large enough that hub-centric walks stay within a handful of
// pages per step.
const (
	histPageShift = 12
	histPageSize  = 1 << histPageShift
	histPageMask  = histPageSize - 1
	histPageWords = histPageSize / 64
)

// histPage holds the hit counters for one histPageSize-id range at one
// step. refs counts the directories (live history plus snapshots) that
// reference the page; the recorder may write into a page only while
// refs == 1 and clones it otherwise (copy-on-write). refs is only touched
// by the goroutine that owns the live history and by quiesced Release
// calls, never by concurrent snapshot readers — readers touch only counts
// and nz.
type histPage struct {
	refs   int32
	nz     [histPageWords]uint64
	counts [histPageSize]int32
}

// PagePool recycles history pages. Allocating a page is the only steady-
// state allocation of the WS-BW history, and a sampling service churns one
// history per job; drawing pages from a shared pool bounds that churn by
// the pages actually dirtied instead of regrowing from zero each time.
// Safe for concurrent use (it wraps a sync.Pool). The zero value is NOT
// usable; construct with NewPagePool.
type PagePool struct {
	p sync.Pool
}

// NewPagePool returns an empty page pool.
func NewPagePool() *PagePool {
	pp := &PagePool{}
	pp.p.New = func() any { return new(histPage) }
	return pp
}

// get returns a zeroed page with refs = 1 (pages are zeroed on put).
func (pp *PagePool) get() *histPage {
	pg := pp.p.Get().(*histPage)
	pg.refs = 1
	return pg
}

// put zeroes a page and returns it to the pool.
func (pp *PagePool) put(pg *histPage) {
	*pg = histPage{}
	pp.p.Put(pg)
}

// defaultPagePool backs histories constructed without an explicit pool.
var defaultPagePool = NewPagePool()

// NewHistory returns an empty history over the process-wide default page
// pool.
func NewHistory() *History {
	return NewHistoryIn(nil)
}

// NewHistoryIn returns an empty history allocating its pages from pool
// (nil selects the process-wide default). A service passes one shared pool
// so every job's history reuses the pages released by finished jobs.
func NewHistoryIn(pool *PagePool) *History {
	if pool == nil {
		pool = defaultPagePool
	}
	return &History{pool: pool, lineage: histLineage.Add(1)}
}

// writablePage returns the page covering node at step, allocating or
// cloning (copy-on-write) as needed so the caller may increment counters.
func (h *History) writablePage(step, node int) *histPage {
	pi := node >> histPageShift
	row := h.pages[step]
	if pi >= len(row) {
		grown := make([]*histPage, pi+1+pi/2) // slack to amortize regrowth
		copy(grown, row)
		row = grown
		h.pages[step] = row
	}
	pg := row[pi]
	switch {
	case pg == nil:
		pg = h.pool.get()
		row[pi] = pg
	case pg.refs > 1:
		// Shared with one or more snapshots: clone before writing.
		cl := h.pool.get()
		cl.nz = pg.nz
		cl.counts = pg.counts
		pg.refs--
		pg = cl
		row[pi] = pg
	}
	return pg
}

// RecordWalk registers a forward walk path (path[i] = node visited at step i).
func (h *History) RecordWalk(path []int) {
	for len(h.pages) < len(path) {
		h.pages = append(h.pages, nil)
	}
	for step, node := range path {
		pg := h.writablePage(step, node)
		o := uint(node) & histPageMask
		pg.counts[o]++
		pg.nz[o>>6] |= 1 << (o & 63)
	}
	if !h.ringing {
		// The ring only feeds cross-snapshot cache reconciliation; until the
		// first Snapshot there can be no such reader, so the sequential
		// sampler (which never snapshots) skips the per-walk path copy.
		h.walks++
		return
	}
	// A fresh copy per walk, never an in-place rewrite: snapshots share the
	// stored paths by header, so the slot's previous occupant may still be
	// read by an estimation worker revalidating against an older snapshot.
	// Copies land in an append-only arena — the recorder only ever writes
	// past every previously handed-out slice, so readers race nothing and
	// the per-walk allocation is amortized to one block per ~16k elements.
	if cap(h.arena)-len(h.arena) < len(path) {
		n := 1 << 14
		if len(path) > n {
			n = len(path)
		}
		h.arena = make([]int, 0, n)
	}
	off := len(h.arena)
	h.arena = append(h.arena, path...)
	h.ring[h.walks%histRingSize] = h.arena[off:len(h.arena):len(h.arena)]
	h.walks++
}

// ringPath returns the path of recorded walk j (0-based), or nil if j has
// already been evicted from the recent-walk ring (or not yet recorded).
func (h *History) ringPath(j int) []int {
	if j < 0 || j >= h.walks || h.walks-j > histRingSize {
		return nil
	}
	return h.ring[j%histRingSize]
}

// HistRow is the per-step hit-counter accessor: a view over one step's page
// directory. Row hands it to the WS-BW kernel once per backward step; the
// per-candidate Hits probe is a directory index, a bitset word test, and —
// only for candidates with hits — one counter load. It aliases live state
// (immutable against a Snapshot), must be treated as read-only, and
// involves no allocation.
type HistRow struct {
	pages []*histPage
}

// Hits returns the number of recorded walks that visited v at this row's
// step (0 for ids beyond the directory or in never-touched pages).
func (r HistRow) Hits(v int) int32 {
	pi := uint(v) >> histPageShift
	if pi >= uint(len(r.pages)) {
		return 0
	}
	pg := r.pages[pi]
	if pg == nil {
		return 0
	}
	o := uint(v) & histPageMask
	if pg.nz[o>>6]&(1<<(o&63)) == 0 {
		return 0
	}
	return pg.counts[o]
}

// Row returns the hit-counter row for one step. Out-of-range steps yield an
// empty row (Hits = 0 everywhere). Row never allocates.
func (h *History) Row(step int) HistRow {
	if step < 0 || step >= len(h.pages) {
		return HistRow{}
	}
	return HistRow{pages: h.pages[step]}
}

// Hits returns n_{node,step}: how many recorded walks visited node at step.
func (h *History) Hits(node, step int) int {
	if node < 0 {
		return 0
	}
	return int(h.Row(step).Hits(node))
}

// Walks returns n_hw, the number of recorded forward walks.
func (h *History) Walks() int { return h.walks }

// Frozen reports whether this history is an immutable Snapshot view. The
// step-distribution cache keys its gate on it: only frozen views are served
// from cache (see the frozen field's comment).
func (h *History) Frozen() bool { return h.frozen }

// Snapshot returns an immutable copy-on-write view of the history. The
// parallel sampling pipeline hands snapshots to its estimation workers so
// WS-BW reads never race the recorder: the recorder keeps mutating the live
// history while workers read the frozen view, with no locks on either side.
// Only the page directories are copied; pages are shared and refcounted,
// and the recorder clones any shared page before its next write into it —
// so snapshot cost is bounded by the visited mass, not the graph's id
// space.
func (h *History) Snapshot() *History {
	h.ringing = true // reconcilable readers exist from now on
	s := &History{walks: h.walks, pool: h.pool, lineage: h.lineage, ring: h.ring, frozen: true}
	if len(h.pages) > 0 {
		s.pages = make([][]*histPage, len(h.pages))
		for i, row := range h.pages {
			if len(row) == 0 {
				continue
			}
			r := make([]*histPage, len(row))
			copy(r, row)
			for _, pg := range r {
				if pg != nil {
					pg.refs++
				}
			}
			s.pages[i] = r
		}
	}
	return s
}

// Release returns the history's pages to its pool (those not still shared
// with a live snapshot — refcounts make sharing safe) and empties it.
// Call it only once no goroutine can still be reading the history or any
// snapshot sharing its pages: the parallel pipeline releases retired
// snapshots at its batch barrier, and a service releases a job's whole
// history tree after the run has returned. A released history is empty but
// valid — recording into it again starts from scratch.
func (h *History) Release() {
	for _, row := range h.pages {
		for j, pg := range row {
			if pg == nil {
				continue
			}
			row[j] = nil
			pg.refs--
			if pg.refs == 0 {
				h.pool.put(pg)
			}
		}
	}
	h.pages = h.pages[:0]
	h.walks = 0
	h.ring = [histRingSize][]int{}
	h.arena = nil // snapshots may still hold ring slices into the old blocks
	h.ringing = false
	// A released history starts a new content line: cache entries stamped
	// with the old lineage must never validate against the emptied (or
	// re-recorded) counters.
	h.lineage = histLineage.Add(1)
}
