package core

// History accumulates, per (node, step) pair, how many of the forward walks
// performed so far visited that node at that step. It feeds the weighted
// sampling heuristic of Section 5.3 (WS-BW, Algorithm 2): backward steps are
// biased toward neighbors that forward walks actually reach, because those
// carry most of the probability mass being estimated.
type History struct {
	counts map[histKey]int32
	walks  int
}

type histKey struct {
	node int32
	step int32
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{counts: make(map[histKey]int32)}
}

// RecordWalk registers a forward walk path (path[i] = node visited at step i).
func (h *History) RecordWalk(path []int) {
	for step, node := range path {
		h.counts[histKey{int32(node), int32(step)}]++
	}
	h.walks++
}

// Hits returns n_{node,step}: how many recorded walks visited node at step.
func (h *History) Hits(node, step int) int {
	return int(h.counts[histKey{int32(node), int32(step)}])
}

// Walks returns n_hw, the number of recorded forward walks.
func (h *History) Walks() int { return h.walks }
