package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/walk"
)

func TestHarvestSamplerUniformTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	g := gen.BarabasiAlbert(20, 2, rng)
	c := newClient(g, 61)
	cfg := Config{
		Design:     walk.MHRW{},
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  1,
	}
	s, err := NewHarvestSampler(c, cfg, g.Diameter()+1, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.NumNodes())
	total := 0
	for total < 5000 {
		got, err := s.Harvest()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			counts[v]++
			total++
		}
	}
	want := float64(total) / float64(g.NumNodes())
	for v, got := range counts {
		if float64(got) < 0.3*want || float64(got) > 2.5*want {
			t.Errorf("node %d: %d samples, uniform expectation %.0f", v, got, want)
		}
	}
	if s.AcceptanceRate() <= 0 || s.AcceptanceRate() > 1 {
		t.Fatalf("acceptance = %v", s.AcceptanceRate())
	}
}

func TestHarvestSamplerDegreeTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := gen.BarabasiAlbert(20, 2, rng)
	c := newClient(g, 63)
	cfg := Config{
		Design:     walk.SRW{},
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  1,
	}
	s, err := NewHarvestSampler(c, cfg, 0, rng) // default minStep
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := linalg.SRWStationary(g)
	counts := make([]int, g.NumNodes())
	total := 0
	for total < 8000 {
		got, err := s.Harvest()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			counts[v]++
			total++
		}
	}
	for v, got := range counts {
		want := pi[v] * float64(total)
		if want < 60 {
			continue
		}
		if float64(got) < 0.5*want || float64(got) > 1.9*want {
			t.Errorf("node %d: %d samples, stationary expectation %.0f", v, got, want)
		}
	}
}

func TestHarvestAmortizesForwardCost(t *testing.T) {
	// At equal sample counts, harvesting needs fewer forward walks (and
	// hence fewer walk steps) than plain WE.
	rng := rand.New(rand.NewSource(64))
	g := gen.BarabasiAlbert(300, 4, rng)
	const samples = 60

	cH := newClient(g, 65)
	cfg := Config{Design: walk.SRW{}, Start: 0, WalkLength: 2*g.Diameter() + 1,
		UseCrawl: true, CrawlHops: 2}
	h, err := NewHarvestSampler(cH, cfg, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := h.SampleN(samples)
	if err != nil {
		t.Fatal(err)
	}

	cP, rng2 := newClient(g, 66), rand.New(rand.NewSource(67))
	p, err := NewSampler(cP, cfg, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SampleN(samples); err != nil {
		t.Fatal(err)
	}
	if hres.Len() != samples {
		t.Fatalf("harvest samples = %d", hres.Len())
	}
	if h.TotalSteps() >= p.TotalSteps() {
		t.Errorf("harvest steps %d should undercut plain WE %d", h.TotalSteps(), p.TotalSteps())
	}
}

func TestHarvestSamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	g := gen.Cycle(9)
	c := newClient(g, 69)
	if _, err := NewHarvestSampler(c, Config{}, 0, rng); err == nil {
		t.Fatal("empty config should fail")
	}
	cfg := Config{Design: walk.SRW{}, Start: 0, WalkLength: 5}
	if _, err := NewHarvestSampler(c, cfg, 9, rng); err == nil {
		t.Fatal("minStep beyond walk length should fail")
	}
	s, err := NewHarvestSampler(c, cfg, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.minStep != 3 {
		t.Fatalf("default minStep = %d, want ceil(5/2)=3", s.minStep)
	}
}

func TestHarvestSampleNCostMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	g := gen.BarabasiAlbert(50, 3, rng)
	c := newClient(g, 71)
	cfg := Config{Design: walk.SRW{}, Start: 0, WalkLength: 2*g.Diameter() + 1, UseCrawl: true, CrawlHops: 2}
	s, err := NewHarvestSampler(c, cfg, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < res.Len(); i++ {
		if res.CostAfter[i] < res.CostAfter[i-1] {
			t.Fatal("cost checkpoints must be non-decreasing")
		}
	}
	// Per-step bootstraps: different steps must not share a bootstrap.
	if len(s.boots) < 2 {
		t.Fatalf("expected per-step bootstraps, got %d", len(s.boots))
	}
	sum := 0.0
	for _, b := range s.boots {
		sum += b.Scale()
	}
	if math.IsNaN(sum) {
		t.Fatal("bootstrap scales NaN")
	}
}
