package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/mathx"
)

// IdealCostCurve computes the IDEAL-WALK expected query cost per sample as a
// function of walk length t = 1..tmax, using the exact p_t oracle the
// ideal sampler assumes (Section 4.1, Figure 2): with target distribution π,
// the acceptance rate after a t-step walk from start is
// ω(t) = min_v p_t(v)/π(v), so the expected cost is c(t) = t/ω(t).
// Entries are +Inf while some node is still unreachable (t below the
// eccentricity of the start node).
func IdealCostCurve(m *linalg.Matrix, pi []float64, start, tmax int) []float64 {
	n := m.NumNodes()
	costs := make([]float64, tmax)
	p := make([]float64, n)
	p[start] = 1
	next := make([]float64, n)
	for t := 1; t <= tmax; t++ {
		m.EvolveInto(next, p)
		p, next = next, p
		omega := math.Inf(1)
		for v := 0; v < n; v++ {
			if r := p[v] / pi[v]; r < omega {
				omega = r
			}
		}
		if omega <= 0 {
			costs[t-1] = math.Inf(1)
		} else {
			costs[t-1] = float64(t) / omega
		}
	}
	return costs
}

// IdealOptimalCost returns the minimum of IdealCostCurve and the walk length
// achieving it. If every entry is infinite (tmax below the diameter), cost
// is +Inf and tOpt is tmax.
func IdealOptimalCost(m *linalg.Matrix, pi []float64, start, tmax int) (cost float64, tOpt int) {
	curve := IdealCostCurve(m, pi, start, tmax)
	cost, tOpt = math.Inf(1), tmax
	for i, c := range curve {
		if c < cost {
			cost, tOpt = c, i+1
		}
	}
	return cost, tOpt
}

// RWBurnInCost returns the query cost of the traditional input random walk
// under the exact oracle: the smallest t at which the ℓ∞ distance between
// p_t (from start) and π falls below delta. Returns tmax+1 if not reached.
func RWBurnInCost(m *linalg.Matrix, pi []float64, start int, delta float64, tmax int) int {
	n := m.NumNodes()
	p := make([]float64, n)
	p[start] = 1
	next := make([]float64, n)
	for t := 1; t <= tmax; t++ {
		m.EvolveInto(next, p)
		p, next = next, p
		worst := 0.0
		for v := 0; v < n; v++ {
			if d := math.Abs(p[v] - pi[v]); d > worst {
				worst = d
			}
		}
		if worst <= delta {
			return t
		}
	}
	return tmax + 1
}

// IdealSaving returns the query-cost saving ratio 1 − c_opt/c_RW of
// IDEAL-WALK over the input random walk at bias requirement delta
// (Figure 3's y-axis). Saving is 0 when the plain walk is already cheaper
// (which Theorem 1 rules out for delta < Γ, but finite tmax can clip).
func IdealSaving(m *linalg.Matrix, pi []float64, start int, delta float64, tmax int) float64 {
	cOpt, _ := IdealOptimalCost(m, pi, start, tmax)
	cRW := float64(RWBurnInCost(m, pi, start, delta, tmax))
	if math.IsInf(cOpt, 1) || cRW <= 0 {
		return 0
	}
	saving := 1 - cOpt/cRW
	if saving < 0 {
		return 0
	}
	return saving
}

// Theorem1 bundles the closed-form quantities of Theorem 1 for a chain with
// spectral gap lambda, maximum degree dmax, scale parameter gamma (Γ), and
// bias requirement delta (∆), all under the paper's worst-case ℓ∞ mixing
// bound |p_t(u) − π(u)| <= (1−λ)^t·d_max.
type Theorem1 struct {
	Gamma  float64
	Delta  float64
	DMax   float64
	Lambda float64
}

func (th Theorem1) validate() error {
	if th.Gamma <= 0 || th.DMax <= 0 {
		return fmt.Errorf("core: Theorem1 needs positive Gamma and DMax, got Γ=%v dmax=%v", th.Gamma, th.DMax)
	}
	if th.Lambda <= 0 || th.Lambda >= 1 {
		return fmt.Errorf("core: Theorem1 needs spectral gap in (0,1), got %v", th.Lambda)
	}
	if th.Delta < 0 || th.Delta >= th.Gamma {
		return fmt.Errorf("core: Theorem1 needs 0 <= ∆ < Γ, got ∆=%v Γ=%v", th.Delta, th.Gamma)
	}
	return nil
}

// Cost evaluates Equation 15, f(t) = t·(Γ−∆)/(Γ−(1−λ)^t·d_max): the
// worst-case expected query cost per sample of IDEAL-WALK at walk length t.
// It returns +Inf where the denominator is not yet positive.
func (th Theorem1) Cost(t float64) float64 {
	denom := th.Gamma - math.Pow(1-th.Lambda, t)*th.DMax
	if denom <= 0 {
		return math.Inf(1)
	}
	return t * (th.Gamma - th.Delta) / denom
}

// TOpt evaluates Equation 7/18, the cost-minimizing walk length
//
//	t_opt = −log(−(1/Γ)·W(−Γ/(e·d_max))·d_max) / log(1−λ),
//
// using the W₋₁ branch of the Lambert W function (the W₀ branch gives a
// negative length). Note t_opt is independent of ∆.
func (th Theorem1) TOpt() (float64, error) {
	if err := th.validate(); err != nil {
		return 0, err
	}
	arg := -th.Gamma / (math.E * th.DMax)
	if arg < -mathx.OneOverE {
		return 0, fmt.Errorf("core: Lambert argument %v below −1/e (Γ=%v too large for dmax=%v)", arg, th.Gamma, th.DMax)
	}
	w := mathx.LambertWm1(arg)
	if math.IsNaN(w) {
		return 0, fmt.Errorf("core: Lambert W−1 undefined at %v", arg)
	}
	inner := -(1 / th.Gamma) * w * th.DMax
	if inner <= 0 {
		return 0, fmt.Errorf("core: invalid Lambert inner value %v", inner)
	}
	return -math.Log(inner) / math.Log(1-th.Lambda), nil
}

// RWCost evaluates Equation 13, the input random walk's expected query cost
// per sample c_RW = log(∆/d_max)/log(1−λ) under the same mixing bound.
// ∆ must be positive.
func (th Theorem1) RWCost() (float64, error) {
	if err := th.validate(); err != nil {
		return 0, err
	}
	if th.Delta <= 0 {
		return 0, fmt.Errorf("core: RWCost needs ∆ > 0")
	}
	return math.Log(th.Delta/th.DMax) / math.Log(1-th.Lambda), nil
}

// SavingBound evaluates the query-cost ratio upper bound of Equation 8 and
// returns 1 − ratio, the guaranteed saving fraction.
func (th Theorem1) SavingBound() (float64, error) {
	tOpt, err := th.TOpt()
	if err != nil {
		return 0, err
	}
	cOpt := th.Cost(tOpt)
	cRW, err := th.RWCost()
	if err != nil {
		return 0, err
	}
	if math.IsInf(cOpt, 1) || cRW <= 0 {
		return 0, nil
	}
	return 1 - cOpt/cRW, nil
}
