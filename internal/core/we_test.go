package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/walk"
)

func TestScaleBootstrap(t *testing.T) {
	var b ScaleBootstrap
	if b.Scale() != 0 {
		t.Fatal("empty bootstrap scale should be 0")
	}
	for _, r := range []float64{10, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, -1} {
		b.Observe(r) // 0 and -1 ignored
	}
	if b.N() != 10 {
		t.Fatalf("N = %d, want 10 (non-positive dropped)", b.N())
	}
	// 10th percentile of 1..10 with index floor(0.1·9)=0 -> smallest value.
	if got := b.Scale(); got != 1 {
		t.Fatalf("Scale = %v, want 1", got)
	}
	b50 := ScaleBootstrap{Percentile: 0.5}
	for i := 1; i <= 9; i++ {
		b50.Observe(float64(i))
	}
	if got := b50.Scale(); got != 5 {
		t.Fatalf("median scale = %v, want 5", got)
	}
}

func TestAcceptProb(t *testing.T) {
	var b ScaleBootstrap
	for _, r := range []float64{0.5, 1.0, 2.0} {
		b.Observe(r)
	}
	scale := b.Scale() // 10th pct -> 0.5
	if scale != 0.5 {
		t.Fatalf("scale = %v", scale)
	}
	beta, err := b.AcceptProb(1.0, 1.0) // ratio 1 -> β = 0.5
	if err != nil || math.Abs(beta-0.5) > 1e-12 {
		t.Fatalf("beta = %v, %v", beta, err)
	}
	// Rare candidate (p̂ below scale·q) accepted surely.
	if beta, _ := b.AcceptProb(0.1, 1.0); beta != 1 {
		t.Fatalf("low p̂ beta = %v, want 1", beta)
	}
	// p̂ = 0: always accept.
	if beta, _ := b.AcceptProb(0, 1.0); beta != 1 {
		t.Fatal("zero p̂ must accept")
	}
	if _, err := b.AcceptProb(1, 0); err == nil {
		t.Fatal("non-positive q should error")
	}
}

func TestConfigValidation(t *testing.T) {
	g := gen.Cycle(9)
	c := newClient(g, 30)
	rng := rand.New(rand.NewSource(31))
	bad := []Config{
		{},                                  // no design
		{Design: walk.SRW{}, WalkLength: 0}, // no length
		{Design: walk.SRW{}, WalkLength: 3, Start: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSampler(c, cfg, rng); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestWalkEstimateUniformTarget(t *testing.T) {
	// WE with MHRW input must deliver (near-)uniform samples on a small
	// graph, with far fewer steps than waiting for strict burn-in.
	rng := rand.New(rand.NewSource(32))
	g := gen.BarabasiAlbert(20, 2, rng)
	c := newClient(g, 33)
	cfg := Config{
		Design:       walk.MHRW{},
		Start:        0,
		WalkLength:   2*g.Diameter() + 1,
		UseCrawl:     true,
		CrawlHops:    1,
		UseWeighted:  true,
		BackwardReps: 3,
	}
	s, err := NewSampler(c, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 4000
	counts := make([]int, g.NumNodes())
	for i := 0; i < samples; i++ {
		v, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	want := float64(samples) / float64(g.NumNodes())
	for v, got := range counts {
		if float64(got) < 0.35*want || float64(got) > 2.2*want {
			t.Errorf("node %d: %d samples, uniform expectation %.0f", v, got, want)
		}
	}
	if s.AcceptanceRate() <= 0 || s.AcceptanceRate() > 1 {
		t.Fatalf("acceptance rate = %v", s.AcceptanceRate())
	}
	if s.TotalSteps() != s.ForwardSteps()+s.BackwardSteps() {
		t.Fatal("step accounting inconsistent")
	}
}

func TestWalkEstimateDegreeTarget(t *testing.T) {
	// WE with SRW input must deliver degree-proportional samples.
	rng := rand.New(rand.NewSource(34))
	g := gen.BarabasiAlbert(20, 2, rng)
	c := newClient(g, 35)
	cfg := Config{
		Design:     walk.SRW{},
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  1,
	}
	s, err := NewSampler(c, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := linalg.SRWStationary(g)
	const samples = 6000
	counts := make([]int, g.NumNodes())
	for i := 0; i < samples; i++ {
		v, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	for v, got := range counts {
		want := pi[v] * samples
		if want < 40 {
			continue
		}
		if float64(got) < 0.5*want || float64(got) > 1.9*want {
			t.Errorf("node %d: %d samples, stationary expectation %.0f", v, got, want)
		}
	}
}

func TestSampleNRecordsCost(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := gen.BarabasiAlbert(30, 3, rng)
	c := newClient(g, 37)
	cfg := Config{Design: walk.SRW{}, Start: 0, WalkLength: 2*g.Diameter() + 1}
	s, err := NewSampler(c, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 12 {
		t.Fatalf("samples = %d", res.Len())
	}
	for i := 1; i < res.Len(); i++ {
		if res.CostAfter[i] < res.CostAfter[i-1] {
			t.Fatal("cost must be non-decreasing")
		}
	}
	for _, st := range res.Steps {
		if st < cfg.WalkLength {
			t.Fatalf("per-sample steps %d below one forward walk %d", st, cfg.WalkLength)
		}
	}
}

func TestSamplerFailsWhenWalkTooShort(t *testing.T) {
	// Walk length 1 on a big cycle: the candidate is always a neighbor of
	// the start, its q-ratio dominates, and far nodes are never reachable —
	// but the sampler itself cannot detect bias; it still returns samples.
	// The failure mode we must handle is MaxAttempts: force rejection by
	// an impossible acceptance regime using a graph where p_1 is exact and
	// scale bootstrap drives beta near zero. Instead, verify MaxAttempts
	// surfaces as an error with a rigged config: WalkLength high enough to
	// mix but MaxAttempts = 0 means default, so use 1 attempt with an
	// always-reject percentile via a pre-seeded bootstrap.
	rng := rand.New(rand.NewSource(38))
	g := gen.Cycle(30)
	c := newClient(g, 39)
	cfg := Config{Design: walk.SRW{}, Start: 0, WalkLength: 3, MaxAttempts: 1}
	s, err := NewSampler(c, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Rig the bootstrap so every candidate is near-surely rejected.
	for i := 0; i < 100; i++ {
		s.boot.Observe(1e-9)
	}
	fails := 0
	for i := 0; i < 40; i++ {
		if _, err := s.Sample(); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("expected at least one MaxAttempts failure under rigged rejection")
	}
}

func TestEstimateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := gen.BarabasiAlbert(20, 2, rng)
	c := newClient(g, 41)
	const start, steps = 0, 4
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: start}
	m := linalg.NewSRW(g)
	exact := m.DistFrom(start, steps)
	nodes := []int{1, 5, 9, 13}
	got, err := EstimateAll(e, nodes, steps, 400, 800, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(nodes) {
		t.Fatalf("estimates for %d nodes, want %d", len(got), len(nodes))
	}
	for _, u := range nodes {
		if math.Abs(got[u]-exact[u]) > 0.05+0.5*exact[u] {
			t.Errorf("EstimateAll p_%d(%d) = %v, exact %v", steps, u, got[u], exact[u])
		}
	}
	if _, err := EstimateAll(e, nodes, steps, 0, 0, rng); err == nil {
		t.Fatal("baseReps 0 should error")
	}
}
