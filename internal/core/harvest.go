package core

import (
	"fmt"
	"repro/internal/fastrand"

	"repro/internal/osn"
	"repro/internal/walk"
)

// HarvestSampler implements the extension the paper sketches at the end of
// Section 6.1: applying the WALK-ESTIMATE idea to more than the final node
// of each forward walk — "estimating the sampling probability for not only
// the last node (taken as a candidate) but every node on the walk path".
//
// Each forward walk of length t yields up to t−minStep+1 candidates: the
// node visited at step τ is a candidate with estimated probability p̂_τ(v),
// each independently accepted or rejected against the target distribution.
// Forward-walk queries amortize across all candidates of the path, so the
// per-sample query cost drops below plain WALK-ESTIMATE; the price is mild
// correlation between samples harvested from the same path (the same
// trade-off as one-long-run, quantified by agg.EffectiveSampleSize).
//
// MinStep should stay at or above the graph-diameter bound so every node has
// positive sampling probability at every harvested step.
type HarvestSampler struct {
	cfg     Config
	minStep int
	c       *osn.Client
	rng     fastrand.RNG
	est     *Estimator
	hist    *History
	pathBuf []int // reusable forward-walk buffer (walk.PathInto)
	// boots holds one scale bootstrap per harvested step: p_τ magnitudes
	// differ across τ, so the rejection scales must not be pooled.
	boots map[int]*ScaleBootstrap

	forwardSteps int64
	attempts     int64
	accepted     int64
}

// NewHarvestSampler builds the path-harvesting WALK-ESTIMATE variant.
// minStep is the first step whose node is taken as a candidate; 0 means
// ceil(WalkLength/2), a conservative mid-path default.
func NewHarvestSampler(c *osn.Client, cfg Config, minStep int, rng fastrand.RNG) (*HarvestSampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if minStep <= 0 {
		minStep = (cfg.WalkLength + 1) / 2
	}
	if minStep > cfg.WalkLength {
		return nil, fmt.Errorf("core: minStep %d exceeds walk length %d", minStep, cfg.WalkLength)
	}
	s := &HarvestSampler{cfg: cfg, minStep: minStep, c: c, rng: rng, boots: make(map[int]*ScaleBootstrap)}
	var crawl *CrawlTable
	if cfg.UseCrawl {
		var err error
		crawl, err = BuildCrawlTable(c, cfg.Design, cfg.Start, cfg.crawlHops())
		if err != nil {
			return nil, err
		}
	}
	if cfg.UseWeighted {
		s.hist = NewHistoryIn(cfg.Pages)
	}
	s.est = &Estimator{
		Client:  c,
		Design:  cfg.Design,
		Start:   cfg.Start,
		Crawl:   crawl,
		Hist:    s.hist,
		Epsilon: cfg.Epsilon,
	}
	return s, nil
}

func (s *HarvestSampler) boot(step int) *ScaleBootstrap {
	b, ok := s.boots[step]
	if !ok {
		b = &ScaleBootstrap{Percentile: s.cfg.ScalePercentile}
		s.boots[step] = b
	}
	return b
}

// Harvest performs one forward walk and returns every accepted candidate
// along the path (possibly none). Queries are charged to the client.
func (s *HarvestSampler) Harvest() ([]int, error) {
	t := s.cfg.WalkLength
	path := walk.PathInto(s.pathBuf, s.c, s.cfg.Design, s.cfg.Start, t, s.rng)
	s.pathBuf = path
	s.forwardSteps += int64(t)
	if s.hist != nil {
		s.hist.RecordWalk(path)
	}
	var out []int
	for tau := s.minStep; tau <= t; tau++ {
		s.attempts++
		v := path[tau]
		pHat, err := s.estimate(v, tau)
		if err != nil {
			return nil, err
		}
		q := s.cfg.Design.TargetWeight(s.c, v)
		if q <= 0 {
			continue
		}
		b := s.boot(tau)
		b.Observe(pHat / q)
		beta, err := b.AcceptProb(pHat, q)
		if err != nil {
			return nil, err
		}
		if s.rng.Float64() < beta {
			s.accepted++
			out = append(out, v)
		}
	}
	return out, nil
}

func (s *HarvestSampler) estimate(v, tau int) (float64, error) {
	reps := s.cfg.backwardReps()
	sum := 0.0
	for i := 0; i < reps; i++ {
		e, err := s.est.EstimateOnce(v, tau, s.rng)
		if err != nil {
			return 0, err
		}
		sum += e
	}
	return sum / float64(reps), nil
}

// SampleN harvests walks until n samples are collected, returning them with
// the usual cost checkpoints. Walks that yield multiple samples record the
// same post-walk cost for each.
func (s *HarvestSampler) SampleN(n int) (walk.Result, error) {
	res := walk.Result{
		Nodes:     make([]int, 0, n),
		Steps:     make([]int, 0, n),
		CostAfter: make([]int64, 0, n),
	}
	for walks := 0; len(res.Nodes) < n; walks++ {
		if walks > s.cfg.maxAttempts() {
			return res, fmt.Errorf("core: harvest exceeded %d walks with only %d/%d samples",
				s.cfg.maxAttempts(), len(res.Nodes), n)
		}
		prevSteps := s.TotalSteps()
		got, err := s.Harvest()
		if err != nil {
			return res, err
		}
		stepsSpent := int(s.TotalSteps() - prevSteps)
		for _, v := range got {
			if len(res.Nodes) == n {
				break
			}
			res.Nodes = append(res.Nodes, v)
			res.Steps = append(res.Steps, stepsSpent)
			res.CostAfter = append(res.CostAfter, s.c.TotalQueries())
			stepsSpent = 0 // remaining samples of this walk were free
		}
	}
	return res, nil
}

// AcceptanceRate returns accepted/attempted candidates so far.
func (s *HarvestSampler) AcceptanceRate() float64 {
	if s.attempts == 0 {
		return 0
	}
	return float64(s.accepted) / float64(s.attempts)
}

// TotalSteps returns forward plus backward steps taken so far.
func (s *HarvestSampler) TotalSteps() int64 {
	return s.forwardSteps + s.est.StepsTaken
}
