package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/osn"
	"repro/internal/walk"
)

// A run under a cancellable-but-never-cancelled context must be
// bit-identical to the context-free call: the cancellation checks consume
// no RNG.
func TestSampleNParallelCtxMatchesNoCtx(t *testing.T) {
	const n, workers = 20, 4
	s1 := parallelTestSampler(t, 11)
	base, err := s1.SampleNParallel(n, workers)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2 := parallelTestSampler(t, 11)
	got, err := s2.SampleNParallelCtx(ctx, n, workers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Nodes {
		if base.Nodes[i] != got.Nodes[i] || base.Steps[i] != got.Steps[i] {
			t.Fatalf("sample %d differs under live context: (%d,%d) vs (%d,%d)",
				i, base.Nodes[i], base.Steps[i], got.Nodes[i], got.Steps[i])
		}
	}
}

// Cancellation mid-run must error with ctx's cause and stop charging
// queries within one batch.
func TestSampleNParallelCtxCancelStopsCharging(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, rand.New(rand.NewSource(42)))
	// Simulated latency keeps the run alive long enough to cancel it
	// mid-flight on any scheduler.
	sim := osn.NewRemoteSim(osn.NewMemBackend(g), 200*time.Microsecond, 0, 8)
	net := osn.NewNetworkOn(sim)
	rng := rand.New(rand.NewSource(3))
	c := osn.NewClient(net, osn.CostUniqueNodes, rng)
	s, err := NewSampler(c, Config{
		Design: walk.SRW{}, Start: 0, WalkLength: 9,
		UseCrawl: true, UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err = s.SampleNParallelCtx(ctx, 1000000, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Once the call has returned, every worker has drained: the meter must
	// be completely quiet.
	q0 := c.TotalQueries()
	time.Sleep(50 * time.Millisecond)
	if q1 := c.TotalQueries(); q1 != q0 {
		t.Fatalf("queries still growing after cancelled return: %d -> %d", q0, q1)
	}
}

// A pre-cancelled sequential run charges nothing and errors immediately.
func TestSampleNCtxPreCancelled(t *testing.T) {
	s := parallelTestSampler(t, 5)
	before := s.c.TotalQueries()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SampleNCtx(ctx, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Nodes) != 0 {
		t.Fatalf("pre-cancelled run returned %d samples", len(res.Nodes))
	}
	if after := s.c.TotalQueries(); after != before {
		t.Fatalf("pre-cancelled run charged %d queries", after-before)
	}
}

// EstimateAllParallelCtx: cancellation errors out rather than silently
// returning a shallower estimate; a live context matches the plain call.
func TestEstimateAllParallelCtx(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 3, rand.New(rand.NewSource(42)))
	nodes := []int{1, 5, 9, 33, 77, 120}
	mk := func() *Estimator {
		net := osn.NewNetwork(g)
		c := osn.NewClient(net, osn.CostUniqueNodes, rand.New(rand.NewSource(1)))
		return &Estimator{Client: c, Design: walk.SRW{}, Start: 0}
	}

	base, err := EstimateAllParallel(mk(), nodes, 7, 3, 12, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := EstimateAllParallelCtx(ctx, mk(), nodes, 7, 3, 12, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range nodes {
		if base[u] != got[u] {
			t.Fatalf("node %d: %v vs %v under live context", u, base[u], got[u])
		}
	}

	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := EstimateAllParallelCtx(cancelled, mk(), nodes, 7, 3, 12, 3, 99); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled estimate: err = %v, want context.Canceled", err)
	}
}

// The OnSample hook must observe exactly the returned result, in order,
// for both the sequential and the parallel engine.
func TestOnSampleHook(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := parallelTestSampler(t, 13)
		var events []SampleEvent
		s.OnSample = func(ev SampleEvent) { events = append(events, ev) }
		res, err := s.SampleNParallel(15, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != res.Len() {
			t.Fatalf("workers=%d: %d events for %d samples", workers, len(events), res.Len())
		}
		for i, ev := range events {
			if ev.Index != i || ev.Node != res.Nodes[i] ||
				ev.Steps != res.Steps[i] || ev.CostAfter != res.CostAfter[i] {
				t.Fatalf("workers=%d: event %d = %+v, want (%d,%d,%d,%d)", workers, i,
					ev, i, res.Nodes[i], res.Steps[i], res.CostAfter[i])
			}
		}
	}
}

// Injecting a prebuilt crawl table must be bit-identical to letting the
// sampler crawl for itself — the service-mode reuse path.
func TestPrebuiltCrawlInjection(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 3, rand.New(rand.NewSource(42)))

	run := func(inject bool) walk.Result {
		net := osn.NewNetwork(g)
		rng := rand.New(rand.NewSource(17))
		c := osn.NewClient(net, osn.CostUniqueNodes, rng)
		cfg := Config{
			Design: walk.SRW{}, Start: 0, WalkLength: 9,
			UseWeighted: true,
		}
		if inject {
			ct, err := BuildCrawlTable(c, cfg.Design, cfg.Start, 2)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Crawl = ct
		} else {
			cfg.UseCrawl = true
			cfg.CrawlHops = 2
		}
		s, err := NewSampler(c, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.SampleN(12)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	own, injected := run(false), run(true)
	for i := range own.Nodes {
		if own.Nodes[i] != injected.Nodes[i] || own.CostAfter[i] != injected.CostAfter[i] {
			t.Fatalf("sample %d differs with injected crawl: (%d,%d) vs (%d,%d)",
				i, own.Nodes[i], own.CostAfter[i], injected.Nodes[i], injected.CostAfter[i])
		}
	}
}
