package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
)

func TestIdealCostCurveCycle(t *testing.T) {
	g := gen.Cycle(9)
	m := linalg.NewLazy(g, 0.2) // lazy: aperiodic, all nodes reachable past diameter
	pi, _ := linalg.SRWStationary(g)
	curve := IdealCostCurve(m, pi, 0, 60)
	// Until the walk can reach the farthest node (eccentricity of the start
	// is 4, so t < 4), cost is infinite.
	for i := 0; i < 3; i++ {
		if !math.IsInf(curve[i], 1) {
			t.Fatalf("cost at t=%d should be +Inf, got %v", i+1, curve[i])
		}
	}
	// Past it, finite.
	if math.IsInf(curve[10], 1) {
		t.Fatal("cost at t=11 should be finite")
	}
	// The curve dips then rises: min is not at the last point.
	cost, tOpt := IdealOptimalCost(m, pi, 0, 60)
	if math.IsInf(cost, 1) {
		t.Fatal("optimal cost should be finite")
	}
	if tOpt <= 4 || tOpt >= 60 {
		t.Fatalf("tOpt = %d, expected interior optimum", tOpt)
	}
	if curve[59] <= cost {
		t.Fatal("cost should grow past the optimum")
	}
}

func TestIdealOptimalCostUnreachable(t *testing.T) {
	g := gen.Cycle(30)
	m := linalg.NewSRW(g)
	pi, _ := linalg.SRWStationary(g)
	cost, tOpt := IdealOptimalCost(m, pi, 0, 3) // tmax below diameter
	if !math.IsInf(cost, 1) || tOpt != 3 {
		t.Fatalf("cost=%v tOpt=%d, want +Inf/tmax", cost, tOpt)
	}
}

func TestRWBurnInCost(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := gen.BarabasiAlbert(31, 3, rng)
	m := linalg.NewLazy(g, 0.1)
	pi, _ := linalg.SRWStationary(g)
	loose := RWBurnInCost(m, pi, 0, 0.01, 5000)
	tight := RWBurnInCost(m, pi, 0, 0.0001, 5000)
	if loose > tight {
		t.Fatalf("burn-in must grow as delta shrinks: %d vs %d", loose, tight)
	}
	if tight > 5000 {
		t.Fatal("chain should mix within 5000 steps")
	}
	// Unreachable threshold within tmax.
	if got := RWBurnInCost(m, pi, 0, 1e-300, 10); got != 11 {
		t.Fatalf("clipped burn-in = %d, want tmax+1", got)
	}
}

func TestIdealSavingPositiveOnModels(t *testing.T) {
	// The paper's Figure 3 setup: uniform target distribution (MHRW chain,
	// lazified per footnote 1 so regular models are aperiodic). IDEAL-WALK
	// saves >50% on all models at n≈31, with the cycle the weakest.
	rng := rand.New(rand.NewSource(51))
	savings := make(map[gen.Model]float64)
	for _, model := range gen.AllModels() {
		g, n := model.Instantiate(31, rng)
		m := linalg.Lazify(linalg.NewMHRW(g), 0.01)
		pi := linalg.UniformStationary(n)
		delta := 0.001 / float64(n)
		saving := IdealSaving(m, pi, 0, delta, 20000)
		savings[model] = saving
		if saving <= 0 || saving >= 1 {
			t.Errorf("%v: saving = %v, want in (0,1)", model, saving)
		}
		if model != gen.ModelCycle && saving < 0.5 {
			t.Errorf("%v: saving = %v, paper reports >50%% for non-cycle models", model, saving)
		}
	}
	// Figure 3 shape: cycle is the weakest model.
	for model, s := range savings {
		if model != gen.ModelCycle && s < savings[gen.ModelCycle] {
			t.Errorf("%v saving %v below cycle %v, contradicting Figure 3", model, s, savings[gen.ModelCycle])
		}
	}
}

func TestTheorem1TOptMinimizesCost(t *testing.T) {
	th := Theorem1{Gamma: 1, Delta: 0.01, DMax: 20, Lambda: 0.3}
	tOpt, err := th.TOpt()
	if err != nil {
		t.Fatal(err)
	}
	if tOpt <= 0 {
		t.Fatalf("tOpt = %v", tOpt)
	}
	fOpt := th.Cost(tOpt)
	if math.IsInf(fOpt, 1) {
		t.Fatal("cost at tOpt should be finite")
	}
	for _, d := range []float64{-2, -1, -0.1, 0.1, 1, 2, 5} {
		if tt := tOpt + d; tt > 0 {
			if th.Cost(tt) < fOpt-1e-9 {
				t.Fatalf("Cost(%v)=%v beats Cost(tOpt=%v)=%v", tt, th.Cost(tt), tOpt, fOpt)
			}
		}
	}
}

func TestTheorem1TOptIndependentOfDelta(t *testing.T) {
	a := Theorem1{Gamma: 1, Delta: 0.5, DMax: 10, Lambda: 0.2}
	b := Theorem1{Gamma: 1, Delta: 0.001, DMax: 10, Lambda: 0.2}
	ta, err := a.TOpt()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TOpt()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ta-tb) > 1e-9 {
		t.Fatalf("tOpt depends on delta: %v vs %v", ta, tb)
	}
}

func TestTheorem1CostAndRWCost(t *testing.T) {
	th := Theorem1{Gamma: 1, Delta: 0.01, DMax: 20, Lambda: 0.3}
	// Below mixing, denominator negative -> +Inf.
	if !math.IsInf(th.Cost(0.1), 1) {
		t.Fatal("early cost should be +Inf")
	}
	cRW, err := th.RWCost()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.01/20) / math.Log(0.7)
	if math.Abs(cRW-want) > 1e-12 {
		t.Fatalf("RWCost = %v, want %v", cRW, want)
	}
	// IDEAL-WALK always at least matches the plain walk (Theorem 1).
	saving, err := th.SavingBound()
	if err != nil {
		t.Fatal(err)
	}
	if saving <= 0 || saving >= 1 {
		t.Fatalf("saving bound = %v, want in (0,1)", saving)
	}
}

func TestTheorem1Validation(t *testing.T) {
	bad := []Theorem1{
		{Gamma: 0, Delta: 0, DMax: 10, Lambda: 0.5},
		{Gamma: 1, Delta: 0, DMax: 0, Lambda: 0.5},
		{Gamma: 1, Delta: 0, DMax: 10, Lambda: 0},
		{Gamma: 1, Delta: 0, DMax: 10, Lambda: 1},
		{Gamma: 1, Delta: 2, DMax: 10, Lambda: 0.5}, // ∆ >= Γ
	}
	for i, th := range bad {
		if _, err := th.TOpt(); err == nil {
			t.Errorf("case %d: TOpt should fail validation", i)
		}
	}
	// RWCost additionally requires ∆ > 0.
	th := Theorem1{Gamma: 1, Delta: 0, DMax: 10, Lambda: 0.5}
	if _, err := th.RWCost(); err == nil {
		t.Error("RWCost with ∆=0 should error")
	}
}
