package core

import (
	"fmt"

	"repro/internal/osn"
	"repro/internal/walk"
)

// CrawlTable is the initial-crawling heuristic of Section 5.2: the h-hop
// neighborhood of the starting node is crawled once, and the exact sampling
// probabilities p_τ(v) for all τ <= h are computed inside it by forward
// dynamic programming. A backward walk that reaches step τ <= h can then
// terminate immediately with an exact value instead of recursing to step 0,
// which removes the largest variance contributions.
//
// Exactness argument: any τ-step walk from the start stays within the τ-hop
// ball; crawling h hops reveals the full neighbor lists (hence degrees and
// transition probabilities) of every node within distance h, so the DP for
// τ <= h never needs information outside the crawl.
//
// Probabilities are stored as dense per-step rows indexed by node id
// (rows[τ][v] = p_τ(v); ids at or beyond len(rows[τ]) have probability 0),
// so the estimator's per-step Lookup — on the hot path of every backward
// walk — is two array indexings. A welcome side effect vs. the map rows this
// replaced: the DP accumulates in ascending node order, so the computed
// floating-point values are identical across runs.
type CrawlTable struct {
	h     int
	start int
	rows  [][]float64
	size  int // number of nonzero entries, for Size()
}

// BuildCrawlTable crawls the h-hop ball around start through the client
// (paying its queries) and computes the exact p_τ tables for τ = 0..h under
// the given transition design. h must be >= 0; h = 0 yields just the trivial
// p_0 = indicator(start) table.
func BuildCrawlTable(c *osn.Client, d walk.Design, start, h int) (*CrawlTable, error) {
	if h < 0 {
		return nil, fmt.Errorf("core: crawl depth %d must be >= 0", h)
	}
	ct := &CrawlTable{h: h, start: start, rows: make([][]float64, h+1), size: 1}
	row0 := make([]float64, start+1)
	row0[start] = 1
	ct.rows[0] = row0

	// Crawl the ball: query every node within distance h. Each BFS level is
	// issued as one batched prefetch before it is expanded — the level's
	// nodes are queried either way, so the query cost is identical, but the
	// whole frontier costs one locked cache pass and one backend round trip
	// instead of one per node (on a simulated-latency backend this is the
	// difference between h round trips and ball-size round trips).
	dist := map[int32]int{int32(start): 0}
	frontier := []int32{int32(start)}
	for depth := 0; depth <= h && len(frontier) > 0; depth++ {
		c.Prefetch(frontier)
		var next []int32
		for _, u := range frontier {
			for _, w := range c.Neighbors(int(u)) {
				if _, seen := dist[w]; !seen {
					dist[w] = depth + 1
					if depth+1 <= h {
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}

	// Forward DP: p_τ(v) = Σ_w p(w→v)·p_{τ-1}(w). All w in the support of
	// p_{τ-1} are within distance τ-1 <= h-1, so their transition rows are
	// fully known (and cached by the client, costing nothing extra).
	for tau := 1; tau <= h; tau++ {
		prev := ct.rows[tau-1]
		var cur []float64
		add := func(v int32, p float64) {
			if int(v) >= len(cur) {
				grown := make([]float64, int(v)+1+int(v)/2)
				copy(grown, cur)
				cur = grown
			}
			cur[v] += p
		}
		for w, pw := range prev {
			if pw == 0 {
				continue
			}
			nbr := c.Neighbors(w)
			for _, v := range nbr {
				p := d.Prob(c, w, int(v))
				if p > 0 {
					add(v, p*pw)
				}
			}
			// Self-loop mass: designs with explicit self-loops (MHRW), and
			// any design at a stranded degree-0 node, where every walk stays
			// in place (Prob(w,w) = 1 for both SRW and MHRW).
			if d.SelfLoops() || len(nbr) == 0 {
				if p := d.Prob(c, w, w); p > 0 {
					add(int32(w), p*pw)
				}
			}
		}
		for _, p := range cur {
			if p != 0 {
				ct.size++
			}
		}
		ct.rows[tau] = cur
	}
	return ct, nil
}

// Depth returns h, the deepest step with exact probabilities.
func (ct *CrawlTable) Depth() int { return ct.h }

// Lookup returns the exact p_τ(v) if τ <= Depth(). ok is false when τ is
// beyond the table (the value is then unknown, not zero). Nodes absent at a
// covered step have probability exactly 0 — either they lie outside the
// τ-ball or parity keeps the walk away.
func (ct *CrawlTable) Lookup(v, tau int) (p float64, ok bool) {
	if tau < 0 || tau > ct.h {
		return 0, false
	}
	row := ct.rows[tau]
	if v < 0 || v >= len(row) {
		return 0, true
	}
	return row[v], true
}

// Size returns the number of nonzero (step, node) probabilities stored, for
// diagnostics.
func (ct *CrawlTable) Size() int { return ct.size }
