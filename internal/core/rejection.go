package core

import (
	"fmt"
	"sort"
)

// ScaleBootstrap approximates the rejection-sampling scale factor
// min_v p(v)/q(v) from the stream of observed ratios p̂_t(v)/q(v), as
// described in Section 6.3.2: the paper takes the 10th percentile of the
// estimated sampling probabilities (we keep the percentile configurable;
// lower is more conservative/less biased, higher is more query-efficient).
type ScaleBootstrap struct {
	// Percentile in (0,1]; zero means the paper's default 0.10.
	Percentile float64

	// ratios is kept sorted by insertion, so Observe is O(n) memmove and
	// Scale is O(1) — Scale runs once per candidate on the sampling hot
	// path (and in the serial consumer of the parallel pipeline), where a
	// full re-sort per call dominated profiles.
	ratios []float64
}

func (s *ScaleBootstrap) percentile() float64 {
	if s.Percentile <= 0 || s.Percentile > 1 {
		return 0.10
	}
	return s.Percentile
}

// Observe records a p̂/q ratio. Non-positive ratios (e.g. a backward
// estimate of exactly 0) are ignored: they carry no scale information.
func (s *ScaleBootstrap) Observe(ratio float64) {
	if ratio <= 0 {
		return
	}
	i := sort.SearchFloat64s(s.ratios, ratio)
	s.ratios = append(s.ratios, 0)
	copy(s.ratios[i+1:], s.ratios[i:])
	s.ratios[i] = ratio
}

// N returns how many ratios have been observed.
func (s *ScaleBootstrap) N() int { return len(s.ratios) }

// Scale returns the current scale-factor approximation. With no
// observations it returns 0 (callers should then accept unconditionally —
// the very first candidate has nothing to be compared against).
func (s *ScaleBootstrap) Scale() float64 {
	if len(s.ratios) == 0 {
		return 0
	}
	idx := int(s.percentile() * float64(len(s.ratios)-1))
	return s.ratios[idx]
}

// AcceptProb returns the acceptance probability β for a candidate with
// estimated sampling probability pHat and target weight q (Equation 5 with
// the bootstrapped scale): β = clamp(scale · q / p̂, 0, 1). A non-positive
// pHat yields 1 — an unobservably rare candidate is always kept.
func (s *ScaleBootstrap) AcceptProb(pHat, q float64) (float64, error) {
	if q <= 0 {
		return 0, fmt.Errorf("core: target weight must be positive, got %v", q)
	}
	if pHat <= 0 {
		return 1, nil
	}
	scale := s.Scale()
	if scale <= 0 {
		return 1, nil
	}
	beta := scale * q / pHat
	if beta > 1 {
		beta = 1
	}
	return beta, nil
}
