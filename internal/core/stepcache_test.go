package core

// Property tests for the WS-BW step-distribution cache (stepcache.go): a
// cached hub pick must be bit-identical to the rebuilt scalar distribution —
// same chosen candidate, same pick probability, same RNG consumption —
// across growing histories, snapshot generations, and Release/reuse cycles.

import (
	"math/rand"
	"testing"

	"repro/internal/fastrand"
	"repro/internal/gen"
	"repro/internal/osn"
	"repro/internal/walk"
)

// stepCachePair builds two estimators over the same graph — cache enabled
// and disabled — each with its own client and an initially empty history.
func stepCachePair(t *testing.T, d walk.Design) (cached, plain *Estimator, walker *osn.Client, histC, histP *History) {
	t.Helper()
	g := gen.BarabasiAlbert(3000, 4, rand.New(rand.NewSource(21)))
	net := osn.NewNetwork(g)
	// Forward walks charge their own client so the two estimators' query
	// meters stay comparable.
	walker = osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(6))
	histC, histP = NewHistory(), NewHistory()
	cached = &Estimator{
		Client: osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(5)),
		Design: d, Start: 0, Hist: histC,
	}
	plain = &Estimator{
		Client: osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(5)),
		Design: d, Start: 0, Hist: histP,
		DisableStepCache: true,
	}
	return cached, plain, walker, histC, histP
}

// TestStepCacheBitIdenticalEstimates drives the two estimators through an
// evolving history — walks recorded between estimates, exactly the
// sequential sampler's access pattern — and requires identical estimates,
// identical step counts, and identical query charges at every point.
func TestStepCacheBitIdenticalEstimates(t *testing.T) {
	const tSteps = 9
	for _, d := range []walk.Design{walk.SRW{}, walk.MHRW{}} {
		cached, plain, walker, histC, histP := stepCachePair(t, d)
		walkRNG := rand.New(rand.NewSource(77))
		rngC, rngP := fastrand.New(99), fastrand.New(99)
		var snap *History
		for round := 0; round < 60; round++ {
			path := walk.Path(walker, d, 0, tSteps, walkRNG)
			histC.RecordWalk(path)
			histP.RecordWalk(path)
			// The cache serves only frozen views: hand the cached estimator a
			// fresh snapshot each round (the parallel pipeline's refresh
			// pattern) while the plain one reads the live history at the same
			// walk count — identical content, so still bit-comparable.
			if snap != nil {
				snap.Release()
			}
			snap = histC.Snapshot()
			cached.Hist = snap
			v := path[len(path)-1]
			for rep := 0; rep < 4; rep++ {
				got, err1 := cached.EstimateOnce(v, tSteps, rngC)
				want, err2 := plain.EstimateOnce(v, tSteps, rngP)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s round %d: error mismatch: %v vs %v", d.Name(), round, err1, err2)
				}
				if got != want {
					t.Fatalf("%s round %d rep %d: cached %v != plain %v", d.Name(), round, rep, got, want)
				}
			}
		}
		if cached.StepsTaken != plain.StepsTaken {
			t.Fatalf("%s: StepsTaken %d != %d", d.Name(), cached.StepsTaken, plain.StepsTaken)
		}
		if cq, pq := cached.Client.TotalQueries(), plain.Client.TotalQueries(); cq != pq {
			t.Fatalf("%s: queries %d != %d", d.Name(), cq, pq)
		}
		st := cached.StepCacheStats()
		if st.Hits == 0 {
			t.Fatalf("%s: cache never hit (misses %d) — fixture has no hub reuse?", d.Name(), st.Misses)
		}
		if st.Revalidated == 0 {
			t.Fatalf("%s: cache never revalidated across recorded walks", d.Name())
		}
	}
}

// TestStepCacheAcrossSnapshotGenerations re-points the cached estimator at
// successive COW snapshots (the parallel pipeline's handoff) while the plain
// estimator reads the live history at the same walk counts, and requires
// bit-identical sampling before and after each generation — including after
// a Release, which must start a new lineage and never serve stale entries.
func TestStepCacheAcrossSnapshotGenerations(t *testing.T) {
	const tSteps = 7
	d := walk.SRW{}
	cached, plain, walker, histC, histP := stepCachePair(t, d)
	walkRNG := rand.New(rand.NewSource(13))
	rngC, rngP := fastrand.New(4), fastrand.New(4)

	var snaps []*History
	check := func(v, reps int) {
		t.Helper()
		for i := 0; i < reps; i++ {
			got, err1 := cached.EstimateOnce(v, tSteps, rngC)
			want, err2 := plain.EstimateOnce(v, tSteps, rngP)
			if err1 != nil || err2 != nil {
				t.Fatalf("estimate errors: %v / %v", err1, err2)
			}
			if got != want {
				t.Fatalf("snapshot generation %d: cached %v != plain %v", len(snaps), got, want)
			}
		}
	}
	for gen := 0; gen < 8; gen++ {
		var v int
		for w := 0; w < 5; w++ {
			path := walk.Path(walker, d, 0, tSteps, walkRNG)
			histC.RecordWalk(path)
			histP.RecordWalk(path)
			v = path[len(path)-1]
		}
		snap := histC.Snapshot()
		snaps = append(snaps, snap)
		cached.Hist = snap // workers estimate against the frozen view
		check(v, 6)
		cached.Hist = histC
	}
	for _, s := range snaps {
		s.Release()
	}

	// Release the live histories: new lineage, empty content. Entries from
	// the old lineage must not resurface even though walk counts restart.
	histC.Release()
	histP.Release()
	walkRNG = rand.New(rand.NewSource(13)) // same walks as generation 0
	var v int
	for w := 0; w < 5; w++ {
		path := walk.Path(walker, d, 0, tSteps, walkRNG)
		histC.RecordWalk(path)
		histP.RecordWalk(path)
		v = path[len(path)-1]
	}
	reborn := histC.Snapshot() // same walk count as generation 0's snapshot
	cached.Hist = reborn
	check(v, 6)
	reborn.Release()
}

// TestStepCacheSamplerBitIdentical runs the full sequential WALK-ESTIMATE
// sampler with the cache on and off and requires identical node sequences,
// step counts, and cost trajectories.
func TestStepCacheSamplerBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 5, rand.New(rand.NewSource(31)))
	net := osn.NewNetwork(g)
	run := func(disable bool) walk.Result {
		t.Helper()
		c := osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(8))
		s, err := NewSampler(c, Config{
			Design:         walk.SRW{},
			Start:          0,
			WalkLength:     9,
			UseCrawl:       true,
			CrawlHops:      2,
			UseWeighted:    true,
			BackwardReps:   3,
			VarianceBudget: 4,
		}, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		s.est.DisableStepCache = disable
		res, err := s.SampleN(30)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	got, want := run(false), run(true)
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("sample counts differ: %d vs %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Steps[i] != want.Steps[i] || got.CostAfter[i] != want.CostAfter[i] {
			t.Fatalf("sample %d differs: (%d,%d,%d) vs (%d,%d,%d)", i,
				got.Nodes[i], got.Steps[i], got.CostAfter[i],
				want.Nodes[i], want.Steps[i], want.CostAfter[i])
		}
	}
}
