package core

import (
	"context"
	"fmt"

	"repro/internal/fastrand"
	"repro/internal/mathx"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Config parameterizes a WALK-ESTIMATE sampler. The zero value is not
// usable: Design, Start and WalkLength must be set. Defaults follow the
// paper's experimental settings (Section 7.1).
type Config struct {
	// Design is the input MCMC sampler WE replaces (SRW or MHRW). WE
	// produces samples from the same target distribution.
	Design walk.Design
	// Start is the walk's starting node.
	Start int
	// WalkLength is t, the fixed number of forward steps per candidate.
	// The paper sets it to 2·D̄+1 where D̄ is a conservative diameter
	// estimate (e.g. 15 for Google Plus with D̄ = 7).
	WalkLength int
	// UseCrawl enables the initial-crawling heuristic (Section 5.2).
	UseCrawl bool
	// CrawlHops is h, the crawl radius; zero means 2 (the paper's default
	// for most datasets; it uses 1 for the dense Google Plus graph).
	CrawlHops int
	// Crawl, when non-nil, is a prebuilt crawl table the sampler reuses
	// instead of crawling the h-ball itself (implies the crawling
	// heuristic). A long-lived service builds the table once per
	// (design, start, hops) and injects it into every subsequent job: the
	// table is a deterministic function of the graph and those parameters,
	// so injection leaves each job's sample sequence bit-identical to one
	// that crawled itself — only the crawl's query charges are saved.
	Crawl *CrawlTable
	// UseWeighted enables the weighted backward sampling heuristic
	// (Section 5.3).
	UseWeighted bool
	// Epsilon is WS-BW's uniform mixing mass; zero means 0.1.
	Epsilon float64
	// BackwardReps is the base number of backward walks per candidate
	// estimate; zero means 3.
	BackwardReps int
	// VarianceBudget caps the extra adaptive backward walks spent when an
	// estimate is still noisy (relative standard error above 1); zero
	// disables the top-up. This realizes Algorithm 3's variance-driven
	// budget allocation in the per-candidate sampling loop; EstimateAll is
	// the batch form.
	VarianceBudget int
	// ScalePercentile feeds ScaleBootstrap; zero means 0.10.
	ScalePercentile float64
	// MaxAttempts bounds rejection rounds per sample; zero means 10000.
	MaxAttempts int
	// Pages, when non-nil, is the page pool the WS-BW history allocates
	// its counter pages from (nil selects a process-wide default). A
	// long-lived service passes one shared pool so each job's history
	// reuses the pages released by finished jobs (see Sampler.ReleasePages)
	// instead of growing fresh ones. Purely an allocation concern: sample
	// sequences are identical for any pool.
	Pages *PagePool
}

func (c *Config) validate() error {
	if c.Design == nil {
		return fmt.Errorf("core: Config.Design is required")
	}
	if c.WalkLength < 1 {
		return fmt.Errorf("core: WalkLength must be >= 1, got %d", c.WalkLength)
	}
	if c.Start < 0 {
		return fmt.Errorf("core: Start must be a node id, got %d", c.Start)
	}
	return nil
}

func (c *Config) crawlHops() int {
	if c.CrawlHops <= 0 {
		return 2
	}
	return c.CrawlHops
}

func (c *Config) backwardReps() int {
	if c.BackwardReps <= 0 {
		return 3
	}
	return c.BackwardReps
}

func (c *Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 10000
	}
	return c.MaxAttempts
}

// Sampler is the composed WALK-ESTIMATE sampler (Algorithm overview in
// Section 3): short forward walk → backward probability estimate →
// acceptance-rejection against the input design's target distribution.
// Create with NewSampler; not safe for concurrent use.
type Sampler struct {
	cfg  Config
	c    *osn.Client
	rng  fastrand.RNG
	est  *Estimator
	hist *History
	boot ScaleBootstrap

	// OnSample, when set, is invoked synchronously for each accepted sample
	// of SampleN/SampleNCtx and SampleNParallel/SampleNParallelCtx, in
	// acceptance order, from the sampler's own goroutine (the parallel
	// engine's consumer runs on the calling goroutine too). A service uses
	// it to stream accepted samples to clients while a job is still
	// running. The hook must not call back into the sampler.
	OnSample func(SampleEvent)

	// ScalarEstimation and BatchEstimation pin SampleNParallel's worker
	// kernel. By default workers pick automatically: the vectorized batch
	// kernel when the backend answers batch requests concurrently
	// (Client.ConcurrentBatch — batching then turns one round trip per
	// walker step into one per design step), the scalar EstimateAdaptive
	// loop otherwise (on a local backend a batch is just a loop, and the
	// vector bookkeeping is measured pure overhead). Results are
	// bit-identical either way — the kernel equivalence contract, pinned
	// by the property tests — so the toggles exist for those tests and
	// for the batched-vs-scalar benchmark, not for correctness.
	// ScalarEstimation wins if both are set.
	ScalarEstimation bool
	BatchEstimation  bool

	forwardSteps int64
	attempts     int64
	accepted     int64

	// pathBuf is the reusable forward-walk buffer: every walk of a run has
	// the same length, so the sampler records paths through one buffer
	// instead of allocating per walk (walk.PathInto).
	pathBuf []int

	// Parallel-engine state (see parallel.go): the persistent worker pool,
	// the throttled WS-BW history snapshot handed to estimation workers,
	// retired snapshots awaiting page release at the next batch barrier,
	// and the reusable candidate-frontier buffer for batched prefetch.
	workerEsts []*Estimator
	snapHist   *History
	snapWalks  int
	retired    []*History
	frontier   []int32
}

// NewSampler builds a WALK-ESTIMATE sampler over the given metered client.
// If cfg.UseCrawl is set, the initial crawl happens here and its queries are
// charged to the client immediately.
func NewSampler(c *osn.Client, cfg Config, rng fastrand.RNG) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sampler{cfg: cfg, c: c, rng: rng}
	s.boot.Percentile = cfg.ScalePercentile
	crawl := cfg.Crawl
	if crawl == nil && cfg.UseCrawl {
		var err error
		crawl, err = BuildCrawlTable(c, cfg.Design, cfg.Start, cfg.crawlHops())
		if err != nil {
			return nil, err
		}
	}
	if cfg.UseWeighted {
		s.hist = NewHistoryIn(cfg.Pages)
	}
	s.est = &Estimator{
		Client:  c,
		Design:  cfg.Design,
		Start:   cfg.Start,
		Crawl:   crawl,
		Hist:    s.hist,
		Epsilon: cfg.Epsilon,
	}
	return s, nil
}

// ReleasePages returns every history page the sampler still holds — the
// live WS-BW history, the current snapshot, and any retired snapshots — to
// the page pool, so a service recycles them into the next job's history.
// Call it only after the sampling calls have returned (SampleN* quiesce
// their workers before returning, so nothing can still be reading the
// pages) and treat it as terminal: drawing further samples afterwards is
// valid but restarts the weighted heuristic from an empty history.
func (s *Sampler) ReleasePages() {
	s.releaseRetired()
	if s.snapHist != nil {
		s.snapHist.Release()
		s.snapHist = nil
		s.snapWalks = 0
	}
	if s.hist != nil {
		s.hist.Release()
	}
}

// releaseRetired returns the pages of snapshots retired by the parallel
// pipeline. Only called at points where no estimation worker can still hold
// one: the pipeline's batch barrier, or after the run has returned.
func (s *Sampler) releaseRetired() {
	for i, h := range s.retired {
		h.Release()
		s.retired[i] = nil
	}
	s.retired = s.retired[:0]
}

// SampleEvent describes one accepted sample, in the shape of one row of a
// walk.Result: its index in the run, the node, the walk steps spent since
// the previous acceptance, and the fleet-wide query cost right after it.
type SampleEvent struct {
	Index     int
	Node      int
	Steps     int
	CostAfter int64
}

// Sample draws one node from the target distribution. It walks, estimates,
// and rejects until a candidate is accepted (bounded by MaxAttempts).
func (s *Sampler) Sample() (int, error) {
	return s.sample(context.Background())
}

// sample is Sample with a cancellation context, checked once per rejection
// attempt — the natural quantum of the sequential sampler: after a cancelled
// check, no further forward walk or backward estimate is started, so no
// further query is charged. The check consumes no RNG, so runs that complete
// are bit-identical with and without a context.
func (s *Sampler) sample(ctx context.Context) (int, error) {
	t := s.cfg.WalkLength
	for attempt := 0; attempt < s.cfg.maxAttempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			// Cause, not Err: a typed backend failure that cancelled the
			// job context surfaces as itself.
			return 0, context.Cause(ctx)
		}
		s.attempts++
		path := walk.PathInto(s.pathBuf, s.c, s.cfg.Design, s.cfg.Start, t, s.rng)
		s.pathBuf = path
		s.forwardSteps += int64(t)
		if s.hist != nil {
			s.hist.RecordWalk(path)
		}
		v := path[len(path)-1]

		pHat, err := s.estimateCandidate(v, t)
		if err != nil {
			return 0, err
		}
		q := s.cfg.Design.TargetWeight(s.c, v)
		if q <= 0 {
			continue // invisible-degree node; cannot weigh it, skip
		}
		s.boot.Observe(pHat / q)
		beta, err := s.boot.AcceptProb(pHat, q)
		if err != nil {
			return 0, err
		}
		if s.rng.Float64() < beta {
			s.accepted++
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: no candidate accepted after %d attempts (walk length %d likely far too short for this graph)", s.cfg.maxAttempts(), t)
}

// estimateCandidate runs the base backward repetitions plus the adaptive
// variance top-up for a single candidate.
func (s *Sampler) estimateCandidate(v, t int) (float64, error) {
	return EstimateAdaptive(s.est, v, t, s.cfg.backwardReps(), s.cfg.VarianceBudget, s.rng)
}

// EstimateAdaptive estimates p_t(v) with baseReps backward walks plus up to
// varianceBudget adaptive top-up walks, stopping early once the relative
// standard error drops to 1 (the per-candidate form of Algorithm 3's
// variance-driven budget allocation).
func EstimateAdaptive(e *Estimator, v, t, baseReps, varianceBudget int, rng fastrand.RNG) (float64, error) {
	var m mathx.Moments
	for i := 0; i < baseReps; i++ {
		est, err := e.EstimateOnce(v, t, rng)
		if err != nil {
			return 0, err
		}
		m.Add(est)
	}
	for extra := 0; extra < varianceBudget; extra++ {
		mean := m.Mean()
		if mean > 0 && m.StdDev()/mean <= 1 {
			break
		}
		est, err := e.EstimateOnce(v, t, rng)
		if err != nil {
			return 0, err
		}
		m.Add(est)
	}
	return m.Mean(), nil
}

// SampleN draws n samples, recording the cumulative query cost and total
// walk steps (forward + backward) after each, in the same shape the
// traditional samplers report.
func (s *Sampler) SampleN(n int) (walk.Result, error) {
	return s.SampleNCtx(context.Background(), n)
}

// SampleNCtx is SampleN with cancellation: once ctx is cancelled the sampler
// returns ctx's error before starting another rejection attempt, so at most
// one in-flight candidate's queries are still charged. Runs that complete
// are bit-identical to SampleN — the context check consumes no RNG.
func (s *Sampler) SampleNCtx(ctx context.Context, n int) (walk.Result, error) {
	res := walk.Result{
		Nodes:     make([]int, 0, n),
		Steps:     make([]int, 0, n),
		CostAfter: make([]int64, 0, n),
	}
	for i := 0; i < n; i++ {
		prevSteps := s.TotalSteps()
		v, err := s.sample(ctx)
		if err != nil {
			return res, err
		}
		res.Nodes = append(res.Nodes, v)
		res.Steps = append(res.Steps, int(s.TotalSteps()-prevSteps))
		// TotalQueries, not Queries: identical for a never-forked client,
		// but keeps the cost axis consistent (and monotone) when sequential
		// and parallel draws are mixed on one sampler.
		res.CostAfter = append(res.CostAfter, s.c.TotalQueries())
		if s.OnSample != nil {
			s.OnSample(SampleEvent{Index: i, Node: v,
				Steps: res.Steps[i], CostAfter: res.CostAfter[i]})
		}
	}
	return res, nil
}

// AcceptanceRate returns accepted/attempted candidates so far (0 before the
// first sample).
func (s *Sampler) AcceptanceRate() float64 {
	if s.attempts == 0 {
		return 0
	}
	return float64(s.accepted) / float64(s.attempts)
}

// TotalSteps returns forward plus backward walk steps taken so far — the
// y-axis of Figure 5.
func (s *Sampler) TotalSteps() int64 {
	return s.forwardSteps + s.est.StepsTaken
}

// ForwardSteps returns the forward-walk steps taken so far.
func (s *Sampler) ForwardSteps() int64 { return s.forwardSteps }

// BackwardSteps returns the backward-walk steps taken so far.
func (s *Sampler) BackwardSteps() int64 { return s.est.StepsTaken }

// EstimateAll is the batch form of Algorithm 3 (ESTIMATE): it estimates
// p_t(u) for every node in nodes with baseReps backward walks each, then
// spends extraBudget additional walks allocated proportionally to the
// per-node estimation variances, and returns the merged estimates.
func EstimateAll(e *Estimator, nodes []int, t, baseReps, extraBudget int, rng fastrand.RNG) (map[int]float64, error) {
	if baseReps < 1 {
		return nil, fmt.Errorf("core: baseReps must be >= 1, got %d", baseReps)
	}
	prefetchCandidates(e.Client, nodes)
	moments := make([]mathx.Moments, len(nodes))
	variances := make([]float64, len(nodes))
	for i, u := range nodes {
		for r := 0; r < baseReps; r++ {
			v, err := e.EstimateOnce(u, t, rng)
			if err != nil {
				return nil, err
			}
			moments[i].Add(v)
		}
		variances[i] = moments[i].Variance()
	}
	for i, extra := range AllocateByVariance(variances, extraBudget) {
		for r := 0; r < extra; r++ {
			v, err := e.EstimateOnce(nodes[i], t, rng)
			if err != nil {
				return nil, err
			}
			moments[i].Add(v)
		}
	}
	out := make(map[int]float64, len(nodes))
	for i, u := range nodes {
		out[u] = moments[i].Mean()
	}
	return out, nil
}

// prefetchCandidates warms the client's caches for an estimation candidate
// set in one batched pass. Every candidate's neighbor list is the first
// thing its backward walks query, so the prefetch never touches a node the
// estimate would not, keeping the query-cost axis unchanged; it only
// replaces per-node cache fills (and, on a remote backend, per-node round
// trips) with one batched pass.
func prefetchCandidates(c *osn.Client, nodes []int) {
	if len(nodes) < 2 {
		return
	}
	vs := make([]int32, len(nodes))
	for i, u := range nodes {
		vs[i] = int32(u)
	}
	c.Prefetch(vs)
}
