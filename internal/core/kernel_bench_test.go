package core

// Micro-benchmarks and allocation-regression guards for the dense hot-path
// kernels: backStep (the WS-BW inner loop, ~90% of all walk steps per
// DESIGN.md), History.Row, and the full EstimateOnce backward walk.
// scripts/bench_kernels.sh records these in BENCH_kernels.json.

import (
	"math/rand"
	"testing"

	"repro/internal/fastrand"
	"repro/internal/gen"
	"repro/internal/osn"
	"repro/internal/walk"
)

// kernelFixture builds a warm estimator with a populated WS-BW history over
// a 20k-node BA graph, mirroring the state of a mid-run sampler. The
// estimator reads a frozen snapshot of the history — the parallel pipeline's
// worker view, and the configuration under which the step-distribution
// cache serves — so the kernel benchmarks and allocation guards cover the
// cache path too.
func kernelFixture(tb testing.TB, t int) (*Estimator, int) {
	tb.Helper()
	g := gen.BarabasiAlbert(20000, 5, rand.New(rand.NewSource(2)))
	net := osn.NewNetwork(g)
	rng := rand.New(rand.NewSource(3))
	c := osn.NewClient(net, osn.CostUniqueNodes, rng)
	hist := NewHistory()
	var v int
	for i := 0; i < 200; i++ {
		path := walk.Path(c, walk.SRW{}, 0, t, rng)
		hist.RecordWalk(path)
		v = path[len(path)-1]
	}
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: 0, Hist: hist.Snapshot()}
	return e, v
}

// BenchmarkBackStep measures one weighted backward step at a warm node —
// the dense row scan plus the fused tempered-mix inverse-CDF selection. It
// must report 0 allocs/op.
func BenchmarkBackStep(b *testing.B) {
	const t = 13
	e, v := kernelFixture(b, t)
	rng := fastrand.New(7)
	nbr := e.Client.Neighbors(v)
	if _, _, err := e.backStep(v, t, nbr, rng); err != nil { // grow scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.backStep(v, t, nbr, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryRow measures the per-step row handoff plus one candidate
// hit probe — the unit of work the WS-BW scan performs per candidate.
func BenchmarkHistoryRow(b *testing.B) {
	e, v := kernelFixture(b, 13)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += e.Hist.Row(i % 13).Hits(v)
	}
	_ = sink
}

// BenchmarkEstimateOnce measures a full backward walk (no crawl shortcut):
// t weighted steps, each one backStep + one warm Neighbors + the
// degree-cached transition probability.
func BenchmarkEstimateOnce(b *testing.B) {
	const t = 13
	e, v := kernelFixture(b, t)
	rng := fastrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimateOnce(v, t, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// batchKernelFixture extends kernelFixture with a warmed 16-wide candidate
// vector for the vectorized kernel: candidates all start at the fixture's
// endpoint with private RNG streams, and warm-up rounds run until the
// step-distribution cache stops missing (the history is frozen, so a
// no-new-entries window is permanent — the same argument as the scalar
// warm-allocs guard).
func batchKernelFixture(tb testing.TB, t, width int) (*Estimator, []*BatchCand) {
	tb.Helper()
	e, v := kernelFixture(tb, t)
	cands := make([]*BatchCand, width)
	for i := range cands {
		cands[i] = &BatchCand{V: v, RNG: fastrand.New(int64(100 + i))}
	}
	for round := 0; round < 50; round++ {
		before := e.StepCacheStats().Misses
		for i := 0; i < 20; i++ {
			EstimateAdaptiveBatch(e, cands, t, 3, 4)
		}
		if e.StepCacheStats().Misses == before {
			break
		}
	}
	return e, cands
}

// BenchmarkEstimateBatch measures the vectorized backward kernel on the
// warm frozen fixture: a 16-wide candidate vector advanced in lockstep,
// adaptive rule identical to the scalar EstimateAdaptive. ns/op covers the
// whole 16-candidate batch. The cache-hit-rate metric records the
// step-distribution cache's cumulative serve fraction on this fixture; CI
// requires 0 allocs/op and a nonzero hit rate.
func BenchmarkEstimateBatch(b *testing.B) {
	const t, width = 13, 16
	e, cands := batchKernelFixture(b, t, width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateAdaptiveBatch(e, cands, t, 3, 4)
	}
	b.StopTimer()
	b.ReportMetric(e.StepCacheStats().HitRate(), "cache-hit-rate")
}

// TestEstimateBatchWarmAllocs extends the zero-allocation contract to the
// vectorized kernel: once scratch vectors and caches are warm, a whole
// batched estimate must not allocate.
func TestEstimateBatchWarmAllocs(t *testing.T) {
	const steps, width = 13, 16
	e, cands := batchKernelFixture(t, steps, width)
	if avg := testing.AllocsPerRun(100, func() {
		EstimateAdaptiveBatch(e, cands, steps, 3, 4)
		for _, cd := range cands {
			if cd.Err != nil {
				t.Fatal(cd.Err)
			}
		}
	}); avg != 0 {
		t.Errorf("warm EstimateAdaptiveBatch allocates %v/op, want 0", avg)
	}
}

// TestBackStepAllocs is the allocation-regression guard for the WS-BW inner
// loop: after the scratch buffer's first growth, a backward step must not
// allocate — uniform path (no history) and weighted path alike.
func TestBackStepAllocs(t *testing.T) {
	const steps = 13
	e, v := kernelFixture(t, steps)
	rng := fastrand.New(7)
	nbr := e.Client.Neighbors(v)
	if _, _, err := e.backStep(v, steps, nbr, rng); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, _, err := e.backStep(v, steps, nbr, rng); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("weighted backStep allocates %v/op, want 0", avg)
	}

	e.Hist = nil // UNBIASED-ESTIMATE uniform path
	if avg := testing.AllocsPerRun(1000, func() {
		if _, _, err := e.backStep(v, steps, nbr, rng); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("uniform backStep allocates %v/op, want 0", avg)
	}
}

// TestHistoryRowAllocs guards the Row/Hits zero-allocation contract and
// the accessor's agreement with History.Hits, including across page
// boundaries.
func TestHistoryRowAllocs(t *testing.T) {
	h := NewHistory()
	h.RecordWalk([]int{3, 1, 4})
	h.RecordWalk([]int{3, 5, 4})
	h.RecordWalk([]int{3, 5000, 4}) // second page of step 1
	if avg := testing.AllocsPerRun(1000, func() {
		row := h.Row(1)
		row.Hits(5)
		row.Hits(5000)
		row.Hits(1 << 20)
	}); avg != 0 {
		t.Errorf("History.Row/Hits allocates %v/op, want 0", avg)
	}
	probes := []int{0, 1, 3, 4, 5, 7, 4095, 4096, 5000, 8191, 1 << 20}
	for step := -1; step <= 3; step++ {
		row := h.Row(step)
		for _, node := range probes {
			if got, want := int(row.Hits(node)), h.Hits(node, step); got != want {
				t.Errorf("Row(%d).Hits(%d) = %d disagrees with Hits = %d", step, node, got, want)
			}
		}
	}
}

// TestEstimateOnceWarmAllocs pins the whole backward walk at zero
// allocations once caches are warm — the per-core throughput contract of
// the dense kernel rebuild.
func TestEstimateOnceWarmAllocs(t *testing.T) {
	const steps = 13
	e, v := kernelFixture(t, steps)
	rng := fastrand.New(7)
	if _, err := e.EstimateOnce(v, steps, rng); err != nil {
		t.Fatal(err)
	}
	// Backward walks roam; warm every node reachable backwards by running
	// estimates until the client caches AND the step-distribution cache stop
	// missing — the history is frozen, so once a warm-up window introduces no
	// new cache entries, the (deterministic) measured window cannot either.
	// Queries are free here: private client, no cost assertions.
	for i := 0; i < 200; i++ {
		if _, err := e.EstimateOnce(v, steps, rng); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 50; round++ {
		before := e.StepCacheStats().Misses
		for i := 0; i < 200; i++ {
			if _, err := e.EstimateOnce(v, steps, rng); err != nil {
				t.Fatal(err)
			}
		}
		if e.StepCacheStats().Misses == before {
			break
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.EstimateOnce(v, steps, rng); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm EstimateOnce allocates %v/op, want 0", avg)
	}
}

// TestEdgeProbFastMatchesProb cross-checks the degree-cached transition
// fast path against the membership-scan Design.Prob on real neighbor pairs,
// bit for bit.
func TestEdgeProbFastMatchesProb(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, rand.New(rand.NewSource(9)))
	net := osn.NewNetwork(g)
	c := osn.NewClient(net, osn.CostUniqueNodes, rand.New(rand.NewSource(10)))
	if !c.SymmetricView() {
		t.Fatal("unrestricted client must report a symmetric view")
	}
	for _, d := range []walk.Design{walk.SRW{}, walk.MHRW{}} {
		kind := walk.EdgeProbKindOf(d)
		if kind == walk.EdgeProbNone {
			t.Fatalf("%s must have a degree-only fast path", d.Name())
		}
		for u := 0; u < 100; u++ {
			for _, w := range c.Neighbors(u) {
				du, dw := c.Degree(u), c.Degree(int(w))
				want := d.Prob(c, int(w), u) // p(w→u)
				if got := kind.Prob(dw, du); got != want {
					t.Fatalf("%s: fast p(%d→%d) = %v, Prob = %v", d.Name(), w, u, got, want)
				}
			}
		}
	}
}
