package core

import (
	"fmt"

	"repro/internal/fastrand"
	"repro/internal/mathx"
)

// This file is the vectorized backward-estimation kernel: instead of
// advancing one backward walker at a time — which serializes a shared-cache
// lookup (or, on a remote backend, a full round trip) per walker step —
// EstimateAdaptiveBatch advances one walker per candidate in lockstep design
// steps. Each round gathers every walker's next frontier node, resolves the
// whole frontier with a single Client.NeighborsBatch (one L1 pass, one
// shard-lock pass per shard, one backend round trip), then applies the
// transition weights in a dense pass (walk.EdgeProbKind.ProbsInto for the
// degree-only designs).
//
// Equivalence contract: every candidate draws from its own private RNG
// stream and consumes exactly the draws the scalar EstimateAdaptive →
// EstimateOnce → backStep chain would, in the same per-candidate order —
// lockstep only interleaves *between* streams, which is unobservable. The
// fetched node multiset per candidate is also exactly the scalar one, so
// unique-node query charges match bit for bit. Property tests pin both.
//
// A candidate keeps exactly one walk in flight; when it completes, the next
// repetition (base or adaptive top-up, same decision rule as the scalar
// EstimateAdaptive) starts in the following round, so the vector stays wide
// until candidates genuinely finish.

// BatchCand is one candidate lane of EstimateAdaptiveBatch. The caller sets
// V and RNG; the kernel fills PHat, Steps (backward steps spent on this
// candidate) and Err. A BatchCand may be reused across calls.
type BatchCand struct {
	V    int
	RNG  fastrand.RNG
	PHat float64
	// Steps counts the backward steps this candidate's walks consumed —
	// the per-candidate share of Estimator.StepsTaken.
	Steps int64
	Err   error

	// Reps, when > 0, fixes this candidate's walk count: the lane runs
	// exactly Reps walks and retires, bypassing the adaptive top-up rule.
	// Fixed-rep lanes fold their walks into whatever moments the candidate
	// already carries instead of resetting them, so a caller that owns the
	// accumulator across calls (EstimateAllParallel's two phases) gets the
	// exact sequential Add order of the scalar loop.
	Reps int

	reps int // completed walks this call (base + top-up)
	m    mathx.Moments
}

// bwLane is the in-flight walk of one candidate.
type bwLane struct {
	cand    *BatchCand
	node    int
	step    int // remaining steps; the walk is at design step `step`
	w       int // backStep's pick, between phases of a round
	pick    float64
	weight  float64
	nbr     []int32 // N(node), carried step to step like the scalar loop
	haveNbr bool
}

// vecState is the reusable scratch of the vectorized kernel, held by the
// Estimator so warm batches allocate nothing.
type vecState struct {
	lanes  []bwLane
	active []int32 // indices into lanes, compacted every round
	live   []int32 // lanes actually walking this round (own backing: the
	// round compacts `active` in place while iterating live)

	fidx []int32   // lane indices awaiting a batched fetch
	fids []int32   // their frontier node ids
	fout [][]int32 // batched fetch results

	tidx []int32   // lane indices of the dense fast-path transition pass
	tdu  []int32   // degree of w (the predecessor walked to)
	tdv  []int32   // degree of node (the node walked from)
	ttr  []float64 // p(w→node) outputs
}

// EstimateAdaptiveBatch estimates p_t(cd.V) for every candidate with
// baseReps backward walks plus up to varianceBudget adaptive top-ups each —
// per candidate exactly EstimateAdaptive, but with all walks advanced in
// lockstep rounds so each design step costs one batched frontier resolution
// instead of one lookup per walker. Results land in the candidates' PHat /
// Steps / Err fields; a candidate's error stops only that candidate.
func EstimateAdaptiveBatch(e *Estimator, cands []*BatchCand, t, baseReps, varianceBudget int) {
	if !e.probInit {
		e.initProbKind()
	}
	if t < 0 {
		err := fmt.Errorf("core: negative step count %d", t)
		for _, cd := range cands {
			cd.Err = err
		}
		return
	}
	vs := e.vec
	if vs == nil {
		vs = &vecState{}
		e.vec = vs
	}
	if cap(vs.lanes) < len(cands) {
		vs.lanes = make([]bwLane, len(cands))
	}
	lanes := vs.lanes[:len(cands)]
	active := vs.active[:0]
	for i, cd := range cands {
		cd.PHat, cd.Steps, cd.Err = 0, 0, nil
		cd.reps = 0
		if cd.Reps == 0 {
			cd.m = mathx.Moments{} // fixed-rep lanes carry theirs in
		}
		lanes[i] = bwLane{cand: cd, node: cd.V, step: t, weight: 1}
		active = append(active, int32(i))
	}
	for len(active) > 0 {
		active = e.stepVec(lanes, active, t, baseReps, varianceBudget)
	}
	vs.active = active[:0]
}

// stepVec advances every active lane by one design step (phases documented
// inline) and returns the surviving active set, restarting candidates whose
// walk completed but who still owe repetitions.
func (e *Estimator) stepVec(lanes []bwLane, active []int32, t, baseReps, budget int) []int32 {
	vs := e.vec
	out := active[:0]

	// Phase 1 — crawl checks, walk-end handling, and the gather of lanes
	// that still need their current node's neighbor list (only a walk's
	// first step: afterwards the list fetched for the transition weight is
	// carried, exactly like the scalar loop).
	fidx := vs.fidx[:0]
	fids := vs.fids[:0]
	live := vs.live[:0] // lanes still walking this round, in lane order
	for _, li := range active {
		ln := &lanes[li]
		if ln.step == 0 {
			// t == 0 walks finish before their first step.
			if fin := e.finishLane(ln, t, baseReps, budget); fin {
				continue
			}
			out = append(out, li)
			continue
		}
		if e.Crawl != nil {
			if p, ok := e.Crawl.Lookup(ln.node, ln.step); ok {
				if fin := e.laneDone(ln, ln.weight*p, t, baseReps, budget); fin {
					continue
				}
				out = append(out, li)
				continue
			}
		}
		if !ln.haveNbr {
			fidx = append(fidx, li)
			fids = append(fids, int32(ln.node))
		}
		live = append(live, li)
	}
	if len(fids) > 0 {
		fout := growLists(&vs.fout, len(fids))
		e.Client.NeighborsBatch(fids, fout)
		for k, li := range fidx {
			lanes[li].nbr = fout[k]
			lanes[li].haveNbr = true
		}
	}

	// Phase 2 — one backStep per lane, in lane order. Each lane draws from
	// its own candidate's RNG, so this order is unobservable; the draws per
	// candidate are exactly the scalar ones.
	fidx = fidx[:0]
	fids = fids[:0]
	for _, li := range live {
		ln := &lanes[li]
		w, pick, err := e.backStep(ln.node, ln.step, ln.nbr, ln.cand.RNG)
		if err != nil {
			ln.cand.Err = err
			ln.step = -1 // poisoned; dropped in phase 4
			continue
		}
		e.StepsTaken++
		ln.cand.Steps++
		ln.w, ln.pick = w, pick
		if w != ln.node {
			// The scalar loop fetches N(w) for every non-self pick (the
			// transition weight needs it, and it becomes the next step's
			// candidate list) — gather them all into one frontier.
			fidx = append(fidx, li)
			fids = append(fids, int32(w))
		}
	}

	// Phase 3 — one batched resolution of the whole frontier.
	fnbr := growLists(&vs.fout, len(fids))
	if len(fids) > 0 {
		e.Client.NeighborsBatch(fids, fnbr)
	}
	vs.fidx, vs.fids = fidx[:0], fids[:0]

	// Phase 4a — gather the dense fast-path pass: symmetric views of
	// degree-only designs read p(w→node) straight off the two degrees
	// already in hand.
	tidx := vs.tidx[:0]
	tdu := vs.tdu[:0]
	tdv := vs.tdv[:0]
	fk := 0
	for _, li := range live {
		ln := &lanes[li]
		if ln.step < 0 {
			continue
		}
		if ln.w != ln.node {
			wNbr := fnbr[fk]
			fk++
			if e.fastEdge && len(wNbr) > 0 {
				tidx = append(tidx, li)
				tdu = append(tdu, int32(len(wNbr)))
				tdv = append(tdv, int32(len(ln.nbr)))
			}
			// Advance the carried list now; the transition weight for the
			// non-fast lanes below recomputes from the client (warm after
			// the batch), like the scalar fallback.
			ln.nbr = wNbr
		}
	}
	ttr := growFloats(&vs.ttr, len(tidx))
	e.probKind.ProbsInto(tdu, tdv, ttr)
	vs.tidx, vs.tdu, vs.tdv = tidx[:0], tdu[:0], tdv[:0]

	// Phase 4b — apply transitions and advance, in lane order.
	tk := 0
	for _, li := range live {
		ln := &lanes[li]
		if ln.step < 0 {
			continue
		}
		var trans float64
		if tk < len(tidx) && tidx[tk] == li {
			trans = ttr[tk]
			tk++
		} else {
			// Self-loop pick (no degree-only form: MHRW scans neighbor
			// degrees) or a fast-path miss — per-node client calls, warm
			// after the batch, same as the scalar path.
			trans = e.Design.Prob(e.Client, ln.w, ln.node)
		}
		if trans == 0 {
			if fin := e.laneDone(ln, 0, t, baseReps, budget); fin {
				continue
			}
			out = append(out, li)
			continue
		}
		ln.weight *= trans / ln.pick
		ln.node = ln.w
		ln.step--
		if ln.step == 0 {
			if fin := e.finishLane(ln, t, baseReps, budget); fin {
				continue
			}
		}
		out = append(out, li)
	}
	vs.live = live[:0]
	return out
}

// finishLane completes a lane whose walk ran out of steps: the scalar
// epilogue of EstimateOnce (crawl row 0, else the start check).
func (e *Estimator) finishLane(ln *bwLane, t, baseReps, budget int) (retire bool) {
	if e.Crawl != nil {
		if p, ok := e.Crawl.Lookup(ln.node, 0); ok {
			return e.laneDone(ln, ln.weight*p, t, baseReps, budget)
		}
	}
	if ln.node == e.Start {
		return e.laneDone(ln, ln.weight, t, baseReps, budget)
	}
	return e.laneDone(ln, 0, t, baseReps, budget)
}

// laneDone folds one completed walk into the candidate's moments and either
// retires the candidate (returns true) or resets the lane for its next
// repetition — the same continue/stop rule as the scalar EstimateAdaptive.
func (e *Estimator) laneDone(ln *bwLane, est float64, t, baseReps, budget int) (retire bool) {
	cd := ln.cand
	cd.m.Add(est)
	cd.reps++
	if cd.Reps > 0 {
		if cd.reps >= cd.Reps {
			cd.PHat = cd.m.Mean()
			return true
		}
	} else if cd.reps >= baseReps {
		extras := cd.reps - baseReps
		mean := cd.m.Mean()
		if extras >= budget || (mean > 0 && cd.m.StdDev()/mean <= 1) {
			cd.PHat = mean
			return true
		}
	}
	*ln = bwLane{cand: cd, node: cd.V, step: t, weight: 1}
	return false
}

// growLists returns a length-n slice backed by *buf, growing it on demand.
func growLists(buf *[][]int32, n int) [][]int32 {
	if cap(*buf) < n {
		*buf = make([][]int32, n, 2*n)
	}
	return (*buf)[:n]
}

// growFloats returns a length-n slice backed by *buf, growing it on demand.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n, 2*n)
	}
	return (*buf)[:n]
}
