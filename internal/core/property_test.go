package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/mathx"
	"repro/internal/walk"
)

// TestPropertyUnbiasednessRandomGraphs drives the backward estimator across
// randomized graphs, designs, targets, and heuristic combinations, checking
// E[p̃_t(u)] = p_t(u) against the exact oracle within CLT tolerance.
func TestPropertyUnbiasednessRandomGraphs(t *testing.T) {
	prop := func(seed int64, useMHRW, useCrawl, useHist bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := gen.BarabasiAlbert(n, 2, rng)
		c := newClient(g, seed+1)
		start := rng.Intn(n)
		steps := 2 + rng.Intn(4)
		u := rng.Intn(n)

		var d walk.Design = walk.SRW{}
		var m *linalg.Matrix = linalg.NewSRW(g)
		if useMHRW {
			d = walk.MHRW{}
			m = linalg.NewMHRW(g)
		}
		exact := m.DistFrom(start, steps)[u]

		e := &Estimator{Client: c, Design: d, Start: start}
		if useCrawl {
			ct, err := BuildCrawlTable(c, d, start, 1+rng.Intn(2))
			if err != nil {
				return false
			}
			e.Crawl = ct
		}
		if useHist {
			h := NewHistory()
			for i := 0; i < 30; i++ {
				h.RecordWalk(walk.Path(c, d, start, steps, rng))
			}
			e.Hist = h
		}

		const reps = 12000
		var mo mathx.Moments
		for i := 0; i < reps; i++ {
			v, err := e.EstimateOnce(u, steps, rng)
			if err != nil {
				return false
			}
			mo.Add(v)
		}
		se := mo.StdDev() / math.Sqrt(reps)
		return math.Abs(mo.Mean()-exact) <= 6*se+1e-9
	}
	// Fixed quick-check seed: the bound is statistical (6σ), and the default
	// time-derived seed makes the suite flaky roughly once per dozens of runs.
	if err := quick.Check(prop, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRejectionReachesTarget verifies end-to-end that WALK-ESTIMATE's
// accepted stream follows the input design's target distribution on random
// small graphs (chi-square-like bound per node).
func TestPropertyRejectionReachesTarget(t *testing.T) {
	prop := func(seed int64, useMHRW bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(8)
		g := gen.BarabasiAlbert(n, 2, rng)
		c := newClient(g, seed+2)

		var d walk.Design = walk.SRW{}
		if useMHRW {
			d = walk.MHRW{}
		}
		cfg := Config{
			Design:     d,
			Start:      rng.Intn(n),
			WalkLength: 2*g.Diameter() + 1,
			UseCrawl:   true,
			CrawlHops:  1,
		}
		s, err := NewSampler(c, cfg, rng)
		if err != nil {
			return false
		}
		const samples = 3000
		counts := make([]float64, n)
		for i := 0; i < samples; i++ {
			v, err := s.Sample()
			if err != nil {
				return false
			}
			counts[v]++
		}
		// Expected counts under the target.
		var target []float64
		if useMHRW {
			target = linalg.UniformStationary(n)
		} else {
			target, err = linalg.SRWStationary(g)
			if err != nil {
				return false
			}
		}
		for v := 0; v < n; v++ {
			want := target[v] * samples
			if want < 50 {
				continue
			}
			// Allow a wide statistical band; systematic bias would blow it.
			if counts[v] < 0.45*want || counts[v] > 2.2*want {
				return false
			}
		}
		return true
	}
	// Fixed quick-check seed: the per-node count band is statistical, and the
	// default time-derived seed made this test flaky on ~20% of runs even on
	// the pristine seed tree.
	if err := quick.Check(prop, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCrawlTableIsExact cross-validates crawl tables against the
// oracle on random graphs and designs.
func TestPropertyCrawlTableIsExact(t *testing.T) {
	prop := func(seed int64, useMHRW bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(25)
		g := gen.ErdosRenyiGNP(n, 0.25, rng)
		c := newClient(g, seed+3)
		start := rng.Intn(n)
		h := 1 + rng.Intn(3)

		var d walk.Design = walk.SRW{}
		var m *linalg.Matrix = linalg.NewSRW(g)
		if useMHRW {
			d = walk.MHRW{}
			m = linalg.NewMHRW(g)
		}
		ct, err := BuildCrawlTable(c, d, start, h)
		if err != nil {
			return false
		}
		for tau := 0; tau <= h; tau++ {
			exact := m.DistFrom(start, tau)
			for v := 0; v < n; v++ {
				got, ok := ct.Lookup(v, tau)
				if !ok || math.Abs(got-exact[v]) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllocationSumsToBudget fuzzes the variance-budget allocator.
func TestPropertyAllocationSumsToBudget(t *testing.T) {
	prop := func(raw []float64, budgetRaw uint8) bool {
		budget := int(budgetRaw)
		vars := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			vars[i] = math.Mod(math.Abs(v), 100)
		}
		alloc := AllocateByVariance(vars, budget)
		if len(alloc) != len(vars) {
			return false
		}
		sum := 0
		for i, a := range alloc {
			if a < 0 {
				return false
			}
			if vars[i] <= 0 && a > 0 {
				// zero-variance targets only receive when everything is zero
				allZero := true
				for _, v := range vars {
					if v > 0 {
						allZero = false
					}
				}
				if !allZero {
					return false
				}
			}
			sum += a
		}
		if len(vars) == 0 {
			return sum == 0
		}
		return sum == budget
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
