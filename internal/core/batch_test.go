package core

// Property tests for the vectorized backward-estimation kernel (batch.go):
// per candidate, EstimateAdaptiveBatch must be bit-identical to the scalar
// EstimateAdaptive chain — same estimates, same step counts, same query
// charges — and the parallel sampler must draw the identical sample
// sequence whichever kernel its workers run, on the in-memory backend and
// on the disk-CSR and simulated-remote backends alike.

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fastrand"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/osn"
	"repro/internal/walk"
)

// batchFixture builds two identically-configured estimators (private
// clients over one shared network, identical frozen history snapshots,
// shared crawl table) plus a candidate set drawn from walk endpoints.
func batchFixture(t *testing.T, d walk.Design, useCrawl bool) (scalar, vec *Estimator, cands []int) {
	t.Helper()
	g := gen.BarabasiAlbert(3000, 4, rand.New(rand.NewSource(51)))
	net := osn.NewNetwork(g)
	mk := func() *Estimator {
		return &Estimator{
			Client: osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(5)),
			Design: d, Start: 0,
		}
	}
	scalar, vec = mk(), mk()
	if useCrawl {
		crawl, err := BuildCrawlTable(osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(5)), d, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		scalar.Crawl, vec.Crawl = crawl, crawl
	}
	walker := osn.NewClient(net, osn.CostUniqueNodes, fastrand.New(6))
	walkRNG := rand.New(rand.NewSource(52))
	hs, hv := NewHistory(), NewHistory()
	for i := 0; i < 40; i++ {
		path := walk.Path(walker, d, 0, 11, walkRNG)
		hs.RecordWalk(path)
		hv.RecordWalk(path)
		cands = append(cands, path[len(path)-1])
	}
	scalar.Hist, vec.Hist = hs.Snapshot(), hv.Snapshot()
	return scalar, vec, cands
}

// TestEstimateAdaptiveBatchMatchesScalar is the kernel equivalence
// contract: for every candidate, the vectorized kernel must produce the
// same estimate, consume the same number of backward steps, and charge the
// same queries as the scalar EstimateAdaptive loop seeded identically —
// lockstep interleaving between private RNG streams is unobservable.
func TestEstimateAdaptiveBatchMatchesScalar(t *testing.T) {
	const tSteps, baseReps, budget = 9, 3, 5
	for _, d := range []walk.Design{walk.SRW{}, walk.MHRW{}} {
		for _, useCrawl := range []bool{false, true} {
			scalar, vec, nodes := batchFixture(t, d, useCrawl)

			wantPHat := make([]float64, len(nodes))
			wantSteps := make([]int64, len(nodes))
			for i, v := range nodes {
				pre := scalar.StepsTaken
				pHat, err := EstimateAdaptive(scalar, v, tSteps, baseReps, budget, fastrand.New(int64(1000+i)))
				if err != nil {
					t.Fatal(err)
				}
				wantPHat[i] = pHat
				wantSteps[i] = scalar.StepsTaken - pre
			}

			cands := make([]*BatchCand, len(nodes))
			for i, v := range nodes {
				cands[i] = &BatchCand{V: v, RNG: fastrand.New(int64(1000 + i))}
			}
			EstimateAdaptiveBatch(vec, cands, tSteps, baseReps, budget)

			for i, cd := range cands {
				if cd.Err != nil {
					t.Fatalf("%s crawl=%v cand %d: %v", d.Name(), useCrawl, i, cd.Err)
				}
				if cd.PHat != wantPHat[i] {
					t.Fatalf("%s crawl=%v cand %d: batch %v != scalar %v", d.Name(), useCrawl, i, cd.PHat, wantPHat[i])
				}
				if cd.Steps != wantSteps[i] {
					t.Fatalf("%s crawl=%v cand %d: batch steps %d != scalar %d", d.Name(), useCrawl, i, cd.Steps, wantSteps[i])
				}
			}
			if scalar.StepsTaken != vec.StepsTaken {
				t.Fatalf("%s crawl=%v: StepsTaken %d != %d", d.Name(), useCrawl, scalar.StepsTaken, vec.StepsTaken)
			}
			if sq, vq := scalar.Client.TotalQueries(), vec.Client.TotalQueries(); sq != vq {
				t.Fatalf("%s crawl=%v: queries %d != %d", d.Name(), useCrawl, sq, vq)
			}
		}
	}
}

// TestEstimateAdaptiveBatchEdgeCases pins the degenerate inputs: t=0 walks
// finish before their first step, t<0 errors every candidate, and an empty
// candidate slice is a no-op.
func TestEstimateAdaptiveBatchEdgeCases(t *testing.T) {
	scalar, vec, nodes := batchFixture(t, walk.SRW{}, false)
	nodes = nodes[:4]

	for i, v := range nodes {
		want, err := EstimateAdaptive(scalar, v, 0, 2, 0, fastrand.New(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		cd := &BatchCand{V: v, RNG: fastrand.New(int64(i))}
		EstimateAdaptiveBatch(vec, []*BatchCand{cd}, 0, 2, 0)
		if cd.Err != nil || cd.PHat != want {
			t.Fatalf("t=0 cand %d: batch (%v, %v) != scalar %v", i, cd.PHat, cd.Err, want)
		}
	}

	cd := &BatchCand{V: nodes[0], RNG: fastrand.New(1)}
	EstimateAdaptiveBatch(vec, []*BatchCand{cd}, -1, 2, 0)
	if cd.Err == nil {
		t.Fatal("t<0 must error the candidate")
	}
	EstimateAdaptiveBatch(vec, nil, 5, 2, 0) // must not panic
}

// TestEstimateAdaptiveBatchFixedReps checks the fixed-rep lane mode used by
// EstimateAllParallel: Reps walks folded into a carried moment accumulator
// must reproduce the scalar sequential fold bit for bit, across two phases
// that reuse the accumulator (the base/variance-allocation pattern).
func TestEstimateAdaptiveBatchFixedReps(t *testing.T) {
	const tSteps = 7
	scalar, vec, nodes := batchFixture(t, walk.SRW{}, true)
	nodes = nodes[:10]

	wantM := make([]float64, len(nodes))
	for i, v := range nodes {
		var m mathx.Moments // the fold EstimateAllParallel's scalar loop does
		for phase := int64(0); phase < 2; phase++ {
			rng := fastrand.New(fastrand.Mix(33, int64(i), phase))
			reps := 2 + i%3
			for r := 0; r < reps; r++ {
				est, err := scalar.EstimateOnce(v, tSteps, rng)
				if err != nil {
					t.Fatal(err)
				}
				m.Add(est)
			}
		}
		wantM[i] = m.Mean()
	}

	cands := make([]*BatchCand, len(nodes))
	for i, v := range nodes {
		cands[i] = &BatchCand{V: v}
	}
	for phase := int64(0); phase < 2; phase++ {
		for i := range cands {
			cands[i].RNG = fastrand.New(fastrand.Mix(33, int64(i), phase))
			cands[i].Reps = 2 + i%3
		}
		EstimateAdaptiveBatch(vec, cands, tSteps, 1, 0)
	}
	for i, cd := range cands {
		if cd.Err != nil {
			t.Fatalf("cand %d: %v", i, cd.Err)
		}
		if got := cd.m.Mean(); got != wantM[i] {
			t.Fatalf("cand %d: carried mean %v != scalar %v", i, got, wantM[i])
		}
	}
	if scalar.StepsTaken != vec.StepsTaken {
		t.Fatalf("StepsTaken %d != %d", scalar.StepsTaken, vec.StepsTaken)
	}
	if sq, vq := scalar.Client.TotalQueries(), vec.Client.TotalQueries(); sq != vq {
		t.Fatalf("queries %d != %d", sq, vq)
	}
}

// TestParallelSamplerVectorizedMatchesScalar runs the full parallel
// WALK-ESTIMATE sampler with the vectorized kernel and with the scalar
// reference path at the same (seed, workers), over the in-memory, disk-CSR,
// and simulated-remote backends, and requires identical sample sequences,
// per-sample step counts, query-cost trajectories, and total backward
// steps.
func TestParallelSamplerVectorizedMatchesScalar(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, rand.New(rand.NewSource(42)))
	csr := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.SaveCSR(csr, g, nil); err != nil {
		t.Fatal(err)
	}

	backends := []struct {
		name string
		mk   func() (osn.Backend, func())
	}{
		{"mem", func() (osn.Backend, func()) { return osn.NewMemBackend(g), func() {} }},
		{"disk-csr", func() (osn.Backend, func()) {
			be, m, err := osn.OpenDiskBackend(csr)
			if err != nil {
				t.Fatal(err)
			}
			return be, func() { m.Close() }
		}},
		{"sim", func() (osn.Backend, func()) {
			return osn.NewRemoteSim(osn.NewMemBackend(g), 30*time.Microsecond, 10*time.Microsecond, 64), func() {}
		}},
	}

	const n, workers = 20, 4
	for _, be := range backends {
		run := func(scalarEst bool) (walk.Result, int64, int64) {
			t.Helper()
			backend, done := be.mk()
			defer done()
			net := osn.NewNetworkOn(backend)
			rng := rand.New(rand.NewSource(7))
			c := osn.NewClient(net, osn.CostUniqueNodes, rng)
			s, err := NewSampler(c, Config{
				Design:         walk.SRW{},
				Start:          0,
				WalkLength:     9,
				UseCrawl:       true,
				CrawlHops:      2,
				UseWeighted:    true,
				VarianceBudget: 4,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			// Pin the kernel explicitly: the scalar run is the reference,
			// the other run forces the batch kernel even on the local
			// backends where auto-selection would pick scalar.
			s.ScalarEstimation = scalarEst
			s.BatchEstimation = !scalarEst
			res, err := s.SampleNParallel(n, workers)
			if err != nil {
				t.Fatal(err)
			}
			return res, s.est.StepsTaken, c.TotalQueries()
		}
		want, wantSteps, wantQ := run(true)
		got, gotSteps, gotQ := run(false)
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("%s: sample counts differ: %d vs %d", be.name, len(got.Nodes), len(want.Nodes))
		}
		for i := range got.Nodes {
			if got.Nodes[i] != want.Nodes[i] || got.Steps[i] != want.Steps[i] || got.CostAfter[i] != want.CostAfter[i] {
				t.Fatalf("%s sample %d: vectorized (%d,%d,%d) != scalar (%d,%d,%d)", be.name, i,
					got.Nodes[i], got.Steps[i], got.CostAfter[i],
					want.Nodes[i], want.Steps[i], want.CostAfter[i])
			}
		}
		if gotSteps != wantSteps {
			t.Fatalf("%s: StepsTaken %d != %d", be.name, gotSteps, wantSteps)
		}
		if gotQ != wantQ {
			t.Fatalf("%s: queries %d != %d", be.name, gotQ, wantQ)
		}
	}
}
