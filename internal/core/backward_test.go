package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/mathx"
	"repro/internal/walk"
)

// checkUnbiased runs `reps` independent backward estimates of p_t(u) and
// asserts the sample mean is within 5 standard errors of the exact value.
func checkUnbiased(t *testing.T, e *Estimator, exact float64, u, steps, reps int, rng *rand.Rand) {
	t.Helper()
	var m mathx.Moments
	for i := 0; i < reps; i++ {
		v, err := e.EstimateOnce(u, steps, rng)
		if err != nil {
			t.Fatal(err)
		}
		m.Add(v)
	}
	se := m.StdDev() / math.Sqrt(float64(reps))
	tol := 5*se + 1e-9
	if diff := math.Abs(m.Mean() - exact); diff > tol {
		t.Fatalf("estimate of p_%d(%d): mean %v, exact %v, |diff| %v > tol %v (se %v)",
			steps, u, m.Mean(), exact, diff, tol, se)
	}
}

func TestUnbiasedEstimateSRW(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := gen.BarabasiAlbert(15, 2, rng)
	c := newClient(g, 11)
	const start = 0
	m := linalg.NewSRW(g)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: start}
	for _, tc := range []struct{ u, t int }{{3, 3}, {7, 4}, {0, 2}, {14, 5}} {
		exact := m.DistFrom(start, tc.t)[tc.u]
		checkUnbiased(t, e, exact, tc.u, tc.t, 60000, rng)
	}
}

func TestUnbiasedEstimateMHRW(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.BarabasiAlbert(12, 2, rng)
	c := newClient(g, 13)
	const start = 1
	m := linalg.NewMHRW(g)
	e := &Estimator{Client: c, Design: walk.MHRW{}, Start: start}
	for _, tc := range []struct{ u, t int }{{4, 3}, {1, 2}, {9, 4}} {
		exact := m.DistFrom(start, tc.t)[tc.u]
		checkUnbiased(t, e, exact, tc.u, tc.t, 60000, rng)
	}
}

func TestUnbiasedEstimateWithCrawl(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := gen.BarabasiAlbert(15, 2, rng)
	c := newClient(g, 15)
	const start = 0
	ct, err := BuildCrawlTable(c, walk.SRW{}, start, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := linalg.NewSRW(g)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: start, Crawl: ct}
	for _, tc := range []struct{ u, t int }{{5, 4}, {10, 5}, {3, 3}} {
		exact := m.DistFrom(start, tc.t)[tc.u]
		checkUnbiased(t, e, exact, tc.u, tc.t, 40000, rng)
	}
	// Within the crawl the estimate is exact and deterministic.
	exact := m.DistFrom(start, 2)
	for v := 0; v < g.NumNodes(); v++ {
		got, err := e.EstimateOnce(v, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact[v]) > 1e-12 {
			t.Fatalf("crawled p_2(%d) = %v, exact %v", v, got, exact[v])
		}
	}
}

func TestUnbiasedEstimateWithWeightedSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := gen.BarabasiAlbert(15, 2, rng)
	c := newClient(g, 17)
	const start, steps = 0, 4
	// Record real forward walks so the history is representative.
	hist := NewHistory()
	for i := 0; i < 50; i++ {
		hist.RecordWalk(walk.Path(c, walk.SRW{}, start, steps, rng))
	}
	m := linalg.NewSRW(g)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: start, Hist: hist, Epsilon: 0.1}
	for _, u := range []int{2, 6, 11} {
		exact := m.DistFrom(start, steps)[u]
		checkUnbiased(t, e, exact, u, steps, 60000, rng)
	}
}

func TestWeightedSamplingReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g := gen.BarabasiAlbert(40, 3, rng)
	c := newClient(g, 19)
	const start, steps, reps = 0, 5, 8000

	// Candidate: a node actually reached by forward walks.
	path := walk.Path(c, walk.SRW{}, start, steps, rng)
	u := path[len(path)-1]

	hist := NewHistory()
	for i := 0; i < 200; i++ {
		hist.RecordWalk(walk.Path(c, walk.SRW{}, start, steps, rng))
	}

	variance := func(e *Estimator) float64 {
		var m mathx.Moments
		for i := 0; i < reps; i++ {
			v, err := e.EstimateOnce(u, steps, rng)
			if err != nil {
				t.Fatal(err)
			}
			m.Add(v)
		}
		return m.Variance()
	}
	plain := variance(&Estimator{Client: c, Design: walk.SRW{}, Start: start})
	weighted := variance(&Estimator{Client: c, Design: walk.SRW{}, Start: start, Hist: hist})
	if weighted >= plain {
		t.Fatalf("weighted sampling variance %v should beat plain %v", weighted, plain)
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory()
	if h.Walks() != 0 || h.Hits(0, 0) != 0 {
		t.Fatal("fresh history should be empty")
	}
	h.RecordWalk([]int{3, 1, 4})
	h.RecordWalk([]int{3, 1, 5})
	if h.Walks() != 2 {
		t.Fatalf("walks = %d", h.Walks())
	}
	if h.Hits(3, 0) != 2 || h.Hits(1, 1) != 2 || h.Hits(4, 2) != 1 || h.Hits(5, 2) != 1 {
		t.Fatal("hit counts wrong")
	}
	if h.Hits(4, 1) != 0 {
		t.Fatal("phantom hit")
	}
}

func TestEstimateMeanVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := gen.Cycle(9)
	c := newClient(g, 21)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: 0}
	mean, variance, err := e.Estimate(2, 2, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	// On C9, p_2(2) from 0 = 1/4.
	if math.Abs(mean-0.25) > 0.08 {
		t.Fatalf("mean = %v, want ~0.25", mean)
	}
	if variance < 0 {
		t.Fatal("variance must be non-negative")
	}
	if _, _, err := e.Estimate(2, 2, 0, rng); err == nil {
		t.Fatal("zero reps should error")
	}
	if _, err := e.EstimateOnce(2, -1, rng); err == nil {
		t.Fatal("negative steps should error")
	}
}

func TestEstimateZeroForUnreachable(t *testing.T) {
	// On a cycle, parity forbids odd-step returns: p_1(0) from 0 is 0.
	rng := rand.New(rand.NewSource(22))
	g := gen.Cycle(8)
	c := newClient(g, 23)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: 0}
	for i := 0; i < 200; i++ {
		v, err := e.EstimateOnce(0, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("p_1(0) estimate = %v, want exactly 0", v)
		}
	}
}

func TestEstimateT0(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := gen.Cycle(5)
	c := newClient(g, 25)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: 3}
	if v, err := e.EstimateOnce(3, 0, rng); err != nil || v != 1 {
		t.Fatalf("p_0(start) = %v, %v", v, err)
	}
	if v, err := e.EstimateOnce(1, 0, rng); err != nil || v != 0 {
		t.Fatalf("p_0(other) = %v, %v", v, err)
	}
}

func TestAllocateByVariance(t *testing.T) {
	alloc := AllocateByVariance([]float64{3, 1, 0}, 8)
	if sum := alloc[0] + alloc[1] + alloc[2]; sum != 8 {
		t.Fatalf("allocation sums to %d, want 8", sum)
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("higher variance must get more: %v", alloc)
	}
	if alloc[2] != 0 {
		t.Fatalf("zero variance should get nothing: %v", alloc)
	}
	// All-zero variances spread evenly.
	even := AllocateByVariance([]float64{0, 0, 0, 0}, 6)
	for _, a := range even {
		if a < 1 || a > 2 {
			t.Fatalf("even spread broken: %v", even)
		}
	}
	// Degenerate budgets.
	if got := AllocateByVariance([]float64{1, 2}, 0); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero budget should allocate nothing")
	}
	if got := AllocateByVariance(nil, 5); len(got) != 0 {
		t.Fatal("empty targets")
	}
}

func TestBackwardStepsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	g := gen.Cycle(12)
	c := newClient(g, 27)
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: 0}
	if _, err := e.EstimateOnce(4, 6, rng); err != nil {
		t.Fatal(err)
	}
	if e.StepsTaken != 6 {
		t.Fatalf("StepsTaken = %d, want 6 (no crawl: full depth)", e.StepsTaken)
	}
}
