package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/osn"
	"repro/internal/walk"
)

func newClient(g *graph.Graph, seed int64) *osn.Client {
	net := osn.NewNetwork(g)
	return osn.NewClient(net, osn.CostUniqueNodes, rand.New(rand.NewSource(seed)))
}

func TestCrawlTableMatchesOracleSRW(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbert(40, 3, rng)
	c := newClient(g, 2)
	const start, h = 0, 3
	ct, err := BuildCrawlTable(c, walk.SRW{}, start, h)
	if err != nil {
		t.Fatal(err)
	}
	m := linalg.NewSRW(g)
	for tau := 0; tau <= h; tau++ {
		exact := m.DistFrom(start, tau)
		for v := 0; v < g.NumNodes(); v++ {
			got, ok := ct.Lookup(v, tau)
			if !ok {
				t.Fatalf("Lookup(%d,%d) not covered", v, tau)
			}
			if math.Abs(got-exact[v]) > 1e-12 {
				t.Fatalf("p_%d(%d) = %v, oracle %v", tau, v, got, exact[v])
			}
		}
	}
	// Beyond the table: not covered.
	if _, ok := ct.Lookup(0, h+1); ok {
		t.Fatal("Lookup beyond depth must report !ok")
	}
	if _, ok := ct.Lookup(0, -1); ok {
		t.Fatal("negative step must report !ok")
	}
}

func TestCrawlTableMatchesOracleMHRW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(30, 2, rng)
	c := newClient(g, 4)
	const start, h = 5, 2
	ct, err := BuildCrawlTable(c, walk.MHRW{}, start, h)
	if err != nil {
		t.Fatal(err)
	}
	m := linalg.NewMHRW(g)
	for tau := 0; tau <= h; tau++ {
		exact := m.DistFrom(start, tau)
		for v := 0; v < g.NumNodes(); v++ {
			got, _ := ct.Lookup(v, tau)
			if math.Abs(got-exact[v]) > 1e-12 {
				t.Fatalf("MHRW p_%d(%d) = %v, oracle %v", tau, v, got, exact[v])
			}
		}
	}
}

func TestCrawlTableDepthZero(t *testing.T) {
	g := gen.Cycle(5)
	c := newClient(g, 5)
	ct, err := BuildCrawlTable(c, walk.SRW{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Depth() != 0 {
		t.Fatalf("Depth = %d", ct.Depth())
	}
	if p, ok := ct.Lookup(2, 0); !ok || p != 1 {
		t.Fatalf("p_0(start) = %v, %v", p, ok)
	}
	if p, ok := ct.Lookup(3, 0); !ok || p != 0 {
		t.Fatalf("p_0(other) = %v, %v", p, ok)
	}
	if ct.Size() != 1 {
		t.Fatalf("Size = %d", ct.Size())
	}
}

func TestCrawlTableNegativeDepth(t *testing.T) {
	g := gen.Cycle(5)
	c := newClient(g, 6)
	if _, err := BuildCrawlTable(c, walk.SRW{}, 0, -1); err == nil {
		t.Fatal("negative depth should error")
	}
}

func TestCrawlChargesQueries(t *testing.T) {
	g := gen.Star(11) // hub 0 plus 10 leaves
	c := newClient(g, 7)
	if _, err := BuildCrawlTable(c, walk.SRW{}, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Crawling 1 hop around the hub queries the hub and all 10 leaves.
	if got := c.Queries(); got != 11 {
		t.Fatalf("crawl query cost = %d, want 11", got)
	}
}
