package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/osn"
	"repro/internal/walk"
)

func parallelTestSampler(t *testing.T, seed int64) *Sampler {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := gen.BarabasiAlbert(2000, 3, rand.New(rand.NewSource(42)))
	net := osn.NewNetwork(g)
	c := osn.NewClient(net, osn.CostUniqueNodes, rng)
	s, err := NewSampler(c, Config{
		Design:         walk.SRW{},
		Start:          0,
		WalkLength:     9,
		UseCrawl:       true,
		CrawlHops:      2,
		UseWeighted:    true,
		VarianceBudget: 4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSampleNParallelDeterministic is the determinism contract: identical
// (seed, workers) must yield the identical sample sequence, regardless of
// goroutine scheduling. Run under -race this also exercises the pipeline's
// snapshot handoff and shared-cache locking.
func TestSampleNParallelDeterministic(t *testing.T) {
	const n, workers = 30, 4
	var first []int
	for run := 0; run < 3; run++ {
		s := parallelTestSampler(t, 7)
		res, err := s.SampleNParallel(n, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != n {
			t.Fatalf("run %d: got %d samples, want %d", run, len(res.Nodes), n)
		}
		if run == 0 {
			first = append([]int(nil), res.Nodes...)
			continue
		}
		for i := range first {
			if res.Nodes[i] != first[i] {
				t.Fatalf("run %d: sample %d = %d, want %d (nondeterministic pipeline)", run, i, res.Nodes[i], first[i])
			}
		}
	}
}

// TestSampleNParallelAccounting checks that the parallel run reports sane
// bookkeeping: positive step counts per sample, a nondecreasing fleet-wide
// cost axis, and acceptance counters consistent with the result.
func TestSampleNParallelAccounting(t *testing.T) {
	s := parallelTestSampler(t, 9)
	res, err := s.SampleNParallel(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(0); s.TotalSteps() <= got {
		t.Error("TotalSteps not accumulated")
	}
	var prev int64
	for i := range res.Nodes {
		if res.Steps[i] <= 0 {
			t.Errorf("sample %d: nonpositive step count %d", i, res.Steps[i])
		}
		if res.CostAfter[i] < prev {
			t.Errorf("sample %d: cost axis decreased %d -> %d", i, prev, res.CostAfter[i])
		}
		prev = res.CostAfter[i]
	}
	if rate := s.AcceptanceRate(); rate <= 0 || rate > 1 {
		t.Errorf("acceptance rate %v out of range", rate)
	}
	if s.c.Shared() == nil {
		t.Error("parallel run should have promoted the client to a shared cache")
	}
}

// TestSampleNParallelArgs covers the edge and error paths.
func TestSampleNParallelArgs(t *testing.T) {
	s := parallelTestSampler(t, 11)
	if _, err := s.SampleNParallel(5, 0); err == nil {
		t.Error("workers=0 must error")
	}
	if _, err := s.SampleNParallel(-1, 2); err == nil {
		t.Error("negative n must error")
	}
	res, err := s.SampleNParallel(0, 2)
	if err != nil || res.Len() != 0 {
		t.Errorf("n=0: %v, %d samples", err, res.Len())
	}
	res, err = s.SampleNParallel(3, 1) // delegates to the sequential path
	if err != nil || res.Len() != 3 {
		t.Errorf("workers=1: %v, %d samples", err, res.Len())
	}
}

// TestEstimateAllParallelExact runs the parallel batch estimator on a graph
// whose crawl table covers the full walk length, so every estimate is exact:
// the output must match the oracle (and hence sequential EstimateAll) to
// floating-point accuracy, for any worker count.
func TestEstimateAllParallelExact(t *testing.T) {
	g := gen.Cycle(12)
	start, steps := 0, 3
	c := newClient(g, 21)
	ct, err := BuildCrawlTable(c, walk.SRW{}, start, steps)
	if err != nil {
		t.Fatal(err)
	}
	e := &Estimator{Client: c, Design: walk.SRW{}, Start: start, Crawl: ct}
	nodes := []int{0, 1, 2, 3, 9, 11}
	exact := linalg.NewSRW(g).DistFrom(start, steps)

	for _, workers := range []int{1, 2, 4} {
		got, err := EstimateAllParallel(e, nodes, steps, 3, 6, workers, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range nodes {
			if math.Abs(got[u]-exact[u]) > 1e-12 {
				t.Errorf("workers=%d: p_%d(%d) = %v, exact %v", workers, steps, u, got[u], exact[u])
			}
		}
	}
}

// TestEstimateAllParallelDeterministicPerSeed checks that the estimates are
// a function of the seed alone — the same for every worker count — on a
// graph where backward walks are genuinely random (no crawl shortcut).
func TestEstimateAllParallelDeterministicPerSeed(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, rand.New(rand.NewSource(31)))
	nodes := []int{5, 17, 40, 99}
	const steps = 5

	// A partial crawl table (h < steps) keeps the last backward hops random
	// while making typical estimates nonzero, so seed changes are observable.
	mkEstimator := func() *Estimator {
		c := newClient(g, 33)
		ct, err := BuildCrawlTable(c, walk.SRW{}, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		return &Estimator{Client: c, Design: walk.SRW{}, Start: 0, Crawl: ct}
	}

	results := make([]map[int]float64, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		got, err := EstimateAllParallel(mkEstimator(), nodes, steps, 4, 8, workers, 77)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, got)
	}
	for _, got := range results[1:] {
		for _, u := range nodes {
			if got[u] != results[0][u] {
				t.Errorf("estimate for %d varies with workers: %v vs %v", u, got[u], results[0][u])
			}
		}
	}

	// A different seed must (generically) give different randomness.
	other, err := EstimateAllParallel(mkEstimator(), nodes, steps, 4, 8, 2, 78)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, u := range nodes {
		if other[u] != results[0][u] {
			same = false
		}
	}
	if same {
		t.Error("seed change did not alter the estimates")
	}
}

// TestHistorySnapshotIsolation checks the History snapshot contract:
// snapshots are immune to further recording (copy-on-write pages), and
// out-of-range lookups are 0.
func TestHistorySnapshotIsolation(t *testing.T) {
	h := NewHistory()
	h.RecordWalk([]int{3, 1, 4})
	snap := h.Snapshot()
	h.RecordWalk([]int{3, 1, 4})
	h.RecordWalk([]int{3, 500, 4}) // forces row regrowth at step 1

	if snap.Walks() != 1 || snap.Hits(3, 0) != 1 || snap.Hits(1, 1) != 1 {
		t.Errorf("snapshot mutated: walks=%d hits(3,0)=%d hits(1,1)=%d", snap.Walks(), snap.Hits(3, 0), snap.Hits(1, 1))
	}
	if h.Walks() != 3 || h.Hits(3, 0) != 3 || h.Hits(500, 1) != 1 {
		t.Errorf("live history wrong: walks=%d hits(3,0)=%d hits(500,1)=%d", h.Walks(), h.Hits(3, 0), h.Hits(500, 1))
	}
	if h.Hits(500, 0) != 0 || h.Hits(0, 9) != 0 || h.Hits(-1, 1) != 0 || h.Hits(1, -1) != 0 {
		t.Error("out-of-range lookups must be 0")
	}
	empty := NewHistory().Snapshot()
	if empty.Walks() != 0 || empty.Hits(0, 0) != 0 {
		t.Error("empty snapshot not empty")
	}
}
