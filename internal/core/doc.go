// Package core implements WALK-ESTIMATE, the paper's primary contribution: a
// swap-in replacement for any random-walk sampler over an online social
// network that forgoes the long burn-in wait. It walks a short, fixed number
// of steps to a candidate node v, proactively estimates the probability
// p_t(v) that the walk lands there via backward random walks (Sections 5.1 —
// UNBIASED-ESTIMATE — through 5.4 — ESTIMATE with initial crawling and
// weighted sampling), and then applies acceptance-rejection sampling to
// correct the candidate stream to the input sampler's target distribution
// (Section 4).
//
// The package also contains the IDEAL-WALK analysis of Section 4.1: exact
// query-cost curves computed from a full-topology oracle, and the Theorem 1
// closed forms (optimal walk length via the Lambert W function, the
// traditional walk's cost bound, and the savings ratio).
package core
