package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fastrand"
	"repro/internal/mathx"
	"repro/internal/walk"
)

// This file is the concurrent WALK-ESTIMATE engine: a speculative
// walk→estimate→accept pipeline (SampleNParallel) and the parallel batch
// form of Algorithm 3 (EstimateAllParallel). The concurrency model — what is
// shared, what is per-worker, and the determinism contract — is documented
// in DESIGN.md.
//
// Shared across workers: the osn.SharedCache (neighbor lists + unique-node
// accounting), the immutable CrawlTable, and immutable History snapshots.
// Per worker: an osn.Client (own cost meter, own L1 cache), an Estimator
// (own scratch buffer, own StepsTaken meter), and job-derived RNGs.

// pcand is one speculative candidate flowing through the pipeline. The
// producer fills the first group of fields; exactly one estimation worker
// fills the second; the consumer reads both after the batch barrier, so no
// field is ever written and read concurrently.
type pcand struct {
	v       int      // forward-walk endpoint (the candidate)
	estSeed int64    // seed of the candidate's private estimation RNG
	acceptU float64  // pre-drawn uniform for the acceptance test
	hist    *History // immutable WS-BW snapshot (nil without the heuristic)

	pHat      float64 // estimated sampling probability p̂_t(v)
	q         float64 // target weight q(v)
	backSteps int64   // backward steps spent on this estimate
	err       error
}

// SampleNParallel draws n samples like SampleN but runs the backward
// estimates — the dominant cost of WALK-ESTIMATE — on `workers` goroutines.
//
// Pipeline: the producer (the calling goroutine) generates forward-walk
// candidates in batches, drawing each candidate's estimation seed and
// acceptance uniform from the sampler's RNG at generation time; a worker
// pool estimates a batch while the producer speculatively generates the
// next; the consumer then applies bootstrap updates and acceptance tests in
// candidate arrival order. Because every random decision is either made
// sequentially by the producer/consumer or derived from a per-candidate
// seed, the returned node sequence is a deterministic function of (sampler
// seed, workers) regardless of goroutine scheduling — see the determinism
// contract in DESIGN.md (type-1 neighbor-list restrictions, which
// re-randomize per call, void it).
//
// Workers share the client's neighbor cache (promoting it to an
// osn.SharedCache on first use), so CostAfter reports the fleet-wide
// unique-node cost via TotalQueries. Speculative candidates that are
// generated but never consumed still pay their forward-walk and estimation
// steps, exactly as a real speculative crawler would.
func (s *Sampler) SampleNParallel(n, workers int) (walk.Result, error) {
	return s.SampleNParallelCtx(context.Background(), n, workers)
}

// SampleNParallelCtx is SampleNParallel with cancellation. The context is
// checked at the two places work is committed: by the producer before each
// batch is prefetched and dispatched, and by every estimation worker before
// each candidate's backward walks. Once ctx is cancelled, in-flight
// candidates are abandoned (their slot resolves to ctx's error instead of an
// estimate) and no further forward walk, prefetch, or backward walk starts —
// so the run stops charging queries within one batch. The checks consume no
// RNG and cancelled runs return an error, so the per-(seed, workers)
// determinism contract of *completed* runs is untouched.
func (s *Sampler) SampleNParallelCtx(ctx context.Context, n, workers int) (walk.Result, error) {
	if n < 0 {
		return walk.Result{}, fmt.Errorf("core: negative sample count %d", n)
	}
	if workers < 1 {
		return walk.Result{}, fmt.Errorf("core: need >= 1 worker, got %d", workers)
	}
	if workers == 1 {
		return s.SampleNCtx(ctx, n)
	}
	res := walk.Result{
		Nodes:     make([]int, 0, n),
		Steps:     make([]int, 0, n),
		CostAfter: make([]int64, 0, n),
	}
	if n == 0 {
		return res, nil
	}

	t := s.cfg.WalkLength
	baseReps := s.cfg.backwardReps()
	budget := s.cfg.VarianceBudget
	maxAttempts := s.cfg.maxAttempts()

	// Per-worker estimators over forked clients. Forking promotes s.c's
	// private cache into a SharedCache all workers (and the producer) share.
	// The pool persists across calls so the workers' L1 caches stay warm.
	if len(s.workerEsts) != workers {
		s.workerEsts = make([]*Estimator, workers)
		for w := range s.workerEsts {
			wc := s.c.Fork(fastrand.New(s.rng.Int63()))
			s.workerEsts[w] = &Estimator{
				Client:  wc,
				Design:  s.cfg.Design,
				Start:   s.cfg.Start,
				Crawl:   s.est.Crawl,
				Epsilon: s.cfg.Epsilon,
				// The pipeline estimates fresh candidates against
				// short-lived snapshot generations; measured on the
				// end-to-end mem benchmark, the step-distribution cache
				// rebuilds entries faster than it serves them there
				// (~20% overhead), so it stays off. It pays in
				// EstimateAllParallel, where every node is estimated
				// repeatedly against one snapshot.
				DisableStepCache: true,
			}
		}
	}
	ests := s.workerEsts

	// Worker kernel selection (see the ScalarEstimation/BatchEstimation
	// docs): vectorized batch kernel iff the backend resolves batches
	// concurrently, unless a toggle pins it. Either kernel produces
	// bit-identical results.
	useScalar := s.ScalarEstimation || (!s.BatchEstimation && !s.c.ConcurrentBatch())

	batch := 2 * workers
	if batch < 8 {
		batch = 8
	}
	// Workers receive contiguous chunks of a batch and estimate each chunk
	// with the vectorized kernel: all of a chunk's walkers advance in
	// lockstep design steps, so each step costs one batched frontier
	// resolution instead of one lookup (or backend round trip) per walker.
	// Every candidate still draws from its own estSeed-derived stream and
	// the kernel consumes exactly the scalar draws per candidate, so
	// results — and therefore the (seed, workers) determinism contract —
	// are bit-identical to scalar per-candidate estimation, independent of
	// how candidates are chunked.
	jobs := make(chan []*pcand, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func(e *Estimator) {
			var bcs []*BatchCand // reused lane headers, one per chunk slot
			for chunk := range jobs {
				if err := ctx.Err(); err != nil {
					// Abandon promptly: the batch still drains (the barrier
					// stays intact) but no further backward walk starts, so
					// no further query is charged. Cause, not Err: a typed
					// backend failure that cancelled the job context must
					// surface as itself, not as a bare context.Canceled.
					cause := context.Cause(ctx)
					for _, cd := range chunk {
						cd.err = cause
					}
					wg.Done()
					continue
				}
				e.Hist = chunk[0].hist // one snapshot per dispatched batch
				if useScalar {
					for _, cd := range chunk {
						pre := e.StepsTaken
						rng := fastrand.New(cd.estSeed)
						cd.pHat, cd.err = EstimateAdaptive(e, cd.v, t, baseReps, budget, rng)
						if cd.err == nil {
							cd.q = s.cfg.Design.TargetWeight(e.Client, cd.v)
						}
						cd.backSteps = e.StepsTaken - pre
					}
					wg.Done()
					continue
				}
				for len(bcs) < len(chunk) {
					bcs = append(bcs, &BatchCand{})
				}
				cands := bcs[:len(chunk)]
				for k, cd := range chunk {
					bc := cands[k]
					bc.V = cd.v
					// One cheaply-seeded xoshiro256++ stream per candidate;
					// math/rand's default source walks a 607-word table on
					// Seed, which would dominate short estimates.
					bc.RNG = fastrand.New(cd.estSeed)
					bc.Reps = 0
				}
				EstimateAdaptiveBatch(e, cands, t, baseReps, budget)
				for k, cd := range chunk {
					bc := cands[k]
					cd.pHat, cd.err, cd.backSteps = bc.PHat, bc.Err, bc.Steps
					if cd.err == nil {
						cd.q = s.cfg.Design.TargetWeight(e.Client, cd.v)
					}
				}
				wg.Done()
			}
		}(ests[w])
	}
	defer close(jobs)

	// generate runs the forward walks for one batch on the producer
	// goroutine, recording WS-BW history and pre-drawing all per-candidate
	// randomness, then freezes one history snapshot for the whole batch.
	generate := func(size int) []*pcand {
		out := make([]*pcand, size)
		s.frontier = s.frontier[:0]
		for i := range out {
			path := walk.PathInto(s.pathBuf, s.c, s.cfg.Design, s.cfg.Start, t, s.rng)
			s.pathBuf = path
			s.forwardSteps += int64(t)
			if s.hist != nil {
				s.hist.RecordWalk(path)
			}
			out[i] = &pcand{
				v:       path[len(path)-1],
				estSeed: s.rng.Int63(),
				acceptU: s.rng.Float64(),
			}
		}
		if s.hist != nil {
			// Throttled snapshot: refresh only when the live history has
			// grown ≥ 50% since the last one (re-copying the page
			// directories every batch would serialize the pipeline).
			// Estimating against a slightly stale snapshot is still
			// unbiased — any full-support pick distribution is (see the
			// WS-BW note in backward.go) — and the refresh schedule depends
			// only on walk counts, so determinism is preserved. The
			// replaced snapshot may still be referenced by the batch in
			// flight, so it is retired here and its pages released at the
			// next batch barrier, once the workers have joined.
			if s.snapHist == nil || s.hist.Walks() >= s.snapWalks+s.snapWalks/2 {
				if s.snapHist != nil {
					s.retired = append(s.retired, s.snapHist)
				}
				s.snapHist = s.hist.Snapshot()
				s.snapWalks = s.hist.Walks()
			}
			for _, cd := range out {
				cd.hist = s.snapHist
			}
		}
		return out
	}

	attemptsSince := 0   // attempts since the last accepted sample
	var stepsSince int64 // walk steps since the last accepted sample

	// consume applies bootstrap updates and acceptance tests in candidate
	// order. It reports done=true once n samples are accepted. A cancelled
	// context is authoritative here: even a batch that raced to completion
	// resolves to ctx's error, so a run either never observed cancellation
	// (and is bit-identical to an uncancelled one) or returns an error —
	// there is no third state.
	consume := func(cands []*pcand) (done bool, err error) {
		if err := ctx.Err(); err != nil {
			return false, context.Cause(ctx)
		}
		for i, cd := range cands {
			if cd.err != nil {
				return false, cd.err
			}
			s.attempts++
			attemptsSince++
			s.est.StepsTaken += cd.backSteps
			stepsSince += int64(t) + cd.backSteps
			if cd.q > 0 {
				s.boot.Observe(cd.pHat / cd.q)
				beta, err := s.boot.AcceptProb(cd.pHat, cd.q)
				if err != nil {
					return false, err
				}
				if cd.acceptU < beta {
					s.accepted++
					res.Nodes = append(res.Nodes, cd.v)
					res.Steps = append(res.Steps, int(stepsSince))
					res.CostAfter = append(res.CostAfter, s.c.TotalQueries())
					if s.OnSample != nil {
						k := len(res.Nodes) - 1
						s.OnSample(SampleEvent{Index: k, Node: cd.v,
							Steps: res.Steps[k], CostAfter: res.CostAfter[k]})
					}
					stepsSince = 0
					attemptsSince = 0
					if len(res.Nodes) == n {
						// Account the estimation work of the remaining
						// already-estimated speculative candidates.
						for _, rest := range cands[i+1:] {
							if rest.err == nil {
								s.est.StepsTaken += rest.backSteps
							}
						}
						return true, nil
					}
				}
			}
			if attemptsSince >= maxAttempts {
				return false, fmt.Errorf("core: no candidate accepted after %d attempts (walk length %d likely far too short for this graph)", maxAttempts, t)
			}
		}
		return false, nil
	}

	// batchSize bounds speculative waste near the end of the run: once the
	// observed acceptance rate suggests remaining samples need fewer
	// candidates than a full batch (with 2x headroom), shrink accordingly.
	// All inputs are deterministic counters, so sizing is deterministic too.
	batchSize := func() int {
		rem := n - len(res.Nodes)
		if s.accepted == 0 {
			return batch
		}
		rate := float64(s.accepted) / float64(s.attempts)
		need := int(2*float64(rem)/rate) + 1
		if need < workers {
			need = workers
		}
		if need < batch {
			return need
		}
		return batch
	}

	cur := generate(batchSize())
	for {
		// Producer-side cancellation point: between batches, before any of
		// the next batch's queries (prefetch, estimates) are charged.
		if err := ctx.Err(); err != nil {
			return res, context.Cause(ctx)
		}
		// Batched frontier prefetch, at dispatch time: the batch's candidate
		// endpoints are exactly the nodes every estimation worker queries
		// first (each backward walk starts at its candidate), so issue the
		// whole frontier as one batched fill — one shared-cache locked pass
		// per shard and one backend round trip — before the workers fan out.
		// Prefetching here rather than in generate keeps the query-cost axis
		// untouched: only batches that are actually estimated are
		// prefetched, so every prefetched node is accessed by the workers
		// regardless (a speculative batch discarded after the run completes
		// is never estimated, and must not be charged). Prefetch consumes no
		// RNG and is a no-op under type-1 restrictions, preserving the
		// determinism contract.
		s.frontier = s.frontier[:0]
		for _, cd := range cur {
			s.frontier = append(s.frontier, int32(cd.v))
		}
		s.c.Prefetch(s.frontier)
		// One contiguous chunk per worker: wide lanes amortize the batched
		// frontier resolutions without idling workers.
		chunkSz := (len(cur) + workers - 1) / workers
		for lo := 0; lo < len(cur); lo += chunkSz {
			hi := lo + chunkSz
			if hi > len(cur) {
				hi = len(cur)
			}
			wg.Add(1)
			jobs <- cur[lo:hi]
		}
		// Speculate the next batch while the pool estimates cur — unless
		// cur alone will in all likelihood finish the run, in which case
		// speculating would only burn wasted forward walks and estimates.
		var next []*pcand
		rem := n - len(res.Nodes)
		likelyAccepts := 0
		if s.attempts > 0 {
			likelyAccepts = int(2 * float64(s.accepted) / float64(s.attempts) * float64(len(cur)))
		}
		// A cancelled run is about to error out of consume — speculating a
		// next batch would only charge forward walks nobody will estimate.
		if likelyAccepts < rem && ctx.Err() == nil {
			next = generate(batchSize())
		}
		wg.Wait()
		// Batch barrier: every worker has joined, so no candidate can still
		// be reading a snapshot retired when the pipeline refreshed — return
		// the retired snapshots' pages to the pool.
		s.releaseRetired()
		done, err := consume(cur)
		if err != nil {
			return res, err
		}
		if done {
			return res, nil
		}
		if next == nil {
			next = generate(batchSize())
		}
		cur = next
	}
}

// EstimateAllParallel is EstimateAll with the independent backward
// repetitions fanned across `workers` goroutines. Each node's repetitions
// run with a private RNG derived from (seed, node index, phase), and each
// node's moment accumulator is owned by exactly one worker per phase, so the
// result is a deterministic function of seed alone — independent of workers
// and goroutine scheduling (absent type-1 restrictions; see DESIGN.md).
//
// Workers estimate over clients forked from e.Client (sharing its cache and
// unique-node accounting; read the total cost off e.Client.TotalQueries) and
// read an immutable snapshot of e.Hist. Backward steps are accounted back
// into e.StepsTaken before returning.
func EstimateAllParallel(e *Estimator, nodes []int, t, baseReps, extraBudget, workers int, seed int64) (map[int]float64, error) {
	return EstimateAllParallelCtx(context.Background(), e, nodes, t, baseReps, extraBudget, workers, seed)
}

// EstimateAllParallelCtx is EstimateAllParallel with cancellation: the
// feeder stops handing out nodes and workers abandon their remaining
// repetitions once ctx is cancelled, and the call returns ctx's error. The
// checks consume no RNG, so completed calls are bit-identical to
// EstimateAllParallel.
func EstimateAllParallelCtx(ctx context.Context, e *Estimator, nodes []int, t, baseReps, extraBudget, workers int, seed int64) (map[int]float64, error) {
	if baseReps < 1 {
		return nil, fmt.Errorf("core: baseReps must be >= 1, got %d", baseReps)
	}
	if workers < 1 {
		return nil, fmt.Errorf("core: need >= 1 worker, got %d", workers)
	}
	// One batched fill of the whole candidate set before the workers fan
	// out: the first query of every node's backward walks is its own
	// neighbor list, so this is cost-neutral and saves a lock pair (and a
	// simulated round trip) per candidate.
	prefetchCandidates(e.Client, nodes)
	var snap *History
	if e.Hist != nil {
		snap = e.Hist.Snapshot()
		// runPhase joins its workers before returning (even on error or
		// cancellation), so by the time this call returns nothing can still
		// be reading the snapshot — its directory goes back to the pool and
		// the shared pages become writable for e.Hist again.
		defer snap.Release()
	}
	ests := make([]*Estimator, workers)
	for w := range ests {
		ests[w] = &Estimator{
			Client:  e.Client.Fork(fastrand.New(fastrand.Mix(seed, int64(w), -1))),
			Design:  e.Design,
			Start:   e.Start,
			Crawl:   e.Crawl,
			Hist:    snap,
			Epsilon: e.Epsilon,
		}
	}

	moments := make([]mathx.Moments, len(nodes))
	errs := make([]error, len(nodes))
	// runPhase estimates reps[i] additional walks for every node i, farming
	// contiguous chunks of eligible nodes out to the worker pool; each chunk
	// runs through the vectorized kernel as fixed-rep lanes that carry the
	// node's moment accumulator in and out, so the fold order — and thus the
	// result — is bit-identical to the scalar per-node loop. moments[i] is
	// touched by exactly one worker within a phase (every node sits in
	// exactly one chunk) and phases are separated by wg.Wait barriers.
	// Chunk boundaries cannot affect results: each lane draws from its own
	// (seed, node index, phase)-derived stream.
	runPhase := func(phase int64, reps []int) error {
		elig := make([]int, 0, len(nodes))
		for i := range nodes {
			if reps[i] > 0 && errs[i] == nil {
				elig = append(elig, i)
			}
		}
		// A few chunks per worker for load balance; wide enough lanes to
		// amortize the batched frontier resolutions.
		chunkSz := (len(elig) + 4*workers - 1) / (4 * workers)
		if chunkSz < 1 {
			chunkSz = 1
		}
		idx := make(chan []int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(est *Estimator) {
				defer wg.Done()
				var bcs []*BatchCand
				for ck := range idx {
					if err := ctx.Err(); err != nil {
						cause := context.Cause(ctx)
						for _, i := range ck {
							errs[i] = cause
						}
						continue
					}
					for len(bcs) < len(ck) {
						bcs = append(bcs, &BatchCand{})
					}
					cands := bcs[:len(ck)]
					for k, i := range ck {
						bc := cands[k]
						bc.V = nodes[i]
						bc.RNG = fastrand.New(fastrand.Mix(seed, int64(i), phase))
						bc.Reps = reps[i]
						bc.m = moments[i]
					}
					EstimateAdaptiveBatch(est, cands, t, 1, 0)
					for k, i := range ck {
						moments[i] = cands[k].m
						if cands[k].Err != nil {
							errs[i] = cands[k].Err
						}
					}
				}
			}(ests[w])
		}
		for lo := 0; lo < len(elig); lo += chunkSz {
			if ctx.Err() != nil {
				break // drain: workers mark any already-queued chunks instead
			}
			hi := lo + chunkSz
			if hi > len(elig) {
				hi = len(elig)
			}
			idx <- elig[lo:hi]
		}
		close(idx)
		wg.Wait()
		// Cancellation is authoritative: a phase cut short must never read
		// as a completed (but silently shallower) estimate.
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	base := make([]int, len(nodes))
	for i := range base {
		base[i] = baseReps
	}
	if err := runPhase(0, base); err != nil {
		return nil, err
	}
	variances := make([]float64, len(nodes))
	for i := range moments {
		variances[i] = moments[i].Variance()
	}
	if err := runPhase(1, AllocateByVariance(variances, extraBudget)); err != nil {
		return nil, err
	}

	for _, est := range ests {
		e.StepsTaken += est.StepsTaken
	}
	out := make(map[int]float64, len(nodes))
	for i, u := range nodes {
		out[u] = moments[i].Mean()
	}
	return out, nil
}
