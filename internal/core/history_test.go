package core

// Tests for the paged History representation: agreement with a dense
// reference on random record/read/snapshot interleavings, copy-on-write
// snapshot semantics under the page pool, and the visited-mass memory
// bound (sparse visits on a 5M-max-id fixture must snapshot in O(visited),
// not O(maxId)).

import (
	"math/rand"
	"runtime"
	"testing"
)

// denseHistory is the pre-paging reference implementation: step-indexed
// rows dense by max visited id. It is the semantic oracle the paged
// representation must agree with.
type denseHistory struct {
	counts [][]int32
	walks  int
}

func (h *denseHistory) RecordWalk(path []int) {
	for len(h.counts) < len(path) {
		h.counts = append(h.counts, nil)
	}
	for step, node := range path {
		row := h.counts[step]
		if node >= len(row) {
			grown := make([]int32, node+1)
			copy(grown, row)
			row = grown
			h.counts[step] = row
		}
		row[node]++
	}
	h.walks++
}

func (h *denseHistory) Hits(node, step int) int {
	if step < 0 || step >= len(h.counts) {
		return 0
	}
	row := h.counts[step]
	if node < 0 || node >= len(row) {
		return 0
	}
	return int(row[node])
}

func (h *denseHistory) Snapshot() *denseHistory {
	s := &denseHistory{walks: h.walks}
	s.counts = make([][]int32, len(h.counts))
	for i, row := range h.counts {
		s.counts[i] = append([]int32(nil), row...)
	}
	return s
}

// TestHistoryMatchesDenseReference drives the paged history and the dense
// reference through identical random interleavings of walk recording,
// point reads, and snapshotting, and checks full agreement — both of the
// live histories and of every (snapshot, reference-snapshot) pair at the
// end, after further mutation of the live side.
func TestHistoryMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		paged := NewHistory()
		dense := &denseHistory{}
		// Id spread crosses several page boundaries; occasionally huge to
		// exercise directory growth.
		randomID := func() int {
			switch rng.Intn(4) {
			case 0:
				return rng.Intn(50)
			case 1:
				return histPageSize - 2 + rng.Intn(5) // straddle page edge
			case 2:
				return rng.Intn(4 * histPageSize)
			default:
				return rng.Intn(200_000)
			}
		}
		var snaps []*History
		var denseSnaps []*denseHistory
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2: // record a walk
				path := make([]int, 1+rng.Intn(12))
				for i := range path {
					path[i] = randomID()
				}
				paged.RecordWalk(path)
				dense.RecordWalk(path)
			case 3: // point reads, including out-of-range probes
				for k := 0; k < 10; k++ {
					node, step := randomID(), rng.Intn(14)-1
					if got, want := paged.Hits(node, step), dense.Hits(node, step); got != want {
						t.Fatalf("trial %d op %d: Hits(%d,%d) = %d, dense reference %d",
							trial, op, node, step, got, want)
					}
				}
			case 4: // snapshot both; retire an old pair sometimes
				snaps = append(snaps, paged.Snapshot())
				denseSnaps = append(denseSnaps, dense.Snapshot())
				if len(snaps) > 3 && rng.Intn(2) == 0 {
					snaps[0].Release() // pages may go back to the pool
					snaps = snaps[1:]
					denseSnaps = denseSnaps[1:]
				}
			}
		}
		if paged.Walks() != dense.walks {
			t.Fatalf("trial %d: Walks = %d, dense reference %d", trial, paged.Walks(), dense.walks)
		}
		for si, snap := range snaps {
			ref := denseSnaps[si]
			if snap.Walks() != ref.walks {
				t.Fatalf("trial %d snapshot %d: Walks = %d, reference %d", trial, si, snap.Walks(), ref.walks)
			}
			for k := 0; k < 200; k++ {
				node, step := randomID(), rng.Intn(14)-1
				if got, want := snap.Hits(node, step), ref.Hits(node, step); got != want {
					t.Fatalf("trial %d snapshot %d: Hits(%d,%d) = %d, reference %d",
						trial, si, node, step, got, want)
				}
			}
		}
		for _, snap := range snaps {
			snap.Release()
		}
		paged.Release()
	}
}

// TestHistoryRowAgainstSnapshot checks that the Row accessor over a
// snapshot is frozen: recording into the live history (forcing
// copy-on-write page clones) must not change what the snapshot's rows
// report.
func TestHistoryRowAgainstSnapshot(t *testing.T) {
	h := NewHistory()
	h.RecordWalk([]int{1, histPageSize + 5, 9})
	snap := h.Snapshot()
	row := snap.Row(1)
	if got := row.Hits(histPageSize + 5); got != 1 {
		t.Fatalf("snapshot row hit = %d, want 1", got)
	}
	// Write into the same page of the same step: must clone, not mutate.
	h.RecordWalk([]int{1, histPageSize + 5, 9})
	h.RecordWalk([]int{1, histPageSize + 6, 9})
	if got := row.Hits(histPageSize + 5); got != 1 {
		t.Fatalf("snapshot row mutated to %d after live writes, want 1", got)
	}
	if got := row.Hits(histPageSize + 6); got != 0 {
		t.Fatalf("snapshot row sees new id: %d, want 0", got)
	}
	if got := h.Hits(histPageSize+5, 1); got != 2 {
		t.Fatalf("live history hit = %d, want 2", got)
	}
	snap.Release()
	// Released snapshot's pages are writable again by the live side.
	h.RecordWalk([]int{1, histPageSize + 5, 9})
	if got := h.Hits(histPageSize+5, 1); got != 3 {
		t.Fatalf("live history hit after release = %d, want 3", got)
	}
}

// TestHistoryPoolReuse checks that Release returns pages to the pool and
// that a subsequent history drawn from the same pool starts empty — stale
// counters from the previous owner must never leak through.
func TestHistoryPoolReuse(t *testing.T) {
	pool := NewPagePool()
	h := NewHistoryIn(pool)
	h.RecordWalk([]int{7, 8, 9})
	snap := h.Snapshot()
	snap.Release()
	h.Release()
	if h.Walks() != 0 || h.Hits(7, 0) != 0 {
		t.Fatalf("released history not empty: walks=%d hits=%d", h.Walks(), h.Hits(7, 0))
	}
	h2 := NewHistoryIn(pool)
	h2.RecordWalk([]int{7, 100, 9})
	if got := h2.Hits(8, 1); got != 0 {
		t.Fatalf("recycled page leaked stale counter: Hits(8,1) = %d, want 0", got)
	}
	if got := h2.Hits(100, 1); got != 1 {
		t.Fatalf("recycled history lost its own counter: Hits(100,1) = %d, want 1", got)
	}
}

// sparseFixture records sparse walks whose ids reach up to ~5M — the
// multi-million-node regime the paged layout exists for: a few hundred
// distinct (node, step) cells against a 5M-wide id space.
func sparseFixture(h interface{ RecordWalk([]int) }) {
	rng := rand.New(rand.NewSource(5))
	path := make([]int, 16)
	for w := 0; w < 50; w++ {
		for i := range path {
			path[i] = rng.Intn(5_000_000)
		}
		h.RecordWalk(path)
	}
}

// TestHistorySnapshotMemoryBound is the visited-mass regression test:
// snapshotting a sparse 5M-max-id history must allocate O(visited) —
// page directories plus nothing per untouched id — far under the
// O(maxId · walkLength) of the dense layout (~320 MB for this fixture).
func TestHistorySnapshotMemoryBound(t *testing.T) {
	h := NewHistory()
	sparseFixture(h)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 10
	snaps := make([]*History, rounds)
	for i := range snaps {
		snaps[i] = h.Snapshot()
	}
	runtime.ReadMemStats(&after)
	perSnap := (after.TotalAlloc - before.TotalAlloc) / rounds
	// Directory cost: ≤ ~1.5·(5M/4096) pointers per step × 16 steps ≈ 235 KB.
	// Give 4× headroom; the dense layout would need ~320 MB.
	const budget = 1 << 20
	if perSnap > budget {
		t.Fatalf("sparse snapshot allocates %d B, want <= %d B (visited-mass bound)", perSnap, budget)
	}
	for _, s := range snaps {
		s.Release()
	}
	t.Logf("sparse 5M-max-id snapshot: %d B/op", perSnap)
}

// BenchmarkHistorySnapshotSparse records the snapshot cost of the paged
// representation on the sparse 5M-max-id fixture. bytes/op is the
// quantity BENCH_kernels.json tracks for the visited-mass memory
// contract (CI asserts a ≥100× reduction vs the dense baseline below).
func BenchmarkHistorySnapshotSparse(b *testing.B) {
	h := NewHistory()
	sparseFixture(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		b.StopTimer()
		s.Release()
		b.StartTimer()
	}
}

// BenchmarkHistorySnapshotSparseDense is the dense-layout baseline for the
// same fixture: rows dense by max visited id, deep-copied per snapshot —
// the O(maxId · walkLength) cost the paged representation replaces. Run
// with a small -benchtime (each op copies ~320 MB).
func BenchmarkHistorySnapshotSparseDense(b *testing.B) {
	h := &denseHistory{}
	sparseFixture(h)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		sink += s.walks
	}
	_ = sink
}
