package core

import (
	"fmt"
	"sort"

	"repro/internal/fastrand"
	"repro/internal/mathx"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Estimator produces unbiased estimates of p_t(u) — the probability that a
// t-step forward walk from Start lands on u — by walking backward from u
// (Section 5). With neither heuristic enabled it is exactly
// UNBIASED-ESTIMATE (Algorithm 1); Crawl enables initial crawling
// (Section 5.2) and Hist enables weighted backward sampling (Section 5.3,
// Algorithm 2 / WS-BW).
//
// Fidelity note (documented in DESIGN.md): the paper's Algorithm 2 biases the
// backward pick toward historically-hit neighbors but keeps Algorithm 1's
// |N(u)|/|N(v)| factor, which is only unbiased for uniform picks. We weight
// each step by p(w→u)/π_pick(w) — the importance-corrected generic form —
// which reduces to the paper's factor under uniform picks and stays unbiased
// under any pick distribution with full support (guaranteed by the ε-mixing
// of Equation line 4 in Algorithm 2).
//
// Configuration freeze: Client, Design and Epsilon must be set before the
// first estimate and not mutated afterwards — the step kernel caches values
// derived from them on first use. Crawl and Hist may be swapped between
// estimates (the parallel pipeline re-points Hist at fresh snapshots).
type Estimator struct {
	Client *osn.Client
	Design walk.Design
	Start  int
	// Crawl, when non-nil, terminates backward walks early with exact
	// probabilities (initial-crawling heuristic).
	Crawl *CrawlTable
	// Hist, when non-nil, enables weighted backward sampling from recorded
	// forward walks.
	Hist *History
	// Epsilon is the minimum-probability mass of WS-BW (paper default 0.1).
	// Only used when Hist != nil. Zero means 0.1.
	Epsilon float64

	// DisableStepCache turns off the WS-BW step-distribution cache
	// (stepcache.go). Cached and uncached runs draw bit-identical samples;
	// the switch exists for the equivalence tests and for memory-austere
	// callers.
	DisableStepCache bool

	// StepsTaken accumulates the total number of backward steps walked, for
	// the cost accounting of Figure 5.
	StepsTaken int64

	// scratch is the reusable hit-count buffer of backStep. One buffer per
	// Estimator keeps the WS-BW inner loop allocation-free; parallel callers
	// give each worker its own Estimator, so no synchronization is needed.
	scratch []float64

	// probKind/fastEdge/selfLoops/stableView/eps cache per-(Design, Client)
	// constants so the step kernel makes no interface calls for them:
	// initialized on the first EstimateOnce.
	probKind   walk.EdgeProbKind
	probInit   bool
	fastEdge   bool
	selfLoops  bool
	stableView bool
	eps        float64

	// cache is the lazily built WS-BW step-distribution cache (stepcache.go).
	cache *stepCache

	// vec is the lazily built scratch state of the vectorized backward
	// kernel (batch.go).
	vec *vecState
}

func (e *Estimator) epsilon() float64 {
	if e.Epsilon <= 0 || e.Epsilon > 1 {
		return 0.1
	}
	return e.Epsilon
}

func (e *Estimator) initProbKind() {
	e.probKind = walk.EdgeProbKindOf(e.Design)
	e.fastEdge = e.probKind != walk.EdgeProbNone && e.Client.SymmetricView()
	e.selfLoops = e.Design.SelfLoops()
	e.stableView = e.Client.StableView()
	e.eps = e.epsilon()
	e.probInit = true
}

// StepCacheStats returns the step-distribution cache counters (zero before
// the first weighted backward step at a cacheable hub).
func (e *Estimator) StepCacheStats() StepCacheStats {
	if e.cache == nil {
		return StepCacheStats{}
	}
	return e.cache.stats
}

// EstimateOnce returns a single unbiased estimate of p_t(u). The walk's
// queries are charged to the estimator's client.
//
// The loop carries the current node's neighbor list from step to step: the
// list fetched to compute p(w→node) is exactly the candidate list the next
// backward step needs, so each step performs one Neighbors call, not three.
func (e *Estimator) EstimateOnce(u, t int, rng fastrand.RNG) (float64, error) {
	if t < 0 {
		return 0, fmt.Errorf("core: negative step count %d", t)
	}
	if !e.probInit {
		e.initProbKind()
	}
	weight := 1.0
	node := u
	var nbr []int32
	haveNbr := false
	for step := t; step > 0; step-- {
		// Initial-crawling early exit: exact value available.
		if e.Crawl != nil {
			if p, ok := e.Crawl.Lookup(node, step); ok {
				return weight * p, nil
			}
		}
		if !haveNbr {
			nbr = e.Client.Neighbors(node)
			haveNbr = true
		}
		w, pick, err := e.backStep(node, step, nbr, rng)
		if err != nil {
			return 0, err
		}
		e.StepsTaken++
		var trans float64 // p(w→node)
		if w == node {
			// Self-loop candidate: the stay-probability has no degree-only
			// form (for MHRW it scans all neighbor degrees). nbr stays valid.
			trans = e.Design.Prob(e.Client, w, node)
		} else {
			wNbr := e.Client.Neighbors(w)
			if e.fastEdge && len(wNbr) > 0 {
				// w was drawn from N(node) and the view is symmetric, so
				// {w,node} is an edge and p(w→node) follows from the two
				// degrees already in hand — no membership scan.
				trans = e.probKind.Prob(len(wNbr), len(nbr))
			} else {
				trans = e.Design.Prob(e.Client, w, node)
			}
			nbr = wNbr
		}
		if trans == 0 {
			// Only reachable via the self-loop candidate when the design's
			// stay-probability happens to be 0; the estimate is exactly 0.
			return 0, nil
		}
		weight *= trans / pick
		node = w
	}
	if e.Crawl != nil {
		if p, ok := e.Crawl.Lookup(node, 0); ok {
			return weight * p, nil
		}
	}
	if node == e.Start {
		return weight, nil
	}
	return 0, nil
}

// backStep samples the predecessor candidate w for the current node and
// returns it with its pick probability. Candidates are nbr = N(node), plus
// node itself (the last slot) for designs with self-loops. The WS-BW path is
// a flat two-pass kernel over the dense history row — accumulate smoothed
// hit counts into the scratch buffer, then inverse-CDF select — with no
// per-candidate function values and no allocation.
func (e *Estimator) backStep(node, step int, nbr []int32, rng fastrand.RNG) (w int, pick float64, err error) {
	if !e.probInit {
		e.initProbKind()
	}
	total := len(nbr)
	if e.selfLoops {
		total++
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("core: node %d has no predecessor candidates", node)
	}
	uniform := 1 / float64(total)

	if e.Hist == nil || e.Hist.Walks() == 0 {
		// UNBIASED-ESTIMATE: uniform pick.
		i := rng.Intn(total)
		if i < len(nbr) {
			return int(nbr[i]), uniform, nil
		}
		return node, uniform, nil // self-loop slot
	}

	// WS-BW: mix the uniform distribution with the (Laplace-smoothed)
	// historic hit distribution at the predecessor step. Two tempering
	// measures keep the importance weights bounded — a necessity the
	// paper's Algorithm 2 glosses over (its raw (1−ε)·n/n_hw tilt makes
	// the weight products explode combinatorially on dense graphs):
	//
	//   1. Laplace smoothing (+1 per candidate) so sparse evidence cannot
	//      concentrate the pick distribution;
	//   2. evidence-adaptive mixing: the history component's share grows
	//      with the observed hit mass z as (1−ε)·z/(z+|C|), so with little
	//      evidence the pick stays near uniform.
	//
	// Any full-support pick distribution keeps the estimator unbiased via
	// the p(w→u)/π_pick(w) correction; the tempering only controls
	// variance. The worst-case per-step weight inflation is 1/ε.
	// Hit rows are paged and sparse in content: each candidate probe is a
	// page-directory index plus a test of the page's cache-resident nonzero
	// bitset, and only candidates with hits dereference the wide counter
	// array (HistRow.Hits).
	row := e.Hist.Row(step - 1)
	// Hub rows on frozen snapshot views go through the step-distribution
	// cache: the sparse row restriction gathered on a previous visit serves
	// every revisit of the generation (lazily freezing the exact CDF), and
	// reconciles across a snapshot refresh via the recent-walk ring. Against
	// the live, per-walk-perturbed history the cache is not consulted at all
	// — measured on the sequential sampler it builds two entries for every
	// serve and loses to the plain gather. Bit-identical either way; see
	// stepcache.go. Unstable (type-1 restricted) views skip it too: a cached
	// candidate list would not describe the next call's.
	gated := e.Hist.frozen && e.stableView && !e.DisableStepCache && len(nbr) >= stepCacheMinDeg && uint(step) < stepCacheMaxStep
	if gated {
		if chosen, pick, ok := e.cacheStep(node, step, nbr, total, rng); ok {
			if chosen < len(nbr) {
				return int(nbr[chosen]), pick, nil
			}
			return node, pick, nil
		}
	}
	// Dense gather. A history row holds exactly one hit per recorded walk,
	// so against any one candidate list the row is almost entirely zeros;
	// the common probe dies in the page's cache-resident nonzero bitset and
	// the loop tail (store and accumulate) stays branch-free, exactly the
	// shape that predicts well. Attempts to skip work here — a per-row
	// visited filter, sparse gathers, hoisted page pointers — all measured
	// slower than this flat loop on the mem backend; see DESIGN.md.
	if cap(e.scratch) < total {
		e.scratch = make([]float64, total+total/2)
	}
	hits := e.scratch[:total]
	var z float64
	for i, nb := range nbr {
		h := float64(row.Hits(int(nb)))
		hits[i] = h
		z += h
	}
	if total > len(nbr) { // self-loop slot
		h := float64(row.Hits(node))
		hits[total-1] = h
		z += h
	}
	if gated {
		// Scalar visit to a cacheable pair: store the sparse restriction so
		// frozen-view revisits select without re-gathering.
		e.cacheStore(node, step, nbr, total, hits, z)
	}
	if z == 0 {
		i := rng.Intn(total)
		if i < len(nbr) {
			return int(nbr[i]), uniform, nil
		}
		return node, uniform, nil
	}
	eps := e.eps
	smoothZ := z + float64(total) // Laplace: +1 per candidate
	beta := (1 - eps) * z / smoothZ
	// prob(i) = (1-beta)*uniform + beta*(hits[i]+1)/smoothZ, precomputed as
	// base + scale*(hits[i]+1) so the selection loop is add-and-compare.
	base := (1 - beta) * uniform
	scale := beta / smoothZ
	r := rng.Float64()
	acc := 0.0
	chosen := total - 1
	for i := 0; i < total; i++ {
		acc += base + scale*(hits[i]+1)
		if r < acc {
			chosen = i
			break
		}
	}
	pick = base + scale*(hits[chosen]+1)
	if chosen < len(nbr) {
		return int(nbr[chosen]), pick, nil
	}
	return node, pick, nil
}

// Estimate runs reps independent backward walks and returns the mean
// estimate together with the sample variance of the individual estimates
// (Algorithm 3's per-node quantities).
func (e *Estimator) Estimate(u, t, reps int, rng fastrand.RNG) (mean, variance float64, err error) {
	if reps < 1 {
		return 0, 0, fmt.Errorf("core: reps must be >= 1, got %d", reps)
	}
	var m mathx.Moments
	for i := 0; i < reps; i++ {
		v, err := e.EstimateOnce(u, t, rng)
		if err != nil {
			return 0, 0, err
		}
		m.Add(v)
	}
	return m.Mean(), m.Variance(), nil
}

// AllocateByVariance distributes extra repetitions across estimation targets
// proportionally to their current variance (the budget rule at the end of
// Algorithm 3). variances must be non-negative; targets with zero variance
// receive nothing unless all are zero, in which case the budget is spread
// evenly. The returned slice sums to budget.
func AllocateByVariance(variances []float64, budget int) []int {
	n := len(variances)
	alloc := make([]int, n)
	if n == 0 || budget <= 0 {
		return alloc
	}
	total := 0.0
	for _, v := range variances {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		for i := 0; i < budget; i++ {
			alloc[i%n]++
		}
		return alloc
	}
	// Largest-remainder apportionment.
	assigned := 0
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, 0, n)
	for i, v := range variances {
		if v <= 0 {
			continue
		}
		exact := float64(budget) * v / total
		share := int(exact)
		alloc[i] = share
		assigned += share
		rems = append(rems, rem{i, exact - float64(share)})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < budget; k++ {
		alloc[rems[k%len(rems)].i]++
		assigned++
	}
	return alloc
}
