package exp

import (
	"math/rand"

	"repro/internal/gen"
	"repro/internal/linalg"
)

// BurnInProfile tabulates the exact burn-in period (Definition 3: the
// smallest t with relative point-wise distance Δ(t) <= ε) for the five
// case-study models at n≈31, across a range of thresholds — the quantity
// whose uncomputability-in-practice motivates the whole paper. The chain is
// the lazified MHRW of the Section 4.2 setup.
func BurnInProfile(o Options) (Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	epsilons := []float64{1, 0.5, 0.1, 0.05, 0.01}
	var series []Series
	for _, model := range gen.AllModels() {
		g, n := model.Instantiate(31, rng)
		chain := linalg.Lazify(linalg.NewMHRW(g), 0.01)
		pi := linalg.UniformStationary(n)
		s := Series{Name: model.String()}
		for _, eps := range epsilons {
			t := chain.BurnIn(pi, eps, 20000)
			s.Points = append(s.Points, Point{X: eps, Y: float64(t)})
		}
		series = append(series, s)
	}
	return Result{
		Title:  "Burn-in period (Definition 3) vs threshold ε, five models at n≈31",
		XLabel: "epsilon",
		YLabel: "burn-in-steps",
		Series: series,
	}, nil
}
