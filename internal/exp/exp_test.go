package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyOptions keeps experiment smoke tests fast. Scale 0.06 keeps the
// surrogates large enough that unique-query accounting does not saturate the
// whole graph within a trial (which would mask cost differences).
func tinyOptions() Options {
	return Options{
		Seed:        7,
		Scale:       0.06,
		Trials:      3,
		Samples:     25,
		BiasSamples: 4000,
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	maxS, minS := r.Series[0], r.Series[1]
	if len(maxS.Points) != 80 || len(minS.Points) != 80 {
		t.Fatalf("points = %d/%d", len(maxS.Points), len(minS.Points))
	}
	// Max starts near 1 and decreases sharply; min starts at 0 and rises.
	if maxS.Points[0].Y < 0.1 {
		t.Error("max prob should start high")
	}
	if minS.Points[0].Y != 0 {
		t.Error("min prob should start at 0")
	}
	last := len(minS.Points) - 1
	if minS.Points[last].Y <= 0 {
		t.Error("min prob should become positive after mixing")
	}
	if maxS.Points[last].Y >= maxS.Points[0].Y {
		t.Error("max prob should decrease")
	}
	// Max >= min everywhere.
	for i := range maxS.Points {
		if maxS.Points[i].Y < minS.Points[i].Y {
			t.Fatalf("max < min at t=%d", i+1)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("series = %d, want 5 models", len(r.Series))
	}
	for _, s := range r.Series {
		// Infinite cost early, then a dip, then growth (check: finite min
		// strictly below the final point).
		minY, minIdx := math.Inf(1), -1
		for i, p := range s.Points {
			if p.Y < minY {
				minY, minIdx = p.Y, i
			}
		}
		if math.IsInf(minY, 1) {
			t.Fatalf("%s: no finite cost", s.Name)
		}
		lastY := s.Points[len(s.Points)-1].Y
		if lastY <= minY {
			t.Errorf("%s: cost should rise past the optimum (min %v at t=%d, last %v)",
				s.Name, minY, minIdx+1, lastY)
		}
		if !math.IsInf(s.Points[0].Y, 1) {
			t.Errorf("%s: cost at t=1 should be infinite (below diameter)", s.Name)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("series = %d", len(r.Series))
	}
	byName := map[string]Series{}
	for _, s := range r.Series {
		byName[s.Name] = s
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Fatalf("%s: saving %v%% out of range", s.Name, p.Y)
			}
		}
	}
	// Figure 3's qualitative claims: the cycle's saving declines with size
	// and ends weakest (within a small fluctuation tolerance for the random
	// BA model); the barbell's saving grows with size.
	cyc := byName["Cycle"].Points
	bar := byName["Barbell"].Points
	cLast := cyc[len(cyc)-1]
	if cyc[0].Y-cLast.Y < 10 {
		t.Errorf("cycle saving should decline with size: %v -> %v", cyc[0].Y, cLast.Y)
	}
	for name, s := range byName {
		if name == "Cycle" {
			continue
		}
		if last := s.Points[len(s.Points)-1]; last.Y < cLast.Y-2 {
			t.Errorf("%s saving %v well below cycle %v", name, last.Y, cLast.Y)
		}
	}
	if bLast := bar[len(bar)-1]; bLast.Y <= bar[0].Y {
		t.Errorf("barbell saving should grow with size: %v -> %v", bar[0].Y, bLast.Y)
	}
}

func TestFig5Shape(t *testing.T) {
	o := tinyOptions()
	r, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	srw, we := r.Series[0], r.Series[1]
	last := len(we.Points) - 1
	// WE cost explodes with the diameter; SRW's Geweke cost stays modest.
	if we.Points[last].Y <= we.Points[0].Y {
		t.Errorf("WE steps should grow with diameter: %v -> %v", we.Points[0].Y, we.Points[last].Y)
	}
	growthWE := we.Points[last].Y / we.Points[0].Y
	growthSRW := srw.Points[last].Y / srw.Points[0].Y
	if growthWE <= growthSRW {
		t.Errorf("WE growth %vx should exceed SRW growth %vx", growthWE, growthSRW)
	}
}

func TestFig6WEBeatsBaseline(t *testing.T) {
	o := tinyOptions()
	rs, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("panels = %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Series) != 2 {
			t.Fatalf("%s: series = %d", r.Title, len(r.Series))
		}
		for _, s := range r.Series {
			if len(s.Points) != o.samples() {
				t.Fatalf("%s/%s: points = %d", r.Title, s.Name, len(s.Points))
			}
			for _, p := range s.Points {
				if p.X < 0 || math.IsNaN(p.Y) {
					t.Fatalf("%s/%s: bad point %+v", r.Title, s.Name, p)
				}
			}
		}
	}
	// Headline claim: WE is cheaper early (before unique-query accounting
	// saturates the miniature graph) and at least as accurate at the end.
	cheaper, accurate := 0, 0
	for _, r := range rs {
		base, we := r.Series[0], r.Series[1]
		if we.Points[9].X < base.Points[9].X {
			cheaper++
		}
		if we.Points[len(we.Points)-1].Y <= base.Points[len(base.Points)-1].Y {
			accurate++
		}
	}
	if cheaper < 3 {
		t.Errorf("WE cheaper at sample 10 in only %d/4 panels", cheaper)
	}
	if accurate < 3 {
		t.Errorf("WE at least as accurate in only %d/4 panels", accurate)
	}
}

func TestFig9AblationOrdering(t *testing.T) {
	o := tinyOptions()
	rs, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("panels = %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Series) != 4 {
			t.Fatalf("%s: series = %d, want 4 variants", r.Title, len(r.Series))
		}
		names := []string{"WE-None", "WE-Crawl", "WE-Weighted", "WE"}
		for i, s := range r.Series {
			if s.Name != names[i] {
				t.Fatalf("%s: series %d = %s, want %s", r.Title, i, s.Name, names[i])
			}
		}
	}
}

func TestFig11PanelsAndSizes(t *testing.T) {
	o := tinyOptions()
	rs, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if len(rs[0].Series) != 6 || len(rs[1].Series) != 6 {
		t.Fatalf("series = %d/%d, want 6 (SRW+WE at 3 sizes)", len(rs[0].Series), len(rs[1].Series))
	}
	for _, s := range rs[1].Series {
		if s.Points[0].X != 1 {
			t.Fatalf("samples axis should start at 1, got %v", s.Points[0].X)
		}
	}
}

func TestTable1WEBeatsSRW(t *testing.T) {
	o := tinyOptions()
	r, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("rows = %d", len(r.Series))
	}
	srw, we := r.Series[0], r.Series[1]
	srwKL, weKL := srw.Points[1].Y, we.Points[1].Y
	if weKL >= srwKL {
		t.Errorf("Table 1 headline: WE KL %v should beat SRW KL %v", weKL, srwKL)
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Y < 0 || math.IsInf(p.Y, 0) || math.IsNaN(p.Y) {
				t.Fatalf("distance %v invalid", p.Y)
			}
		}
	}
}

func TestFig12Distributions(t *testing.T) {
	o := tinyOptions()
	rs, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Series) != 3 {
			t.Fatalf("%s: series = %d", r.Title, len(r.Series))
		}
	}
	// CDFs end at ~1.
	for _, s := range rs[1].Series {
		last := s.Points[len(s.Points)-1].Y
		if math.Abs(last-1) > 1e-9 {
			t.Errorf("%s CDF ends at %v", s.Name, last)
		}
	}
	// PDF ordered by degree-descending: theoretical pdf non-increasing.
	theo := rs[0].Series[0]
	for i := 1; i < len(theo.Points); i++ {
		if theo.Points[i].Y > theo.Points[i-1].Y+1e-12 {
			t.Fatal("theoretical PDF must be non-increasing in degree order")
		}
	}
}

func TestOneLongRunStudy(t *testing.T) {
	o := tinyOptions()
	r, err := OneLongRunStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	long, short := r.Series[0], r.Series[1]
	nominal, ess := long.Points[0].Y, long.Points[1].Y
	if ess >= nominal {
		t.Errorf("ESS %v should be below nominal %v (correlated samples)", ess, nominal)
	}
	if short.Points[2].Y < 0 || long.Points[2].Y < 0 {
		t.Error("relative errors must be non-negative")
	}
}

func TestBurnInProfile(t *testing.T) {
	r, err := BurnInProfile(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		// Burn-in grows (weakly) as epsilon shrinks.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Fatalf("%s: burn-in must grow as ε shrinks: %v", s.Name, s.Points)
			}
		}
		last := s.Points[len(s.Points)-1].Y
		if last < 1 {
			t.Fatalf("%s: burn-in %v at tightest ε", s.Name, last)
		}
	}
}

func TestFig7Fig8Panels(t *testing.T) {
	o := Options{Seed: 5, Scale: 0.01, Trials: 2, Samples: 10}
	for name, f := range map[string]func(Options) ([]Result, error){
		"Fig7": Fig7, "Fig8": Fig8, "Fig10": Fig10,
	} {
		rs, err := f(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rs) != 4 {
			t.Fatalf("%s: panels = %d", name, len(rs))
		}
		for _, r := range rs {
			if len(r.Series) != 2 {
				t.Fatalf("%s/%s: series = %d", name, r.Title, len(r.Series))
			}
			for _, s := range r.Series {
				if len(s.Points) != o.Samples {
					t.Fatalf("%s/%s/%s: points = %d", name, r.Title, s.Name, len(s.Points))
				}
				for _, p := range s.Points {
					if math.IsNaN(p.Y) || p.Y < 0 {
						t.Fatalf("%s: bad error value %v", name, p.Y)
					}
				}
			}
		}
	}
}

func TestGewekeSensitivity(t *testing.T) {
	o := tinyOptions()
	r, err := GewekeSensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
	names := []string{"SRW-Z0.1", "SRW-Z0.01", "SRW-Fixed100", "WE"}
	for i, s := range r.Series {
		if s.Name != names[i] {
			t.Fatalf("series %d = %s, want %s", i, s.Name, names[i])
		}
		if len(s.Points) != o.samples() {
			t.Fatalf("%s: points = %d", s.Name, len(s.Points))
		}
	}
	// A stricter threshold (or fixed long burn-in) must cost more queries
	// per sample than the loose default at the first checkpoint.
	loose := r.Series[0].Points[4].X
	strict := r.Series[1].Points[4].X
	if strict < loose {
		t.Errorf("Z<=0.01 cost %v should be >= Z<=0.1 cost %v", strict, loose)
	}
}

func TestHarvestStudy(t *testing.T) {
	o := tinyOptions()
	r, err := HarvestStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	we, hv := r.Series[0], r.Series[1]
	if we.Name != "WE" || hv.Name != "WE-Harvest" {
		t.Fatalf("series names: %s, %s", we.Name, hv.Name)
	}
	// Harvesting amortizes the forward walk: cheaper at the final sample.
	last := len(we.Points) - 1
	if hv.Points[last].X > we.Points[last].X {
		t.Errorf("harvest cost %v should not exceed plain WE %v", hv.Points[last].X, we.Points[last].X)
	}
}

func TestRenderSharedAndDisjoint(t *testing.T) {
	shared := Result{
		Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 2}, {2, 3}}},
			{Name: "b", Points: []Point{{1, 5}, {2, math.Inf(1)}}},
		},
	}
	var buf bytes.Buffer
	if err := shared.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "inf") {
		t.Fatalf("render output missing columns:\n%s", out)
	}
	disjoint := Result{
		Title: "t2", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 2}}},
			{Name: "b", Points: []Point{{9, 5}, {10, 6}}},
		},
	}
	buf.Reset()
	if err := disjoint.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# a") || !strings.Contains(buf.String(), "# b") {
		t.Fatalf("disjoint render broken:\n%s", buf.String())
	}
	empty := Result{Title: "e"}
	buf.Reset()
	if err := empty.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty render should say no data")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 0.25 || o.trials() != 15 || o.samples() != 100 {
		t.Fatal("defaults wrong")
	}
	if o.gewekeThreshold() != 0.1 || o.maxWalkSteps() != 2000 || o.biasSamples() != 200000 {
		t.Fatal("defaults wrong")
	}
	bad := Options{Scale: 2}
	if bad.scale() != 0.25 {
		t.Fatal("invalid scale should fall back")
	}
}
