package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/osn"
	"repro/internal/walk"
)

// nodeSampler is the common surface of the baseline samplers and
// WALK-ESTIMATE as used by the error-vs-cost engine.
type nodeSampler interface {
	SampleN(n int) (walk.Result, error)
}

// baseline adapts walk.ManyShortRuns (the paper's default comparison
// sampler, with the Geweke monitor) to the nodeSampler surface.
type baseline struct {
	c     *osn.Client
	d     walk.Design
	start int
	mon   walk.Monitor
	max   int
	rng   *rand.Rand
}

func (b baseline) SampleN(n int) (walk.Result, error) {
	return walk.ManyShortRuns(b.c, b.d, b.start, n, b.mon, b.max, b.rng)
}

// samplerBuilder constructs a fresh sampler (and the client it is charged
// against) for one experiment trial.
type samplerBuilder func(trial int) (nodeSampler, *osn.Client, error)

// newBaselineBuilder returns a builder for the traditional sampler on ds.
func newBaselineBuilder(ds *dataset.Dataset, d walk.Design, o Options) samplerBuilder {
	return func(trial int) (nodeSampler, *osn.Client, error) {
		rng := rand.New(rand.NewSource(o.Seed ^ int64(trial)*0x5851F42D4C957F2D + 11))
		c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
		mon := walk.Geweke{Threshold: o.gewekeThreshold()}
		return baseline{c: c, d: d, start: ds.StartNode, mon: mon, max: o.maxWalkSteps(), rng: rng}, c, nil
	}
}

// weVariant toggles WALK-ESTIMATE's variance-reduction heuristics
// (Figure 9's ablation axes).
type weVariant struct {
	crawl    bool
	weighted bool
}

var (
	weFull     = weVariant{crawl: true, weighted: true}
	weNone     = weVariant{}
	weCrawl    = weVariant{crawl: true}
	weWeighted = weVariant{weighted: true}
)

// newWEBuilder returns a builder for WALK-ESTIMATE over ds with the given
// input design and heuristic toggles.
func newWEBuilder(ds *dataset.Dataset, d walk.Design, v weVariant, o Options) samplerBuilder {
	return func(trial int) (nodeSampler, *osn.Client, error) {
		rng := rand.New(rand.NewSource(o.Seed ^ int64(trial)*0x5851F42D4C957F2D + 23))
		c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
		cfg := core.Config{
			Design:      d,
			Start:       ds.StartNode,
			WalkLength:  ds.WalkLength(),
			UseCrawl:    v.crawl,
			CrawlHops:   ds.CrawlHops,
			UseWeighted: v.weighted,
		}
		s, err := core.NewSampler(c, cfg, rng)
		if err != nil {
			return nil, nil, err
		}
		return s, c, nil
	}
}

// runningEstimator maintains a prefix AVG estimate in O(1) per added sample:
// arithmetic mean for uniform targets, importance-weighted ratio for
// degree-proportional targets.
type runningEstimator struct {
	c       *osn.Client
	d       walk.Design
	attr    string
	uniform bool
	num     mathx.KahanSum
	den     mathx.KahanSum
	n       int
}

func newRunningEstimator(c *osn.Client, d walk.Design, attr string) *runningEstimator {
	_, uniform := d.(walk.MHRW)
	return &runningEstimator{c: c, d: d, attr: attr, uniform: uniform}
}

func (r *runningEstimator) add(v int) error {
	x, err := r.c.Attr(r.attr, v)
	if err != nil {
		return err
	}
	if r.uniform {
		r.num.Add(x)
		r.den.Add(1)
	} else {
		w := r.d.TargetWeight(r.c, v)
		if w <= 0 {
			return fmt.Errorf("exp: non-positive target weight for node %d", v)
		}
		r.num.Add(x / w)
		r.den.Add(1 / w)
	}
	r.n++
	return nil
}

func (r *runningEstimator) estimate() float64 {
	d := r.den.Sum()
	if d == 0 {
		return 0
	}
	return r.num.Sum() / d
}

// errCurves runs `trials` independent sampling runs and returns, per sample
// index i (1-based), the averages over trials of (a) cumulative query cost
// and (b) relative error of the prefix estimate — the coordinates of the
// paper's error-vs-query-cost and error-vs-samples figures.
func errCurves(build samplerBuilder, d walk.Design, attr string, truth float64, trials, samples int) (avgCost, avgErr []float64, err error) {
	sumCost := make([]float64, samples)
	sumErr := make([]float64, samples)
	for trial := 0; trial < trials; trial++ {
		s, c, err := build(trial)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.SampleN(samples)
		if err != nil {
			return nil, nil, fmt.Errorf("exp: trial %d: %w", trial, err)
		}
		est := newRunningEstimator(c, d, attr)
		for i, v := range res.Nodes {
			if err := est.add(v); err != nil {
				return nil, nil, err
			}
			sumCost[i] += float64(res.CostAfter[i])
			sumErr[i] += agg.RelativeError(est.estimate(), truth)
		}
	}
	avgCost = make([]float64, samples)
	avgErr = make([]float64, samples)
	for i := range sumCost {
		avgCost[i] = sumCost[i] / float64(trials)
		avgErr[i] = sumErr[i] / float64(trials)
	}
	return avgCost, avgErr, nil
}

// errVsCostSeries converts errCurves output into a cost-indexed series.
func errVsCostSeries(name string, avgCost, avgErr []float64) Series {
	pts := make([]Point, len(avgCost))
	for i := range avgCost {
		pts[i] = Point{X: avgCost[i], Y: avgErr[i]}
	}
	return Series{Name: name, Points: pts}
}

// errVsSamplesSeries converts errCurves output into a sample-indexed series.
func errVsSamplesSeries(name string, avgErr []float64) Series {
	pts := make([]Point, len(avgErr))
	for i := range avgErr {
		pts[i] = Point{X: float64(i + 1), Y: avgErr[i]}
	}
	return Series{Name: name, Points: pts}
}
