package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/osn"
	"repro/internal/walk"
)

// GewekeSensitivity is the paper's stated sensitivity check (Section 2.2.3:
// "we set the threshold to be Z <= 0.1 by default, while also performing
// tests with the threshold Z <= 0.01"): error-vs-cost curves for the SRW
// baseline at both thresholds plus a conservative fixed burn-in, against
// WALK-ESTIMATE, on the Google Plus surrogate's AVG-degree aggregate.
func GewekeSensitivity(o Options) (Result, error) {
	ds, err := dataset.GooglePlus(o.scale(), o.Seed)
	if err != nil {
		return Result{}, err
	}
	truth := ds.Truth[osn.AttrDegree]
	res := Result{
		Title:  "Geweke sensitivity: SRW at Z<=0.1 / Z<=0.01 / fixed burn-in vs WALK-ESTIMATE (GPlus AVG degree)",
		XLabel: "query-cost",
		YLabel: "relative-error",
	}
	variants := []struct {
		name string
		mon  walk.Monitor
	}{
		{"SRW-Z0.1", walk.Geweke{Threshold: 0.1}},
		{"SRW-Z0.01", walk.Geweke{Threshold: 0.01}},
		{"SRW-Fixed100", walk.FixedBurnIn{N: 100}},
	}
	for _, v := range variants {
		mon := v.mon
		build := func(trial int) (nodeSampler, *osn.Client, error) {
			rng := rand.New(rand.NewSource(o.Seed ^ int64(trial)*0x5851F42D4C957F2D + 311))
			c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
			return baseline{c: c, d: walk.SRW{}, start: ds.StartNode, mon: mon, max: o.maxWalkSteps(), rng: rng}, c, nil
		}
		cost, errs, err := errCurves(build, walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
		if err != nil {
			return Result{}, fmt.Errorf("exp: sensitivity %s: %w", v.name, err)
		}
		res.Series = append(res.Series, errVsCostSeries(v.name, cost, errs))
	}
	cost, errs, err := errCurves(newWEBuilder(ds, walk.SRW{}, weFull, o), walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
	if err != nil {
		return Result{}, err
	}
	res.Series = append(res.Series, errVsCostSeries("WE", cost, errs))
	return res, nil
}

// HarvestStudy evaluates the Section 6.1 future-work extension implemented
// in core.HarvestSampler: plain WALK-ESTIMATE vs the path-harvesting variant
// on the synthetic BA workload — error vs query cost at equal sample counts.
func HarvestStudy(o Options) (Result, error) {
	n := scaledSize(10000, o.scale())
	ds, err := dataset.SyntheticBA(n, o.Seed)
	if err != nil {
		return Result{}, err
	}
	truth := ds.Truth[osn.AttrDegree]
	res := Result{
		Title:  fmt.Sprintf("Harvest extension (Section 6.1): WE vs path-harvesting WE (BA n=%d, AVG degree)", n),
		XLabel: "query-cost",
		YLabel: "relative-error",
	}
	cost, errs, err := errCurves(newWEBuilder(ds, walk.SRW{}, weFull, o), walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
	if err != nil {
		return Result{}, err
	}
	res.Series = append(res.Series, errVsCostSeries("WE", cost, errs))

	build := func(trial int) (nodeSampler, *osn.Client, error) {
		rng := rand.New(rand.NewSource(o.Seed ^ int64(trial)*0x5851F42D4C957F2D + 317))
		c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
		cfg := core.Config{
			Design:      walk.SRW{},
			Start:       ds.StartNode,
			WalkLength:  ds.WalkLength(),
			UseCrawl:    true,
			CrawlHops:   ds.CrawlHops,
			UseWeighted: true,
		}
		s, err := core.NewHarvestSampler(c, cfg, 0, rng)
		if err != nil {
			return nil, nil, err
		}
		return s, c, nil
	}
	cost, errs, err = errCurves(build, walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
	if err != nil {
		return Result{}, err
	}
	res.Series = append(res.Series, errVsCostSeries("WE-Harvest", cost, errs))
	return res, nil
}
