// Package exp reproduces every table and figure of the paper's evaluation
// (Section 7) plus the theoretical case studies (Section 4.2): one typed
// runner per experiment, each emitting the same series/rows the paper
// reports, rendered as plain-text tables. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) datum of a series.
type Point struct {
	X, Y float64
}

// Series is a named line of points (one legend entry of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Result is one figure panel or table: labeled series over labeled axes.
type Result struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the result as an aligned text table: one x column per
// distinct x, one column per series. Series with disjoint x-grids are
// printed block-wise.
func (r Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n", r.Title); err != nil {
		return err
	}
	if len(r.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if sharedGrid(r.Series) {
		return r.renderShared(w)
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "# %s\n%-14s %-14s\n", s.Name, r.XLabel, r.YLabel); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%-14s %-14s\n", fmtNum(p.X), fmtNum(p.Y)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r Result) renderShared(w io.Writer) error {
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), " ")); err != nil {
		return err
	}
	for i, p := range r.Series[0].Points {
		row := []string{fmtNum(p.X)}
		for _, s := range r.Series {
			row = append(row, fmtNum(s.Points[i].Y))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(row), " ")); err != nil {
			return err
		}
	}
	return nil
}

func sharedGrid(series []Series) bool {
	for _, s := range series[1:] {
		if len(s.Points) != len(series[0].Points) {
			return false
		}
		for i := range s.Points {
			if s.Points[i].X != series[0].Points[i].X {
				return false
			}
		}
	}
	return true
}

func pad(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%-14s", c)
	}
	return out
}

func fmtNum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Options tunes the experiment budgets. The zero value picks defaults sized
// for an interactive run (a few minutes per dataset figure); the paper-scale
// settings (Trials=100, Scale=1) are available through the weexp CLI flags.
type Options struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Scale shrinks the dataset surrogates (0 < Scale <= 1); 0 means 0.25.
	Scale float64
	// Trials is the number of independent repetitions averaged per data
	// point (paper: 100); 0 means 15.
	Trials int
	// Samples is the number of samples drawn per trial; 0 means 100.
	Samples int
	// GewekeThreshold for the baseline convergence monitor; 0 means 0.1.
	GewekeThreshold float64
	// MaxWalkSteps caps each baseline walk; 0 means 2000.
	MaxWalkSteps int
	// BiasSamples is the sample count for the exact-bias experiments
	// (Figure 12 / Table 1); 0 means 200000.
	BiasSamples int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 0.25
	}
	return o.Scale
}

func (o Options) trials() int {
	if o.Trials <= 0 {
		return 15
	}
	return o.Trials
}

func (o Options) samples() int {
	if o.Samples <= 0 {
		return 100
	}
	return o.Samples
}

func (o Options) gewekeThreshold() float64 {
	if o.GewekeThreshold <= 0 {
		return 0.1
	}
	return o.GewekeThreshold
}

func (o Options) maxWalkSteps() int {
	if o.MaxWalkSteps <= 0 {
		return 2000
	}
	return o.MaxWalkSteps
}

func (o Options) biasSamples() int {
	if o.BiasSamples <= 0 {
		return 200000
	}
	return o.BiasSamples
}
