package exp

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/osn"
	"repro/internal/walk"
)

// panel describes one subfigure: an aggregate estimated under an input
// design, comparing the traditional sampler against WALK-ESTIMATE variants.
type panel struct {
	title    string
	attr     string
	design   walk.Design
	variants []namedVariant
	vsCost   bool // x-axis: query cost (true) or sample count (false)
}

type namedVariant struct {
	name string
	v    weVariant
}

// runPanels executes a set of panels over a dataset: for each panel, the
// baseline sampler (unless omitBaseline) plus every WE variant listed.
func runPanels(ds *dataset.Dataset, panels []panel, omitBaseline bool, o Options) ([]Result, error) {
	var out []Result
	for _, p := range panels {
		truth, ok := ds.Truth[p.attr]
		if !ok {
			return nil, fmt.Errorf("exp: dataset %s has no truth for %q", ds.Name, p.attr)
		}
		res := Result{
			Title:  p.title,
			YLabel: "relative-error",
		}
		if p.vsCost {
			res.XLabel = "query-cost"
		} else {
			res.XLabel = "num-samples"
		}
		if !omitBaseline {
			cost, errs, err := errCurves(newBaselineBuilder(ds, p.design, o), p.design, p.attr, truth, o.trials(), o.samples())
			if err != nil {
				return nil, fmt.Errorf("exp: %s baseline: %w", p.title, err)
			}
			if p.vsCost {
				res.Series = append(res.Series, errVsCostSeries(p.design.Name(), cost, errs))
			} else {
				res.Series = append(res.Series, errVsSamplesSeries(p.design.Name(), errs))
			}
		}
		for _, nv := range p.variants {
			cost, errs, err := errCurves(newWEBuilder(ds, p.design, nv.v, o), p.design, p.attr, truth, o.trials(), o.samples())
			if err != nil {
				return nil, fmt.Errorf("exp: %s %s: %w", p.title, nv.name, err)
			}
			if p.vsCost {
				res.Series = append(res.Series, errVsCostSeries(nv.name, cost, errs))
			} else {
				res.Series = append(res.Series, errVsSamplesSeries(nv.name, errs))
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func weOnly() []namedVariant { return []namedVariant{{"WE", weFull}} }

// Fig6 reproduces Figure 6: relative error of AVG estimations vs query cost
// on Google Plus — (a) AVG degree under SRW, (b) AVG self-description length
// under SRW, (c) AVG degree under MHRW, (d) AVG self-description length
// under MHRW; each comparing the traditional walk with WALK-ESTIMATE.
func Fig6(o Options) ([]Result, error) {
	ds, err := dataset.GooglePlus(o.scale(), o.Seed)
	if err != nil {
		return nil, err
	}
	return runPanels(ds, []panel{
		{"Figure 6a: GPlus AVG degree (SRW vs WE)", osn.AttrDegree, walk.SRW{}, weOnly(), true},
		{"Figure 6b: GPlus AVG self-description length (SRW vs WE)", dataset.AttrSelfDesc, walk.SRW{}, weOnly(), true},
		{"Figure 6c: GPlus AVG degree (MHRW vs WE)", osn.AttrDegree, walk.MHRW{}, weOnly(), true},
		{"Figure 6d: GPlus AVG self-description length (MHRW vs WE)", dataset.AttrSelfDesc, walk.MHRW{}, weOnly(), true},
	}, false, o)
}

// Fig7 reproduces Figure 7: relative error vs query cost on Yelp — AVG
// degree, AVG stars, AVG shortest-path length, AVG local clustering
// coefficient (SRW vs WE).
func Fig7(o Options) ([]Result, error) {
	ds, err := dataset.Yelp(o.scale(), o.Seed)
	if err != nil {
		return nil, err
	}
	return runPanels(ds, []panel{
		{"Figure 7a: Yelp AVG degree (SRW vs WE)", osn.AttrDegree, walk.SRW{}, weOnly(), true},
		{"Figure 7b: Yelp AVG stars (SRW vs WE)", dataset.AttrStars, walk.SRW{}, weOnly(), true},
		{"Figure 7c: Yelp AVG shortest path (SRW vs WE)", dataset.AttrAvgPath, walk.SRW{}, weOnly(), true},
		{"Figure 7d: Yelp AVG local clustering coefficient (SRW vs WE)", dataset.AttrClustering, walk.SRW{}, weOnly(), true},
	}, false, o)
}

// Fig8 reproduces Figure 8: relative error vs query cost on Twitter — AVG
// in-degree, AVG out-degree, AVG shortest-path length, AVG local clustering
// coefficient (SRW vs WE).
func Fig8(o Options) ([]Result, error) {
	ds, err := dataset.Twitter(o.scale(), o.Seed)
	if err != nil {
		return nil, err
	}
	return runPanels(ds, []panel{
		{"Figure 8a: Twitter AVG in-degree (SRW vs WE)", dataset.AttrInDegree, walk.SRW{}, weOnly(), true},
		{"Figure 8b: Twitter AVG out-degree (SRW vs WE)", dataset.AttrOutDegree, walk.SRW{}, weOnly(), true},
		{"Figure 8c: Twitter AVG shortest path (SRW vs WE)", dataset.AttrAvgPath, walk.SRW{}, weOnly(), true},
		{"Figure 8d: Twitter AVG local clustering coefficient (SRW vs WE)", dataset.AttrClustering, walk.SRW{}, weOnly(), true},
	}, false, o)
}

// Fig9 reproduces Figure 9, the heuristic ablation on Google Plus: WE-None
// (no heuristics), WE-Crawl (initial crawling only), WE-Weighted (weighted
// sampling only), and full WE, on the four Figure 6 panels.
func Fig9(o Options) ([]Result, error) {
	ds, err := dataset.GooglePlus(o.scale(), o.Seed)
	if err != nil {
		return nil, err
	}
	variants := []namedVariant{
		{"WE-None", weNone},
		{"WE-Crawl", weCrawl},
		{"WE-Weighted", weWeighted},
		{"WE", weFull},
	}
	return runPanels(ds, []panel{
		{"Figure 9a: GPlus AVG degree ablation (SRW input)", osn.AttrDegree, walk.SRW{}, variants, true},
		{"Figure 9b: GPlus AVG self-description length ablation (SRW input)", dataset.AttrSelfDesc, walk.SRW{}, variants, true},
		{"Figure 9c: GPlus AVG degree ablation (MHRW input)", osn.AttrDegree, walk.MHRW{}, variants, true},
		{"Figure 9d: GPlus AVG self-description length ablation (MHRW input)", dataset.AttrSelfDesc, walk.MHRW{}, variants, true},
	}, true, o)
}

// Fig10 reproduces Figure 10: relative error vs number of samples on Google
// Plus, same four panels as Figure 6 — showing WE's samples are of equal or
// better quality, not merely cheaper.
func Fig10(o Options) ([]Result, error) {
	ds, err := dataset.GooglePlus(o.scale(), o.Seed)
	if err != nil {
		return nil, err
	}
	return runPanels(ds, []panel{
		{"Figure 10a: GPlus AVG degree vs #samples (SRW vs WE)", osn.AttrDegree, walk.SRW{}, weOnly(), false},
		{"Figure 10b: GPlus AVG self-description length vs #samples (SRW vs WE)", dataset.AttrSelfDesc, walk.SRW{}, weOnly(), false},
		{"Figure 10c: GPlus AVG degree vs #samples (MHRW vs WE)", osn.AttrDegree, walk.MHRW{}, weOnly(), false},
		{"Figure 10d: GPlus AVG self-description length vs #samples (MHRW vs WE)", dataset.AttrSelfDesc, walk.MHRW{}, weOnly(), false},
	}, false, o)
}

// Fig11 reproduces Figure 11: AVG degree estimation on synthetic
// Barabási–Albert graphs (m=5) of 10k, 15k, 20k nodes (scaled by Options),
// SRW input: (a) relative error vs query cost, (b) vs number of samples.
func Fig11(o Options) ([]Result, error) {
	sizes := []int{
		scaledSize(10000, o.scale()),
		scaledSize(15000, o.scale()),
		scaledSize(20000, o.scale()),
	}
	vsCost := Result{
		Title:  "Figure 11a: synthetic BA AVG degree, relative error vs query cost",
		XLabel: "query-cost", YLabel: "relative-error",
	}
	vsSamples := Result{
		Title:  "Figure 11b: synthetic BA AVG degree, relative error vs num samples",
		XLabel: "num-samples", YLabel: "relative-error",
	}
	for i, n := range sizes {
		ds, err := dataset.SyntheticBA(n, o.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		truth := ds.Truth[osn.AttrDegree]

		cost, errs, err := errCurves(newBaselineBuilder(ds, walk.SRW{}, o), walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
		if err != nil {
			return nil, err
		}
		vsCost.Series = append(vsCost.Series, errVsCostSeries(fmt.Sprintf("SRW-%d", n), cost, errs))
		vsSamples.Series = append(vsSamples.Series, errVsSamplesSeries(fmt.Sprintf("SRW-%d", n), errs))

		cost, errs, err = errCurves(newWEBuilder(ds, walk.SRW{}, weFull, o), walk.SRW{}, osn.AttrDegree, truth, o.trials(), o.samples())
		if err != nil {
			return nil, err
		}
		vsCost.Series = append(vsCost.Series, errVsCostSeries(fmt.Sprintf("WE-%d", n), cost, errs))
		vsSamples.Series = append(vsSamples.Series, errVsSamplesSeries(fmt.Sprintf("WE-%d", n), errs))
	}
	return []Result{vsCost, vsSamples}, nil
}

func scaledSize(full int, scale float64) int {
	n := int(float64(full) * scale)
	if n < 1000 {
		return 1000
	}
	return n
}
