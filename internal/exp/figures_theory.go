package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Fig1 reproduces Figure 1: the minimum and maximum of the exact sampling
// distribution p_t over all nodes, as the walk length t grows from 1 to 80,
// on a Barabási–Albert network with 31 nodes and m = 3 (simple random walk
// from the max-degree node).
func Fig1(o Options) (Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	g := gen.BarabasiAlbert(31, 3, rng)
	m := linalg.NewSRW(g)
	const tmax = 80
	start := 0
	p := make([]float64, g.NumNodes())
	p[start] = 1
	next := make([]float64, g.NumNodes())
	minS := Series{Name: "Min Prob"}
	maxS := Series{Name: "Max Prob"}
	for t := 1; t <= tmax; t++ {
		m.EvolveInto(next, p)
		p, next = next, p
		lo, hi := linalg.MinMax(p)
		minS.Points = append(minS.Points, Point{X: float64(t), Y: lo})
		maxS.Points = append(maxS.Points, Point{X: float64(t), Y: hi})
	}
	return Result{
		Title:  "Figure 1: min/max sampling probability vs walk length (BA n=31, m=3, SRW)",
		XLabel: "walk-length",
		YLabel: "probability",
		Series: []Series{maxS, minS},
	}, nil
}

// caseStudyChain builds the uniform-target chain of the Section 4.2 case
// studies: MHRW on the model graph, lazified (footnote 1) so regular models
// are aperiodic.
func caseStudyChain(g interface {
	NumNodes() int
}, mhrw *linalg.Matrix) (*linalg.Matrix, []float64) {
	lazy := linalg.Lazify(mhrw, 0.01)
	return lazy, linalg.UniformStationary(g.NumNodes())
}

// Fig2 reproduces Figure 2: IDEAL-WALK's expected query cost per sample as a
// function of walk length (1..128), for the five theoretical graph models at
// ~31 nodes (hypercube: 32), uniform target distribution.
func Fig2(o Options) (Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	const tmax = 128
	var series []Series
	for _, model := range gen.AllModels() {
		g, _ := model.Instantiate(31, rng)
		chain, pi := caseStudyChain(g, linalg.NewMHRW(g))
		curve := core.IdealCostCurve(chain, pi, 0, tmax)
		s := Series{Name: model.String()}
		for t := 1; t <= tmax; t++ {
			s.Points = append(s.Points, Point{X: float64(t), Y: curve[t-1]})
		}
		series = append(series, s)
	}
	return Result{
		Title:  "Figure 2: IDEAL-WALK query cost per sample vs walk length (n≈31, uniform target)",
		XLabel: "walk-length",
		YLabel: "query-cost",
		Series: series,
	}, nil
}

// Fig3 reproduces Figure 3: IDEAL-WALK's query-cost saving percentage
// (1 − c_opt/c_RW) as the graph size grows from 8 to 128, for the five
// models, at bias requirement ∆ = 0.001/n.
func Fig3(o Options) (Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	sizes := []int{8, 16, 24, 32, 48, 64, 96, 128}
	var series []Series
	for _, model := range gen.AllModels() {
		s := Series{Name: model.String()}
		prevN := -1
		for _, size := range sizes {
			g, n := model.Instantiate(size, rng)
			if n == prevN {
				continue // hypercube rounds sizes to powers of two
			}
			prevN = n
			chain, pi := caseStudyChain(g, linalg.NewMHRW(g))
			delta := 0.001 / float64(n)
			saving := core.IdealSaving(chain, pi, 0, delta, 60000)
			s.Points = append(s.Points, Point{X: float64(n), Y: 100 * saving})
		}
		series = append(series, s)
	}
	return Result{
		Title:  "Figure 3: IDEAL-WALK query cost saving % vs graph size (uniform target, ∆=0.001/n)",
		XLabel: "num-nodes",
		YLabel: "saving-%",
		Series: series,
	}, nil
}

// Fig5 reproduces Figure 5 (the diameter limitation, Section 6.2): average
// walk steps per sample — forward plus backward for WALK-ESTIMATE — on cycle
// graphs of diameter 5..25 (sizes 11, 21, 31, 41, 51), SRW input. SRW's
// Geweke-monitored cost barely moves while WE's cost explodes with the
// diameter, which is exactly the paper's warning.
func Fig5(o Options) (Result, error) {
	sizes := []int{11, 21, 31, 41, 51}
	srwS := Series{Name: "SRW"}
	weS := Series{Name: "WE"}
	samples := o.samples() / 5
	if samples < 5 {
		samples = 5
	}
	for i, n := range sizes {
		g := gen.Cycle(n)
		diam := n / 2
		net := osn.NewNetwork(g)

		// SRW baseline: steps to Geweke convergence, averaged per sample.
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		c := osn.NewClient(net, osn.CostUniqueNodes, rng)
		res, err := walk.ManyShortRuns(c, walk.SRW{}, 0, samples,
			walk.Geweke{Threshold: o.gewekeThreshold()}, o.maxWalkSteps(), rng)
		if err != nil {
			return Result{}, err
		}
		totalSRW := 0
		for _, st := range res.Steps {
			totalSRW += st
		}
		srwS.Points = append(srwS.Points, Point{X: float64(diam), Y: float64(totalSRW) / float64(samples)})

		// WALK-ESTIMATE with SRW input: forward + backward steps.
		rng2 := rand.New(rand.NewSource(o.Seed + 1000 + int64(i)))
		c2 := osn.NewClient(net, osn.CostUniqueNodes, rng2)
		cfg := core.Config{
			Design:      walk.SRW{},
			Start:       0,
			WalkLength:  2*diam + 1,
			UseCrawl:    true,
			CrawlHops:   2,
			UseWeighted: true,
			MaxAttempts: 200000,
		}
		s, err := core.NewSampler(c2, cfg, rng2)
		if err != nil {
			return Result{}, err
		}
		if _, err := s.SampleN(samples); err != nil {
			return Result{}, fmt.Errorf("exp: Fig5 WE at diameter %d: %w", diam, err)
		}
		weS.Points = append(weS.Points, Point{X: float64(diam), Y: float64(s.TotalSteps()) / float64(samples)})
	}
	return Result{
		Title:  "Figure 5: walk steps per sample vs cycle diameter (SRW vs WALK-ESTIMATE)",
		XLabel: "diameter",
		YLabel: "steps-per-sample",
		Series: []Series{srwS, weS},
	}, nil
}
