package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/osn"
	"repro/internal/stats"
	"repro/internal/walk"
)

// biasDistributions draws a large number of samples with SRW (Geweke) and
// with WALK-ESTIMATE (SRW input) on the paper's small scale-free graph
// (1000 nodes, 6951 edges) and returns the theoretical degree-proportional
// target plus both empirical sampling distributions, all ordered by node id.
func biasDistributions(o Options) (ds *dataset.Dataset, theo, srw, we []float64, err error) {
	ds = dataset.SmallScaleFree(o.Seed)
	g := ds.Graph
	theo, err = linalg.SRWStationary(g)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	n := o.biasSamples()

	rng := rand.New(rand.NewSource(o.Seed + 101))
	c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
	res, err := walk.ManyShortRuns(c, walk.SRW{}, ds.StartNode, n,
		walk.Geweke{Threshold: o.gewekeThreshold()}, o.maxWalkSteps(), rng)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	srw, err = stats.Empirical(res.Nodes, g.NumNodes())
	if err != nil {
		return nil, nil, nil, nil, err
	}

	rng2 := rand.New(rand.NewSource(o.Seed + 202))
	c2 := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng2)
	cfg := core.Config{
		Design:      walk.SRW{},
		Start:       ds.StartNode,
		WalkLength:  ds.WalkLength(),
		UseCrawl:    true,
		CrawlHops:   ds.CrawlHops,
		UseWeighted: true,
	}
	s, err := core.NewSampler(c2, cfg, rng2)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	nodes := make([]int, n)
	for i := range nodes {
		v, err := s.Sample()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		nodes[i] = v
	}
	we, err = stats.Empirical(nodes, g.NumNodes())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return ds, theo, srw, we, nil
}

// Fig12 reproduces Figure 12: the PDF and CDF of the theoretical, SRW, and
// WALK-ESTIMATE sampling distributions over nodes ordered by descending
// degree, on the small scale-free graph.
func Fig12(o Options) ([]Result, error) {
	ds, theo, srw, we, err := biasDistributions(o)
	if err != nil {
		return nil, err
	}
	order := stats.DegreeDescOrder(ds.Graph)
	mk := func(p []float64) ([]Point, []Point, error) {
		r, err := stats.Reorder(p, order)
		if err != nil {
			return nil, nil, err
		}
		cdf := stats.CDF(r)
		pdfPts := make([]Point, len(r))
		cdfPts := make([]Point, len(r))
		for i := range r {
			pdfPts[i] = Point{X: float64(i), Y: r[i]}
			cdfPts[i] = Point{X: float64(i), Y: cdf[i]}
		}
		return pdfPts, cdfPts, nil
	}
	theoPDF, theoCDF, err := mk(theo)
	if err != nil {
		return nil, err
	}
	srwPDF, srwCDF, err := mk(srw)
	if err != nil {
		return nil, err
	}
	wePDF, weCDF, err := mk(we)
	if err != nil {
		return nil, err
	}
	return []Result{
		{
			Title:  "Figure 12a: sampling distribution PDF by node (degree-descending)",
			XLabel: "node-rank", YLabel: "pdf",
			Series: []Series{{Name: "Theo", Points: theoPDF}, {Name: "SRW", Points: srwPDF}, {Name: "WE", Points: wePDF}},
		},
		{
			Title:  "Figure 12b: sampling distribution CDF by node (degree-descending)",
			XLabel: "node-rank", YLabel: "cdf",
			Series: []Series{{Name: "Theo", Points: theoCDF}, {Name: "SRW", Points: srwCDF}, {Name: "WE", Points: weCDF}},
		},
	}, nil
}

// Table1 reproduces Table 1: the ℓ∞ and KL distances between the theoretical
// sampling distribution and the empirical distributions achieved by SRW and
// WALK-ESTIMATE on the small scale-free graph. KL uses light additive
// smoothing (eps=1e-9) so finitely-many samples cannot yield an infinite
// divergence; at the default budgets the smoothing is negligible.
func Table1(o Options) (Result, error) {
	_, theo, srw, we, err := biasDistributions(o)
	if err != nil {
		return Result{}, err
	}
	linfSRW, err := stats.LInf(theo, srw)
	if err != nil {
		return Result{}, err
	}
	linfWE, err := stats.LInf(theo, we)
	if err != nil {
		return Result{}, err
	}
	klSRW, err := stats.KLSmoothed(theo, srw, 1e-9)
	if err != nil {
		return Result{}, err
	}
	klWE, err := stats.KLSmoothed(theo, we, 1e-9)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Title:  "Table 1: distance between theoretical sampling distribution and SRW/WE (x: 0=L-inf, 1=KL)",
		XLabel: "measure",
		YLabel: "distance",
		Series: []Series{
			{Name: "Dist(Theo,SRW)", Points: []Point{{X: 0, Y: linfSRW}, {X: 1, Y: klSRW}}},
			{Name: "Dist(Theo,WE)", Points: []Point{{X: 0, Y: linfWE}, {X: 1, Y: klWE}}},
		},
	}, nil
}

// OneLongRunStudy quantifies the Section 6.1 discussion behind Figure 4:
// one long run amortizes burn-in but produces correlated samples. It reports,
// for the small scale-free graph, the effective sample size (Equation 25) of
// a one-long-run degree series against its nominal size, and the relative
// error both schemes reach on AVG degree at equal query cost.
func OneLongRunStudy(o Options) (Result, error) {
	ds := dataset.SmallScaleFree(o.Seed)
	truth := ds.Truth[osn.AttrDegree]
	samples := o.samples() * 5

	// One long run: burn in once, then take every node.
	rng := rand.New(rand.NewSource(o.Seed + 301))
	c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng)
	res, err := walk.OneLongRun(c, walk.SRW{}, ds.StartNode, 100, samples, 1, rng)
	if err != nil {
		return Result{}, err
	}
	longCost := float64(c.Queries())
	degSeries := make([]float64, res.Len())
	dens := make([]float64, res.Len())
	for i, v := range res.Nodes {
		degSeries[i] = float64(ds.Graph.Degree(v))
		dens[i] = degSeries[i]
	}
	// The ESS penalty (Equation 25) bites for attributes positively
	// autocorrelated along the walk. Degree on a BA graph is
	// disassortative, so we measure ESS on the canonical such attribute:
	// hop distance from a landmark, which changes by at most 1 per step.
	depth := ds.Graph.BFS(ds.StartNode)
	depthSeries := make([]float64, res.Len())
	for i, v := range res.Nodes {
		depthSeries[i] = float64(depth[v])
	}
	ess, err := agg.EffectiveSampleSize(depthSeries, 100)
	if err != nil {
		return Result{}, err
	}
	longEst, err := agg.WeightedRatio(degSeries, dens)
	if err != nil {
		return Result{}, err
	}
	longErr := agg.RelativeError(longEst, truth)

	// Many short runs at (approximately) the same query budget.
	rng2 := rand.New(rand.NewSource(o.Seed + 302))
	c2 := osn.NewClient(ds.Net, osn.CostUniqueNodes, rng2)
	mon := walk.Geweke{Threshold: o.gewekeThreshold()}
	var shortNodes []int
	for c2.Queries() < int64(longCost) {
		r, err := walk.ManyShortRuns(c2, walk.SRW{}, ds.StartNode, 1, mon, o.maxWalkSteps(), rng2)
		if err != nil {
			return Result{}, err
		}
		shortNodes = append(shortNodes, r.Nodes...)
	}
	vals := make([]float64, len(shortNodes))
	dens2 := make([]float64, len(shortNodes))
	for i, v := range shortNodes {
		vals[i] = float64(ds.Graph.Degree(v))
		dens2[i] = vals[i]
	}
	shortEst, err := agg.WeightedRatio(vals, dens2)
	if err != nil {
		return Result{}, err
	}
	shortErr := agg.RelativeError(shortEst, truth)

	return Result{
		Title:  "One long run vs many short runs (Section 6.1; x: 0=nominal samples, 1=effective samples, 2=relative error at equal cost)",
		XLabel: "metric",
		YLabel: "value",
		Series: []Series{
			{Name: "OneLongRun", Points: []Point{
				{X: 0, Y: float64(samples)}, {X: 1, Y: ess}, {X: 2, Y: longErr},
			}},
			{Name: "ManyShortRuns", Points: []Point{
				{X: 0, Y: float64(len(shortNodes))}, {X: 1, Y: float64(len(shortNodes))}, {X: 2, Y: shortErr},
			}},
		},
	}, nil
}

// All runs every experiment at the given options and returns the results in
// paper order. It is the engine behind `weexp all`.
func All(o Options) ([]Result, error) {
	var out []Result
	add := func(rs []Result, err error) error {
		if err != nil {
			return err
		}
		out = append(out, rs...)
		return nil
	}
	one := func(r Result, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	steps := []func() error{
		func() error { r, err := Fig1(o); return one(r, err) },
		func() error { r, err := Fig2(o); return one(r, err) },
		func() error { r, err := Fig3(o); return one(r, err) },
		func() error { r, err := Fig5(o); return one(r, err) },
		func() error { r, err := Fig6(o); return add(r, err) },
		func() error { r, err := Fig7(o); return add(r, err) },
		func() error { r, err := Fig8(o); return add(r, err) },
		func() error { r, err := Fig9(o); return add(r, err) },
		func() error { r, err := Fig10(o); return add(r, err) },
		func() error { r, err := Fig11(o); return add(r, err) },
		func() error { r, err := Fig12(o); return add(r, err) },
		func() error { r, err := Table1(o); return one(r, err) },
		func() error { r, err := OneLongRunStudy(o); return one(r, err) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			return out, fmt.Errorf("exp: step %d: %w", i, err)
		}
	}
	return out, nil
}
