// Package agg turns node samples into AVG aggregate estimates, the paper's
// experimental yardstick (Section 2.4 and 7.1): the relative error of
// sample-based estimates of averages such as AVG degree, AVG star rating, or
// AVG self-description length, against the hidden ground truth.
//
// Samples drawn uniformly (MHRW target, or WE over MHRW) use the arithmetic
// mean; samples drawn proportionally to degree (SRW target, or WE over SRW)
// use the importance-weighted ratio estimator, which for the degree
// attribute reduces to the harmonic mean the paper mentions.
package agg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/osn"
	"repro/internal/walk"
)

// Mean estimates a population mean from uniform samples: the arithmetic
// mean. It errors on empty input.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("agg: no samples")
	}
	return mathx.Mean(values), nil
}

// WeightedRatio estimates a population mean from samples drawn with
// probability proportional to the given (unnormalized) densities:
// Σ(x_i/w_i) / Σ(1/w_i), the Hájek/ratio estimator. For degree-proportional
// samples pass w_i = degree(v_i); estimating AVG degree then reduces to the
// harmonic mean of the sampled degrees. Densities must be positive.
func WeightedRatio(values, densities []float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("agg: no samples")
	}
	if len(values) != len(densities) {
		return 0, fmt.Errorf("agg: %d values vs %d densities", len(values), len(densities))
	}
	var num, den mathx.KahanSum
	for i, x := range values {
		w := densities[i]
		if w <= 0 {
			return 0, fmt.Errorf("agg: non-positive density %v at sample %d", w, i)
		}
		num.Add(x / w)
		den.Add(1 / w)
	}
	d := den.Sum()
	if d == 0 {
		return 0, errors.New("agg: degenerate density normalizer")
	}
	return num.Sum() / d, nil
}

// EstimateMean estimates the population AVG of an attribute from sampled
// nodes, choosing the right estimator for the design's target distribution:
// arithmetic mean for uniform targets (MHRW), importance-weighted ratio for
// degree-proportional targets (SRW). Attribute reads go through the client
// and are charged per the usual rules.
func EstimateMean(c *osn.Client, d walk.Design, attr string, nodes []int) (float64, error) {
	if len(nodes) == 0 {
		return 0, errors.New("agg: no samples")
	}
	values := make([]float64, len(nodes))
	for i, v := range nodes {
		x, err := c.Attr(attr, v)
		if err != nil {
			return 0, err
		}
		values[i] = x
	}
	switch d.(type) {
	case walk.MHRW:
		return Mean(values)
	default:
		densities := make([]float64, len(nodes))
		for i, v := range nodes {
			densities[i] = d.TargetWeight(c, v)
		}
		return WeightedRatio(values, densities)
	}
}

// RelativeError is the paper's error measure |x̃ − x| / x for a true value x.
// A zero truth with nonzero estimate yields +Inf.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// Autocorrelation returns the lag-k sample autocorrelation ρ_k of a series.
// It errors when the series is shorter than lag+2 or has zero variance.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if lag < 0 {
		return 0, fmt.Errorf("agg: negative lag %d", lag)
	}
	if n < lag+2 {
		return 0, fmt.Errorf("agg: series length %d too short for lag %d", n, lag)
	}
	mean := mathx.Mean(xs)
	var num, den mathx.KahanSum
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den.Add(d * d)
	}
	if den.Sum() == 0 {
		return 0, errors.New("agg: zero-variance series")
	}
	for i := 0; i+lag < n; i++ {
		num.Add((xs[i] - mean) * (xs[i+lag] - mean))
	}
	return num.Sum() / den.Sum(), nil
}

// EffectiveSampleSize implements Equation 25: M = h / (1 + 2·Σ_k ρ_k) for a
// series of h correlated draws (e.g. the attribute values along one long
// run). The sum is truncated at the first non-positive autocorrelation
// (Geyer's initial positive-sequence rule) and capped at maxLag. The result
// is clamped to [1, h].
func EffectiveSampleSize(xs []float64, maxLag int) (float64, error) {
	h := len(xs)
	if h < 2 {
		return 0, errors.New("agg: need at least 2 samples")
	}
	if maxLag <= 0 || maxLag >= h-1 {
		maxLag = h - 2
	}
	sum := 0.0
	for k := 1; k <= maxLag; k++ {
		rho, err := Autocorrelation(xs, k)
		if err != nil {
			return 0, err
		}
		if rho <= 0 {
			break
		}
		sum += rho
	}
	m := float64(h) / (1 + 2*sum)
	return mathx.Clamp(m, 1, float64(h)), nil
}
