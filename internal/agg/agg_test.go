package agg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/osn"
	"repro/internal/walk"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 6})
	if err != nil || got != 3 {
		t.Fatalf("Mean = %v, %v", got, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestWeightedRatioIsHarmonicMeanForDegree(t *testing.T) {
	// For AVG degree from degree-proportional samples, the ratio estimator
	// equals the harmonic mean of the sampled degrees.
	degrees := []float64{2, 4, 8, 8}
	got, err := WeightedRatio(degrees, degrees)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / (1.0/2 + 1.0/4 + 1.0/8 + 1.0/8)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio = %v, harmonic mean = %v", got, want)
	}
}

func TestWeightedRatioErrors(t *testing.T) {
	if _, err := WeightedRatio(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := WeightedRatio([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedRatio([]float64{1}, []float64{0}); err == nil {
		t.Error("zero density should error")
	}
}

func TestWeightedRatioUnbiasedOnStationarySamples(t *testing.T) {
	// Draw nodes exactly from the SRW stationary distribution and check the
	// ratio estimator recovers the true AVG degree.
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbert(200, 3, rng)
	pi, _ := linalg.SRWStationary(g)
	cum := make([]float64, len(pi))
	acc := 0.0
	for i, p := range pi {
		acc += p
		cum[i] = acc
	}
	sample := func() int {
		r := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	const n = 20000
	vals := make([]float64, n)
	dens := make([]float64, n)
	for i := 0; i < n; i++ {
		v := sample()
		vals[i] = float64(g.Degree(v))
		dens[i] = float64(g.Degree(v))
	}
	got, err := WeightedRatio(vals, dens)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.AvgDegree()
	if RelativeError(got, truth) > 0.03 {
		t.Fatalf("ratio estimate %v vs truth %v", got, truth)
	}
	// The naive arithmetic mean over degree-biased samples overestimates.
	naive, _ := Mean(vals)
	if naive <= truth {
		t.Fatalf("biased mean %v should exceed truth %v", naive, truth)
	}
}

func TestEstimateMeanDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbert(50, 3, rng)
	net := osn.NewNetwork(g)
	c := osn.NewClient(net, osn.CostUniqueNodes, rng)
	nodes := []int{0, 1, 2, 3, 4}
	// MHRW: arithmetic mean of degrees of the given nodes.
	got, err := EstimateMean(c, walk.MHRW{}, osn.AttrDegree, nodes)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range nodes {
		want += float64(g.Degree(v))
	}
	want /= float64(len(nodes))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MHRW estimate = %v, want %v", got, want)
	}
	// SRW: harmonic-style ratio.
	gotSRW, err := EstimateMean(c, walk.SRW{}, osn.AttrDegree, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if gotSRW >= got {
		t.Fatalf("ratio estimate %v should be below arithmetic %v on degree", gotSRW, got)
	}
	if _, err := EstimateMean(c, walk.SRW{}, osn.AttrDegree, nil); err == nil {
		t.Fatal("no samples should error")
	}
	if _, err := EstimateMean(c, walk.SRW{}, "missing", nodes); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(9, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 error should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("x̃>0, x=0 should be +Inf")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series: ρ1 = −1 (up to the biased-normalizer factor).
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	r0, err := Autocorrelation(xs, 0)
	if err != nil || math.Abs(r0-1) > 1e-12 {
		t.Fatalf("ρ0 = %v, %v", r0, err)
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 >= 0 {
		t.Fatalf("alternating ρ1 = %v, want negative", r1)
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err == nil {
		t.Error("short series should error")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3, 3}, 1); err == nil {
		t.Error("constant series should error")
	}
	if _, err := Autocorrelation(xs, -1); err == nil {
		t.Error("negative lag should error")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// i.i.d. noise: ESS ~ h.
	iid := make([]float64, 2000)
	for i := range iid {
		iid[i] = rng.NormFloat64()
	}
	essIID, err := EffectiveSampleSize(iid, 50)
	if err != nil {
		t.Fatal(err)
	}
	if essIID < 1000 {
		t.Fatalf("iid ESS = %v, want close to 2000", essIID)
	}
	// AR(1) with strong correlation: ESS much smaller.
	ar := make([]float64, 2000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + rng.NormFloat64()
	}
	essAR, err := EffectiveSampleSize(ar, 200)
	if err != nil {
		t.Fatal(err)
	}
	if essAR >= essIID/4 {
		t.Fatalf("correlated ESS = %v should be far below iid %v", essAR, essIID)
	}
	if essAR < 1 {
		t.Fatal("ESS clamped at 1")
	}
	if _, err := EffectiveSampleSize([]float64{1}, 10); err == nil {
		t.Error("single sample should error")
	}
}
