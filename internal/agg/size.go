package agg

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
)

// EstimateNumNodes implements the collision-based network-size estimator of
// Katzir, Liberty and Somekh (WWW 2011) — the technique the paper cites
// ([20]) for learning global quantities from degree-biased samples. Given
// node ids and degrees of samples drawn from the SRW stationary distribution
// (π ∝ degree),
//
//	n̂ = Ψ₁·Ψ₋₁ / (2·C)
//
// where Ψ₁ = Σ dᵢ, Ψ₋₁ = Σ 1/dᵢ, and C is the number of sample pairs that
// hit the same node. It errors when no collisions occurred (sample too small
// relative to the graph: as a rule of thumb you need Ω(√n) samples).
func EstimateNumNodes(nodes []int, degrees []float64) (float64, error) {
	r := len(nodes)
	if r != len(degrees) {
		return 0, fmt.Errorf("agg: %d nodes vs %d degrees", r, len(degrees))
	}
	if r < 2 {
		return 0, errors.New("agg: need at least 2 samples")
	}
	var psi1, psiM1 mathx.KahanSum
	counts := make(map[int]int, r)
	for i, v := range nodes {
		d := degrees[i]
		if d <= 0 {
			return 0, fmt.Errorf("agg: non-positive degree %v at sample %d", d, i)
		}
		psi1.Add(d)
		psiM1.Add(1 / d)
		counts[v]++
	}
	collisions := 0
	for _, c := range counts {
		collisions += c * (c - 1) / 2
	}
	if collisions == 0 {
		return 0, errors.New("agg: no sample collisions; draw more samples (need Ω(√n))")
	}
	return psi1.Sum() * psiM1.Sum() / (2 * float64(collisions)), nil
}

// EstimateNumEdges estimates |E| from the same degree-biased sample:
// since E_π[1/d] = n/(2|E|), we have |Ê| = n̂·R/(2·Ψ₋₁) with n̂ from
// EstimateNumNodes (or a known node count, if available).
func EstimateNumEdges(nodes []int, degrees []float64) (float64, error) {
	n, err := EstimateNumNodes(nodes, degrees)
	if err != nil {
		return 0, err
	}
	return EstimateNumEdgesWithN(n, degrees)
}

// EstimateNumEdgesWithN estimates |E| given a node-count estimate (or exact
// count) and the degrees of degree-biased samples.
func EstimateNumEdgesWithN(n float64, degrees []float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("agg: non-positive node count %v", n)
	}
	if len(degrees) == 0 {
		return 0, errors.New("agg: no samples")
	}
	var psiM1 mathx.KahanSum
	for i, d := range degrees {
		if d <= 0 {
			return 0, fmt.Errorf("agg: non-positive degree %v at sample %d", d, i)
		}
		psiM1.Add(1 / d)
	}
	return n * float64(len(degrees)) / (2 * psiM1.Sum()), nil
}
