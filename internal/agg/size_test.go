package agg

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
)

// stationarySampler draws exact SRW-stationary samples via the inverse CDF.
func stationarySampler(pi []float64, rng *rand.Rand) func() int {
	cum := make([]float64, len(pi))
	acc := 0.0
	for i, p := range pi {
		acc += p
		cum[i] = acc
	}
	return func() int {
		r := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}

func TestEstimateNumNodesKatzir(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbert(3000, 4, rng)
	pi, _ := linalg.SRWStationary(g)
	draw := stationarySampler(pi, rng)
	const r = 2500 // >> sqrt(3000)
	nodes := make([]int, r)
	degrees := make([]float64, r)
	for i := 0; i < r; i++ {
		v := draw()
		nodes[i] = v
		degrees[i] = float64(g.Degree(v))
	}
	nHat, err := EstimateNumNodes(nodes, degrees)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.NumNodes())
	if RelativeError(nHat, truth) > 0.35 {
		t.Fatalf("n̂ = %v, truth %v", nHat, truth)
	}
	eHat, err := EstimateNumEdges(nodes, degrees)
	if err != nil {
		t.Fatal(err)
	}
	if RelativeError(eHat, float64(g.NumEdges())) > 0.4 {
		t.Fatalf("|Ê| = %v, truth %v", eHat, g.NumEdges())
	}
	// With the exact node count, the edge estimate tightens.
	eHat2, err := EstimateNumEdgesWithN(truth, degrees)
	if err != nil {
		t.Fatal(err)
	}
	if RelativeError(eHat2, float64(g.NumEdges())) > 0.1 {
		t.Fatalf("|Ê| with exact n = %v, truth %v", eHat2, g.NumEdges())
	}
}

func TestEstimateNumNodesErrors(t *testing.T) {
	if _, err := EstimateNumNodes([]int{1}, []float64{2}); err == nil {
		t.Error("too few samples should error")
	}
	if _, err := EstimateNumNodes([]int{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := EstimateNumNodes([]int{1, 2}, []float64{2, 0}); err == nil {
		t.Error("zero degree should error")
	}
	// Distinct nodes, no collisions.
	if _, err := EstimateNumNodes([]int{1, 2, 3}, []float64{2, 2, 2}); err == nil {
		t.Error("no collisions should error")
	}
}

func TestEstimateNumEdgesWithNErrors(t *testing.T) {
	if _, err := EstimateNumEdgesWithN(0, []float64{1}); err == nil {
		t.Error("zero n should error")
	}
	if _, err := EstimateNumEdgesWithN(10, nil); err == nil {
		t.Error("no samples should error")
	}
	if _, err := EstimateNumEdgesWithN(10, []float64{-1}); err == nil {
		t.Error("negative degree should error")
	}
}

func TestSizeEstimationWithWESamples(t *testing.T) {
	// End-to-end: the size estimators work on WALK-ESTIMATE output too,
	// since WE(SRW) delivers the same degree-proportional distribution.
	// (Statistical check only at loose tolerance: WE samples carry
	// estimation noise.)
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbert(400, 3, rng)
	pi, _ := linalg.SRWStationary(g)
	draw := stationarySampler(pi, rng)
	const r = 900
	nodes := make([]int, r)
	degrees := make([]float64, r)
	for i := 0; i < r; i++ {
		v := draw()
		nodes[i] = v
		degrees[i] = float64(g.Degree(v))
	}
	nHat, err := EstimateNumNodes(nodes, degrees)
	if err != nil {
		t.Fatal(err)
	}
	if nHat < 100 || nHat > 1600 {
		t.Fatalf("n̂ = %v wildly off truth 400", nHat)
	}
}
