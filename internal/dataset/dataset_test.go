package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/osn"
)

func TestGooglePlusSurrogate(t *testing.T) {
	ds, err := GooglePlus(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if !g.IsConnected() {
		t.Fatal("surrogate must be connected")
	}
	// Density shape: average degree far above the m of sparse models.
	if g.AvgDegree() < 10 {
		t.Fatalf("GPlus avg degree = %v, too sparse", g.AvgDegree())
	}
	if ds.DiameterUB != 7 || ds.CrawlHops != 1 {
		t.Fatalf("paper settings: D̄=%d h=%d", ds.DiameterUB, ds.CrawlHops)
	}
	if ds.WalkLength() != 15 {
		t.Fatalf("walk length = %d, want 15", ds.WalkLength())
	}
	// Self-description attribute present, positive truth.
	if ds.Truth[AttrSelfDesc] <= 0 {
		t.Fatal("selfdesc truth must be positive")
	}
	if ds.Truth[osn.AttrDegree] != g.AvgDegree() {
		t.Fatal("degree truth mismatch")
	}
	// Start node is the max-degree node.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) > g.Degree(ds.StartNode) {
			t.Fatal("start node is not max-degree")
		}
	}
}

func TestGooglePlusFullScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale surrogate in -short mode")
	}
	ds, err := GooglePlus(1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if g.NumNodes() != 16405 {
		t.Fatalf("nodes = %d, want 16405", g.NumNodes())
	}
	// Paper: ~4.5M connections, avg degree 560.44. BA gives 2m(n-m)/n ≈ 550.
	if math.Abs(g.AvgDegree()-560) > 30 {
		t.Fatalf("avg degree = %v, want ≈560", g.AvgDegree())
	}
}

func TestYelpSurrogate(t *testing.T) {
	ds, err := Yelp(0.01, 43)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if !g.IsConnected() {
		t.Fatal("Yelp surrogate must be connected")
	}
	// Star ratings live on [1,5].
	c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rand.New(rand.NewSource(1)))
	for v := 0; v < 50; v++ {
		s, err := c.Attr(AttrStars, v)
		if err != nil {
			t.Fatal(err)
		}
		if s < 1 || s > 5 {
			t.Fatalf("stars[%d] = %v", v, s)
		}
	}
	if tr := ds.Truth[AttrStars]; tr < 2.5 || tr > 4.8 {
		t.Fatalf("stars truth = %v", tr)
	}
	// Co-review graphs have substantial clustering.
	if cc := ds.Truth[AttrClustering]; cc < 0.1 {
		t.Fatalf("clustering truth = %v, surrogate should be clustered", cc)
	}
	// Mean path consistent with a small-world graph.
	if ap := ds.Truth[AttrAvgPath]; ap < 1 || ap > 10 {
		t.Fatalf("avgpath truth = %v", ap)
	}
	// Lazy attributes evaluate per node.
	cl, err := c.Attr(AttrClustering, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cl-g.LocalClustering(3)) > 1e-12 {
		t.Fatal("lazy clustering attribute mismatch")
	}
	ap, err := c.Attr(AttrAvgPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ap <= 0 {
		t.Fatal("avgpath attribute must be positive")
	}
}

func TestTwitterSurrogate(t *testing.T) {
	ds, err := Twitter(0.01, 44)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if !g.IsConnected() {
		t.Fatal("Twitter surrogate must be connected")
	}
	c := osn.NewClient(ds.Net, osn.CostUniqueNodes, rand.New(rand.NewSource(2)))
	for v := 0; v < 50; v++ {
		in, err := c.Attr(AttrInDegree, v)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Attr(AttrOutDegree, v)
		if err != nil {
			t.Fatal(err)
		}
		d := float64(g.Degree(v))
		if in < d || out < d {
			t.Fatalf("directed degrees must dominate mutual degree: in=%v out=%v d=%v", in, out, d)
		}
	}
	// Followers are heavier-tailed than followees on average.
	if ds.Truth[AttrInDegree] <= ds.Truth[AttrOutDegree] {
		t.Fatalf("in-degree truth %v should exceed out-degree truth %v",
			ds.Truth[AttrInDegree], ds.Truth[AttrOutDegree])
	}
}

func TestSmallScaleFreeMatchesPaper(t *testing.T) {
	ds := SmallScaleFree(45)
	if ds.Graph.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", ds.Graph.NumNodes())
	}
	if ds.Graph.NumEdges() != 6951 {
		t.Fatalf("edges = %d, want 6951 (paper's exact-bias graph)", ds.Graph.NumEdges())
	}
}

func TestSyntheticBA(t *testing.T) {
	ds, err := SyntheticBA(2000, 46)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes() != 2000 || ds.Graph.NumEdges() != 5*(2000-5) {
		t.Fatalf("n=%d m=%d", ds.Graph.NumNodes(), ds.Graph.NumEdges())
	}
	if _, err := SyntheticBA(3, 1); err == nil {
		t.Fatal("tiny n should error")
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := GooglePlus(0, 1); err == nil {
		t.Error("scale 0 should error")
	}
	if _, err := Yelp(1.5, 1); err == nil {
		t.Error("scale >1 should error")
	}
	if _, err := Twitter(-0.1, 1); err == nil {
		t.Error("negative scale should error")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Yelp(0.01, 99)
	b, _ := Yelp(0.01, 99)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	if a.Truth[AttrStars] != b.Truth[AttrStars] {
		t.Fatal("same seed must give same attributes")
	}
}
