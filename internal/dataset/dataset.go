// Package dataset builds the evaluation datasets of Section 7.1. The paper
// used proprietary crawls of Google Plus, Yelp, and Twitter; those crawls are
// not redistributable, so this package provides synthetic surrogates that
// match the crawls' published statistics (node/edge counts, average degree,
// attribute semantics) and the structural properties the algorithms are
// sensitive to: small diameter, heavy-tailed degrees, clustering, and
// attribute–degree correlation. Every substitution is documented in
// DESIGN.md §4.
//
// All datasets are deterministic under a seed, and accept a scale factor in
// (0,1] so tests and quick benchmarks can use miniatures with the same
// shape.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/osn"
)

// Attribute names shared by the datasets.
const (
	AttrSelfDesc   = "selfdesc"   // Google Plus: self-description word count
	AttrStars      = "stars"      // Yelp: review star rating
	AttrInDegree   = "indegree"   // Twitter: follower count
	AttrOutDegree  = "outdegree"  // Twitter: followee count
	AttrClustering = "clustering" // local clustering coefficient
	AttrAvgPath    = "avgpath"    // mean shortest-path length from the node
)

// Dataset bundles a surrogate network with the metadata experiments need.
type Dataset struct {
	// Name of the surrogate ("GooglePlus", "Yelp", "Twitter", ...).
	Name string
	// Net is the simulated restricted-access network.
	Net *osn.Network
	// Graph is the ground-truth topology (evaluation only).
	Graph *graph.Graph
	// DiameterUB is the conservative diameter estimate D̄; WALK-ESTIMATE's
	// default walk length is 2·D̄+1 (Section 4.3).
	DiameterUB int
	// CrawlHops is the paper's initial-crawling depth for this dataset
	// (h = 1 for Google Plus, 2 elsewhere).
	CrawlHops int
	// StartNode is the canonical walk start (the highest-degree node, i.e.
	// a "popular user" seed).
	StartNode int
	// Aggregates lists the attribute names whose AVG the paper reports for
	// this dataset, in figure order.
	Aggregates []string
	// Truth maps attribute name -> exact (or documented large-sample)
	// ground-truth AVG value.
	Truth map[string]float64
}

func scaled(full int, scale float64, min int) int {
	n := int(math.Round(float64(full) * scale))
	if n < min {
		return min
	}
	return n
}

func maxDegreeNode(g *graph.Graph) int {
	best, bestD := 0, -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > bestD {
			best, bestD = v, d
		}
	}
	return best
}

// truthOf computes the exact mean of a vector.
func truthOf(vals []float64) float64 {
	var k mathx.KahanSum
	for _, v := range vals {
		k.Add(v)
	}
	return k.Sum() / float64(len(vals))
}

// GooglePlus builds the Google Plus surrogate. At scale 1 it matches the
// paper's crawl: 16,405 users, ~4.6M edges (average degree ≈ 560), plus the
// self-description word-count attribute whose length correlates with
// popularity. The paper's WE settings for this dataset: D̄ = 7, h = 1.
func GooglePlus(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v outside (0,1]", scale)
	}
	rng := rand.New(rand.NewSource(seed))
	n := scaled(16405, scale, 400)
	m := scaled(280, scale, 8)
	g := gen.BarabasiAlbert(n, m, rng)

	selfdesc := make([]float64, n)
	avgDeg := g.AvgDegree()
	for v := 0; v < n; v++ {
		// Heavy-tailed word count, mildly correlated with popularity:
		// popular users write longer self-descriptions.
		base := math.Exp(rng.NormFloat64()*0.7 + 2.2)
		boost := math.Pow(float64(g.Degree(v))/avgDeg, 0.4)
		selfdesc[v] = math.Round(base * boost)
	}

	net := osn.NewNetwork(g, osn.WithAttribute(AttrSelfDesc, selfdesc))
	ds := &Dataset{
		Name:       "GooglePlus",
		Net:        net,
		Graph:      g,
		DiameterUB: 7, // the paper's setting
		CrawlHops:  1,
		StartNode:  maxDegreeNode(g),
		Aggregates: []string{osn.AttrDegree, AttrSelfDesc},
		Truth: map[string]float64{
			osn.AttrDegree: g.AvgDegree(),
			AttrSelfDesc:   truthOf(selfdesc),
		},
	}
	return ds, nil
}

// Yelp builds the Yelp surrogate: at scale 1, ~120k users and ~950k edges of
// a "reviewed the same business" co-review graph — modeled as a Holme–Kim
// scale-free graph with strong triad formation (co-review cliques), with the
// star-rating attribute and the topological aggregates the paper reports
// (degree, shortest-path length, local clustering coefficient). h = 2.
func Yelp(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v outside (0,1]", scale)
	}
	rng := rand.New(rand.NewSource(seed))
	n := scaled(120000, scale, 500)
	m := 8
	g := gen.HolmeKim(n, m, 0.7, rng)

	stars := make([]float64, n)
	avgDeg := g.AvgDegree()
	for v := 0; v < n; v++ {
		// Ratings cluster near 3.7 with a weak popularity effect.
		s := 3.7 + 0.8*rng.NormFloat64() + 0.15*math.Log1p(float64(g.Degree(v))/avgDeg)
		stars[v] = mathx.Clamp(math.Round(s*2)/2, 1, 5) // half-star scale
	}

	net := osn.NewNetwork(g,
		osn.WithAttribute(AttrStars, stars),
		osn.WithAttrFunc(AttrClustering, func(v int) float64 { return g.LocalClustering(v) }),
		osn.WithAttrFunc(AttrAvgPath, meanDistFunc(g)),
	)
	truthRng := rand.New(rand.NewSource(seed + 1))
	ds := &Dataset{
		Name:       "Yelp",
		Net:        net,
		Graph:      g,
		DiameterUB: g.EstimateDiameter(4, truthRng) + 1,
		CrawlHops:  2,
		StartNode:  maxDegreeNode(g),
		Aggregates: []string{osn.AttrDegree, AttrStars, AttrAvgPath, AttrClustering},
		Truth: map[string]float64{
			osn.AttrDegree: g.AvgDegree(),
			AttrStars:      truthOf(stars),
			// Exact all-pairs is O(n·m); sample sources for the truth at
			// large scale (documented in DESIGN.md — estimator noise here is
			// far below the sampler errors being measured).
			AttrAvgPath:    g.AvgShortestPathSampled(sourcesFor(n), truthRng),
			AttrClustering: clusteringTruth(g, truthRng),
		},
	}
	return ds, nil
}

// Twitter builds the Twitter surrogate: at scale 1, ~80k users whose mutual
// -follow reduction (the paper's §2.1 practice for directed networks) is a
// scale-free graph with ~0.85M mutual edges; the directed follower/followee
// counts survive as node attributes (in-degree = mutual degree + extra
// followers, etc.), so AVG in/out-degree are estimable exactly as in the
// paper's Figure 8. h = 2.
func Twitter(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v outside (0,1]", scale)
	}
	rng := rand.New(rand.NewSource(seed))
	n := scaled(80000, scale, 500)
	m := 11
	g := gen.HolmeKim(n, m, 0.4, rng)

	indeg := make([]float64, n)
	outdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		// Non-mutual follows: heavy-tailed extras on top of the mutual
		// degree; popular accounts attract disproportionately many
		// followers, while followee counts are tamer.
		extraIn := math.Floor(math.Exp(rng.NormFloat64()*1.1) * d * 0.5)
		extraOut := math.Floor(math.Exp(rng.NormFloat64()*0.6) * 3)
		indeg[v] = d + extraIn
		outdeg[v] = d + extraOut
	}

	net := osn.NewNetwork(g,
		osn.WithAttribute(AttrInDegree, indeg),
		osn.WithAttribute(AttrOutDegree, outdeg),
		osn.WithAttrFunc(AttrClustering, func(v int) float64 { return g.LocalClustering(v) }),
		osn.WithAttrFunc(AttrAvgPath, meanDistFunc(g)),
	)
	truthRng := rand.New(rand.NewSource(seed + 1))
	ds := &Dataset{
		Name:       "Twitter",
		Net:        net,
		Graph:      g,
		DiameterUB: g.EstimateDiameter(4, truthRng) + 1,
		CrawlHops:  2,
		StartNode:  maxDegreeNode(g),
		Aggregates: []string{AttrInDegree, AttrOutDegree, AttrAvgPath, AttrClustering},
		Truth: map[string]float64{
			osn.AttrDegree: g.AvgDegree(),
			AttrInDegree:   truthOf(indeg),
			AttrOutDegree:  truthOf(outdeg),
			AttrAvgPath:    g.AvgShortestPathSampled(sourcesFor(n), truthRng),
			AttrClustering: clusteringTruth(g, truthRng),
		},
	}
	return ds, nil
}

// SmallScaleFree is the paper's exact-bias graph (Section 7.2, Figure 12 and
// Table 1): a Barabási–Albert network with 1000 nodes and 6951 edges (m=7).
func SmallScaleFree(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	g := gen.BarabasiAlbert(1000, 7, rng)
	net := osn.NewNetwork(g)
	return &Dataset{
		Name:       "SmallScaleFree",
		Net:        net,
		Graph:      g,
		DiameterUB: g.EstimateDiameter(4, rng) + 1,
		CrawlHops:  2,
		StartNode:  maxDegreeNode(g),
		Aggregates: []string{osn.AttrDegree},
		Truth:      map[string]float64{osn.AttrDegree: g.AvgDegree()},
	}
}

// SyntheticBA is the Figure 11 workload: Barabási–Albert graphs with m = 5
// and 10k–20k nodes.
func SyntheticBA(n int, seed int64) (*Dataset, error) {
	if n < 7 {
		return nil, fmt.Errorf("dataset: SyntheticBA needs n >= 7, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := gen.BarabasiAlbert(n, 5, rng)
	net := osn.NewNetwork(g)
	return &Dataset{
		Name:       fmt.Sprintf("SyntheticBA-%d", n),
		Net:        net,
		Graph:      g,
		DiameterUB: g.EstimateDiameter(4, rng) + 1,
		CrawlHops:  2,
		StartNode:  maxDegreeNode(g),
		Aggregates: []string{osn.AttrDegree},
		Truth:      map[string]float64{osn.AttrDegree: g.AvgDegree()},
	}, nil
}

// WalkLength returns the dataset's default WALK-ESTIMATE walk length,
// 2·D̄+1 (Section 7.1's parameter setting).
func (d *Dataset) WalkLength() int { return 2*d.DiameterUB + 1 }

// meanDistFunc returns a lazy per-node mean-shortest-path attribute: one BFS
// per distinct queried node, memoized by the osn layer.
func meanDistFunc(g *graph.Graph) func(int) float64 {
	return func(v int) float64 {
		dist := g.BFS(v)
		var sum float64
		var cnt int
		for u, d := range dist {
			if u != v && d != graph.Unreachable {
				sum += float64(d)
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
}

// sourcesFor picks how many BFS sources to spend on ground-truth mean-path
// estimation: exact for small graphs, 256 sampled sources for large ones.
func sourcesFor(n int) int {
	if n <= 2000 {
		return n
	}
	return 256
}

// clusteringTruth computes the average local clustering coefficient exactly
// for small graphs and from 20k sampled nodes for large ones.
func clusteringTruth(g *graph.Graph, rng *rand.Rand) float64 {
	if g.NumNodes() <= 20000 {
		return g.AvgClustering()
	}
	return g.AvgClusteringSampled(20000, rng)
}
