// Package fastrand provides the pseudo-random number generator used on the
// sampling hot paths: a splitmix64-seeded xoshiro256++ generator with a
// Lemire-style bounded Intn and a branchless Float64.
//
// math/rand's default source is a 607-word lagged-Fibonacci table whose Seed
// walks the whole table — far too slow for the per-candidate RNG streams of
// the parallel WALK-ESTIMATE pipeline — and its Intn takes a modulo plus a
// rejection loop per draw. xoshiro256++ seeds in four splitmix64 steps,
// generates a word in a handful of xor/rotate ops, and Lemire's
// multiply-shift bound rejects with probability < n/2^64.
//
// Determinism contract: for a fixed seed, the stream of Uint64 values — and
// therefore of Intn, Int63 and Float64 values — is a frozen part of the
// repository's behavior. Parallel sampling derives one Rand per candidate
// from (seed, index) via Mix, so results are reproducible for any worker
// count; tests pin golden streams to detect accidental algorithm changes.
//
// A *Rand is not safe for concurrent use; give each goroutine its own.
package fastrand

import "math/bits"

// RNG is the random-source interface consumed by the walk and core hot
// paths. Both *Rand and math/rand's *Rand satisfy it, so public APIs that
// accept a *rand.Rand keep working while the internal engines run on the
// faster generator.
type RNG interface {
	// Intn returns a uniform int in [0, n). It panics if n <= 0.
	Intn(n int) int
	// Int63 returns a uniform non-negative int64.
	Int63() int64
	// Float64 returns a uniform float64 in [0, 1).
	Float64() float64
}

// Rand is a xoshiro256++ generator. The zero value is invalid (an all-zero
// state is a fixed point); construct with New.
//
// Rand implements math/rand's Source64, so it can also back a *rand.Rand
// when an API demands one.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator whose state is expanded from seed with splitmix64,
// per the xoshiro authors' recommendation: any seed (including 0) yields a
// well-mixed nonzero state, and nearby seeds yield uncorrelated streams.
func New(seed int64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rand) Seed(seed int64) {
	s := uint64(seed)
	r.s0 = splitmix64(&s)
	r.s1 = splitmix64(&s)
	r.s2 = splitmix64(&s)
	r.s3 = splitmix64(&s)
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Uint64 returns the next xoshiro256++ output word.
func (r *Rand) Uint64() uint64 {
	out := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return out
}

// Int63 implements RNG (and math/rand's Source).
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn implements RNG with Lemire's nearly-divisionless bounded sampling:
// the high word of x*n for a uniform 64-bit x is a uniform value in [0, n)
// once the (probability < n/2^64) biased low-word region is rejected. The
// expensive modulo runs only on the first rejection.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("fastrand: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 implements RNG branchlessly: the top 53 bits scaled by 2^-53,
// uniform over the representable grid in [0, 1). (math/rand's Float64 loops
// on the rare 1.0 outcome of an older construction; this form cannot yield
// 1.0 at all.)
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Mix derives a well-spread child seed from (seed, a, b) with a splitmix64
// finalizer, so streams for adjacent indices are independent. It is the
// seed-derivation half of the parallel engine's determinism contract.
func Mix(seed, a, b int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(a+1) + 0xBF58476D1CE4E5B9*uint64(b+2)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
