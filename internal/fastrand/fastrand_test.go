package fastrand

import (
	"math/rand"
	"testing"
)

// TestGoldenStreams pins the per-seed output streams. These values are part
// of the repository's determinism contract: parallel sampling results are
// reproducible across machines and sessions only while these streams hold,
// so any change to the generator must be deliberate and must note in the PR
// that all seed-pinned results shift. The vectors were cross-checked against
// an independent implementation of splitmix64-seeded xoshiro256++.
func TestGoldenStreams(t *testing.T) {
	golden := map[int64][6]uint64{
		0:      {0x53175d61490b23df, 0x61da6f3dc380d507, 0x5c0fdf91ec9a7bfc, 0x02eebf8c3bbe5e1a, 0x7eca04ebaf4a5eea, 0x0543c37757f08d9a},
		1:      {0xcfc5d07f6f03c29b, 0xbf424132963fe08d, 0x19a37d5757aaf520, 0xbf08119f05cd56d6, 0x2f47184b86186fa4, 0x97299fcae7202345},
		-7:     {0x0f36c6e15ccc9fd7, 0x9274d2c9b17cbd4a, 0xbb9969078e1a9521, 0x323c25d8c709b5b0, 0xcf8fa000be429269, 0x15eba321d790727b},
		424242: {0x106c4a970d4b0b96, 0x997c2bb9314cb4bb, 0x9a319e9e230bd2b8, 0xf728b2ef091a9089, 0x6bd7d816cfd8b7c1, 0x626f22540b397147},
	}
	for seed, want := range golden {
		r := New(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("seed %d word %d: got %#016x, want %#016x", seed, i, got, w)
			}
		}
	}

	r := New(99)
	wantInts := []int{1, 7, 4, 0, 6, 5, 9, 7, 6, 8, 3, 4}
	for i, w := range wantInts {
		if got := r.Intn(10); got != w {
			t.Errorf("seed 99 Intn(10) draw %d: got %d, want %d", i, got, w)
		}
	}

	r = New(99)
	wantFloats := []float64{
		0.17368319692601364, 0.79986772259375249, 0.48873866352897544,
		0.043068906174611565, 0.66048218634402223, 0.52222740149793145,
	}
	for i, w := range wantFloats {
		if got := r.Float64(); got != w {
			t.Errorf("seed 99 Float64 draw %d: got %v, want %v", i, got, w)
		}
	}

	if got := Mix(5, 1, 2); got != 3479412698991746961 {
		t.Errorf("Mix(5,1,2) = %d, want 3479412698991746961", got)
	}
	if got := Mix(5, 2, 1); got != 8264013404623376368 {
		t.Errorf("Mix(5,2,1) = %d, want 8264013404623376368 (argument order must matter)", got)
	}
}

// TestSeedDeterminism checks Seed resets the stream and distinct seeds
// diverge.
func TestSeedDeterminism(t *testing.T) {
	r := New(1234)
	first := [8]uint64{}
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(1234)
	for i, w := range first {
		if got := r.Uint64(); got != w {
			t.Fatalf("reseeded stream diverged at word %d: %#x != %#x", i, got, w)
		}
	}
	r.Seed(1235)
	same := true
	for _, w := range first {
		if r.Uint64() != w {
			same = false
		}
	}
	if same {
		t.Error("seeds 1234 and 1235 produced identical streams")
	}
}

// TestIntnUniformity is a chi-squared sanity check on the Lemire bounded
// sampler, over a power-of-two and a non-power-of-two modulus (the latter is
// where a botched rejection threshold would bias low residues). Thresholds
// are the 0.001 upper quantiles, so a correct generator fails with
// probability ~1e-3 per case — and the seeds are fixed, so a pass is a pass.
func TestIntnUniformity(t *testing.T) {
	cases := []struct {
		n      int
		chi999 float64 // chi-squared 0.999 quantile at n-1 dof
	}{
		{8, 24.32},
		{10, 27.88},
		{7, 22.46},
		{100, 148.23},
	}
	const draws = 200000
	for _, tc := range cases {
		r := New(31337 + int64(tc.n))
		counts := make([]int, tc.n)
		for i := 0; i < draws; i++ {
			v := r.Intn(tc.n)
			if v < 0 || v >= tc.n {
				t.Fatalf("Intn(%d) = %d out of range", tc.n, v)
			}
			counts[v]++
		}
		expect := float64(draws) / float64(tc.n)
		chi := 0.0
		for _, c := range counts {
			d := float64(c) - expect
			chi += d * d / expect
		}
		if chi > tc.chi999 {
			t.Errorf("Intn(%d): chi-squared %.2f exceeds 0.999 quantile %.2f", tc.n, chi, tc.chi999)
		}
	}
}

// TestFloat64Range checks Float64 stays in [0,1) and fills both halves.
func TestFloat64Range(t *testing.T) {
	r := New(5)
	low, high := 0, 0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		if f < 0.5 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("Float64 never hit one half: low=%d high=%d", low, high)
	}
}

// TestIntnPanics pins the contract shared with math/rand.
func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestRNGInterface checks both generators satisfy the hot-path interface —
// public APIs keep accepting *rand.Rand while internals run on *Rand.
func TestRNGInterface(t *testing.T) {
	var _ RNG = New(1)
	var _ RNG = rand.New(rand.NewSource(1))
	// *Rand is also a math/rand Source64, so it can back a *rand.Rand.
	var _ rand.Source64 = New(1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkStdRandIntn(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

func BenchmarkSeed(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Seed(int64(i))
	}
}
