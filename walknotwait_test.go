package walknotwait_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	wnw "repro"
)

func TestPublicAPISamplingPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := wnw.NewBarabasiAlbert(300, 4, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)

	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  2*g.Diameter() + 1,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 40 {
		t.Fatalf("samples = %d", res.Len())
	}
	est, err := wnw.EstimateMean(c, wnw.SimpleRandomWalk(), wnw.AttrDegree, res.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := wnw.RelativeError(est, g.AvgDegree()); relErr > 1.0 {
		t.Fatalf("AVG degree estimate %v vs truth %v (relerr %v)", est, g.AvgDegree(), relErr)
	}
	if c.Queries() <= 0 {
		t.Fatal("queries should be charged")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := wnw.NewHolmeKim(200, 3, 0.5, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	res, err := wnw.ManyShortRuns(c, wnw.MetropolisHastings(), 0, 10, wnw.Geweke{}, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("samples = %d", res.Len())
	}
	long, err := wnw.OneLongRun(c, wnw.SimpleRandomWalk(), 0, 50, 20, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, long.Len())
	for i, v := range long.Nodes {
		vals[i] = float64(g.Degree(v))
	}
	if _, err := wnw.EffectiveSampleSize(vals, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.Autocorrelation(vals, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := wnw.NewCycle(12)
	m := wnw.NewSRWMatrix(g)
	pi, err := wnw.SRWStationary(g)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := wnw.SpectralGap(wnw.Lazify(m, 0.5), pi, 10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * (1 - math.Cos(2*math.Pi/12))
	if math.Abs(gap-want) > 1e-6 {
		t.Fatalf("gap = %v, want %v", gap, want)
	}
	u := wnw.UniformStationary(12)
	if _, err := wnw.LInfDistance(pi, u); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.TotalVariation(pi, u); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.KLDivergence(u, pi); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.EmpiricalDistribution([]int{0, 1, 1}, 12); err != nil {
		t.Fatal(err)
	}
	th := wnw.Theorem1{Gamma: 1, Delta: 0.01, DMax: 10, Lambda: 0.3}
	tOpt, err := th.TOpt()
	if err != nil || tOpt <= 0 {
		t.Fatalf("TOpt = %v, %v", tOpt, err)
	}
}

func TestPublicAPIRestrictions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := wnw.NewStar(50)
	net := wnw.NewNetwork(g, wnw.WithRestriction(wnw.RandomK{K: 10}))
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	if got := len(c.Neighbors(0)); got != 10 {
		t.Fatalf("restricted neighbors = %d", got)
	}
	if est, err := wnw.EstimateDegreeMarkRecapture(c, 0, 100); err != nil || est < 20 {
		t.Fatalf("mark-recapture = %v, %v", est, err)
	}
}

func TestPublicAPIDatasetsAndExperiments(t *testing.T) {
	ds, err := wnw.GooglePlusDataset(0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.WalkLength() != 15 {
		t.Fatalf("walk length = %d", ds.WalkLength())
	}
	if _, err := wnw.SmallScaleFreeDataset(1).Net.TrueMean(wnw.AttrDegree); err != nil {
		t.Fatal(err)
	}
	r, err := wnw.Fig1(wnw.ExperimentOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("render produced nothing")
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := wnw.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := wnw.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := wnw.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("edges = %d", g2.NumEdges())
	}
	b := wnw.NewGraphBuilder(3)
	b.AddEdge(0, 2)
	if got := b.Build().NumEdges(); got != 1 {
		t.Fatalf("builder edges = %d", got)
	}
}
