package walknotwait_test

// Determinism contract tests for the pluggable access backends (ISSUE 3):
// the sample sequence of WALK-ESTIMATE is a function of (seed, workers)
// only — never of which backend serves the topology — so the in-memory
// graph and the memory-mapped disk CSR must yield bit-identical runs, and
// a RemoteSim wrapper must change wall-clock only, never data.

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	wnw "repro"
)

func backendFixture(t *testing.T) (*wnw.Graph, string) {
	t.Helper()
	g := wnw.NewBarabasiAlbert(600, 3, rand.New(rand.NewSource(42)))
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := wnw.SaveCSR(path, g, nil); err != nil {
		t.Fatal(err)
	}
	return g, path
}

func sampleOn(t *testing.T, be wnw.Backend, seed int64, count, workers int) wnw.SampleResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := wnw.NewNetworkOn(be)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  9,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var res wnw.SampleResult
	if workers > 1 {
		res, err = s.SampleNParallel(count, workers)
	} else {
		res, err = s.SampleN(count)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sequencesEqual(t *testing.T, name string, a, b wnw.SampleResult) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: %d vs %d samples", name, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("%s: sample %d diverges: %d vs %d", name, i, a.Nodes[i], b.Nodes[i])
		}
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("%s: step count %d diverges: %d vs %d", name, i, a.Steps[i], b.Steps[i])
		}
	}
}

func TestMemAndDiskBackendsSampleIdentically(t *testing.T) {
	g, path := backendFixture(t)
	disk, m, err := wnw.OpenDiskBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, workers := range []int{1, 4} {
		mem := sampleOn(t, wnw.NewMemBackend(g), 7, 20, workers)
		dsk := sampleOn(t, disk, 7, 20, workers)
		sequencesEqual(t, "mem vs disk", mem, dsk)
		if len(mem.Nodes) != 20 {
			t.Fatalf("drew %d samples", len(mem.Nodes))
		}
	}
}

func TestSampleNParallelDeterministicPerSeedWorkers(t *testing.T) {
	g, _ := backendFixture(t)
	a := sampleOn(t, wnw.NewMemBackend(g), 11, 16, 4)
	b := sampleOn(t, wnw.NewMemBackend(g), 11, 16, 4)
	sequencesEqual(t, "repeat run", a, b)
}

func TestRemoteSimChangesTimingNotData(t *testing.T) {
	g, _ := backendFixture(t)
	plain := sampleOn(t, wnw.NewMemBackend(g), 13, 8, 4)
	sim := sampleOn(t, wnw.NewRemoteSim(wnw.NewMemBackend(g), 200*time.Microsecond, 100*time.Microsecond, 0), 13, 8, 4)
	sequencesEqual(t, "mem vs sim", plain, sim)
}
