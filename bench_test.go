package walknotwait_test

// One benchmark per paper table/figure (regenerating its data series at a
// reduced but shape-preserving budget), plus micro-benchmarks for the
// sampling primitives and an ablation bench for the WALK-ESTIMATE variants.
// The weexp CLI runs the same experiments at full budgets.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	wnw "repro"
)

// benchOptions are the reduced budgets used by the figure benches.
func benchOptions(seed int64) wnw.ExperimentOptions {
	return wnw.ExperimentOptions{
		Seed:        seed,
		Scale:       0.05,
		Trials:      2,
		Samples:     25,
		BiasSamples: 5000,
	}
}

func renderAll(b *testing.B, rs []wnw.ExperimentResult, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rs {
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.Fig1(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.Fig2(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.Fig3(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.Fig5(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig6(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig7(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig8(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig9(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig10(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkFig11(b *testing.B) {
	opts := benchOptions(1)
	opts.Scale = 0.1 // sizes floor at 1000 nodes anyway
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		rs, err := wnw.Fig11(opts)
		renderAll(b, rs, err)
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := wnw.Fig12(benchOptions(int64(i)))
		renderAll(b, rs, err)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.Table1(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

// BenchmarkOneLongRun covers the Figure 4 / Section 6.1 discussion: the
// effective-sample-size study of the one-long-run scheme.
func BenchmarkOneLongRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := wnw.OneLongRunStudy(benchOptions(int64(i)))
		renderAll(b, []wnw.ExperimentResult{r}, err)
	}
}

// --- micro-benchmarks -------------------------------------------------

func benchGraphAndClient(b *testing.B, n, m int) (*wnw.Graph, *wnw.Client, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	g := wnw.NewBarabasiAlbert(n, m, rng)
	net := wnw.NewNetwork(g)
	return g, wnw.NewClient(net, wnw.CostUniqueNodes, rng), rng
}

func BenchmarkSRWStep(b *testing.B) {
	_, c, rng := benchGraphAndClient(b, 10000, 5)
	d := wnw.SimpleRandomWalk()
	u := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = d.Step(c, u, rng)
	}
}

func BenchmarkMHRWStep(b *testing.B) {
	_, c, rng := benchGraphAndClient(b, 10000, 5)
	d := wnw.MetropolisHastings()
	u := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = d.Step(c, u, rng)
	}
}

func BenchmarkBackwardEstimate(b *testing.B) {
	g, c, rng := benchGraphAndClient(b, 5000, 5)
	ct, err := wnw.BuildCrawlTable(c, wnw.SimpleRandomWalk(), 0, 2)
	if err != nil {
		b.Fatal(err)
	}
	est := &wnw.Estimator{Client: c, Design: wnw.SimpleRandomWalk(), Start: 0, Crawl: ct}
	t := 2*g.EstimateDiameter(2, rng) + 1
	v := wnw.WalkPath(c, wnw.SimpleRandomWalk(), 0, t, rng)[t]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateOnce(v, t, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWESample(b *testing.B) {
	g, c, rng := benchGraphAndClient(b, 5000, 5)
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  2*g.EstimateDiameter(2, rng) + 1,
		UseCrawl:    true,
		CrawlHops:   2,
		UseWeighted: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGewekeSample(b *testing.B) {
	_, c, rng := benchGraphAndClient(b, 5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wnw.ManyShortRuns(c, wnw.SimpleRandomWalk(), 0, 1,
			wnw.Geweke{Threshold: 0.1}, 2000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawlTable(b *testing.B) {
	_, c, rng := benchGraphAndClient(b, 5000, 5)
	_ = rng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wnw.BuildCrawlTable(c, wnw.SimpleRandomWalk(), 0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWEVariants compares the full WALK-ESTIMATE against its
// heuristic ablations (the DESIGN.md design-choice ablation): time per
// accepted sample with neither heuristic, crawl only, weighting only, both.
func BenchmarkAblationWEVariants(b *testing.B) {
	variants := []struct {
		name            string
		crawl, weighted bool
	}{
		{"None", false, false},
		{"Crawl", true, false},
		{"Weighted", false, true},
		{"Full", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			g, c, rng := benchGraphAndClient(b, 5000, 5)
			s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
				Design:      wnw.SimpleRandomWalk(),
				Start:       0,
				WalkLength:  2*g.EstimateDiameter(2, rng) + 1,
				UseCrawl:    v.crawl,
				CrawlHops:   2,
				UseWeighted: v.weighted,
			}, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelWE compares the sequential WALK-ESTIMATE sampler against
// the concurrent engine (SampleNParallel) on a 50k-node Barabási–Albert
// graph, the scale of the paper's synthetic experiments. Each op draws a
// fixed block of samples; queries/sample reports the fleet-wide unique-node
// cost per accepted sample. On multi-core hardware the 8-worker variant is
// expected to run ≥ 2.5× faster than Sequential (scripts/bench.sh records
// the trajectory in BENCH_walkestimate.json).
func BenchmarkParallelWE(b *testing.B) {
	const (
		nodes        = 50000
		edgesPerNode = 5
		samplesPerOp = 24
	)
	g := wnw.NewBarabasiAlbert(nodes, edgesPerNode, rand.New(rand.NewSource(7)))
	net := wnw.NewNetwork(g)
	cfg := wnw.WEConfig{
		Design:         wnw.SimpleRandomWalk(),
		Start:          0,
		WalkLength:     13,
		UseCrawl:       true,
		CrawlHops:      2,
		UseWeighted:    true,
		BackwardReps:   4,
		VarianceBudget: 8,
	}
	newSampler := func(b *testing.B, seed int64) (*wnw.Client, *wnw.WESampler) {
		b.Helper()
		rng := rand.New(rand.NewSource(seed))
		c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
		s, err := wnw.NewWalkEstimate(c, cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		return c, s
	}
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			c, s := newSampler(b, 11)
			// queries/sample is taken from the first op only (a fresh
			// sampler's first block), so the metric is independent of b.N —
			// averaging over all ops would decay with b.N as the shared
			// cache warms and make sub-benchmarks incomparable.
			var firstOpQueries int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 1 {
					_, err = s.SampleN(samplesPerOp)
				} else {
					_, err = s.SampleNParallel(samplesPerOp, workers)
				}
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					firstOpQueries = c.TotalQueries()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(firstOpQueries)/samplesPerOp, "queries/sample")
			b.ReportMetric(float64(workers), "workers")
		}
	}
	b.Run("Sequential", run(1))
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("Parallel-%d", w), run(w))
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.Run("BarabasiAlbert-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wnw.NewBarabasiAlbert(10000, 5, rng)
		}
	})
	b.Run("HolmeKim-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wnw.NewHolmeKim(10000, 5, 0.5, rng)
		}
	})
}
