#!/usr/bin/env bash
# Benchmark job for the pluggable access backends (ISSUE 3): records
# wall-clock per frontier fill at 0/10/50 ms simulated remote latency,
# batched vs per-node, plus the million-node disk-backend run (generation
# time, heap cost of mmap-open vs heap-load, queries/sample) into
# BENCH_backends.json.
#
# The acceptance criteria this record demonstrates:
#   - batched prefetch beats per-node fetch on wall-clock at >= 10 ms
#     simulated latency (by ~the simulated connection fanout);
#   - the disk backend samples a 1M-node generated graph with near-zero
#     heap growth for the edge payload (heap-open-MB << heap-load-MB).
#
# Usage: scripts/bench_backends.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT="BENCH_backends.json"
RAW="$(mktemp)"
ENTRY="$(mktemp)"
trap 'rm -f "$RAW" "$ENTRY"' EXIT

go test -run '^$' -bench 'BenchmarkFrontierFetch' -benchtime "$BENCHTIME" \
  -timeout 30m . | tee "$RAW"

# Vectorized walker-frontier kernel vs the scalar per-candidate loop at
# simulated latency (ISSUE 8): CI asserts batched >= 3x faster at 10 ms.
go test -run '^$' -bench 'BenchmarkBatchedStep' -benchtime "$BENCHTIME" \
  -timeout 30m . | tee -a "$RAW"

go test -run '^$' -bench 'BenchmarkDiskMillionNode' -benchtime 1x \
  -timeout 30m . | tee -a "$RAW"

# Parse `go test -bench` lines into JSON, keeping every "<value> <unit>"
# metric pair (ns/op plus the custom gen-s / heap-*-MB / queries-sample
# metrics). The trailing -N GOMAXPROCS suffix is stripped for stability.
awk -v benchtime="$BENCHTIME" '
  BEGIN { n = 0 }
  /^Benchmark/ {
    name = $1; iters = $2
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iters\": %s", name, iters)
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i+1)
      gsub(/[^A-Za-z0-9]/, "_", unit)
      line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    lines[n++] = line
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
  }
' "$RAW" > "$ENTRY"
python3 scripts/bench_append.py "$OUT" "$ENTRY"
