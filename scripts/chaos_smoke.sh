#!/usr/bin/env bash
# Chaos smoke (ISSUE 6): prove the fault-injection + resilience stack holds
# under load, two ways.
#
#   1. Run the chaos property tests (internal/serve TestChaos*, internal/osn
#      fault/resilient suites) under -race: deterministic schedules, bit-
#      identical absorbed-fault runs, typed mid-job failure, breaker-driven
#      readiness — all with the race detector watching the retry machinery.
#   2. Boot weserve with a seeded fault injector (-faultrate), drive it with
#      an open-loop weload burst, and append the injector/retry/breaker
#      counters as a dated "chaos"-kind entry to BENCH_serve.json (entries
#      accumulate; readers take the last entry of each kind).
#
# The acceptance criteria this record demonstrates:
#   - faults were actually injected (faults > 0 — the run exercised the stack);
#   - every injected fault was absorbed by retries (failures == 0, zero
#     failed jobs) at the modest smoke rate;
#   - the daemon stayed ready and produced non-zero throughput throughout.
#
# Usage: scripts/chaos_smoke.sh [jobs] [rate_jobs_per_sec]   (defaults 12, 20)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-12}"
RATE="${2:-20}"
OUT="BENCH_serve.json"
ADDR="127.0.0.1:17127"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== chaos property tests (-race) =="
go test -race -run 'TestChaos' ./internal/serve/
go test -race -run 'TestFault|TestResilient' ./internal/osn/

echo "== fault-injected daemon under open-loop load =="
go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload

"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

# Simulated remote latency under a 2% seeded fault schedule: plenty of real
# round trips for the injector to bite, all absorbable by the default policy.
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 1ms -jitter 250us \
  -faultrate 0.02 -fault-seed 7 \
  -addr "$ADDR" -runners 2 -worker-budget 4 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

"$WORK/weload" -addr "$ADDR" -wait 15s -jobs "$JOBS" -rate "$RATE" \
  -count 25 -workers 2 -label chaos -out "$WORK/chaos.json"

python3 - "$WORK" "$WORK/entry.json" "$ADDR" <<'EOF'
import json, sys, urllib.request

work, out, addr = sys.argv[1], sys.argv[2], sys.argv[3]
chaos = json.load(open(f"{work}/chaos.json"))

with urllib.request.urlopen(f"http://{addr}/readyz", timeout=5) as r:
    ready = json.load(r)
if not ready.get("ready"):
    raise SystemExit(f"daemon not ready after the chaos burst: {ready}")

be = chaos.get("backend")
if not be:
    raise SystemExit("weload recorded no backend counters (metrics scrape failed?)")
if be["faults"] <= 0:
    raise SystemExit("no faults injected — the smoke exercised nothing")
if be["failures"] != 0:
    raise SystemExit(f"{be['failures']} give-ups at smoke rate (want all absorbed)")
if chaos["errors"] or chaos.get("failure_reasons"):
    raise SystemExit(
        f"job failures under absorbable faults: errors={chaos['errors']} "
        f"reasons={chaos.get('failure_reasons')}")
if chaos["samples_per_sec"] <= 0:
    raise SystemExit("no throughput under injected faults")

record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 1, "jitter_ms": 0.25},
    "fault_rate": 0.02,
    "fault_seed": 7,
    "load": chaos,
    "absorption": {
        "faults_injected": be["faults"],
        "retries": be["retries"],
        "retries_absorbed": be["retries_absorbed"],
        "give_ups": be["failures"],
    },
}
json.dump(record, open(out, "w"), indent=2)
print(f"injected {be['faults']} faults, {be['retries']} retries, "
      f"{be['retries_absorbed']} absorbed, 0 give-ups at "
      f"{chaos['samples_per_sec']:.1f} samples/s")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" chaos
