#!/usr/bin/env bash
# Dedup smoke (ISSUE 10): prove the deterministic result cache end to end.
#
#   1. Run the result-cache property tests under -race: digest equivalence /
#      collision-freedom for NormalizeSpec+SpecDigest, repeat submissions
#      served from the cache with frozen engine meters, shed immunity, LRU
#      eviction, journal-rehydrated cache survival across restart, and the
#      coordinator-side fleet repeat path.
#   2. Boot weserve over a 2ms-latency sim backend (result cache on) and run
#      a zipfian repeat mix cold, sequentially: at most one miss per distinct
#      spec, so the observed hit rate must clear the (jobs-distinct)/jobs
#      floor.
#   3. Re-run the identical mix warm: every job must hit, and the daemon's
#      fleet charge meter (walknotwait_queries_charged_total) must not move
#      at all — repeats cost zero walk steps and zero query charges.
#   4. Boot a cache-disabled daemon (-result-cache-bytes=-1) on the same
#      graph, warm its neighbor cache with one pass over the distinct specs,
#      and run the identical mix: every job re-runs live. The cached daemon
#      must clear >= 5x the cache-disabled samples/sec on this mix.
#   5. Append hit rate, charge delta, charges saved, speedup, and the
#      cached-vs-live latency digests as a dated "dedup"-kind entry to
#      BENCH_serve.json, then verify the entry landed dated.
#
# Usage: scripts/dedup_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serve.json"
ADDR="127.0.0.1:17171"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Workload shape: 160 jobs over 12 distinct specs, zipf(1.3) popularity —
# the few-hot-many-cold repeat traffic the cache exists for. Single runner,
# so live re-runs are serialized by the worker budget while cache hits
# bypass the queue entirely (the capacity the cache frees is the measured
# effect, not an artifact of oversized runner pools).
LATENCY="2ms"
COUNT=120
WORKERS=2
DISTINCT=12
JOBS=160
ZIPF=1.3
CONC=8
SEED=500

echo "== result-cache property tests (-race) =="
go test -race -run \
  'TestSpecDigest|TestRepeatSubmission|TestResultCache|TestCachedHit|TestConcurrentRepeats|TestFleetRepeat' \
  ./internal/serve/ ./internal/cluster/

echo "== build =="
go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload
"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

charged() {
  curl -fsS "http://$ADDR/metrics" | awk '$1 == "walknotwait_queries_charged_total" {print $2}'
}

start_daemon() { # extra flags...
  "$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency "$LATENCY" \
    -addr "$ADDR" -runners 1 -worker-budget 4 "$@" >>"$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
}

stop_daemon() {
  kill "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
}

run_mix() { # out.json concurrency
  "$WORK/weload" -addr "$ADDR" -wait 30s -dedup -zipf "$ZIPF" -distinct "$DISTINCT" \
    -jobs "$JOBS" -concurrency "$2" -count "$COUNT" -workers "$WORKERS" \
    -seed "$SEED" -label dedup -out "$1"
}

echo "== cached daemon: cold zipfian mix (sequential), then the same mix warm =="
start_daemon
run_mix "$WORK/cold.json" 1
Q_BEFORE=$(charged)
run_mix "$WORK/warm.json" "$CONC"
Q_AFTER=$(charged)
echo "charge meter across the warm mix: $Q_BEFORE -> $Q_AFTER"
stop_daemon

echo "== cache-disabled daemon: neighbor cache warmed, identical mix =="
start_daemon -result-cache-bytes=-1
"$WORK/weload" -addr "$ADDR" -wait 30s -jobs "$DISTINCT" -concurrency 4 \
  -count "$COUNT" -workers "$WORKERS" -seed "$SEED" >/dev/null
run_mix "$WORK/nocache.json" "$CONC"
stop_daemon

python3 - "$WORK" "$WORK/entry.json" "$Q_BEFORE" "$Q_AFTER" <<'EOF'
import json, sys

work, out = sys.argv[1], sys.argv[2]
q_before, q_after = int(float(sys.argv[3])), int(float(sys.argv[4]))

cold = json.load(open(f"{work}/cold.json"))
warm = json.load(open(f"{work}/warm.json"))
nocache = json.load(open(f"{work}/nocache.json"))
for name, rec in (("cold", cold), ("warm", warm), ("nocache", nocache)):
    if rec["errors"] or rec["shed"]:
        raise SystemExit(f"{name} run had errors={rec['errors']} shed={rec['shed']}")

# Cold sequential mix: at most one miss per distinct spec, so the hit rate
# must clear the deterministic floor.
dd = cold["dedup"]
floor = dd["predicted_hit_rate_floor"]
if dd["hit_rate"] < floor:
    raise SystemExit(f"cold hit rate {dd['hit_rate']:.3f} < floor {floor:.3f}")

# Warm mix: every job hits, and hits are free — the fleet charge meter must
# not have moved at all.
wd = warm["dedup"]
if wd["misses"] != 0:
    raise SystemExit(f"warm mix missed {wd['misses']} times, want 0")
if q_after != q_before:
    raise SystemExit(f"cache hits charged queries: {q_before} -> {q_after}")
if wd["queries_saved"] <= 0:
    raise SystemExit(f"queries_saved = {wd['queries_saved']}, want > 0")

# Cache-disabled daemon on the identical mix: no hits, and the cached daemon
# clears the 5x throughput bar.
nd = nocache["dedup"]
if nd["hits"] != 0:
    raise SystemExit(f"cache-disabled daemon reported {nd['hits']} hits")
speedup = warm["samples_per_sec"] / nocache["samples_per_sec"]
if speedup < 5:
    raise SystemExit(
        f"dedup speedup {speedup:.2f}x < 5x "
        f"({warm['samples_per_sec']:.0f} vs {nocache['samples_per_sec']:.0f} samples/s)")

record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 2},
    "mix": {"jobs": cold["jobs"], "distinct_specs": dd["distinct_specs"],
            "zipf_s": dd["zipf_s"], "count_per_job": cold["count_per_job"]},
    "cold_hit_rate": dd["hit_rate"],
    "hit_rate_floor": floor,
    "warm_hit_rate": wd["hit_rate"],
    "warm_charge_delta": q_after - q_before,
    "queries_saved": wd["queries_saved"],
    "samples_per_sec_cached": warm["samples_per_sec"],
    "samples_per_sec_nocache": nocache["samples_per_sec"],
    "speedup_x": speedup,
    "cached_latency_ms": wd["cached_latency_ms"],
    "live_latency_ms": nd["live_latency_ms"],
}
json.dump(record, open(out, "w"), indent=2)
print(f"dedup mix: cold hit rate {dd['hit_rate']:.3f} (floor {floor:.3f}), "
      f"warm all-hit at zero charge delta, "
      f"{speedup:.1f}x samples/s vs cache-disabled "
      f"({warm['samples_per_sec']:.0f} vs {nocache['samples_per_sec']:.0f})")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" dedup

python3 - "$OUT" <<'EOF'
import json, sys
entries = json.load(open(sys.argv[1]))["entries"]
last = [e for e in entries if e.get("kind") == "dedup"][-1]
if not last.get("date"):
    raise SystemExit("dedup entry has no date")
print(f"dedup entry recorded, dated {last['date']}")
EOF
