#!/usr/bin/env bash
# Cluster smoke (ISSUE 9): prove the coordinator/worker fleet end to end.
#
#   1. Run the cluster + partition property tests under -race: 3-worker
#      sample/charge parity with a single process, worker-loss hand-off with
#      a bit-identical client stream, verbatim shed passthrough, and the
#      partitioned-cache ownership/fallback invariants.
#   2. Boot a coordinator with one worker over a 10ms-latency sim backend,
#      drive it with open-loop weload, and record baseline samples/sec and
#      the fleet-wide unique-node charge.
#   3. Boot a fresh coordinator with three workers over the same graph, run
#      the identical marker + weload job set, and check:
#        - samples/sec >= 1.8x the single-worker baseline (the scaling the
#          fleet exists for, at the paper's high-latency operating point);
#        - fleet_queries (sum of per-worker owned-unique meters) is exactly
#          equal to the single-worker run's — partitioned charging is exact;
#   4. Boot one more fresh 3-worker fleet (cold caches, so the marker job is
#      slow enough to interrupt), kill -9 the worker running the marker
#      mid-stream, and check the client-visible stream is identical on
#      (i, node, steps) to the uninterrupted single-worker run — hand-off
#      and cross-fleet determinism in one assertion.
#      The scaling factor, parity verdict, and hand-off verdict are appended
#      as a dated "cluster"-kind entry to BENCH_serve.json.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serve.json"
CO_ADDR="127.0.0.1:17141"
W_PORTS=(17142 17143 17144)
WORK="$(mktemp -d)"
PIDS=()
LOAD_PID=""
cleanup() {
  for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
  [ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== cluster + partition property tests (-race) =="
go test -race -run 'TestFleet|TestWorkerLoss|TestShed|TestNoWorkers|TestPartition' \
  ./internal/cluster/ ./internal/osn/

echo "== build =="
go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload
"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

MARKER_SPEC='{"type":"sample","count":40,"seed":4242,"workers":2}'
LATENCY="10ms"

wait_ready() { # addr
  for _ in $(seq 1 600); do
    curl -fsS "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "coordinator at $1 never became ready" >&2
  return 1
}

submit_marker() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$MARKER_SPEC" \
    "http://$CO_ADDR/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

job_field() { # id field
  curl -fsS "http://$CO_ADDR/v1/jobs/$1" | python3 -c "import json,sys; print(json.load(sys.stdin)[\"$2\"])"
}

start_coordinator() { # workers
  "$WORK/weserve" -role coordinator -addr "$CO_ADDR" -workers "$1" \
    -heartbeat-timeout 1s >"$WORK/co$1.log" 2>&1 &
  PIDS+=($!)
}

start_worker() { # port
  "$WORK/weserve" -role worker -in "$WORK/g.csr" -backend sim -latency "$LATENCY" \
    -join "http://$CO_ADDR" -addr "127.0.0.1:$1" -name "w$1" \
    -runners 1 -worker-budget 4 >"$WORK/w$1.log" 2>&1 &
  PIDS+=($!)
  eval "W_PID_$1=$!"
}

run_load() { # out.json
  # Open-loop at a rate well past one worker's capacity, so the single-worker
  # wall clock measures service capacity (queueing), not the submission
  # schedule — otherwise both runs finish with the schedule and scaling
  # measures nothing.
  "$WORK/weload" -addr "$CO_ADDR" -rate 32 -jobs 36 -count 30 -workers 2 \
    -label cluster -out "$1"
}

fleet_queries() {
  curl -fsS "http://$CO_ADDR/v1/cluster" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["fleet_queries"])'
}

stop_all() {
  for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
  for p in "${PIDS[@]}"; do wait "$p" 2>/dev/null || true; done
  PIDS=()
}

echo "== baseline: coordinator + 1 worker at $LATENCY sim latency =="
start_coordinator 1
start_worker "${W_PORTS[0]}"
wait_ready "$CO_ADDR"
REF_ID=$(submit_marker)
curl -fsS --max-time 300 "http://$CO_ADDR/v1/jobs/$REF_ID/stream" >"$WORK/ref.ndjson"
run_load "$WORK/load1.json"
Q1=$(fleet_queries)
echo "baseline fleet_queries=$Q1"
stop_all

echo "== fleet: coordinator + 3 workers, identical job set =="
start_coordinator 3
for port in "${W_PORTS[@]}"; do start_worker "$port"; done
wait_ready "$CO_ADDR"
M1_ID=$(submit_marker)
curl -fsS --max-time 300 "http://$CO_ADDR/v1/jobs/$M1_ID/stream" >"$WORK/fleet_marker.ndjson"
run_load "$WORK/load3.json"
Q3=$(fleet_queries)
echo "fleet fleet_queries=$Q3"
stop_all

echo "== fresh fleet, kill -9 the worker running the marker mid-stream =="
# Cold caches: at 10ms sim latency every cache miss is a real round trip, so
# the marker runs long enough to interrupt deterministically.
start_coordinator 3
for port in "${W_PORTS[@]}"; do start_worker "$port"; done
wait_ready "$CO_ADDR"
M2_ID=$(submit_marker)
curl -fsS --max-time 300 -N "http://$CO_ADDR/v1/jobs/$M2_ID/stream" >"$WORK/post.ndjson" &
LOAD_PID=$!
N=0
for _ in $(seq 1 600); do
  N=$(job_field "$M2_ID" samples || echo 0)
  [ "$N" -ge 10 ] && break
  sleep 0.05
done
if [ "$N" -lt 10 ]; then
  echo "marker job never reached the kill point (samples=$N)" >&2
  exit 1
fi
WIDX=$(job_field "$M2_ID" worker)
WPORT=$(curl -fsS "http://$CO_ADDR/v1/cluster?refresh=0" | python3 -c "
import json, sys
s = json.load(sys.stdin)
addr = s['workers'][$WIDX]['addr']
print(addr.rsplit(':', 1)[1])")
VICTIM=$(eval "echo \$W_PID_$WPORT")
echo "killing worker $WIDX (port $WPORT, pid $VICTIM) at marker samples=$N (of 40)"
kill -9 "$VICTIM"
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=""

STATE=$(job_field "$M2_ID" state)
if [ "$STATE" != "done" ]; then
  echo "marker ended $STATE after worker kill" >&2
  tail -20 "$WORK/co3.log" >&2
  exit 1
fi
ATTEMPTS=$(job_field "$M2_ID" attempts)
curl -fsS "http://$CO_ADDR/metrics" >"$WORK/metrics.txt"

python3 - "$WORK" "$WORK/entry.json" "$Q1" "$Q3" "$ATTEMPTS" <<'EOF'
import json, sys

work, out = sys.argv[1], sys.argv[2]
q1, q3, attempts = int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])

def rows(path):
    seq = []
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if d.get("done"):
            continue
        if "node" in d:
            seq.append((d["i"], d["node"], d["steps"]))
    return seq

def sps(path):
    return json.load(open(path))["samples_per_sec"]

# Scaling: 3 workers must clear 1.8x one worker on the identical job set.
s1, s3 = sps(f"{work}/load1.json"), sps(f"{work}/load3.json")
scale = s3 / s1 if s1 > 0 else 0.0
if scale < 1.8:
    raise SystemExit(f"fleet scaling {scale:.2f}x < 1.8x ({s3:.1f} vs {s1:.1f} samples/s)")

# Charging: the fleet-wide unique-node meter must exactly equal the
# single-worker run's over the identical (marker + weload) job set.
if q3 != q1:
    raise SystemExit(f"fleet charge parity broken: 3 workers {q3}, 1 worker {q1}")

# Determinism + hand-off: the 3-worker marker (uninterrupted) and the
# killed marker (after hand-off) must both match the single-worker marker
# on (i, node, steps) — costs vary with cache warmth and are excluded.
ref = rows(f"{work}/ref.ndjson")
if len(ref) != 40:
    raise SystemExit(f"baseline marker stream has {len(ref)} rows, want 40")
for name in ("fleet_marker", "post"):
    got = rows(f"{work}/{name}.ndjson")
    if got != ref:
        for i, (a, b) in enumerate(zip(ref, got)):
            if a != b:
                raise SystemExit(f"{name}: streams diverge at row {i}: baseline {a} vs {b}")
        raise SystemExit(f"{name}: stream lengths differ: {len(ref)} vs {len(got)}")
post = rows(f"{work}/post.ndjson")
if attempts < 2:
    raise SystemExit(f"marker attempts = {attempts}, want >= 2 after a worker kill")

metrics = {}
for line in open(f"{work}/metrics.txt"):
    if line.startswith("#") or " " not in line:
        continue
    name, val = line.rsplit(" ", 1)
    try:
        metrics[name] = float(val)
    except ValueError:
        pass
handoffs = metrics.get("walknotwait_cluster_handoffs_total", 0)
if handoffs < 1:
    raise SystemExit(f"cluster_handoffs_total = {handoffs}, want >= 1")

load3 = json.load(open(f"{work}/load3.json"))
record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 10},
    "workers": 3,
    "samples_per_sec_1w": s1,
    "samples_per_sec_3w": s3,
    "scaling_x": scale,
    "fleet_queries_1w": q1,
    "fleet_queries_3w": q3,
    "charge_parity": True,
    "handoff_stream_identical": True,
    "handoff_attempts": attempts,
    "handoffs_total": handoffs,
    "placement": load3.get("cluster", {}).get("workers", {}),
}
json.dump(record, open(out, "w"), indent=2)
print(f"3-worker fleet: {scale:.2f}x samples/s ({s3:.1f} vs {s1:.1f}), "
      f"charge parity {q3} == {q1}, "
      f"hand-off stream identical over {len(post)} rows ({attempts} attempts)")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" cluster
