#!/usr/bin/env bash
# Serving-throughput benchmark (ISSUE 4): boots the weserve daemon on a
# generated CSR graph over the simulated remote backend, drives it with two
# identical weload bursts — the first against a cold cache, the second
# against the cache the first burst warmed — and appends both as a dated
# "serve"-kind entry to BENCH_serve.json (entries accumulate; readers take
# the last entry of each kind).
#
# The acceptance criteria this record demonstrates:
#   - the daemon is healthy and produced a non-zero samples/sec;
#   - the warm-cache burst has strictly higher samples/sec than the
#     cold-start burst (the amortization a resident service exists for).
#
# Usage: scripts/bench_serve.sh [jobs] [concurrency]   (defaults 8, 2)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-8}"
CONC="${2:-2}"
OUT="BENCH_serve.json"
ADDR="127.0.0.1:17117"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload

"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

# Simulated remote latency makes cache warmth measurable as wall-clock: the
# cold burst pays a round trip per unique node, the warm burst rides the
# daemon's long-lived shared cache.
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 2ms -jitter 500us \
  -addr "$ADDR" -runners 2 -worker-budget 4 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

"$WORK/weload" -addr "$ADDR" -wait 15s -jobs "$JOBS" -concurrency "$CONC" \
  -count 15 -workers 2 -label cold -out "$WORK/cold.json"
"$WORK/weload" -addr "$ADDR" -jobs "$JOBS" -concurrency "$CONC" \
  -count 15 -workers 2 -label warm -out "$WORK/warm.json"

python3 - "$WORK" "$WORK/entry.json" "$ADDR" <<'EOF'
import json, sys, urllib.request

work, out, addr = sys.argv[1], sys.argv[2], sys.argv[3]
cold = json.load(open(f"{work}/cold.json"))
warm = json.load(open(f"{work}/warm.json"))

with urllib.request.urlopen(f"http://{addr}/healthz", timeout=5) as r:
    health = json.load(r)
if not health.get("ok"):
    raise SystemExit(f"daemon unhealthy: {health}")

metrics = {}
with urllib.request.urlopen(f"http://{addr}/metrics", timeout=5) as r:
    for line in r.read().decode().splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        metrics[name] = float(value)

sps = metrics.get("walknotwait_samples_per_second", 0.0)
if sps <= 0:
    raise SystemExit(f"daemon reports no throughput: samples_per_second={sps}")
if cold["errors"] or warm["errors"]:
    raise SystemExit(f"load errors: cold={cold['errors']} warm={warm['errors']}")
if warm["samples_per_sec"] <= cold["samples_per_sec"]:
    raise SystemExit(
        f"warm not faster: {warm['samples_per_sec']:.1f} <= "
        f"{cold['samples_per_sec']:.1f} samples/sec")
if warm["fleet_queries_after"] < cold["fleet_queries_after"]:
    raise SystemExit("fleet query meter went backwards")

record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 2, "jitter_ms": 0.5},
    "daemon": {
        "samples_total": metrics.get("walknotwait_samples_total"),
        "samples_per_second": sps,
        "queries_charged_total": metrics.get("walknotwait_queries_charged_total"),
        "cache_hit_ratio": metrics.get("walknotwait_cache_hit_ratio"),
        "backend_round_trips_total": metrics.get("walknotwait_backend_round_trips_total"),
    },
    "cold": cold,
    "warm": warm,
    "warm_speedup": warm["samples_per_sec"] / cold["samples_per_sec"],
}
json.dump(record, open(out, "w"), indent=2)
print(f"cold {cold['samples_per_sec']:.1f} samples/s, "
      f"warm {warm['samples_per_sec']:.1f} samples/s "
      f"({record['warm_speedup']:.1f}x)")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" serve
