#!/usr/bin/env bash
# Benchmark smoke job for the dense hot-path kernels: runs the
# micro-benchmarks (with allocation counting) plus the end-to-end sequential
# WALK-ESTIMATE benchmark, records ns/op and allocs/op in BENCH_kernels.json
# (alongside BENCH_walkestimate.json's trajectory), and captures a CPU pprof
# profile of the end-to-end run as bench_cpu.pprof for the CI artifact.
#
# The allocs/op entries double as a coarse regression tripwire in review:
# BenchmarkBackStep, BenchmarkNeighborsHot* and BenchmarkHistoryRow must
# stay at 0 (the same contract testing.AllocsPerRun enforces in the tests),
# and the sparse-visit memory benches must stay bounded by visited mass
# (paged History snapshots >= 100x smaller than the dense baseline).
#
# Usage: scripts/bench_kernels.sh [benchtime]   (default 100000x for micro,
#        10x for the end-to-end benchmark)
set -euo pipefail
cd "$(dirname "$0")/.."

MICROTIME="${1:-100000x}"
OUT="BENCH_kernels.json"
RAW="$(mktemp)"
ENTRY="$(mktemp)"
trap 'rm -f "$RAW" "$ENTRY"' EXIT

# Micro-benchmarks across the kernel packages.
go test -run '^$' \
  -bench 'BenchmarkBackStep$|BenchmarkHistoryRow$|BenchmarkEstimateOnce$|BenchmarkEstimateBatch$|BenchmarkNeighborsHot$|BenchmarkNeighborsHotShared$|BenchmarkNeighborsSharedMiss$|BenchmarkUint64$|BenchmarkIntn$|BenchmarkFloat64$|BenchmarkStdRandIntn$' \
  -benchtime "$MICROTIME" -benchmem -timeout 20m \
  ./internal/core ./internal/osn ./internal/fastrand | tee "$RAW"

go test -run '^$' -bench 'BenchmarkBuilderBuild$' -benchtime 5x -benchmem \
  -timeout 20m ./internal/graph | tee -a "$RAW"

# Visited-mass memory contract benches: the paged History snapshot and the
# paged client L1 on sparse visits over a 5M-id space, plus the dense
# snapshot baseline (one op copies ~320 MB, so it gets a tiny benchtime).
# CI asserts a >= 100x bytes/op reduction of paged vs dense snapshots.
go test -run '^$' -bench 'BenchmarkHistorySnapshotSparse$' -benchtime 200x \
  -benchmem -timeout 20m ./internal/core | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkHistorySnapshotSparseDense$' -benchtime 3x \
  -benchmem -timeout 20m ./internal/core | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkClientSparseL1Footprint$' -benchtime 100x \
  -benchmem -timeout 20m ./internal/osn | tee -a "$RAW"

# End-to-end sequential WALK-ESTIMATE, with a CPU profile for the artifact.
go test -run '^$' -bench 'BenchmarkParallelWE/Sequential' -benchtime 10x \
  -cpuprofile bench_cpu.pprof -timeout 30m . | tee -a "$RAW"

# Parse `go test -bench` lines into JSON. Lines look like:
#   BenchmarkBackStep-8  100000  43.17 ns/op  0 B/op  0 allocs/op
# The trailing -8 is the GOMAXPROCS suffix (omitted on 1-CPU machines);
# strip it so recorded names are stable across machines.
awk -v benchtime="$MICROTIME" '
  BEGIN { n = 0 }
  /^Benchmark/ {
    name = $1; iters = $2
    sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""; hitrate = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op")          nsop = $i
      if ($(i+1) == "B/op")           bop = $i
      if ($(i+1) == "allocs/op")      allocs = $i
      if ($(i+1) == "cache-hit-rate") hitrate = $i
    }
    if (nsop == "") next
    line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, nsop)
    if (bop != "")    line = line sprintf(", \"bytes_per_op\": %s", bop)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    if (hitrate != "") line = line sprintf(", \"cache_hit_rate\": %s", hitrate)
    line = line "}"
    lines[n++] = line
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
  }
' "$RAW" > "$ENTRY"
python3 scripts/bench_append.py "$OUT" "$ENTRY"
echo "(CPU profile in bench_cpu.pprof)"
