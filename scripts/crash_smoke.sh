#!/usr/bin/env bash
# Crash smoke (ISSUE 7): prove the journal + deterministic-resume stack end
# to end, two ways.
#
#   1. Run the durability property tests under -race: journal roundtrip/torn-
#      tail/corruption/rotation, rehydration with zero new charges, resume
#      bit-identity, graceful drain, recovering readiness, and the kill-9 /
#      SIGTERM subprocess tests.
#   2. Boot a journal-backed weserve under open-loop weload traffic, kill -9
#      the daemon strictly mid-stream of a marker job, restart it on the same
#      journal directory, and check:
#        - the marker job resumes and its full client-visible stream matches
#          an uninterrupted reference run on (i, node, steps) — exact sample
#          identity (costs are compared only for solo runs, in the Go tests,
#          because concurrent resumed traffic interleaves fleet charges);
#        - recovery metrics moved: jobs_recovered_total{resumed} > 0,
#          journal_appends_total > 0, recovery_seconds recorded.
#      The recovery duration and stream verdict are appended as a dated
#      "crash"-kind entry to BENCH_serve.json (entries accumulate; readers
#      take the last entry of each kind).
#
# Usage: scripts/crash_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serve.json"
ADDR="127.0.0.1:17131"
WORK="$(mktemp -d)"
SERVE_PID=""
LOAD_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  [ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== durability property tests (-race) =="
go test -race -run 'TestJournal|TestRecover|TestResume|TestGraceful|TestRecovering|TestCrash|TestHTTPQueueFull' ./internal/serve/

echo "== build =="
go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload
"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

SPEC='{"type":"sample","count":60,"seed":4242,"workers":2}'

wait_healthy() {
  for _ in $(seq 1 300); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon at $ADDR never became healthy" >&2
  return 1
}

submit_marker() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" \
    "http://$ADDR/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

job_field() { # id field
  curl -fsS "http://$ADDR/v1/jobs/$1" | python3 -c "import json,sys; print(json.load(sys.stdin)[\"$2\"])"
}

echo "== reference run (uninterrupted) =="
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 1ms \
  -addr "$ADDR" -runners 2 -worker-budget 4 >"$WORK/ref.log" 2>&1 &
SERVE_PID=$!
wait_healthy
REF_ID=$(submit_marker)
curl -fsS "http://$ADDR/v1/jobs/$REF_ID/stream" >"$WORK/ref.ndjson"
kill "$SERVE_PID" 2>/dev/null; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""

echo "== crash run: journal + open-loop load, kill -9 mid-stream =="
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 1ms \
  -journal "$WORK/journal" -fsync interval \
  -addr "$ADDR" -runners 2 -worker-budget 4 >"$WORK/crash.log" 2>&1 &
SERVE_PID=$!
wait_healthy
MARKER_ID=$(submit_marker)
"$WORK/weload" -addr "$ADDR" -rate 8 -jobs 40 -count 25 -workers 2 \
  -label crash-load -out "$WORK/load.json" >/dev/null 2>&1 &
LOAD_PID=$!

N=0
for _ in $(seq 1 600); do
  N=$(job_field "$MARKER_ID" samples || echo 0)
  [ "$N" -ge 10 ] && break
  sleep 0.05
done
if [ "$N" -lt 10 ]; then
  echo "marker job never reached the kill point (samples=$N)" >&2
  exit 1
fi
echo "killing daemon at marker samples=$N (of 60)"
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""
kill "$LOAD_PID" 2>/dev/null || true; wait "$LOAD_PID" 2>/dev/null || true; LOAD_PID=""

echo "== restart on the same journal =="
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 1ms \
  -journal "$WORK/journal" -fsync interval \
  -addr "$ADDR" -runners 2 -worker-budget 4 >"$WORK/recover.log" 2>&1 &
SERVE_PID=$!
wait_healthy

STATE=""
for _ in $(seq 1 1200); do
  STATE=$(job_field "$MARKER_ID" state || echo "")
  [ "$STATE" = "done" ] && break
  case "$STATE" in failed|cancelled) echo "marker ended $STATE after restart" >&2; exit 1;; esac
  sleep 0.1
done
if [ "$STATE" != "done" ]; then
  echo "marker never finished after restart (state=$STATE)" >&2
  tail -20 "$WORK/recover.log" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/jobs/$MARKER_ID/stream" >"$WORK/post.ndjson"
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"

python3 - "$WORK" "$WORK/entry.json" <<'EOF'
import json, sys

work, out = sys.argv[1], sys.argv[2]

def rows(path):
    seq = []
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if d.get("done"):
            continue
        if "node" in d:
            seq.append((d["i"], d["node"], d["steps"]))
    return seq

ref, post = rows(f"{work}/ref.ndjson"), rows(f"{work}/post.ndjson")
if len(ref) != 60:
    raise SystemExit(f"reference stream has {len(ref)} rows, want 60")
if post != ref:
    for i, (a, b) in enumerate(zip(ref, post)):
        if a != b:
            raise SystemExit(f"streams diverge at row {i}: ref {a} vs post-crash {b}")
    raise SystemExit(f"stream lengths differ: ref {len(ref)} vs post-crash {len(post)}")

metrics = {}
for line in open(f"{work}/metrics.txt"):
    if line.startswith("#") or " " not in line:
        continue
    name, val = line.rsplit(" ", 1)
    try:
        metrics[name] = float(val)
    except ValueError:
        pass

resumed = metrics.get('walknotwait_jobs_recovered_total{mode="resumed"}', 0)
rehydrated = metrics.get('walknotwait_jobs_recovered_total{mode="rehydrated"}', 0)
appends = metrics.get("walknotwait_journal_appends_total", 0)
recovery_s = metrics.get("walknotwait_recovery_seconds")
if resumed < 1:
    raise SystemExit(f"jobs_recovered_total{{resumed}} = {resumed}, want >= 1")
if appends <= 0:
    raise SystemExit("journal_appends_total did not move after restart")
if recovery_s is None:
    raise SystemExit("recovery_seconds missing from /metrics")

record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 1},
    "marker_spec": {"type": "sample", "count": 60, "seed": 4242, "workers": 2},
    "stream_bit_identical": True,
    "stream_rows": len(post),
    "jobs_resumed": resumed,
    "jobs_rehydrated": rehydrated,
    "recovery_seconds": recovery_s,
    "journal_appends_after_restart": appends,
}
json.dump(record, open(out, "w"), indent=2)
print(f"resumed stream bit-identical over {len(post)} rows; "
      f"{resumed:.0f} resumed + {rehydrated:.0f} rehydrated in {recovery_s:.3f}s")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" crash
