#!/usr/bin/env bash
# Runs the WALK-ESTIMATE performance benchmarks and appends a dated entry
# to BENCH_walkestimate.json so successive runs accumulate a perf
# trajectory (readers take the last entry).
#
# Usage: scripts/bench.sh [benchtime]   (default 10x per benchmark op)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT="BENCH_walkestimate.json"
RAW="$(mktemp)"
ENTRY="$(mktemp)"
trap 'rm -f "$RAW" "$ENTRY"' EXIT

go test -run '^$' -bench 'BenchmarkParallelWE|BenchmarkFig5' \
  -benchtime "$BENCHTIME" -timeout 30m . | tee "$RAW"

# Parse `go test -bench` lines into JSON. Lines look like:
#   BenchmarkParallelWE/Parallel-8  20  5373643 ns/op  97.07 queries/sample  8.000 workers
awk -v benchtime="$BENCHTIME" '
  BEGIN { n = 0 }
  /^Benchmark/ {
    name = $1; iters = $2
    nsop = ""; qps = ""; workers = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op")          nsop = $i
      if ($(i+1) == "queries/sample") qps = $i
      if ($(i+1) == "workers")        workers = $i
    }
    if (nsop == "") next
    line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, nsop)
    if (qps != "")     line = line sprintf(", \"queries_per_sample\": %s", qps)
    if (workers != "") line = line sprintf(", \"workers\": %s", workers)
    line = line "}"
    lines[n++] = line
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
  }
' "$RAW" > "$ENTRY"
python3 scripts/bench_append.py "$OUT" "$ENTRY"
