#!/usr/bin/env bash
# Load sweep (ISSUE 7, carried from the ROADMAP): sweep weload's open-loop
# submission rate against one weserve daemon with a deliberately small
# admission queue, and record the classic capacity curve — samples/sec, p99
# job latency, shed rate, and submit retries at each offered load — into
# BENCH_serve.json under a "load_sweep" key.
#
# The small queue makes overload visible: past the service's capacity the
# daemon sheds with typed 503s (which weload retries with the daemon's
# Retry-After hint, then counts as shed) instead of building an unbounded
# backlog. The open-loop driver is coordinated-omission-free: retries and
# queue waits show up as latency, never as reduced offered load.
#
# Usage: scripts/load_sweep.sh [rates...]   (default: 8 16 32 64 128 256)
set -euo pipefail
cd "$(dirname "$0")/.."

RATES=("${@:-8 16 32 64 128 256}")
# Re-split the default string form into words.
read -r -a RATES <<<"${RATES[*]}"
OUT="BENCH_serve.json"
ADDR="127.0.0.1:17137"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build =="
go build -o "$WORK/" ./cmd/wegen ./cmd/weserve ./cmd/weload
"$WORK/wegen" -model ba -n 3000 -m 3 -seed 7 -format csr -out "$WORK/g.csr"

# Small queue (8) and two runners: capacity is reached inside the sweep, so
# the top rates actually exercise shedding and retry.
"$WORK/weserve" -in "$WORK/g.csr" -backend sim -latency 1ms \
  -addr "$ADDR" -queue 8 -runners 2 -worker-budget 4 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

first=1
for RATE in "${RATES[@]}"; do
  JOBS=$((RATE * 5))
  WAIT_FLAG=""
  [ "$first" = 1 ] && WAIT_FLAG="-wait 15s" && first=0
  echo "== rate $RATE jobs/s ($JOBS jobs) =="
  # shellcheck disable=SC2086
  "$WORK/weload" -addr "$ADDR" $WAIT_FLAG -rate "$RATE" -jobs "$JOBS" \
    -count 300 -workers 2 -label "sweep-$RATE" -out "$WORK/sweep_$RATE.json"
done

python3 - "$WORK" "$WORK/entry.json" "${RATES[@]}" <<'EOF'
import json, sys

work, out = sys.argv[1], sys.argv[2]
rates = [int(r) for r in sys.argv[3:]]

steps = []
for rate in rates:
    rec = json.load(open(f"{work}/sweep_{rate}.json"))
    if rec["samples_per_sec"] <= 0:
        raise SystemExit(f"rate {rate}: no throughput")
    if rec["errors"]:
        raise SystemExit(
            f"rate {rate}: {rec['errors']} hard errors "
            f"(reasons {rec.get('failure_reasons')}) — shedding should be the "
            "only overload response")
    steps.append({
        "offered_rate_jobs_per_sec": rate,
        "jobs": rec["jobs"],
        "jobs_per_sec": rec["jobs_per_sec"],
        "samples_per_sec": rec["samples_per_sec"],
        "p50_ms": rec["latency_ms"]["p50"],
        "p99_ms": rec["latency_ms"]["p99"],
        "shed": rec["shed"],
        "shed_rate": rec["shed"] / rec["jobs"],
        "submit_retries": rec["submit_retries"],
    })

record = {
    "graph": {"model": "ba", "n": 3000, "m": 3, "seed": 7},
    "backend": {"kind": "sim", "latency_ms": 1},
    "queue_depth": 8,
    "runners": 2,
    "count_per_job": 300,
    "steps": steps,
}
json.dump(record, open(out, "w"), indent=2)
for s in steps:
    print(f"rate {s['offered_rate_jobs_per_sec']:>3}: "
          f"{s['samples_per_sec']:8.1f} samples/s  "
          f"p99 {s['p99_ms']:8.1f} ms  "
          f"shed {s['shed']}/{s['jobs']} ({100*s['shed_rate']:.0f}%)  "
          f"retries {s['submit_retries']}")
EOF
python3 scripts/bench_append.py "$OUT" "$WORK/entry.json" load_sweep
