#!/usr/bin/env python3
"""Append a dated benchmark entry to a BENCH_*.json history file.

Usage: bench_append.py OUT.json ENTRY.json [kind]

The history file holds {"entries": [...]} with one dated entry per
recorded run, newest last — bench scripts append instead of overwriting,
so the committed records carry their trajectory. CI readers and tooling
take entries[-1] (or the last entry of a given "kind" for files shared by
several scripts, like BENCH_serve.json).

A legacy single-run file (no "entries" key) is migrated in place: its old
top-level object becomes entries[0], dated by the file's mtime — the best
record available of when that run actually happened. All dates are UTC
(calendar dates must not depend on the benchmark machine's timezone).
"""

import datetime
import json
import os
import sys


def utc_date(ts: float | None = None) -> str:
    if ts is None:
        dt = datetime.datetime.now(datetime.timezone.utc)
    else:
        dt = datetime.datetime.fromtimestamp(ts, datetime.timezone.utc)
    return dt.date().isoformat()


def main() -> None:
    if len(sys.argv) not in (3, 4):
        raise SystemExit(__doc__)
    out, entry_path = sys.argv[1], sys.argv[2]
    entry = json.load(open(entry_path))
    dated = {"date": utc_date()}
    if len(sys.argv) == 4:
        dated["kind"] = sys.argv[3]
    dated.update(entry)

    try:
        doc = json.load(open(out))
    except (FileNotFoundError, json.JSONDecodeError):
        doc = {"entries": []}
    if "entries" not in doc:
        doc = {"entries": [{"date": utc_date(os.path.getmtime(out)), **doc}]}
    doc["entries"].append(dated)

    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"appended entry {len(doc['entries'])} to {out}")


if __name__ == "__main__":
    main()
