package walknotwait

import (
	"net/http"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// This file is the facade over the sampling-as-a-service layer
// (internal/serve): a resident engine that keeps one shared neighbor cache
// and the crawl tables hot across jobs, a manager with admission control
// and a global estimation-worker budget, and an HTTP API (the weserve
// daemon is a thin main over these).

// ServiceEngine is the job-independent shared state of a sampling service:
// the network, the long-lived shared cache every job's clients attach to,
// and the crawl-table memo.
type ServiceEngine = serve.Engine

// ServiceManager owns job admission, scheduling, and bookkeeping over a
// ServiceEngine.
type ServiceManager = serve.Manager

// ServiceConfig bounds a manager's concurrency: queue depth (admission
// control), concurrent runners, the global worker budget, and the per-job
// worker clamp.
type ServiceConfig = serve.Config

// ServiceJobSpec describes one sampling job; zero fields select documented
// defaults, and the normalized spec is the job's determinism contract.
type ServiceJobSpec = serve.JobSpec

// ServiceJob is one submitted job: status snapshots, sample streaming, and
// cancellation.
type ServiceJob = serve.Job

// ServiceJobStatus is a point-in-time JSON-ready snapshot of a job.
type ServiceJobStatus = serve.JobStatus

// ServiceMetrics is the service metric registry behind /metrics.
type ServiceMetrics = serve.Metrics

// ServiceJournal is the crash-safety layer: an append-only, checksummed,
// segment-rotated log of accepted specs, durable-sample counts, and
// terminal records. Attach one via ServiceConfig.Journal and the manager
// recovers on construction — terminal jobs rehydrate from their
// self-contained records, incomplete jobs resume by deterministic re-run
// with a client-visible stream bit-identical to an uninterrupted one.
type ServiceJournal = serve.Journal

// ServiceJournalConfig configures a journal: directory, fsync policy,
// fsync interval, and segment-rotation threshold.
type ServiceJournalConfig = serve.JournalConfig

// ServiceJournalStats is a point-in-time snapshot of journal counters.
type ServiceJournalStats = serve.JournalStats

// FsyncPolicy selects when the journal fsyncs; every append is flushed to
// the OS regardless, so the policy sizes only the power-loss window.
type FsyncPolicy = serve.FsyncPolicy

// Fsync policies: per-append, timer-driven (default), or OS-managed.
const (
	FsyncAlways   = serve.FsyncAlways
	FsyncInterval = serve.FsyncInterval
	FsyncOff      = serve.FsyncOff
)

// OpenServiceJournal opens (or creates) a journal directory, replaying
// and compacting any existing segments. Hand the result to
// ServiceConfig.Journal before constructing the manager.
func OpenServiceJournal(cfg ServiceJournalConfig) (*ServiceJournal, error) {
	return serve.OpenJournal(cfg)
}

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return serve.ParseFsyncPolicy(s) }

// ErrQueueFull is returned by ServiceManager.Submit when admission control
// rejects a job because the bounded queue is at capacity. The HTTP layer
// maps it to a typed 503 with a Retry-After hint.
var ErrQueueFull = serve.ErrQueueFull

// NewServiceEngine wraps a loaded network as resident service state.
func NewServiceEngine(net *Network) *ServiceEngine { return serve.NewEngine(net) }

// NewServiceManager starts a job manager (and its runner goroutines) over
// the engine. Close it to drain.
func NewServiceManager(eng *ServiceEngine, cfg ServiceConfig) *ServiceManager {
	return serve.NewManager(eng, cfg)
}

// NewServiceHandler returns the service HTTP API: POST/GET/DELETE under
// /v1/jobs (with NDJSON sample streaming), /healthz, and a Prometheus-text
// /metrics endpoint.
func NewServiceHandler(m *ServiceManager) http.Handler { return serve.Handler(m) }

// The fleet facade scales the service to a coordinator/worker cluster
// (internal/cluster): workers partition the shared neighbor cache by its
// own shard function and resolve non-owned lookups through the shard
// owner, so the fleet-wide unique-node charge (the paper's cost axis)
// stays exactly equal to a single process's.

// FleetCoordinator is the cluster frontend: it admits jobs over the same
// HTTP surface a single daemon exposes, places them on live workers,
// relays sample streams (handing off on worker loss with a client-visible
// stream identical to an uninterrupted run), and aggregates fleet meters.
type FleetCoordinator = cluster.Coordinator

// FleetCoordinatorConfig sizes the fleet and its liveness, hand-off, and
// durability policies.
type FleetCoordinatorConfig = cluster.CoordinatorConfig

// FleetWorker joins a ServiceManager to a fleet: registration, heartbeats,
// shard ownership, and peer resolution.
type FleetWorker = cluster.Worker

// FleetWorkerConfig points a worker at its coordinator and advertise URL.
type FleetWorkerConfig = cluster.WorkerConfig

// FleetWorkerStats is one worker's meter snapshot as the coordinator sees
// it (heartbeat piggyback or /cluster/v1/stats).
type FleetWorkerStats = cluster.WorkerStats

// NewFleetCoordinator starts a coordinator expecting cfg.Workers workers.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) (*FleetCoordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// NewFleetWorker wraps a manager as a fleet worker; call Start once its
// Handler is listening at cfg.Advertise.
func NewFleetWorker(m *ServiceManager, cfg FleetWorkerConfig) (*FleetWorker, error) {
	return cluster.NewWorker(m, cfg)
}
