package walknotwait

import (
	"net/http"

	"repro/internal/serve"
)

// This file is the facade over the sampling-as-a-service layer
// (internal/serve): a resident engine that keeps one shared neighbor cache
// and the crawl tables hot across jobs, a manager with admission control
// and a global estimation-worker budget, and an HTTP API (the weserve
// daemon is a thin main over these).

// ServiceEngine is the job-independent shared state of a sampling service:
// the network, the long-lived shared cache every job's clients attach to,
// and the crawl-table memo.
type ServiceEngine = serve.Engine

// ServiceManager owns job admission, scheduling, and bookkeeping over a
// ServiceEngine.
type ServiceManager = serve.Manager

// ServiceConfig bounds a manager's concurrency: queue depth (admission
// control), concurrent runners, the global worker budget, and the per-job
// worker clamp.
type ServiceConfig = serve.Config

// ServiceJobSpec describes one sampling job; zero fields select documented
// defaults, and the normalized spec is the job's determinism contract.
type ServiceJobSpec = serve.JobSpec

// ServiceJob is one submitted job: status snapshots, sample streaming, and
// cancellation.
type ServiceJob = serve.Job

// ServiceJobStatus is a point-in-time JSON-ready snapshot of a job.
type ServiceJobStatus = serve.JobStatus

// ServiceMetrics is the service metric registry behind /metrics.
type ServiceMetrics = serve.Metrics

// ErrQueueFull is returned by ServiceManager.Submit when admission control
// rejects a job because the bounded queue is at capacity.
var ErrQueueFull = serve.ErrQueueFull

// NewServiceEngine wraps a loaded network as resident service state.
func NewServiceEngine(net *Network) *ServiceEngine { return serve.NewEngine(net) }

// NewServiceManager starts a job manager (and its runner goroutines) over
// the engine. Close it to drain.
func NewServiceManager(eng *ServiceEngine, cfg ServiceConfig) *ServiceManager {
	return serve.NewManager(eng, cfg)
}

// NewServiceHandler returns the service HTTP API: POST/GET/DELETE under
// /v1/jobs (with NDJSON sample streaming), /healthz, and a Prometheus-text
// /metrics endpoint.
func NewServiceHandler(m *ServiceManager) http.Handler { return serve.Handler(m) }
