package walknotwait

import (
	"repro/internal/dataset"
	"repro/internal/exp"
)

// Dataset bundles an evaluation surrogate (Section 7.1) with its metadata:
// the simulated network, ground-truth aggregate values, the paper's
// per-dataset parameters (diameter bound, crawl depth), and the canonical
// start node.
type Dataset = dataset.Dataset

// Dataset attribute names.
const (
	AttrSelfDesc   = dataset.AttrSelfDesc
	AttrStars      = dataset.AttrStars
	AttrInDegree   = dataset.AttrInDegree
	AttrOutDegree  = dataset.AttrOutDegree
	AttrClustering = dataset.AttrClustering
	AttrAvgPath    = dataset.AttrAvgPath
)

// GooglePlusDataset builds the Google Plus surrogate (≈16.4k users, avg
// degree ≈560 at scale 1) with the self-description length attribute.
func GooglePlusDataset(scale float64, seed int64) (*Dataset, error) {
	return dataset.GooglePlus(scale, seed)
}

// YelpDataset builds the Yelp co-review surrogate (≈120k users at scale 1)
// with star ratings and topological aggregates.
func YelpDataset(scale float64, seed int64) (*Dataset, error) {
	return dataset.Yelp(scale, seed)
}

// TwitterDataset builds the Twitter mutual-follow surrogate (≈80k users at
// scale 1) with in/out-degree attributes.
func TwitterDataset(scale float64, seed int64) (*Dataset, error) {
	return dataset.Twitter(scale, seed)
}

// SmallScaleFreeDataset builds the paper's exact-bias graph (1000 nodes,
// 6951 edges).
func SmallScaleFreeDataset(seed int64) *Dataset { return dataset.SmallScaleFree(seed) }

// SyntheticBADataset builds a Barabási–Albert (m=5) dataset of n nodes —
// the Figure 11 workload.
func SyntheticBADataset(n int, seed int64) (*Dataset, error) {
	return dataset.SyntheticBA(n, seed)
}

// ExperimentOptions tunes the budgets of the paper-reproduction experiment
// runners (trials, samples, dataset scale, seeds).
type ExperimentOptions = exp.Options

// ExperimentResult is one reproduced figure panel or table.
type ExperimentResult = exp.Result

// Experiment runners, one per paper figure/table. Each returns the same
// series the paper plots; render with ExperimentResult.Render.
var (
	// Fig1: min/max sampling probability vs walk length.
	Fig1 = exp.Fig1
	// Fig2: IDEAL-WALK query cost vs walk length on five graph models.
	Fig2 = exp.Fig2
	// Fig3: IDEAL-WALK query-cost saving % vs graph size.
	Fig3 = exp.Fig3
	// Fig5: WE's diameter limitation on cycle graphs.
	Fig5 = exp.Fig5
	// Fig6: Google Plus error-vs-cost, SRW/MHRW vs WE (4 panels).
	Fig6 = exp.Fig6
	// Fig7: Yelp error-vs-cost (4 panels).
	Fig7 = exp.Fig7
	// Fig8: Twitter error-vs-cost (4 panels).
	Fig8 = exp.Fig8
	// Fig9: heuristic ablation WE-None/WE-Crawl/WE-Weighted/WE (4 panels).
	Fig9 = exp.Fig9
	// Fig10: Google Plus error-vs-sample-count (4 panels).
	Fig10 = exp.Fig10
	// Fig11: synthetic BA graphs, error vs cost and vs samples.
	Fig11 = exp.Fig11
	// Fig12: exact sampling-distribution PDF/CDF comparison.
	Fig12 = exp.Fig12
	// Table1: ℓ∞/KL distance of SRW and WE sampling distributions.
	Table1 = exp.Table1
	// OneLongRunStudy: effective-sample-size study behind Figure 4.
	OneLongRunStudy = exp.OneLongRunStudy
	// GewekeSensitivity: the Z<=0.1 vs Z<=0.01 threshold sensitivity check.
	GewekeSensitivity = exp.GewekeSensitivity
	// BurnInProfile: exact Definition 3 burn-in lengths across models and
	// thresholds.
	BurnInProfile = exp.BurnInProfile
	// HarvestStudy: the Section 6.1 path-harvesting extension study.
	HarvestStudy = exp.HarvestStudy
	// AllExperiments runs everything in paper order.
	AllExperiments = exp.All
)
