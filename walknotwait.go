// Package walknotwait is a Go implementation of "Walk, Not Wait: Faster
// Sampling Over Online Social Networks" (Nazi, Zhou, Thirumuruganathan,
// Zhang, Das — VLDB 2015, arXiv:1410.7833).
//
// The library lets you sample nodes from a graph that is only reachable
// through a restrictive local-neighborhood interface (give a node id, get
// its neighbor list — the access model of real online social networks), and
// to do so far cheaper than classical random-walk samplers: instead of
// waiting out a long burn-in, WALK-ESTIMATE walks a short, fixed number of
// steps, estimates the landing probability of the candidate node with
// provably unbiased backward random walks, and corrects the sample stream to
// the target distribution with acceptance-rejection sampling.
//
// # Quick start
//
//	g := walknotwait.NewBarabasiAlbert(10000, 5, rand.New(rand.NewSource(1)))
//	net := walknotwait.NewNetwork(g)
//	client := walknotwait.NewClient(net, walknotwait.CostUniqueNodes, rng)
//	sampler, err := walknotwait.NewWalkEstimate(client, walknotwait.WEConfig{
//		Design:      walknotwait.SimpleRandomWalk(),
//		Start:       0,
//		WalkLength:  2*8 + 1, // 2·D̄+1 for diameter bound D̄
//		UseCrawl:    true,
//		UseWeighted: true,
//	}, rng)
//	nodes, err := sampler.SampleN(100)
//	avgDeg, err := walknotwait.EstimateMean(client, walknotwait.SimpleRandomWalk(),
//		walknotwait.AttrDegree, nodes.Nodes)
//
// The package is a facade over the internal implementation; see DESIGN.md
// for the architecture and EXPERIMENTS.md for the paper-reproduction
// results. Everything is stdlib-only and deterministic under caller-supplied
// *rand.Rand seeds.
package walknotwait

import (
	"io"
	"math/rand"

	"repro/internal/fastrand"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RNG is the random-source interface the generators and samplers consume;
// both *math/rand.Rand and the library's fast xoshiro256++ generator
// (NewFastRNG) satisfy it.
type RNG = fastrand.RNG

// NewFastRNG returns a seeded xoshiro256++ generator — the fast RNG the
// internal sampling engines run on. Use it in place of a *rand.Rand when
// generating very large graphs; note the two produce different (but equally
// reproducible) streams for the same seed.
func NewFastRNG(seed int64) RNG { return fastrand.New(seed) }

// Graph is an immutable simple undirected graph in CSR form; see
// NewGraphBuilder and the generator functions for construction, and
// LoadEdgeList for file input.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n nodes (ids 0..n-1).
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes from undirected edge pairs.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a plain-text edge list ("u v" lines, '#' comments).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes a graph as a plain-text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadEdgeList reads a graph from an edge-list file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// SaveEdgeList writes a graph to an edge-list file.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeList(path, g) }

// MappedCSR is a graph opened from a binary CSR file — memory-mapped where
// the platform allows, so million-node graphs open in O(1) and sample
// without holding their edges on the heap.
type MappedCSR = graph.MappedCSR

// SaveCSR writes a graph (plus optional per-node float64 attribute tables)
// to the named file in the binary CSR format.
func SaveCSR(path string, g *Graph, attrs map[string][]float64) error {
	return graph.SaveCSR(path, g, attrs)
}

// LoadCSR reads a binary CSR file fully into memory.
func LoadCSR(path string) (*Graph, map[string][]float64, error) { return graph.LoadCSR(path) }

// OpenCSR opens a binary CSR file, memory-mapping it when possible. Close
// the result when done.
func OpenCSR(path string) (*MappedCSR, error) { return graph.OpenCSR(path) }

// IsCSRFile reports whether the named file is a binary CSR graph (as
// opposed to a plain-text edge list).
func IsCSRFile(path string) bool { return graph.IsCSRFile(path) }

// NewBarabasiAlbert generates a Barabási–Albert scale-free graph: n nodes,
// m preferential attachments per new node. Accepts a *rand.Rand (frozen
// fixture streams) or a NewFastRNG generator (million-node graphs in
// seconds).
func NewBarabasiAlbert(n, m int, rng RNG) *Graph { return gen.BarabasiAlbert(n, m, rng) }

// NewHolmeKim generates a scale-free graph with tunable clustering: like
// Barabási–Albert but each subsequent edge is, with probability pt, a
// triad-formation step. Accepts a *rand.Rand or a NewFastRNG generator.
func NewHolmeKim(n, m int, pt float64, rng RNG) *Graph { return gen.HolmeKim(n, m, pt, rng) }

// NewCycle generates the cycle graph C_n.
func NewCycle(n int) *Graph { return gen.Cycle(n) }

// NewPath generates the path graph P_n.
func NewPath(n int) *Graph { return gen.Path(n) }

// NewComplete generates the complete graph K_n.
func NewComplete(n int) *Graph { return gen.Complete(n) }

// NewStar generates the star graph on n nodes (node 0 is the hub).
func NewStar(n int) *Graph { return gen.Star(n) }

// NewHypercube generates the k-dimensional hypercube (2^k nodes).
func NewHypercube(k int) *Graph { return gen.Hypercube(k) }

// NewBarbell generates the paper's barbell graph on n (odd) nodes: two
// cliques of (n-1)/2 nodes bridged by a central node.
func NewBarbell(n int) *Graph { return gen.Barbell(n) }

// NewBalancedBinaryTree generates the complete binary tree of height h.
func NewBalancedBinaryTree(h int) *Graph { return gen.BalancedBinaryTree(h) }

// NewErdosRenyiGNP generates a G(n,p) random graph.
func NewErdosRenyiGNP(n int, p float64, rng *rand.Rand) *Graph {
	return gen.ErdosRenyiGNP(n, p, rng)
}

// NewErdosRenyiGNM generates a G(n,m) random graph with exactly m edges.
func NewErdosRenyiGNM(n, m int, rng *rand.Rand) *Graph { return gen.ErdosRenyiGNM(n, m, rng) }

// NewRandomRegular generates a random d-regular simple graph on n nodes.
func NewRandomRegular(n, d int, rng *rand.Rand) *Graph { return gen.RandomRegular(n, d, rng) }
