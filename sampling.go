package walknotwait

import (
	"context"

	"repro/internal/core"
	"repro/internal/walk"
)

// Design is an MCMC transition design driven through the restricted
// interface: SRW and MHRW are provided; custom designs implement the same
// interface.
type Design = walk.Design

// SimpleRandomWalk returns the Simple Random Walk design (Definition 1):
// uniform transitions, degree-proportional stationary distribution.
func SimpleRandomWalk() Design { return walk.SRW{} }

// MetropolisHastings returns the Metropolis–Hastings Random Walk design
// (Definition 2) with uniform target distribution.
func MetropolisHastings() Design { return walk.MHRW{} }

// DesignByName resolves "SRW" or "MHRW" (case-insensitive).
func DesignByName(name string) (Design, error) { return walk.ByName(name) }

// SampleResult is the output of a sampling run: nodes, per-sample walk
// steps, and cumulative query cost after each sample.
type SampleResult = walk.Result

// Monitor decides when a growing walk has burned in.
type Monitor = walk.Monitor

// Geweke is the convergence monitor of Section 2.2.3 (first-10% vs last-50%
// window comparison; the paper's default threshold is 0.1).
type Geweke = walk.Geweke

// FixedBurnIn is the conservative fixed-length burn-in monitor.
type FixedBurnIn = walk.FixedBurnIn

// ManyShortRuns draws count samples with the traditional scheme: one walk
// per sample, each run until the monitor declares burn-in.
func ManyShortRuns(c *Client, d Design, start, count int, m Monitor, maxSteps int, rng RNG) (SampleResult, error) {
	return walk.ManyShortRuns(c, d, start, count, m, maxSteps, rng)
}

// OneLongRun draws count samples from a single walk after one burn-in,
// taking every thin-th node (Section 6.1; samples are correlated — see
// EffectiveSampleSize).
func OneLongRun(c *Client, d Design, start, burnIn, count, thin int, rng RNG) (SampleResult, error) {
	return walk.OneLongRun(c, d, start, burnIn, count, thin, rng)
}

// WalkPath performs a fixed-length walk and returns the visited nodes.
func WalkPath(c *Client, d Design, start, steps int, rng RNG) []int {
	return walk.Path(c, d, start, steps, rng)
}

// WEConfig parameterizes a WALK-ESTIMATE sampler: the input design, start
// node, short-walk length (2·D̄+1 recommended), and the variance-reduction
// heuristics (initial crawling, weighted backward sampling).
type WEConfig = core.Config

// WESampler is the WALK-ESTIMATE sampler — the paper's primary
// contribution. It samples from the input design's target distribution at a
// fraction of the query cost of waiting for burn-in. Besides the sequential
// Sample/SampleN, it offers SampleNParallel(n, workers), which fans the
// backward estimates across a worker pool over a shared neighbor cache and
// is deterministic per (seed, workers); see DESIGN.md for the concurrency
// model. SampleNCtx/SampleNParallelCtx add cancellation (a cancelled run
// stops charging queries within one batch and returns the context's error;
// completed runs are bit-identical to the context-free forms), and the
// OnSample hook streams accepted samples as they are produced — the two
// primitives the serving layer builds on.
type WESampler = core.Sampler

// WESampleEvent describes one accepted sample delivered to the OnSample
// hook: index, node, walk steps since the previous acceptance, and the
// fleet-wide query cost right after it.
type WESampleEvent = core.SampleEvent

// NewWalkEstimate builds a WALK-ESTIMATE sampler over a metered client.
func NewWalkEstimate(c *Client, cfg WEConfig, rng RNG) (*WESampler, error) {
	return core.NewSampler(c, cfg, rng)
}

// Estimator is the backward-walk sampling-probability estimator
// (UNBIASED-ESTIMATE / WS-BW, Section 5); exposed for advanced use such as
// estimating p_t(v) for nodes of interest directly.
type Estimator = core.Estimator

// EstimateAll is the batch form of Algorithm 3 (ESTIMATE): baseReps backward
// walks per node plus extraBudget walks allocated by estimation variance.
func EstimateAll(e *Estimator, nodes []int, t, baseReps, extraBudget int, rng RNG) (map[int]float64, error) {
	return core.EstimateAll(e, nodes, t, baseReps, extraBudget, rng)
}

// EstimateAllParallel is EstimateAll with the independent backward
// repetitions fanned across a worker pool over a shared neighbor cache. The
// result is a deterministic function of seed, independent of workers and
// scheduling; see DESIGN.md.
func EstimateAllParallel(e *Estimator, nodes []int, t, baseReps, extraBudget, workers int, seed int64) (map[int]float64, error) {
	return core.EstimateAllParallel(e, nodes, t, baseReps, extraBudget, workers, seed)
}

// EstimateAllParallelCtx is EstimateAllParallel with cancellation: once ctx
// is cancelled, workers abandon their remaining repetitions and the call
// returns ctx's error. Completed calls are bit-identical to
// EstimateAllParallel.
func EstimateAllParallelCtx(ctx context.Context, e *Estimator, nodes []int, t, baseReps, extraBudget, workers int, seed int64) (map[int]float64, error) {
	return core.EstimateAllParallelCtx(ctx, e, nodes, t, baseReps, extraBudget, workers, seed)
}

// EstimateAdaptive estimates p_t(v) with baseReps backward walks plus up to
// varianceBudget adaptive top-ups (the scalar per-candidate loop the
// WALK-ESTIMATE sampler runs).
func EstimateAdaptive(e *Estimator, v, t, baseReps, varianceBudget int, rng RNG) (float64, error) {
	return core.EstimateAdaptive(e, v, t, baseReps, varianceBudget, rng)
}

// WEBatchCand is one candidate lane of EstimateAdaptiveBatch: the caller
// sets V and RNG (one private stream per candidate), the kernel fills PHat,
// Steps, and Err.
type WEBatchCand = core.BatchCand

// EstimateAdaptiveBatch is EstimateAdaptive over a vector of candidates,
// advanced in lockstep design steps: each step resolves the whole walker
// frontier with one batched neighbor fetch (one shared-cache pass, one
// backend round trip) instead of one lookup per walker. Per candidate it is
// bit-identical to EstimateAdaptive seeded the same way — same estimates,
// same step counts, same query charges.
func EstimateAdaptiveBatch(e *Estimator, cands []*WEBatchCand, t, baseReps, varianceBudget int) {
	core.EstimateAdaptiveBatch(e, cands, t, baseReps, varianceBudget)
}

// CrawlTable holds exact step-τ probabilities inside the crawled h-hop ball
// around the start node (initial-crawling heuristic, Section 5.2).
type CrawlTable = core.CrawlTable

// BuildCrawlTable crawls the h-hop ball around start and computes exact
// p_τ tables for τ ≤ h under the given design.
func BuildCrawlTable(c *Client, d Design, start, h int) (*CrawlTable, error) {
	return core.BuildCrawlTable(c, d, start, h)
}

// History records forward-walk hits for the weighted backward sampling
// heuristic (Section 5.3). Counters are paged and snapshots are
// copy-on-write, so per-walk memory is bounded by the visited mass, not
// the graph's id space.
type History = core.History

// NewHistory returns an empty forward-walk history.
func NewHistory() *History { return core.NewHistory() }

// PagePool recycles History counter pages across samplers. A long-lived
// service sets WEConfig.Pages to one shared pool so each job's history
// reuses pages released by finished jobs (WESampler.ReleasePages).
type PagePool = core.PagePool

// NewPagePool returns an empty history page pool.
func NewPagePool() *PagePool { return core.NewPagePool() }

// Theorem1 bundles the closed forms of the paper's Theorem 1: optimal walk
// length (Lambert W), plain-walk cost, and the guaranteed saving bound.
type Theorem1 = core.Theorem1

// HarvestSampler is the Section 6.1 extension the paper leaves as future
// work: WALK-ESTIMATE applied to every node along each forward walk, not
// just the final one, amortizing the forward-walk cost across multiple
// candidates per path.
type HarvestSampler = core.HarvestSampler

// NewHarvestSampler builds the path-harvesting WALK-ESTIMATE variant.
// minStep (0 = half the walk length) is the first harvested step.
func NewHarvestSampler(c *Client, cfg WEConfig, minStep int, rng RNG) (*HarvestSampler, error) {
	return core.NewHarvestSampler(c, cfg, minStep, rng)
}

// NBWalker is the non-backtracking random walk (Lee–Xu–Eun, the paper's
// related-work baseline [24]): same degree-proportional node marginal as
// SRW, faster mixing. A baseline sampler, not a WE input design (its state
// is an edge, so the backward estimator does not apply).
type NBWalker = walk.NBWalker

// NewNBWalker starts a non-backtracking walk at the given node.
func NewNBWalker(start int) *NBWalker { return walk.NewNBWalker(start) }

// NBManyShortRuns is ManyShortRuns with the non-backtracking walk.
func NBManyShortRuns(c *Client, start, count int, m Monitor, maxSteps int, rng RNG) (SampleResult, error) {
	return walk.NBManyShortRuns(c, start, count, m, maxSteps, rng)
}

// GelmanRubin computes the potential scale reduction factor R̂ over multiple
// chains' attribute traces (values near 1 indicate mixing; threshold 1.1).
func GelmanRubin(chains [][]float64) (float64, error) { return walk.GelmanRubin(chains) }

// GelmanRubinMonitor is the multi-chain convergence monitor based on R̂.
type GelmanRubinMonitor = walk.GelmanRubinMonitor

// ParallelResult aggregates a multi-worker sampling run.
type ParallelResult = walk.ParallelResult

// ParallelShortRuns runs many-short-runs on several goroutines, each with
// its own metered client and starting node (multiple crawler identities).
func ParallelShortRuns(net *Network, d Design, starts []int, countPer int, m Monitor, maxSteps, workers int, seed int64) (ParallelResult, error) {
	return walk.ParallelShortRuns(net, d, starts, countPer, m, maxSteps, workers, seed)
}
