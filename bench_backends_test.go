package walknotwait_test

// Benchmarks for the pluggable access backends and the batched frontier
// prefetch (ISSUE 3): BenchmarkFrontierFetch measures wall-clock per
// frontier fill at simulated remote latencies, per-node vs batched —
// the direct "walk, not wait" payoff — and BenchmarkDiskMillionNode
// generates a million-node graph, serves it from a memory-mapped CSR file,
// and reports how much heap each loading strategy pays.
// scripts/bench_backends.sh records both in BENCH_backends.json.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	wnw "repro"
)

// BenchmarkFrontierFetch fills a cold 64-node frontier through a RemoteSim
// backend at several per-round-trip latencies. The per-node variant pays
// one round trip per node; the batched variant issues the frontier as one
// prefetch, which the backend answers over concurrent simulated
// connections. At >= 10 ms latency the batch wins by roughly the fanout
// factor — queries saved become seconds saved.
func BenchmarkFrontierFetch(b *testing.B) {
	const frontierSize = 64
	g := wnw.NewBarabasiAlbert(4000, 3, rand.New(rand.NewSource(3)))
	for _, latency := range []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond} {
		for _, batched := range []bool{false, true} {
			name := fmt.Sprintf("latency=%dms/pernode", latency.Milliseconds())
			if batched {
				name = fmt.Sprintf("latency=%dms/batched", latency.Milliseconds())
			}
			b.Run(name, func(b *testing.B) {
				net := wnw.NewNetworkOn(wnw.NewRemoteSim(wnw.NewMemBackend(g), latency, 0, 0))
				frontier := make([]int32, frontierSize)
				out := make([][]int32, frontierSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// A fresh client (cold caches) and a disjoint frontier
					// per op, so every fill pays its round trips.
					c := wnw.NewClient(net, wnw.CostUniqueNodes, wnw.NewFastRNG(int64(i)))
					base := (i * frontierSize) % (g.NumNodes() - frontierSize)
					for j := range frontier {
						frontier[j] = int32(base + j)
					}
					if batched {
						c.NeighborsBatch(frontier, out)
					} else {
						for _, v := range frontier {
							c.Neighbors(int(v))
						}
					}
				}
			})
		}
	}
}

// BenchmarkDiskMillionNode generates a 1M-node Barabási–Albert graph with
// the fastrand generator, writes it as binary CSR, and samples it through
// the memory-mapped disk backend. Reported metrics:
//
//	gen-s           seconds to generate the million-node fixture
//	heap-open-MB    heap growth from opening the CSR memory-mapped
//	heap-load-MB    heap growth from decoding the same file to the heap
//	queries/sample  unique-node cost per accepted sample
//
// heap-open-MB staying near zero while heap-load-MB carries the full edge
// payload is the "sample without holding edges on heap" acceptance
// criterion of ISSUE 3.
func BenchmarkDiskMillionNode(b *testing.B) {
	const (
		nodes   = 1_000_000
		m       = 3
		samples = 4
	)
	dir := b.TempDir()
	path := filepath.Join(dir, "million.csr")

	genStart := time.Now()
	g := wnw.NewBarabasiAlbert(nodes, m, wnw.NewFastRNG(9))
	genSecs := time.Since(genStart).Seconds()
	if err := wnw.SaveCSR(path, g, nil); err != nil {
		b.Fatal(err)
	}
	g = nil

	heapMB := func() float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc) / (1 << 20)
	}

	before := heapMB()
	loaded, _, err := wnw.LoadCSR(path)
	if err != nil {
		b.Fatal(err)
	}
	heapLoad := heapMB() - before
	if loaded.NumNodes() != nodes {
		b.Fatalf("loaded %d nodes", loaded.NumNodes())
	}
	loaded = nil

	before = heapMB()
	mapped, err := wnw.OpenCSR(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mapped.Close()
	heapOpen := heapMB() - before

	net := wnw.NewNetworkOn(wnw.NewDiskBackend(mapped))
	b.ResetTimer()
	var queriesPerSample float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
		s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
			Design:      wnw.SimpleRandomWalk(),
			Start:       0,
			WalkLength:  15,
			UseCrawl:    true,
			CrawlHops:   1,
			UseWeighted: true,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.SampleN(samples)
		if err != nil {
			b.Fatal(err)
		}
		queriesPerSample = float64(c.TotalQueries()) / float64(res.Len())
	}
	b.ReportMetric(genSecs, "gen-s")
	b.ReportMetric(heapOpen, "heap-open-MB")
	b.ReportMetric(heapLoad, "heap-load-MB")
	b.ReportMetric(queriesPerSample, "queries/sample")
}

// BenchmarkBatchedStep measures the vectorized walker-frontier step kernel
// (ISSUE 8) against the scalar per-candidate loop on a simulated remote
// backend: 16 candidates' backward estimates, cold client per op so every
// neighbor access pays its round trip. The scalar loop serializes one
// round trip per walker step; the batched kernel advances all walkers in
// lockstep and resolves each design step's whole frontier as one batched
// request, which the backend answers over concurrent simulated
// connections. CI asserts batched >= 3x faster at 10 ms latency.
func BenchmarkBatchedStep(b *testing.B) {
	const (
		tSteps   = 9
		width    = 16
		baseReps = 2
		budget   = 2
	)
	d := wnw.SimpleRandomWalk()
	g := wnw.NewBarabasiAlbert(3000, 3, rand.New(rand.NewSource(5)))
	for _, latency := range []time.Duration{0, 10 * time.Millisecond} {
		net := wnw.NewNetworkOn(wnw.NewRemoteSim(wnw.NewMemBackend(g), latency, 0, 64))
		// Forward-walk setup (shared by both variants, outside the timer):
		// record a WS-BW history and collect the candidate endpoints.
		setupC := wnw.NewClient(net, wnw.CostUniqueNodes, wnw.NewFastRNG(1))
		hist := wnw.NewHistory()
		walkRNG := wnw.NewFastRNG(2)
		nodes := make([]int, width)
		for i := range nodes {
			path := wnw.WalkPath(setupC, d, 0, tSteps, walkRNG)
			hist.RecordWalk(path)
			nodes[i] = path[len(path)-1]
		}
		snap := hist.Snapshot()
		for _, batched := range []bool{false, true} {
			name := fmt.Sprintf("latency=%dms/scalar", latency.Milliseconds())
			if batched {
				name = fmt.Sprintf("latency=%dms/batched", latency.Milliseconds())
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// Fresh client per op: cold L1, so the op pays the
					// backend round trips the kernel is meant to batch.
					c := wnw.NewClient(net, wnw.CostUniqueNodes, wnw.NewFastRNG(int64(i)))
					e := &wnw.Estimator{Client: c, Design: d, Start: 0, Hist: snap}
					if batched {
						cands := make([]*wnw.WEBatchCand, width)
						for k, v := range nodes {
							cands[k] = &wnw.WEBatchCand{V: v, RNG: wnw.NewFastRNG(int64(1000 + k))}
						}
						wnw.EstimateAdaptiveBatch(e, cands, tSteps, baseReps, budget)
						for _, cd := range cands {
							if cd.Err != nil {
								b.Fatal(cd.Err)
							}
						}
					} else {
						for k, v := range nodes {
							if _, err := wnw.EstimateAdaptive(e, v, tSteps, baseReps, budget, wnw.NewFastRNG(int64(1000+k))); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			})
		}
	}
}
