package walknotwait_test

import (
	"math"
	"math/rand"
	"testing"

	wnw "repro"
)

func TestPublicAPIGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		name  string
		g     *wnw.Graph
		nodes int
	}{
		{"cycle", wnw.NewCycle(9), 9},
		{"path", wnw.NewPath(9), 9},
		{"complete", wnw.NewComplete(6), 6},
		{"star", wnw.NewStar(7), 7},
		{"hypercube", wnw.NewHypercube(4), 16},
		{"barbell", wnw.NewBarbell(11), 11},
		{"tree", wnw.NewBalancedBinaryTree(3), 15},
		{"gnp", wnw.NewErdosRenyiGNP(30, 0.3, rng), 30},
		{"gnm", wnw.NewErdosRenyiGNM(30, 50, rng), 30},
		{"regular", wnw.NewRandomRegular(20, 4, rng), 20},
		{"holmekim", wnw.NewHolmeKim(50, 3, 0.5, rng), 50},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.nodes {
			t.Errorf("%s: nodes = %d, want %d", c.name, c.g.NumNodes(), c.nodes)
		}
	}
}

func TestPublicAPINBRW(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := wnw.NewBarabasiAlbert(100, 3, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	w := wnw.NewNBWalker(0)
	if w.Node() != 0 {
		t.Fatal("walker should start at 0")
	}
	prev := 0
	for i := 0; i < 50; i++ {
		next := w.Step(c, rng)
		if !g.HasEdge(prev, next) {
			t.Fatalf("NBRW non-edge hop %d-%d", prev, next)
		}
		prev = next
	}
	res, err := wnw.NBManyShortRuns(c, 0, 5, wnw.Geweke{}, 200, rng)
	if err != nil || res.Len() != 5 {
		t.Fatalf("NBManyShortRuns = %v, %v", res.Len(), err)
	}
}

func TestPublicAPIHarvestAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := wnw.NewBarabasiAlbert(300, 4, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	h, err := wnw.NewHarvestSampler(c, wnw.WEConfig{
		Design:     wnw.SimpleRandomWalk(),
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  2,
	}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.SampleN(20)
	if err != nil || res.Len() != 20 {
		t.Fatalf("harvest = %v, %v", res.Len(), err)
	}

	par, err := wnw.ParallelShortRuns(net, wnw.SimpleRandomWalk(), []int{0, 10}, 4, wnw.Geweke{}, 300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Nodes) != 12 {
		t.Fatalf("parallel samples = %d", len(par.Nodes))
	}
	if par.TotalQueries <= 0 {
		t.Fatal("parallel queries uncharged")
	}
}

func TestPublicAPIGelmanRubin(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	chains := make([][]float64, 3)
	for i := range chains {
		chains[i] = make([]float64, 100)
		for j := range chains[i] {
			chains[i][j] = rng.NormFloat64()
		}
	}
	r, err := wnw.GelmanRubin(chains)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 || r > 1.2 {
		t.Fatalf("R̂ = %v", r)
	}
	if !(wnw.GelmanRubinMonitor{}).Converged(chains) {
		t.Fatal("iid chains should converge")
	}
}

func TestPublicAPISizeEstimation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := wnw.NewBarabasiAlbert(500, 4, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:     wnw.SimpleRandomWalk(),
		Start:      0,
		WalkLength: 2*g.Diameter() + 1,
		UseCrawl:   true,
		CrawlHops:  2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleN(700)
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]float64, res.Len())
	for i, v := range res.Nodes {
		degrees[i] = float64(g.Degree(v))
	}
	nHat, err := wnw.EstimateNumNodes(res.Nodes, degrees)
	if err != nil {
		t.Fatal(err)
	}
	if nHat < 100 || nHat > 2500 {
		t.Fatalf("n̂ = %v, truth 500", nHat)
	}
	if _, err := wnw.EstimateNumEdges(res.Nodes, degrees); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMoreDatasets(t *testing.T) {
	y, err := wnw.YelpDataset(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y.Truth[wnw.AttrStars] <= 0 {
		t.Fatal("stars truth missing")
	}
	tw, err := wnw.TwitterDataset(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tw.Truth[wnw.AttrInDegree] <= tw.Truth[wnw.AttrOutDegree] {
		t.Fatal("twitter in/out truth ordering")
	}
	ba, err := wnw.SyntheticBADataset(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ba.Graph.NumNodes() != 1500 {
		t.Fatal("BA dataset size")
	}
}

func TestPublicAPIEstimatorAndCrawl(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := wnw.NewBarabasiAlbert(60, 3, rng)
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	ct, err := wnw.BuildCrawlTable(c, wnw.SimpleRandomWalk(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Depth() != 2 {
		t.Fatalf("depth = %d", ct.Depth())
	}
	hist := wnw.NewHistory()
	hist.RecordWalk(wnw.WalkPath(c, wnw.SimpleRandomWalk(), 0, 5, rng))
	est := &wnw.Estimator{Client: c, Design: wnw.SimpleRandomWalk(), Start: 0, Crawl: ct, Hist: hist}
	mean, variance, err := est.Estimate(5, 4, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0 || variance < 0 || math.IsNaN(mean) {
		t.Fatalf("estimate = %v ± %v", mean, variance)
	}
}

func TestPublicAPIDesignByName(t *testing.T) {
	d, err := wnw.DesignByName("MHRW")
	if err != nil || d.Name() != "MHRW" {
		t.Fatalf("DesignByName: %v, %v", d, err)
	}
	if _, err := wnw.DesignByName("zzz"); err == nil {
		t.Fatal("bad name should error")
	}
}

func TestPublicAPIExperimentWrappers(t *testing.T) {
	o := wnw.ExperimentOptions{Seed: 5, Scale: 0.02, Trials: 2, Samples: 8, BiasSamples: 1200}
	if _, err := wnw.Fig5(o); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.GewekeSensitivity(o); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.HarvestStudy(o); err != nil {
		t.Fatal(err)
	}
	if _, err := wnw.OneLongRunStudy(o); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIConcurrentEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := wnw.NewBarabasiAlbert(800, 3, rng)
	net := wnw.NewNetwork(g)

	// Explicitly shared clients through the facade.
	sc := wnw.NewSharedCache()
	a := wnw.NewClientShared(net, wnw.CostUniqueNodes, rand.New(rand.NewSource(41)), sc)
	b := wnw.NewClientShared(net, wnw.CostUniqueNodes, rand.New(rand.NewSource(42)), sc)
	a.Neighbors(0)
	b.Neighbors(0)
	if sc.Queries() != 1 {
		t.Fatalf("shared cache charged %d for one unique node", sc.Queries())
	}

	// Parallel WALK-ESTIMATE through the facade.
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rand.New(rand.NewSource(43)))
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  9,
		UseCrawl:    true,
		UseWeighted: true,
	}, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SampleNParallel(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 12 {
		t.Fatalf("got %d samples, want 12", res.Len())
	}
	for _, v := range res.Nodes {
		if v < 0 || v >= g.NumNodes() {
			t.Fatalf("sample %d out of range", v)
		}
	}

	// Parallel batch estimation through the facade.
	est := &wnw.Estimator{Client: c.Fork(rand.New(rand.NewSource(45))), Design: wnw.SimpleRandomWalk(), Start: 0}
	got, err := wnw.EstimateAllParallel(est, res.Nodes[:3], 9, 3, 3, 2, 46)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no estimates returned")
	}
}
