package main

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	wnw "repro"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := wnw.NewBarabasiAlbert(200, 3, rng)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := wnw.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSamplers(t *testing.T) {
	path := writeGraph(t)
	cases := []struct {
		sampler string
		design  string
	}{
		{"we", "srw"},
		{"we", "mhrw"},
		{"geweke", "srw"},
		{"geweke", "mhrw"},
		{"fixed", "srw"},
		{"longrun", "srw"},
	}
	for _, c := range cases {
		if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, c.sampler, c.design, 10, -1, 0, 2, 50, 2, 0.1, 500, 1, 1, true); err != nil {
			t.Fatalf("%s/%s: %v", c.sampler, c.design, err)
		}
	}
}

func TestRunExplicitParameters(t *testing.T) {
	path := writeGraph(t)
	// Explicit start node and walk length.
	if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 5, 3, 9, 1, 50, 1, 0.1, 500, 7, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	if err := run("/missing.txt", "mem", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, "bogus", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("unknown sampler should error")
	}
	if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, "we", "bogus", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("unknown design should error")
	}
}

func TestRunParallelWorkers(t *testing.T) {
	path := writeGraph(t)
	// The WALK-ESTIMATE sampler with a worker pool over the shared cache.
	if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 10, -1, 0, 2, 50, 1, 0.1, 500, 1, 4, true); err != nil {
		t.Fatal(err)
	}
}

func writeCSRGraph(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := wnw.NewBarabasiAlbert(200, 3, rng)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := wnw.SaveCSR(path, g, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiskBackend(t *testing.T) {
	path := writeCSRGraph(t)
	if err := run(path, "disk", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 10, -1, 0, 2, 50, 1, 0.1, 500, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	// mem over a CSR file decodes it to the heap.
	if err := run(path, "mem", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimBackend(t *testing.T) {
	path := writeGraph(t)
	if err := run(path, "sim", 200*time.Microsecond, 100*time.Microsecond, 8, wnw.FaultOptions{},
		"we", "srw", 5, -1, 0, 1, 50, 1, 0.1, 500, 1, 4, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBackendErrors(t *testing.T) {
	path := writeGraph(t)
	if err := run(path, "disk", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("disk backend over an edge list should error")
	}
	if err := run(path, "bogus", 0, 0, 0, wnw.FaultOptions{}, "we", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("unknown backend should error")
	}
}
