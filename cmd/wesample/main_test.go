package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	wnw "repro"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := wnw.NewBarabasiAlbert(200, 3, rng)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := wnw.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSamplers(t *testing.T) {
	path := writeGraph(t)
	cases := []struct {
		sampler string
		design  string
	}{
		{"we", "srw"},
		{"we", "mhrw"},
		{"geweke", "srw"},
		{"geweke", "mhrw"},
		{"fixed", "srw"},
		{"longrun", "srw"},
	}
	for _, c := range cases {
		if err := run(path, c.sampler, c.design, 10, -1, 0, 2, 50, 2, 0.1, 500, 1, 1, true); err != nil {
			t.Fatalf("%s/%s: %v", c.sampler, c.design, err)
		}
	}
}

func TestRunExplicitParameters(t *testing.T) {
	path := writeGraph(t)
	// Explicit start node and walk length.
	if err := run(path, "we", "srw", 5, 3, 9, 1, 50, 1, 0.1, 500, 7, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	if err := run("/missing.txt", "we", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run(path, "bogus", "srw", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("unknown sampler should error")
	}
	if err := run(path, "we", "bogus", 5, -1, 0, 2, 50, 1, 0.1, 500, 1, 1, true); err == nil {
		t.Fatal("unknown design should error")
	}
}

func TestRunParallelWorkers(t *testing.T) {
	path := writeGraph(t)
	// The WALK-ESTIMATE sampler with a worker pool over the shared cache.
	if err := run(path, "we", "srw", 10, -1, 0, 2, 50, 1, 0.1, 500, 1, 4, true); err != nil {
		t.Fatal(err)
	}
}
